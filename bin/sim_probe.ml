(* Quick probe of the simulated JPaxos model: a few 24-core
   configurations, plus the observability flags

     sim_probe [--trace FILE] [--metrics FILE]

   --trace runs one short traced configuration and writes a Chrome
   trace_event file (docs/OBSERVABILITY.md); --metrics dumps the
   metrics registry after the runs. *)
let () =
  let open Msmr_sim in
  let rec parse trace metrics = function
    | [] -> (trace, metrics)
    | "--trace" :: file :: rest -> parse (Some file) metrics rest
    | "--metrics" :: file :: rest -> parse trace (Some file) rest
    | _ ->
      prerr_endline "usage: sim_probe [--trace FILE] [--metrics FILE]";
      exit 2
  in
  let trace, metrics = parse None None (List.tl (Array.to_list Sys.argv)) in
  let test ~label ?(rss=false) ?(batchers=1) ?(cio=0) () =
    let p = Params.default ~n:3 ~cores:24 () in
    let p = { p with warmup = 0.3; duration = 1.0; rss; n_batchers = batchers;
              client_io_threads = (if cio > 0 then cio else p.Params.client_io_threads) } in
    let r = Jpaxos_model.run p in
    Printf.printf "%-30s tput=%7.0f lat=%6.2fms inst=%5.2fms cpu=%4.0f%% tx=%7.0fpps\n%!"
      label r.throughput (r.client_latency*.1e3) (r.instance_latency*.1e3)
      r.replicas.(0).cpu_util_pct r.leader_tx_pps
  in
  (match trace with
   | Some file ->
     (* One short traced run is enough for a smoke-testable trace. *)
     let p = Params.default ~n:3 ~cores:8 () in
     let p = { p with warmup = 0.1; duration = 0.2 } in
     let r = Jpaxos_model.run ~trace:true p in
     Msmr_obs.Trace_export.write_file (Option.get r.trace) file;
     Printf.printf "wrote trace to %s (tput=%.0f req/s)\n%!" file r.throughput
   | None ->
     test ~label:"baseline (wnd10)" ();
     test ~label:"rss on" ~rss:true ();
     test ~label:"rss + 2 batchers" ~rss:true ~batchers:2 ();
     test ~label:"rss + 4 batchers + 8 cio" ~rss:true ~batchers:4 ~cio:8 ());
  match metrics with
  | Some file ->
    Msmr_obs.Metrics.write_file file;
    Printf.printf "wrote metrics snapshot to %s\n%!" file
  | None -> ()
