(* Standalone replica over TCP.

   Example 3-replica cluster on one machine:

     dune exec bin/msmr_replica.exe -- --id 0 \
       --node 127.0.0.1:4100 --node 127.0.0.1:4101 --node 127.0.0.1:4102 \
       --client-port 5100 &
     dune exec bin/msmr_replica.exe -- --id 1 ... --client-port 5101 &
     dune exec bin/msmr_replica.exe -- --id 2 ... --client-port 5102 &

   then drive it with bin/msmr_client. *)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg (Printf.sprintf "bad address %S (want host:port)" s))
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | None -> Error (`Msg (Printf.sprintf "bad port in %S" s))
     | Some port -> (
         match Unix.gethostbyname host with
         | { Unix.h_addr_list = [||]; _ } ->
           Error (`Msg (Printf.sprintf "cannot resolve %S" host))
         | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))
         | exception Not_found ->
           Error (`Msg (Printf.sprintf "cannot resolve %S" host))))

let run id nodes client_port service_name window batch_bytes batch_delay_ms
    executors verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let addrs =
    List.mapi
      (fun i s ->
         match parse_addr s with
         | Ok a -> (i, a)
         | Error (`Msg m) -> failwith m)
      nodes
  in
  let n = List.length addrs in
  if id < 0 || id >= n then failwith "--id out of range";
  let cfg =
    { (Msmr_consensus.Config.default ~n) with
      window;
      max_batch_bytes = batch_bytes;
      max_batch_delay_s = batch_delay_ms /. 1e3 }
  in
  let service =
    match service_name with
    | "null" -> Msmr_runtime.Service.null ()
    | "acc" -> Msmr_runtime.Service.accumulator ()
    | "kv" -> Msmr_kv.Kv_service.make ()
    | "lock" -> Msmr_kv.Lock_service.make ()
    | s -> failwith (Printf.sprintf "unknown service %S" s)
  in
  Printf.printf "replica %d/%d: establishing mesh...\n%!" id n;
  let mesh = Msmr_runtime.Tcp_mesh.create ~me:id ~addrs () in
  let links = Msmr_runtime.Tcp_mesh.links mesh in
  let replica =
    Msmr_runtime.Replica.create ~cfg ~me:id ~links ~service
      ~executor_threads:executors
      ~reconnects:(fun () -> Msmr_runtime.Tcp_mesh.reconnects mesh)
      ()
  in
  let server = Msmr_runtime.Client_server.start replica ~port:client_port in
  Printf.printf "replica %d up; clients on port %d; service %s\n%!" id
    (Msmr_runtime.Client_server.port server)
    service_name;
  (* Periodic status line until killed. *)
  let rec status last_exec =
    Unix.sleepf 5.0;
    let stats = Msmr_runtime.Replica.queue_stats replica in
    let exec = Msmr_runtime.Replica.executed_count replica in
    Printf.printf
      "[r%d] view=%d leader=%b executed=%d (+%d) reqq=%d propq=%d window=%d \
       conns=%d reconnects=%d\n%!"
      id
      (Msmr_runtime.Replica.current_view replica)
      (Msmr_runtime.Replica.is_leader replica)
      exec (exec - last_exec) stats.request_queue stats.proposal_queue
      stats.window_in_use
      (Msmr_runtime.Client_server.connections server)
      (Msmr_runtime.Tcp_mesh.reconnects mesh);
    status exec
  in
  status 0

open Cmdliner

let id =
  Arg.(required & opt (some int) None & info [ "id" ] ~doc:"Replica id (0-based).")

let nodes =
  Arg.(
    non_empty & opt_all string []
    & info [ "node" ]
        ~doc:"Replica address host:port, one per replica, in id order.")

let client_port =
  Arg.(
    required & opt (some int) None
    & info [ "client-port" ] ~doc:"TCP port for client connections.")

let service_name =
  Arg.(
    value & opt string "kv"
    & info [ "service" ] ~doc:"Service: null, acc, kv or lock.")

let window =
  Arg.(value & opt int 10 & info [ "window" ] ~doc:"Max parallel ballots (WND).")

let batch_bytes =
  Arg.(value & opt int 1300 & info [ "batch-bytes" ] ~doc:"Max batch bytes (BSZ).")

let batch_delay_ms =
  Arg.(
    value & opt float 5.0
    & info [ "batch-delay" ] ~doc:"Max batch delay in milliseconds.")

let executors =
  Arg.(
    value & opt int 1
    & info [ "executors" ]
        ~doc:
          "Executor threads for the parallel ServiceManager; 1 (default) \
           keeps the paper's serial execution.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log to stderr.")

let cmd =
  Cmd.v
    (Cmd.info "msmr_replica" ~doc:"Run one replica of the replicated state machine")
    Term.(const run $ id $ nodes $ client_port $ service_name $ window
          $ batch_bytes $ batch_delay_ms $ executors $ verbose)

let () = exit (Cmd.eval cmd)
