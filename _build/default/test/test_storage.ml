(* Tests for msmr_storage: CRC32, the segmented WAL (including torn-write
   recovery), the typed replica store, Paxos recovery, and full live
   cluster restart-from-disk. *)

open Msmr_storage
module R = Msmr_runtime
module Value = Msmr_consensus.Value

let tmp_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msmr-test-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_tmp_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* CRC32 *)

let test_crc32_vectors () =
  (* Standard test vector: "123456789" -> 0xCBF43926. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l
    (Crc32.digest_bytes (Bytes.of_string "123456789"));
  Alcotest.(check int32) "empty" 0l (Crc32.digest_bytes Bytes.empty)

let test_crc32_incremental () =
  let whole = Bytes.of_string "hello world" in
  let part1 = Crc32.digest whole ~pos:0 ~len:5 in
  let inc = Crc32.digest whole ~crc:part1 ~pos:5 ~len:6 in
  Alcotest.(check int32) "incremental = whole" (Crc32.digest_bytes whole) inc

(* ------------------------------------------------------------------ *)
(* WAL *)

let test_wal_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~dir ~sync:Wal.No_sync () in
  List.iter
    (fun s -> Wal.append wal (Bytes.of_string s))
    [ "alpha"; "beta"; ""; "gamma" ];
  Alcotest.(check int) "appended" 4 (Wal.appended wal);
  Wal.close wal;
  let got = ref [] in
  let n = Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got) in
  Alcotest.(check int) "replayed" 4 n;
  Alcotest.(check (list string)) "order" [ "alpha"; "beta"; ""; "gamma" ]
    (List.rev !got)

let test_wal_append_after_reopen () =
  with_tmp_dir @@ fun dir ->
  let w1 = Wal.openw ~dir ~sync:Wal.No_sync () in
  Wal.append w1 (Bytes.of_string "one");
  Wal.close w1;
  let w2 = Wal.openw ~dir ~sync:Wal.No_sync () in
  Wal.append w2 (Bytes.of_string "two");
  Wal.close w2;
  let got = ref [] in
  ignore (Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got));
  Alcotest.(check (list string)) "both runs" [ "one"; "two" ] (List.rev !got)

let test_wal_truncates_torn_suffix () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~dir ~sync:Wal.No_sync () in
  Wal.append wal (Bytes.of_string "good-1");
  Wal.append wal (Bytes.of_string "good-2");
  Wal.close wal;
  (* Simulate a torn write: append half a record by hand. *)
  let path = Filename.concat dir "wal-000000.log" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0 in
  let junk = Bytes.create 6 in
  Bytes.set_int32_be junk 0 100l;
  ignore (Unix.write fd junk 0 6);
  Unix.close fd;
  let got = ref [] in
  let n = Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got) in
  Alcotest.(check int) "intact prefix" 2 n;
  (* The torn suffix is gone: appending and replaying again is clean. *)
  let w2 = Wal.openw ~dir ~sync:Wal.No_sync () in
  Wal.append w2 (Bytes.of_string "good-3");
  Wal.close w2;
  let got2 = ref [] in
  ignore (Wal.replay ~dir (fun b -> got2 := Bytes.to_string b :: !got2));
  Alcotest.(check (list string)) "clean after truncate"
    [ "good-1"; "good-2"; "good-3" ]
    (List.rev !got2)

let test_wal_detects_corruption () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~dir ~sync:Wal.No_sync () in
  Wal.append wal (Bytes.of_string "aaaa");
  Wal.append wal (Bytes.of_string "bbbb");
  Wal.close wal;
  (* Flip a payload byte of the second record. *)
  let path = Filename.concat dir "wal-000000.log" in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (8 + 4 + 8 + 1) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  let got = ref [] in
  let n = Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got) in
  Alcotest.(check int) "stops at corruption" 1 n;
  Alcotest.(check (list string)) "first survives" [ "aaaa" ] (List.rev !got)

let test_wal_segment_rotation () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~segment_bytes:64 ~dir ~sync:Wal.No_sync () in
  for i = 1 to 10 do
    Wal.append wal (Bytes.of_string (Printf.sprintf "record-%02d-xxxxxxxx" i))
  done;
  Wal.close wal;
  let segments =
    Array.to_list (Sys.readdir dir)
    |> List.filter (String.starts_with ~prefix:"wal-")
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d segments" (List.length segments))
    true
    (List.length segments > 1);
  let got = ref 0 in
  ignore (Wal.replay ~dir (fun _ -> incr got));
  Alcotest.(check int) "all records across segments" 10 !got

(* ------------------------------------------------------------------ *)
(* Replica store *)

let batch_value num =
  Value.Batch
    { bid = { src = 0; num };
      requests =
        [ { Msmr_wire.Client_msg.id = { client_id = 9; seq = num };
            payload = Bytes.of_string (string_of_int num) } ] }

let test_store_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let store = Replica_store.openw ~dir () in
  Replica_store.log_event store (Replica_store.View 3);
  Replica_store.log_event store
    (Replica_store.Accepted { iid = 0; view = 3; value = batch_value 0 });
  Replica_store.log_event store
    (Replica_store.Accepted { iid = 1; view = 3; value = batch_value 1 });
  Replica_store.log_event store (Replica_store.Decided { iid = 0; view = 3 });
  Replica_store.sync store;
  Replica_store.close store;
  let r = Replica_store.recover ~dir in
  Alcotest.(check int) "view" 3 r.r_view;
  Alcotest.(check int) "decided count" 1 (List.length r.r_decided);
  Alcotest.(check int) "accepted (undecided) count" 1 (List.length r.r_accepted);
  (match r.r_decided with
   | [ (0, 3, v) ] ->
     Alcotest.(check bool) "value survives" true (Value.equal v (batch_value 0))
   | _ -> Alcotest.fail "bad decided set");
  Alcotest.(check bool) "no snapshot" true (r.r_snapshot = None)

let test_store_higher_view_acceptance_wins () =
  with_tmp_dir @@ fun dir ->
  let store = Replica_store.openw ~dir () in
  Replica_store.log_event store
    (Replica_store.Accepted { iid = 5; view = 1; value = batch_value 1 });
  Replica_store.log_event store
    (Replica_store.Accepted { iid = 5; view = 4; value = batch_value 2 });
  Replica_store.log_event store
    (Replica_store.Accepted { iid = 5; view = 2; value = batch_value 3 });
  Replica_store.close store;
  let r = Replica_store.recover ~dir in
  (match r.r_accepted with
   | [ (5, 4, v) ] ->
     Alcotest.(check bool) "view-4 value" true (Value.equal v (batch_value 2))
   | _ -> Alcotest.fail "expected single view-4 acceptance")

let test_store_checkpoint () =
  with_tmp_dir @@ fun dir ->
  let store = Replica_store.openw ~dir () in
  Replica_store.log_event store
    (Replica_store.Accepted { iid = 0; view = 0; value = batch_value 0 });
  Replica_store.log_event store (Replica_store.Decided { iid = 0; view = 0 });
  Replica_store.checkpoint store ~next_iid:1 ~state:(Bytes.of_string "S1");
  (* Post-checkpoint traffic. *)
  Replica_store.log_event store
    (Replica_store.Accepted { iid = 1; view = 0; value = batch_value 1 });
  Replica_store.log_event store (Replica_store.Decided { iid = 1; view = 0 });
  Replica_store.close store;
  let r = Replica_store.recover ~dir in
  (match r.r_snapshot with
   | Some (1, state) -> Alcotest.(check string) "state" "S1" (Bytes.to_string state)
   | _ -> Alcotest.fail "missing snapshot");
  Alcotest.(check int) "only post-checkpoint decided" 1 (List.length r.r_decided);
  (match r.r_decided with
   | [ (1, 0, _) ] -> ()
   | _ -> Alcotest.fail "expected instance 1")

let test_store_empty_dir () =
  with_tmp_dir @@ fun dir ->
  let r = Replica_store.recover ~dir in
  Alcotest.(check int) "view 0" 0 r.r_view;
  Alcotest.(check bool) "empty" true
    (r.r_accepted = [] && r.r_decided = [] && r.r_snapshot = None)

(* ------------------------------------------------------------------ *)
(* Paxos recovery *)

let test_paxos_recover () =
  let cfg = Msmr_consensus.Config.default ~n:3 in
  let engine, actions =
    Msmr_consensus.Paxos.recover cfg ~me:1 ~view:4
      ~accepted:[ (2, 4, batch_value 2) ]
      ~decided:[ (0, 3, batch_value 0); (1, 4, batch_value 1) ]
      ~snapshot:None
  in
  (* Node 1 led view 4, so recovery immediately starts Phase 1 for the
     next view it leads (7 = 4 + 3). *)
  Alcotest.(check int) "re-preparing its next view" 7
    (Msmr_consensus.Paxos.view engine);
  Alcotest.(check bool) "not leader without phase 1" false
    (Msmr_consensus.Paxos.is_leader engine);
  Alcotest.(check bool) "sends Prepare" true
    (List.exists
       (function
         | Msmr_consensus.Paxos.Send { msg = Msmr_consensus.Msg.Prepare _; _ } ->
           true
         | _ -> false)
       actions);
  let executes =
    List.filter_map
      (function Msmr_consensus.Paxos.Execute { iid; _ } -> Some iid | _ -> None)
      actions
  in
  Alcotest.(check (list int)) "replays decided prefix" [ 0; 1 ] executes

let test_paxos_recover_with_snapshot () =
  let cfg = Msmr_consensus.Config.default ~n:3 in
  let engine, actions =
    Msmr_consensus.Paxos.recover cfg ~me:0 ~view:0
      ~accepted:[]
      ~decided:[ (10, 0, batch_value 10) ]
      ~snapshot:(Some (10, Bytes.of_string "snap"))
  in
  let tags =
    List.filter_map
      (function
        | Msmr_consensus.Paxos.Install_snapshot { next_iid; _ } ->
          Some (Printf.sprintf "snap@%d" next_iid)
        | Msmr_consensus.Paxos.Execute { iid; _ } ->
          Some (Printf.sprintf "exec@%d" iid)
        | _ -> None)
      actions
  in
  Alcotest.(check (list string)) "snapshot then tail" [ "snap@10"; "exec@10" ] tags;
  Alcotest.(check int) "log continues after" 11
    (Msmr_consensus.Log.first_undecided (Msmr_consensus.Paxos.log engine))

(* ------------------------------------------------------------------ *)
(* Live cluster restart from disk *)

let test_cluster_restart_from_disk () =
  with_tmp_dir @@ fun dir ->
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 0.004;
      snapshot_every = 5;   (* exercise checkpoints too *)
      log_retain = 2 }
  in
  let durability me =
    R.Replica.Durable
      { dir = Filename.concat dir (Printf.sprintf "r%d" me);
        sync = Wal.Sync_periodic }
  in
  let run_phase expected_sum calls =
    let cluster =
      R.Replica.Cluster.create ~durability ~cfg
        ~service:(fun () -> R.Service.accumulator ())
        ()
    in
    Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
    @@ fun () ->
    ignore (R.Replica.Cluster.await_leader cluster);
    (* Fresh client id per phase (new session). *)
    let client =
      R.Client.create ~cluster ~client_id:(1 + List.length calls) ()
    in
    let final = ref "" in
    List.iter
      (fun v ->
         final := Bytes.to_string (R.Client.call client (Bytes.of_string v)))
      calls;
    Alcotest.(check string) "sum" expected_sum !final;
    (* Give the syncer a moment to flush the tail. *)
    Msmr_platform.Mclock.sleep_s 0.05
  in
  (* Phase 1: 12 requests summing to 78; snapshots fire along the way. *)
  run_phase "78" (List.init 12 (fun i -> string_of_int (i + 1)));
  (* Phase 2: a brand-new cluster recovers the state from disk. *)
  run_phase "88" [ "4"; "6" ];
  (* Phase 3: once more, proving repeated recovery works. *)
  run_phase "91" [ "3" ]

let suite =
  [
    Alcotest.test_case "crc32: vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32: incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "wal: round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: reopen append" `Quick test_wal_append_after_reopen;
    Alcotest.test_case "wal: torn suffix truncated" `Quick test_wal_truncates_torn_suffix;
    Alcotest.test_case "wal: corruption detected" `Quick test_wal_detects_corruption;
    Alcotest.test_case "wal: segment rotation" `Quick test_wal_segment_rotation;
    Alcotest.test_case "store: round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "store: higher view wins" `Quick test_store_higher_view_acceptance_wins;
    Alcotest.test_case "store: checkpoint" `Quick test_store_checkpoint;
    Alcotest.test_case "store: empty dir" `Quick test_store_empty_dir;
    Alcotest.test_case "paxos: recover" `Quick test_paxos_recover;
    Alcotest.test_case "paxos: recover with snapshot" `Quick test_paxos_recover_with_snapshot;
    Alcotest.test_case "cluster: restart from disk" `Quick test_cluster_restart_from_disk;
  ]
