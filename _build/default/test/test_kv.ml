(* Tests for msmr_kv: KV store semantics, codecs, snapshots, the lock
   service, and both running on a live replicated cluster. *)

module Kv = Msmr_kv.Kv_service
module L = Msmr_kv.Lock_service
module R = Msmr_runtime

let test_kv_store_basics () =
  let s = Kv.Store.create () in
  Alcotest.(check bool) "miss" true
    (Kv.Store.apply s ~session:1 (Kv.Get "a") = Kv.Ok_value None);
  Alcotest.(check bool) "put" true
    (Kv.Store.apply s ~session:1 (Kv.Put { key = "a"; value = "1"; ephemeral = false })
     = Kv.Ok_unit);
  Alcotest.(check bool) "get" true
    (Kv.Store.apply s ~session:2 (Kv.Get "a") = Kv.Ok_value (Some "1"));
  Alcotest.(check bool) "delete" true
    (Kv.Store.apply s ~session:1 (Kv.Delete "a") = Kv.Ok_unit);
  Alcotest.(check bool) "gone" true
    (Kv.Store.apply s ~session:1 (Kv.Get "a") = Kv.Ok_value None)

let test_kv_incr () =
  let s = Kv.Store.create () in
  Alcotest.(check bool) "first" true
    (Kv.Store.apply s ~session:1 (Kv.Incr { key = "c"; by = 5 }) = Kv.Ok_int 5);
  Alcotest.(check bool) "second" true
    (Kv.Store.apply s ~session:1 (Kv.Incr { key = "c"; by = -2 }) = Kv.Ok_int 3);
  (* Non-numeric value treated as 0. *)
  ignore (Kv.Store.apply s ~session:1 (Kv.Put { key = "x"; value = "abc"; ephemeral = false }));
  Alcotest.(check bool) "reset" true
    (Kv.Store.apply s ~session:1 (Kv.Incr { key = "x"; by = 1 }) = Kv.Ok_int 1)

let test_kv_ephemeral_expiry () =
  let s = Kv.Store.create () in
  ignore (Kv.Store.apply s ~session:7 (Kv.Put { key = "/m/a"; value = "x"; ephemeral = true }));
  ignore (Kv.Store.apply s ~session:8 (Kv.Put { key = "/m/b"; value = "y"; ephemeral = true }));
  ignore (Kv.Store.apply s ~session:7 (Kv.Put { key = "/p"; value = "z"; ephemeral = false }));
  Alcotest.(check bool) "expire 7" true
    (Kv.Store.apply s ~session:0 (Kv.Expire_session 7) = Kv.Ok_int 1);
  Alcotest.(check bool) "b remains" true
    (Kv.Store.apply s ~session:0 (Kv.Get "/m/b") = Kv.Ok_value (Some "y"));
  Alcotest.(check bool) "persistent remains" true
    (Kv.Store.apply s ~session:0 (Kv.Get "/p") = Kv.Ok_value (Some "z"))

let test_kv_list_keys () =
  let s = Kv.Store.create () in
  List.iter
    (fun key ->
       ignore (Kv.Store.apply s ~session:1 (Kv.Put { key; value = "v"; ephemeral = false })))
    [ "/a/1"; "/a/2"; "/b/1" ];
  Alcotest.(check bool) "prefix" true
    (Kv.Store.apply s ~session:1 (Kv.List_keys "/a/") = Kv.Ok_keys [ "/a/1"; "/a/2" ])

let test_kv_snapshot_roundtrip () =
  let s = Kv.Store.create () in
  ignore (Kv.Store.apply s ~session:3 (Kv.Put { key = "k1"; value = "v1"; ephemeral = false }));
  ignore (Kv.Store.apply s ~session:3 (Kv.Put { key = "k2"; value = "v2"; ephemeral = true }));
  let snap = Kv.Store.snapshot s in
  let s2 = Kv.Store.create () in
  Kv.Store.restore s2 snap;
  Alcotest.(check int) "size" 2 (Kv.Store.size s2);
  Alcotest.(check bool) "value" true
    (Kv.Store.apply s2 ~session:0 (Kv.Get "k1") = Kv.Ok_value (Some "v1"));
  (* Ephemeral ownership survives the snapshot. *)
  Alcotest.(check bool) "ephemeral owner" true
    (Kv.Store.apply s2 ~session:0 (Kv.Expire_session 3) = Kv.Ok_int 1)

let kv_commands =
  [ Kv.Put { key = "k"; value = "v"; ephemeral = true };
    Kv.Get "k"; Kv.Delete "k"; Kv.Incr { key = "c"; by = -42 };
    Kv.Expire_session 9; Kv.List_keys "/pre" ]

let kv_replies =
  [ Kv.Ok_unit; Kv.Ok_value None; Kv.Ok_value (Some "x"); Kv.Ok_int (-3);
    Kv.Ok_keys []; Kv.Ok_keys [ "a"; "b" ]; Kv.Error "nope" ]

let test_kv_codec_roundtrip () =
  List.iter
    (fun c ->
       Alcotest.(check bool) "command" true
         (Kv.decode_command (Kv.encode_command c) = c))
    kv_commands;
  List.iter
    (fun r ->
       Alcotest.(check bool) "reply" true (Kv.decode_reply (Kv.encode_reply r) = r))
    kv_replies

let test_kv_service_malformed () =
  let svc = Kv.make () in
  let reply =
    svc.R.Service.execute
      { id = { client_id = 1; seq = 1 }; payload = Bytes.of_string "\xff\xff" }
  in
  match Kv.decode_reply reply with
  | Kv.Error _ -> ()
  | _ -> Alcotest.fail "expected Error for malformed command"

let lock_commands =
  [ L.Acquire "/l"; L.Release "/l"; L.Holder "/l"; L.Expire_session 4 ]

let lock_replies =
  [ L.Granted; L.Busy 3; L.Released; L.Not_holder; L.Holder_is None;
    L.Holder_is (Some 5); L.Expired 2; L.Error "x" ]

let test_lock_codec_roundtrip () =
  List.iter
    (fun c ->
       Alcotest.(check bool) "command" true (L.decode_command (L.encode_command c) = c))
    lock_commands;
  List.iter
    (fun r ->
       Alcotest.(check bool) "reply" true (L.decode_reply (L.encode_reply r) = r))
    lock_replies

let test_lock_service_semantics () =
  let svc = L.make () in
  let call session cmd =
    L.decode_reply
      (svc.R.Service.execute
         { id = { client_id = session; seq = 1 }; payload = L.encode_command cmd })
  in
  Alcotest.(check bool) "grant" true (call 1 (L.Acquire "/l") = L.Granted);
  Alcotest.(check bool) "re-entrant" true (call 1 (L.Acquire "/l") = L.Granted);
  Alcotest.(check bool) "busy" true (call 2 (L.Acquire "/l") = L.Busy 1);
  Alcotest.(check bool) "not holder" true (call 2 (L.Release "/l") = L.Not_holder);
  Alcotest.(check bool) "holder" true (call 2 (L.Holder "/l") = L.Holder_is (Some 1));
  Alcotest.(check bool) "release" true (call 1 (L.Release "/l") = L.Released);
  Alcotest.(check bool) "now free" true (call 2 (L.Acquire "/l") = L.Granted)

let test_lock_snapshot_roundtrip () =
  let svc = L.make () in
  let call session cmd =
    L.decode_reply
      (svc.R.Service.execute
         { id = { client_id = session; seq = 1 }; payload = L.encode_command cmd })
  in
  ignore (call 1 (L.Acquire "/a"));
  ignore (call 2 (L.Acquire "/b"));
  let snap = svc.R.Service.snapshot () in
  let svc2 = L.make () in
  svc2.R.Service.restore snap;
  let call2 session cmd =
    L.decode_reply
      (svc2.R.Service.execute
         { id = { client_id = session; seq = 1 }; payload = L.encode_command cmd })
  in
  Alcotest.(check bool) "holder restored" true
    (call2 9 (L.Holder "/a") = L.Holder_is (Some 1));
  Alcotest.(check bool) "busy restored" true (call2 9 (L.Acquire "/b") = L.Busy 2)

(* Replicated integration: KV on a live cluster. *)
let test_kv_on_cluster () =
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with max_batch_delay_s = 0.004 }
  in
  let cluster = R.Replica.Cluster.create ~cfg ~service:Kv.make () in
  Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
  @@ fun () ->
  ignore (R.Replica.Cluster.await_leader cluster);
  let client = R.Client.create ~cluster ~client_id:5 () in
  let call cmd = Kv.decode_reply (R.Client.call client (Kv.encode_command cmd)) in
  Alcotest.(check bool) "replicated put" true
    (call (Kv.Put { key = "x"; value = "42"; ephemeral = false }) = Kv.Ok_unit);
  Alcotest.(check bool) "replicated incr" true
    (call (Kv.Incr { key = "x"; by = 8 }) = Kv.Ok_int 50);
  Alcotest.(check bool) "replicated get" true
    (call (Kv.Get "x") = Kv.Ok_value (Some "50"))

let suite =
  [
    Alcotest.test_case "kv: store basics" `Quick test_kv_store_basics;
    Alcotest.test_case "kv: incr" `Quick test_kv_incr;
    Alcotest.test_case "kv: ephemeral expiry" `Quick test_kv_ephemeral_expiry;
    Alcotest.test_case "kv: list keys" `Quick test_kv_list_keys;
    Alcotest.test_case "kv: snapshot round-trip" `Quick test_kv_snapshot_roundtrip;
    Alcotest.test_case "kv: codec round-trip" `Quick test_kv_codec_roundtrip;
    Alcotest.test_case "kv: malformed command" `Quick test_kv_service_malformed;
    Alcotest.test_case "lock: codec round-trip" `Quick test_lock_codec_roundtrip;
    Alcotest.test_case "lock: semantics" `Quick test_lock_service_semantics;
    Alcotest.test_case "lock: snapshot round-trip" `Quick test_lock_snapshot_roundtrip;
    Alcotest.test_case "kv: on live cluster" `Quick test_kv_on_cluster;
  ]

(* Model-based property: the KV store agrees with a reference model over
   random command sequences. *)
let kv_cmd_gen =
  let open QCheck.Gen in
  let key = map (Printf.sprintf "/k%d") (int_bound 8) in
  let session = int_bound 4 in
  frequency
    [ (4, map2 (fun key v -> Kv.Put { key; value = string_of_int v; ephemeral = false })
         key (int_bound 100));
      (2, map2 (fun key v -> Kv.Put { key; value = string_of_int v; ephemeral = true })
         key (int_bound 100));
      (3, map (fun key -> Kv.Get key) key);
      (1, map (fun key -> Kv.Delete key) key);
      (2, map2 (fun key by -> Kv.Incr { key; by }) key (int_range (-5) 5));
      (1, map (fun s -> Kv.Expire_session s) session);
    ]

let prop_kv_matches_model =
  QCheck.Test.make ~name:"kv store matches reference model" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_bound 40) (pair (int_bound 4) kv_cmd_gen)))
    (fun ops ->
       let store = Kv.Store.create () in
       (* Reference: assoc list of key -> (value, ephemeral owner). *)
       let model : (string * (string * int option)) list ref = ref [] in
       let model_apply session cmd =
         match cmd with
         | Kv.Put { key; value; ephemeral } ->
           model := (key, (value, if ephemeral then Some session else None))
                    :: List.remove_assoc key !model;
           Kv.Ok_unit
         | Kv.Get key ->
           Kv.Ok_value (Option.map fst (List.assoc_opt key !model))
         | Kv.Delete key ->
           model := List.remove_assoc key !model;
           Kv.Ok_unit
         | Kv.Incr { key; by } ->
           let v =
             match List.assoc_opt key !model with
             | Some (s, _) -> (try int_of_string s with Failure _ -> 0)
             | None -> 0
           in
           let v = v + by in
           model := (key, (string_of_int v, None)) :: List.remove_assoc key !model;
           Kv.Ok_int v
         | Kv.Expire_session s ->
           let doomed, kept =
             List.partition (fun (_, (_, o)) -> o = Some s) !model
           in
           model := kept;
           Kv.Ok_int (List.length doomed)
         | Kv.List_keys prefix ->
           Kv.Ok_keys
             (List.sort compare
                (List.filter_map
                   (fun (k, _) ->
                      if String.starts_with ~prefix k then Some k else None)
                   !model))
       in
       List.for_all
         (fun (session, cmd) ->
            Kv.Store.apply store ~session cmd = model_apply session cmd)
         ops
       && Kv.Store.size store = List.length !model)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_kv_matches_model ]
