test/test_kv.ml: Alcotest Bytes Fun List Msmr_consensus Msmr_kv Msmr_runtime Option Printf QCheck QCheck_alcotest String
