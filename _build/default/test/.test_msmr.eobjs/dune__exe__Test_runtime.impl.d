test/test_runtime.ml: Alcotest Array Atomic Bytes Client Fun Int64 List Msmr_consensus Msmr_platform Msmr_runtime Msmr_wire Option Printf Random Replica Reply_cache Service Thread Transport Unix
