test/test_msmr.mli:
