test/test_wire.ml: Alcotest Bytes Client_msg Codec Frame Int32 List Msmr_wire QCheck QCheck_alcotest String Thread Unix
