test/test_msmr.ml: Alcotest Test_baseline Test_consensus Test_kv Test_platform Test_runtime Test_sim Test_storage Test_tcp Test_wire
