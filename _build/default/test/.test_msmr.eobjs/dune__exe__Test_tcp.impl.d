test/test_tcp.ml: Alcotest Array Bytes Fun List Msmr_consensus Msmr_runtime Msmr_wire Printf Thread Unix
