test/test_storage.ml: Alcotest Array Bytes Crc32 Filename Fun List Msmr_consensus Msmr_platform Msmr_runtime Msmr_storage Msmr_wire Printf Random Replica_store String Sys Unix Wal
