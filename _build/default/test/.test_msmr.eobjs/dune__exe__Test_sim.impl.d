test/test_sim.ml: Alcotest Array Cpu Engine Float Jpaxos_model List Mailbox Msmr_sim Nic Option Params Printf Slock Squeue Sstats
