test/test_baseline.ml: Alcotest Array Bytes Fun List Msmr_baseline Msmr_consensus Msmr_platform Msmr_runtime Msmr_sim Msmr_wire Params Printf Thread Unix
