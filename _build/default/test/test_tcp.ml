(* TCP deployment path: Tcp_mesh + Client_server, a full 3-replica
   cluster over real loopback sockets driven by a framed TCP client. *)

module R = Msmr_runtime
module Client_msg = Msmr_wire.Client_msg

let free_ports k =
  (* Bind ephemeral listeners to reserve distinct ports, then release. *)
  let socks =
    List.init k (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> p
         | Unix.ADDR_UNIX _ -> assert false)
      socks
  in
  List.iter Unix.close socks;
  ports

let test_tcp_cluster_end_to_end () =
  let n = 3 in
  let ports = free_ports n in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let cfg =
    { (Msmr_consensus.Config.default ~n) with max_batch_delay_s = 0.004 }
  in
  (* Meshes must be established concurrently (establish blocks until the
     full mesh is up). *)
  let links = Array.make n [] in
  let mesh_threads =
    List.init n (fun me ->
        Thread.create
          (fun () -> links.(me) <- R.Tcp_mesh.establish ~me ~addrs ())
          ())
  in
  List.iter Thread.join mesh_threads;
  Array.iteri
    (fun me ls ->
       Alcotest.(check int)
         (Printf.sprintf "node %d link count" me)
         (n - 1) (List.length ls))
    links;
  let replicas =
    Array.init n (fun me ->
        R.Replica.create ~cfg ~me ~links:links.(me)
          ~service:(R.Service.accumulator ()) ())
  in
  let servers =
    Array.map (fun r -> R.Client_server.start r ~port:0) replicas
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter R.Client_server.stop servers;
        Array.iter R.Replica.stop replicas)
  @@ fun () ->
  (* Wait for the leader. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.exists R.Replica.is_leader replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Alcotest.(check bool) "leader elected" true
    (Array.exists R.Replica.is_leader replicas);
  (* Framed TCP client against the leader's client port. *)
  let leader_idx = ref 0 in
  Array.iteri (fun i r -> if R.Replica.is_leader r then leader_idx := i) replicas;
  let port = R.Client_server.port servers.(!leader_idx) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let call seq payload =
    let req =
      { Client_msg.id = { client_id = 77; seq }; payload = Bytes.of_string payload }
    in
    Msmr_wire.Frame.write fd (Client_msg.request_to_bytes req);
    match Msmr_wire.Frame.read fd with
    | Some raw ->
      let reply = Client_msg.reply_of_bytes raw in
      Alcotest.(check int) "seq echo" seq reply.id.seq;
      Bytes.to_string reply.result
    | None -> Alcotest.fail "connection closed"
  in
  Alcotest.(check string) "first call" "30" (call 1 "30");
  Alcotest.(check string) "second call" "42" (call 2 "12");
  Unix.close fd;
  (* Replicas converge. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.for_all (fun r -> R.Replica.executed_count r = 2) replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Array.iter
    (fun r ->
       Alcotest.(check int) "executed everywhere" 2 (R.Replica.executed_count r))
    replicas

let suite =
  [ Alcotest.test_case "tcp: 3-replica cluster end-to-end" `Quick
      test_tcp_cluster_end_to_end ]

(* Tcp_client against a live cluster, including failover. *)
let test_tcp_client_failover () =
  let n = 3 in
  let ports = free_ports n in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let cfg =
    { (Msmr_consensus.Config.default ~n) with
      max_batch_delay_s = 0.004;
      fd_interval_s = 0.04;
      fd_timeout_s = 0.2 }
  in
  let links = Array.make n [] in
  let mesh_threads =
    List.init n (fun me ->
        Thread.create
          (fun () -> links.(me) <- R.Tcp_mesh.establish ~me ~addrs ())
          ())
  in
  List.iter Thread.join mesh_threads;
  let replicas =
    Array.init n (fun me ->
        R.Replica.create ~cfg ~me ~links:links.(me)
          ~service:(R.Service.accumulator ()) ())
  in
  let servers =
    Array.map (fun r -> R.Client_server.start r ~port:0) replicas
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter R.Client_server.stop servers;
        Array.iter R.Replica.stop replicas)
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.exists R.Replica.is_leader replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  let client_addrs =
    Array.to_list
      (Array.map
         (fun s ->
            Unix.ADDR_INET (Unix.inet_addr_loopback, R.Client_server.port s))
         servers)
  in
  let client =
    R.Tcp_client.create ~timeout_s:0.4 ~addrs:client_addrs ~client_id:55 ()
  in
  Fun.protect ~finally:(fun () -> R.Tcp_client.close client) @@ fun () ->
  Alcotest.(check string) "first" "7"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "7")));
  (* Kill the leader's client server AND its replica: the client must
     rotate to a follower, and the cluster must elect a new leader. *)
  let leader_idx = ref 0 in
  Array.iteri (fun i r -> if R.Replica.is_leader r then leader_idx := i) replicas;
  R.Client_server.stop servers.(!leader_idx);
  R.Replica.stop replicas.(!leader_idx);
  Alcotest.(check string) "after failover" "12"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "5")));
  Alcotest.(check bool) "client rotated" true (R.Tcp_client.retries client >= 1)

let suite =
  suite
  @ [ Alcotest.test_case "tcp: client failover" `Quick test_tcp_client_failover ]
