(* Tests for msmr_platform: queues, heap, concurrent map, delay queue,
   thread-state accounting. *)

open Msmr_platform

let test_heap_ordering () =
  let h = Binary_heap.create ~cmp:compare () in
  List.iter (Binary_heap.add h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check int) "length" 7 (Binary_heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Binary_heap.min_elt h);
  let rec drain acc =
    match Binary_heap.pop_min h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain []);
  Alcotest.(check bool) "empty" true (Binary_heap.is_empty h)

let test_heap_duplicates () =
  let h = Binary_heap.create ~cmp:compare () in
  List.iter (Binary_heap.add h) [ 2; 2; 1; 1; 3 ];
  let rec drain acc =
    match Binary_heap.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 3 ] (drain [])

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
       let h = Binary_heap.create ~cmp:compare () in
       List.iter (Binary_heap.add h) xs;
       let rec drain acc =
         match Binary_heap.pop_min h with
         | None -> List.rev acc
         | Some x -> drain (x :: acc)
       in
       drain [] = List.sort compare xs)

let test_bq_fifo () =
  let q = Bounded_queue.create ~capacity:10 in
  List.iter (Bounded_queue.put q) [ 1; 2; 3 ];
  Alcotest.(check int) "len" 3 (Bounded_queue.length q);
  Alcotest.(check int) "t1" 1 (Bounded_queue.take q);
  Alcotest.(check int) "t2" 2 (Bounded_queue.take q);
  Alcotest.(check int) "t3" 3 (Bounded_queue.take q);
  Alcotest.(check (option int)) "empty" None (Bounded_queue.try_take q)

let test_bq_bounded () =
  let q = Bounded_queue.create ~capacity:2 in
  Alcotest.(check bool) "p1" true (Bounded_queue.try_put q 1);
  Alcotest.(check bool) "p2" true (Bounded_queue.try_put q 2);
  Alcotest.(check bool) "full" false (Bounded_queue.try_put q 3);
  Alcotest.(check bool) "is_full" true (Bounded_queue.is_full q);
  ignore (Bounded_queue.take q);
  Alcotest.(check bool) "p3" true (Bounded_queue.try_put q 3)

let test_bq_blocking_put () =
  (* A producer blocked on a full queue resumes when space appears. *)
  let q = Bounded_queue.create ~capacity:1 in
  Bounded_queue.put q 0;
  let done_flag = Atomic.make false in
  let w =
    Worker.spawn ~name:"producer" (fun _st ->
        Bounded_queue.put q 1;
        Atomic.set done_flag true)
  in
  Mclock.sleep_s 0.02;
  Alcotest.(check bool) "still blocked" false (Atomic.get done_flag);
  Alcotest.(check int) "consume" 0 (Bounded_queue.take q);
  Worker.join w;
  Alcotest.(check bool) "unblocked" true (Atomic.get done_flag);
  Alcotest.(check int) "value arrived" 1 (Bounded_queue.take q)

let test_bq_close_wakes_consumer () =
  let q : int Bounded_queue.t = Bounded_queue.create ~capacity:4 in
  let got_closed = Atomic.make false in
  let w =
    Worker.spawn ~name:"consumer" (fun _st ->
        match Bounded_queue.take q with
        | exception Bounded_queue.Closed -> Atomic.set got_closed true
        | _ -> ())
  in
  Mclock.sleep_s 0.02;
  Bounded_queue.close q;
  Worker.join w;
  Alcotest.(check bool) "woken with Closed" true (Atomic.get got_closed)

let test_bq_close_drains () =
  let q = Bounded_queue.create ~capacity:4 in
  Bounded_queue.put q 1;
  Bounded_queue.put q 2;
  Bounded_queue.close q;
  Alcotest.(check int) "drain 1" 1 (Bounded_queue.take q);
  Alcotest.(check int) "drain 2" 2 (Bounded_queue.take q);
  Alcotest.check_raises "then Closed" Bounded_queue.Closed (fun () ->
      ignore (Bounded_queue.take q));
  Alcotest.check_raises "put raises" Bounded_queue.Closed (fun () ->
      Bounded_queue.put q 3)

let test_bq_take_batch () =
  let q = Bounded_queue.create ~capacity:10 in
  List.iter (Bounded_queue.put q) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "batch of 3" [ 1; 2; 3 ]
    (Bounded_queue.take_batch q ~max:3);
  Alcotest.(check (list int)) "rest" [ 4; 5 ]
    (Bounded_queue.take_batch q ~max:10)

let test_bq_take_timeout () =
  let q : int Bounded_queue.t = Bounded_queue.create ~capacity:4 in
  let t0 = Mclock.now_ns () in
  Alcotest.(check (option int)) "times out" None
    (Bounded_queue.take_timeout q ~timeout_s:0.03);
  let dt = Mclock.s_of_ns (Int64.sub (Mclock.now_ns ()) t0) in
  Alcotest.(check bool) "waited >= 25ms" true (dt >= 0.025);
  Bounded_queue.put q 7;
  Alcotest.(check (option int)) "immediate" (Some 7)
    (Bounded_queue.take_timeout q ~timeout_s:0.5)

let test_bq_concurrent_sum () =
  (* 4 producers, 2 consumers; every element is consumed exactly once. *)
  let q = Bounded_queue.create ~capacity:16 in
  let per_producer = 500 in
  let producers =
    List.init 4 (fun p ->
        Worker.spawn ~name:(Printf.sprintf "prod-%d" p) (fun _ ->
            for i = 0 to per_producer - 1 do
              Bounded_queue.put q ((p * per_producer) + i)
            done))
  in
  let seen = Atomic.make 0 and sum = Atomic.make 0 in
  let total = 4 * per_producer in
  let consumers =
    List.init 2 (fun c ->
        Worker.spawn ~name:(Printf.sprintf "cons-%d" c) (fun _ ->
            let continue = ref true in
            while !continue do
              match Bounded_queue.take q with
              | v ->
                ignore (Atomic.fetch_and_add sum v);
                if Atomic.fetch_and_add seen 1 = total - 1 then
                  Bounded_queue.close q
              | exception Bounded_queue.Closed -> continue := false
            done))
  in
  Worker.join_all producers;
  Worker.join_all consumers;
  Alcotest.(check int) "count" total (Atomic.get seen);
  Alcotest.(check int) "sum" (total * (total - 1) / 2) (Atomic.get sum)

let test_mpsc_fifo () =
  let q = Mpsc_queue.create () in
  Alcotest.(check bool) "empty" true (Mpsc_queue.is_empty q);
  List.iter (Mpsc_queue.push q) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "drain" [ 1; 2; 3 ] (Mpsc_queue.drain q);
  Alcotest.(check (option int)) "then empty" None (Mpsc_queue.pop q)

let test_mpsc_concurrent () =
  let q = Mpsc_queue.create () in
  let per = 2000 and nprod = 4 in
  let producers =
    List.init nprod (fun p ->
        Worker.spawn ~name:(Printf.sprintf "mpsc-prod-%d" p) (fun _ ->
            for i = 0 to per - 1 do
              Mpsc_queue.push q ((p, i))
            done))
  in
  (* Single consumer: per-producer order must be preserved. *)
  let last = Array.make nprod (-1) in
  let count = ref 0 in
  let ok = ref true in
  while !count < per * nprod do
    match Mpsc_queue.pop q with
    | None -> Thread.yield ()
    | Some (p, i) ->
      if i <> last.(p) + 1 then ok := false;
      last.(p) <- i;
      incr count
  done;
  Worker.join_all producers;
  Alcotest.(check bool) "per-producer FIFO" true !ok;
  Alcotest.(check int) "all received" (per * nprod) !count

let test_cmap_basic () =
  let m = Concurrent_map.create () in
  Alcotest.(check (option string)) "miss" None (Concurrent_map.find_opt m 1);
  Concurrent_map.set m 1 "one";
  Concurrent_map.set m 2 "two";
  Alcotest.(check (option string)) "hit" (Some "one") (Concurrent_map.find_opt m 1);
  Alcotest.(check int) "len" 2 (Concurrent_map.length m);
  Concurrent_map.set m 1 "uno";
  Alcotest.(check (option string)) "replace" (Some "uno") (Concurrent_map.find_opt m 1);
  Alcotest.(check int) "len stable" 2 (Concurrent_map.length m);
  Concurrent_map.remove m 1;
  Alcotest.(check bool) "removed" false (Concurrent_map.mem m 1);
  Concurrent_map.clear m;
  Alcotest.(check int) "cleared" 0 (Concurrent_map.length m)

let test_cmap_update () =
  let m = Concurrent_map.create ~shards:4 () in
  Concurrent_map.update m "k" (function None -> Some 1 | Some v -> Some (v + 1));
  Concurrent_map.update m "k" (function None -> Some 1 | Some v -> Some (v + 1));
  Alcotest.(check (option int)) "counted" (Some 2) (Concurrent_map.find_opt m "k");
  Concurrent_map.update m "k" (fun _ -> None);
  Alcotest.(check bool) "deleted" false (Concurrent_map.mem m "k")

let test_cmap_concurrent_counters () =
  let m = Concurrent_map.create ~shards:8 () in
  let nthreads = 4 and iters = 1000 in
  let keys = [ "a"; "b"; "c" ] in
  let ws =
    List.init nthreads (fun i ->
        Worker.spawn ~name:(Printf.sprintf "cmap-%d" i) (fun _ ->
            for _ = 1 to iters do
              List.iter
                (fun k ->
                   Concurrent_map.update m k (function
                     | None -> Some 1
                     | Some v -> Some (v + 1)))
                keys
            done))
  in
  Worker.join_all ws;
  List.iter
    (fun k ->
       Alcotest.(check (option int))
         (Printf.sprintf "key %s" k)
         (Some (nthreads * iters))
         (Concurrent_map.find_opt m k))
    keys

let prop_cmap_models_hashtbl =
  (* A sequence of set/remove operations applied to the concurrent map
     agrees with a plain Hashtbl. *)
  QCheck.Test.make ~name:"concurrent map models hashtbl (sequential)"
    ~count:100
    QCheck.(list (pair (int_bound 50) (option (int_bound 1000))))
    (fun ops ->
       let m = Concurrent_map.create ~shards:4 () in
       let h = Hashtbl.create 16 in
       List.iter
         (fun (k, v) ->
            match v with
            | Some v -> Concurrent_map.set m k v; Hashtbl.replace h k v
            | None -> Concurrent_map.remove m k; Hashtbl.remove h k)
         ops;
       Hashtbl.fold
         (fun k v acc -> acc && Concurrent_map.find_opt m k = Some v)
         h
         (Concurrent_map.length m = Hashtbl.length h))

let test_delay_queue_order () =
  let dq = Delay_queue.create () in
  let now = Mclock.now_ns () in
  ignore (Delay_queue.schedule dq ~at_ns:(Int64.add now 300L) "c");
  ignore (Delay_queue.schedule dq ~at_ns:(Int64.add now 100L) "a");
  ignore (Delay_queue.schedule dq ~at_ns:(Int64.add now 200L) "b");
  let later = Int64.add now 1_000L in
  Alcotest.(check (option string)) "a" (Some "a") (Delay_queue.pop_due dq ~now_ns:later);
  Alcotest.(check (option string)) "b" (Some "b") (Delay_queue.pop_due dq ~now_ns:later);
  Alcotest.(check (option string)) "c" (Some "c") (Delay_queue.pop_due dq ~now_ns:later);
  Alcotest.(check (option string)) "done" None (Delay_queue.pop_due dq ~now_ns:later)

let test_delay_queue_not_due () =
  let dq = Delay_queue.create () in
  let now = Mclock.now_ns () in
  ignore (Delay_queue.schedule dq ~at_ns:(Int64.add now 1_000_000_000L) "later");
  Alcotest.(check (option string)) "not yet" None (Delay_queue.pop_due dq ~now_ns:now);
  Alcotest.(check int) "pending" 1 (Delay_queue.pending dq)

let test_delay_queue_cancel () =
  let dq = Delay_queue.create () in
  let now = Mclock.now_ns () in
  let h1 = Delay_queue.schedule dq ~at_ns:(Int64.add now 10L) "cancelled" in
  ignore (Delay_queue.schedule dq ~at_ns:(Int64.add now 20L) "kept");
  Delay_queue.cancel h1;
  Alcotest.(check bool) "flag" true (Delay_queue.is_cancelled h1);
  Alcotest.(check (option string)) "skips cancelled" (Some "kept")
    (Delay_queue.pop_due dq ~now_ns:(Int64.add now 100L));
  Alcotest.(check (option string)) "empty" None
    (Delay_queue.pop_due dq ~now_ns:(Int64.add now 100L))

let test_delay_queue_take_blocks_until_due () =
  let dq = Delay_queue.create () in
  let now = Mclock.now_ns () in
  ignore (Delay_queue.schedule dq ~at_ns:(Int64.add now (Mclock.ns_of_s 0.03)) "x");
  let t0 = Mclock.now_ns () in
  Alcotest.(check string) "value" "x" (Delay_queue.take dq);
  let dt = Mclock.s_of_ns (Int64.sub (Mclock.now_ns ()) t0) in
  Alcotest.(check bool) "waited" true (dt >= 0.02)

let test_thread_state_accounting () =
  let st = Thread_state.create ~name:"probe" in
  Thread_state.enter st Thread_state.Waiting (fun () -> Mclock.sleep_s 0.03);
  Mclock.sleep_s 0.01;
  let tot = Thread_state.totals st in
  Thread_state.unregister st;
  Alcotest.(check bool) "waiting >= 25ms" true
    (Mclock.s_of_ns tot.Thread_state.waiting_ns >= 0.025);
  Alcotest.(check bool) "busy >= 8ms" true
    (Mclock.s_of_ns tot.Thread_state.busy_ns >= 0.008)

let test_thread_state_registry () =
  let before = List.length (Thread_state.snapshot_all ()) in
  let st = Thread_state.create ~name:"reg-probe" in
  let during = List.length (Thread_state.snapshot_all ()) in
  Thread_state.unregister st;
  let after = List.length (Thread_state.snapshot_all ()) in
  Alcotest.(check int) "added" (before + 1) during;
  Alcotest.(check int) "removed" before after

let test_counter_and_mean () =
  let c = Rate_meter.Counter.create () in
  Rate_meter.Counter.incr c;
  Rate_meter.Counter.add c 4;
  Alcotest.(check int) "counter" 5 (Rate_meter.Counter.get c);
  let m = Rate_meter.Mean.create () in
  List.iter (Rate_meter.Mean.add m) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Rate_meter.Mean.mean m);
  Alcotest.(check bool) "stddev ~2.14" true
    (abs_float (Rate_meter.Mean.stddev m -. 2.13808993) < 1e-6)

let test_worker_failure_capture () =
  let w = Worker.spawn ~name:"dying" (fun _ -> failwith "boom") in
  Worker.join w;
  match Worker.failure w with
  | Some (Failure msg) -> Alcotest.(check string) "msg" "boom" msg
  | _ -> Alcotest.fail "expected captured failure"

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_heap_sorts; prop_cmap_models_hashtbl ]

let suite =
  [
    Alcotest.test_case "heap: ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap: duplicates" `Quick test_heap_duplicates;
    Alcotest.test_case "bqueue: fifo" `Quick test_bq_fifo;
    Alcotest.test_case "bqueue: bounded" `Quick test_bq_bounded;
    Alcotest.test_case "bqueue: blocking put" `Quick test_bq_blocking_put;
    Alcotest.test_case "bqueue: close wakes consumer" `Quick test_bq_close_wakes_consumer;
    Alcotest.test_case "bqueue: close drains" `Quick test_bq_close_drains;
    Alcotest.test_case "bqueue: take_batch" `Quick test_bq_take_batch;
    Alcotest.test_case "bqueue: take_timeout" `Quick test_bq_take_timeout;
    Alcotest.test_case "bqueue: concurrent sum" `Quick test_bq_concurrent_sum;
    Alcotest.test_case "mpsc: fifo" `Quick test_mpsc_fifo;
    Alcotest.test_case "mpsc: concurrent producers" `Quick test_mpsc_concurrent;
    Alcotest.test_case "cmap: basic" `Quick test_cmap_basic;
    Alcotest.test_case "cmap: update" `Quick test_cmap_update;
    Alcotest.test_case "cmap: concurrent counters" `Quick test_cmap_concurrent_counters;
    Alcotest.test_case "delay queue: order" `Quick test_delay_queue_order;
    Alcotest.test_case "delay queue: not due" `Quick test_delay_queue_not_due;
    Alcotest.test_case "delay queue: cancel" `Quick test_delay_queue_cancel;
    Alcotest.test_case "delay queue: take blocks" `Quick test_delay_queue_take_blocks_until_due;
    Alcotest.test_case "thread state: accounting" `Quick test_thread_state_accounting;
    Alcotest.test_case "thread state: registry" `Quick test_thread_state_registry;
    Alcotest.test_case "rate meter: counter/mean" `Quick test_counter_and_mean;
    Alcotest.test_case "worker: failure capture" `Quick test_worker_failure_capture;
  ]
  @ qsuite

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "empty p99" 0. (Histogram.percentile h 0.99);
  List.iter (Histogram.record h) [ 0.001; 0.002; 0.004; 0.100 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check bool) "mean ~26.75ms" true
    (abs_float (Histogram.mean h -. 0.02675) < 0.001);
  (* Buckets have ~4.5% resolution: p50 near 2ms, p100 near 100ms. *)
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 ~2ms" true (p50 > 0.0018 && p50 < 0.0023);
  let p100 = Histogram.percentile h 1.0 in
  Alcotest.(check bool) "p100 ~100ms" true (p100 > 0.09 && p100 < 0.11)

let test_histogram_merge_reset () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 0.01;
  Histogram.record b 0.02;
  Histogram.merge_into ~src:a ~dst:b;
  Alcotest.(check int) "merged" 2 (Histogram.count b);
  Histogram.reset b;
  Alcotest.(check int) "reset" 0 (Histogram.count b)

let test_histogram_concurrent () =
  let h = Histogram.create () in
  let ws =
    List.init 4 (fun i ->
        Worker.spawn ~name:(Printf.sprintf "hist-%d" i) (fun _ ->
            for _ = 1 to 1000 do
              Histogram.record h 0.005
            done))
  in
  Worker.join_all ws;
  Alcotest.(check int) "all recorded" 4000 (Histogram.count h)

let suite =
  suite
  @ [
      Alcotest.test_case "histogram: basics" `Quick test_histogram_basics;
      Alcotest.test_case "histogram: merge/reset" `Quick test_histogram_merge_reset;
      Alcotest.test_case "histogram: concurrent" `Quick test_histogram_concurrent;
    ]
