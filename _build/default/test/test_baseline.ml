(* Tests for msmr_baseline: the ZooKeeper-like contended model. *)

open Msmr_sim

let params ~cores =
  let p = Params.default ~n:3 ~cores () in
  { p with n_clients = 200; warmup = 0.1; duration = 0.4 }

let test_zk_runs () =
  let r = Msmr_baseline.Zk_model.run (params ~cores:2) in
  Alcotest.(check bool) "throughput" true (r.throughput > 1000.);
  Alcotest.(check int) "three replicas" 3 (Array.length r.replicas);
  let names = List.map fst r.replicas.(0).threads in
  List.iter
    (fun expected ->
       Alcotest.(check bool) expected true (List.mem expected names))
    [ "CommitProcessor"; "LearnerHandler:1"; "LearnerHandler:2";
      "ProcessThread"; "Sender:1"; "Sender:2"; "SyncThread" ]

let test_zk_deterministic () =
  let r1 = Msmr_baseline.Zk_model.run (params ~cores:4) in
  let r2 = Msmr_baseline.Zk_model.run (params ~cores:4) in
  Alcotest.(check (float 0.)) "same" r1.throughput r2.throughput

let test_zk_rise_then_collapse () =
  let t cores = (Msmr_baseline.Zk_model.run (params ~cores)).throughput in
  let t1 = t 1 and t6 = t 6 and t24 = t 24 in
  Alcotest.(check bool)
    (Printf.sprintf "rises 1->6 (%.0f -> %.0f)" t1 t6)
    true (t6 > 3. *. t1);
  Alcotest.(check bool)
    (Printf.sprintf "collapses 6->24 (%.0f -> %.0f)" t6 t24)
    true
    (t24 < 0.85 *. t6)

let test_zk_contention_grows_with_cores () =
  let b cores =
    (Msmr_baseline.Zk_model.run (params ~cores)).replicas.(0).blocked_pct
  in
  let b6 = b 6 and b24 = b 24 in
  Alcotest.(check bool)
    (Printf.sprintf "blocked grows (%.0f%% -> %.0f%%)" b6 b24)
    true (b24 > b6 +. 20.);
  Alcotest.(check bool) "past 100% of a core" true (b24 > 100.)

let suite =
  [
    Alcotest.test_case "zk model: runs" `Quick test_zk_runs;
    Alcotest.test_case "zk model: deterministic" `Quick test_zk_deterministic;
    Alcotest.test_case "zk model: rise then collapse" `Slow test_zk_rise_then_collapse;
    Alcotest.test_case "zk model: contention grows" `Slow test_zk_contention_grows_with_cores;
  ]

(* ---------------- live monolithic baseline ---------------- *)

module Mono = Msmr_baseline.Mono_replica
module Client_msg = Msmr_wire.Client_msg

let mono_cfg =
  { (Msmr_consensus.Config.default ~n:3) with
    max_batch_delay_s = 0.004;
    fd_interval_s = 0.04;
    fd_timeout_s = 0.2 }

(* Simple synchronous call helper against a mono replica. *)
let mono_call replica ~client_id ~seq payload =
  let reply_box = Msmr_platform.Bounded_queue.create ~capacity:1 in
  let raw =
    Client_msg.request_to_bytes { id = { client_id; seq }; payload }
  in
  Mono.submit replica ~raw ~reply_to:(fun b ->
      ignore (Msmr_platform.Bounded_queue.try_put reply_box b));
  match
    Msmr_platform.Bounded_queue.take_timeout reply_box ~timeout_s:3.0
  with
  | Some b -> (Client_msg.reply_of_bytes b).result
  | None -> Alcotest.fail "mono call timed out"

let test_mono_basic_calls () =
  let cluster =
    Mono.Cluster.create ~cfg:mono_cfg
      ~service:(fun () -> Msmr_runtime.Service.accumulator ())
      ()
  in
  Fun.protect ~finally:(fun () -> Mono.Cluster.stop cluster) @@ fun () ->
  let leader = Mono.Cluster.await_leader cluster in
  Alcotest.(check string) "first" "5"
    (Bytes.to_string (mono_call leader ~client_id:1 ~seq:1 (Bytes.of_string "5")));
  Alcotest.(check string) "second" "12"
    (Bytes.to_string (mono_call leader ~client_id:1 ~seq:2 (Bytes.of_string "7")))

let test_mono_replicas_converge () =
  let cluster =
    Mono.Cluster.create ~cfg:mono_cfg
      ~service:(fun () -> Msmr_runtime.Service.accumulator ())
      ()
  in
  Fun.protect ~finally:(fun () -> Mono.Cluster.stop cluster) @@ fun () ->
  let leader = Mono.Cluster.await_leader cluster in
  for i = 1 to 25 do
    ignore (mono_call leader ~client_id:1 ~seq:i (Bytes.of_string "1"))
  done;
  let replicas = Mono.Cluster.replicas cluster in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.for_all (fun r -> Mono.executed_count r = 25) replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Array.iter
    (fun r -> Alcotest.(check int) "executed" 25 (Mono.executed_count r))
    replicas

let test_mono_duplicate_suppression () =
  let cluster =
    Mono.Cluster.create ~cfg:mono_cfg
      ~service:(fun () -> Msmr_runtime.Service.accumulator ())
      ()
  in
  Fun.protect ~finally:(fun () -> Mono.Cluster.stop cluster) @@ fun () ->
  let leader = Mono.Cluster.await_leader cluster in
  let r1 = mono_call leader ~client_id:3 ~seq:1 (Bytes.of_string "9") in
  (* Same (client, seq): cached reply, no re-execution. *)
  let r2 = mono_call leader ~client_id:3 ~seq:1 (Bytes.of_string "9") in
  Alcotest.(check string) "same answer" (Bytes.to_string r1) (Bytes.to_string r2);
  Alcotest.(check string) "9" "9" (Bytes.to_string r1)

let suite =
  suite
  @ [
      Alcotest.test_case "mono: basic calls" `Quick test_mono_basic_calls;
      Alcotest.test_case "mono: replicas converge" `Quick test_mono_replicas_converge;
      Alcotest.test_case "mono: duplicate suppression" `Quick test_mono_duplicate_suppression;
    ]
