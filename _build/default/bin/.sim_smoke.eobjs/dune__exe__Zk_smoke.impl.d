bin/zk_smoke.ml: Array List Msmr_baseline Msmr_sim Printf Sys Unix
