bin/zk_smoke.mli:
