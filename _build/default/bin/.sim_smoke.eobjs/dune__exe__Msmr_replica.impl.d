bin/msmr_replica.ml: Arg Array Cmd Cmdliner List Logs Msmr_consensus Msmr_kv Msmr_runtime Printf String Term Unix
