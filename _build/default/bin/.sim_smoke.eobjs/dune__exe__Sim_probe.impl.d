bin/sim_probe.ml: Array Jpaxos_model Msmr_sim Params Printf
