bin/msmr_client.ml: Arg Array Atomic Bytes Cmd Cmdliner Format Fun List Msmr_platform Msmr_runtime Printf String Term Thread Unix
