bin/msmr_replica.mli:
