bin/msmr_client.mli:
