bin/sim_smoke.mli:
