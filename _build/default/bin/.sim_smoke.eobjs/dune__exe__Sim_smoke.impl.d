bin/sim_smoke.ml: Array List Msmr_sim Printf Sys Unix
