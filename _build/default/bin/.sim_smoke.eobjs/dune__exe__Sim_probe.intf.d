bin/sim_probe.mli:
