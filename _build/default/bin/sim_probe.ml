let () =
  let open Msmr_sim in
  let test ~label ?(rss=false) ?(batchers=1) ?(cio=0) () =
    let p = Params.default ~n:3 ~cores:24 () in
    let p = { p with warmup = 0.3; duration = 1.0; rss; n_batchers = batchers;
              client_io_threads = (if cio > 0 then cio else p.Params.client_io_threads) } in
    let r = Jpaxos_model.run p in
    Printf.printf "%-30s tput=%7.0f lat=%6.2fms inst=%5.2fms cpu=%4.0f%% tx=%7.0fpps\n%!"
      label r.throughput (r.client_latency*.1e3) (r.instance_latency*.1e3)
      r.replicas.(0).cpu_util_pct r.leader_tx_pps
  in
  test ~label:"baseline (wnd10)" ();
  test ~label:"rss on" ~rss:true ();
  test ~label:"rss + 2 batchers" ~rss:true ~batchers:2 ();
  test ~label:"rss + 4 batchers + 8 cio" ~rss:true ~batchers:4 ~cio:8 ();
  ()
