let () =
  let cores = try int_of_string Sys.argv.(1) with _ -> 1 in
  let n = try int_of_string Sys.argv.(2) with _ -> 3 in
  let wnd = try int_of_string Sys.argv.(3) with _ -> 10 in
  let bsz = try int_of_string Sys.argv.(4) with _ -> 1300 in
  let cio = try int_of_string Sys.argv.(5) with _ -> -1 in
  let p = Msmr_sim.Params.default ~n ~cores () in
  let p = { p with warmup = 0.3; duration = 1.0; wnd; bsz;
            client_io_threads =
              (if cio > 0 then cio else p.Msmr_sim.Params.client_io_threads) } in
  let t0 = Unix.gettimeofday () in
  let r = Msmr_sim.Jpaxos_model.run p in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "cores=%d n=%d -> tput=%.0f req/s  lat=%.2fms inst=%.2fms win=%.1f\n"
    cores n r.throughput (r.client_latency *. 1e3) (r.instance_latency *. 1e3) r.avg_window;
  Printf.printf "  queues: req=%.1f prop=%.1f disp=%.2f  batch=%.1f reqs/%.0fB\n"
    r.avg_request_queue r.avg_proposal_queue r.avg_dispatcher_queue r.avg_batch_reqs r.avg_batch_bytes;
  Printf.printf "  leader: cpu=%.0f%% blocked=%.1f%% tx=%.0fpps rx=%.0fpps tx=%.1fMB/s\n"
    r.replicas.(0).cpu_util_pct r.replicas.(0).blocked_pct r.leader_tx_pps r.leader_rx_pps r.leader_tx_mbps;
  Printf.printf "  rtt: leader=%.3fms followers=%.3fms idle=%.3fms\n"
    (r.rtt_leader *. 1e3) (r.rtt_followers *. 1e3) (r.rtt_idle *. 1e3);
  Array.iteri (fun i (rep : Msmr_sim.Jpaxos_model.replica_report) ->
      Printf.printf "  replica %d: cpu=%.0f%% blocked=%.1f%%\n" i rep.cpu_util_pct rep.blocked_pct;
      List.iter (fun (name, (t : Msmr_sim.Sstats.totals)) ->
          Printf.printf "    %-16s busy=%4.1f%% blocked=%4.1f%% waiting=%4.1f%% other=%4.1f%%\n"
            name (100.*.t.busy) (100.*.t.blocked) (100.*.t.waiting) (100.*.t.other))
        rep.threads)
    r.replicas;
  Printf.printf "  events=%d wall=%.1fs\n" r.events wall
