let () =
  let cores = try int_of_string Sys.argv.(1) with _ -> 1 in
  let p = Msmr_sim.Params.default ~n:3 ~cores () in
  let p = { p with warmup = 0.3; duration = 1.0 } in
  let t0 = Unix.gettimeofday () in
  let r = Msmr_baseline.Zk_model.run p in
  Printf.printf "zk cores=%d -> tput=%.0f lat=%.2fms leader cpu=%.0f%% blocked=%.1f%% tx=%.0f rx=%.0f (wall %.1fs)\n"
    cores r.throughput (r.client_latency *. 1e3)
    r.replicas.(0).cpu_util_pct r.replicas.(0).blocked_pct
    r.leader_tx_pps r.leader_rx_pps (Unix.gettimeofday () -. t0);
  List.iter (fun (name, (t : Msmr_sim.Sstats.totals)) ->
      Printf.printf "    %-18s busy=%4.1f%% blocked=%5.1f%% waiting=%4.1f%% other=%4.1f%%\n"
        name (100.*.t.busy) (100.*.t.blocked) (100.*.t.waiting) (100.*.t.other))
    r.replicas.(0).threads
