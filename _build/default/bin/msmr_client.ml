(* Closed-loop TCP load generator, the shape of the paper's workload:
   each client sends one request and waits for the reply before sending
   the next (Section VI). Pass every replica's client address and the
   generator follows leader changes automatically.

     dune exec bin/msmr_client.exe -- --connect 127.0.0.1:5100 \
       --connect 127.0.0.1:5101 --connect 127.0.0.1:5102 \
       --clients 32 --duration 10 --request-size 128 *)

module Histogram = Msmr_platform.Histogram

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> failwith (Printf.sprintf "bad address %S (want host:port)" s)
  | Some i ->
    let host = String.sub s 0 i in
    let port = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    let h = Unix.gethostbyname host in
    Unix.ADDR_INET (h.Unix.h_addr_list.(0), port)

let run connect clients duration request_size =
  let addrs = List.map parse_addr connect in
  let payload = Bytes.make (max 0 (request_size - 16)) 'x' in
  let completed = Atomic.make 0 in
  let retried = Atomic.make 0 in
  let hist = Histogram.create () in
  let stop_at = Unix.gettimeofday () +. duration in
  (* Unique client ids per run so restarted generators are new sessions. *)
  let base = (Unix.getpid () land 0xffff) * 1000 in
  let workers =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
             let c =
               Msmr_runtime.Tcp_client.create ~addrs ~client_id:(base + i) ()
             in
             Fun.protect
               ~finally:(fun () -> Msmr_runtime.Tcp_client.close c)
               (fun () ->
                  try
                    while Unix.gettimeofday () < stop_at do
                      let t0 = Unix.gettimeofday () in
                      ignore (Msmr_runtime.Tcp_client.call c payload);
                      Histogram.record hist (Unix.gettimeofday () -. t0);
                      ignore (Atomic.fetch_and_add completed 1)
                    done;
                    ignore
                      (Atomic.fetch_and_add retried
                         (Msmr_runtime.Tcp_client.retries c))
                  with Failure _ -> ()))
          ())
  in
  List.iter Thread.join workers;
  let total = Atomic.get completed in
  Printf.printf "clients=%d duration=%.1fs requests=%d throughput=%.0f req/s retries=%d\n"
    clients duration total
    (float_of_int total /. duration)
    (Atomic.get retried);
  Format.printf "latency: %a@." Histogram.pp_summary hist

open Cmdliner

let connect =
  Arg.(
    non_empty & opt_all string []
    & info [ "connect" ]
        ~doc:"Replica client address host:port (repeat for failover).")

let clients =
  Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Concurrent closed-loop clients.")

let duration =
  Arg.(value & opt float 10. & info [ "duration" ] ~doc:"Run length in seconds.")

let request_size =
  Arg.(value & opt int 128 & info [ "request-size" ] ~doc:"Request wire size in bytes.")

let cmd =
  Cmd.v
    (Cmd.info "msmr_client" ~doc:"Closed-loop load generator")
    Term.(const run $ connect $ clients $ duration $ request_size)

let () = exit (Cmd.eval cmd)
