(* Per-thread profiling of a live replica under load — the runtime
   counterpart of the paper's Figure 8 methodology (busy / blocked /
   waiting / other per thread), using the Thread_state accounting wired
   into every queue of the architecture.

     dune exec examples/profile_threads.exe *)

module R = Msmr_runtime

let () =
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with max_batch_delay_s = 0.002 }
  in
  let cluster =
    R.Replica.Cluster.create ~client_io_threads:2 ~cfg
      ~service:(fun () -> R.Service.null ())
      ()
  in
  Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
  @@ fun () ->
  ignore (R.Replica.Cluster.await_leader cluster);
  (* Warm up, then reset the accounting so the report covers steady
     state only (the paper discards the first 10% of each run). *)
  let load_for ~first_id seconds n_clients =
    let stop_at =
      Int64.add (Msmr_platform.Mclock.now_ns ())
        (Msmr_platform.Mclock.ns_of_s seconds)
    in
    let workers =
      List.init n_clients (fun i ->
          Thread.create
            (fun () ->
               let c = R.Client.create ~cluster ~client_id:(first_id + i) () in
               let payload = Bytes.make 112 'x' in
               while
                 Int64.compare (Msmr_platform.Mclock.now_ns ()) stop_at < 0
               do
                 ignore (R.Client.call c payload)
               done)
            ())
    in
    List.iter Thread.join workers
  in
  (* Client ids double as session ids: each phase uses fresh ids, since
     the reply cache treats a reused id with a restarted sequence number
     as a duplicate (at-most-once semantics). *)
  load_for ~first_id:1 0.5 8;
  Msmr_platform.Thread_state.reset_all ();
  load_for ~first_id:101 2.0 8;
  print_endline "per-thread profile of all three replicas (steady state):";
  Format.printf "%a%!" Msmr_platform.Thread_state.pp_report
    (Msmr_platform.Thread_state.snapshot_all ());
  print_endline "profile_threads OK"
