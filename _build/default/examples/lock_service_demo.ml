(* Chubby-style replicated lock service: the other workload the paper's
   introduction names (lock servers). Workers contend for a lock to run a
   critical section; losing workers poll; expiring a crashed session
   frees its lock.

     dune exec examples/lock_service_demo.exe *)

module R = Msmr_runtime
module L = Msmr_kv.Lock_service

let call client cmd =
  L.decode_reply (R.Client.call client (L.encode_command cmd))

let () =
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with max_batch_delay_s = 0.002 }
  in
  let cluster = R.Replica.Cluster.create ~cfg ~service:L.make () in
  Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
  @@ fun () ->
  ignore (R.Replica.Cluster.await_leader cluster);

  let in_cs = Atomic.make 0 in          (* critical-section occupancy *)
  let max_seen = Atomic.make 0 in
  let entries = Atomic.make 0 in

  (* Four workers contend for /locks/resource with try-lock + poll. *)
  let worker sid () =
    let client = R.Client.create ~cluster ~client_id:sid () in
    for _round = 1 to 3 do
      let rec acquire () =
        match call client (L.Acquire "/locks/resource") with
        | L.Granted -> ()
        | L.Busy _ ->
          Thread.yield ();
          Msmr_platform.Mclock.sleep_s 0.002;
          acquire ()
        | _ -> failwith "unexpected acquire reply"
      in
      acquire ();
      (* Critical section: mutual exclusion must hold. *)
      let now_in = Atomic.fetch_and_add in_cs 1 + 1 in
      if now_in > Atomic.get max_seen then Atomic.set max_seen now_in;
      ignore (Atomic.fetch_and_add entries 1);
      Msmr_platform.Mclock.sleep_s 0.002;
      ignore (Atomic.fetch_and_add in_cs (-1));
      match call client (L.Release "/locks/resource") with
      | L.Released -> ()
      | _ -> failwith "release failed"
    done
  in
  let workers = List.init 4 (fun i -> Thread.create (worker (i + 1)) ()) in
  List.iter Thread.join workers;
  Printf.printf "critical-section entries: %d, max concurrent: %d\n%!"
    (Atomic.get entries) (Atomic.get max_seen);
  assert (Atomic.get entries = 12);
  assert (Atomic.get max_seen = 1);

  (* A holder "crashes" while holding the lock; expiring its session
     frees the lock for everyone else. *)
  let crasher = R.Client.create ~cluster ~client_id:99 () in
  (match call crasher (L.Acquire "/locks/resource") with
   | L.Granted -> ()
   | _ -> failwith "acquire failed");
  let admin = R.Client.create ~cluster ~client_id:100 () in
  (match call admin (L.Acquire "/locks/resource") with
   | L.Busy holder -> Printf.printf "lock held by crashed session %d\n%!" holder
   | _ -> failwith "expected Busy");
  (match call admin (L.Expire_session 99) with
   | L.Expired n -> Printf.printf "expired session 99: %d lock(s) freed\n%!" n
   | _ -> failwith "expire failed");
  (match call admin (L.Acquire "/locks/resource") with
   | L.Granted -> print_endline "admin acquired the freed lock"
   | _ -> failwith "expected Granted");
  print_endline "lock_service OK"
