(* Quickstart: bring up a 3-replica in-process cluster, run a few
   requests against the replicated accumulator service, crash the
   leader, and show that the cluster keeps answering with its state
   intact.

     dune exec examples/quickstart.exe *)

module R = Msmr_runtime

let () =
  (* 1. Configure a 3-replica group. WND (pipelining) and BSZ (batching)
     are the paper's two tuning knobs; the defaults are the paper's
     settings (WND=10, BSZ=1300 bytes). *)
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 0.002;  (* flush small batches quickly *)
      fd_interval_s = 0.05;       (* fast failure detection for the demo *)
      fd_timeout_s = 0.25 }
  in

  (* 2. Start the cluster. Each replica runs the full threading
     architecture: ClientIO pool, Batcher, Protocol, FailureDetector,
     Retransmitter, ReplicaIO send/receive pairs and the ServiceManager. *)
  let cluster =
    R.Replica.Cluster.create ~cfg
      ~service:(fun () -> R.Service.accumulator ())
      ()
  in
  Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
  @@ fun () ->
  let leader = R.Replica.Cluster.await_leader cluster in
  Printf.printf "cluster up; replica %d is the leader of view %d\n%!"
    (R.Replica.me leader) (R.Replica.current_view leader);

  (* 3. Run requests through the replicated state machine. The
     accumulator adds the (decimal) payload to a running sum. *)
  let client = R.Client.create ~timeout_s:0.5 ~cluster ~client_id:1 () in
  List.iter
    (fun v ->
       let reply = R.Client.call client (Bytes.of_string (string_of_int v)) in
       Printf.printf "  add %d -> sum = %s\n%!" v (Bytes.to_string reply))
    [ 10; 20; 12 ];

  (* 4. Kill the leader (cut all its network traffic). The failure
     detector times out, a follower runs Phase 1 of Paxos and takes
     over. *)
  Printf.printf "cutting the leader's network...\n%!";
  Msmr_runtime.Transport.Hub.cut
    (R.Replica.Cluster.hub cluster)
    (R.Replica.me leader);

  (* 5. The same client keeps working (it retries and follows the new
     leader); the replicated state survived the failover. *)
  let reply = R.Client.call client (Bytes.of_string "8") in
  Printf.printf "after failover: add 8 -> sum = %s (expected 50)\n%!"
    (Bytes.to_string reply);
  (* The cut replica still believes it leads; look for a live claimant. *)
  let new_leader =
    let replicas = R.Replica.Cluster.replicas cluster in
    let old = R.Replica.me leader in
    match
      Array.find_opt
        (fun r -> R.Replica.me r <> old && R.Replica.is_leader r)
        replicas
    with
    | Some r -> r
    | None -> failwith "no new leader"
  in
  Printf.printf "new leader is replica %d in view %d (retries: %d)\n%!"
    (R.Replica.me new_leader)
    (R.Replica.current_view new_leader)
    (R.Client.retries client);
  assert (Bytes.to_string reply = "50");
  print_endline "quickstart OK"
