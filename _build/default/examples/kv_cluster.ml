(* Replicated key-value store: the coordination-service workload the
   paper's introduction motivates (ZooKeeper-style ephemeral nodes).

   Several concurrent "sessions" register ephemeral presence keys and
   bump shared counters; we then expire one session and check that its
   ephemeral keys vanish on every replica while the counters survive.

     dune exec examples/kv_cluster.exe *)

module R = Msmr_runtime
module Kv = Msmr_kv.Kv_service

let call client cmd =
  Kv.decode_reply (R.Client.call client (Kv.encode_command cmd))

let () =
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with max_batch_delay_s = 0.002 }
  in
  let cluster = R.Replica.Cluster.create ~cfg ~service:Kv.make () in
  Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
  @@ fun () ->
  ignore (R.Replica.Cluster.await_leader cluster);

  (* Three sessions (client ids double as session ids). *)
  let sessions =
    List.init 3 (fun i ->
        (i + 1, R.Client.create ~cluster ~client_id:(i + 1) ()))
  in

  (* Each session: publish an ephemeral presence node and bump a shared
     counter a few times, concurrently. *)
  let workers =
    List.map
      (fun (sid, client) ->
         Thread.create
           (fun () ->
              (match
                 call client
                   (Kv.Put
                      { key = Printf.sprintf "/members/s%d" sid;
                        value = Printf.sprintf "session-%d" sid;
                        ephemeral = true })
               with
               | Kv.Ok_unit -> ()
               | _ -> failwith "put failed");
              for _ = 1 to 10 do
                match call client (Kv.Incr { key = "/counter"; by = 1 }) with
                | Kv.Ok_int _ -> ()
                | _ -> failwith "incr failed"
              done)
           ())
      sessions
  in
  List.iter Thread.join workers;

  let _, c1 = List.hd sessions in
  (match call c1 (Kv.List_keys "/members/") with
   | Kv.Ok_keys keys ->
     Printf.printf "members: %s\n%!" (String.concat ", " keys);
     assert (List.length keys = 3)
   | _ -> failwith "list failed");
  (match call c1 (Kv.Get "/counter") with
   | Kv.Ok_value (Some v) ->
     Printf.printf "counter after 3x10 increments: %s\n%!" v;
     assert (v = "30")
   | _ -> failwith "get failed");

  (* Session 2 "crashes": an administrator (or lease keeper) expires it;
     its ephemeral nodes disappear, everything else stays. *)
  (match call c1 (Kv.Expire_session 2) with
   | Kv.Ok_int n -> Printf.printf "expired session 2: %d key(s) removed\n%!" n
   | _ -> failwith "expire failed");
  (match call c1 (Kv.List_keys "/members/") with
   | Kv.Ok_keys keys ->
     Printf.printf "members now: %s\n%!" (String.concat ", " keys);
     assert (keys = [ "/members/s1"; "/members/s3" ])
   | _ -> failwith "list failed");

  (* All replicas converge to the same executed prefix. *)
  let replicas = R.Replica.Cluster.replicas cluster in
  let target = R.Replica.executed_count replicas.(0) in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not
       (Array.for_all (fun r -> R.Replica.executed_count r = target) replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Array.iter
    (fun r ->
       Printf.printf "replica %d executed %d requests\n%!" (R.Replica.me r)
         (R.Replica.executed_count r))
    replicas;
  print_endline "kv_cluster OK"
