examples/profile_threads.ml: Bytes Format Fun Int64 List Msmr_consensus Msmr_platform Msmr_runtime Thread
