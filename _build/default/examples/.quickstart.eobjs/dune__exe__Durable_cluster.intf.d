examples/durable_cluster.mli:
