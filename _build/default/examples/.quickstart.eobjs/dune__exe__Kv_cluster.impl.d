examples/kv_cluster.ml: Array Fun List Msmr_consensus Msmr_kv Msmr_runtime Printf String Thread Unix
