examples/durable_cluster.ml: Array Filename Fun List Msmr_consensus Msmr_kv Msmr_platform Msmr_runtime Msmr_storage Printf Sys Unix
