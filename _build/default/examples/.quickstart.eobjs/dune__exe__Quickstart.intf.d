examples/quickstart.mli:
