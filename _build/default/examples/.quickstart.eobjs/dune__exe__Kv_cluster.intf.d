examples/kv_cluster.mli:
