examples/quickstart.ml: Array Bytes Fun List Msmr_consensus Msmr_runtime Printf
