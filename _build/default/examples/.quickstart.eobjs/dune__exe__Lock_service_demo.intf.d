examples/lock_service_demo.mli:
