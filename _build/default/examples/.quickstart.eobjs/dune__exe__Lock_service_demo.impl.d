examples/lock_service_demo.ml: Atomic Fun List Msmr_consensus Msmr_kv Msmr_platform Msmr_runtime Printf Thread
