examples/profile_threads.mli:
