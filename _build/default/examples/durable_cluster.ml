(* Durability: run a replicated KV cluster with a write-ahead log, stop
   every replica ("power failure"), then start a brand-new cluster from
   the same directories and show the data is still there — including
   state that only exists in snapshots plus the WAL tail.

     dune exec examples/durable_cluster.exe *)

module R = Msmr_runtime
module Kv = Msmr_kv.Kv_service

let call client cmd =
  Kv.decode_reply (R.Client.call client (Kv.encode_command cmd))

let () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msmr-durable-demo-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 0.002;
      snapshot_every = 4;        (* checkpoint often for the demo *)
      log_retain = 2 }
  in
  let durability me =
    R.Replica.Durable
      { dir = Filename.concat root (Printf.sprintf "replica-%d" me);
        sync = Msmr_storage.Wal.Sync_periodic }
  in
  let with_cluster phase f =
    Printf.printf "--- %s ---\n%!" phase;
    let cluster =
      R.Replica.Cluster.create ~durability ~cfg ~service:Kv.make ()
    in
    Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster) (fun () ->
        ignore (R.Replica.Cluster.await_leader cluster);
        f cluster)
  in

  (* Phase 1: write data; snapshots and WAL records land on disk. *)
  with_cluster "phase 1: populate" (fun cluster ->
      let client = R.Client.create ~cluster ~client_id:1 () in
      for i = 1 to 9 do
        match
          call client
            (Kv.Put
               { key = Printf.sprintf "/config/key%d" i;
                 value = Printf.sprintf "value-%d" i;
                 ephemeral = false })
        with
        | Kv.Ok_unit -> ()
        | _ -> failwith "put failed"
      done;
      (match call client (Kv.Incr { key = "/epoch"; by = 1 }) with
       | Kv.Ok_int 1 -> ()
       | _ -> failwith "incr failed");
      Printf.printf "wrote 9 keys + /epoch=1\n%!";
      (* Leave the syncer a beat to flush the WAL tail. *)
      Msmr_platform.Mclock.sleep_s 0.05);

  Printf.printf "(all replicas stopped; state only on disk now)\n%!";

  (* Phase 2: a new cluster recovers everything. *)
  with_cluster "phase 2: recover" (fun cluster ->
      let client = R.Client.create ~cluster ~client_id:2 () in
      (match call client (Kv.Get "/config/key7") with
       | Kv.Ok_value (Some v) ->
         Printf.printf "recovered /config/key7 = %s\n%!" v;
         assert (v = "value-7")
       | _ -> failwith "key7 lost");
      (match call client (Kv.List_keys "/config/") with
       | Kv.Ok_keys keys ->
         Printf.printf "recovered %d /config keys\n%!" (List.length keys);
         assert (List.length keys = 9)
       | _ -> failwith "list failed");
      (match call client (Kv.Incr { key = "/epoch"; by = 1 }) with
       | Kv.Ok_int n ->
         Printf.printf "epoch after second boot: %d (expected 2)\n%!" n;
         assert (n = 2)
       | _ -> failwith "incr failed");
      Msmr_platform.Mclock.sleep_s 0.05);
  print_endline "durable_cluster OK"
