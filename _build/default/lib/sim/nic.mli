(** Simulated network interface / kernel network subsystem.

    Each node has one NIC with a TX path and an RX path, each modelled as
    a single-server FIFO queue with a fixed per-packet service time —
    reproducing the pre-2.6.35 Linux bottleneck the paper identifies
    (all NIC interrupts steered to a single core), which caps each
    direction at roughly [pkt_rate] packets/second regardless of how many
    application cores the node has. Bandwidth is capped separately
    ([bandwidth] bytes/s), and messages larger than the MTU are split
    into multiple packets.

    Message delivery: [send src ~dst ~size k] queues the message on
    [src]'s TX; after TX service and the propagation delay it queues on
    [dst]'s RX; after RX service the continuation [k] runs at [dst]. The
    round-trip inflation seen by the paper's Table II falls out of the
    queueing: probes through a loaded NIC wait behind data packets. *)

type t

val create :
  Engine.t ->
  ?pkt_rate:float ->
  ?bandwidth:float ->
  ?mtu:int ->
  ?propagation:float ->
  name:string ->
  unit ->
  t
(** Defaults from the paper's testbed: 150e3 pkts/s per direction,
    114 MB/s, MTU 1500 B, propagation 15 µs one-way (≈0.06 ms idle
    RTT including four packet service times). *)

val send : t -> dst:t -> size:int -> (unit -> unit) -> unit
(** Non-blocking enqueue (the sender thread has already paid its CPU
    serialisation cost; kernel buffering decouples it). *)

val rtt_probe : t -> dst:t -> (float -> unit) -> unit
(** Send a 64-byte probe and echo it back immediately from [dst]'s RX
    (like ICMP, bypassing application queues); the callback receives the
    measured round-trip time in seconds. *)

val tx_packets : t -> int
val rx_packets : t -> int
val tx_bytes : t -> int
val rx_bytes : t -> int
val tx_queue_len : t -> int
val rx_queue_len : t -> int
val reset_counters : t -> unit

val rx_inject : t -> size:int -> (unit -> unit) -> unit
(** Deliver a message into this NIC's RX path directly — used for traffic
    from senders whose own NIC is not modelled (the client machines). *)

val send_to_wire : t -> size:int -> (unit -> unit) -> unit
(** Send through this NIC's TX path to a receiver whose NIC is not
    modelled (replies back to client machines); the callback fires after
    TX service plus propagation. *)
