(* Two cascaded single-server stages per direction:
   - the *kernel* stage models per-packet softirq/TCP processing, capped
     at [pkt_rate] packets/s — the pre-2.6.35 single-queue bottleneck the
     paper identifies (Section VI-D);
   - the *wire* stage models 1 GbE serialisation at [bandwidth] bytes/s
     (with per-packet framing overhead), which in the paper's experiments
     never exceeds ~40% utilisation.
   TX passes kernel -> wire -> propagation; RX passes kernel only (the
   sender's wire already serialised the frames). *)

type job = {
  j_size : int;        (* payload bytes *)
  j_pkts : int;
  j_k : unit -> unit;  (* continuation after this stage *)
}

type server = {
  eng : Engine.t;
  service : job -> float;
  q : job Queue.t;
  mutable busy : bool;
  mutable packets : int;
  mutable bytes : int;
}

let frame_overhead = 58  (* Ethernet + IP + TCP headers per packet *)

let rec serve s =
  match Queue.pop s.q with
  | exception Queue.Empty -> s.busy <- false
  | job ->
    s.packets <- s.packets + job.j_pkts;
    s.bytes <- s.bytes + job.j_size;
    Engine.schedule_at s.eng
      (Engine.now s.eng +. s.service job)
      (fun () ->
         job.j_k ();
         serve s)

let enqueue s job =
  Queue.push job s.q;
  if not s.busy then begin
    s.busy <- true;
    serve s
  end

let make_server eng service =
  { eng; service; q = Queue.create (); busy = false; packets = 0; bytes = 0 }

type t = {
  nname : string;
  tx_kernel : server;
  tx_wire : server;
  rx_kernel : server;
  propagation : float;
  mtu : int;
}

let create eng ?(pkt_rate = 150e3) ?(bandwidth = 114e6) ?(mtu = 1500)
    ?(propagation = 15e-6) ~name () =
  let per_pkt = 1.0 /. pkt_rate in
  let kernel_service job = float_of_int job.j_pkts *. per_pkt in
  let wire_service job =
    float_of_int (job.j_size + (job.j_pkts * frame_overhead)) /. bandwidth
  in
  { nname = name;
    tx_kernel = make_server eng kernel_service;
    tx_wire = make_server eng wire_service;
    rx_kernel = make_server eng kernel_service;
    propagation;
    mtu }

let packets_of t size = max 1 ((size + t.mtu - 1) / t.mtu)

(* TX: kernel -> wire -> propagation -> [on_wire_out]. *)
let tx t ~size on_wire_out =
  let pkts = packets_of t size in
  enqueue t.tx_kernel
    { j_size = size; j_pkts = pkts;
      j_k =
        (fun () ->
           enqueue t.tx_wire
             { j_size = size; j_pkts = pkts;
               j_k =
                 (fun () ->
                    Engine.schedule_at t.tx_wire.eng
                      (Engine.now t.tx_wire.eng +. t.propagation)
                      on_wire_out) }) }

let rx_inject t ~size k =
  enqueue t.rx_kernel { j_size = size; j_pkts = packets_of t size; j_k = k }

let send t ~dst ~size k = tx t ~size (fun () -> rx_inject dst ~size k)
let send_to_wire t ~size k = tx t ~size k

let rtt_probe t ~dst k =
  let t0 = Engine.now t.tx_kernel.eng in
  send t ~dst ~size:64 (fun () ->
      send dst ~dst:t ~size:64 (fun () -> k (Engine.now t.tx_kernel.eng -. t0)))

let tx_packets t = t.tx_kernel.packets
let rx_packets t = t.rx_kernel.packets
let tx_bytes t = t.tx_kernel.bytes
let rx_bytes t = t.rx_kernel.bytes
let tx_queue_len t = Queue.length t.tx_kernel.q + Queue.length t.tx_wire.q
let rx_queue_len t = Queue.length t.rx_kernel.q

let reset_counters t =
  t.tx_kernel.packets <- 0; t.tx_kernel.bytes <- 0;
  t.tx_wire.packets <- 0; t.tx_wire.bytes <- 0;
  t.rx_kernel.packets <- 0; t.rx_kernel.bytes <- 0
