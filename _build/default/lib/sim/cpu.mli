(** Simulated multi-core CPU with processor sharing.

    Each node has one {!t} with [cores] cores. Simulated threads call
    {!work} to consume CPU time; when more threads are runnable than
    cores, the surplus queues FIFO (accounted as [Other] — runnable but
    not scheduled, exactly the paper's definition).

    Two second-order effects the paper observes are modelled:
    - a context-switch cost charged each time a thread gets a core after
      having had to wait, and on quantum preemption — with more cores
      there are fewer switches, so CPU utilisation grows slower than
      throughput (Section VI-A);
    - optional per-acquisition coherence overhead via {!set_overhead}
      (used by the ZooKeeper baseline model). *)

type t

val create :
  Engine.t ->
  cores:int ->
  ?quantum:float ->
  ?switch_cost:float ->
  unit ->
  t
(** Defaults: quantum 1 ms, switch cost 3 µs. *)

val cores : t -> int

val work : t -> Sstats.thread -> float -> unit
(** Consume [seconds] of CPU on some core, competing with every other
    thread of this node. Re-entrant calls from the same simulated thread
    are forbidden (a thread runs on one core at a time). *)

val set_overhead : t -> (unit -> float) -> unit
(** Extra busy-time multiplier applied to every [work] call: the function
    returns a factor [>= 1.0], evaluated at acquisition time. Used to
    model coherence/cache penalties that grow with parallelism. *)

val consumed : t -> float
(** Total CPU-seconds burned across cores (the paper's "CPU utilisation"
    numerator: 100% = one core fully busy for the whole run). *)

val runnable_waiting : t -> int
(** Threads currently queued for a core. *)

val reset_consumed : t -> unit
