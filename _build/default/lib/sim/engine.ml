module Heap = Msmr_platform.Binary_heap

type event = {
  at : float;
  seq : int;
  fn : unit -> unit;
}

type t = {
  heap : event Heap.t;
  mutable time : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable current_name : string;
}

exception Process_failure of string * exn

let cmp_event a b =
  match Float.compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

let create () =
  { heap = Heap.create ~cmp:cmp_event (); time = 0.; next_seq = 0;
    processed = 0; current_name = "?" }

let now t = t.time

let schedule_at t at fn =
  let at = if at < t.time then t.time else at in
  Heap.add t.heap { at; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let run t ~until =
  let continue = ref true in
  while !continue do
    match Heap.min_elt t.heap with
    | None -> continue := false
    | Some ev when ev.at > until ->
      t.time <- until;
      continue := false
    | Some _ ->
      let ev = Option.get (Heap.pop_min t.heap) in
      t.time <- ev.at;
      t.processed <- t.processed + 1;
      ev.fn ()
  done

let events_processed t = t.processed

(* ------------------------------------------------------------------ *)
(* Effects *)

type 'a resumer = 'a -> unit

type _ Effect.t += Suspend : ('a resumer -> unit) -> 'a Effect.t

let suspend _t register = Effect.perform (Suspend register)

let spawn t ?(name = "proc") f =
  let open Effect.Deep in
  let body () =
    match_with f ()
      { retc = (fun () -> ());
        exnc = (fun e -> raise (Process_failure (name, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
             match eff with
             | Suspend register ->
               Some
                 (fun (k : (a, _) continuation) ->
                    let fired = ref false in
                    register (fun v ->
                        if !fired then
                          invalid_arg "Engine: resumer called twice";
                        fired := true;
                        (* Resume as a fresh event so a resumer invoked
                           from another process cannot nest execution. *)
                        schedule_at t t.time (fun () -> continue k v)))
             | _ -> None) }
  in
  schedule_at t t.time body

let delay t d =
  if d <= 0. then ()
  else
    suspend t (fun resume -> schedule_at t (t.time +. d) (fun () -> resume ()))

type 'a timed_result =
  | Value of 'a
  | Timed_out

let suspend_timeout t ~timeout register =
  suspend t (fun resume ->
      let settled = ref false in
      let once r =
        if not !settled then begin
          settled := true;
          resume r
        end
      in
      register (fun v -> once (Value v));
      schedule_at t (t.time +. timeout) (fun () -> once Timed_out))
