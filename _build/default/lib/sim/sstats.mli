(** Simulated-thread state accounting and time-weighted gauges.

    The simulator's analogue of {!Msmr_platform.Thread_state}: every
    simulated thread tracks busy / blocked / waiting / other integrals in
    simulated time — these are *exact*, unlike the sampled figures of a
    real profiler, but measure the same four states as the paper. *)

type state = Busy | Blocked | Waiting | Other

type thread

val make_thread : Engine.t -> name:string -> thread
(** Starts in [Other] (not yet scheduled). *)

val name : thread -> string
val set : thread -> state -> unit
val state : thread -> state

type totals = {
  busy : float;
  blocked : float;
  waiting : float;
  other : float;
}

val totals : thread -> totals
(** Includes the currently open interval. *)

val reset : thread -> unit
(** Zero the integrals (discard warm-up). *)

val pp_profile : Format.formatter -> (string * totals) list -> unit
(** Percentage breakdown normalised to the longest lifetime (the paper's
    Figure 8 / Figure 14 rendering). *)

module Gauge : sig
  (** Time-weighted average of a sampled quantity (queue lengths, window
      occupancy — Table I). *)

  type t

  val create : Engine.t -> t
  val update : t -> float -> unit
  (** Record that the quantity has had value [v] since the last update. *)

  val avg : t -> float
  val reset : t -> unit
end
