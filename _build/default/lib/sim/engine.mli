(** Deterministic discrete-event simulation engine.

    Processes are written in direct style as ordinary OCaml functions and
    suspended/resumed with effect handlers (OCaml 5), so the simulated
    replica code reads like the threaded runtime it models. The engine is
    single-threaded and fully deterministic: same program, same results.

    Time is a [float] in seconds. Events scheduled for the same instant
    fire in schedule order (a monotone sequence number breaks ties). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time (seconds). *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a process at the current time. Exceptions escaping a process
    abort the simulation with {!Process_failure}. *)

exception Process_failure of string * exn

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Run a callback at an absolute time (>= now). *)

val run : t -> until:float -> unit
(** Execute events until the queue is empty or simulated time exceeds
    [until]. Can be called repeatedly with increasing horizons. *)

val events_processed : t -> int

(** {1 Operations available inside processes} *)

val delay : t -> float -> unit
(** Suspend the calling process for a simulated duration. *)

type 'a resumer = 'a -> unit

val suspend : t -> ('a resumer -> unit) -> 'a
(** [suspend t register] suspends the calling process and hands a resumer
    to [register]. The resumer must be called exactly once, from any
    process or callback; the suspended process continues at the
    simulated time of that call (as a fresh event, never re-entrantly).
    Calling it twice is an error; never calling it leaks the process. *)

type 'a timed_result =
  | Value of 'a
  | Timed_out

val suspend_timeout : t -> timeout:float -> ('a resumer -> unit) -> 'a timed_result
(** Like {!suspend} but resumes with [Timed_out] after [timeout] seconds
    if the resumer has not been invoked by then. A late resumer call is
    ignored (exactly-once is enforced internally). *)
