type 'a t = {
  eng : Engine.t;
  items : 'a Queue.t;
  mutable waiter : (unit -> unit) option;
}

let create eng () = { eng; items = Queue.create (); waiter = None }

let push t v =
  Queue.push v t.items;
  match t.waiter with
  | Some wake ->
    t.waiter <- None;
    wake ()
  | None -> ()

let length t = Queue.length t.items

let rec take t st =
  match Queue.pop t.items with
  | v -> v
  | exception Queue.Empty ->
    Sstats.set st Sstats.Waiting;
    Engine.suspend t.eng (fun resume ->
        assert (t.waiter = None);
        t.waiter <- Some (fun () -> resume ()));
    Sstats.set st Sstats.Busy;
    take t st

let take_timeout t st ~timeout =
  match Queue.pop t.items with
  | v -> Some v
  | exception Queue.Empty ->
    Sstats.set st Sstats.Waiting;
    let r =
      Engine.suspend_timeout t.eng ~timeout (fun resume ->
          t.waiter <- Some (fun () -> resume ()))
    in
    Sstats.set st Sstats.Busy;
    (match r with
     | Engine.Timed_out ->
       (* Drop our stale waiter so a later push does not wake a ghost. *)
       t.waiter <- None;
       (match Queue.pop t.items with v -> Some v | exception Queue.Empty -> None)
     | Engine.Value () -> (
         match Queue.pop t.items with
         | v -> Some v
         | exception Queue.Empty -> None))

let try_pop t =
  match Queue.pop t.items with
  | v -> Some v
  | exception Queue.Empty -> None
