type t = {
  eng : Engine.t;
  n_cores : int;
  quantum : float;
  switch_cost : float;
  mutable free : int;
  waiters : (unit -> unit) Queue.t;
  mutable overhead : unit -> float;
  mutable used : float;
}

let create eng ~cores ?(quantum = 0.001) ?(switch_cost = 3e-6) () =
  if cores <= 0 then invalid_arg "Cpu.create: cores <= 0";
  { eng; n_cores = cores; quantum; switch_cost; free = cores;
    waiters = Queue.create (); overhead = (fun () -> 1.0); used = 0. }

let cores t = t.n_cores
let set_overhead t f = t.overhead <- f
let consumed t = t.used
let runnable_waiting t = Queue.length t.waiters
let reset_consumed t = t.used <- 0.

(* Returns true when the caller had to wait (i.e. was context-switched
   in). *)
let acquire t st =
  if t.free > 0 then begin
    t.free <- t.free - 1;
    false
  end
  else begin
    Sstats.set st Sstats.Other;
    Engine.suspend t.eng (fun resume -> Queue.push resume t.waiters);
    true
  end

let release t =
  match Queue.pop t.waiters with
  | resume -> resume () (* hand the core over directly *)
  | exception Queue.Empty -> t.free <- t.free + 1

let work t st seconds =
  if seconds > 0. then begin
    let switched = acquire t st in
    Sstats.set st Sstats.Busy;
    let remaining =
      ref ((seconds *. t.overhead ())
           +. (if switched then t.switch_cost else 0.))
    in
    let continue = ref true in
    while !continue do
      let slice = Float.min t.quantum !remaining in
      Engine.delay t.eng slice;
      t.used <- t.used +. slice;
      remaining := !remaining -. slice;
      if !remaining <= 0. then continue := false
      else if not (Queue.is_empty t.waiters) then begin
        (* Quantum expired with others runnable: preempt, requeue, and
           pay for the switch when we run again. *)
        release t;
        Sstats.set st Sstats.Other;
        Engine.suspend t.eng (fun resume -> Queue.push resume t.waiters);
        Sstats.set st Sstats.Busy;
        remaining := !remaining +. t.switch_cost
      end
    done;
    release t
  end
