(** Unbounded single-consumer mailbox, safe to push from plain callbacks.

    {!Squeue} operations burn CPU and may suspend, so they can only be
    used from simulated processes. NIC delivery continuations and other
    raw callbacks instead push into a mailbox: [push] never suspends, it
    just enqueues and wakes the (single) waiting consumer. Models a
    kernel socket buffer feeding an application thread. *)

type 'a t

val create : Engine.t -> unit -> 'a t
val push : 'a t -> 'a -> unit
val length : 'a t -> int

val take : 'a t -> Sstats.thread -> 'a
(** Process-only; [Waiting] while empty. *)

val take_timeout : 'a t -> Sstats.thread -> timeout:float -> 'a option

val try_pop : 'a t -> 'a option
(** Non-suspending pop; safe anywhere. *)
