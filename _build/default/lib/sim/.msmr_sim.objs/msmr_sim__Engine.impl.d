lib/sim/engine.ml: Effect Float Msmr_platform Option
