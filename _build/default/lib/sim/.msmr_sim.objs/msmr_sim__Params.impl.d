lib/sim/params.ml:
