lib/sim/sstats.mli: Engine Format
