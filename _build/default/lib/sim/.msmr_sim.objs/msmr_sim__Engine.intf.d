lib/sim/engine.mli:
