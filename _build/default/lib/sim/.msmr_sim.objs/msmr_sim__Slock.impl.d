lib/sim/slock.ml: Engine Fun Queue Sstats
