lib/sim/cpu.mli: Engine Sstats
