lib/sim/squeue.mli: Cpu Engine Sstats
