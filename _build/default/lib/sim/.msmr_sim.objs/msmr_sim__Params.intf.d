lib/sim/params.mli:
