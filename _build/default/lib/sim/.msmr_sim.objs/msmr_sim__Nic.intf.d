lib/sim/nic.mli: Engine
