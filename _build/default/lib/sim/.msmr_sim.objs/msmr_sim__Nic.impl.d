lib/sim/nic.ml: Engine Queue
