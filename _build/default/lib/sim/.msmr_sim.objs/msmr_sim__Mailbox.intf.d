lib/sim/mailbox.mli: Engine Sstats
