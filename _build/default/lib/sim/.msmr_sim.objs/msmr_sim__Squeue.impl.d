lib/sim/squeue.ml: Cpu Engine Queue Slock Sstats
