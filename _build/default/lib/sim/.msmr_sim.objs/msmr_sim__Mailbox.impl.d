lib/sim/mailbox.ml: Engine Queue Sstats
