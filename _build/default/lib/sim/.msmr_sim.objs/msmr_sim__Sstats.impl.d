lib/sim/sstats.ml: Engine Float Format List
