lib/sim/jpaxos_model.mli: Params Sstats
