lib/sim/slock.mli: Engine Sstats
