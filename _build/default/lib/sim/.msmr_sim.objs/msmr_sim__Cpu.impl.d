lib/sim/cpu.ml: Engine Float Queue Sstats
