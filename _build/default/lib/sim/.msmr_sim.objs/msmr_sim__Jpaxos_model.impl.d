lib/sim/jpaxos_model.ml: Array Batch Batcher Bytes Config Cpu Engine Float Hashtbl Int64 List Mailbox Msg Msmr_consensus Msmr_wire Nic Params Paxos Printf Squeue Sstats Types Value
