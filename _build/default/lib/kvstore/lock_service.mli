(** Replicated lock service (Chubby-style, try-lock semantics).

    Locks are named; the holder is the requesting client's session
    (client id). [Acquire] is a try-lock — contenders poll, which keeps
    the service deterministic and every request answerable immediately
    (an RSM reply is 1:1 with its request). [Release] by a non-holder
    fails. [Expire_session] frees everything a crashed client held. *)

type command =
  | Acquire of string
  | Release of string
  | Holder of string
  | Expire_session of int

type reply =
  | Granted
  | Busy of int          (** current holder's session *)
  | Released
  | Not_holder
  | Holder_is of int option
  | Expired of int       (** locks freed *)
  | Error of string

val encode_command : command -> bytes
val decode_command : bytes -> command
val encode_reply : reply -> bytes
val decode_reply : bytes -> reply

val make : unit -> Msmr_runtime.Service.t
