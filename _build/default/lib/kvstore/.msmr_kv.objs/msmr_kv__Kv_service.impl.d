lib/kvstore/kv_service.ml: Hashtbl List Msmr_runtime Msmr_wire Option Printf String
