lib/kvstore/lock_service.ml: Hashtbl List Msmr_runtime Msmr_wire Printf
