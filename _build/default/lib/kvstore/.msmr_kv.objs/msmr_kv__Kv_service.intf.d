lib/kvstore/kv_service.mli: Msmr_runtime
