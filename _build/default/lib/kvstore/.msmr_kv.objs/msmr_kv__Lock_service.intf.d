lib/kvstore/lock_service.mli: Msmr_runtime
