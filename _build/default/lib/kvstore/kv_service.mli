(** Replicated key-value store with ephemeral-node semantics.

    A deterministic service in the style of the paper's motivating
    examples (ZooKeeper-like coordination): string keys and values,
    optional ephemeral ownership (a key bound to the client session that
    created it, deleted when that session expires), and counters. Used by
    the examples and as a realistic (non-null) workload for the live
    runtime.

    Commands and replies are encoded with {!Msmr_wire.Codec}; use
    {!encode_command}/[decode_reply] on the client side and wrap
    {!make} as the replica's service. *)

type command =
  | Put of { key : string; value : string; ephemeral : bool }
  | Get of string
  | Delete of string
  | Incr of { key : string; by : int }    (** counter; creates at 0 *)
  | Expire_session of int
      (** administrative: drop every ephemeral key owned by the session *)
  | List_keys of string                   (** keys with the given prefix *)

type reply =
  | Ok_unit
  | Ok_value of string option
  | Ok_int of int
  | Ok_keys of string list
  | Error of string

val encode_command : command -> bytes
val decode_command : bytes -> command
val encode_reply : reply -> bytes
val decode_reply : bytes -> reply

val make : unit -> Msmr_runtime.Service.t
(** Fresh store. The executing client's id is the session id for
    ephemeral ownership. Snapshot/restore round-trip the full store. *)

(** Direct (non-replicated) access used by tests. *)
module Store : sig
  type t

  val create : unit -> t
  val apply : t -> session:int -> command -> reply
  val snapshot : t -> bytes
  val restore : t -> bytes -> unit
  val size : t -> int
end
