lib/wire/frame.mli: Unix
