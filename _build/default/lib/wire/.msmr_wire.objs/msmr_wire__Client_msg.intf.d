lib/wire/client_msg.mli: Codec Format
