lib/wire/client_msg.ml: Bytes Codec Format
