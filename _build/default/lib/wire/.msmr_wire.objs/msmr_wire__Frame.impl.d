lib/wire/frame.ml: Bytes Int32 Unix
