lib/wire/codec.ml: Bytes Char Int32 Int64 Printf
