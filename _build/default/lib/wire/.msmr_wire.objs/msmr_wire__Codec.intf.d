lib/wire/codec.mli:
