(** Client-facing request and reply messages.

    A request is uniquely identified by [(client_id, seq)]; clients number
    their requests sequentially, which the reply cache uses to guarantee
    at-most-once execution (Section III-B). *)

type request_id = {
  client_id : int;
  seq : int;
}

val compare_request_id : request_id -> request_id -> int
val pp_request_id : Format.formatter -> request_id -> unit

type request = {
  id : request_id;
  payload : bytes;
}

type reply = {
  id : request_id;
  result : bytes;
}

val request_wire_size : request -> int
(** Encoded size in bytes, used by the batching policy (the paper's BSZ
    limit is expressed in bytes of batch payload). *)

val encode_request : Codec.W.t -> request -> unit
val decode_request : Codec.R.t -> request
val encode_reply : Codec.W.t -> reply -> unit
val decode_reply : Codec.R.t -> reply

val request_to_bytes : request -> bytes
val request_of_bytes : bytes -> request
(** @raise Codec.Underflow or {!Codec.Malformed} on bad input. *)

val reply_to_bytes : reply -> bytes
val reply_of_bytes : bytes -> reply

val equal_request : request -> request -> bool
val pp_request : Format.formatter -> request -> unit
