(** Batching policy (pure).

    The Batcher thread (Section V-C1) turns the stream of client requests
    into batches bounded by BSZ bytes ([max_batch_bytes]) or by a delay
    cap: an underfull batch is flushed once its oldest request has waited
    [max_batch_delay_s]. This module is the policy only; the thread around
    it lives in the runtime ([Msmr_runtime.Replication_core]) and the
    simulator models its cost separately. *)

type t

val create : Config.t -> src:Types.node_id -> t

val pending_requests : t -> int
val pending_bytes : t -> int

val add :
  t -> Msmr_wire.Client_msg.request -> now_ns:int64 -> Batch.t option
(** Append a request to the open batch. Returns a completed batch when the
    size limit is reached: either the open batch (with the new request
    folded in when it fits exactly) or the previously open batch when the
    new request would overflow it (the request then starts the next
    batch). A single request larger than BSZ forms its own batch. *)

val flush_due : t -> now_ns:int64 -> Batch.t option
(** Flush the open batch if its oldest request has waited at least
    [max_batch_delay_s]. *)

val force_flush : t -> Batch.t option
(** Flush whatever is pending (used on shutdown and by tests). *)

val deadline_ns : t -> int64 option
(** When {!flush_due} will next have something to do, if anything is
    pending. *)
