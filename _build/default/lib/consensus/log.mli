(** Replicated log: per-instance consensus state.

    The log records, for every instance, the highest-view value this
    replica has accepted and whether the instance is decided. It also
    tracks the two cursors that drive the protocol: [first_undecided]
    (lowest instance not yet decided) and [first_unexecuted] (lowest
    decided instance not yet passed to the service), and supports
    truncation below a snapshot point (log management, Section III-C). *)

type entry = {
  mutable accepted_view : Types.view;   (** -1 when nothing accepted *)
  mutable value : Value.t option;
  mutable decided : bool;
  mutable decided_view : Types.view;    (** view the value was chosen in *)
  mutable acks : int;                   (** leader bookkeeping: Accepted
                                            votes received in [accepted_view],
                                            bitmask over node ids *)
}

type t

val create : unit -> t

val first_undecided : t -> Types.iid
val first_unexecuted : t -> Types.iid
val next_unused : t -> Types.iid
(** One past the highest instance this replica has touched. *)

val low_mark : t -> Types.iid
(** Lowest retained instance; entries below are truncated. *)

val get : t -> Types.iid -> entry option
val get_or_create : t -> Types.iid -> entry

val is_decided : t -> Types.iid -> bool
val decided_value : t -> Types.iid -> Value.t option

val accept : t -> Types.iid -> Types.view -> Value.t -> unit
(** Record acceptance of [value] in [view] (overwrites lower-view
    acceptance; never overwrites a decided entry). *)

val decide : t -> Types.iid -> Types.view -> Value.t -> bool
(** Mark decided; returns [false] if it already was (idempotent).
    Advances [first_undecided] past contiguous decided instances. *)

val next_to_execute : t -> (Types.iid * Value.t) option
(** The next contiguous decided-but-unexecuted instance, if any. *)

val mark_executed : t -> Types.iid -> unit
(** Must be called in order, i.e. with exactly [first_unexecuted]. *)

val undecided_below : t -> Types.iid -> Types.iid list
(** Retained instances in [[low_mark, bound)] not yet decided — the gaps a
    catch-up query should fill. *)

val decided_range : t -> from_iid:Types.iid -> to_iid:Types.iid -> Msg.log_entry list
(** Decided entries with [from_iid <= iid < to_iid] that are still
    retained (for catch-up replies). *)

val entries_from : t -> Types.iid -> Msg.log_entry list
(** Accepted or decided retained entries with [iid >= from]; used to build
    [Prepare_ok]. *)

val truncate_below : t -> Types.iid -> unit
(** Drop entries with [iid < bound]. Does not move the execution cursors;
    callers truncate only below a snapshot point, see {!fast_forward}. *)

val fast_forward : t -> Types.iid -> unit
(** Snapshot installation: jump both cursors to [next_iid], dropping
    everything below. Only moves forward. *)

val in_flight : t -> int
(** Instances proposed/accepted but not decided in the retained suffix —
    compared against WND by the pipelining gate. *)

val pp_stats : Format.formatter -> t -> unit
