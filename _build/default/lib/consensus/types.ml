type node_id = int
type view = int
type iid = int

let leader_of_view ~n v = v mod n

let next_view_led_by ~n ~after node =
  let v = after + 1 in
  let offset = (node - (v mod n) + n) mod n in
  v + offset

let majority ~n = (n / 2) + 1
