(** Batches of client requests.

    The Batcher groups client requests into batches (Section III-A,
    "batching"); one consensus instance orders one batch. A batch is
    identified by the node that created it and a per-node sequence
    number. *)

type id = {
  src : Types.node_id;
  num : int;
}

val compare_id : id -> id -> int
val pp_id : Format.formatter -> id -> unit

type t = {
  bid : id;
  requests : Msmr_wire.Client_msg.request list;
}

val size_bytes : t -> int
(** Wire size of the payload carried by this batch; the batching policy
    limit BSZ applies to this quantity. *)

val request_count : t -> int

val encode : Msmr_wire.Codec.W.t -> t -> unit
val decode : Msmr_wire.Codec.R.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
