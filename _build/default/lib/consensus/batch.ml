module Client_msg = Msmr_wire.Client_msg
module Codec = Msmr_wire.Codec

type id = {
  src : Types.node_id;
  num : int;
}

let compare_id a b =
  match compare a.src b.src with 0 -> compare a.num b.num | c -> c

let pp_id ppf id = Format.fprintf ppf "b%d:%d" id.src id.num

type t = {
  bid : id;
  requests : Client_msg.request list;
}

let size_bytes t =
  List.fold_left (fun acc r -> acc + Client_msg.request_wire_size r) 0 t.requests

let request_count t = List.length t.requests

let encode w t =
  Codec.W.i32 w t.bid.src;
  Codec.W.int_as_i64 w t.bid.num;
  Codec.W.i32 w (List.length t.requests);
  List.iter (Client_msg.encode_request w) t.requests

let decode r =
  let src = Codec.R.i32 r in
  let num = Codec.R.int_from_i64 r in
  let count = Codec.R.i32 r in
  if count < 0 then raise (Codec.Malformed "negative request count");
  let requests = List.init count (fun _ -> Client_msg.decode_request r) in
  { bid = { src; num }; requests }

let equal a b =
  compare_id a.bid b.bid = 0
  && List.length a.requests = List.length b.requests
  && List.for_all2 Client_msg.equal_request a.requests b.requests

let pp ppf t =
  Format.fprintf ppf "%a(%d reqs, %dB)" pp_id t.bid (request_count t)
    (size_bytes t)
