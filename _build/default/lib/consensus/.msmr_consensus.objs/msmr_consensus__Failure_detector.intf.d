lib/consensus/failure_detector.mli: Config Types
