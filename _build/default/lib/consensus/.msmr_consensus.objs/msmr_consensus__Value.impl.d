lib/consensus/value.ml: Batch Format Msmr_wire Printf
