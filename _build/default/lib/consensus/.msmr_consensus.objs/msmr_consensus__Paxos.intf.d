lib/consensus/paxos.mli: Batch Config Format Log Msg Types Value
