lib/consensus/types.ml:
