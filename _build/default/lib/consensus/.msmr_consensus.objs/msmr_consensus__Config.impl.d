lib/consensus/config.ml:
