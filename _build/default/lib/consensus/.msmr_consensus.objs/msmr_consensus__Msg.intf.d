lib/consensus/msg.mli: Format Types Value
