lib/consensus/batch.mli: Format Msmr_wire Types
