lib/consensus/failure_detector.ml: Array Config Int64 Msmr_platform Types
