lib/consensus/paxos.ml: Batch Config Format Fun Hashtbl List Log Msg Option String Types Value
