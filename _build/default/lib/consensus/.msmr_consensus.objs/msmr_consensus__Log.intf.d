lib/consensus/log.mli: Format Msg Types Value
