lib/consensus/msg.ml: Bytes Format List Msmr_wire Printf Types Value
