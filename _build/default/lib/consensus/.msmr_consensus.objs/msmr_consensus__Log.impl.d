lib/consensus/log.ml: Format Hashtbl List Msg Printf Types Value
