lib/consensus/batcher.ml: Batch Config Int64 List Msmr_platform Msmr_wire Types
