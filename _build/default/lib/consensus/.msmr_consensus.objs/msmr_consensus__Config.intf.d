lib/consensus/config.mli:
