lib/consensus/batcher.mli: Batch Config Msmr_wire Types
