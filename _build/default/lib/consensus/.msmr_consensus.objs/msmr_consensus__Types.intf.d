lib/consensus/types.mli:
