lib/consensus/value.mli: Batch Format Msmr_wire
