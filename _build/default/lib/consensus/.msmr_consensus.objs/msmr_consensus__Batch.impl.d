lib/consensus/batch.ml: Format List Msmr_wire Types
