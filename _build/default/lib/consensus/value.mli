(** Values decided by consensus instances: either a batch of client
    requests or a no-op (used by a new leader to fill gaps left by its
    predecessor). *)

type t =
  | Noop
  | Batch of Batch.t

val encode : Msmr_wire.Codec.W.t -> t -> unit
val decode : Msmr_wire.Codec.R.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val size_bytes : t -> int
(** Payload bytes carried ([0] for [Noop]). *)
