module Codec = Msmr_wire.Codec

type t =
  | Noop
  | Batch of Batch.t

let encode w = function
  | Noop -> Codec.W.u8 w 0
  | Batch b ->
    Codec.W.u8 w 1;
    Batch.encode w b

let decode r =
  match Codec.R.u8 r with
  | 0 -> Noop
  | 1 -> Batch (Batch.decode r)
  | n -> raise (Codec.Malformed (Printf.sprintf "value tag %d" n))

let equal a b =
  match (a, b) with
  | Noop, Noop -> true
  | Batch x, Batch y -> Batch.equal x y
  | Noop, Batch _ | Batch _, Noop -> false

let pp ppf = function
  | Noop -> Format.pp_print_string ppf "noop"
  | Batch b -> Batch.pp ppf b

let size_bytes = function Noop -> 0 | Batch b -> Batch.size_bytes b
