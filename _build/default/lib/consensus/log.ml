type entry = {
  mutable accepted_view : Types.view;
  mutable value : Value.t option;
  mutable decided : bool;
  mutable decided_view : Types.view;
  mutable acks : int;
}

type t = {
  table : (Types.iid, entry) Hashtbl.t;
  mutable first_undecided : Types.iid;
  mutable first_unexecuted : Types.iid;
  mutable next_unused : Types.iid;
  mutable low_mark : Types.iid;
}

let create () =
  { table = Hashtbl.create 1024; first_undecided = 0; first_unexecuted = 0;
    next_unused = 0; low_mark = 0 }

let first_undecided t = t.first_undecided
let first_unexecuted t = t.first_unexecuted
let next_unused t = t.next_unused
let low_mark t = t.low_mark

let get t iid = Hashtbl.find_opt t.table iid

let get_or_create t iid =
  match Hashtbl.find_opt t.table iid with
  | Some e -> e
  | None ->
    let e =
      { accepted_view = -1; value = None; decided = false; decided_view = -1;
        acks = 0 }
    in
    Hashtbl.replace t.table iid e;
    if iid >= t.next_unused then t.next_unused <- iid + 1;
    e

let is_decided t iid =
  iid < t.low_mark
  ||
  match get t iid with Some e -> e.decided | None -> false

let decided_value t iid =
  match get t iid with
  | Some e when e.decided -> e.value
  | Some _ | None -> None

let accept t iid view value =
  let e = get_or_create t iid in
  if not e.decided && view >= e.accepted_view then begin
    (* A new view restarts vote counting: acks are only valid within the
       view the current value was accepted in. *)
    if view > e.accepted_view then e.acks <- 0;
    e.accepted_view <- view;
    e.value <- Some value
  end

let advance_first_undecided t =
  while is_decided t t.first_undecided do
    t.first_undecided <- t.first_undecided + 1
  done

let decide t iid view value =
  let e = get_or_create t iid in
  if e.decided then false
  else begin
    e.decided <- true;
    e.decided_view <- view;
    e.value <- Some value;
    if e.accepted_view < view then e.accepted_view <- view;
    advance_first_undecided t;
    true
  end

let next_to_execute t =
  if t.first_unexecuted >= t.first_undecided then None
  else
    match get t t.first_unexecuted with
    | Some ({ decided = true; value = Some v; _ }) -> Some (t.first_unexecuted, v)
    | Some _ | None -> None

let mark_executed t iid =
  if iid <> t.first_unexecuted then
    invalid_arg
      (Printf.sprintf "Log.mark_executed: %d, expected %d" iid
         t.first_unexecuted);
  t.first_unexecuted <- iid + 1

let undecided_below t bound =
  let rec go i acc =
    if i >= bound then List.rev acc
    else go (i + 1) (if is_decided t i then acc else i :: acc)
  in
  go (max t.low_mark t.first_undecided) []

let entry_to_msg iid (e : entry) : Msg.log_entry =
  { e_iid = iid; e_view = e.accepted_view;
    e_value = (match e.value with Some v -> v | None -> Value.Noop);
    e_decided = e.decided }

let decided_range t ~from_iid ~to_iid =
  let rec go i acc =
    if i >= to_iid then List.rev acc
    else
      let acc =
        match get t i with
        | Some ({ decided = true; value = Some _; _ } as e) ->
          { (entry_to_msg i e) with e_view = e.decided_view } :: acc
        | Some _ | None -> acc
      in
      go (i + 1) acc
  in
  go (max from_iid t.low_mark) []

let entries_from t from_iid =
  let lo = max from_iid t.low_mark in
  let rec go i acc =
    if i >= t.next_unused then List.rev acc
    else
      let acc =
        match get t i with
        | Some e when e.value <> None -> entry_to_msg i e :: acc
        | Some _ | None -> acc
      in
      go (i + 1) acc
  in
  go lo []

let truncate_below t bound =
  if bound > t.low_mark then begin
    for i = t.low_mark to bound - 1 do
      Hashtbl.remove t.table i
    done;
    t.low_mark <- bound
  end

let fast_forward t next_iid =
  if next_iid > t.first_unexecuted then begin
    truncate_below t next_iid;
    t.first_unexecuted <- next_iid;
    if t.first_undecided < next_iid then t.first_undecided <- next_iid;
    if t.next_unused < next_iid then t.next_unused <- next_iid;
    advance_first_undecided t
  end

let in_flight t =
  let count = ref 0 in
  for i = t.first_undecided to t.next_unused - 1 do
    match get t i with
    | Some e when not e.decided && e.value <> None -> incr count
    | Some _ | None -> ()
  done;
  !count

let pp_stats ppf t =
  Format.fprintf ppf
    "log: low=%d first_unexec=%d first_undec=%d next=%d in_flight=%d"
    t.low_mark t.first_unexecuted t.first_undecided t.next_unused (in_flight t)
