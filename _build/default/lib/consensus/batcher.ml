module Client_msg = Msmr_wire.Client_msg
module Mclock = Msmr_platform.Mclock

type t = {
  cfg : Config.t;
  src : Types.node_id;
  mutable next_num : int;
  mutable open_reqs : Client_msg.request list;  (* newest first *)
  mutable open_bytes : int;
  mutable oldest_ns : int64;                    (* arrival of oldest request *)
}

let create cfg ~src =
  { cfg; src; next_num = 0; open_reqs = []; open_bytes = 0; oldest_ns = 0L }

let pending_requests t = List.length t.open_reqs
let pending_bytes t = t.open_bytes

let seal t =
  let batch =
    { Batch.bid = { src = t.src; num = t.next_num };
      requests = List.rev t.open_reqs }
  in
  t.next_num <- t.next_num + 1;
  t.open_reqs <- [];
  t.open_bytes <- 0;
  batch

let add t req ~now_ns =
  let sz = Client_msg.request_wire_size req in
  if t.open_reqs = [] then begin
    t.oldest_ns <- now_ns;
    t.open_reqs <- [ req ];
    t.open_bytes <- sz;
    if sz >= t.cfg.max_batch_bytes then Some (seal t) else None
  end
  else if t.open_bytes + sz > t.cfg.max_batch_bytes then begin
    (* The new request does not fit: seal what we have, start afresh. *)
    let sealed = seal t in
    t.oldest_ns <- now_ns;
    t.open_reqs <- [ req ];
    t.open_bytes <- sz;
    Some sealed
  end
  else begin
    t.open_reqs <- req :: t.open_reqs;
    t.open_bytes <- t.open_bytes + sz;
    if t.open_bytes >= t.cfg.max_batch_bytes then Some (seal t) else None
  end

let deadline_ns t =
  if t.open_reqs = [] then None
  else Some (Int64.add t.oldest_ns (Mclock.ns_of_s t.cfg.max_batch_delay_s))

let flush_due t ~now_ns =
  match deadline_ns t with
  | Some d when Int64.compare now_ns d >= 0 -> Some (seal t)
  | Some _ | None -> None

let force_flush t = if t.open_reqs = [] then None else Some (seal t)
