(** Basic protocol identifiers. *)

type node_id = int
(** Replica identifier in [0, n). *)

type view = int
(** View (ballot) number. The leader of view [v] in an [n]-replica group
    is [v mod n], so distinct prospective leaders always pick distinct
    views. *)

type iid = int
(** Consensus instance identifier; instance [i] decides the [i]-th batch
    in the total order. *)

val leader_of_view : n:int -> view -> node_id

val next_view_led_by : n:int -> after:view -> node_id -> view
(** Smallest view strictly greater than [after] whose leader is the given
    node. *)

val majority : n:int -> int
(** Quorum size: [n/2 + 1]. *)
