(** CRC-32 (IEEE 802.3 polynomial), table-driven.

    Guards every WAL record against torn writes and corruption. *)

val digest : ?crc:int32 -> bytes -> pos:int -> len:int -> int32
(** Incremental: pass the previous value via [crc] to continue. *)

val digest_bytes : bytes -> int32
