(** Segmented write-ahead log.

    Records are opaque byte blobs framed as
    [len:4][crc32(payload):4][payload] and appended to numbered segment
    files ([wal-000042.log]); a new segment starts once the current one
    exceeds [segment_bytes]. Recovery replays every record in order and
    stops at the first torn or corrupt record, truncating the log there
    (the standard crash-consistency contract: a prefix survives).

    Writers choose a {!sync_policy}:
    - [Sync_every_write]: fsync before {!append} returns — the classic
      acceptor durability requirement, and the bottleneck the paper
      deliberately avoids in its experiments;
    - [Sync_periodic]: a caller (e.g. a Syncer thread) calls {!sync} on
      its own schedule; a crash may lose a suffix;
    - [No_sync]: rely on the OS cache entirely.

    Thread-safe: appends are serialised internally. *)

type sync_policy =
  | Sync_every_write
  | Sync_periodic
  | No_sync

type t

val openw : ?segment_bytes:int -> dir:string -> sync:sync_policy -> unit -> t
(** Open for appending, creating [dir] if needed. New records go after
    everything {!replay} would return. Default segment size 64 MiB. *)

val append : t -> bytes -> unit
val sync : t -> unit
val close : t -> unit

val appended : t -> int
(** Records appended through this handle. *)

val replay : dir:string -> (bytes -> unit) -> int
(** Feed every intact record, in order, to the callback; returns the
    count. Corrupt/torn suffixes are truncated on disk so a subsequent
    {!openw} appends at a clean boundary. A missing directory replays
    nothing. *)

val reset : dir:string -> unit
(** Delete all segments (used after a snapshot makes the prefix
    obsolete — callers typically rewrite a checkpoint first). *)
