lib/storage/replica_store.mli: Msmr_consensus Wal
