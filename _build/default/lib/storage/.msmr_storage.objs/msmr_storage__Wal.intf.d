lib/storage/wal.mli:
