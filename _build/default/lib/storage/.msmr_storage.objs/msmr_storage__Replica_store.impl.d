lib/storage/replica_store.ml: Bytes Crc32 Filename Fun Hashtbl Int32 List Msmr_consensus Msmr_wire Mutex Printf Sys Types Unix Value Wal
