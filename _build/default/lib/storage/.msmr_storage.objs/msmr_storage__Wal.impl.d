lib/storage/wal.ml: Array Bytes Crc32 Filename Fun Int32 List Logs Mutex Printf String Sys Unix
