module Mclock = Msmr_platform.Mclock

let hello_frame me =
  let w = Msmr_wire.Codec.W.create ~initial:8 () in
  Msmr_wire.Codec.W.i32 w me;
  Msmr_wire.Codec.W.contents w

let id_of_hello b =
  let r = Msmr_wire.Codec.R.of_bytes b in
  let id = Msmr_wire.Codec.R.i32 r in
  Msmr_wire.Codec.R.expect_end r;
  id

let establish ?(connect_timeout_s = 30.) ~me ~addrs () =
  let my_addr = List.assoc me addrs in
  let higher = List.filter (fun (id, _) -> id > me) addrs in
  let lower = List.filter (fun (id, _) -> id < me) addrs in
  let listener = Unix.socket (Unix.domain_of_sockaddr my_addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener my_addr;
  Unix.listen listener 8;
  let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s connect_timeout_s) in
  let links = ref [] in
  let links_lock = Mutex.create () in
  let add id link =
    Mutex.lock links_lock;
    links := (id, link) :: !links;
    Mutex.unlock links_lock
  in
  (* Accept connections from higher-id peers. *)
  let acceptor =
    Thread.create
      (fun () ->
         let expected = List.length higher in
         let got = ref 0 in
         while !got < expected do
           let fd, _ = Unix.accept listener in
           Unix.setsockopt fd Unix.TCP_NODELAY true;
           match Msmr_wire.Frame.read fd with
           | Some hello ->
             let id = id_of_hello hello in
             add id (Transport.Tcp.link_of_fd fd);
             incr got
           | None | (exception _) -> (try Unix.close fd with _ -> ())
         done)
      ()
  in
  (* Connect to lower-id peers, retrying until they are up. *)
  List.iter
    (fun (id, addr) ->
       let rec attempt () =
         if Int64.compare (Mclock.now_ns ()) deadline > 0 then
           failwith (Printf.sprintf "Tcp_mesh: cannot reach node %d" id);
         match Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 with
         | fd -> (
             match Unix.connect fd addr with
             | () ->
               Unix.setsockopt fd Unix.TCP_NODELAY true;
               Msmr_wire.Frame.write fd (hello_frame me);
               add id (Transport.Tcp.link_of_fd fd)
             | exception Unix.Unix_error _ ->
               Unix.close fd;
               Mclock.sleep_s 0.1;
               attempt ())
         | exception e -> raise e
       in
       attempt ())
    lower;
  Thread.join acceptor;
  Unix.close listener;
  !links
