module Cmap = Msmr_platform.Concurrent_map
module Client_msg = Msmr_wire.Client_msg

type t = (int, int * bytes) Cmap.t

type lookup =
  | Fresh
  | Cached of bytes
  | Stale

let create ?(shards = 16) () : t = Cmap.create ~shards ()

let lookup t (id : Client_msg.request_id) =
  match Cmap.find_opt t id.client_id with
  | Some (seq, reply) when seq = id.seq -> Cached reply
  | Some (seq, _) when seq > id.seq -> Stale
  | Some _ | None -> Fresh

let store t (id : Client_msg.request_id) reply =
  Cmap.update t id.client_id (function
    | Some (seq, old) when seq >= id.seq -> Some (seq, old)
    | Some _ | None -> Some (id.seq, reply))

let already_executed t id =
  match lookup t id with Fresh -> false | Cached _ | Stale -> true

let size t = Cmap.length t
