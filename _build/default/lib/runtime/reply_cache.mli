(** Reply cache: at-most-once execution.

    Queried by every ClientIO thread when a request arrives and updated by
    the ServiceManager thread after execution (Section V-D). Backed by the
    sharded {!Msmr_platform.Concurrent_map} — the paper found a
    coarse-locked table collapses under this access pattern and switched
    to [ConcurrentHashMap].

    Clients number requests sequentially, so it suffices to remember the
    newest executed request per client. *)

type t

type lookup =
  | Fresh            (** never seen: execute it *)
  | Cached of bytes  (** the newest executed request: resend this reply *)
  | Stale            (** older than the newest executed: drop silently *)

val create : ?shards:int -> unit -> t

val lookup : t -> Msmr_wire.Client_msg.request_id -> lookup

val store : t -> Msmr_wire.Client_msg.request_id -> bytes -> unit
(** Record the reply for a client's newest executed request (monotone:
    ignores regressions in [seq]). *)

val already_executed : t -> Msmr_wire.Client_msg.request_id -> bool
(** [Cached _ | Stale]. Used by the ServiceManager to skip duplicates that
    slipped into batches. *)

val size : t -> int
