(** Replicated service interface.

    The state machine being replicated. [execute] must be deterministic:
    given the same state and the same request sequence, every replica must
    produce the same results. [snapshot]/[restore] support log truncation
    and state transfer to lagging replicas.

    All three functions are called only from the ServiceManager (Replica)
    thread, so implementations need no internal synchronisation. *)

type t = {
  execute : Msmr_wire.Client_msg.request -> bytes;
  snapshot : unit -> bytes;
  restore : bytes -> unit;
}

val null : ?reply_size:int -> unit -> t
(** The paper's benchmark service (Section VI): discards the request
    payload and answers with [reply_size] bytes (default 8). Snapshot is
    empty. *)

val accumulator : unit -> t
(** A tiny deterministic service used by tests: interprets the payload as
    a decimal integer, adds it to a running sum and replies with the new
    sum (as a decimal string). Snapshots carry the sum. *)
