(** Replica-to-replica TCP mesh establishment.

    Every replica listens on its own address; the replica with the lower
    id initiates the connection for each pair and identifies itself with
    a one-frame hello carrying its node id. [establish] retries
    connections until the whole mesh is up (peers may start in any
    order), so it blocks until all [n - 1] links exist. *)

val establish :
  ?connect_timeout_s:float ->
  me:Msmr_consensus.Types.node_id ->
  addrs:(Msmr_consensus.Types.node_id * Unix.sockaddr) list ->
  unit ->
  (Msmr_consensus.Types.node_id * Transport.link) list
(** [addrs] must contain every node including [me] (whose address is the
    one listened on). @raise Failure when the mesh cannot be completed
    within [connect_timeout_s] (default 30 s). *)
