lib/runtime/tcp_client.mli: Unix
