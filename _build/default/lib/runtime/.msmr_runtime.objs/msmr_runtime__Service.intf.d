lib/runtime/service.mli: Msmr_wire
