lib/runtime/client_server.ml: Atomic Fun Hashtbl List Logs Msmr_platform Msmr_wire Mutex Printf Replica Unix
