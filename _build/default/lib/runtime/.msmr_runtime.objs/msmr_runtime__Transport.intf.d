lib/runtime/transport.mli: Unix
