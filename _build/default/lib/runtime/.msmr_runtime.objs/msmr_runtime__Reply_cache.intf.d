lib/runtime/reply_cache.mli: Msmr_wire
