lib/runtime/tcp_client.ml: Array Msmr_platform Msmr_wire Unix
