lib/runtime/transport.ml: Array Atomic Lazy Msmr_platform Msmr_wire Random Sys Unix
