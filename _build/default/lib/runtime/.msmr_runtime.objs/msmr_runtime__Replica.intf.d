lib/runtime/replica.mli: Client_io Msmr_consensus Msmr_storage Service Transport
