lib/runtime/client_io.ml: Array Bytes Int32 List Msmr_platform Msmr_wire Printf Reply_cache
