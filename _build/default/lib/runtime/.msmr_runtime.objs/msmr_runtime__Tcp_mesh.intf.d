lib/runtime/tcp_mesh.mli: Msmr_consensus Transport Unix
