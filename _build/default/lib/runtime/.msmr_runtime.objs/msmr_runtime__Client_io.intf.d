lib/runtime/client_io.mli: Msmr_platform Msmr_wire Reply_cache
