lib/runtime/client.mli: Replica
