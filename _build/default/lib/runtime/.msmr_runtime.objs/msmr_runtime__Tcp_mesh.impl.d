lib/runtime/tcp_mesh.ml: Int64 List Msmr_platform Msmr_wire Mutex Printf Thread Transport Unix
