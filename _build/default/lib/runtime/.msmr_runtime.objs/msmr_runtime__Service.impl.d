lib/runtime/service.ml: Bytes Msmr_wire
