lib/runtime/reply_cache.ml: Msmr_platform Msmr_wire
