lib/runtime/client.ml: Array Condition Int64 Msmr_platform Msmr_wire Mutex Replica
