lib/runtime/client_server.mli: Replica
