lib/baseline/mono_replica.ml: Array Atomic Batch Batcher Config Failure_detector Float Fun Hashtbl Int64 List Msg Msmr_consensus Msmr_platform Msmr_runtime Msmr_wire Paxos Printf Types Value
