lib/baseline/zk_model.mli: Msmr_sim
