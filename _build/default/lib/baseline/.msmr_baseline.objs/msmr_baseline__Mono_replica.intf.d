lib/baseline/mono_replica.mli: Msmr_consensus Msmr_runtime
