lib/baseline/zk_model.ml: Array Cpu Engine Hashtbl List Mailbox Msmr_sim Nic Params Printf Slock Sstats
