(** The "traditional" monolithic RSM the paper argues against
    (Sections I and III): one event-loop thread does everything —
    deserialise client requests, check the reply cache, batch, run the
    replication protocol, execute the service and produce replies — with
    only raw socket I/O offloaded to reader/sender threads.

    It runs the same pure {!Msmr_consensus.Paxos} engine and the same
    {!Msmr_runtime.Transport} links as the staged runtime, so the two
    are directly comparable: on a single core the monolithic design is
    perfectly respectable (the paper: "before the multi-core era, a
    single-thread event-driven design was a good choice"); its ceiling
    is the single thread, which the simulator experiments expose.

    The API mirrors a subset of {!Msmr_runtime.Replica}. *)

type t

val create :
  cfg:Msmr_consensus.Config.t ->
  me:Msmr_consensus.Types.node_id ->
  links:(Msmr_consensus.Types.node_id * Msmr_runtime.Transport.link) list ->
  service:Msmr_runtime.Service.t ->
  unit ->
  t

val me : t -> Msmr_consensus.Types.node_id
val is_leader : t -> bool
val executed_count : t -> int

val submit : t -> raw:bytes -> reply_to:(bytes -> unit) -> unit
(** Enqueue one serialised client request; the reply callback runs on
    the event-loop thread. *)

val stop : t -> unit

module Cluster : sig
  type replica := t

  type t

  val create :
    cfg:Msmr_consensus.Config.t ->
    service:(unit -> Msmr_runtime.Service.t) ->
    unit ->
    t

  val replicas : t -> replica array
  val await_leader : ?timeout_s:float -> t -> replica
  val stop : t -> unit
end
