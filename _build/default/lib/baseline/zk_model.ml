open Msmr_sim

(* Cost model (seconds of CPU at parapluie speed). Calibrated to the
   paper's Figure 1a / 12: ~8 K requests/s on one core, peak ~50 K at 4
   cores, collapsing towards ~30 K at 24 cores. *)
type zk_costs = {
  cnxn_read : float;        (* follower: read request from client *)
  cnxn_write : float;       (* follower: write reply *)
  fwd : float;              (* follower: forward request to leader *)
  lh_request : float;       (* leader LearnerHandler: forwarded request *)
  lh_ack : float;           (* leader LearnerHandler: ack *)
  process : float;          (* ProcessThread: create proposal, zxid *)
  commit : float;           (* CommitProcessor per committed request *)
  sync : float;             (* SyncThread: log write (ramdisk) *)
  sender_per_msg : float;
  follower_proposal : float;(* follower: handle proposal, send ack *)
  follower_commit : float;  (* follower: apply commit *)
  (* Global-lock critical sections. *)
  lock_lh : float;
  lock_process : float;
  lock_commit : float;
  lock_sync : float;
  switch_cost : float;      (* heavier than JPaxos: more threads, JVM *)
  coherence_beta : float;   (* per-parallel-core penalty on lock holds *)
  coherence_cores_cap : int;
}

let default_zk_costs =
  { cnxn_read = 15e-6;
    cnxn_write = 10e-6;
    fwd = 5e-6;
    lh_request = 5e-6;
    lh_ack = 4e-6;
    process = 13e-6;
    commit = 16e-6;
    sync = 5e-6;
    sender_per_msg = 2e-6;
    follower_proposal = 6e-6;
    follower_commit = 5e-6;
    lock_lh = 1.2e-6;
    lock_process = 1.5e-6;
    lock_commit = 2e-6;
    lock_sync = 1e-6;
    switch_cost = 5e-6;
    coherence_beta = 0.12;
    coherence_cores_cap = 24 }

type replica_report = {
  cpu_util_pct : float;
  blocked_pct : float;
  threads : (string * Sstats.totals) list;
}

type result = {
  throughput : float;
  client_latency : float;
  replicas : replica_report array;
  leader_tx_pps : float;
  leader_rx_pps : float;
  events : int;
}

(* Wire sizes. *)
let proposal_size req_size = req_size + 40
let ack_size = 48
let commit_size = 48
let fwd_size req_size = req_size + 24

type xn = {
  zxid : int;
  cid : int;
  origin : int;            (* follower index 1 or 2 *)
  mutable committed : bool;
}

let run (p : Params.t) =
  let eng = Engine.create () in
  let zc = default_zk_costs in
  let speed = p.profile.cpu_speed in
  let cost x = x /. speed in
  let n_followers = 2 in
  let cpus =
    Array.init 3 (fun _ ->
        Cpu.create eng ~cores:p.cores ~switch_cost:(cost zc.switch_cost) ())
  in
  let nics =
    Array.init 3 (fun i ->
        Nic.create eng ~pkt_rate:p.profile.pkt_rate
          ~bandwidth:p.profile.bandwidth ~name:(Printf.sprintf "zknic-%d" i) ())
  in
  let threads : Sstats.thread list ref array = Array.make 3 (ref []) in
  Array.iteri (fun i _ -> threads.(i) <- ref []) threads;
  let mk_thread node name =
    let st = Sstats.make_thread eng ~name in
    threads.(node) := !(threads.(node)) @ [ st ];
    st
  in
  (* The coarse leader lock with its coherence penalty. *)
  let zk_lock = Slock.create eng ~name:"zk-global" () in
  let coherence () =
    1.0
    +. (zc.coherence_beta
        *. float_of_int (min p.cores zc.coherence_cores_cap - 1))
  in
  let lock_work st c =
    Slock.acquire zk_lock st;
    Cpu.work cpus.(0) st (cost (c *. coherence ()));
    Slock.release zk_lock
  in
  (* ------------- measurement ------------- *)
  let measuring = ref false in
  let completed = ref 0 in
  let lat_sum = ref 0. and lat_n = ref 0 in
  (* ------------- clients ------------- *)
  let client_resume : (unit -> unit) option array = Array.make p.n_clients None in
  let client_sent = Array.make p.n_clients 0. in
  let follower_of_client cid = 1 + (cid mod n_followers) in
  (* ------------- mailboxes ------------- *)
  (* Followers: client connection threads (2 per follower). *)
  let cnxn_mbs = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Mailbox.create eng ())) in
  (* Follower: proposal/commit handling thread. *)
  let follower_mbs = Array.init 3 (fun _ -> Mailbox.create eng ()) in
  (* Leader: LearnerHandler per follower, ProcessThread, CommitProcessor,
     SyncThread, Sender per follower. *)
  let lh_mbs = Array.init 3 (fun _ -> Mailbox.create eng ()) in
  let pt_mb = Mailbox.create eng () in
  let cp_mb = Mailbox.create eng () in
  let sync_mb = Mailbox.create eng () in
  let sender_mbs = Array.init 3 (fun _ -> Mailbox.create eng ()) in
  (* Follower reply senders (to clients). *)
  let freply_mbs = Array.init 3 (fun _ -> Mailbox.create eng ()) in
  (* Follower -> leader uplink (forwards + acks on one connection). *)
  let uplink_mbs = Array.init 3 (fun _ -> Mailbox.create eng ()) in
  let xns : (int, xn) Hashtbl.t = Hashtbl.create 4096 in
  let next_zxid = ref 0 in
  (* ------------- leader threads ------------- *)
  let lh_proc f () =
    let st = mk_thread 0 (Printf.sprintf "LearnerHandler:%d" f) in
    let rec loop () =
      (match Mailbox.take lh_mbs.(f) st with
       | `Fwd (cid, origin) ->
         Cpu.work cpus.(0) st (cost zc.lh_request);
         lock_work st zc.lock_lh;
         Mailbox.push pt_mb (cid, origin)
       | `Ack zxid ->
         Cpu.work cpus.(0) st (cost zc.lh_ack);
         lock_work st zc.lock_lh;
         (match Hashtbl.find_opt xns zxid with
          | Some xn when not xn.committed ->
            (* Leader's own "ack" plus this one: majority of 3. *)
            xn.committed <- true;
            Mailbox.push cp_mb zxid
          | Some _ | None -> ()));
      loop ()
    in
    loop ()
  in
  let pt_proc () =
    let st = mk_thread 0 "ProcessThread" in
    let rec loop () =
      let cid, origin = Mailbox.take pt_mb st in
      Cpu.work cpus.(0) st (cost zc.process);
      lock_work st zc.lock_process;
      let zxid = !next_zxid in
      incr next_zxid;
      Hashtbl.replace xns zxid { zxid; cid; origin; committed = false };
      for f = 1 to n_followers do
        Mailbox.push sender_mbs.(f) (`Proposal (zxid, cid, origin))
      done;
      Mailbox.push sync_mb zxid;
      loop ()
    in
    loop ()
  in
  let cp_proc () =
    let st = mk_thread 0 "CommitProcessor" in
    let rec loop () =
      let zxid = Mailbox.take cp_mb st in
      Cpu.work cpus.(0) st (cost zc.commit);
      lock_work st zc.lock_commit;
      for f = 1 to n_followers do
        Mailbox.push sender_mbs.(f) (`Commit zxid)
      done;
      loop ()
    in
    loop ()
  in
  let sync_proc () =
    let st = mk_thread 0 "SyncThread" in
    let rec loop () =
      let _zxid = Mailbox.take sync_mb st in
      Cpu.work cpus.(0) st (cost zc.sync);
      lock_work st zc.lock_sync;
      loop ()
    in
    loop ()
  in
  let sender_proc f () =
    let st = mk_thread 0 (Printf.sprintf "Sender:%d" f) in
    let rec drain acc k =
      if k = 0 then List.rev acc
      else
        match Mailbox.try_pop sender_mbs.(f) with
        | Some m -> drain (m :: acc) (k - 1)
        | None -> List.rev acc
    in
    (* Commits are tiny; the TCP stack piggybacks them on the next
       proposal to the same follower. *)
    let deferred = ref [] in
    let is_commit = function `Commit _ -> true | `Proposal _ -> false in
    let rec next_burst () =
      match
        if !deferred = [] then Some (Mailbox.take sender_mbs.(f) st)
        else Mailbox.take_timeout sender_mbs.(f) st ~timeout:0.0005
      with
      | Some first ->
        let burst = !deferred @ (first :: drain [] 31) in
        deferred := [];
        if List.for_all is_commit burst then begin
          deferred := burst;
          next_burst ()
        end
        else burst
      | None ->
        let b = !deferred in
        deferred := [];
        b
    in
    let rec loop () =
      let burst = next_burst () in
      let size_of = function
        | `Proposal _ -> proposal_size p.request_size
        | `Commit _ -> commit_size
      in
      List.iter
        (fun _ -> Cpu.work cpus.(0) st (cost zc.sender_per_msg))
        burst;
      (* Segment coalescing as in the JPaxos model. *)
      let flush msgs size =
        if msgs <> [] then begin
          let msgs = List.rev msgs in
          Nic.send nics.(0) ~dst:nics.(f) ~size (fun () ->
              List.iter (fun m -> Mailbox.push follower_mbs.(f) m) msgs)
        end
      in
      let seg, size =
        List.fold_left
          (fun (seg, size) m ->
             let s = size_of m in
             if size > 0 && size + s > 1448 then begin
               flush seg size;
               ([ m ], s)
             end
             else (m :: seg, size + s))
          ([], 0) burst
      in
      flush seg size;
      loop ()
    in
    loop ()
  in
  (* ------------- follower threads ------------- *)
  let cnxn_proc node idx () =
    let st = mk_thread node (Printf.sprintf "CnxnThread:%d" idx) in
    let rec loop () =
      let cid = Mailbox.take cnxn_mbs.(node).(idx) st in
      Cpu.work cpus.(node) st (cost zc.cnxn_read);
      Cpu.work cpus.(node) st (cost zc.fwd);
      Mailbox.push uplink_mbs.(node) (`UpFwd (cid, node));
      loop ()
    in
    loop ()
  in
  (* One uplink sender per follower: coalesces forwards and acks into
     shared segments; ack-only bursts wait briefly to ride with the next
     forward. *)
  let uplink_proc node () =
    let st = mk_thread node "ForwardSender" in
    let mb = uplink_mbs.(node) in
    let rec drain acc k =
      if k = 0 then List.rev acc
      else
        match Mailbox.try_pop mb with
        | Some m -> drain (m :: acc) (k - 1)
        | None -> List.rev acc
    in
    let deferred = ref [] in
    let is_ack = function `UpAck _ -> true | `UpFwd _ -> false in
    let rec next_burst () =
      match
        if !deferred = [] then Some (Mailbox.take mb st)
        else Mailbox.take_timeout mb st ~timeout:0.0005
      with
      | Some first ->
        let burst = !deferred @ (first :: drain [] 31) in
        deferred := [];
        if List.for_all is_ack burst then begin
          deferred := burst;
          next_burst ()
        end
        else burst
      | None ->
        let b = !deferred in
        deferred := [];
        b
    in
    let rec loop () =
      let burst = next_burst () in
      let size_of = function
        | `UpFwd _ -> fwd_size p.request_size
        | `UpAck _ -> ack_size
      in
      List.iter (fun _ -> Cpu.work cpus.(node) st (cost zc.sender_per_msg)) burst;
      let deliver = function
        | `UpFwd (cid, origin) -> Mailbox.push lh_mbs.(node) (`Fwd (cid, origin))
        | `UpAck zxid -> Mailbox.push lh_mbs.(node) (`Ack zxid)
      in
      let flush msgs size =
        if msgs <> [] then begin
          let msgs = List.rev msgs in
          Nic.send nics.(node) ~dst:nics.(0) ~size (fun () ->
              List.iter deliver msgs)
        end
      in
      let seg, size =
        List.fold_left
          (fun (seg, size) m ->
             let sz = size_of m in
             if size > 0 && size + sz > 1448 then begin
               flush seg size;
               ([ m ], sz)
             end
             else (m :: seg, size + sz))
          ([], 0) burst
      in
      flush seg size;
      loop ()
    in
    loop ()
  in
  let follower_proc node () =
    let st = mk_thread node "FollowerThread" in
    let rec loop () =
      (match Mailbox.take follower_mbs.(node) st with
       | `Proposal (zxid, cid, origin) ->
         Cpu.work cpus.(node) st (cost zc.follower_proposal);
         if origin = node then
           Hashtbl.replace xns (zxid * 8 + node) { zxid; cid; origin; committed = false };
         Mailbox.push uplink_mbs.(node) (`UpAck zxid)
       | `Commit zxid ->
         Cpu.work cpus.(node) st (cost zc.follower_commit);
         (match Hashtbl.find_opt xns (zxid * 8 + node) with
          | Some xn ->
            Hashtbl.remove xns (zxid * 8 + node);
            Mailbox.push freply_mbs.(node) xn.cid
          | None -> ()));
      loop ()
    in
    loop ()
  in
  let freply_proc node () =
    let st = mk_thread node "ReplySender" in
    let rec loop () =
      let cid = Mailbox.take freply_mbs.(node) st in
      Cpu.work cpus.(node) st (cost zc.cnxn_write);
      Nic.send_to_wire nics.(node) ~size:p.reply_size (fun () ->
          match client_resume.(cid) with
          | Some resume ->
            client_resume.(cid) <- None;
            resume ()
          | None -> ());
      loop ()
    in
    loop ()
  in
  (* ------------- clients ------------- *)
  let client_proc cid () =
    Engine.delay eng (1e-6 *. float_of_int cid);
    let f = follower_of_client cid in
    let rec loop () =
      client_sent.(cid) <- Engine.now eng;
      Engine.suspend eng (fun resume ->
          client_resume.(cid) <- Some resume;
          Engine.schedule_at eng (Engine.now eng +. 15e-6) (fun () ->
              Nic.rx_inject nics.(f) ~size:p.request_size (fun () ->
                  Mailbox.push cnxn_mbs.(f).(cid mod 2) cid)));
      if !measuring then begin
        incr completed;
        lat_sum := !lat_sum +. (Engine.now eng -. client_sent.(cid));
        incr lat_n
      end;
      loop ()
    in
    loop ()
  in
  (* ------------- spawn ------------- *)
  for f = 1 to n_followers do
    Engine.spawn eng (lh_proc f);
    Engine.spawn eng (sender_proc f);
    Engine.spawn eng (cnxn_proc f 0);
    Engine.spawn eng (cnxn_proc f 1);
    Engine.spawn eng (uplink_proc f);
    Engine.spawn eng (follower_proc f);
    Engine.spawn eng (freply_proc f)
  done;
  Engine.spawn eng pt_proc;
  Engine.spawn eng cp_proc;
  Engine.spawn eng sync_proc;
  for cid = 0 to p.n_clients - 1 do
    Engine.spawn eng (client_proc cid)
  done;
  (* ------------- run ------------- *)
  Engine.run eng ~until:p.warmup;
  measuring := true;
  completed := 0;
  lat_sum := 0.; lat_n := 0;
  Array.iter (fun ts -> List.iter Sstats.reset !ts) threads;
  Array.iter Cpu.reset_consumed cpus;
  Array.iter Nic.reset_counters nics;
  Engine.run eng ~until:(p.warmup +. p.duration);
  let dur = p.duration in
  let report node =
    let rows =
      List.map (fun st -> (Sstats.name st, Sstats.totals st)) !(threads.(node))
    in
    let blocked =
      List.fold_left (fun acc (_, (x : Sstats.totals)) -> acc +. x.blocked) 0. rows
    in
    { cpu_util_pct = 100. *. Cpu.consumed cpus.(node) /. dur;
      blocked_pct = 100. *. blocked /. dur;
      threads = rows }
  in
  { throughput = float_of_int !completed /. dur;
    client_latency = (if !lat_n = 0 then 0. else !lat_sum /. float_of_int !lat_n);
    replicas = Array.init 3 report;
    leader_tx_pps = float_of_int (Nic.tx_packets nics.(0)) /. dur;
    leader_rx_pps = float_of_int (Nic.rx_packets nics.(0)) /. dur;
    events = Engine.events_processed eng }
