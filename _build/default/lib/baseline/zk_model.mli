(** Simulated ZooKeeper-like baseline (the paper's comparison system).

    Models Zab's thread structure at the leader — LearnerHandler per
    follower, a single ProcessThread assigning zxids, a CommitProcessor,
    a SyncThread and per-follower Senders — with the two architectural
    defects the paper's profiling exposes (Figures 1b, 13, 14):

    - a coarse global lock taken on the request path by the
      LearnerHandlers, the ProcessThread, the SyncThread and the
      CommitProcessor, whose critical sections suffer a coherence penalty
      that grows with the number of cores actually running in parallel
      (cache-line ping-pong), producing the convoy collapse beyond ~4
      cores;
    - no batching: one proposal, one ack, one commit per client request.

    Clients connect to the followers (the paper configures the leader to
    refuse clients); each follower forwards writes to the leader and
    answers its own clients after commit.

    The same closed-loop workload and measurement conventions as
    {!Msmr_sim.Jpaxos_model} apply. *)

type replica_report = {
  cpu_util_pct : float;
  blocked_pct : float;
  threads : (string * Msmr_sim.Sstats.totals) list;
}

type result = {
  throughput : float;
  client_latency : float;
  replicas : replica_report array;   (** index 0 = leader *)
  leader_tx_pps : float;
  leader_rx_pps : float;
  events : int;
}

val run : Msmr_sim.Params.t -> result
(** Uses [cores], [n_clients], [request_size], [reply_size], [warmup],
    [duration] and the profile's packet rate / bandwidth / cpu speed;
    [n] is fixed at 3 (the paper's ZooKeeper ensemble). *)
