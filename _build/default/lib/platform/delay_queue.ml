exception Closed

type handle = bool Atomic.t

type 'a entry = {
  at_ns : int64;
  value : 'a;
  cancelled : handle;
}

type 'a t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  heap : 'a entry Binary_heap.t;
  mutable closed : bool;
}

let cmp_entry a b = Int64.compare a.at_ns b.at_ns

let create () =
  { lock = Mutex.create (); not_empty = Condition.create ();
    heap = Binary_heap.create ~cmp:cmp_entry (); closed = false }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let schedule t ~at_ns value =
  let cancelled = Atomic.make false in
  with_lock t (fun () ->
      if t.closed then raise Closed;
      Binary_heap.add t.heap { at_ns; value; cancelled };
      Condition.signal t.not_empty);
  cancelled

let cancel h = Atomic.set h true
let is_cancelled h = Atomic.get h

let pending t = with_lock t (fun () -> Binary_heap.length t.heap)

(* Drop cancelled entries sitting at the top of the heap. Called with the
   lock held. *)
let rec drop_cancelled t =
  match Binary_heap.min_elt t.heap with
  | Some e when Atomic.get e.cancelled ->
    ignore (Binary_heap.pop_min t.heap);
    drop_cancelled t
  | _ -> ()

let pop_due t ~now_ns =
  with_lock t @@ fun () ->
  drop_cancelled t;
  match Binary_heap.min_elt t.heap with
  | Some e when Int64.compare e.at_ns now_ns <= 0 ->
    ignore (Binary_heap.pop_min t.heap);
    Some e.value
  | _ -> None

let next_due_ns t =
  with_lock t @@ fun () ->
  drop_cancelled t;
  Option.map (fun e -> e.at_ns) (Binary_heap.min_elt t.heap)

let take ?st t =
  let rec loop () =
    let action =
      with_lock t @@ fun () ->
      if t.closed then raise Closed;
      drop_cancelled t;
      match Binary_heap.min_elt t.heap with
      | None -> `Wait
      | Some e ->
        let now = Mclock.now_ns () in
        if Int64.compare e.at_ns now <= 0 then begin
          ignore (Binary_heap.pop_min t.heap);
          `Ready e.value
        end
        else `Sleep (Mclock.s_of_ns (Int64.sub e.at_ns now))
    in
    match action with
    | `Ready v -> v
    | `Wait ->
      Mutex.lock t.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () ->
          if Binary_heap.is_empty t.heap && not t.closed then begin
            match st with
            | None -> Condition.wait t.not_empty t.lock
            | Some st ->
              Thread_state.enter st Thread_state.Waiting (fun () ->
                  Condition.wait t.not_empty t.lock)
          end);
      loop ()
    | `Sleep s ->
      (* An earlier entry may be scheduled while we sleep; cap the nap so
         we notice within a bounded delay. Retransmission timeouts are
         tens of milliseconds, so a 2 ms cap costs nothing. *)
      let nap = Float.min s 0.002 in
      (match st with
       | None -> Mclock.sleep_s nap
       | Some st ->
         Thread_state.enter st Thread_state.Other (fun () -> Mclock.sleep_s nap));
      loop ()
  in
  loop ()

let close t =
  with_lock t @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.not_empty
  end
