module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Mean = struct
  (* Welford's online algorithm under a mutex: callers are statistics
     paths, never hot paths. *)
  type t = {
    lock : Mutex.t;
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
  }

  let create () = { lock = Mutex.create (); n = 0; mean = 0.; m2 = 0. }

  let add t x =
    Mutex.lock t.lock;
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    Mutex.unlock t.lock

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean

  let stddev t =
    if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

  let reset t =
    Mutex.lock t.lock;
    t.n <- 0; t.mean <- 0.; t.m2 <- 0.;
    Mutex.unlock t.lock
end

type t = {
  counter : Counter.t;
  mutable started_ns : int64;
}

let create () = { counter = Counter.create (); started_ns = Mclock.now_ns () }
let tick t = Counter.incr t.counter
let tick_n t n = Counter.add t.counter n
let count t = Counter.get t.counter

let rate t =
  let elapsed = Mclock.s_of_ns (Int64.sub (Mclock.now_ns ()) t.started_ns) in
  if elapsed <= 0. then 0. else float_of_int (count t) /. elapsed

let reset t =
  Counter.reset t.counter;
  t.started_ns <- Mclock.now_ns ()
