(** Priority blocking queue of timed entries with lock-free cancellation.

    Substrate of the Retransmitter thread (Section V-C4): the Protocol
    thread schedules a retransmission for every message it sends and — on
    the hot path, once per decided instance — cancels it. Cancellation must
    not take a lock or wake the consumer, so it only sets an atomic flag on
    the entry; the consumer drops cancelled entries lazily when their
    deadline expires, exactly as described in the paper. *)

type 'a t

type handle
(** Cancellation handle for one scheduled entry. *)

val create : unit -> 'a t

val schedule : 'a t -> at_ns:int64 -> 'a -> handle
(** Enqueue [v] to become due at absolute monotonic time [at_ns]. *)

val cancel : handle -> unit
(** Mark the entry cancelled. Lock-free; never wakes the consumer.
    Idempotent. *)

val is_cancelled : handle -> bool

val pending : 'a t -> int
(** Number of scheduled entries, including cancelled ones not yet
    collected (racy snapshot). *)

val pop_due : 'a t -> now_ns:int64 -> 'a option
(** Non-blocking: pop the earliest entry if it is due at [now_ns],
    silently discarding cancelled entries on the way. *)

val next_due_ns : 'a t -> int64 option
(** Deadline of the earliest live entry, if any. *)

val take : ?st:Thread_state.t -> 'a t -> 'a
(** Block until the earliest live entry becomes due and return it.
    @raise Closed if the queue is closed. *)

exception Closed

val close : 'a t -> unit
(** Wake and stop consumers. Idempotent. *)
