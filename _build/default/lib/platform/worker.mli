(** Named worker threads.

    Each threading-architecture module (Section V) owns one or more worker
    threads. A worker gets a {!Thread_state.t} handle for profiling and a
    top-level exception barrier: an escaping exception is logged and
    recorded, never silently dropped. *)

type t

val spawn : name:string -> (Thread_state.t -> unit) -> t
(** [spawn ~name body] starts a thread running [body st] where [st] is the
    thread's freshly registered accounting handle. *)

val name : t -> string

val join : t -> unit
(** Wait for the worker to finish. Idempotent. *)

val failure : t -> exn option
(** The exception that terminated the worker, if any (after {!join}). *)

val join_all : t list -> unit
