(* Vyukov's MPSC queue. [head] is the producer side (last appended node),
   [tail] the consumer side (a stub whose [next] chain holds the queue).
   Producers atomically exchange [head] then link the previous head to the
   new node; there is a short window where the link is not yet visible, so
   the consumer treats [next = None] after a non-empty exchange as "queue
   momentarily empty", which preserves FIFO order and lock-freedom. *)

type 'a node = {
  mutable value : 'a option;         (* None only for the stub *)
  next : 'a node option Atomic.t;
}

type 'a t = {
  head : 'a node Atomic.t;           (* producers *)
  mutable tail : 'a node;            (* consumer-owned *)
}

let make_node v = { value = v; next = Atomic.make None }

let create () =
  let stub = make_node None in
  { head = Atomic.make stub; tail = stub }

let push t v =
  let n = make_node (Some v) in
  let prev = Atomic.exchange t.head n in
  Atomic.set prev.next (Some n)

let pop t =
  match Atomic.get t.tail.next with
  | Some n ->
    t.tail <- n;
    let v = n.value in
    n.value <- None;
    v
  | None -> None

let is_empty t = Atomic.get t.tail.next = None && Atomic.get t.head == t.tail

let drain t =
  let rec go acc =
    match pop t with
    | None -> List.rev acc
    | Some v -> go (v :: acc)
  in
  go []
