(* [Unix.gettimeofday] is the best portable clock available without extra
   dependencies; it is good enough for the coarse accounting done here. *)
let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)
let ns_of_s s = Int64.of_float ((s *. 1e9) +. 0.5)
let s_of_ns ns = Int64.to_float ns /. 1e9
let sleep_s s = if s > 0. then Unix.sleepf s
