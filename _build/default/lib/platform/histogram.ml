(* Buckets cover [1 ns, ~100 s) with 16 buckets per power of two of
   nanoseconds: bucket = 16*log2(ns) rounded down, giving ~4.5% relative
   error. 16 * 37 = 592 buckets suffice. *)

let buckets_per_octave = 16
let n_buckets = 600

type t = {
  counts : int Atomic.t array;
  total : int Atomic.t;
  sum_ns : int Atomic.t;          (* total nanoseconds, for the mean *)
}

let create () =
  { counts = Array.init n_buckets (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum_ns = Atomic.make 0 }

let bucket_of_ns ns =
  if ns <= 1. then 0
  else
    let b =
      int_of_float (Float.of_int buckets_per_octave *. Float.log2 ns)
    in
    if b < 0 then 0 else if b >= n_buckets then n_buckets - 1 else b

let ns_of_bucket b =
  (* Upper bound of the bucket. *)
  Float.pow 2. (Float.of_int (b + 1) /. Float.of_int buckets_per_octave)

let record t seconds =
  let ns = Float.max 0. (seconds *. 1e9) in
  let b = bucket_of_ns ns in
  ignore (Atomic.fetch_and_add t.counts.(b) 1);
  ignore (Atomic.fetch_and_add t.total 1);
  ignore (Atomic.fetch_and_add t.sum_ns (int_of_float ns))

let count t = Atomic.get t.total

let mean t =
  let n = Atomic.get t.total in
  if n = 0 then 0. else Float.of_int (Atomic.get t.sum_ns) /. Float.of_int n /. 1e9

let percentile t p =
  let n = Atomic.get t.total in
  if n = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 1. p) in
    (* Nearest-rank: the smallest bucket whose cumulative count reaches
       ceil(n * p) samples. *)
    let target = max 1 (int_of_float (Float.ceil (Float.of_int n *. p))) in
    let rec go b acc =
      if b >= n_buckets then ns_of_bucket (n_buckets - 1) /. 1e9
      else begin
        let acc = acc + Atomic.get t.counts.(b) in
        if acc >= target then ns_of_bucket b /. 1e9 else go (b + 1) acc
      end
    in
    go 0 0
  end

let merge_into ~src ~dst =
  Array.iteri
    (fun i c ->
       let v = Atomic.get c in
       if v > 0 then ignore (Atomic.fetch_and_add dst.counts.(i) v))
    src.counts;
  ignore (Atomic.fetch_and_add dst.total (Atomic.get src.total));
  ignore (Atomic.fetch_and_add dst.sum_ns (Atomic.get src.sum_ns))

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.total 0;
  Atomic.set t.sum_ns 0

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms"
    (count t) (1e3 *. mean t)
    (1e3 *. percentile t 0.50)
    (1e3 *. percentile t 0.95)
    (1e3 *. percentile t 0.99)
