(** Array-based binary min-heap.

    Used by the {!Delay_queue} (retransmission timers) and by the
    simulator's event loop, both of which need fast [add]/[pop_min] on
    large heaps. Not thread-safe; callers synchronise externally. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Min-heap ordered by [cmp] (smallest element first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val min_elt : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop_min : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for inspection in tests). *)
