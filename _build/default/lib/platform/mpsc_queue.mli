(** Unbounded lock-free multi-producer single-consumer queue
    (Vyukov's algorithm, built on [Atomic]).

    Used where the paper's architecture relies on non-blocking data
    structures: reply hand-off from the ServiceManager to the owning
    ClientIO thread, and timestamp-free notification paths. Producers
    never block and never take a lock; the single consumer pops in FIFO
    order.

    The single-consumer restriction is not checked; calling {!pop} from
    two threads concurrently is a programming error. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Lock-free append; safe from any number of threads. *)

val pop : 'a t -> 'a option
(** Remove the oldest element. Only from the consumer thread. *)

val is_empty : 'a t -> bool
(** Racy snapshot (exact when called from the consumer thread). *)

val drain : 'a t -> 'a list
(** Pop everything currently visible, in FIFO order. Consumer thread
    only. *)
