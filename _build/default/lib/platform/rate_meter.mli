(** Thread-safe event counters and rate measurement.

    Used by the benchmark harness and by the replica's statistics endpoint
    (requests/s, packets/s, queue-length averages — the quantities of the
    paper's Tables I and III). *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Mean : sig
  (** Streaming mean and standard deviation (Welford). Thread-safe. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val stddev : t -> float
  (** Sample standard deviation; 0. with fewer than two samples. *)

  val reset : t -> unit
end

type t
(** Rate meter: counts events and reports events/second between
    snapshots. *)

val create : unit -> t
val tick : t -> unit
val tick_n : t -> int -> unit

val rate : t -> float
(** Events per second since the last [reset] (or creation). *)

val count : t -> int
val reset : t -> unit
