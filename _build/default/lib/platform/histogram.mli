(** Thread-safe log-bucketed latency histogram.

    Fixed memory, constant-time recording: values are binned into
    logarithmic buckets (~5% relative resolution), suitable for
    micro-to-second latencies. Used by the benchmark harness and load
    generators for percentile reporting. *)

type t

val create : unit -> t

val record : t -> float -> unit
(** Record a (non-negative, seconds) sample. Thread-safe and lock-free. *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] returns the approximate p99 in seconds (upper
    bucket bound); 0. when empty. [p] is clamped to [0, 1]. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s counts into [dst]. *)

val reset : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** "n=… mean=…ms p50=… p95=… p99=…". *)
