exception Closed

type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Bounded_queue.create: capacity <= 0";
  { capacity; items = Queue.create (); lock = Mutex.create ();
    not_empty = Condition.create (); not_full = Condition.create ();
    closed = false }

let capacity t = t.capacity

(* Lock acquisition is accounted as [Blocked], waits on condition
   variables as [Waiting], per the paper's profiling methodology. *)
let lock_acct ?st t =
  match st with
  | None -> Mutex.lock t.lock
  | Some st ->
    if Mutex.try_lock t.lock then ()
    else Thread_state.enter st Thread_state.Blocked (fun () -> Mutex.lock t.lock)

let wait_acct ?st cond lock =
  match st with
  | None -> Condition.wait cond lock
  | Some st ->
    Thread_state.enter st Thread_state.Waiting (fun () -> Condition.wait cond lock)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Queue.length t.items)
let is_empty t = length t = 0
let is_full t = length t >= t.capacity
let is_closed t = with_lock t (fun () -> t.closed)

let put ?st t v =
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.closed then raise Closed;
  while Queue.length t.items >= t.capacity && not t.closed do
    wait_acct ?st t.not_full t.lock
  done;
  if t.closed then raise Closed;
  Queue.push v t.items;
  Condition.signal t.not_empty

let try_put t v =
  with_lock t @@ fun () ->
  if t.closed then raise Closed;
  if Queue.length t.items >= t.capacity then false
  else begin
    Queue.push v t.items;
    Condition.signal t.not_empty;
    true
  end

let take ?st t =
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  while Queue.is_empty t.items && not t.closed do
    wait_acct ?st t.not_empty t.lock
  done;
  if Queue.is_empty t.items then raise Closed;
  let v = Queue.pop t.items in
  Condition.signal t.not_full;
  v

let try_take t =
  with_lock t @@ fun () ->
  if Queue.is_empty t.items then None
  else begin
    let v = Queue.pop t.items in
    Condition.signal t.not_full;
    Some v
  end

let take_timeout ?st t ~timeout_s =
  let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s timeout_s) in
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let rec loop () =
    if not (Queue.is_empty t.items) then begin
      let v = Queue.pop t.items in
      Condition.signal t.not_full;
      Some v
    end
    else if t.closed then raise Closed
    else if Int64.compare (Mclock.now_ns ()) deadline >= 0 then None
    else begin
      (* [Condition] has no timed wait; poll with a short sleep while the
         lock is released. This path is only used by housekeeping threads
         (failure detector, retransmitter), never on the hot path. *)
      Mutex.unlock t.lock;
      (match st with
       | None -> Thread.yield (); Mclock.sleep_s 0.0002
       | Some st ->
         Thread_state.enter st Thread_state.Waiting (fun () ->
             Thread.yield (); Mclock.sleep_s 0.0002));
      Mutex.lock t.lock;
      loop ()
    end
  in
  loop ()

let take_batch ?st t ~max =
  if max <= 0 then invalid_arg "Bounded_queue.take_batch: max <= 0";
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  while Queue.is_empty t.items && not t.closed do
    wait_acct ?st t.not_empty t.lock
  done;
  if Queue.is_empty t.items then raise Closed;
  let rec drain k acc =
    if k = 0 || Queue.is_empty t.items then List.rev acc
    else drain (k - 1) (Queue.pop t.items :: acc)
  in
  let batch = drain max [] in
  Condition.broadcast t.not_full;
  batch

let close t =
  with_lock t @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full
  end
