type series = {
  label : string;
  points : (float * float) list;
}

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let render ?(width = 60) ?(height = 16) ?(y_label = "") ?(x_label = "")
    ppf series_list =
  let series_list = List.filter (fun s -> s.points <> []) series_list in
  if series_list <> [] then begin
    let all = List.concat_map (fun s -> s.points) series_list in
    let xs = List.map fst all and ys = List.map snd all in
    let x_min = List.fold_left Float.min Float.infinity xs in
    let x_max = List.fold_left Float.max Float.neg_infinity xs in
    let y_max = Float.max 1e-9 (List.fold_left Float.max 0. ys) in
    let x_span = Float.max 1e-9 (x_max -. x_min) in
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
         let glyph = glyphs.(si mod Array.length glyphs) in
         List.iter
           (fun (x, y) ->
              let col =
                int_of_float
                  (Float.round
                     ((x -. x_min) /. x_span *. float_of_int (width - 1)))
              in
              let row =
                (height - 1)
                - int_of_float
                    (Float.round (y /. y_max *. float_of_int (height - 1)))
              in
              let col = max 0 (min (width - 1) col) in
              let row = max 0 (min (height - 1) row) in
              canvas.(row).(col) <- glyph)
           s.points)
      series_list;
    if y_label <> "" then Format.fprintf ppf "%s@." y_label;
    Array.iteri
      (fun i row ->
         let y_tick =
           y_max *. float_of_int (height - 1 - i) /. float_of_int (height - 1)
         in
         Format.fprintf ppf "%8.0f |%s@." y_tick
           (String.init width (Array.get row)))
      canvas;
    Format.fprintf ppf "%8s +%s@." "" (String.make width '-');
    Format.fprintf ppf "%8s  %-*.0f%*.0f  %s@." "" (width - 6) x_min 6 x_max
      x_label;
    Format.fprintf ppf "%8s  %s@." ""
      (String.concat "   "
         (List.mapi
            (fun si s ->
               Printf.sprintf "%c %s" glyphs.(si mod Array.length glyphs)
                 s.label)
            series_list))
  end
