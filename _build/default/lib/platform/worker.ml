let log_src = Logs.Src.create "msmr.worker" ~doc:"Worker threads"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  name : string;
  thread : Thread.t;
  failed : exn option Atomic.t;
}

let spawn ~name body =
  let failed = Atomic.make None in
  let thread =
    Thread.create
      (fun () ->
         let st = Thread_state.create ~name in
         (try body st with
          | Bounded_queue.Closed | Delay_queue.Closed ->
            (* Normal shutdown path: the stage's input queue was closed. *)
            ()
          | exn ->
            Atomic.set failed (Some exn);
            Log.err (fun m ->
                m "worker %s died: %s" name (Printexc.to_string exn)));
         Thread_state.unregister st)
      ()
  in
  { name; thread; failed }

let name t = t.name
let join t = Thread.join t.thread
let failure t = Atomic.get t.failed
let join_all ts = List.iter join ts
