(** Per-thread state accounting.

    The paper profiles every thread of the replica into four states
    (Section VI-B): [busy] (executing), [blocked] (acquiring a lock),
    [waiting] (on a condition variable, i.e. idle waiting for work) and
    [other] (sleeping, in a system call, or runnable but not scheduled).

    This module provides the same accounting for the live runtime: each
    instrumented thread registers a handle and the synchronisation
    primitives ({!Bounded_queue}, {!Delay_queue}, ...) mark state
    transitions through it. Accounting is cheap: one clock read and a few
    stores per transition, all on the owning thread (reads from other
    threads are racy-but-monotone snapshots, which is fine for profiling). *)

type state =
  | Busy      (** executing application work *)
  | Blocked   (** blocked acquiring a lock *)
  | Waiting   (** waiting on a condition variable for work *)
  | Other     (** sleeping, in a system call, or not scheduled *)

val state_to_string : state -> string

type t
(** Accounting handle for one thread. *)

val create : name:string -> t
(** [create ~name] makes a handle starting in {!Busy}. The handle is
    registered in the global registry until {!unregister}. *)

val name : t -> string

val set : t -> state -> unit
(** [set t s] switches the thread to state [s], attributing the elapsed
    time since the last transition to the previous state. Must be called
    from the owning thread. *)

val enter : t -> state -> (unit -> 'a) -> 'a
(** [enter t s f] runs [f ()] in state [s] and restores the previous state
    afterwards (also on exception). *)

type totals = {
  busy_ns : int64;
  blocked_ns : int64;
  waiting_ns : int64;
  other_ns : int64;
}

val totals : t -> totals
(** Snapshot of accumulated time per state, including the still-open
    current interval. *)

val unregister : t -> unit
(** Remove the handle from the global registry (totals remain readable). *)

val snapshot_all : unit -> (string * totals) list
(** Name and totals of every registered thread, in registration order. *)

val reset_all : unit -> unit
(** Zero the accounting of every registered thread (used to discard the
    warm-up period of a measurement, as the paper does). *)

val pp_report : Format.formatter -> (string * totals) list -> unit
(** Render a percentage breakdown per thread, normalised to the longest
    thread lifetime in the snapshot (mirrors the paper's Figure 8). *)
