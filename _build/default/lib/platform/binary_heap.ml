type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;   (* slots [0, size) are live *)
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t v =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap v in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t v =
  grow t v;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let min_elt t = if t.size = 0 then None else Some t.data.(0)

let pop_min t =
  if t.size = 0 then None
  else begin
    let v = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* Drop the dangling reference so the GC can reclaim popped values. *)
    t.data.(t.size) <- t.data.(if t.size = 0 then 0 else t.size - 1);
    Some v
  end

let clear t =
  t.data <- [||];
  t.size <- 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.size - 1) []
