(** Monotonic clock helpers.

    All durations in this code base are expressed in nanoseconds as [int64]
    (wrap-around would take ~292 years) or, for convenience at API
    boundaries, in seconds as [float]. *)

val now_ns : unit -> int64
(** Current monotonic time in nanoseconds. Not related to wall-clock time;
    only differences are meaningful. *)

val ns_of_s : float -> int64
(** Convert seconds to nanoseconds (rounds to nearest). *)

val s_of_ns : int64 -> float
(** Convert nanoseconds to seconds. *)

val sleep_s : float -> unit
(** Sleep the current thread for the given number of seconds. *)
