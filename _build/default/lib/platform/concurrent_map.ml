type ('k, 'v) shard = {
  lock : Mutex.t;
  table : ('k, 'v) Hashtbl.t;
}

type ('k, 'v) t = {
  mask : int;                      (* shard count - 1; count is a power of 2 *)
  shards_arr : ('k, 'v) shard array;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = 16) ?(initial_size = 64) () =
  if shards <= 0 then invalid_arg "Concurrent_map.create: shards <= 0";
  let count = next_pow2 shards in
  let mk _ = { lock = Mutex.create (); table = Hashtbl.create initial_size } in
  { mask = count - 1; shards_arr = Array.init count mk }

let shards t = Array.length t.shards_arr

let shard_of t k = t.shards_arr.(Hashtbl.hash k land t.mask)

let with_shard t k f =
  let s = shard_of t k in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s.table)

let find_opt t k = with_shard t k (fun tbl -> Hashtbl.find_opt tbl k)
let mem t k = with_shard t k (fun tbl -> Hashtbl.mem tbl k)
let set t k v = with_shard t k (fun tbl -> Hashtbl.replace tbl k v)
let remove t k = with_shard t k (fun tbl -> Hashtbl.remove tbl k)

let update t k f =
  with_shard t k @@ fun tbl ->
  match f (Hashtbl.find_opt tbl k) with
  | None -> Hashtbl.remove tbl k
  | Some v -> Hashtbl.replace tbl k v

let length t =
  Array.fold_left
    (fun acc s ->
       Mutex.lock s.lock;
       let n = Hashtbl.length s.table in
       Mutex.unlock s.lock;
       acc + n)
    0 t.shards_arr

let fold f t init =
  Array.fold_left
    (fun acc s ->
       Mutex.lock s.lock;
       Fun.protect
         ~finally:(fun () -> Mutex.unlock s.lock)
         (fun () -> Hashtbl.fold f s.table acc))
    init t.shards_arr

let clear t =
  Array.iter
    (fun s ->
       Mutex.lock s.lock;
       Hashtbl.reset s.table;
       Mutex.unlock s.lock)
    t.shards_arr
