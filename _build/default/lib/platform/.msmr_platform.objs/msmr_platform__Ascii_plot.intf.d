lib/platform/ascii_plot.mli: Format
