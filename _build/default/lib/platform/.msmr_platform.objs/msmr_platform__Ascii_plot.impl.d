lib/platform/ascii_plot.ml: Array Float Format List Printf String
