lib/platform/binary_heap.mli:
