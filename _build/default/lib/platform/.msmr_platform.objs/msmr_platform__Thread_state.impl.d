lib/platform/thread_state.ml: Format Fun Int64 List Mclock Mutex
