lib/platform/concurrent_map.mli:
