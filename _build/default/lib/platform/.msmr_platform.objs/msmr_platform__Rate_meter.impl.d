lib/platform/rate_meter.ml: Atomic Int64 Mclock Mutex
