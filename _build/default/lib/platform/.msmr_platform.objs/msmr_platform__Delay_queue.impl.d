lib/platform/delay_queue.ml: Atomic Binary_heap Condition Float Fun Int64 Mclock Mutex Option Thread_state
