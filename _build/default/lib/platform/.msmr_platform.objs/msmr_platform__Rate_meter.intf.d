lib/platform/rate_meter.mli:
