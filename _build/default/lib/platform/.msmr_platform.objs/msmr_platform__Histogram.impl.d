lib/platform/histogram.ml: Array Atomic Float Format
