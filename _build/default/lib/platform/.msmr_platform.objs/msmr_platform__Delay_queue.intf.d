lib/platform/delay_queue.mli: Thread_state
