lib/platform/mclock.ml: Int64 Unix
