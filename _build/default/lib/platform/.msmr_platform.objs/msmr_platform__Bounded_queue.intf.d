lib/platform/bounded_queue.mli: Thread_state
