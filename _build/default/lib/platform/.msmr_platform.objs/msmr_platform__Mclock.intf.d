lib/platform/mclock.mli:
