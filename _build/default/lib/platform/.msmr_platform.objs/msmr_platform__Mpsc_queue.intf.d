lib/platform/mpsc_queue.mli:
