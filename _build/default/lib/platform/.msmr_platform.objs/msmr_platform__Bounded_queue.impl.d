lib/platform/bounded_queue.ml: Condition Fun Int64 List Mclock Mutex Queue Thread Thread_state
