lib/platform/histogram.mli: Format
