lib/platform/worker.mli: Thread_state
