lib/platform/binary_heap.ml: Array
