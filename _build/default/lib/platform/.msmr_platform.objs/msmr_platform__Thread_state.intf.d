lib/platform/thread_state.mli: Format
