lib/platform/worker.ml: Atomic Bounded_queue Delay_queue List Logs Printexc Thread Thread_state
