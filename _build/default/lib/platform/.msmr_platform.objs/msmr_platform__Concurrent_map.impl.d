lib/platform/concurrent_map.ml: Array Fun Hashtbl Mutex
