lib/platform/mpsc_queue.ml: Atomic List
