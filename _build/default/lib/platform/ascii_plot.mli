(** Minimal ASCII line charts for benchmark output.

    Renders one or more (x, y) series on a shared scale so the shape of
    a result — knees, peaks, collapses — is visible directly in the
    terminal output of the benchmark harness. *)

type series = {
  label : string;
  points : (float * float) list;   (** (x, y), any order *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?y_label:string ->
  ?x_label:string ->
  Format.formatter ->
  series list ->
  unit
(** Plot all series on one canvas (default 60×16). Each series uses its
    own glyph ([*], [o], [+], [x], ...); a legend line follows the
    chart. The y axis starts at 0. Empty series are skipped; an empty
    list renders nothing. *)
