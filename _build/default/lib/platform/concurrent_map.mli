(** Sharded concurrent hash map with fine-grained locking.

    This is the OCaml equivalent of [java.util.concurrent.ConcurrentHashMap]
    used by the paper for the reply cache (Section V-D): queried by every
    ClientIO thread on request arrival and updated by the ServiceManager on
    execution. Coarse-grained locking performs poorly here; the map is
    split into [shards] independent hash tables, each protected by its own
    mutex, so threads touching different shards never contend. *)

type ('k, 'v) t

val create : ?shards:int -> ?initial_size:int -> unit -> ('k, 'v) t
(** [create ()] uses 16 shards. [shards] is rounded up to a power of two.
    Keys are hashed with [Hashtbl.hash]. *)

val shards : ('k, 'v) t -> int

val find_opt : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace. *)

val remove : ('k, 'v) t -> 'k -> unit

val update : ('k, 'v) t -> 'k -> ('v option -> 'v option) -> unit
(** Atomic read-modify-write of one binding: [update m k f] replaces the
    binding with [f (find_opt m k)] ([None] removes it), holding only that
    shard's lock. *)

val length : ('k, 'v) t -> int
(** Total bindings (sums shard sizes; consistent only in quiescence). *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Folds shard by shard; bindings added/removed concurrently may or may
    not be observed. *)

val clear : ('k, 'v) t -> unit
