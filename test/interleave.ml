(* DSCheck-style bounded exhaustive interleaving checker.

   The lock-free ring cores ([Msmr_platform.Lf_queue]) are functors over
   an ATOMIC signature; instantiating them with {!Traced_atomic} makes
   every atomic access a scheduling point. {!explore} then enumerates
   thread interleavings by depth-first search: each run follows a
   replayed prefix of scheduling choices and default-schedules the rest,
   recording every choice point; backtracking picks the deepest point
   with an untried runnable thread. Scenarios are deterministic apart
   from scheduling, so replaying a prefix reproduces the same state —
   the exploration is exhaustive up to [max_runs].

   Threads are effect-handler coroutines, not system threads: a
   [Yield] effect is performed before each atomic access and the
   scheduler decides who proceeds. Scenario code must therefore be pure
   compute + traced atomics (no mutexes, no real blocking). *)

type _ Effect.t += Yield : unit Effect.t

module Traced_atomic = struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make

  let get a =
    Effect.perform Yield;
    Atomic.get a

  let set a v =
    Effect.perform Yield;
    Atomic.set a v

  let compare_and_set a old_v new_v =
    Effect.perform Yield;
    Atomic.compare_and_set a old_v new_v

  let fetch_and_add a k =
    Effect.perform Yield;
    Atomic.fetch_and_add a k
end

(* Pass-through handler: lets scenario construction and final checks use
   traced operations outside the scheduled threads (their yields are
   serial, so they create no choice points). *)
let passthrough (f : unit -> 'a) : 'a =
  Effect.Deep.match_with f ()
    {
      Effect.Deep.retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (b, _) Effect.Deep.continuation) ->
                Effect.Deep.continue k ())
          | _ -> None);
    }

(* [explore ~max_runs scenario] runs [scenario] under every interleaving
   (up to [max_runs] schedules). [scenario ()] must build fresh state
   and return [(threads, check)]; [check] runs after all threads
   finish and should raise (e.g. [Alcotest.fail]) on an invariant
   violation. Returns [(runs, exhausted)]: the number of schedules
   explored and whether the space was fully covered. *)
let explore ?(max_runs = 200_000) scenario =
  let runs = ref 0 in
  let complete = ref true in
  let rec attempt prefix =
    if !runs >= max_runs then complete := false
    else begin
      incr runs;
      let threads, check = passthrough scenario in
      let bodies = Array.of_list threads in
      let n = Array.length bodies in
      let conts : (unit, unit) Effect.Deep.continuation option array =
        Array.make n None
      in
      let started = Array.make n false in
      let finished = Array.make n false in
      let handler i =
        {
          Effect.Deep.retc = (fun () -> finished.(i) <- true);
          exnc = raise;
          effc =
            (fun (type b) (eff : b Effect.t) ->
              match eff with
              | Yield ->
                Some
                  (fun (k : (b, _) Effect.Deep.continuation) ->
                    conts.(i) <- Some k)
              | _ -> None);
        }
      in
      let step i =
        if not started.(i) then begin
          started.(i) <- true;
          Effect.Deep.match_with bodies.(i) () (handler i)
        end
        else
          match conts.(i) with
          | Some k ->
            conts.(i) <- None;
            Effect.Deep.continue k ()
          | None -> ()
      in
      (* (chosen, runnable-at-that-point), newest first. *)
      let points = ref [] in
      let rec drive sched =
        let runnable =
          List.filter (fun i -> not finished.(i)) (List.init n Fun.id)
        in
        match runnable with
        | [] -> ()
        | _ ->
          let choice, rest =
            match sched with c :: tl -> (c, tl) | [] -> (List.hd runnable, [])
          in
          points := (choice, runnable) :: !points;
          step choice;
          drive rest
      in
      drive prefix;
      passthrough check;
      (* Deepest choice point with an untried alternative; runnable sets
         are ascending and the default choice is the smallest, so the
         next alternative is the next-larger runnable index. *)
      let rec next_prefix = function
        | [] -> None
        | (chosen, runnable) :: older -> (
          match List.find_opt (fun i -> i > chosen) runnable with
          | Some alt -> Some (List.rev_map fst older @ [ alt ])
          | None -> next_prefix older)
      in
      match next_prefix !points with
      | Some p -> attempt p
      | None -> ()
    end
  in
  attempt [];
  (!runs, !complete)
