(* Tests for msmr_consensus: protocol types, log, batcher, failure
   detector, message codec, and whole-cluster agreement properties driven
   through random lossy message schedules. *)

open Msmr_consensus
module Client_msg = Msmr_wire.Client_msg

let mk_req client_id seq payload =
  { Client_msg.id = { client_id; seq }; payload = Bytes.of_string payload }

let mk_batch src num reqs = { Batch.bid = { src; num }; requests = reqs }

(* ------------------------------------------------------------------ *)
(* Types *)

let test_leader_of_view () =
  Alcotest.(check int) "v0" 0 (Types.leader_of_view ~n:3 0);
  Alcotest.(check int) "v1" 1 (Types.leader_of_view ~n:3 1);
  Alcotest.(check int) "v5" 2 (Types.leader_of_view ~n:3 5)

let test_next_view_led_by () =
  (* n=3: views led by node 1 are 1, 4, 7, ... *)
  Alcotest.(check int) "after 0" 1 (Types.next_view_led_by ~n:3 ~after:0 1);
  Alcotest.(check int) "after 1" 4 (Types.next_view_led_by ~n:3 ~after:1 1);
  Alcotest.(check int) "after 3" 4 (Types.next_view_led_by ~n:3 ~after:3 1);
  Alcotest.(check int) "self-led next" 3 (Types.next_view_led_by ~n:3 ~after:0 0);
  Alcotest.(check int) "n=5" 8 (Types.next_view_led_by ~n:5 ~after:4 3)

let prop_next_view_led_by =
  QCheck.Test.make ~name:"next_view_led_by: minimal and correct" ~count:500
    QCheck.(triple (int_range 1 9) (int_range 0 100) (int_range 0 8))
    (fun (n, after, node) ->
       QCheck.assume (node < n);
       let v = Types.next_view_led_by ~n ~after node in
       v > after
       && Types.leader_of_view ~n v = node
       && (* minimality: no smaller view > after led by node *)
       not
         (List.exists
            (fun u -> u > after && u < v && Types.leader_of_view ~n u = node)
            (List.init (v - after) (fun i -> after + 1 + i))))

let test_majority () =
  Alcotest.(check int) "n=1" 1 (Types.majority ~n:1);
  Alcotest.(check int) "n=3" 2 (Types.majority ~n:3);
  Alcotest.(check int) "n=5" 3 (Types.majority ~n:5);
  Alcotest.(check int) "n=4" 3 (Types.majority ~n:4)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_validate () =
  let ok = Config.default ~n:3 in
  Alcotest.(check bool) "default ok" true (Config.validate ok = Ok ());
  Alcotest.(check bool) "bad n" true
    (Config.validate { ok with n = 0 } |> Result.is_error);
  Alcotest.(check bool) "bad window" true
    (Config.validate { ok with window = 0 } |> Result.is_error);
  Alcotest.(check bool) "fd timeout vs interval" true
    (Config.validate { ok with fd_timeout_s = 0.01 } |> Result.is_error);
  Alcotest.(check int) "f of 5" 2 (Config.f (Config.default ~n:5))

(* ------------------------------------------------------------------ *)
(* Log *)

let b0 = Value.Batch (mk_batch 0 0 [ mk_req 1 1 "a" ])
let b1 = Value.Batch (mk_batch 0 1 [ mk_req 1 2 "b" ])

let test_log_accept_decide () =
  let log = Log.create () in
  Alcotest.(check int) "fu" 0 (Log.first_undecided log);
  Log.accept log 0 0 b0;
  Alcotest.(check bool) "not decided" false (Log.is_decided log 0);
  Alcotest.(check int) "in flight" 1 (Log.in_flight log);
  Alcotest.(check bool) "decide" true (Log.decide log 0 0 b0);
  Alcotest.(check bool) "idempotent" false (Log.decide log 0 0 b0);
  Alcotest.(check int) "fu advanced" 1 (Log.first_undecided log);
  Alcotest.(check int) "in flight 0" 0 (Log.in_flight log)

let test_log_execution_order () =
  let log = Log.create () in
  (* Decide out of order: 1 before 0. *)
  ignore (Log.decide log 1 0 b1);
  Alcotest.(check bool) "no exec yet" true (Log.next_to_execute log = None);
  ignore (Log.decide log 0 0 b0);
  (match Log.next_to_execute log with
   | Some (0, v) ->
     Alcotest.(check bool) "value" true (Value.equal v b0);
     Log.mark_executed log 0
   | _ -> Alcotest.fail "expected instance 0");
  (match Log.next_to_execute log with
   | Some (1, _) -> Log.mark_executed log 1
   | _ -> Alcotest.fail "expected instance 1");
  Alcotest.(check bool) "drained" true (Log.next_to_execute log = None);
  Alcotest.(check int) "first_unexecuted" 2 (Log.first_unexecuted log)

let test_log_mark_executed_guard () =
  let log = Log.create () in
  ignore (Log.decide log 0 0 b0);
  Alcotest.check_raises "out of order"
    (Invalid_argument "Log.mark_executed: 1, expected 0") (fun () ->
        Log.mark_executed log 1)

let test_log_higher_view_wins () =
  let log = Log.create () in
  Log.accept log 0 1 b0;
  Log.accept log 0 0 b1;
  (* lower view: ignored *)
  (match Log.get log 0 with
   | Some e ->
     Alcotest.(check int) "view" 1 e.Log.accepted_view;
     Alcotest.(check bool) "value kept" true
       (match e.Log.value with Some v -> Value.equal v b0 | None -> false)
   | None -> Alcotest.fail "entry missing");
  Log.accept log 0 2 b1;
  (match Log.get log 0 with
   | Some e -> Alcotest.(check int) "higher view" 2 e.Log.accepted_view
   | None -> Alcotest.fail "entry missing")

let test_log_acks_reset_on_new_view () =
  let log = Log.create () in
  Log.accept log 0 0 b0;
  let e = Log.get_or_create log 0 in
  e.Log.acks <- 0b111;
  Log.accept log 0 1 b0;
  Alcotest.(check int) "acks reset" 0 (Log.get_or_create log 0).Log.acks

let test_log_truncate_and_fast_forward () =
  let log = Log.create () in
  for i = 0 to 9 do
    ignore (Log.decide log i 0 b0);
    Log.mark_executed log i
  done;
  Log.truncate_below log 5;
  Alcotest.(check int) "low mark" 5 (Log.low_mark log);
  Alcotest.(check bool) "below is decided" true (Log.is_decided log 2);
  Alcotest.(check bool) "entry gone" true (Log.get log 2 = None);
  Log.fast_forward log 20;
  Alcotest.(check int) "ff cursor" 20 (Log.first_unexecuted log);
  Alcotest.(check int) "ff undecided" 20 (Log.first_undecided log);
  (* fast_forward never moves backwards *)
  Log.fast_forward log 3;
  Alcotest.(check int) "no rewind" 20 (Log.first_unexecuted log)

let test_log_undecided_below () =
  let log = Log.create () in
  ignore (Log.decide log 0 0 b0);
  ignore (Log.decide log 2 0 b0);
  Alcotest.(check (list int)) "gaps" [ 1; 3 ] (Log.undecided_below log 4)

let test_log_decided_range () =
  let log = Log.create () in
  ignore (Log.decide log 0 3 b0);
  Log.accept log 1 3 b1;
  ignore (Log.decide log 2 4 b1);
  let entries = Log.decided_range log ~from_iid:0 ~to_iid:3 in
  Alcotest.(check (list int)) "iids" [ 0; 2 ]
    (List.map (fun e -> e.Msg.e_iid) entries);
  Alcotest.(check (list int)) "views are deciding views" [ 3; 4 ]
    (List.map (fun e -> e.Msg.e_view) entries);
  Alcotest.(check bool) "all decided" true
    (List.for_all (fun e -> e.Msg.e_decided) entries)

(* ------------------------------------------------------------------ *)
(* Batcher *)

let batcher_cfg = { (Config.default ~n:3) with max_batch_bytes = 100 }

let test_batcher_fills_by_size () =
  let b = Batcher.create batcher_cfg ~src:0 in
  (* Each request is 16 + 20 = 36 bytes; two fit in 100, a third spills. *)
  let r i = mk_req 1 i (String.make 20 'x') in
  Alcotest.(check bool) "r1 open" true (Batcher.add b (r 1) ~now_ns:0L = None);
  Alcotest.(check bool) "r2 open" true (Batcher.add b (r 2) ~now_ns:0L = None);
  (match Batcher.add b (r 3) ~now_ns:0L with
   | Some batch ->
     Alcotest.(check int) "sealed has 2" 2 (Batch.request_count batch);
     Alcotest.(check int) "num 0" 0 batch.Batch.bid.num
   | None -> Alcotest.fail "expected sealed batch");
  Alcotest.(check int) "r3 now open" 1 (Batcher.pending_requests b)

let test_batcher_exact_fill_seals () =
  let cfg = { batcher_cfg with max_batch_bytes = 72 } in
  let b = Batcher.create cfg ~src:0 in
  let r i = mk_req 1 i (String.make 20 'x') in
  Alcotest.(check bool) "r1" true (Batcher.add b (r 1) ~now_ns:0L = None);
  (match Batcher.add b (r 2) ~now_ns:0L with
   | Some batch -> Alcotest.(check int) "both" 2 (Batch.request_count batch)
   | None -> Alcotest.fail "exact fill should seal");
  Alcotest.(check int) "empty" 0 (Batcher.pending_requests b)

let test_batcher_oversized_request () =
  let b = Batcher.create batcher_cfg ~src:0 in
  match Batcher.add b (mk_req 1 1 (String.make 500 'y')) ~now_ns:0L with
  | Some batch -> Alcotest.(check int) "own batch" 1 (Batch.request_count batch)
  | None -> Alcotest.fail "oversized request must seal immediately"

let test_batcher_timeout_flush () =
  let cfg = { batcher_cfg with max_batch_delay_s = 0.05 } in
  let b = Batcher.create cfg ~src:2 in
  ignore (Batcher.add b (mk_req 1 1 "small") ~now_ns:1_000L);
  Alcotest.(check bool) "not due yet" true
    (Batcher.flush_due b ~now_ns:2_000L = None);
  let due = Int64.add 1_000L (Int64.of_float (0.05 *. 1e9)) in
  (match Batcher.flush_due b ~now_ns:due with
   | Some batch ->
     Alcotest.(check int) "one request" 1 (Batch.request_count batch);
     Alcotest.(check int) "src" 2 batch.Batch.bid.src
   | None -> Alcotest.fail "expected flush");
  Alcotest.(check bool) "deadline cleared" true (Batcher.deadline_ns b = None)

let test_batcher_force_flush_and_numbering () =
  let b = Batcher.create batcher_cfg ~src:0 in
  ignore (Batcher.add b (mk_req 1 1 "a") ~now_ns:0L);
  let b1 = Option.get (Batcher.force_flush b) in
  ignore (Batcher.add b (mk_req 1 2 "b") ~now_ns:0L);
  let b2 = Option.get (Batcher.force_flush b) in
  Alcotest.(check int) "num 0" 0 b1.Batch.bid.num;
  Alcotest.(check int) "num 1" 1 b2.Batch.bid.num;
  Alcotest.(check bool) "empty flush" true (Batcher.force_flush b = None)

let prop_batcher_no_request_lost =
  QCheck.Test.make ~name:"batcher: partitions the request stream" ~count:200
    QCheck.(list (int_range 0 120))
    (fun sizes ->
       let b = Batcher.create batcher_cfg ~src:0 in
       let sealed = ref [] in
       List.iteri
         (fun i sz ->
            match Batcher.add b (mk_req 7 i (String.make sz 'p')) ~now_ns:0L with
            | Some batch -> sealed := batch :: !sealed
            | None -> ())
         sizes;
       (match Batcher.force_flush b with
        | Some batch -> sealed := batch :: !sealed
        | None -> ());
       let batches = List.rev !sealed in
       let seqs =
         List.concat_map
           (fun (batch : Batch.t) ->
              List.map (fun (r : Client_msg.request) -> r.id.seq) batch.requests)
           batches
       in
       (* Every request appears exactly once, in order. *)
       seqs = List.init (List.length sizes) Fun.id
       && List.for_all
            (fun (batch : Batch.t) ->
               Batch.size_bytes batch <= batcher_cfg.max_batch_bytes
               || Batch.request_count batch = 1)
            batches)

let test_batcher_tuned_bsz () =
  let tuned = Atomic.make 100 in
  let b = Batcher.create ~tuned_bsz:tuned batcher_cfg ~src:0 in
  Alcotest.(check int) "initial limit" 100 (Batcher.bsz_limit b);
  let r i = mk_req 1 i (String.make 20 'x') in
  (* 36 B each *)
  Alcotest.(check bool) "r1 open" true (Batcher.add b (r 1) ~now_ns:0L = None);
  Alcotest.(check bool) "r2 open" true (Batcher.add b (r 2) ~now_ns:0L = None);
  (* Retune mid-batch: the new limit is in force on the very next add. *)
  Atomic.set tuned 200;
  Alcotest.(check int) "limit follows atomic" 200 (Batcher.bsz_limit b);
  Alcotest.(check bool) "r3 open" true (Batcher.add b (r 3) ~now_ns:0L = None);
  Alcotest.(check bool) "r4 open" true (Batcher.add b (r 4) ~now_ns:0L = None);
  Alcotest.(check bool) "r5 open" true (Batcher.add b (r 5) ~now_ns:0L = None);
  match Batcher.add b (r 6) ~now_ns:0L with
  | Some batch ->
    Alcotest.(check int) "five sealed at grown limit" 5
      (Batch.request_count batch)
  | None -> Alcotest.fail "expected seal at grown limit"

let test_batcher_seal_stats () =
  let b = Batcher.create batcher_cfg ~src:0 in
  (* limit 100 *)
  let r i = mk_req 1 i (String.make 20 'x') in
  ignore (Batcher.add b (r 1) ~now_ns:0L);
  ignore (Batcher.add b (r 2) ~now_ns:0L);
  ignore (Batcher.add b (r 3) ~now_ns:0L);
  (* r3 overflowed: the 72 B batch sealed on size *)
  let s1 = Batcher.seal_stats b in
  Alcotest.(check int) "size seals" 1 s1.Batcher.seals_size;
  Alcotest.(check int) "delay seals" 0 s1.Batcher.seals_delay;
  Alcotest.(check int) "sealed bytes" 72 s1.Batcher.sealed_bytes;
  Alcotest.(check int) "limit bytes" 100 s1.Batcher.limit_bytes;
  (* the open 36 B singleton flushes on the delay/forced path *)
  ignore (Batcher.force_flush b);
  let s2 = Batcher.seal_stats b in
  Alcotest.(check int) "delay seal counted" 1 s2.Batcher.seals_delay;
  Alcotest.(check int) "bytes accumulate" 108 s2.Batcher.sealed_bytes;
  Alcotest.(check int) "limits accumulate" 200 s2.Batcher.limit_bytes

let prop_batcher_pending_count_exact =
  QCheck.Test.make ~name:"batcher: O(1) pending count is exact" ~count:200
    QCheck.(list (int_range 0 120))
    (fun sizes ->
       let b = Batcher.create batcher_cfg ~src:0 in
       let expected = ref 0 in
       let ok = ref true in
       List.iteri
         (fun i sz ->
            (match Batcher.add b (mk_req 5 i (String.make sz 'c')) ~now_ns:0L with
             | Some batch ->
               expected := !expected + 1 - Batch.request_count batch
             | None -> incr expected);
            ok := !ok && Batcher.pending_requests b = !expected)
         sizes;
       ignore (Batcher.force_flush b);
       !ok && Batcher.pending_requests b = 0)

let prop_batcher_deadline_flush_agree =
  QCheck.Test.make ~name:"batcher: deadline_ns/flush_due agreement" ~count:200
    QCheck.(list (pair (int_range 0 120) (int_range 0 10_000_000)))
    (fun reqs ->
       let cfg = { batcher_cfg with max_batch_delay_s = 0.005 } in
       let b = Batcher.create cfg ~src:0 in
       let now = ref 0L in
       let ok = ref true in
       List.iteri
         (fun i (sz, gap) ->
            now := Int64.add !now (Int64.of_int gap);
            (* drain anything already due, as the Batcher thread would *)
            ignore (Batcher.flush_due b ~now_ns:!now);
            ignore (Batcher.add b (mk_req 9 i (String.make sz 'q')) ~now_ns:!now);
            match Batcher.deadline_ns b with
            | None -> ok := !ok && Batcher.pending_requests b = 0
            | Some d ->
              ok :=
                !ok
                && Batcher.pending_requests b > 0
                && Batcher.flush_due b ~now_ns:(Int64.pred d) = None)
         reqs;
       (match Batcher.deadline_ns b with
        | Some d ->
          ok :=
            !ok
            && Batcher.flush_due b ~now_ns:d <> None
            && Batcher.deadline_ns b = None
        | None -> ok := !ok && Batcher.pending_requests b = 0);
       !ok)

(* ------------------------------------------------------------------ *)
(* Autotune controller *)

let at_signals ?(win = 0) ?(pq = 0) ?(lq = 0) ?(ssz = 0) ?(sdl = 0)
    ?(fill = 0.) ?(tput = 0.) ?(lat = 0.) () =
  Autotune.
    { s_window_in_use = win; s_proposal_queue = pq; s_log_queue = lq;
      s_seals_size = ssz; s_seals_delay = sdl; s_batch_fill = fill;
      s_throughput = tput; s_commit_latency_s = lat }

let test_autotune_grows_bsz_on_size_seals () =
  let t = Autotune.create ~bsz0:1300 ~wnd0:10 () in
  (* Fill 0.79 is the 1024-B-into-1300 packing case: size seals must
     trigger growth even when the sealed batches look underfull. *)
  Autotune.tick t (at_signals ~ssz:50 ~sdl:1 ~fill:0.79 ~tput:10_000. ());
  Alcotest.(check bool) "bsz grew" true (Autotune.bsz t > 1300);
  Alcotest.(check int) "wnd unchanged" 10 (Autotune.wnd t)

let test_autotune_bsz_converges_to_cap () =
  let t = Autotune.create ~bsz0:1300 ~wnd0:10 () in
  let s = at_signals ~ssz:50 ~tput:10_000. () in
  let last = ref 1300 in
  for _ = 1 to 30 do
    Autotune.tick t s;
    Alcotest.(check bool) "monotone under size pressure" true
      (Autotune.bsz t >= !last);
    last := Autotune.bsz t
  done;
  Alcotest.(check int) "reaches bsz_max" 65536 (Autotune.bsz t)

let test_autotune_backoff_cooldown () =
  let t = Autotune.create ~bsz0:1300 ~wnd0:40 () in
  Autotune.tick t (at_signals ~lat:0.2 ~tput:1_000. ());
  Alcotest.(check int) "backed off" 28 (Autotune.wnd t);
  (* saturation returns immediately, but the dimension is cooling: no
     instant regrow of what congestion just took away *)
  let hot = at_signals ~win:28 ~lat:0.001 ~tput:1_000. () in
  Autotune.tick t hot;
  Autotune.tick t hot;
  Alcotest.(check int) "held during cooldown" 28 (Autotune.wnd t);
  Autotune.tick t hot;
  Alcotest.(check int) "grows after cooldown" 31 (Autotune.wnd t)

let test_autotune_grows_wnd_when_saturated () =
  let t = Autotune.create ~bsz0:1300 ~wnd0:10 () in
  Autotune.tick t (at_signals ~win:10 ~tput:10_000. ());
  Alcotest.(check int) "wnd +3" 13 (Autotune.wnd t);
  Alcotest.(check int) "bsz unchanged" 1300 (Autotune.bsz t)

let test_autotune_wnd_backoff () =
  let t = Autotune.create ~bsz0:1300 ~wnd0:40 () in
  Autotune.tick t (at_signals ~lat:0.2 ~tput:1_000. ());
  Alcotest.(check int) "latency breach backs off 40 -> 28" 28 (Autotune.wnd t);
  let t2 = Autotune.create ~bsz0:1300 ~wnd0:40 () in
  Autotune.tick t2 (at_signals ~lq:600 ~tput:1_000. ());
  Alcotest.(check int) "LogQueue backlog backs off too" 28 (Autotune.wnd t2)

let test_autotune_demand_shrink () =
  let t = Autotune.create ~bsz0:16384 ~wnd0:10 () in
  let s = at_signals ~sdl:50 ~fill:0.1 ~tput:1_000. () in
  Autotune.tick t s;
  Alcotest.(check bool) "bsz shrank" true (Autotune.bsz t < 16384);
  for _ = 1 to 30 do Autotune.tick t s done;
  Alcotest.(check bool) "never below bsz_min" true
    (Autotune.bsz t >= Autotune.default_params.Autotune.bsz_min)

let test_autotune_clamps_at_bounds () =
  let p = Autotune.{ default_params with bsz_max = 2000; wnd_max = 12 } in
  let t = Autotune.create ~params:p ~bsz0:1900 ~wnd0:11 () in
  let s = at_signals ~win:12 ~ssz:50 ~tput:10_000. () in
  for _ = 1 to 12 do Autotune.tick t s done;
  Alcotest.(check int) "bsz capped" 2000 (Autotune.bsz t);
  Alcotest.(check int) "wnd capped" 12 (Autotune.wnd t)

let test_autotune_of_config () =
  let cfg =
    { (Config.default ~n:3) with
      auto_tune = true; max_batch_bytes = 4096; window = 8;
      bsz_min = 512; bsz_max = 8192; wnd_min = 2; wnd_max = 16 }
  in
  let t = Autotune.of_config cfg in
  Alcotest.(check int) "seeded bsz" 4096 (Autotune.bsz t);
  Alcotest.(check int) "seeded wnd" 8 (Autotune.wnd t);
  Alcotest.(check int) "no ticks yet" 0 (Autotune.ticks t)

let test_config_autotune_validate () =
  let ok = { (Config.default ~n:3) with auto_tune = true } in
  Alcotest.(check bool) "auto defaults ok" true (Config.validate ok = Ok ());
  Alcotest.(check bool) "bsz above bsz_max" true
    (Config.validate { ok with max_batch_bytes = 100_000 } |> Result.is_error);
  Alcotest.(check bool) "window above wnd_max" true
    (Config.validate { ok with window = 100 } |> Result.is_error);
  Alcotest.(check bool) "bad tune epoch" true
    (Config.validate { ok with tune_epoch_s = 0. } |> Result.is_error);
  (* the bounds only bind when the controller is on *)
  Alcotest.(check bool) "unchecked when off" true
    (Config.validate { ok with auto_tune = false; max_batch_bytes = 100_000 }
     = Ok ())

(* ------------------------------------------------------------------ *)
(* Failure detector *)

let fd_cfg = Config.default ~n:3

let s_to_ns s = Int64.of_float (s *. 1e9)

let test_fd_leader_heartbeats () =
  let fd = Failure_detector.create fd_cfg ~me:0 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  (* Before the interval: nothing. *)
  Alcotest.(check bool) "quiet" true (Failure_detector.poll fd ~now_ns:1000L = []);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.2) with
   | [ Failure_detector.Heartbeat_to peers ] ->
     Alcotest.(check (list int)) "both peers" [ 1; 2 ] (List.sort compare peers)
   | _ -> Alcotest.fail "expected heartbeat verdict");
  (* Recent sends suppress the heartbeat. *)
  Failure_detector.note_send fd ~dest:1 ~now_ns:(s_to_ns 0.2);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.25) with
   | [ Failure_detector.Heartbeat_to peers ] ->
     Alcotest.(check (list int)) "only 2" [ 2 ] peers
   | _ -> Alcotest.fail "expected heartbeat to 2")

let test_fd_follower_suspects () =
  let fd = Failure_detector.create fd_cfg ~me:1 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  Alcotest.(check bool) "patient" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 0.3) = []);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.6) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ -> Alcotest.fail "expected suspicion of node 0");
  (* Re-armed: no immediate double suspicion. *)
  Alcotest.(check bool) "re-armed" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 0.7) = [])

let test_fd_recv_defers_suspicion () =
  let fd = Failure_detector.create fd_cfg ~me:1 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  Failure_detector.note_recv fd ~from:0 ~now_ns:(s_to_ns 0.4);
  Alcotest.(check bool) "leader alive" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 0.6) = []);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.95) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ -> Alcotest.fail "expected eventual suspicion")

let test_fd_view_change_grace () =
  let fd = Failure_detector.create fd_cfg ~me:2 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  (* Just before suspicion, the view changes to leader 1. *)
  Failure_detector.set_view fd ~view:1 ~now_ns:(s_to_ns 0.45);
  Alcotest.(check bool) "grace period" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 0.6) = []);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.96) with
   | [ Failure_detector.Suspect 1 ] -> ()
   | _ -> Alcotest.fail "expected suspicion of new leader")

let test_fd_next_wake () =
  let fd = Failure_detector.create fd_cfg ~me:1 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  let wake = Failure_detector.next_wake_ns fd ~now_ns:0L in
  Alcotest.(check int64) "timeout edge" (s_to_ns 0.5) wake

(* Regression suite for the poll re-arm path: a Suspect verdict arms a
   fresh timeout, and that re-armed state must behave exactly like the
   initial armed state — re-suspect after a full silent timeout, stand
   down on liveness proof, and never end up permanently disarmed. *)

let test_fd_rearm_resuspects_after_full_timeout () =
  let fd = Failure_detector.create fd_cfg ~me:1 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.6) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ -> Alcotest.fail "expected first suspicion");
  (* Re-armed, leader stays silent: quiet strictly inside the fresh
     timeout, then a second suspicion at its edge. *)
  Alcotest.(check bool) "quiet inside re-armed window" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 1.0) = []);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 1.2) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ -> Alcotest.fail "re-armed detector never re-suspected a dead leader")

let test_fd_suspected_then_recovered_leader_not_disarmed () =
  (* The scenario behind the re-arm path: the leader stalls long enough
     to be suspected, the view change loses the election (or the Prepare
     never wins quorum), and the old leader comes back — note_recv only,
     no set_view. If it then dies for real, the detector must suspect it
     again rather than stay disarmed forever. *)
  let fd = Failure_detector.create fd_cfg ~me:1 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.6) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ -> Alcotest.fail "expected initial suspicion");
  (* Leader recovers: fresh traffic, still leading view 0. *)
  Failure_detector.note_recv fd ~from:0 ~now_ns:(s_to_ns 0.8);
  Failure_detector.note_recv fd ~from:0 ~now_ns:(s_to_ns 1.0);
  Alcotest.(check bool) "recovered leader trusted again" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 1.2) = []);
  (* Second, real death: a full timeout of silence after the last proof
     must produce a fresh Suspect verdict. *)
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 1.6) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ ->
     Alcotest.fail
       "suspected-then-recovered leader left the detector disarmed");
  (* And the cycle keeps working: re-armed again, not dead after two
     rounds. *)
  Failure_detector.note_recv fd ~from:0 ~now_ns:(s_to_ns 1.7);
  Alcotest.(check bool) "third round: trusted" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 2.0) = []);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 2.3) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ -> Alcotest.fail "third suspicion cycle failed")

let test_fd_rearm_view_change_overrides () =
  (* After a Suspect verdict the re-armed timer must not fire against a
     NEW leader prematurely: set_view resets the grace period. *)
  let fd = Failure_detector.create fd_cfg ~me:2 ~now_ns:0L in
  Failure_detector.set_view fd ~view:0 ~now_ns:0L;
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 0.6) with
   | [ Failure_detector.Suspect 0 ] -> ()
   | _ -> Alcotest.fail "expected suspicion of node 0");
  (* The election succeeds: node 1 leads view 1 from t = 0.7. *)
  Failure_detector.set_view fd ~view:1 ~now_ns:(s_to_ns 0.7);
  Alcotest.(check bool) "new leader gets a full grace period" true
    (Failure_detector.poll fd ~now_ns:(s_to_ns 1.1) = []);
  (match Failure_detector.poll fd ~now_ns:(s_to_ns 1.3) with
   | [ Failure_detector.Suspect 1 ] -> ()
   | _ -> Alcotest.fail "expected suspicion of the new leader")

(* ------------------------------------------------------------------ *)
(* Message codec *)

let sample_entry i =
  { Msg.e_iid = i; e_view = i * 3; e_value = b0; e_decided = i mod 2 = 0 }

let sample_msgs =
  [
    Msg.Prepare { view = 3; from_iid = 17 };
    Msg.Prepare_ok
      { view = 3; first_undecided = 4; entries = [ sample_entry 4; sample_entry 5 ] };
    Msg.Accept { view = 2; iid = 9; value = b1 };
    Msg.Accept { view = 2; iid = 10; value = Value.Noop };
    Msg.Accepted { view = 2; iid = 9 };
    Msg.Decide { view = 2; iid = 9 };
    Msg.Catchup_query { from_iid = 0; to_iid = 100 };
    Msg.Catchup_reply { entries = [ sample_entry 1 ]; snapshot = None };
    Msg.Catchup_reply
      { entries = []; snapshot = Some (42, Bytes.of_string "state") };
    Msg.Heartbeat { view = 12; first_undecided = 99 };
  ]

let test_msg_roundtrip () =
  List.iter
    (fun m ->
       let m' = Msg.decode (Msg.encode m) in
       if not (Msg.equal m m') then
         Alcotest.failf "round-trip failed for %a" Msg.pp m)
    sample_msgs

let test_msg_wire_size () =
  List.iter
    (fun m ->
       Alcotest.(check int)
         (Format.asprintf "%a" Msg.pp m)
         (Bytes.length (Msg.encode m))
         (Msg.wire_size m))
    sample_msgs

let test_msg_bad_tag () =
  Alcotest.check_raises "tag 99" (Msmr_wire.Codec.Malformed "message tag 99")
    (fun () -> ignore (Msg.decode (Bytes.of_string "\x63")))

(* ------------------------------------------------------------------ *)
(* Cluster harness: drives pure engines through an explicit network. *)

module Cluster = struct
  type packet = {
    src : int;
    dst : int;
    msg : Msg.t;
  }

  type t = {
    cfg : Config.t;
    engines : Paxos.t array;
    mutable inflight : packet array;   (* vector with swap-remove *)
    mutable inflight_len : int;
    rtx : (Paxos.rtx_key, int list * Msg.t) Hashtbl.t array;
    executed : (Types.iid * Value.t) list ref array;  (* newest first *)
    snapshots : (Types.iid * bytes) option array;
    mutable next_batch : int;
  }

  let push_packet t p =
    if t.inflight_len >= Array.length t.inflight then begin
      let bigger =
        Array.make (max 64 (2 * Array.length t.inflight)) p
      in
      Array.blit t.inflight 0 bigger 0 t.inflight_len;
      t.inflight <- bigger
    end;
    t.inflight.(t.inflight_len) <- p;
    t.inflight_len <- t.inflight_len + 1

  let take_packet t idx =
    let p = t.inflight.(idx) in
    t.inflight_len <- t.inflight_len - 1;
    t.inflight.(idx) <- t.inflight.(t.inflight_len);
    p

  let rec apply t node actions =
    List.iter
      (fun action ->
         match action with
         | Paxos.Send { dest; msg } ->
           List.iter (fun dst -> push_packet t { src = node; dst; msg }) dest
         | Paxos.Execute { iid; value } ->
           t.executed.(node) := (iid, value) :: !(t.executed.(node))
         | Paxos.Schedule_rtx { key; dest; msg } ->
           Hashtbl.replace t.rtx.(node) key (dest, msg)
         | Paxos.Cancel_rtx key -> Hashtbl.remove t.rtx.(node) key
         | Paxos.View_changed _ -> ()
         | Paxos.Install_snapshot { next_iid; state } ->
           t.snapshots.(node) <- Some (next_iid, state)
         | Paxos.Membership_changed _ -> ())
      actions

  and deliver t idx =
    let p = take_packet t idx in
    apply t p.dst (Paxos.receive t.engines.(p.dst) ~from:p.src p.msg)

  let create cfg =
    let n = cfg.Config.n in
    let t =
      {
        cfg;
        engines = Array.init n (fun me -> Paxos.create cfg ~me);
        inflight =
          Array.make 64
            { src = 0; dst = 0;
              msg = Msg.Heartbeat { view = 0; first_undecided = 0 } };
        inflight_len = 0;
        rtx = Array.init n (fun _ -> Hashtbl.create 32);
        executed = Array.init n (fun _ -> ref []);
        snapshots = Array.make n None;
        next_batch = 0;
      }
    in
    Array.iteri (fun i e -> apply t i (Paxos.bootstrap e)) t.engines;
    t

  let propose_at t node =
    let num = t.next_batch in
    t.next_batch <- num + 1;
    let batch =
      mk_batch node num [ mk_req 100 num (Printf.sprintf "payload-%d" num) ]
    in
    apply t node (Paxos.propose t.engines.(node) batch)

  let deliver_all t =
    (* FIFO-ish drain; order within the vector is arbitrary but fixed. *)
    let guard = ref 0 in
    while t.inflight_len > 0 && !guard < 1_000_000 do
      incr guard;
      deliver t 0
    done;
    if t.inflight_len > 0 then failwith "deliver_all: message storm"

  let replay_rtx t =
    Array.iteri
      (fun node tbl ->
         Hashtbl.iter
           (fun _key (dest, msg) ->
              List.iter (fun dst -> push_packet t { src = node; dst; msg }) dest)
           tbl)
      t.rtx

  let tick_catchup_all t =
    Array.iteri
      (fun node e ->
         (* Exhaust the outstanding-query backoff deterministically. *)
         for _ = 1 to 4 do
           apply t node (Paxos.tick_catchup e)
         done)
      t.engines

  let executed_seq t node = List.rev !(t.executed.(node))

  let max_executed t =
    Array.fold_left
      (fun acc l -> max acc (List.length !l))
      0 t.executed

  (* Deliver everything, replaying retransmissions and catch-up until the
     cluster stops making progress. *)
  let converge ?(rounds = 60) t =
    let progress_mark t =
      ( Array.map (fun l -> List.length !l) t.executed,
        Array.map Paxos.view t.engines )
    in
    let rec go r last =
      deliver_all t;
      let mark = progress_mark t in
      if mark <> last && r > 0 then begin
        replay_rtx t;
        tick_catchup_all t;
        go (r - 1) mark
      end
      else if r > 0 then begin
        (* Quiescent: make sure some leader is active, then one more push. *)
        let any_leader =
          Array.exists (fun e -> Paxos.is_leader e) t.engines
        in
        if not any_leader then begin
          let best = ref 0 in
          Array.iteri
            (fun i e -> if Paxos.view e > Paxos.view t.engines.(!best) then best := i)
            t.engines;
          apply t !best (Paxos.suspect_leader t.engines.(!best));
          replay_rtx t;
          tick_catchup_all t;
          go (r - 1) (progress_mark t)
        end
        else begin
          replay_rtx t;
          tick_catchup_all t;
          deliver_all t;
          if progress_mark t <> mark && r > 1 then go (r - 2) (progress_mark t)
        end
      end
    in
    go rounds ([||], [||])

  (* Safety: any two replicas that decided an instance agree on the value;
     snapshots are consistent with positions. *)
  let check_agreement t =
    let n = Array.length t.engines in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        let la = executed_seq t a and lb = executed_seq t b in
        let rec zip xs ys =
          match (xs, ys) with
          | (ia, va) :: xs', (ib, vb) :: ys' ->
            if ia <> ib then
              Alcotest.failf "replicas %d/%d execute different instances %d/%d"
                a b ia ib;
            if not (Value.equal va vb) then
              Alcotest.failf "replicas %d/%d disagree on instance %d" a b ia;
            zip xs' ys'
          | _, [] | [], _ -> ()
        in
        (* Align on common instance ids: executions may start after a
           snapshot fast-forward. *)
        let start xs ys =
          match (xs, ys) with
          | (ia, _) :: _, (ib, _) :: _ when ia < ib ->
            (List.filter (fun (i, _) -> i >= ib) xs, ys)
          | (ia, _) :: _, (ib, _) :: _ when ib < ia ->
            (xs, List.filter (fun (i, _) -> i >= ia) ys)
          | _ -> (xs, ys)
        in
        let xs, ys = start la lb in
        zip xs ys
      done
    done

  let check_all_converged t =
    let target = max_executed t in
    Array.iteri
      (fun i l ->
         let got =
           List.length !l
           + (match t.snapshots.(i) with Some (next, _) -> next | None -> 0)
         in
         if got < target then
           Alcotest.failf "replica %d executed %d < %d" i got target)
      t.executed
end

let test_cluster_normal_case () =
  let cfg = Config.default ~n:3 in
  let t = Cluster.create cfg in
  for _ = 1 to 20 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  Cluster.check_agreement t;
  Cluster.check_all_converged t;
  Alcotest.(check int) "all 20 executed" 20
    (List.length (Cluster.executed_seq t 0));
  (* No view change was needed. *)
  Array.iter
    (fun e -> Alcotest.(check int) "view stayed 0" 0 (Paxos.view e))
    t.Cluster.engines

let test_cluster_n5 () =
  let cfg = Config.default ~n:5 in
  let t = Cluster.create cfg in
  for _ = 1 to 30 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  Cluster.check_agreement t;
  Cluster.check_all_converged t;
  Alcotest.(check int) "30 executed" 30 (List.length (Cluster.executed_seq t 2))

let test_cluster_single_replica () =
  let cfg = Config.default ~n:1 in
  let t = Cluster.create cfg in
  for _ = 1 to 5 do
    Cluster.propose_at t 0
  done;
  Alcotest.(check int) "decides alone" 5
    (List.length (Cluster.executed_seq t 0))

let test_cluster_window_respected () =
  let cfg = { (Config.default ~n:3) with window = 3 } in
  let t = Cluster.create cfg in
  (* Propose 10 without delivering anything: only 3 may be in flight. *)
  for _ = 1 to 10 do
    Cluster.propose_at t 0
  done;
  Alcotest.(check int) "window in use" 3
    (Paxos.window_in_use t.Cluster.engines.(0));
  Cluster.converge t;
  Cluster.check_agreement t;
  Alcotest.(check int) "all eventually decided" 10
    (List.length (Cluster.executed_seq t 0))

let test_cluster_leader_failover () =
  let cfg = Config.default ~n:3 in
  let t = Cluster.create cfg in
  for _ = 1 to 5 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  (* Node 0 "crashes": drop all its traffic from now on by removing its
     packets; node 1 suspects and takes over. *)
  let e1 = t.Cluster.engines.(1) in
  Cluster.apply t 1 (Paxos.suspect_leader e1);
  (* Deliver only packets not involving node 0. *)
  let deliver_excluding_0 () =
    let guard = ref 0 in
    let continue = ref true in
    while !continue && !guard < 100_000 do
      incr guard;
      let idx = ref (-1) in
      for i = 0 to t.Cluster.inflight_len - 1 do
        let p = t.Cluster.inflight.(i) in
        if !idx < 0 && p.Cluster.src <> 0 && p.Cluster.dst <> 0 then idx := i
      done;
      if !idx < 0 then continue := false
      else Cluster.deliver t !idx
    done
  in
  deliver_excluding_0 ();
  Alcotest.(check bool) "node 1 leads" true (Paxos.is_leader e1);
  Alcotest.(check int) "view 1" 1 (Paxos.view e1);
  for _ = 1 to 5 do
    Cluster.propose_at t 1
  done;
  deliver_excluding_0 ();
  Cluster.check_agreement t;
  Alcotest.(check int) "node 1 executed all 10" 10
    (List.length (Cluster.executed_seq t 1));
  Alcotest.(check int) "node 2 executed all 10" 10
    (List.length (Cluster.executed_seq t 2))

let test_cluster_failover_preserves_inflight_value () =
  (* The old leader proposes to one follower only; the new leader must
     re-propose that value, not replace it. *)
  let cfg = Config.default ~n:3 in
  let t = Cluster.create cfg in
  Cluster.propose_at t 0;
  (* Deliver the Accept only to node 1 (drop traffic to node 2). *)
  let rec deliver_to_1 () =
    let idx = ref (-1) in
    for i = 0 to t.Cluster.inflight_len - 1 do
      let p = t.Cluster.inflight.(i) in
      if !idx < 0 && p.Cluster.dst = 1 && p.Cluster.src = 0 then idx := i
    done;
    if !idx >= 0 then begin
      Cluster.deliver t !idx;
      deliver_to_1 ()
    end
  in
  deliver_to_1 ();
  (* Clear the rest of the network: old leader is now silent. *)
  t.Cluster.inflight_len <- 0;
  Hashtbl.reset t.Cluster.rtx.(0);
  (* Node 1 takes over; it saw the Accept for instance 0. *)
  Cluster.apply t 1 (Paxos.suspect_leader t.Cluster.engines.(1));
  let deliver_excluding_0 () =
    let continue = ref true in
    while !continue do
      let idx = ref (-1) in
      for i = 0 to t.Cluster.inflight_len - 1 do
        let p = t.Cluster.inflight.(i) in
        if !idx < 0 && p.Cluster.src <> 0 && p.Cluster.dst <> 0 then idx := i
      done;
      if !idx < 0 then continue := false else Cluster.deliver t !idx
    done
  in
  deliver_excluding_0 ();
  (match Cluster.executed_seq t 1 with
   | (0, Value.Batch b) :: _ ->
     Alcotest.(check int) "original batch preserved" 0 b.Batch.bid.num;
     Alcotest.(check int) "batch src is old leader" 0 b.Batch.bid.src
   | (0, Value.Noop) :: _ ->
     Alcotest.fail "in-flight value was replaced by a noop"
   | _ -> Alcotest.fail "instance 0 not executed at new leader");
  Cluster.check_agreement t

let test_cluster_noop_fills_gap () =
  (* The old leader opens instances 0 and 1 but only instance 1's Accept
     reaches node 1. After failover the new leader fills instance 0 with
     a noop and preserves instance 1. *)
  let cfg = Config.default ~n:3 in
  let t = Cluster.create cfg in
  Cluster.propose_at t 0;
  Cluster.propose_at t 0;
  (* Deliver to node 1 only the Accept for instance 1. *)
  let idx = ref (-1) in
  for i = 0 to t.Cluster.inflight_len - 1 do
    let p = t.Cluster.inflight.(i) in
    match p.Cluster.msg with
    | Msg.Accept { iid = 1; _ } when p.Cluster.dst = 1 && !idx < 0 -> idx := i
    | _ -> ()
  done;
  Alcotest.(check bool) "found accept for 1" true (!idx >= 0);
  Cluster.deliver t !idx;
  t.Cluster.inflight_len <- 0;
  Hashtbl.reset t.Cluster.rtx.(0);
  Cluster.apply t 1 (Paxos.suspect_leader t.Cluster.engines.(1));
  let continue = ref true in
  while !continue do
    let idx = ref (-1) in
    for i = 0 to t.Cluster.inflight_len - 1 do
      let p = t.Cluster.inflight.(i) in
      if !idx < 0 && p.Cluster.src <> 0 && p.Cluster.dst <> 0 then idx := i
    done;
    if !idx < 0 then continue := false else Cluster.deliver t !idx
  done;
  (match Cluster.executed_seq t 1 with
   | (0, Value.Noop) :: (1, Value.Batch b) :: _ ->
     Alcotest.(check int) "instance 1 batch" 1 b.Batch.bid.num
   | _ -> Alcotest.fail "expected noop at 0 and batch at 1");
  Cluster.check_agreement t

let test_cluster_lagging_replica_catches_up () =
  let cfg = Config.default ~n:3 in
  let t = Cluster.create cfg in
  for _ = 1 to 10 do
    Cluster.propose_at t 0
  done;
  (* Partition node 2: drop everything addressed to it. *)
  let deliver_not_to_2 () =
    let continue = ref true in
    while !continue do
      let idx = ref (-1) in
      for i = 0 to t.Cluster.inflight_len - 1 do
        if !idx < 0 && t.Cluster.inflight.(i).Cluster.dst <> 2 then idx := i
      done;
      if !idx < 0 then continue := false else Cluster.deliver t !idx
    done;
    (* Discard packets to node 2. *)
    let keep = ref [] in
    for i = 0 to t.Cluster.inflight_len - 1 do
      if t.Cluster.inflight.(i).Cluster.dst <> 2 then
        keep := t.Cluster.inflight.(i) :: !keep
    done;
    t.Cluster.inflight_len <- 0;
    List.iter (Cluster.push_packet t) !keep
  in
  deliver_not_to_2 ();
  Alcotest.(check int) "majority decided without 2" 10
    (List.length (Cluster.executed_seq t 0));
  Alcotest.(check int) "node 2 blind" 0 (List.length (Cluster.executed_seq t 2));
  (* Heal: replay retransmissions (the leader keeps none for decided
     instances), so node 2 recovers through catch-up. *)
  Cluster.apply t 2
    (Paxos.receive t.Cluster.engines.(2) ~from:0 (Msg.Decide { view = 0; iid = 9 }));
  Cluster.converge t;
  Cluster.check_agreement t;
  Alcotest.(check int) "node 2 caught up" 10
    (List.length (Cluster.executed_seq t 2))

let test_cluster_snapshot_catchup () =
  let cfg =
    { (Config.default ~n:3) with snapshot_every = 0; log_retain = 2 }
  in
  let t = Cluster.create cfg in
  for _ = 1 to 30 do
    Cluster.propose_at t 0
  done;
  (* Partition node 2 as above. *)
  let deliver_not_to_2 () =
    let continue = ref true in
    while !continue do
      let idx = ref (-1) in
      for i = 0 to t.Cluster.inflight_len - 1 do
        if !idx < 0 && t.Cluster.inflight.(i).Cluster.dst <> 2 then idx := i
      done;
      if !idx < 0 then continue := false else Cluster.deliver t !idx
    done;
    let keep = ref [] in
    for i = 0 to t.Cluster.inflight_len - 1 do
      if t.Cluster.inflight.(i).Cluster.dst <> 2 then
        keep := t.Cluster.inflight.(i) :: !keep
    done;
    t.Cluster.inflight_len <- 0;
    List.iter (Cluster.push_packet t) !keep
  in
  deliver_not_to_2 ();
  (* The leader snapshots at instance 25 and truncates its log. *)
  Cluster.apply t 0
    (Paxos.note_snapshot t.Cluster.engines.(0) ~next_iid:25
       ~state:(Bytes.of_string "snap@25"));
  Alcotest.(check int) "log truncated" 23
    (Log.low_mark (Paxos.log t.Cluster.engines.(0)));
  (* Heal node 2; it must receive the snapshot plus the tail. *)
  Cluster.apply t 2
    (Paxos.receive t.Cluster.engines.(2) ~from:0 (Msg.Decide { view = 0; iid = 29 }));
  Cluster.converge t;
  (match t.Cluster.snapshots.(2) with
   | Some (25, state) ->
     Alcotest.(check string) "snapshot content" "snap@25" (Bytes.to_string state)
   | Some (n, _) -> Alcotest.failf "snapshot at %d, expected 25" n
   | None -> Alcotest.fail "node 2 never installed a snapshot");
  let tail = Cluster.executed_seq t 2 in
  Alcotest.(check int) "tail executed" 5 (List.length tail);
  Alcotest.(check int) "tail starts at 25" 25 (fst (List.hd tail));
  Cluster.check_agreement t

(* Random-schedule agreement property. *)
let run_random_schedule ~n ~seed ~steps =
  let rng = Random.State.make [| seed |] in
  let cfg = { (Config.default ~n) with window = 4 } in
  let t = Cluster.create cfg in
  for _ = 1 to steps do
    match Random.State.int rng 100 with
    | x when x < 45 ->
      (* Deliver a random in-flight packet. *)
      if t.Cluster.inflight_len > 0 then
        Cluster.deliver t (Random.State.int rng t.Cluster.inflight_len)
    | x when x < 55 ->
      (* Drop a random packet. *)
      if t.Cluster.inflight_len > 0 then
        ignore (Cluster.take_packet t (Random.State.int rng t.Cluster.inflight_len))
    | x when x < 62 ->
      (* Duplicate a random packet. *)
      if t.Cluster.inflight_len > 0 then begin
        let p = t.Cluster.inflight.(Random.State.int rng t.Cluster.inflight_len) in
        Cluster.push_packet t p
      end
    | x when x < 80 ->
      (* Propose at a random node (queued internally if not leader). *)
      Cluster.propose_at t (Random.State.int rng n)
    | x when x < 88 ->
      (* Replay a random node's retransmissions. *)
      let node = Random.State.int rng n in
      Hashtbl.iter
        (fun _ (dest, msg) ->
           List.iter
             (fun dst -> Cluster.push_packet t { Cluster.src = node; dst; msg })
             dest)
        t.Cluster.rtx.(node)
    | _ ->
      (* Random suspicion: triggers competing leader elections. *)
      let node = Random.State.int rng n in
      Cluster.apply t node (Paxos.suspect_leader t.Cluster.engines.(node))
  done;
  Cluster.converge ~rounds:120 t;
  Cluster.check_agreement t;
  t

let prop_random_schedule_agreement_n3 =
  QCheck.Test.make ~name:"paxos agreement under random schedules (n=3)"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       ignore (run_random_schedule ~n:3 ~seed ~steps:250);
       true)

let prop_random_schedule_agreement_n5 =
  QCheck.Test.make ~name:"paxos agreement under random schedules (n=5)"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       ignore (run_random_schedule ~n:5 ~seed ~steps:250);
       true)

let test_random_schedule_convergence () =
  (* With a fixed seed, also require liveness: everyone converges to the
     same execution length. *)
  let t = run_random_schedule ~n:3 ~seed:42 ~steps:300 in
  Cluster.check_all_converged t

(* ------------------------------------------------------------------ *)
(* Online membership change (DESIGN.md section 17) *)

let test_membership_transitions () =
  let cfg = { (Config.default ~n:5) with members0 = [ 0; 1; 2 ] } in
  let m0 = Membership.initial cfg in
  Alcotest.(check int) "boot epoch" 0 m0.Membership.epoch;
  Alcotest.(check int) "boot quorum" 2 (Membership.quorum m0);
  Alcotest.(check int) "boot voter mask" 0b111 (Membership.voter_mask m0);
  (* add_learner: epoch bump, no vote. *)
  let m1 = Option.get (Membership.add_learner m0 3) in
  Alcotest.(check int) "epoch 1" 1 m1.Membership.epoch;
  Alcotest.(check bool) "3 is learner" true (Membership.is_learner m1 3);
  Alcotest.(check bool) "3 not voter" false (Membership.is_voter m1 3);
  Alcotest.(check int) "learner outside mask" 0b111 (Membership.voter_mask m1);
  Alcotest.(check int) "quorum unchanged" 2 (Membership.quorum m1);
  (* promote: now a voter, quorum grows to 3-of-4. *)
  let m2 = Option.get (Membership.promote m1 3) in
  Alcotest.(check bool) "3 is voter" true (Membership.is_voter m2 3);
  Alcotest.(check int) "4-voter quorum" 3 (Membership.quorum m2);
  Alcotest.(check int) "voter mask grows" 0b1111 (Membership.voter_mask m2);
  (* remove: fenced out entirely. *)
  let m3 = Option.get (Membership.remove m2 0) in
  Alcotest.(check bool) "0 not member" false (Membership.is_member m3 0);
  Alcotest.(check int) "back to 3 voters" 2 (Membership.quorum m3);
  (* Guards: transitions that do not apply return None. *)
  Alcotest.(check bool) "re-add member" true (Membership.add_learner m2 3 = None);
  Alcotest.(check bool) "promote non-learner" true (Membership.promote m0 4 = None);
  Alcotest.(check bool) "remove non-member" true (Membership.remove m0 4 = None);
  let solo = Membership.make ~epoch:9 ~voters:[ 1 ] ~learners:[] in
  Alcotest.(check bool) "cannot empty voters" true (Membership.remove solo 1 = None)

let test_membership_codec_roundtrip () =
  let ms =
    [
      Membership.make ~epoch:0 ~voters:[ 0; 1; 2 ] ~learners:[];
      Membership.make ~epoch:3 ~voters:[ 0; 2; 4 ] ~learners:[ 1; 3 ];
      Membership.make ~epoch:61 ~voters:[ 7 ] ~learners:[ 0 ];
    ]
  in
  List.iter
    (fun m ->
       let w = Msmr_wire.Codec.W.create () in
       Membership.encode w m;
       let raw = Msmr_wire.Codec.W.contents w in
       Alcotest.(check int) "size_bytes" (Bytes.length raw)
         (Membership.size_bytes m);
       let m' = Membership.decode (Msmr_wire.Codec.R.of_bytes raw) in
       Alcotest.(check bool) "roundtrip" true (Membership.equal m m'))
    ms;
  (* History list, newest first, as persisted in checkpoints. *)
  let configs = [ (42, List.nth ms 1); (0, List.nth ms 0) ] in
  let w = Msmr_wire.Codec.W.create () in
  Membership.encode_configs w configs;
  let configs' =
    Membership.decode_configs
      (Msmr_wire.Codec.R.of_bytes (Msmr_wire.Codec.W.contents w))
  in
  Alcotest.(check int) "history length" 2 (List.length configs');
  List.iter2
    (fun (i, m) (i', m') ->
       Alcotest.(check int) "iid" i i';
       Alcotest.(check bool) "membership" true (Membership.equal m m'))
    configs configs';
  (* A Reconfig value survives the Msg codec like any other value. *)
  let msg = Msg.Accept { view = 1; iid = 7; value = Value.Reconfig (List.nth ms 1) } in
  Alcotest.(check bool) "msg roundtrip" true
    (Msg.equal msg (Msg.decode (Msg.encode msg)))

(* Drive a full grow (learner then voter) through the consensus engines:
   node 3 starts cold, catches up via snapshot-free catch-up, and every
   member adopts the same epochs. *)
let test_reconfig_grow_epochs_agree () =
  let cfg = { (Config.default ~n:5) with members0 = [ 0; 1; 2 ] } in
  let t = Cluster.create cfg in
  for _ = 1 to 5 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  let e0 = t.Cluster.engines.(0) in
  let alpha = Paxos.reconfig_alpha e0 in
  let m1 = Option.get (Membership.add_learner (Paxos.membership e0) 3) in
  Cluster.apply t 0 (Paxos.propose_reconfig e0 m1);
  (* Push traffic past the effective point so the learner is messaged. *)
  for _ = 1 to (2 * alpha) + 4 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  List.iter
    (fun i ->
       let m = Paxos.membership t.Cluster.engines.(i) in
       Alcotest.(check int) (Printf.sprintf "node %d epoch" i) 1
         m.Membership.epoch;
       Alcotest.(check bool) "3 tracked as learner" true
         (Membership.is_learner m 3))
    [ 0; 1; 2; 3 ];
  (* The decide-to-effect lag: the epoch flips exactly alpha instances
     after the Reconfig's decide point. *)
  let d =
    match
      List.find_opt
        (fun (_, v) -> match v with Value.Reconfig _ -> true | _ -> false)
        (Cluster.executed_seq t 0)
    with
    | Some (d, _) -> d
    | None -> Alcotest.fail "reconfig never executed"
  in
  (* Old configs are pruned once nothing undecided is governed by them,
     so assert the boundary via the retained config's start instance. *)
  let eff, m_adopted = List.hd (Paxos.configs e0) in
  Alcotest.(check int) "epoch 1 effective at d+alpha" (d + alpha) eff;
  Alcotest.(check int) "retained config is epoch 1" 1
    m_adopted.Membership.epoch;
  Alcotest.(check int) "new epoch governs from d+alpha" 1
    (Paxos.membership_at e0 (d + alpha)).Membership.epoch;
  (* Promote the caught-up learner to voter. *)
  let m2 = Option.get (Membership.promote (Paxos.membership e0) 3) in
  Cluster.apply t 0 (Paxos.propose_reconfig e0 m2);
  for _ = 1 to (2 * alpha) + 4 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  List.iter
    (fun i ->
       let m = Paxos.membership t.Cluster.engines.(i) in
       Alcotest.(check int) (Printf.sprintf "node %d epoch 2" i) 2
         m.Membership.epoch;
       Alcotest.(check bool) "3 votes" true (Membership.is_voter m 3);
       Alcotest.(check int) "4-voter quorum" 3 (Membership.quorum m))
    [ 0; 1; 2; 3 ];
  Cluster.check_agreement t

(* A learner's Accepted must not count toward the decide quorum. *)
let test_reconfig_learner_does_not_vote () =
  let cfg = { (Config.default ~n:3) with members0 = [ 0; 1 ] } in
  let t = Cluster.create cfg in
  let e0 = t.Cluster.engines.(0) in
  let alpha = Paxos.reconfig_alpha e0 in
  let m1 = Option.get (Membership.add_learner (Paxos.membership e0) 2) in
  Cluster.apply t 0 (Paxos.propose_reconfig e0 m1);
  for _ = 1 to (2 * alpha) + 4 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  Alcotest.(check int) "learner joined" 1
    (Paxos.membership e0).Membership.epoch;
  let executed_before = List.length (Cluster.executed_seq t 0) in
  (* Partition voter 1 away: only leader 0 and learner 2 talk. The
     learner answers Accepted, but a 2-voter membership still needs
     voter 1 — nothing new may decide. *)
  Cluster.propose_at t 0;
  let deliver_excluding_1 () =
    let continue = ref true in
    while !continue do
      let idx = ref (-1) in
      for i = 0 to t.Cluster.inflight_len - 1 do
        let p = t.Cluster.inflight.(i) in
        if !idx < 0 && p.Cluster.src <> 1 && p.Cluster.dst <> 1 then idx := i
      done;
      if !idx < 0 then continue := false else Cluster.deliver t !idx
    done
  in
  deliver_excluding_1 ();
  Alcotest.(check int) "nothing decided on learner acks alone"
    executed_before
    (List.length (Cluster.executed_seq t 0));
  (* Heal: the voter's ack completes the quorum. *)
  Cluster.converge t;
  Alcotest.(check int) "decides once the voter answers"
    (executed_before + 1)
    (List.length (Cluster.executed_seq t 0));
  Cluster.check_agreement t

(* Shrink: the removed node is epoch-fenced — it adopts the epoch that
   excludes it and knows it is no longer a member. *)
let test_reconfig_remove_fences_node () =
  let cfg = Config.default ~n:3 in
  let t = Cluster.create cfg in
  for _ = 1 to 3 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  let e0 = t.Cluster.engines.(0) in
  let alpha = Paxos.reconfig_alpha e0 in
  let m1 = Option.get (Membership.remove (Paxos.membership e0) 2) in
  Cluster.apply t 0 (Paxos.propose_reconfig e0 m1);
  for _ = 1 to (2 * alpha) + 4 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  List.iter
    (fun i ->
       Alcotest.(check int) (Printf.sprintf "node %d epoch" i) 1
         (Paxos.membership t.Cluster.engines.(i)).Membership.epoch)
    [ 0; 1 ];
  let m2 = Paxos.membership t.Cluster.engines.(2) in
  (* Node 2 executed its own removal before the traffic stopped: it is
     fenced by its own adopted epoch, not by silence. *)
  Alcotest.(check int) "removed node adopted the epoch" 1
    m2.Membership.epoch;
  Alcotest.(check bool) "removed node knows it is out" false
    (Membership.is_member m2 2);
  Alcotest.(check int) "two-voter quorum" 2
    (Membership.quorum (Paxos.membership e0));
  Cluster.check_agreement t

let test_reconfig_proposal_guards () =
  let cfg = { (Config.default ~n:5) with members0 = [ 0; 1; 2 ] } in
  let t = Cluster.create cfg in
  Cluster.converge t;
  let e0 = t.Cluster.engines.(0) in
  let m = Paxos.membership e0 in
  (* Followers may not open a reconfig. *)
  let m1 = Option.get (Membership.add_learner m 3) in
  Alcotest.(check bool) "follower refuses" true
    (Paxos.propose_reconfig t.Cluster.engines.(1) m1 = []);
  (* Stale or skipped epochs are refused. *)
  Alcotest.(check bool) "same epoch refused" true
    (Paxos.propose_reconfig e0 m = []);
  let skipped = Membership.make ~epoch:7 ~voters:[ 0; 1; 2; 3 ] ~learners:[] in
  Alcotest.(check bool) "skipped epoch refused" true
    (Paxos.propose_reconfig e0 skipped = []);
  (* Only one reconfig in flight at a time. *)
  let opened = Paxos.propose_reconfig e0 m1 in
  Alcotest.(check bool) "first opens" true (opened <> []);
  Cluster.apply t 0 opened;
  Alcotest.(check bool) "in flight" true (Paxos.reconfig_in_flight e0);
  let m1' = Option.get (Membership.add_learner m 4) in
  Alcotest.(check bool) "second refused while pending" true
    (Paxos.propose_reconfig e0 m1' = []);
  (* The barrier clears once the reconfig executes. *)
  let alpha = Paxos.reconfig_alpha e0 in
  for _ = 1 to (2 * alpha) + 4 do
    Cluster.propose_at t 0
  done;
  Cluster.converge t;
  Alcotest.(check bool) "barrier cleared" false (Paxos.reconfig_in_flight e0);
  Alcotest.(check int) "epoch adopted" 1
    (Paxos.membership e0).Membership.epoch

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_next_view_led_by;
      prop_batcher_no_request_lost;
      prop_batcher_pending_count_exact;
      prop_batcher_deadline_flush_agree;
      prop_random_schedule_agreement_n3;
      prop_random_schedule_agreement_n5;
    ]

let suite =
  [
    Alcotest.test_case "types: leader_of_view" `Quick test_leader_of_view;
    Alcotest.test_case "types: next_view_led_by" `Quick test_next_view_led_by;
    Alcotest.test_case "types: majority" `Quick test_majority;
    Alcotest.test_case "config: validate" `Quick test_config_validate;
    Alcotest.test_case "log: accept/decide" `Quick test_log_accept_decide;
    Alcotest.test_case "log: execution order" `Quick test_log_execution_order;
    Alcotest.test_case "log: mark_executed guard" `Quick test_log_mark_executed_guard;
    Alcotest.test_case "log: higher view wins" `Quick test_log_higher_view_wins;
    Alcotest.test_case "log: acks reset on new view" `Quick test_log_acks_reset_on_new_view;
    Alcotest.test_case "log: truncate/fast-forward" `Quick test_log_truncate_and_fast_forward;
    Alcotest.test_case "log: undecided_below" `Quick test_log_undecided_below;
    Alcotest.test_case "log: decided_range" `Quick test_log_decided_range;
    Alcotest.test_case "batcher: fills by size" `Quick test_batcher_fills_by_size;
    Alcotest.test_case "batcher: exact fill" `Quick test_batcher_exact_fill_seals;
    Alcotest.test_case "batcher: oversized request" `Quick test_batcher_oversized_request;
    Alcotest.test_case "batcher: timeout flush" `Quick test_batcher_timeout_flush;
    Alcotest.test_case "batcher: force flush/numbering" `Quick test_batcher_force_flush_and_numbering;
    Alcotest.test_case "batcher: tuned BSZ atomic" `Quick test_batcher_tuned_bsz;
    Alcotest.test_case "batcher: seal stats" `Quick test_batcher_seal_stats;
    Alcotest.test_case "autotune: grows bsz on size seals" `Quick
      test_autotune_grows_bsz_on_size_seals;
    Alcotest.test_case "autotune: bsz converges to cap" `Quick
      test_autotune_bsz_converges_to_cap;
    Alcotest.test_case "autotune: backoff cooldown" `Quick
      test_autotune_backoff_cooldown;
    Alcotest.test_case "autotune: grows wnd when saturated" `Quick
      test_autotune_grows_wnd_when_saturated;
    Alcotest.test_case "autotune: wnd backoff triggers" `Quick
      test_autotune_wnd_backoff;
    Alcotest.test_case "autotune: demand shrink" `Quick test_autotune_demand_shrink;
    Alcotest.test_case "autotune: clamps at bounds" `Quick
      test_autotune_clamps_at_bounds;
    Alcotest.test_case "autotune: of_config" `Quick test_autotune_of_config;
    Alcotest.test_case "config: autotune validation" `Quick
      test_config_autotune_validate;
    Alcotest.test_case "fd: leader heartbeats" `Quick test_fd_leader_heartbeats;
    Alcotest.test_case "fd: follower suspects" `Quick test_fd_follower_suspects;
    Alcotest.test_case "fd: recv defers suspicion" `Quick test_fd_recv_defers_suspicion;
    Alcotest.test_case "fd: view change grace" `Quick test_fd_view_change_grace;
    Alcotest.test_case "fd: next wake" `Quick test_fd_next_wake;
    Alcotest.test_case "fd: re-arm re-suspects after full timeout" `Quick
      test_fd_rearm_resuspects_after_full_timeout;
    Alcotest.test_case "fd: suspected-then-recovered leader not disarmed"
      `Quick test_fd_suspected_then_recovered_leader_not_disarmed;
    Alcotest.test_case "fd: re-arm overridden by view change" `Quick
      test_fd_rearm_view_change_overrides;
    Alcotest.test_case "msg: round-trip" `Quick test_msg_roundtrip;
    Alcotest.test_case "msg: wire size" `Quick test_msg_wire_size;
    Alcotest.test_case "msg: bad tag" `Quick test_msg_bad_tag;
    Alcotest.test_case "cluster: normal case" `Quick test_cluster_normal_case;
    Alcotest.test_case "cluster: n=5" `Quick test_cluster_n5;
    Alcotest.test_case "cluster: single replica" `Quick test_cluster_single_replica;
    Alcotest.test_case "cluster: window respected" `Quick test_cluster_window_respected;
    Alcotest.test_case "cluster: leader failover" `Quick test_cluster_leader_failover;
    Alcotest.test_case "cluster: failover preserves in-flight value" `Quick
      test_cluster_failover_preserves_inflight_value;
    Alcotest.test_case "cluster: noop fills gap" `Quick test_cluster_noop_fills_gap;
    Alcotest.test_case "cluster: lagging replica catches up" `Quick
      test_cluster_lagging_replica_catches_up;
    Alcotest.test_case "cluster: snapshot catch-up" `Quick test_cluster_snapshot_catchup;
    Alcotest.test_case "cluster: random schedule convergence" `Quick
      test_random_schedule_convergence;
    Alcotest.test_case "membership: transitions" `Quick
      test_membership_transitions;
    Alcotest.test_case "membership: codec roundtrip" `Quick
      test_membership_codec_roundtrip;
    Alcotest.test_case "reconfig: grow, epochs agree" `Quick
      test_reconfig_grow_epochs_agree;
    Alcotest.test_case "reconfig: learner does not vote" `Quick
      test_reconfig_learner_does_not_vote;
    Alcotest.test_case "reconfig: remove fences node" `Quick
      test_reconfig_remove_fences_node;
    Alcotest.test_case "reconfig: proposal guards" `Quick
      test_reconfig_proposal_guards;
  ]
  @ qsuite

(* ------------------------------------------------------------------ *)
(* Decoder robustness: arbitrary bytes must either decode or raise the
   two documented exceptions — never crash or loop. *)

let prop_msg_decode_total =
  QCheck.Test.make ~name:"msg decoder is total on junk" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s ->
       match Msg.decode (Bytes.of_string s) with
       | _ -> true
       | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _) ->
         true)

let prop_msg_decode_truncations =
  (* Every truncation of a valid encoding is rejected cleanly. *)
  QCheck.Test.make ~name:"msg decoder rejects truncations" ~count:200
    QCheck.(int_bound 200)
    (fun cut ->
       let full =
         Msg.encode
           (Msg.Accept
              { view = 7; iid = 123;
                value = Value.Batch (mk_batch 1 5 [ mk_req 9 1 "payload" ]) })
       in
       QCheck.assume (cut < Bytes.length full);
       match Msg.decode (Bytes.sub full 0 cut) with
       | _ -> cut = Bytes.length full
       | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _) ->
         true)

(* Model-based log check: a random op sequence against a naive model. *)
let prop_log_matches_model =
  QCheck.Test.make ~name:"log matches reference model" ~count:300
    QCheck.(list (pair (int_bound 15) (pair (int_bound 3) bool)))
    (fun ops ->
       let log = Log.create () in
       let model : (int, bool) Hashtbl.t = Hashtbl.create 16 in
       (* model: iid -> decided? (accepted implied by presence) *)
       List.iter
         (fun (iid, (view, decide)) ->
            if decide then begin
              ignore (Log.decide log iid view b0);
              Hashtbl.replace model iid true
            end
            else begin
              Log.accept log iid view b0;
              if not (Hashtbl.mem model iid) then Hashtbl.replace model iid false
            end)
         ops;
       (* first_undecided = first index not decided in the model *)
       let rec first_undecided i =
         if Hashtbl.find_opt model i = Some true then first_undecided (i + 1)
         else i
       in
       let expect_fu = first_undecided 0 in
       let in_flight_model =
         Hashtbl.fold
           (fun iid decided acc ->
              if (not decided) && iid >= expect_fu then acc + 1 else acc)
           model 0
       in
       Log.first_undecided log = expect_fu && Log.in_flight log = in_flight_model)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_msg_decode_total; prop_msg_decode_truncations;
        prop_log_matches_model ]

(* Catch-up pagination: replies are capped at 200 entries, so a replica
   that is far behind needs several query rounds. *)
let test_cluster_deep_catchup_paginates () =
  let cfg = { (Config.default ~n:3) with window = 50 } in
  let t = Cluster.create cfg in
  let deliver_not_to_2 () =
    let continue = ref true in
    while !continue do
      let idx = ref (-1) in
      for i = 0 to t.Cluster.inflight_len - 1 do
        if !idx < 0 && t.Cluster.inflight.(i).Cluster.dst <> 2 then idx := i
      done;
      if !idx < 0 then continue := false else Cluster.deliver t !idx
    done;
    let keep = ref [] in
    for i = 0 to t.Cluster.inflight_len - 1 do
      if t.Cluster.inflight.(i).Cluster.dst <> 2 then
        keep := t.Cluster.inflight.(i) :: !keep
    done;
    t.Cluster.inflight_len <- 0;
    List.iter (Cluster.push_packet t) !keep
  in
  (* Decide 500 instances while node 2 is partitioned. *)
  for _ = 1 to 500 do
    Cluster.propose_at t 0;
    deliver_not_to_2 ()
  done;
  Alcotest.(check int) "majority at 500" 500
    (List.length (Cluster.executed_seq t 0));
  Alcotest.(check int) "node 2 blind" 0 (List.length (Cluster.executed_seq t 2));
  (* Heal: node 2 learns it is behind from one heartbeat. *)
  Cluster.apply t 2
    (Paxos.receive t.Cluster.engines.(2) ~from:0
       (Msg.Heartbeat { view = 0; first_undecided = 500 }));
  Cluster.converge ~rounds:200 t;
  Cluster.check_agreement t;
  Alcotest.(check int) "node 2 caught up through paginated replies" 500
    (List.length (Cluster.executed_seq t 2));
  Alcotest.(check bool) "took several catch-up queries" true
    ((Paxos.stats t.Cluster.engines.(2)).Paxos.catchup_queries_sent >= 3)

let suite =
  suite
  @ [ Alcotest.test_case "cluster: deep catch-up paginates" `Quick
        test_cluster_deep_catchup_paginates ]

(* Multi-group Paxos: a group bootstrapping at view0 = gid is led by
   node gid mod n from the first action, with no Phase 1. *)
let test_paxos_view0_bootstrap () =
  let cfg = Config.default ~n:3 in
  Alcotest.(check int) "group 0 led by node 0" 0
    (Config.initial_leader_of_group cfg ~gid:0);
  Alcotest.(check int) "group 4 wraps to node 1" 1
    (Config.initial_leader_of_group cfg ~gid:4);
  let engines = Array.init 3 (fun me -> Paxos.create ~view0:2 cfg ~me) in
  Array.iteri
    (fun me e ->
       let actions = Paxos.bootstrap e in
       let view_changes =
         List.filter_map
           (function
             | Paxos.View_changed { view; leader; i_am_leader } ->
               Some (view, leader, i_am_leader)
             | _ -> None)
           actions
       in
       Alcotest.(check (list (triple int int bool)))
         (Printf.sprintf "node %d reports view 2, leader 2" me)
         [ (2, 2, me = 2) ]
         view_changes;
       Alcotest.(check int) "engine view" 2 (Paxos.view e);
       Alcotest.(check int) "engine leader" 2 (Paxos.leader e);
       Alcotest.(check bool) "leadership matches" (me = 2) (Paxos.is_leader e);
       (* Fresh group: the leader must not run Phase 1 (no Prepare). *)
       Alcotest.(check bool) "no Prepare on bootstrap" true
         (List.for_all
            (function
              | Paxos.Send { msg = Msg.Prepare _; _ }
              | Paxos.Schedule_rtx { msg = Msg.Prepare _; _ } -> false
              | _ -> true)
            actions))
    engines;
  (* Default view0 = 0 stays the classic node-0-led layout. *)
  let e0 = Paxos.create cfg ~me:0 in
  ignore (Paxos.bootstrap e0);
  Alcotest.(check int) "default view 0" 0 (Paxos.view e0);
  Alcotest.(check bool) "node 0 leads by default" true (Paxos.is_leader e0)

let suite =
  suite
  @ [ Alcotest.test_case "paxos: view0 bootstrap (multi-group)" `Quick
        test_paxos_view0_bootstrap ]

(* ------------------------------------------------------------------ *)
(* Leader lease (read fast path) *)

let lease_cfg ?(n = 3) () =
  { (Config.default ~n) with
    lease_enabled = true; lease_duration_s = 1.0; clock_skew_bound_s = 0.05 }

let s_ns x = int_of_float (x *. 1e9)

let test_lease_config_validate () =
  let ok = lease_cfg () in
  Alcotest.(check bool) "lease defaults ok" true (Config.validate ok = Ok ());
  Alcotest.(check bool) "duration must dominate fd interval" true
    (Config.validate { ok with lease_duration_s = 0.01 } |> Result.is_error);
  Alcotest.(check bool) "skew must stay under the duration" true
    (Config.validate { ok with clock_skew_bound_s = 2.0 } |> Result.is_error);
  Alcotest.(check bool) "knobs ignored when disabled" true
    (Config.validate
       { ok with lease_enabled = false; lease_duration_s = 0.01 }
     = Ok ())

let test_lease_ping_due_fresh () =
  (* Regression: [create] seeds [last_ping_ns = min_int] and
     [now - min_int] overflows, so "never pinged" must be tested
     explicitly — a fresh lease is due immediately, even at now = 0. *)
  let t = Lease.create (lease_cfg ()) ~me:0 ~view:0 in
  Alcotest.(check bool) "due at time zero" true (Lease.ping_due t ~now_ns:0);
  ignore (Lease.make_ping t ~now_ns:0);
  let renew = s_ns 1.0 / 3 in
  Alcotest.(check bool) "not due right after a round" false
    (Lease.ping_due t ~now_ns:(renew - 1));
  Alcotest.(check bool) "due a third of the duration later" true
    (Lease.ping_due t ~now_ns:renew)

let test_lease_acquire_on_quorum () =
  let leader = Lease.create (lease_cfg ()) ~me:0 ~view:0 in
  let follower = Lease.create (lease_cfg ()) ~me:1 ~view:0 in
  let t0 = s_ns 0.1 in
  (match Lease.make_ping leader ~now_ns:t0 with
   | Msg.Lease_ping { view = 0; t0_ns } ->
     Alcotest.(check int) "ping anchored at t0" t0 t0_ns
   | _ -> Alcotest.fail "expected Lease_ping");
  Alcotest.(check bool) "not held before any grant" false
    (Lease.held leader ~now_ns:(t0 + 1));
  (* The follower receives the ping a little later on its own clock and
     echoes a grant carrying the leader's t0. *)
  (match Lease.on_ping follower ~from:0 ~view:0 ~t0_ns:t0 ~now_ns:(t0 + 500)
   with
   | Some (Msg.Lease_grant { view = 0; t0_ns }) ->
     Alcotest.(check int) "grant echoes t0" t0 t0_ns
   | _ -> Alcotest.fail "expected Lease_grant");
  (* Leader + one grant = quorum of 2 in a group of 3. *)
  Alcotest.(check bool) "quorum reached" true
    (Lease.on_grant leader ~from:1 ~view:0 ~t0_ns:t0 ~quorum:2);
  Alcotest.(check int) "one renewal counted" 1 (Lease.renewals leader);
  (* Held until t0 + duration - skew on the holder's clock: the skew
     padding keeps the holder's expiry inside every grantor's promise. *)
  let expiry = t0 + s_ns 1.0 - s_ns 0.05 in
  Alcotest.(check bool) "held after the quorum" true
    (Lease.held leader ~now_ns:(t0 + 1000));
  Alcotest.(check bool) "held up to the padded expiry" true
    (Lease.held leader ~now_ns:(expiry - 1));
  Alcotest.(check bool) "expires skew-early" false
    (Lease.held leader ~now_ns:expiry)

let test_lease_grant_bookkeeping () =
  let leader = Lease.create (lease_cfg ~n:5 ()) ~me:0 ~view:0 in
  let t0 = s_ns 0.2 in
  ignore (Lease.make_ping leader ~now_ns:t0);
  Alcotest.(check bool) "stale round ignored" false
    (Lease.on_grant leader ~from:1 ~view:0 ~t0_ns:(t0 - 7) ~quorum:3);
  Alcotest.(check bool) "wrong view ignored" false
    (Lease.on_grant leader ~from:1 ~view:1 ~t0_ns:t0 ~quorum:3);
  Alcotest.(check bool) "first grant short of quorum" false
    (Lease.on_grant leader ~from:1 ~view:0 ~t0_ns:t0 ~quorum:3);
  Alcotest.(check bool) "duplicate grant not double counted" false
    (Lease.on_grant leader ~from:1 ~view:0 ~t0_ns:t0 ~quorum:3);
  Alcotest.(check bool) "still not held" false
    (Lease.held leader ~now_ns:(t0 + 1));
  Alcotest.(check bool) "third distinct grantor completes the quorum" true
    (Lease.on_grant leader ~from:2 ~view:0 ~t0_ns:t0 ~quorum:3);
  Alcotest.(check bool) "held" true (Lease.held leader ~now_ns:(t0 + 1))

let test_lease_on_ping_refusals () =
  let t = Lease.create (lease_cfg ()) ~me:1 ~view:0 in
  Alcotest.(check bool) "wrong view refused" true
    (Lease.on_ping t ~from:0 ~view:1 ~t0_ns:10 ~now_ns:20 = None);
  Alcotest.(check bool) "non-leader sender refused" true
    (Lease.on_ping t ~from:2 ~view:0 ~t0_ns:10 ~now_ns:20 = None);
  let self = Lease.create (lease_cfg ()) ~me:0 ~view:0 in
  Alcotest.(check bool) "own ping not self-granted" true
    (Lease.on_ping self ~from:0 ~view:0 ~t0_ns:10 ~now_ns:20 = None)

let test_lease_promise_exclusive () =
  (* A follower that promised node 0 must keep defecting candidates out
     (dropped Prepares, deferred Suspect verdicts) until the promise
     expires — this is what makes concurrent leases impossible. *)
  let t = Lease.create (lease_cfg ()) ~me:2 ~view:0 in
  let now = s_ns 0.1 in
  Alcotest.(check bool) "granted" true
    (Lease.on_ping t ~from:0 ~view:0 ~t0_ns:now ~now_ns:now <> None);
  let promised_until = now + s_ns 1.0 in
  Alcotest.(check bool) "other candidate blocked" true
    (Lease.promise_blocks t ~candidate:1 ~now_ns:(promised_until - 1));
  Alcotest.(check bool) "beneficiary never blocked" false
    (Lease.promise_blocks t ~candidate:0 ~now_ns:(promised_until - 1));
  Alcotest.(check bool) "promise expires" false
    (Lease.promise_blocks t ~candidate:1 ~now_ns:promised_until);
  (* While the promise to 0 is active the view-1 leader (node 1) gets
     no grant; after expiry it does. *)
  Lease.set_view t ~view:1;
  Alcotest.(check bool) "conflicting ping refused while promised" true
    (Lease.on_ping t ~from:1 ~view:1 ~t0_ns:(now + 10)
       ~now_ns:(promised_until - 1)
     = None);
  Alcotest.(check bool) "granted once the promise lapsed" true
    (Lease.on_ping t ~from:1 ~view:1 ~t0_ns:promised_until
       ~now_ns:promised_until
     <> None)

let test_lease_set_view_invalidates () =
  let leader = Lease.create (lease_cfg ()) ~me:0 ~view:0 in
  let t0 = s_ns 0.1 in
  ignore (Lease.make_ping leader ~now_ns:t0);
  Alcotest.(check bool) "held" true
    (Lease.on_grant leader ~from:1 ~view:0 ~t0_ns:t0 ~quorum:2);
  Lease.set_view leader ~view:1;
  Alcotest.(check bool) "view change drops the held lease" false
    (Lease.held leader ~now_ns:(t0 + 1));
  Alcotest.(check bool) "old-round grants void" false
    (Lease.on_grant leader ~from:2 ~view:0 ~t0_ns:t0 ~quorum:2);
  Alcotest.(check bool) "renewal due again in the new view" true
    (Lease.ping_due leader ~now_ns:(t0 + 1));
  Lease.set_view leader ~view:1;
  Alcotest.(check bool) "same view is a no-op" true
    (Lease.ping_due leader ~now_ns:(t0 + 1))

let test_lease_singleton_self_holds () =
  (* n = 1: the group is its own quorum, the round self-completes. *)
  let t = Lease.create (lease_cfg ~n:1 ()) ~me:0 ~view:0 in
  ignore (Lease.make_ping t ~now_ns:100);
  Alcotest.(check bool) "held immediately" true (Lease.held t ~now_ns:101);
  Alcotest.(check int) "renewal counted" 1 (Lease.renewals t)

let suite =
  suite
  @ [
      Alcotest.test_case "lease: config validation" `Quick
        test_lease_config_validate;
      Alcotest.test_case "lease: fresh lease pings immediately" `Quick
        test_lease_ping_due_fresh;
      Alcotest.test_case "lease: acquired on quorum, skew-padded expiry" `Quick
        test_lease_acquire_on_quorum;
      Alcotest.test_case "lease: grant round bookkeeping" `Quick
        test_lease_grant_bookkeeping;
      Alcotest.test_case "lease: ping refusals" `Quick test_lease_on_ping_refusals;
      Alcotest.test_case "lease: exclusive promise blocks rivals" `Quick
        test_lease_promise_exclusive;
      Alcotest.test_case "lease: view change invalidates" `Quick
        test_lease_set_view_invalidates;
      Alcotest.test_case "lease: singleton group self-holds" `Quick
        test_lease_singleton_self_holds;
    ]
