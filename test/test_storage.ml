(* Tests for msmr_storage: CRC32, the segmented WAL (including torn-write
   recovery), the typed replica store, Paxos recovery, and full live
   cluster restart-from-disk. *)

open Msmr_storage
module R = Msmr_runtime
module Value = Msmr_consensus.Value

let tmp_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msmr-test-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_tmp_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* CRC32 *)

let test_crc32_vectors () =
  (* Standard test vector: "123456789" -> 0xCBF43926. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l
    (Crc32.digest_bytes (Bytes.of_string "123456789"));
  Alcotest.(check int32) "empty" 0l (Crc32.digest_bytes Bytes.empty)

let test_crc32_incremental () =
  let whole = Bytes.of_string "hello world" in
  let part1 = Crc32.digest whole ~pos:0 ~len:5 in
  let inc = Crc32.digest whole ~crc:part1 ~pos:5 ~len:6 in
  Alcotest.(check int32) "incremental = whole" (Crc32.digest_bytes whole) inc

(* ------------------------------------------------------------------ *)
(* WAL *)

let test_wal_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~dir ~sync:Wal.No_sync () in
  List.iter
    (fun s -> ignore (Wal.append wal (Bytes.of_string s)))
    [ "alpha"; "beta"; ""; "gamma" ];
  Alcotest.(check int) "appended" 4 (Wal.appended wal);
  Wal.close wal;
  let got = ref [] in
  let n = Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got) in
  Alcotest.(check int) "replayed" 4 n;
  Alcotest.(check (list string)) "order" [ "alpha"; "beta"; ""; "gamma" ]
    (List.rev !got)

let test_wal_append_after_reopen () =
  with_tmp_dir @@ fun dir ->
  let w1 = Wal.openw ~dir ~sync:Wal.No_sync () in
  ignore (Wal.append w1 (Bytes.of_string "one"));
  Wal.close w1;
  let w2 = Wal.openw ~dir ~sync:Wal.No_sync () in
  ignore (Wal.append w2 (Bytes.of_string "two"));
  Wal.close w2;
  let got = ref [] in
  ignore (Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got));
  Alcotest.(check (list string)) "both runs" [ "one"; "two" ] (List.rev !got)

let test_wal_truncates_torn_suffix () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~dir ~sync:Wal.No_sync () in
  ignore (Wal.append wal (Bytes.of_string "good-1"));
  ignore (Wal.append wal (Bytes.of_string "good-2"));
  Wal.close wal;
  (* Simulate a torn write: append half a record by hand. *)
  let path = Filename.concat dir "wal-000000.log" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0 in
  let junk = Bytes.create 6 in
  Bytes.set_int32_be junk 0 100l;
  ignore (Unix.write fd junk 0 6);
  Unix.close fd;
  let got = ref [] in
  let n = Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got) in
  Alcotest.(check int) "intact prefix" 2 n;
  (* The torn suffix is gone: appending and replaying again is clean. *)
  let w2 = Wal.openw ~dir ~sync:Wal.No_sync () in
  ignore (Wal.append w2 (Bytes.of_string "good-3"));
  Wal.close w2;
  let got2 = ref [] in
  ignore (Wal.replay ~dir (fun b -> got2 := Bytes.to_string b :: !got2));
  Alcotest.(check (list string)) "clean after truncate"
    [ "good-1"; "good-2"; "good-3" ]
    (List.rev !got2)

let test_wal_detects_corruption () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~dir ~sync:Wal.No_sync () in
  ignore (Wal.append wal (Bytes.of_string "aaaa"));
  ignore (Wal.append wal (Bytes.of_string "bbbb"));
  Wal.close wal;
  (* Flip a payload byte of the second record. *)
  let path = Filename.concat dir "wal-000000.log" in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (8 + 4 + 8 + 1) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  let got = ref [] in
  let n = Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got) in
  Alcotest.(check int) "stops at corruption" 1 n;
  Alcotest.(check (list string)) "first survives" [ "aaaa" ] (List.rev !got)

let test_wal_segment_rotation () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~segment_bytes:64 ~dir ~sync:Wal.No_sync () in
  for i = 1 to 10 do
    ignore (Wal.append wal (Bytes.of_string (Printf.sprintf "record-%02d-xxxxxxxx" i)))
  done;
  Wal.close wal;
  let segments =
    Array.to_list (Sys.readdir dir)
    |> List.filter (String.starts_with ~prefix:"wal-")
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d segments" (List.length segments))
    true
    (List.length segments > 1);
  let got = ref 0 in
  ignore (Wal.replay ~dir (fun _ -> incr got));
  Alcotest.(check int) "all records across segments" 10 !got

(* ------------------------------------------------------------------ *)
(* Group commit: append_many, LSNs, crash at arbitrary points inside an
   unsynced group *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_wal_append_many_group_sync () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.openw ~dir ~sync:Wal.Sync_every_write () in
  let lsn = Wal.append_many wal (List.map Bytes.of_string [ "a"; "bb"; "ccc" ]) in
  Alcotest.(check int) "lsn of last record" 3 lsn;
  (* The whole group became durable under the one policy-applied sync. *)
  Alcotest.(check int) "synced watermark" 3 (Wal.synced wal);
  let counter_value name =
    List.find_map
      (fun (s : Msmr_obs.Metrics.sample) ->
         if s.name = name && s.labels = [ ("dir", dir) ] then
           match s.value with Msmr_obs.Metrics.Counter_v n -> Some n | _ -> None
         else None)
      (Msmr_obs.Metrics.snapshot ())
  in
  Alcotest.(check (option int)) "one fsync for the group" (Some 1)
    (counter_value "msmr_wal_sync_total");
  Alcotest.(check int) "empty batch is a no-op" 3 (Wal.append_many wal []);
  let lsn2 = Wal.append wal (Bytes.of_string "d") in
  Alcotest.(check int) "appends keep counting" 4 lsn2;
  Wal.close wal;
  let got = ref [] in
  ignore (Wal.replay ~dir (fun b -> got := Bytes.to_string b :: !got));
  Alcotest.(check (list string)) "order" [ "a"; "bb"; "ccc"; "d" ]
    (List.rev !got)

let test_wal_append_many_torn_boundary () =
  with_tmp_dir @@ fun dir ->
  let batch1 = List.init 4 (fun i -> Printf.sprintf "first-%d" i) in
  let batch2 = List.init 3 (fun i -> Printf.sprintf "second-%d" i) in
  let wal = Wal.openw ~dir ~sync:Wal.No_sync () in
  ignore (Wal.append_many wal (List.map Bytes.of_string batch1));
  Alcotest.(check int) "group sync watermark" 4 (Wal.sync wal);
  let seg = Filename.concat dir "wal-000000.log" in
  let synced_bytes = (Unix.stat seg).Unix.st_size in
  ignore (Wal.append_many wal (List.map Bytes.of_string batch2));
  Wal.close wal;
  let data = read_file seg in
  (* Crash property: the fsync covering batch1 completed, the one for
     batch2 did not, so the file may survive cut at ANY byte from the
     synced prefix on. Every cut must recover all of batch1 plus a clean
     prefix of batch2. *)
  for cut = synced_bytes to String.length data do
    let d2 = Filename.concat dir (Printf.sprintf "cut-%d" cut) in
    Unix.mkdir d2 0o755;
    write_file (Filename.concat d2 "wal-000000.log") (String.sub data 0 cut);
    let got = ref [] in
    ignore (Wal.replay ~dir:d2 (fun b -> got := Bytes.to_string b :: !got));
    let got = List.rev !got in
    let n = List.length got in
    if n < 4 then
      Alcotest.failf "cut %d lost synced records (%d survive)" cut n;
    Alcotest.(check (list string))
      (Printf.sprintf "cut %d is a clean prefix" cut)
      (batch1 @ List.filteri (fun i _ -> i < n - 4) batch2)
      got;
    rm_rf d2
  done

(* ------------------------------------------------------------------ *)
(* Replica store *)

let batch_value num =
  Value.Batch
    { bid = { src = 0; num };
      requests =
        [ { Msmr_wire.Client_msg.id = { client_id = 9; seq = num };
            payload = Bytes.of_string (string_of_int num) } ] }

let test_store_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let store = Replica_store.openw ~dir () in
  ignore (Replica_store.log_event store (Replica_store.View 3));
  ignore
    (Replica_store.log_event store
       (Replica_store.Accepted { iid = 0; view = 3; value = batch_value 0 }));
  ignore
    (Replica_store.log_event store
       (Replica_store.Accepted { iid = 1; view = 3; value = batch_value 1 }));
  ignore (Replica_store.log_event store (Replica_store.Decided { iid = 0; view = 3 }));
  ignore (Replica_store.sync store);
  Replica_store.close store;
  let r = Replica_store.recover ~dir () in
  Alcotest.(check int) "view" 3 r.r_view;
  Alcotest.(check int) "decided count" 1 (List.length r.r_decided);
  Alcotest.(check int) "accepted (undecided) count" 1 (List.length r.r_accepted);
  (match r.r_decided with
   | [ (0, 3, v) ] ->
     Alcotest.(check bool) "value survives" true (Value.equal v (batch_value 0))
   | _ -> Alcotest.fail "bad decided set");
  Alcotest.(check bool) "no snapshot" true (r.r_snapshot = None)

let test_store_higher_view_acceptance_wins () =
  with_tmp_dir @@ fun dir ->
  let store = Replica_store.openw ~dir () in
  ignore
    (Replica_store.log_event store
       (Replica_store.Accepted { iid = 5; view = 1; value = batch_value 1 }));
  ignore
    (Replica_store.log_event store
       (Replica_store.Accepted { iid = 5; view = 4; value = batch_value 2 }));
  ignore
    (Replica_store.log_event store
       (Replica_store.Accepted { iid = 5; view = 2; value = batch_value 3 }));
  Replica_store.close store;
  let r = Replica_store.recover ~dir () in
  (match r.r_accepted with
   | [ (5, 4, v) ] ->
     Alcotest.(check bool) "view-4 value" true (Value.equal v (batch_value 2))
   | _ -> Alcotest.fail "expected single view-4 acceptance")

let test_store_checkpoint () =
  with_tmp_dir @@ fun dir ->
  let store = Replica_store.openw ~dir () in
  ignore
    (Replica_store.log_event store
       (Replica_store.Accepted { iid = 0; view = 0; value = batch_value 0 }));
  ignore (Replica_store.log_event store (Replica_store.Decided { iid = 0; view = 0 }));
  Replica_store.checkpoint store ~next_iid:1 ~state:(Bytes.of_string "S1");
  (* Post-checkpoint traffic. *)
  ignore
    (Replica_store.log_event store
       (Replica_store.Accepted { iid = 1; view = 0; value = batch_value 1 }));
  ignore (Replica_store.log_event store (Replica_store.Decided { iid = 1; view = 0 }));
  Replica_store.close store;
  let r = Replica_store.recover ~dir () in
  (match r.r_snapshot with
   | Some (1, state) -> Alcotest.(check string) "state" "S1" (Bytes.to_string state)
   | _ -> Alcotest.fail "missing snapshot");
  Alcotest.(check int) "only post-checkpoint decided" 1 (List.length r.r_decided);
  (match r.r_decided with
   | [ (1, 0, _) ] -> ()
   | _ -> Alcotest.fail "expected instance 1")

let test_store_checkpoint_with_configs () =
  (* Membership history rides inside the checkpoint (DESIGN.md section
     17): recovery hands it back so the engine resumes in the right
     epoch, and pre-reconfiguration checkpoints still read as []. *)
  let module Membership = Msmr_consensus.Membership in
  with_tmp_dir @@ fun dir ->
  let m0 = Membership.make ~epoch:0 ~voters:[ 0; 1; 2 ] ~learners:[] in
  let m1 = Membership.make ~epoch:1 ~voters:[ 0; 1; 2 ] ~learners:[ 3 ] in
  let configs = [ (12, m1); (0, m0) ] in
  let store = Replica_store.openw ~dir () in
  Replica_store.checkpoint store ~next_iid:15 ~state:(Bytes.of_string "S9")
    ~configs;
  Replica_store.close store;
  let r = Replica_store.recover ~dir () in
  (match r.r_snapshot with
   | Some (15, state) ->
     Alcotest.(check string) "state intact" "S9" (Bytes.to_string state)
   | _ -> Alcotest.fail "missing snapshot");
  (match r.r_configs with
   | [ (12, m1'); (0, m0') ] ->
     Alcotest.(check bool) "epoch 1 entry" true (Membership.equal m1 m1');
     Alcotest.(check bool) "boot entry" true (Membership.equal m0 m0')
   | _ -> Alcotest.fail "membership history lost");
  (* Legacy shape: a checkpoint written without configs recovers []. *)
  with_tmp_dir @@ fun dir2 ->
  let store2 = Replica_store.openw ~dir:dir2 () in
  Replica_store.checkpoint store2 ~next_iid:1 ~state:(Bytes.of_string "S0");
  Replica_store.close store2;
  let r2 = Replica_store.recover ~dir:dir2 () in
  Alcotest.(check bool) "no configs in legacy checkpoint" true
    (r2.r_configs = [])

let test_store_empty_dir () =
  with_tmp_dir @@ fun dir ->
  let r = Replica_store.recover ~dir () in
  Alcotest.(check int) "view 0" 0 r.r_view;
  Alcotest.(check bool) "empty" true
    (r.r_accepted = [] && r.r_decided = [] && r.r_snapshot = None)

let test_store_log_batch_lsn () =
  with_tmp_dir @@ fun dir ->
  let store = Replica_store.openw ~sync:Wal.Sync_every_write ~dir () in
  Alcotest.(check int) "fresh store" 0 (Replica_store.lsn store);
  let l1 = Replica_store.log_event store (Replica_store.View 1) in
  Alcotest.(check int) "first lsn" 1 l1;
  let l2 =
    Replica_store.log_batch store
      (List.init 3 (fun i ->
           Replica_store.Accepted { iid = i; view = 1; value = batch_value i }))
  in
  Alcotest.(check int) "batch lsn" 4 l2;
  Alcotest.(check int) "durable under Sync_every_write" 4
    (Replica_store.durable_lsn store);
  Alcotest.(check int) "empty batch returns current lsn" 4
    (Replica_store.log_batch store []);
  Replica_store.close store

let test_store_crash_mid_group_commit () =
  with_tmp_dir @@ fun root ->
  let dir = Filename.concat root "store" in
  Unix.mkdir dir 0o755;
  let store = Replica_store.openw ~sync:Wal.Sync_periodic ~dir () in
  ignore (Replica_store.log_event store (Replica_store.View 1));
  ignore
    (Replica_store.log_batch store
       (List.init 4 (fun i ->
            Replica_store.Accepted { iid = i; view = 1; value = batch_value i })));
  (* The StableStorage thread's group fsync: everything so far is now
     durable, and (in the pipeline) the Accepted messages for iids 0-3
     are released to the wire. *)
  Alcotest.(check int) "watermark after group sync" 5 (Replica_store.sync store);
  let seg = Filename.concat dir "wal-000000.log" in
  let synced_bytes = (Unix.stat seg).Unix.st_size in
  (* A second group is appended but the crash lands before its fsync. *)
  ignore
    (Replica_store.log_batch store
       (List.init 3 (fun i ->
            Replica_store.Accepted
              { iid = 4 + i; view = 1; value = batch_value (4 + i) })));
  Alcotest.(check int) "second group not durable" 5
    (Replica_store.durable_lsn store);
  Replica_store.close store;
  let data = read_file seg in
  (* No promise gap: whatever suffix the crash destroys, recovery must
     retain every acceptance whose Accepted was released (iids 0-3), and
     anything extra must be a clean prefix of the second group. *)
  for cut = synced_bytes to String.length data do
    let d2 = Filename.concat root (Printf.sprintf "cut-%d" cut) in
    Unix.mkdir d2 0o755;
    write_file (Filename.concat d2 "wal-000000.log") (String.sub data 0 cut);
    let r = Replica_store.recover ~dir:d2 () in
    Alcotest.(check int) (Printf.sprintf "cut %d view" cut) 1 r.r_view;
    let iids = List.map (fun (iid, _, _) -> iid) r.r_accepted in
    List.iter
      (fun iid ->
         if not (List.mem iid iids) then
           Alcotest.failf "cut %d: released acceptance %d lost" cut iid;
         match List.find (fun (i, _, _) -> i = iid) r.r_accepted with
         | _, v, value ->
           Alcotest.(check int) (Printf.sprintf "cut %d iid %d view" cut iid) 1 v;
           Alcotest.(check bool)
             (Printf.sprintf "cut %d iid %d value" cut iid)
             true
             (Value.equal value (batch_value iid)))
      [ 0; 1; 2; 3 ];
    Alcotest.(check (list int))
      (Printf.sprintf "cut %d clean prefix" cut)
      (List.init (List.length iids) (fun i -> i))
      (List.sort compare iids);
    rm_rf d2
  done

(* ------------------------------------------------------------------ *)
(* StableStorage gating: no durability-dependent message reaches the
   wire before its LSN is durable *)

let await ?(timeout_s = 5.0) ~what pred =
  let deadline =
    Int64.add (Msmr_platform.Mclock.now_ns ())
      (Msmr_platform.Mclock.ns_of_s timeout_s)
  in
  let rec go () =
    if pred () then ()
    else if Int64.compare (Msmr_platform.Mclock.now_ns ()) deadline > 0 then
      Alcotest.failf "timeout waiting for %s" what
    else begin
      Msmr_platform.Mclock.sleep_s 0.005;
      go ()
    end
  in
  go ()

let test_stable_storage_gates_sends () =
  with_tmp_dir @@ fun dir ->
  let module Bq = Msmr_platform.Bounded_queue in
  let module Msg = Msmr_consensus.Msg in
  (* Slow timers: nothing but our injected messages drives the replica. *)
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 1.0;
      retransmit_interval_s = 30.0;
      fd_interval_s = 30.0;
      fd_timeout_s = 120.0;
      catchup_interval_s = 30.0 }
  in
  let sent_mu = Mutex.create () in
  let sent = ref [] in
  let push b =
    Mutex.lock sent_mu;
    sent := b :: !sent;
    Mutex.unlock sent_mu
  in
  let sent_msgs () =
    Mutex.lock sent_mu;
    let l = List.rev !sent in
    Mutex.unlock sent_mu;
    List.map Msg.decode l
  in
  let inboxes = [ (0, Bq.create ~capacity:64); (2, Bq.create ~capacity:64) ] in
  let links =
    List.map
      (fun (peer, inbox) ->
         ( peer,
           { R.Transport.send_bytes = push;
             send_many = (fun bs -> List.iter push bs);
             recv_bytes =
               (fun () ->
                  match Bq.take inbox with
                  | b -> Some b
                  | exception Bq.Closed -> None);
             close = (fun () -> Bq.close inbox) } ))
      inboxes
  in
  (* Replica 1 is a follower of the view-0 leader (node 0). *)
  let replica =
    R.Replica.create ~cfg ~me:1 ~links
      ~durability:(R.Replica.Durable { dir; sync = Wal.Sync_every_write })
      ~service:(R.Service.accumulator ()) ()
  in
  Fun.protect ~finally:(fun () -> R.Replica.stop replica) @@ fun () ->
  R.Replica.stall_stable_storage replica true;
  Bq.put (List.assoc 0 inboxes)
    (Msg.encode (Msg.Accept { view = 0; iid = 0; value = batch_value 0 }));
  (* The acceptance is processed but its LSN never becomes durable, so
     nothing durability-gated may appear on the wire. *)
  Msmr_platform.Mclock.sleep_s 0.2;
  let gated =
    List.filter
      (function
        | Msg.Accepted _ | Msg.Prepare_ok _ | Msg.Accept _ -> true
        | _ -> false)
      (sent_msgs ())
  in
  Alcotest.(check int) "nothing gated on the wire while stalled" 0
    (List.length gated);
  R.Replica.stall_stable_storage replica false;
  await ~what:"Accepted released after unstall" (fun () ->
      List.exists
        (function
          | Msg.Accepted { view = 0; iid = 0 } -> true
          | _ -> false)
        (sent_msgs ()));
  R.Replica.stop replica;
  (* The release was honest: the acceptance is on stable storage. *)
  let r = Replica_store.recover ~dir () in
  Alcotest.(check bool) "acceptance durable" true
    (List.exists
       (fun (iid, view, value) ->
          iid = 0 && view = 0 && Value.equal value (batch_value 0))
       r.r_accepted)

(* ------------------------------------------------------------------ *)
(* Paxos recovery *)

let test_paxos_recover () =
  let cfg = Msmr_consensus.Config.default ~n:3 in
  let engine, actions =
    Msmr_consensus.Paxos.recover cfg ~me:1 ~view:4
      ~accepted:[ (2, 4, batch_value 2) ]
      ~decided:[ (0, 3, batch_value 0); (1, 4, batch_value 1) ]
      ~snapshot:None
  in
  (* Node 1 led view 4, so recovery immediately starts Phase 1 for the
     next view it leads (7 = 4 + 3). *)
  Alcotest.(check int) "re-preparing its next view" 7
    (Msmr_consensus.Paxos.view engine);
  Alcotest.(check bool) "not leader without phase 1" false
    (Msmr_consensus.Paxos.is_leader engine);
  Alcotest.(check bool) "sends Prepare" true
    (List.exists
       (function
         | Msmr_consensus.Paxos.Send { msg = Msmr_consensus.Msg.Prepare _; _ } ->
           true
         | _ -> false)
       actions);
  let executes =
    List.filter_map
      (function Msmr_consensus.Paxos.Execute { iid; _ } -> Some iid | _ -> None)
      actions
  in
  Alcotest.(check (list int)) "replays decided prefix" [ 0; 1 ] executes

let test_paxos_recover_with_snapshot () =
  let cfg = Msmr_consensus.Config.default ~n:3 in
  let engine, actions =
    Msmr_consensus.Paxos.recover cfg ~me:0 ~view:0
      ~accepted:[]
      ~decided:[ (10, 0, batch_value 10) ]
      ~snapshot:(Some (10, Bytes.of_string "snap"))
  in
  let tags =
    List.filter_map
      (function
        | Msmr_consensus.Paxos.Install_snapshot { next_iid; _ } ->
          Some (Printf.sprintf "snap@%d" next_iid)
        | Msmr_consensus.Paxos.Execute { iid; _ } ->
          Some (Printf.sprintf "exec@%d" iid)
        | _ -> None)
      actions
  in
  Alcotest.(check (list string)) "snapshot then tail" [ "snap@10"; "exec@10" ] tags;
  Alcotest.(check int) "log continues after" 11
    (Msmr_consensus.Log.first_undecided (Msmr_consensus.Paxos.log engine))

(* ------------------------------------------------------------------ *)
(* Live cluster restart from disk *)

let test_cluster_restart_from_disk () =
  with_tmp_dir @@ fun dir ->
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with
      max_batch_delay_s = 0.004;
      snapshot_every = 5;   (* exercise checkpoints too *)
      log_retain = 2 }
  in
  let durability me =
    R.Replica.Durable
      { dir = Filename.concat dir (Printf.sprintf "r%d" me);
        sync = Wal.Sync_periodic }
  in
  let run_phase expected_sum calls =
    let cluster =
      R.Replica.Cluster.create ~durability ~cfg
        ~service:(fun () -> R.Service.accumulator ())
        ()
    in
    Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
    @@ fun () ->
    ignore (R.Replica.Cluster.await_leader cluster);
    (* Fresh client id per phase (new session). *)
    let client =
      R.Client.create ~cluster ~client_id:(1 + List.length calls) ()
    in
    let final = ref "" in
    List.iter
      (fun v ->
         final := Bytes.to_string (R.Client.call client (Bytes.of_string v)))
      calls;
    Alcotest.(check string) "sum" expected_sum !final;
    (* Give the syncer a moment to flush the tail. *)
    Msmr_platform.Mclock.sleep_s 0.05
  in
  (* Phase 1: 12 requests summing to 78; snapshots fire along the way. *)
  run_phase "78" (List.init 12 (fun i -> string_of_int (i + 1)));
  (* Phase 2: a brand-new cluster recovers the state from disk. *)
  run_phase "88" [ "4"; "6" ];
  (* Phase 3: once more, proving repeated recovery works. *)
  run_phase "91" [ "3" ]

let test_cluster_restart_sync_every_write () =
  (* Same restart shape under Sync_every_write: every phase runs the
     full group-commit pipeline (log queue, burst fsync, gated release)
     and recovery must still converge. *)
  with_tmp_dir @@ fun dir ->
  let cfg =
    { (Msmr_consensus.Config.default ~n:3) with max_batch_delay_s = 0.004 }
  in
  let durability me =
    R.Replica.Durable
      { dir = Filename.concat dir (Printf.sprintf "r%d" me);
        sync = Wal.Sync_every_write }
  in
  let run_phase expected_sum ~client_id calls =
    let cluster =
      R.Replica.Cluster.create ~durability ~cfg
        ~service:(fun () -> R.Service.accumulator ())
        ()
    in
    Fun.protect ~finally:(fun () -> R.Replica.Cluster.stop cluster)
    @@ fun () ->
    ignore (R.Replica.Cluster.await_leader cluster);
    let client = R.Client.create ~cluster ~client_id () in
    let final = ref "" in
    List.iter
      (fun v ->
         final := Bytes.to_string (R.Client.call client (Bytes.of_string v)))
      calls;
    Alcotest.(check string) "sum" expected_sum !final;
    (* Let the StableStorage thread flush the trailing Decided records. *)
    Msmr_platform.Mclock.sleep_s 0.05
  in
  run_phase "15" ~client_id:1 [ "1"; "2"; "3"; "4"; "5" ];
  run_phase "35" ~client_id:2 [ "20" ]

let suite =
  [
    Alcotest.test_case "crc32: vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32: incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "wal: round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: reopen append" `Quick test_wal_append_after_reopen;
    Alcotest.test_case "wal: torn suffix truncated" `Quick test_wal_truncates_torn_suffix;
    Alcotest.test_case "wal: corruption detected" `Quick test_wal_detects_corruption;
    Alcotest.test_case "wal: segment rotation" `Quick test_wal_segment_rotation;
    Alcotest.test_case "wal: append_many group sync" `Quick test_wal_append_many_group_sync;
    Alcotest.test_case "wal: append_many torn boundary" `Quick test_wal_append_many_torn_boundary;
    Alcotest.test_case "store: round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "store: higher view wins" `Quick test_store_higher_view_acceptance_wins;
    Alcotest.test_case "store: checkpoint" `Quick test_store_checkpoint;
    Alcotest.test_case "store: checkpoint with membership history" `Quick
      test_store_checkpoint_with_configs;
    Alcotest.test_case "store: empty dir" `Quick test_store_empty_dir;
    Alcotest.test_case "store: log_batch lsn" `Quick test_store_log_batch_lsn;
    Alcotest.test_case "store: crash mid group commit" `Quick
      test_store_crash_mid_group_commit;
    Alcotest.test_case "stable storage: gates sends until durable" `Quick
      test_stable_storage_gates_sends;
    Alcotest.test_case "paxos: recover" `Quick test_paxos_recover;
    Alcotest.test_case "paxos: recover with snapshot" `Quick test_paxos_recover_with_snapshot;
    Alcotest.test_case "cluster: restart from disk" `Quick test_cluster_restart_from_disk;
    Alcotest.test_case "cluster: restart with Sync_every_write" `Quick
      test_cluster_restart_sync_every_write;
  ]

(* Multi-group Paxos: per-group store namespaces under one directory. *)
let test_store_group_namespaces () =
  with_tmp_dir @@ fun dir ->
  let s0 = Replica_store.openw ~sync:Wal.No_sync ~gid:0 ~dir () in
  let s1 = Replica_store.openw ~sync:Wal.No_sync ~gid:1 ~dir () in
  ignore (Replica_store.log_event s0 (Replica_store.View 3));
  ignore
    (Replica_store.log_event s0
       (Replica_store.Accepted { iid = 0; view = 3; value = Value.Noop }));
  ignore (Replica_store.log_event s1 (Replica_store.View 7));
  Replica_store.close s0;
  Replica_store.close s1;
  (* Each group recovers only its own log... *)
  let r0 = Replica_store.recover ~gid:0 ~dir () in
  let r1 = Replica_store.recover ~gid:1 ~dir () in
  Alcotest.(check int) "group 0 view" 3 r0.r_view;
  Alcotest.(check int) "group 0 accepted" 1 (List.length r0.r_accepted);
  Alcotest.(check int) "group 1 view" 7 r1.r_view;
  Alcotest.(check int) "group 1 saw no group-0 acceptances" 0
    (List.length r1.r_accepted);
  (* ...the groups live in dir/g<gid>... *)
  Alcotest.(check bool) "g0 and g1 subdirectories" true
    (Sys.is_directory (Filename.concat dir "g0")
     && Sys.is_directory (Filename.concat dir "g1"));
  (* ...and the classic ungrouped layout in the same dir is untouched. *)
  let plain = Replica_store.recover ~dir () in
  Alcotest.(check int) "ungrouped namespace pristine" 0 plain.r_view;
  Alcotest.(check bool) "ungrouped has no snapshot" true
    (plain.r_snapshot = None)

let suite =
  suite
  @ [ Alcotest.test_case "store: per-group namespaces" `Quick
        test_store_group_namespaces ]
