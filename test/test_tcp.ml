(* TCP deployment path: Tcp_mesh + Client_server, a full 3-replica
   cluster over real loopback sockets driven by a framed TCP client. *)

module R = Msmr_runtime
module Client_msg = Msmr_wire.Client_msg

let free_ports k =
  (* Bind ephemeral listeners to reserve distinct ports, then release. *)
  let socks =
    List.init k (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> p
         | Unix.ADDR_UNIX _ -> assert false)
      socks
  in
  List.iter Unix.close socks;
  ports

let test_tcp_cluster_end_to_end () =
  let n = 3 in
  let ports = free_ports n in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let cfg =
    { (Msmr_consensus.Config.default ~n) with max_batch_delay_s = 0.004 }
  in
  (* Meshes must be established concurrently (establish blocks until the
     full mesh is up). *)
  let links = Array.make n [] in
  let mesh_threads =
    List.init n (fun me ->
        Thread.create
          (fun () -> links.(me) <- R.Tcp_mesh.establish ~me ~addrs ())
          ())
  in
  List.iter Thread.join mesh_threads;
  Array.iteri
    (fun me ls ->
       Alcotest.(check int)
         (Printf.sprintf "node %d link count" me)
         (n - 1) (List.length ls))
    links;
  let replicas =
    Array.init n (fun me ->
        R.Replica.create ~cfg ~me ~links:links.(me)
          ~service:(R.Service.accumulator ()) ())
  in
  let servers =
    Array.map (fun r -> R.Client_server.start r ~port:0) replicas
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter R.Client_server.stop servers;
        Array.iter R.Replica.stop replicas)
  @@ fun () ->
  (* Wait for the leader. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.exists R.Replica.is_leader replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Alcotest.(check bool) "leader elected" true
    (Array.exists R.Replica.is_leader replicas);
  (* Framed TCP client against the leader's client port. *)
  let leader_idx = ref 0 in
  Array.iteri (fun i r -> if R.Replica.is_leader r then leader_idx := i) replicas;
  let port = R.Client_server.port servers.(!leader_idx) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let call seq payload =
    let req =
      { Client_msg.id = { client_id = 77; seq }; payload = Bytes.of_string payload }
    in
    Msmr_wire.Frame.write fd (Client_msg.request_to_bytes req);
    match Msmr_wire.Frame.read fd with
    | Some raw ->
      let reply = Client_msg.reply_of_bytes raw in
      Alcotest.(check int) "seq echo" seq reply.id.seq;
      Bytes.to_string reply.result
    | None -> Alcotest.fail "connection closed"
  in
  Alcotest.(check string) "first call" "30" (call 1 "30");
  Alcotest.(check string) "second call" "42" (call 2 "12");
  Unix.close fd;
  (* Replicas converge. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.for_all (fun r -> R.Replica.executed_count r = 2) replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Array.iter
    (fun r ->
       Alcotest.(check int) "executed everywhere" 2 (R.Replica.executed_count r))
    replicas

let suite =
  [ Alcotest.test_case "tcp: 3-replica cluster end-to-end" `Quick
      test_tcp_cluster_end_to_end ]

(* Tcp_client against a live cluster, including failover. *)
let test_tcp_client_failover () =
  let n = 3 in
  let ports = free_ports n in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let cfg =
    { (Msmr_consensus.Config.default ~n) with
      max_batch_delay_s = 0.004;
      fd_interval_s = 0.04;
      fd_timeout_s = 0.2 }
  in
  let links = Array.make n [] in
  let mesh_threads =
    List.init n (fun me ->
        Thread.create
          (fun () -> links.(me) <- R.Tcp_mesh.establish ~me ~addrs ())
          ())
  in
  List.iter Thread.join mesh_threads;
  let replicas =
    Array.init n (fun me ->
        R.Replica.create ~cfg ~me ~links:links.(me)
          ~service:(R.Service.accumulator ()) ())
  in
  let servers =
    Array.map (fun r -> R.Client_server.start r ~port:0) replicas
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter R.Client_server.stop servers;
        Array.iter R.Replica.stop replicas)
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.exists R.Replica.is_leader replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  let client_addrs =
    Array.to_list
      (Array.map
         (fun s ->
            Unix.ADDR_INET (Unix.inet_addr_loopback, R.Client_server.port s))
         servers)
  in
  let client =
    R.Tcp_client.create ~timeout_s:0.4 ~addrs:client_addrs ~client_id:55 ()
  in
  Fun.protect ~finally:(fun () -> R.Tcp_client.close client) @@ fun () ->
  Alcotest.(check string) "first" "7"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "7")));
  (* Kill the leader's client server AND its replica: the client must
     rotate to a follower, and the cluster must elect a new leader. *)
  let leader_idx = ref 0 in
  Array.iteri (fun i r -> if R.Replica.is_leader r then leader_idx := i) replicas;
  R.Client_server.stop servers.(!leader_idx);
  R.Replica.stop replicas.(!leader_idx);
  Alcotest.(check string) "after failover" "12"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "5")));
  Alcotest.(check bool) "client rotated" true (R.Tcp_client.retries client >= 1)

(* Self-healing mesh: when one endpoint's process "dies" (its whole mesh
   closes) and later comes back on the same address, the survivor's
   dialer re-establishes the connection under the same facade link —
   traffic resumes without the caller rebuilding anything, and the
   reconnect is counted. *)
let test_tcp_mesh_reconnect () =
  let ports = free_ports 2 in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let meshes = Array.make 2 None in
  let mesh_threads =
    List.init 2 (fun me ->
        Thread.create
          (fun () -> meshes.(me) <- Some (R.Tcp_mesh.create ~me ~addrs ()))
          ())
  in
  List.iter Thread.join mesh_threads;
  let m0 = Option.get meshes.(0) and m1 = Option.get meshes.(1) in
  let l10 = List.assoc 0 (R.Tcp_mesh.links m1) in
  (List.assoc 1 (R.Tcp_mesh.links m0)).send_bytes (Bytes.of_string "before");
  (match l10.recv_bytes () with
   | Some b -> Alcotest.(check string) "before crash" "before" (Bytes.to_string b)
   | None -> Alcotest.fail "expected frame before crash");
  (* Node 0 crashes: its listener and connections all go away. A reader
     must be parked on node 1's facade so the dead connection is noticed
     and the dialer re-arms (in a replica that reader is ReplicaIO). *)
  R.Tcp_mesh.close m0;
  let got = ref None in
  let reader = Thread.create (fun () -> got := l10.recv_bytes ()) () in
  (* Node 0 comes back on the same address; create blocks until node 1's
     dialer has found it again. *)
  let m0' = R.Tcp_mesh.create ~me:0 ~addrs () in
  Fun.protect
    ~finally:(fun () ->
        R.Tcp_mesh.close m0';
        R.Tcp_mesh.close m1)
  @@ fun () ->
  (List.assoc 1 (R.Tcp_mesh.links m0')).send_bytes (Bytes.of_string "after");
  Thread.join reader;
  (match !got with
   | Some b -> Alcotest.(check string) "after reconnect" "after" (Bytes.to_string b)
   | None -> Alcotest.fail "facade closed instead of reconnecting");
  Alcotest.(check bool) "survivor counted the reconnect" true
    (R.Tcp_mesh.reconnects m1 >= 1);
  Alcotest.(check int) "fresh mesh counts no reconnect" 0
    (R.Tcp_mesh.reconnects m0')

(* Online membership change at the mesh layer: a two-node mesh splices a
   third peer in mid-run (add_peer on both sides, same dial-direction
   rule as boot), retires it (remove_peer: facade reads end, sends
   drop), and re-admits it over the same slot. Sends before a link is up
   drop by design (the retransmitter covers them in a replica), so the
   test pumps frames until one lands. *)
let test_tcp_mesh_add_remove_peer () =
  let ports = free_ports 3 in
  let addr i = Unix.ADDR_INET (Unix.inet_addr_loopback, List.nth ports i) in
  let base_addrs = [ (0, addr 0); (1, addr 1) ] in
  let meshes = Array.make 2 None in
  let mesh_threads =
    List.init 2 (fun me ->
        Thread.create
          (fun () ->
             meshes.(me) <- Some (R.Tcp_mesh.create ~me ~addrs:base_addrs ()))
          ())
  in
  List.iter Thread.join mesh_threads;
  let m0 = Option.get meshes.(0) and m1 = Option.get meshes.(1) in
  (* Node 2 boots alone (its address set is just itself), then dials the
     existing members; they splice its slot in on their side. *)
  let m2 = R.Tcp_mesh.create ~me:2 ~addrs:[ (2, addr 2) ] () in
  Fun.protect
    ~finally:(fun () ->
        R.Tcp_mesh.close m2;
        R.Tcp_mesh.close m1;
        R.Tcp_mesh.close m0)
  @@ fun () ->
  let await_frame what cell =
    let deadline = Unix.gettimeofday () +. 10. in
    while !cell = None && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    match !cell with
    | Some (Some b) -> b
    | Some None -> Alcotest.failf "%s: facade closed" what
    | None -> Alcotest.failf "%s: no frame arrived" what
  in
  let l02 = R.Tcp_mesh.add_peer m0 ~peer:2 ~addr:(addr 2) in
  (* 2 > 0, so node 2's dialer initiates; node 0's acceptor splices. *)
  let l20 = R.Tcp_mesh.add_peer m2 ~peer:0 ~addr:(addr 0) in
  let up = ref None in
  ignore (Thread.create (fun () -> up := Some (l02.recv_bytes ())) ());
  (* Pump until the dial lands. *)
  let rec pump_up n =
    if !up = None && n > 0 then begin
      l20.send_bytes (Bytes.of_string "hello-up");
      Unix.sleepf 0.02;
      pump_up (n - 1)
    end
  in
  pump_up 400;
  Alcotest.(check string) "joiner's frame arrives" "hello-up"
    (Bytes.to_string (await_frame "join up" up));
  (* Reverse direction over the now-established pair; also parks the
     reader that lets node 2 notice the upcoming decommission. *)
  let down = ref None in
  ignore (Thread.create (fun () -> down := Some (l20.recv_bytes ())) ());
  l02.send_bytes (Bytes.of_string "hello-down");
  Alcotest.(check string) "reverse frame arrives" "hello-down"
    (Bytes.to_string (await_frame "join down" down));
  (* Keep a reader parked on node 2's side: it observes the connection
     death at decommission, retiring the slot so the dialer re-arms. *)
  ignore (Thread.create (fun () -> ignore (l20.recv_bytes ())) ());
  (* Decommission: node 0 retires the slot; reads end, sends drop. *)
  R.Tcp_mesh.remove_peer m0 ~peer:2;
  Alcotest.(check bool) "retired facade reads None" true
    (l02.recv_bytes () = None);
  l02.send_bytes (Bytes.of_string "dropped");
  (* Re-admission over the same slot: node 2's dialer keeps redialing,
     node 0 reopens with add_peer and the pair comes back. *)
  let l02' = R.Tcp_mesh.add_peer m0 ~peer:2 ~addr:(addr 2) in
  let back = ref None in
  ignore (Thread.create (fun () -> back := Some (l02'.recv_bytes ())) ());
  let rec pump_back n =
    if !back = None && n > 0 then begin
      l20.send_bytes (Bytes.of_string "rejoin");
      Unix.sleepf 0.05;
      pump_back (n - 1)
    end
  in
  pump_back 200;
  Alcotest.(check string) "re-admitted link carries traffic" "rejoin"
    (Bytes.to_string (await_frame "re-admission" back));
  Alcotest.(check int) "mesh 1 untouched" 0 (R.Tcp_mesh.reconnects m1)

(* Client endpoint refresh on membership change: the client keeps its
   connection when its current target survives the update in place, and
   re-targets (then steers back to the leader by rotation) when the set
   changes under it. *)
let test_tcp_client_update_addrs () =
  let n = 3 in
  let ports = free_ports n in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let cfg =
    { (Msmr_consensus.Config.default ~n) with max_batch_delay_s = 0.004 }
  in
  let links = Array.make n [] in
  let mesh_threads =
    List.init n (fun me ->
        Thread.create
          (fun () -> links.(me) <- R.Tcp_mesh.establish ~me ~addrs ())
          ())
  in
  List.iter Thread.join mesh_threads;
  let replicas =
    Array.init n (fun me ->
        R.Replica.create ~cfg ~me ~links:links.(me)
          ~service:(R.Service.accumulator ()) ())
  in
  let servers =
    Array.map (fun r -> R.Client_server.start r ~port:0) replicas
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter R.Client_server.stop servers;
        Array.iter R.Replica.stop replicas)
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.exists R.Replica.is_leader replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  let caddr i =
    Unix.ADDR_INET (Unix.inet_addr_loopback, R.Client_server.port servers.(i))
  in
  (* Node 0 leads view 0; the client starts knowing only the leader. *)
  let client =
    R.Tcp_client.create ~timeout_s:0.4 ~addrs:[ caddr 0 ] ~client_id:66 ()
  in
  Fun.protect ~finally:(fun () -> R.Tcp_client.close client) @@ fun () ->
  Alcotest.(check string) "call before refresh" "4"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "4")));
  (* Same target at the same index: the connection survives the
     refresh, no rotation happens. *)
  let before = R.Tcp_client.redirects client in
  R.Tcp_client.update_addrs client [ caddr 0; caddr 1 ];
  Alcotest.(check string) "call after compatible refresh" "9"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "5")));
  Alcotest.(check int) "no rotation for a kept connection" before
    (R.Tcp_client.redirects client);
  (* Membership changed under the client: the set is reordered, so it
     disconnects, re-targets from the head (a follower), and must rotate
     back to the leader to complete the call. *)
  R.Tcp_client.update_addrs client [ caddr 1; caddr 0 ];
  Alcotest.(check string) "call after disruptive refresh" "12"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "3")));
  Alcotest.(check bool) "rotated off the follower" true
    (R.Tcp_client.redirects client > before);
  Alcotest.check_raises "empty endpoint set rejected"
    (Invalid_argument "Tcp_client.update_addrs: no addresses") (fun () ->
        R.Tcp_client.update_addrs client [])

let suite =
  suite
  @ [ Alcotest.test_case "tcp: client failover" `Quick test_tcp_client_failover;
      Alcotest.test_case "tcp: mesh reconnects after peer restart" `Quick
        test_tcp_mesh_reconnect;
      Alcotest.test_case "tcp: mesh add/remove peer (membership)" `Quick
        test_tcp_mesh_add_remove_peer;
      Alcotest.test_case "tcp: client endpoint refresh (membership)" `Quick
        test_tcp_client_update_addrs ]
