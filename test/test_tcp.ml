(* TCP deployment path: Tcp_mesh + Client_server, a full 3-replica
   cluster over real loopback sockets driven by a framed TCP client. *)

module R = Msmr_runtime
module Client_msg = Msmr_wire.Client_msg

let free_ports k =
  (* Bind ephemeral listeners to reserve distinct ports, then release. *)
  let socks =
    List.init k (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> p
         | Unix.ADDR_UNIX _ -> assert false)
      socks
  in
  List.iter Unix.close socks;
  ports

let test_tcp_cluster_end_to_end () =
  let n = 3 in
  let ports = free_ports n in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let cfg =
    { (Msmr_consensus.Config.default ~n) with max_batch_delay_s = 0.004 }
  in
  (* Meshes must be established concurrently (establish blocks until the
     full mesh is up). *)
  let links = Array.make n [] in
  let mesh_threads =
    List.init n (fun me ->
        Thread.create
          (fun () -> links.(me) <- R.Tcp_mesh.establish ~me ~addrs ())
          ())
  in
  List.iter Thread.join mesh_threads;
  Array.iteri
    (fun me ls ->
       Alcotest.(check int)
         (Printf.sprintf "node %d link count" me)
         (n - 1) (List.length ls))
    links;
  let replicas =
    Array.init n (fun me ->
        R.Replica.create ~cfg ~me ~links:links.(me)
          ~service:(R.Service.accumulator ()) ())
  in
  let servers =
    Array.map (fun r -> R.Client_server.start r ~port:0) replicas
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter R.Client_server.stop servers;
        Array.iter R.Replica.stop replicas)
  @@ fun () ->
  (* Wait for the leader. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.exists R.Replica.is_leader replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Alcotest.(check bool) "leader elected" true
    (Array.exists R.Replica.is_leader replicas);
  (* Framed TCP client against the leader's client port. *)
  let leader_idx = ref 0 in
  Array.iteri (fun i r -> if R.Replica.is_leader r then leader_idx := i) replicas;
  let port = R.Client_server.port servers.(!leader_idx) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let call seq payload =
    let req =
      { Client_msg.id = { client_id = 77; seq }; payload = Bytes.of_string payload }
    in
    Msmr_wire.Frame.write fd (Client_msg.request_to_bytes req);
    match Msmr_wire.Frame.read fd with
    | Some raw ->
      let reply = Client_msg.reply_of_bytes raw in
      Alcotest.(check int) "seq echo" seq reply.id.seq;
      Bytes.to_string reply.result
    | None -> Alcotest.fail "connection closed"
  in
  Alcotest.(check string) "first call" "30" (call 1 "30");
  Alcotest.(check string) "second call" "42" (call 2 "12");
  Unix.close fd;
  (* Replicas converge. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.for_all (fun r -> R.Replica.executed_count r = 2) replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Array.iter
    (fun r ->
       Alcotest.(check int) "executed everywhere" 2 (R.Replica.executed_count r))
    replicas

let suite =
  [ Alcotest.test_case "tcp: 3-replica cluster end-to-end" `Quick
      test_tcp_cluster_end_to_end ]

(* Tcp_client against a live cluster, including failover. *)
let test_tcp_client_failover () =
  let n = 3 in
  let ports = free_ports n in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let cfg =
    { (Msmr_consensus.Config.default ~n) with
      max_batch_delay_s = 0.004;
      fd_interval_s = 0.04;
      fd_timeout_s = 0.2 }
  in
  let links = Array.make n [] in
  let mesh_threads =
    List.init n (fun me ->
        Thread.create
          (fun () -> links.(me) <- R.Tcp_mesh.establish ~me ~addrs ())
          ())
  in
  List.iter Thread.join mesh_threads;
  let replicas =
    Array.init n (fun me ->
        R.Replica.create ~cfg ~me ~links:links.(me)
          ~service:(R.Service.accumulator ()) ())
  in
  let servers =
    Array.map (fun r -> R.Client_server.start r ~port:0) replicas
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter R.Client_server.stop servers;
        Array.iter R.Replica.stop replicas)
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 5. in
  while
    (not (Array.exists R.Replica.is_leader replicas))
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  let client_addrs =
    Array.to_list
      (Array.map
         (fun s ->
            Unix.ADDR_INET (Unix.inet_addr_loopback, R.Client_server.port s))
         servers)
  in
  let client =
    R.Tcp_client.create ~timeout_s:0.4 ~addrs:client_addrs ~client_id:55 ()
  in
  Fun.protect ~finally:(fun () -> R.Tcp_client.close client) @@ fun () ->
  Alcotest.(check string) "first" "7"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "7")));
  (* Kill the leader's client server AND its replica: the client must
     rotate to a follower, and the cluster must elect a new leader. *)
  let leader_idx = ref 0 in
  Array.iteri (fun i r -> if R.Replica.is_leader r then leader_idx := i) replicas;
  R.Client_server.stop servers.(!leader_idx);
  R.Replica.stop replicas.(!leader_idx);
  Alcotest.(check string) "after failover" "12"
    (Bytes.to_string (R.Tcp_client.call client (Bytes.of_string "5")));
  Alcotest.(check bool) "client rotated" true (R.Tcp_client.retries client >= 1)

(* Self-healing mesh: when one endpoint's process "dies" (its whole mesh
   closes) and later comes back on the same address, the survivor's
   dialer re-establishes the connection under the same facade link —
   traffic resumes without the caller rebuilding anything, and the
   reconnect is counted. *)
let test_tcp_mesh_reconnect () =
  let ports = free_ports 2 in
  let addrs =
    List.mapi
      (fun i p -> (i, Unix.ADDR_INET (Unix.inet_addr_loopback, p)))
      ports
  in
  let meshes = Array.make 2 None in
  let mesh_threads =
    List.init 2 (fun me ->
        Thread.create
          (fun () -> meshes.(me) <- Some (R.Tcp_mesh.create ~me ~addrs ()))
          ())
  in
  List.iter Thread.join mesh_threads;
  let m0 = Option.get meshes.(0) and m1 = Option.get meshes.(1) in
  let l10 = List.assoc 0 (R.Tcp_mesh.links m1) in
  (List.assoc 1 (R.Tcp_mesh.links m0)).send_bytes (Bytes.of_string "before");
  (match l10.recv_bytes () with
   | Some b -> Alcotest.(check string) "before crash" "before" (Bytes.to_string b)
   | None -> Alcotest.fail "expected frame before crash");
  (* Node 0 crashes: its listener and connections all go away. A reader
     must be parked on node 1's facade so the dead connection is noticed
     and the dialer re-arms (in a replica that reader is ReplicaIO). *)
  R.Tcp_mesh.close m0;
  let got = ref None in
  let reader = Thread.create (fun () -> got := l10.recv_bytes ()) () in
  (* Node 0 comes back on the same address; create blocks until node 1's
     dialer has found it again. *)
  let m0' = R.Tcp_mesh.create ~me:0 ~addrs () in
  Fun.protect
    ~finally:(fun () ->
        R.Tcp_mesh.close m0';
        R.Tcp_mesh.close m1)
  @@ fun () ->
  (List.assoc 1 (R.Tcp_mesh.links m0')).send_bytes (Bytes.of_string "after");
  Thread.join reader;
  (match !got with
   | Some b -> Alcotest.(check string) "after reconnect" "after" (Bytes.to_string b)
   | None -> Alcotest.fail "facade closed instead of reconnecting");
  Alcotest.(check bool) "survivor counted the reconnect" true
    (R.Tcp_mesh.reconnects m1 >= 1);
  Alcotest.(check int) "fresh mesh counts no reconnect" 0
    (R.Tcp_mesh.reconnects m0')

let suite =
  suite
  @ [ Alcotest.test_case "tcp: client failover" `Quick test_tcp_client_failover;
      Alcotest.test_case "tcp: mesh reconnects after peer restart" `Quick
        test_tcp_mesh_reconnect ]
