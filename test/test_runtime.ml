(* Integration tests for msmr_runtime: whole replicas with all threads
   running over the in-memory hub, fault injection, and the TCP link. *)

open Msmr_runtime
module Config = Msmr_consensus.Config
module Msg = Msmr_consensus.Msg
module Client_msg = Msmr_wire.Client_msg
module Mclock = Msmr_platform.Mclock

(* Fast-paced config so tests finish quickly. *)
let test_cfg n =
  { (Config.default ~n) with
    max_batch_delay_s = 0.004;
    fd_interval_s = 0.04;
    fd_timeout_s = 0.2;
    retransmit_interval_s = 0.05;
    catchup_interval_s = 0.02 }

let with_cluster ?client_io_threads ?executor_threads ?durability ?cfg
    ?(n = 3) ?(service = Service.accumulator) f =
  let cfg = Option.value cfg ~default:(test_cfg n) in
  let cluster =
    Replica.Cluster.create ?client_io_threads ?executor_threads ?durability
      ~cfg ~service ()
  in
  Fun.protect ~finally:(fun () -> Replica.Cluster.stop cluster) (fun () ->
      f cluster)

let await ?(timeout_s = 5.0) ~what pred =
  let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s timeout_s) in
  let rec go () =
    if pred () then ()
    else if Int64.compare (Mclock.now_ns ()) deadline > 0 then
      Alcotest.failf "timeout waiting for %s" what
    else begin
      Mclock.sleep_s 0.005;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Reply cache *)

let rid c s : Client_msg.request_id = { client_id = c; seq = s }

let test_reply_cache_basics () =
  let rc = Reply_cache.create () in
  Alcotest.(check bool) "fresh" true (Reply_cache.lookup rc (rid 1 1) = Fresh);
  Reply_cache.store rc (rid 1 1) (Bytes.of_string "r1");
  (match Reply_cache.lookup rc (rid 1 1) with
   | Cached b -> Alcotest.(check string) "cached" "r1" (Bytes.to_string b)
   | _ -> Alcotest.fail "expected Cached");
  Reply_cache.store rc (rid 1 2) (Bytes.of_string "r2");
  Alcotest.(check bool) "older is stale" true
    (Reply_cache.lookup rc (rid 1 1) = Stale);
  Alcotest.(check bool) "newer is fresh" true
    (Reply_cache.lookup rc (rid 1 3) = Fresh);
  (* Monotone store: a late, out-of-order store of an old seq is a no-op. *)
  Reply_cache.store rc (rid 1 1) (Bytes.of_string "late");
  (match Reply_cache.lookup rc (rid 1 2) with
   | Cached b -> Alcotest.(check string) "kept newest" "r2" (Bytes.to_string b)
   | _ -> Alcotest.fail "expected Cached r2");
  Alcotest.(check bool) "executed check" true
    (Reply_cache.already_executed rc (rid 1 2));
  Alcotest.(check bool) "other client untouched" false
    (Reply_cache.already_executed rc (rid 2 1));
  Alcotest.(check int) "one client" 1 (Reply_cache.size rc)

(* ------------------------------------------------------------------ *)
(* Service *)

let test_null_service () =
  let s = Service.null ~reply_size:4 () in
  let reply = s.execute { id = rid 1 1; payload = Bytes.of_string "ignored" } in
  Alcotest.(check int) "reply size" 4 (Bytes.length reply);
  Alcotest.(check int) "empty snapshot" 0 (Bytes.length (s.snapshot ()))

let test_accumulator_service () =
  let s = Service.accumulator () in
  let call v = Bytes.to_string (s.execute { id = rid 1 1; payload = Bytes.of_string v }) in
  Alcotest.(check string) "3" "3" (call "3");
  Alcotest.(check string) "10" "10" (call "7");
  let snap = s.snapshot () in
  Alcotest.(check string) "snapshot" "10" (Bytes.to_string snap);
  let s2 = Service.accumulator () in
  s2.restore snap;
  Alcotest.(check string) "restored" "15"
    (Bytes.to_string (s2.execute { id = rid 1 2; payload = Bytes.of_string "5" }))

(* ------------------------------------------------------------------ *)
(* Live cluster *)

let test_cluster_elects_initial_leader () =
  with_cluster @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  Alcotest.(check int) "node 0 leads view 0" 0 (Replica.me leader);
  Alcotest.(check int) "view 0" 0 (Replica.current_view leader)

let test_cluster_basic_calls () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let client = Client.create ~cluster ~client_id:1 () in
  let r1 = Client.call client (Bytes.of_string "5") in
  Alcotest.(check string) "first" "5" (Bytes.to_string r1);
  let r2 = Client.call client (Bytes.of_string "7") in
  Alcotest.(check string) "second" "12" (Bytes.to_string r2);
  Alcotest.(check int) "calls" 2 (Client.calls_made client)

let test_cluster_replicas_converge () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let client = Client.create ~cluster ~client_id:1 () in
  for i = 1 to 50 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"all replicas executing 50 requests" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = 50) replicas);
  Array.iter
    (fun r -> Alcotest.(check int) "executed" 50 (Replica.executed_count r))
    replicas

let test_cluster_concurrent_clients () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let nclients = 8 and per_client = 25 in
  let sum = Atomic.make 0 in
  let workers =
    List.init nclients (fun c ->
        Thread.create
          (fun () ->
             let client = Client.create ~cluster ~client_id:(c + 1) () in
             for i = 1 to per_client do
               let v = (c * per_client) + i in
               ignore (Client.call client (Bytes.of_string (string_of_int v)));
               ignore (Atomic.fetch_and_add sum v)
             done)
          ())
  in
  List.iter Thread.join workers;
  let total_reqs = nclients * per_client in
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"replica convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = total_reqs) replicas);
  (* The accumulator's final value must equal the sum of all addends on
     every replica: same requests, same order, no duplicates. *)
  let probe = Client.create ~cluster ~client_id:999 () in
  let final = Client.call probe (Bytes.of_string "0") in
  Alcotest.(check string) "deterministic sum"
    (string_of_int (Atomic.get sum))
    (Bytes.to_string final)

let test_cluster_duplicate_suppression () =
  with_cluster @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  (* Send the exact same serialised request three times. *)
  let req = { Client_msg.id = rid 7 1; payload = Bytes.of_string "5" } in
  let raw = Client_msg.request_to_bytes req in
  let replies = Msmr_platform.Bounded_queue.create ~capacity:8 in
  let sink b = ignore (Msmr_platform.Bounded_queue.try_put replies b) in
  Replica.submit leader ~raw ~reply_to:sink;
  await ~what:"first execution" (fun () -> Replica.executed_count leader = 1);
  Replica.submit leader ~raw ~reply_to:sink;
  Replica.submit leader ~raw ~reply_to:sink;
  await ~what:"duplicate replies" (fun () ->
      Msmr_platform.Bounded_queue.length replies >= 3);
  Mclock.sleep_s 0.05;
  Alcotest.(check int) "executed once" 1 (Replica.executed_count leader);
  (* All three replies carry the same result. *)
  let results = ref [] in
  (try
     while true do
       match Msmr_platform.Bounded_queue.try_take replies with
       | Some raw ->
         let rep = Client_msg.reply_of_bytes raw in
         results := Bytes.to_string rep.result :: !results
       | None -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "at least 3 replies" true (List.length !results >= 3);
  List.iter (fun r -> Alcotest.(check string) "same result" "5" r) !results

let test_cluster_message_loss_recovery () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let hub = Replica.Cluster.hub cluster in
  (* 20% loss in both directions between the leader and replica 1. *)
  Transport.Hub.set_drop_rate hub ~src:0 ~dst:1 0.2;
  Transport.Hub.set_drop_rate hub ~src:1 ~dst:0 0.2;
  let client = Client.create ~cluster ~client_id:1 () in
  for i = 1 to 30 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"lossy convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = 30) replicas)

let test_cluster_leader_failover_live () =
  with_cluster @@ fun cluster ->
  let leader0 = Replica.Cluster.await_leader cluster in
  Alcotest.(check int) "initial leader" 0 (Replica.me leader0);
  let client = Client.create ~timeout_s:0.3 ~cluster ~client_id:1 () in
  ignore (Client.call client (Bytes.of_string "10"));
  (* Crash the leader. *)
  Transport.Hub.cut (Replica.Cluster.hub cluster) 0;
  (* A new leader emerges via the failure detector (timeout 0.2s). *)
  await ~timeout_s:5.0 ~what:"new leader" (fun () ->
      let rs = Replica.Cluster.replicas cluster in
      Replica.is_leader rs.(1) || Replica.is_leader rs.(2));
  (* The service keeps working; state survived. *)
  let r = Client.call client (Bytes.of_string "5") in
  Alcotest.(check string) "state preserved" "15" (Bytes.to_string r);
  Alcotest.(check bool) "client had to retry" true (Client.retries client >= 1)

let test_cluster_queue_stats () =
  with_cluster @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  let stats = Replica.queue_stats leader in
  Alcotest.(check bool) "sane" true
    (stats.request_queue >= 0 && stats.window_in_use >= 0);
  let client = Client.create ~cluster ~client_id:1 () in
  ignore (Client.call client (Bytes.of_string "1"));
  Alcotest.(check bool) "decided" true (Replica.decided_count leader >= 1)

let test_cluster_n5_live () =
  with_cluster ~n:5 @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let client = Client.create ~cluster ~client_id:1 () in
  for i = 1 to 10 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"n=5 convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = 10) replicas)

let test_cluster_single_node () =
  with_cluster ~n:1 @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let client = Client.create ~cluster ~client_id:1 () in
  Alcotest.(check string) "works alone" "4"
    (Bytes.to_string (Client.call client (Bytes.of_string "4")))

let test_cluster_null_service_throughput_smoke () =
  (* Not a benchmark: just proves the null-service pipeline sustains a
     burst without losing requests. *)
  with_cluster ~service:(fun () -> Service.null ()) @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  let done_count = Atomic.make 0 in
  let sink _ = ignore (Atomic.fetch_and_add done_count 1) in
  for i = 1 to 500 do
    let raw =
      Client_msg.request_to_bytes
        { id = { client_id = 1 + (i mod 4); seq = i }; payload = Bytes.make 16 'x' }
    in
    Replica.submit leader ~raw ~reply_to:sink
  done;
  await ~what:"500 replies" (fun () -> Atomic.get done_count >= 500)

let test_sender_flushes_counted () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let client = Client.create ~cluster ~client_id:1 () in
  for i = 1 to 10 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  (* Every inter-replica message went through a coalesced sender drain;
     the per-replica flush counters must have moved. *)
  let flushes =
    List.fold_left
      (fun acc (s : Msmr_obs.Metrics.sample) ->
         if s.name = "msmr_replica_sender_flushes" then
           match s.value with
           | Msmr_obs.Metrics.Gauge_v v -> acc +. v
           | _ -> acc
         else acc)
      0.
      (Msmr_obs.Metrics.snapshot ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "sender flushes counted (%.0f)" flushes)
    true (flushes > 0.)

let test_ephemeral_stall_is_noop () =
  (* The durability pipeline must not exist in Ephemeral mode: the stall
     hook does nothing and calls flow normally. *)
  with_cluster @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  Replica.stall_stable_storage leader true;
  let client = Client.create ~cluster ~client_id:1 () in
  Alcotest.(check string) "call proceeds while 'stalled'" "5"
    (Bytes.to_string (Client.call client (Bytes.of_string "5")));
  Replica.stall_stable_storage leader false

let test_cluster_autotune_live () =
  (* Live wiring sanity: the controller ticks on the Protocol thread and
     the published knobs stay inside the configured bounds. *)
  let cfg = { (test_cfg 3) with auto_tune = true; tune_epoch_s = 0.02 } in
  with_cluster ~cfg @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  let bsz0, wnd0 = Replica.tuned_now leader in
  Alcotest.(check int) "starts at static bsz" cfg.Config.max_batch_bytes bsz0;
  Alcotest.(check int) "starts at static wnd" cfg.Config.window wnd0;
  let client = Client.create ~cluster ~client_id:77 () in
  for i = 1 to 100 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  let bsz, wnd = Replica.tuned_now leader in
  Alcotest.(check bool) "bsz within bounds" true
    (bsz >= cfg.Config.bsz_min && bsz <= cfg.Config.bsz_max);
  Alcotest.(check bool) "wnd within bounds" true
    (wnd >= cfg.Config.wnd_min && wnd <= cfg.Config.wnd_max)

let test_hub_fault_injection () =
  let hub = Transport.Hub.create ~n:2 () in
  let l01 = Transport.Hub.link hub ~me:0 ~peer:1 in
  let l10 = Transport.Hub.link hub ~me:1 ~peer:0 in
  l01.send_bytes (Bytes.of_string "hello");
  (match l10.recv_bytes () with
   | Some b -> Alcotest.(check string) "delivered" "hello" (Bytes.to_string b)
   | None -> Alcotest.fail "expected frame");
  Transport.Hub.set_drop_rate hub ~src:0 ~dst:1 1.0;
  l01.send_bytes (Bytes.of_string "lost");
  Transport.Hub.set_drop_rate hub ~src:0 ~dst:1 0.0;
  l01.send_bytes (Bytes.of_string "after");
  (match l10.recv_bytes () with
   | Some b ->
     Alcotest.(check string) "dropped frame skipped" "after" (Bytes.to_string b)
   | None -> Alcotest.fail "expected frame");
  Alcotest.(check int) "all sends counted" 3 (Transport.Hub.frames_sent hub);
  Transport.Hub.close hub;
  Alcotest.(check bool) "closed" true (l10.recv_bytes () = None)

let test_tcp_link_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let la = Transport.Tcp.link_of_fd a in
  let lb = Transport.Tcp.link_of_fd b in
  let msg = Msg.Accept { view = 1; iid = 2; value = Msmr_consensus.Value.Noop } in
  la.send_bytes (Msg.encode msg);
  (match lb.recv_bytes () with
   | Some raw ->
     Alcotest.(check bool) "decodes" true (Msg.equal msg (Msg.decode raw))
   | None -> Alcotest.fail "expected frame");
  (* Coalesced sender path: one send_many, each frame arrives intact. *)
  let burst =
    List.init 5 (fun i ->
        Msg.encode (Msg.Decide { view = 1; iid = 10 + i }))
  in
  la.send_many burst;
  List.iteri
    (fun i expect ->
       match lb.recv_bytes () with
       | Some raw ->
         Alcotest.(check bool)
           (Printf.sprintf "burst frame %d" i)
           true
           (Bytes.equal raw expect)
       | None -> Alcotest.fail "burst frame missing")
    burst;
  la.close ();
  Alcotest.(check bool) "eof after close" true (lb.recv_bytes () = None);
  lb.close ()

let test_tcp_connect_link () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 1;
  let addr = Unix.getsockname listener in
  let accepted = ref None in
  let acceptor =
    Thread.create
      (fun () ->
         let fd, _ = Unix.accept listener in
         accepted := Some (Transport.Tcp.link_of_fd fd))
      ()
  in
  let client_link = Transport.Tcp.connect_link addr in
  Thread.join acceptor;
  let server_link = Option.get !accepted in
  client_link.send_bytes (Bytes.of_string "ping");
  (match server_link.recv_bytes () with
   | Some b -> Alcotest.(check string) "ping" "ping" (Bytes.to_string b)
   | None -> Alcotest.fail "no frame");
  server_link.send_bytes (Bytes.of_string "pong");
  (match client_link.recv_bytes () with
   | Some b -> Alcotest.(check string) "pong" "pong" (Bytes.to_string b)
   | None -> Alcotest.fail "no frame");
  client_link.close ();
  server_link.close ();
  Unix.close listener

let suite =
  [
    Alcotest.test_case "reply cache: basics" `Quick test_reply_cache_basics;
    Alcotest.test_case "service: null" `Quick test_null_service;
    Alcotest.test_case "service: accumulator" `Quick test_accumulator_service;
    Alcotest.test_case "hub: fault injection" `Quick test_hub_fault_injection;
    Alcotest.test_case "tcp: link round-trip" `Quick test_tcp_link_roundtrip;
    Alcotest.test_case "tcp: connect/accept" `Quick test_tcp_connect_link;
    Alcotest.test_case "cluster: initial leader" `Quick test_cluster_elects_initial_leader;
    Alcotest.test_case "cluster: basic calls" `Quick test_cluster_basic_calls;
    Alcotest.test_case "cluster: replicas converge" `Quick test_cluster_replicas_converge;
    Alcotest.test_case "cluster: concurrent clients" `Quick test_cluster_concurrent_clients;
    Alcotest.test_case "cluster: duplicate suppression" `Quick test_cluster_duplicate_suppression;
    Alcotest.test_case "cluster: message loss recovery" `Quick test_cluster_message_loss_recovery;
    Alcotest.test_case "cluster: leader failover (live)" `Quick test_cluster_leader_failover_live;
    Alcotest.test_case "cluster: queue stats" `Quick test_cluster_queue_stats;
    Alcotest.test_case "cluster: n=5" `Quick test_cluster_n5_live;
    Alcotest.test_case "cluster: single node" `Quick test_cluster_single_node;
    Alcotest.test_case "cluster: null service burst" `Quick test_cluster_null_service_throughput_smoke;
    Alcotest.test_case "cluster: sender flushes counted" `Quick test_sender_flushes_counted;
    Alcotest.test_case "cluster: ephemeral stall no-op" `Quick test_ephemeral_stall_is_noop;
    Alcotest.test_case "cluster: autotune live" `Quick test_cluster_autotune_live;
  ]

(* The paper's §VI-B extension in the live runtime: several Batcher
   threads sharing the RequestQueue still yield a correct, converging
   cluster with unique batch ids. *)
let test_cluster_multi_batcher () =
  let cfg = test_cfg 3 in
  let hub = Transport.Hub.create ~n:3 () in
  let replicas =
    Array.init 3 (fun me ->
        let links =
          List.filter_map
            (fun peer ->
               if peer = me then None
               else Some (peer, Transport.Hub.link hub ~me ~peer))
            [ 0; 1; 2 ]
        in
        Replica.create ~batcher_threads:3 ~cfg ~me ~links
          ~service:(Service.accumulator ()) ())
  in
  Fun.protect
    ~finally:(fun () ->
        Array.iter Replica.stop replicas;
        Transport.Hub.close hub)
  @@ fun () ->
  await ~what:"leader" (fun () -> Array.exists Replica.is_leader replicas);
  let leader = Array.get replicas 0 in
  (* Concurrent clients exercise all three batchers. *)
  let replies = Msmr_platform.Bounded_queue.create ~capacity:256 in
  for c = 1 to 6 do
    for s = 1 to 10 do
      let raw =
        Client_msg.request_to_bytes
          { id = { client_id = c; seq = s }; payload = Bytes.of_string "1" }
      in
      Replica.submit leader ~raw ~reply_to:(fun b ->
          ignore (Msmr_platform.Bounded_queue.try_put replies b))
    done
  done;
  await ~what:"60 executions" (fun () -> Replica.executed_count leader = 60);
  await ~what:"replica convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = 60) replicas);
  Array.iter
    (fun r -> Alcotest.(check int) "executed" 60 (Replica.executed_count r))
    replicas

let suite =
  suite
  @ [ Alcotest.test_case "cluster: multiple batcher threads" `Quick
        test_cluster_multi_batcher ]

(* Randomized fault-injection soak: cut and heal random replicas while
   closed-loop clients keep running; the cluster must keep making
   progress (a majority is always up) and converge afterwards, with the
   accumulator reflecting every completed call exactly once. *)
let test_cluster_fault_injection_soak () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let hub = Replica.Cluster.hub cluster in
  let rng = Random.State.make [| 2027 |] in
  let stop = Atomic.make false in
  let sum = Atomic.make 0 in
  let calls = Atomic.make 0 in
  let clients =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
             let client =
               Client.create ~timeout_s:0.3 ~cluster ~client_id:(i + 1) ()
             in
             let v = ref 0 in
             while not (Atomic.get stop) do
               incr v;
               ignore (Client.call client (Bytes.of_string (string_of_int !v)));
               ignore (Atomic.fetch_and_add sum !v);
               ignore (Atomic.fetch_and_add calls 1)
             done)
          ())
  in
  (* Chaos: 6 cut/heal cycles against a random single replica (never two
     at once, so a majority always exists). *)
  for _ = 1 to 6 do
    let victim = Random.State.int rng 3 in
    Transport.Hub.cut hub victim;
    Mclock.sleep_s (0.15 +. Random.State.float rng 0.2);
    Transport.Hub.heal hub victim;
    Mclock.sleep_s (0.1 +. Random.State.float rng 0.1)
  done;
  Atomic.set stop true;
  List.iter Thread.join clients;
  let total = Atomic.get calls in
  Alcotest.(check bool)
    (Printf.sprintf "made progress through faults (%d calls)" total)
    true (total > 20);
  (* Heal everything and check convergence + exactly-once execution. *)
  let replicas = Replica.Cluster.replicas cluster in
  await ~timeout_s:10. ~what:"post-chaos convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = total) replicas);
  let probe = Client.create ~cluster ~client_id:99 () in
  Alcotest.(check string) "exactly-once sum"
    (string_of_int (Atomic.get sum))
    (Bytes.to_string (Client.call probe (Bytes.of_string "0")))

(* ------------------------------------------------------------------ *)
(* Parallel conflict-aware ServiceManager (executor pool). *)

module Kv = Msmr_kv.Kv_service

let kv_call client cmd =
  match Kv.decode_reply (Client.call client (Kv.encode_command cmd)) with
  | rep -> rep
  | exception _ -> Alcotest.fail "undecodable kv reply"

(* Conflicting commands keep their decide order, disjoint ones may run
   concurrently: clients 1-3 all increment one shared key while clients
   4-6 each own a private key; every increment must land exactly once on
   every replica, so the final counters equal the call counts. *)
let test_cluster_executors_kv_ordering () =
  with_cluster ~executor_threads:4 ~service:(fun () -> Kv.make ())
  @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let per_client = 20 in
  let workers =
    List.init 6 (fun i ->
        let c = i + 1 in
        Thread.create
          (fun () ->
             let client = Client.create ~cluster ~client_id:c () in
             let key =
               if c <= 3 then "shared" else Printf.sprintf "own-%d" c
             in
             for _ = 1 to per_client do
               match kv_call client (Kv.Incr { key; by = 1 }) with
               | Kv.Ok_int _ -> ()
               | _ -> Alcotest.fail "expected Ok_int"
             done)
          ())
  in
  List.iter Thread.join workers;
  let total = 6 * per_client in
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"executor convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = total) replicas);
  let probe = Client.create ~cluster ~client_id:99 () in
  (match kv_call probe (Kv.Get "shared") with
   | Kv.Ok_value (Some v) ->
     Alcotest.(check string) "shared key sum" "60" v
   | _ -> Alcotest.fail "missing shared key");
  for c = 4 to 6 do
    match kv_call probe (Kv.Get (Printf.sprintf "own-%d" c)) with
    | Kv.Ok_value (Some v) -> Alcotest.(check string) "own key" "20" v
    | _ -> Alcotest.fail "missing own key"
  done;
  (* A Global command (prefix scan) sees a consistent quiesced state. *)
  match kv_call probe (Kv.List_keys "") with
  | Kv.Ok_keys keys -> Alcotest.(check int) "all keys present" 4 (List.length keys)
  | _ -> Alcotest.fail "expected Ok_keys"

(* Regression: a client's commands on distinct keys land on different
   executors, so out of decide order a later command can finish first.
   At-most-once must therefore be decided by the scheduler in decide
   order (the dispatch frontier) — an executor-side newest-seq check
   would wrongly suppress the earlier, still-fresh command (observed
   live as followers permanently under-executing). *)
let test_cluster_executors_pipelined_client () =
  with_cluster ~executor_threads:4 ~service:(fun () -> Kv.make ())
  @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  let n = 300 in
  let replies = Msmr_platform.Bounded_queue.create ~capacity:(n + 8) in
  let sink b = ignore (Msmr_platform.Bounded_queue.try_put replies b) in
  for s = 1 to n do
    let raw =
      Client_msg.request_to_bytes
        { id = rid 9 s;
          payload =
            Kv.encode_command
              (Kv.Incr { key = Printf.sprintf "pk-%d" s; by = 1 }) }
    in
    Replica.submit leader ~raw ~reply_to:sink
  done;
  await ~what:"all pipelined replies" (fun () ->
      Msmr_platform.Bounded_queue.length replies >= n);
  Array.iter
    (fun r ->
       await ~what:"replica executed every command" (fun () ->
           Replica.executed_count r = n))
    (Replica.Cluster.replicas cluster);
  let client = Client.create ~cluster ~client_id:10 () in
  match kv_call client (Kv.List_keys "pk-") with
  | Kv.Ok_keys keys ->
    Alcotest.(check int) "one key per command" n (List.length keys)
  | _ -> Alcotest.fail "expected Ok_keys"

(* At-most-once survives parallel execution: the scheduler's dispatch
   frontier rejects duplicate sequence numbers in decide order and
   resends the cached reply. *)
let test_cluster_executors_duplicate_suppression () =
  with_cluster ~executor_threads:4 ~service:(fun () -> Kv.make ())
  @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  let raw =
    Client_msg.request_to_bytes
      { id = rid 7 1; payload = Kv.encode_command (Kv.Incr { key = "k"; by = 3 }) }
  in
  let replies = Msmr_platform.Bounded_queue.create ~capacity:8 in
  let sink b = ignore (Msmr_platform.Bounded_queue.try_put replies b) in
  Replica.submit leader ~raw ~reply_to:sink;
  await ~what:"first execution" (fun () -> Replica.executed_count leader = 1);
  Replica.submit leader ~raw ~reply_to:sink;
  Replica.submit leader ~raw ~reply_to:sink;
  await ~what:"duplicate replies" (fun () ->
      Msmr_platform.Bounded_queue.length replies >= 3);
  Mclock.sleep_s 0.05;
  Alcotest.(check int) "executed once" 1 (Replica.executed_count leader);
  let rec check_all () =
    match Msmr_platform.Bounded_queue.try_take replies with
    | None -> ()
    | Some raw ->
      let rep = Client_msg.reply_of_bytes raw in
      (match Kv.decode_reply rep.result with
       | Kv.Ok_int 3 -> ()
       | _ -> Alcotest.fail "duplicate reply differs");
      check_all ()
  in
  check_all ()

(* Snapshots run against a quiesced pool: with snapshot_every low enough
   to fire many times mid-workload, no increment is lost or doubled. *)
let test_cluster_executors_snapshot_quiescence () =
  let cfg = { (test_cfg 3) with snapshot_every = 5 } in
  with_cluster ~executor_threads:4 ~cfg ~service:(fun () -> Kv.make ())
  @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let workers =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
             let client = Client.create ~cluster ~client_id:(i + 1) () in
             for k = 1 to 25 do
               let key = Printf.sprintf "key-%d" (k mod 7) in
               ignore (kv_call client (Kv.Incr { key; by = 1 }))
             done)
          ())
  in
  List.iter Thread.join workers;
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"snapshot-era convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = 100) replicas);
  let probe = Client.create ~cluster ~client_id:42 () in
  let sum = ref 0 in
  for k = 0 to 6 do
    match kv_call probe (Kv.Get (Printf.sprintf "key-%d" k)) with
    | Kv.Ok_value (Some v) -> sum := !sum + int_of_string v
    | Kv.Ok_value None -> ()
    | _ -> Alcotest.fail "expected Ok_value"
  done;
  Alcotest.(check int) "every increment exactly once" 100 !sum

(* A service that classifies everything Global (the accumulator) must
   stay exactly-once and ordered under an executor pool: every command
   takes the quiescence barrier and runs serially. *)
let test_cluster_executors_global_service () =
  with_cluster ~executor_threads:4 @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let nclients = 4 and per_client = 15 in
  let sum = Atomic.make 0 in
  let workers =
    List.init nclients (fun c ->
        Thread.create
          (fun () ->
             let client = Client.create ~cluster ~client_id:(c + 1) () in
             for i = 1 to per_client do
               let v = (c * per_client) + i in
               ignore (Client.call client (Bytes.of_string (string_of_int v)));
               ignore (Atomic.fetch_and_add sum v)
             done)
          ())
  in
  List.iter Thread.join workers;
  let total_reqs = nclients * per_client in
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"global-service convergence" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = total_reqs) replicas);
  let probe = Client.create ~cluster ~client_id:999 () in
  Alcotest.(check string) "deterministic sum"
    (string_of_int (Atomic.get sum))
    (Bytes.to_string (Client.call probe (Bytes.of_string "0")))

(* The mutex spine ([lockfree = false]) and the lock-free spine with
   work-stealing executors must be observably identical: same replies,
   same final replicated state for the same workload. *)
let test_cluster_lockfree_matches_mutex () =
  let run ~lockfree ~steal =
    let cfg = { (test_cfg 3) with Config.lockfree; steal } in
    with_cluster ~cfg ~executor_threads:4 ~service:(fun () -> Kv.make ())
    @@ fun cluster ->
    ignore (Replica.Cluster.await_leader cluster);
    let client = Client.create ~cluster ~client_id:1 () in
    for i = 1 to 40 do
      let key = Printf.sprintf "k%d" (i mod 5) in
      match kv_call client (Kv.Incr { key; by = i }) with
      | Kv.Ok_int _ -> ()
      | _ -> Alcotest.fail "expected Ok_int"
    done;
    match kv_call client (Kv.List_keys "") with
    | Kv.Ok_keys keys ->
      List.sort compare
        (List.map
           (fun k ->
             match kv_call client (Kv.Get k) with
             | Kv.Ok_value (Some v) -> (k, v)
             | _ -> Alcotest.fail "missing key")
           keys)
    | _ -> Alcotest.fail "expected Ok_keys"
  in
  let mutex_state = run ~lockfree:false ~steal:false in
  let lf_state = run ~lockfree:true ~steal:true in
  Alcotest.(check (list (pair string string)))
    "same final state" mutex_state lf_state

(* ------------------------------------------------------------------ *)
(* Fault controller: crash-shaped kill/restart of live replicas. *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let fresh_wal_dirs tag n =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "msmr-test-%s-%d" tag (Unix.getpid ()))
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  let dirs =
    Array.init n (fun i ->
        let d = Filename.concat root (string_of_int i) in
        Unix.mkdir d 0o755;
        d)
  in
  (root, dirs)

(* Kill the leader of a durable cluster through the fault controller,
   let the survivors elect, then restart the victim: the new incarnation
   re-enters WAL recovery and must catch back up to the live tail. The
   survivors' fault counters and the client's retry/redirect counters
   must all have registered the crash. *)
let test_fault_controller_kill_restart_durable () =
  let root, dirs = fresh_wal_dirs "fc" 3 in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let durability i =
    Replica.Durable { dir = dirs.(i); sync = Msmr_storage.Wal.No_sync }
  in
  with_cluster ~durability @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let fc = Fault_controller.create ~cluster () in
  let client = Client.create ~timeout_s:0.3 ~cluster ~client_id:1 () in
  ignore (Client.call client (Bytes.of_string "10"));
  let victim = Fault_controller.kill_leader fc in
  Alcotest.(check int) "killed the initial leader" 0 victim;
  Alcotest.(check int) "one kill" 1 (Fault_controller.kills fc);
  await ~what:"new leader after crash" (fun () ->
      let rs = Replica.Cluster.replicas cluster in
      Replica.is_leader rs.(1) || Replica.is_leader rs.(2));
  (* Progress with the victim down; service state survived the view
     change. *)
  Alcotest.(check string) "state preserved" "15"
    (Bytes.to_string (Client.call client (Bytes.of_string "5")));
  Alcotest.(check bool) "client retried" true (Client.retries client >= 1);
  Alcotest.(check bool) "client redirected" true (Client.redirects client >= 1);
  let rs = Replica.Cluster.replicas cluster in
  Alcotest.(check bool) "a survivor suspected the dead leader" true
    (Replica.suspects_count rs.(1) >= 1 || Replica.suspects_count rs.(2) >= 1);
  Alcotest.(check bool) "a survivor changed view" true
    (Replica.view_changes_count rs.(1) >= 1
     || Replica.view_changes_count rs.(2) >= 1);
  (* Restart: WAL recovery plus catchup back to the live tail. *)
  let restarted = Fault_controller.restart fc victim in
  Alcotest.(check int) "one restart" 1 (Fault_controller.restarts fc);
  Alcotest.(check bool) "restart replaced the cluster slot" true
    ((Replica.Cluster.replicas cluster).(victim) == restarted);
  ignore (Client.call client (Bytes.of_string "3"));
  await ~timeout_s:10. ~what:"restarted replica catches up" (fun () ->
      Array.for_all
        (fun r -> Replica.executed_count r = 3)
        (Replica.Cluster.replicas cluster));
  Alcotest.(check string) "sum intact across crash+recovery" "18"
    (Bytes.to_string (Client.call client (Bytes.of_string "0")))

(* Catchup under loss: follower 2 loses every frame from the leader
   while a batch of commands decides, so it misses their Accept/Decide
   range entirely and can only recover it through Catchup_query /
   Catchup_reply (via node 1 during the outage, or the leader after the
   heal). Convergence plus the exactly-once sum proves the recovered
   range was applied once, in order. *)
let test_cluster_catchup_under_loss_live () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let hub = Replica.Cluster.hub cluster in
  Transport.Hub.set_drop_rate hub ~src:0 ~dst:2 1.0;
  let client = Client.create ~timeout_s:0.5 ~cluster ~client_id:1 () in
  for i = 1 to 30 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  Transport.Hub.set_drop_rate hub ~src:0 ~dst:2 0.0;
  await ~timeout_s:10. ~what:"catchup convergence after loss" (fun () ->
      Array.for_all
        (fun r -> Replica.executed_count r = 30)
        (Replica.Cluster.replicas cluster));
  let probe = Client.create ~cluster ~client_id:9 () in
  Alcotest.(check string) "exactly-once sum" "465"
    (Bytes.to_string (Client.call probe (Bytes.of_string "0")))

(* Cluster.kill / Cluster.restart directly, on an ephemeral follower:
   the fresh incarnation starts empty and rebuilds the full executed
   prefix from its peers. *)
let test_cluster_kill_restart_ephemeral_follower () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let client = Client.create ~cluster ~client_id:1 () in
  for i = 1 to 10 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  Replica.Cluster.kill cluster 2;
  for i = 11 to 20 do
    ignore (Client.call client (Bytes.of_string (string_of_int i)))
  done;
  ignore (Replica.Cluster.restart cluster 2);
  await ~timeout_s:10. ~what:"ephemeral restart catches up" (fun () ->
      Array.for_all
        (fun r -> Replica.executed_count r = 20)
        (Replica.Cluster.replicas cluster));
  let probe = Client.create ~cluster ~client_id:9 () in
  Alcotest.(check string) "exactly-once sum" "210"
    (Bytes.to_string (Client.call probe (Bytes.of_string "0")))

(* ------------------------------------------------------------------ *)
(* Online membership change (DESIGN.md section 17): grow 3 -> 5 under
   load with snapshot-based state transfer, then shrink back, all while
   a client keeps the accumulator moving. *)

let reconfig_cfg n =
  { (test_cfg n) with
    members0 = [ 0; 1; 2 ];
    (* Small snapshot/retention so a joiner must bootstrap from a real
       snapshot install, not a log replay from instance 0. *)
    snapshot_every = 10;
    log_retain = 4 }

let test_cluster_grow_shrink_live () =
  with_cluster ~cfg:(reconfig_cfg 5) ~n:5 @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let replicas = Replica.Cluster.replicas cluster in
  Alcotest.(check bool) "spare 3 starts outside" false
    (Replica.is_member replicas.(3));
  Alcotest.(check bool) "member 1 starts inside" true
    (Replica.is_member replicas.(1));
  (* Enough history that the leader's log is truncated behind its
     snapshots before anyone joins. *)
  let client = Client.create ~cluster ~client_id:1 () in
  for _ = 1 to 40 do
    ignore (Client.call client (Bytes.of_string "1"))
  done;
  (* Closed-loop load through the whole reconfiguration. *)
  let loader_stop = Atomic.make false in
  let loader_calls = Atomic.make 0 in
  let loader =
    Thread.create
      (fun () ->
         let c = Client.create ~timeout_s:0.5 ~cluster ~client_id:2 () in
         while not (Atomic.get loader_stop) do
           ignore (Client.call c (Bytes.of_string "1"));
           Atomic.incr loader_calls
         done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
        Atomic.set loader_stop true;
        Thread.join loader)
  @@ fun () ->
  (* Grow 3 -> 5: each joiner enters as a learner, state-transfers, and
     is promoted to voter. *)
  Replica.Cluster.join cluster 3;
  Replica.Cluster.join cluster 4;
  let ld = Replica.Cluster.leader cluster in
  let m = Replica.membership ld in
  Alcotest.(check int) "five voters" 5
    (Msmr_consensus.Membership.n_voters m);
  Alcotest.(check bool) "3 a voter" true
    (Msmr_consensus.Membership.is_voter m 3);
  Alcotest.(check bool) "4 a voter" true
    (Msmr_consensus.Membership.is_voter m 4);
  (* The joiners bootstrapped through snapshot installs, and everyone
     counted the epoch adoptions. *)
  Alcotest.(check bool) "joiner 3 installed a snapshot" true
    (Replica.snapshot_installs_count replicas.(3) >= 1);
  Alcotest.(check bool) "leader adopted epochs" true
    (Replica.reconfigs_applied_count ld >= 4);
  (* Shrink 5 -> 3: decommissioned nodes keep running but are fenced. *)
  Replica.Cluster.decommission cluster 4;
  Replica.Cluster.decommission cluster 3;
  let ld = Replica.Cluster.leader cluster in
  Alcotest.(check int) "back to three voters" 3
    (Msmr_consensus.Membership.n_voters (Replica.membership ld));
  await ~what:"removed nodes fence themselves" (fun () ->
      (not (Replica.is_member replicas.(3)))
      && not (Replica.is_member replicas.(4)));
  Atomic.set loader_stop true;
  Thread.join loader;
  (* Exactly-once through the whole change: the accumulator equals the
     number of increments that were ever acknowledged. *)
  let total = 40 + Atomic.get loader_calls in
  Alcotest.(check string) "exactly-once sum across reconfigs"
    (string_of_int total)
    (Bytes.to_string (Client.call client (Bytes.of_string "0")))

(* Crash during state transfer: the joiner dies while it is a learner
   mid-bootstrap, restarts empty, and must still reach the voting set
   without ever having counted toward a quorum. *)
let test_cluster_join_crash_during_transfer () =
  with_cluster ~cfg:(reconfig_cfg 4) ~n:4 @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let fc = Fault_controller.create ~cluster () in
  let client = Client.create ~timeout_s:0.5 ~cluster ~client_id:1 () in
  for _ = 1 to 30 do
    ignore (Client.call client (Bytes.of_string "1"))
  done;
  (* Learner only — state transfer starts, no voting rights yet. *)
  Fault_controller.join fc ~promote:false 3;
  Alcotest.(check int) "one join" 1 (Fault_controller.joins fc);
  (* Crash the joiner mid-transfer; the cluster must not notice: its
     quorums never included the learner. *)
  Fault_controller.kill fc 3;
  for _ = 1 to 10 do
    ignore (Client.call client (Bytes.of_string "1"))
  done;
  ignore (Fault_controller.restart fc 3);
  (* Completing the join is idempotent: the add_learner step is already
     adopted, so this waits out the (restarted) state transfer and
     promotes. *)
  Fault_controller.join fc 3;
  let ld = Replica.Cluster.leader cluster in
  Alcotest.(check bool) "joiner reached the voting set" true
    (Msmr_consensus.Membership.is_voter (Replica.membership ld) 3);
  for _ = 1 to 5 do
    ignore (Client.call client (Bytes.of_string "1"))
  done;
  let replicas = Replica.Cluster.replicas cluster in
  (* A snapshot-bootstrapped node never re-executes the snapshotted
     prefix, so compare log frontiers, not executed counts. *)
  let target = Replica.first_undecided (Replica.Cluster.leader cluster) in
  await ~timeout_s:10. ~what:"restarted joiner converges" (fun () ->
      Replica.first_undecided replicas.(3) >= target);
  (* Safety: the sum reflects every acknowledged increment exactly
     once, across learner crash, restart and promotion. *)
  Alcotest.(check string) "exactly-once sum" "45"
    (Bytes.to_string (Client.call client (Bytes.of_string "0")));
  Fault_controller.decommission fc 3;
  Alcotest.(check int) "one decommission" 1 (Fault_controller.decommissions fc);
  Alcotest.(check bool) "removed again" false
    (Msmr_consensus.Membership.is_member
       (Replica.membership (Replica.Cluster.leader cluster)) 3)

let suite =
  suite
  @ [ Alcotest.test_case "cluster: fault-injection soak" `Slow
        test_cluster_fault_injection_soak;
      Alcotest.test_case "cluster: grow 3->5, shrink 5->3 under load" `Quick
        test_cluster_grow_shrink_live;
      Alcotest.test_case "cluster: joiner crash during state transfer" `Quick
        test_cluster_join_crash_during_transfer;
      Alcotest.test_case "cluster: fault controller kill/restart (durable)"
        `Quick test_fault_controller_kill_restart_durable;
      Alcotest.test_case "cluster: catchup under loss (live)" `Quick
        test_cluster_catchup_under_loss_live;
      Alcotest.test_case "cluster: kill/restart ephemeral follower" `Quick
        test_cluster_kill_restart_ephemeral_follower;
      Alcotest.test_case "cluster: executors keep kv ordering" `Quick
        test_cluster_executors_kv_ordering;
      Alcotest.test_case "cluster: executors handle pipelined client" `Quick
        test_cluster_executors_pipelined_client;
      Alcotest.test_case "cluster: executors suppress duplicates" `Quick
        test_cluster_executors_duplicate_suppression;
      Alcotest.test_case "cluster: lock-free spine matches mutex spine" `Quick
        test_cluster_lockfree_matches_mutex;
      Alcotest.test_case "cluster: executors quiesce for snapshots" `Quick
        test_cluster_executors_snapshot_quiescence;
      Alcotest.test_case "cluster: executors with Global-only service" `Quick
        test_cluster_executors_global_service ]

(* ------------------------------------------------------------------ *)
(* Multi-group Paxos: the router partition function and the sharded
   in-process cluster (Replica_group). *)

let test_router_partition () =
  let groups = 4 in
  let keys = List.init 64 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter
    (fun k ->
       let g = Router.group_of_key ~groups k in
       Alcotest.(check bool) "in range" true (g >= 0 && g < groups);
       Alcotest.(check int) "stable" g (Router.group_of_key ~groups k))
    keys;
  Alcotest.(check bool) "hash actually spreads keys" true
    (List.length
       (List.sort_uniq compare (List.map (Router.group_of_key ~groups) keys))
     > 1);
  Alcotest.(check int) "groups=1 degenerates to 0" 0
    (Router.group_of_key ~groups:1 "anything");
  Alcotest.(check int) "client partition is cid mod groups" 3
    (Router.group_of_client ~groups 7);
  Alcotest.(check bool) "groups < 1 rejected" true
    (try
       ignore (Router.group_of_key ~groups:0 "x");
       false
     with Invalid_argument _ -> true)

let test_router_targets () =
  let groups = 4 in
  let t c = Router.target_of_conflict ~groups ~fallback:9 c in
  Alcotest.(check bool) "Global stays Global" true
    (t Service.Global = Router.Global);
  Alcotest.(check bool) "no keys falls back to the client's group" true
    (t (Service.Keys []) = Router.Group (Router.group_of_client ~groups 9));
  let g_a = Router.group_of_key ~groups "a" in
  Alcotest.(check bool) "single key routes to its group" true
    (t (Service.Keys [ "a" ]) = Router.Group g_a);
  Alcotest.(check bool) "same-group key set stays grouped" true
    (t (Service.Keys [ "a"; "a" ]) = Router.Group g_a);
  (* A key set spanning two groups cannot be ordered by one log. *)
  let rec other_group i =
    let k = Printf.sprintf "probe-%d" i in
    if Router.group_of_key ~groups k <> g_a then k else other_group (i + 1)
  in
  Alcotest.(check bool) "spanning key set promoted to Global" true
    (t (Service.Keys [ "a"; other_group 0 ]) = Router.Global)

(* A keyed counter: payload "k:v" adds v to counter k (conflict class k)
   and replies with the new value; any other payload is Global and
   replies with the sum of this instance's counters. State is
   partitioned across groups, so a group's instance only ever holds its
   own partition's keys. *)
let keyed_counter () =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let parse payload =
    match String.index_opt payload ':' with
    | Some i ->
      Some
        ( String.sub payload 0 i,
          int_of_string
            (String.sub payload (i + 1) (String.length payload - i - 1)) )
    | None -> None
  in
  Service.make
    ~conflict_keys:(fun (req : Client_msg.request) ->
        match parse (Bytes.to_string req.payload) with
        | Some (k, _) -> Service.Keys [ k ]
        | None -> Service.Global)
    ~execute:(fun req ->
        match parse (Bytes.to_string req.payload) with
        | Some (k, v) ->
          let v' = Option.value (Hashtbl.find_opt tbl k) ~default:0 + v in
          Hashtbl.replace tbl k v';
          Bytes.of_string (string_of_int v')
        | None ->
          Bytes.of_string
            (string_of_int (Hashtbl.fold (fun _ v acc -> acc + v) tbl 0)))
    ~snapshot:(fun () ->
        Bytes.of_string
          (String.concat ";"
             (List.sort compare
                (Hashtbl.fold
                   (fun k v acc -> Printf.sprintf "%s:%d" k v :: acc)
                   tbl []))))
    ~restore:(fun b ->
        Hashtbl.reset tbl;
        List.iter
          (fun s ->
             match String.index_opt s ':' with
             | Some i ->
               Hashtbl.replace tbl (String.sub s 0 i)
                 (int_of_string
                    (String.sub s (i + 1) (String.length s - i - 1)))
             | None -> ())
          (String.split_on_char ';' (Bytes.to_string b)))
    ()

let with_group ?(groups = 2) ?proxy_leaders f =
  let rg =
    Replica_group.create ?proxy_leaders ~groups ~cfg:(test_cfg 3)
      ~service:(fun ~gid:_ -> keyed_counter ())
      ()
  in
  Fun.protect ~finally:(fun () -> Replica_group.stop rg) (fun () -> f rg)

let rg_call rg ~client_id ~seq payload =
  let raw =
    Client_msg.request_to_bytes
      { Client_msg.id = { client_id; seq }; payload = Bytes.of_string payload }
  in
  let box = Msmr_platform.Bounded_queue.create ~capacity:1 in
  Replica_group.submit rg ~raw ~reply_to:(fun b ->
      ignore (Msmr_platform.Bounded_queue.try_put box b));
  match Msmr_platform.Bounded_queue.take_timeout box ~timeout_s:5.0 with
  | Some raw -> Bytes.to_string (Client_msg.reply_of_bytes raw).result
  | None -> Alcotest.failf "no reply for %S" payload

(* A key guaranteed to route to group [g] of [groups]. *)
let key_in_group ~groups g =
  let rec go i =
    let k = Printf.sprintf "k%d-%d" g i in
    if Router.group_of_key ~groups k = g then k else go (i + 1)
  in
  go 0

let test_replica_group_partitions () =
  with_group @@ fun rg ->
  Replica_group.await_leaders rg;
  let k0 = key_in_group ~groups:2 0 and k1 = key_in_group ~groups:2 1 in
  (* Interleaved increments: each key's counter accumulates in order
     inside its own group's log, independent of the other group. *)
  Alcotest.(check string) "k0 first" "5"
    (rg_call rg ~client_id:1 ~seq:1 (k0 ^ ":5"));
  Alcotest.(check string) "k1 first" "7"
    (rg_call rg ~client_id:1 ~seq:2 (k1 ^ ":7"));
  Alcotest.(check string) "k0 second" "6"
    (rg_call rg ~client_id:1 ~seq:3 (k0 ^ ":1"));
  Alcotest.(check string) "k1 second" "9"
    (rg_call rg ~client_id:1 ~seq:4 (k1 ^ ":2"));
  Alcotest.(check int) "router counted every request" 4
    (Replica_group.routed_count rg);
  Alcotest.(check int) "no globals yet" 0 (Replica_group.globals_count rg);
  (* Each group ordered exactly its own partition. *)
  let executed gid =
    Replica.executed_count
      (Replica.Cluster.await_leader (Replica_group.cluster rg ~gid))
  in
  Alcotest.(check int) "group 0 executed its two" 2 (executed 0);
  Alcotest.(check int) "group 1 executed its two" 2 (executed 1);
  (* Group leadership is spread: group 1's initial leader is node 1. *)
  Alcotest.(check int) "group 1 led by node 1" 1
    (Replica.me (Replica.Cluster.await_leader (Replica_group.cluster rg ~gid:1)))

let test_replica_group_global_barrier () =
  with_group @@ fun rg ->
  Replica_group.await_leaders rg;
  let k0 = key_in_group ~groups:2 0 and k1 = key_in_group ~groups:2 1 in
  ignore (rg_call rg ~client_id:1 ~seq:1 (k0 ^ ":5"));
  ignore (rg_call rg ~client_id:1 ~seq:2 (k1 ^ ":7"));
  (* The Global executes through group 0's log after both groups have
     quiesced: its reply reflects group 0's partition of the state. *)
  Alcotest.(check string) "global sees group 0's partition" "5"
    (rg_call rg ~client_id:1 ~seq:3 "sum");
  Alcotest.(check int) "one barrier crossing" 1
    (Replica_group.globals_count rg);
  (* The gate reopened: keyed traffic flows again afterwards. *)
  Alcotest.(check string) "traffic resumes" "6"
    (rg_call rg ~client_id:1 ~seq:4 (k0 ^ ":1"))

let test_replica_group_proxy_leaders () =
  (* Same workload through the ProxyLeader fan-out stage: multicasts
     leave via proxy threads instead of the Protocol thread. *)
  with_group ~proxy_leaders:1 @@ fun rg ->
  Replica_group.await_leaders rg;
  let k0 = key_in_group ~groups:2 0 and k1 = key_in_group ~groups:2 1 in
  for i = 1 to 10 do
    let k = if i mod 2 = 0 then k0 else k1 in
    ignore (rg_call rg ~client_id:1 ~seq:i (k ^ ":1"))
  done;
  Alcotest.(check int) "all routed" 10 (Replica_group.routed_count rg);
  (* The proxies actually carried fan-out: each group's leader multicast
     its Accepts through the proxy queue. *)
  let fanout gid =
    let leader = Replica.Cluster.await_leader (Replica_group.cluster rg ~gid) in
    Replica.proxy_fanout_count leader
  in
  Alcotest.(check bool)
    (Printf.sprintf "proxy fan-out counted (%d, %d)" (fanout 0) (fanout 1))
    true
    (fanout 0 > 0 && fanout 1 > 0)

let suite =
  suite
  @ [ Alcotest.test_case "router: key partition" `Quick test_router_partition;
      Alcotest.test_case "router: conflict targets" `Quick test_router_targets;
      Alcotest.test_case "replica group: partitions and replies" `Quick
        test_replica_group_partitions;
      Alcotest.test_case "replica group: cross-group Global barrier" `Quick
        test_replica_group_global_barrier;
      Alcotest.test_case "replica group: proxy-leader fan-out" `Quick
        test_replica_group_proxy_leaders ]

(* ------------------------------------------------------------------ *)
(* Read fast path (leases) on the live cluster *)

let lease_test_cfg n =
  { (test_cfg n) with
    Config.lease_enabled = true; lease_duration_s = 0.4;
    clock_skew_bound_s = 0.02 }

let await_lease cluster =
  let leader = Replica.Cluster.await_leader cluster in
  await ~what:"leader lease" (fun () -> Replica.lease_held leader);
  leader

let test_cluster_linearizable_read () =
  with_cluster ~cfg:(lease_test_cfg 3) @@ fun cluster ->
  let leader = await_lease cluster in
  Alcotest.(check bool) "renewal rounds ran" true
    (Replica.lease_renewals_count leader >= 1);
  let client = Client.create ~cluster ~client_id:1 () in
  ignore (Client.call client (Bytes.of_string "5"));
  ignore (Client.call client (Bytes.of_string "7"));
  (* An accumulator read is an add of 0: returns the state, mutates
     nothing. *)
  let r = Client.read client (Bytes.of_string "0") in
  Alcotest.(check string) "read sees both writes" "12" (Bytes.to_string r);
  Alcotest.(check bool) "served on the fast path" true
    (Replica.reads_served_count leader >= 1);
  (* The fast path really bypassed ordering: only the two writes were
     ordered and executed. *)
  Alcotest.(check int) "reads not ordered" 2 (Replica.executed_count leader)

let test_follower_rejects_linearizable_read () =
  with_cluster ~cfg:(lease_test_cfg 3) @@ fun cluster ->
  ignore (await_lease cluster);
  let follower = (Replica.Cluster.replicas cluster).(1) in
  let raw =
    Client_msg.read_to_bytes
      { Client_msg.id = rid 1 1; staleness_ns = Client_msg.linearizable;
        payload = Bytes.of_string "0" }
  in
  let box = Msmr_platform.Bounded_queue.create ~capacity:1 in
  Replica.submit follower ~raw ~reply_to:(fun b ->
      ignore (Msmr_platform.Bounded_queue.try_put box b));
  (match Msmr_platform.Bounded_queue.take_timeout box ~timeout_s:5.0 with
   | Some b ->
     (match (Client_msg.read_reply_of_bytes b).status with
      | Client_msg.Not_leaseholder hint ->
        Alcotest.(check int) "redirect hint names the leader" 0 hint
      | _ -> Alcotest.fail "expected Not_leaseholder")
   | None -> Alcotest.fail "no reply");
  Alcotest.(check bool) "rejection counted" true
    (Replica.reads_rejected_count follower >= 1)

let test_stale_reads_spread_and_redirect () =
  with_cluster ~cfg:(lease_test_cfg 3) @@ fun cluster ->
  ignore (await_lease cluster);
  (* client_id 1 aims its first stale attempt at replica 1 (a follower). *)
  let client = Client.create ~cluster ~client_id:1 () in
  ignore (Client.call client (Bytes.of_string "3"));
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"followers applying the write" (fun () ->
      Array.for_all (fun r -> Replica.executed_count r = 1) replicas);
  (* A generous bound is servable at the caught-up follower. *)
  let r = Client.read_stale client ~staleness_s:5.0 (Bytes.of_string "0") in
  Alcotest.(check string) "stale read correct" "3" (Bytes.to_string r);
  let stale_served =
    Array.fold_left (fun a r -> a + Replica.stale_reads_served_count r) 0
      replicas
  in
  Alcotest.(check bool) "served somewhere on the stale path" true
    (stale_served >= 1);
  (* A zero bound is only provable at the leaseholder: the follower
     bounces the read with a leader hint and the client follows it. *)
  let r = Client.read_stale client ~staleness_s:0.0 (Bytes.of_string "0") in
  Alcotest.(check string) "tight bound still correct" "3" (Bytes.to_string r);
  Alcotest.(check bool) "redirect taken and counted" true
    (Client.read_redirects client >= 1)

let test_reads_unsupported_without_lease () =
  with_cluster @@ fun cluster ->
  ignore (Replica.Cluster.await_leader cluster);
  let client = Client.create ~cluster ~client_id:1 () in
  ignore (Client.call client (Bytes.of_string "1"));
  Alcotest.check_raises "fail fast, no redirect chase" Client.Reads_unsupported
    (fun () -> ignore (Client.read client (Bytes.of_string "0")))

let test_read_storm_keeps_reply_cache () =
  (* Regression: reads bypass the reply cache, so a storm of reads from
     one client must not disturb the at-most-once guarantee for that
     same client's writes — the duplicate of a completed write still
     gets the cached reply and is not re-executed. *)
  with_cluster ~cfg:(lease_test_cfg 3) @@ fun cluster ->
  let leader = await_lease cluster in
  let wraw =
    Client_msg.request_to_bytes
      { Client_msg.id = rid 7 1; payload = Bytes.of_string "5" }
  in
  let replies = Msmr_platform.Bounded_queue.create ~capacity:4 in
  let sink b = ignore (Msmr_platform.Bounded_queue.try_put replies b) in
  Replica.submit leader ~raw:wraw ~reply_to:sink;
  await ~what:"write executed" (fun () -> Replica.executed_count leader = 1);
  ignore (Msmr_platform.Bounded_queue.take_timeout replies ~timeout_s:5.0);
  (* Read storm from the same client, between the write and its dup. *)
  let served = Atomic.make 0 in
  for i = 1 to 500 do
    let raw =
      Client_msg.read_to_bytes
        { Client_msg.id = rid 7 (1000 + i);
          staleness_ns = Client_msg.linearizable;
          payload = Bytes.of_string "0" }
    in
    Replica.submit leader ~raw ~reply_to:(fun b ->
        match (Client_msg.read_reply_of_bytes b).status with
        | Client_msg.Read_ok _ -> Atomic.incr served
        | _ -> ())
  done;
  await ~what:"storm served" (fun () -> Atomic.get served = 500);
  (* The duplicate write still hits the cache: same reply, no re-run. *)
  Replica.submit leader ~raw:wraw ~reply_to:sink;
  (match Msmr_platform.Bounded_queue.take_timeout replies ~timeout_s:5.0 with
   | Some b ->
     Alcotest.(check string) "cached reply preserved" "5"
       (Bytes.to_string (Client_msg.reply_of_bytes b).result)
   | None -> Alcotest.fail "no duplicate reply");
  Mclock.sleep_s 0.05;
  Alcotest.(check int) "write executed exactly once" 1
    (Replica.executed_count leader)

let test_replica_group_reads () =
  let rg =
    Replica_group.create ~groups:2 ~cfg:(lease_test_cfg 3)
      ~service:(fun ~gid:_ -> keyed_counter ())
      ()
  in
  Fun.protect ~finally:(fun () -> Replica_group.stop rg) @@ fun () ->
  Replica_group.await_leaders rg;
  let k0 = key_in_group ~groups:2 0 and k1 = key_in_group ~groups:2 1 in
  ignore (rg_call rg ~client_id:1 ~seq:1 (k0 ^ ":5"));
  ignore (rg_call rg ~client_id:1 ~seq:2 (k1 ^ ":7"));
  (* Per-group leases: each group's leader holds its own. *)
  let leader gid =
    Replica.Cluster.await_leader (Replica_group.cluster rg ~gid)
  in
  await ~what:"group leases" (fun () ->
      Replica.lease_held (leader 0) && Replica.lease_held (leader 1));
  let read_key k =
    let raw =
      Client_msg.read_to_bytes
        { Client_msg.id = rid 2 1; staleness_ns = Client_msg.linearizable;
          payload = Bytes.of_string (k ^ ":0") }
    in
    let box = Msmr_platform.Bounded_queue.create ~capacity:1 in
    Replica_group.submit rg ~raw ~reply_to:(fun b ->
        ignore (Msmr_platform.Bounded_queue.try_put box b));
    match Msmr_platform.Bounded_queue.take_timeout box ~timeout_s:5.0 with
    | Some b ->
      (match (Client_msg.read_reply_of_bytes b).status with
       | Client_msg.Read_ok r -> Bytes.to_string r
       | _ -> Alcotest.failf "read of %S refused" k)
    | None -> Alcotest.failf "no read reply for %S" k
  in
  Alcotest.(check string) "group 0 read" "5" (read_key k0);
  Alcotest.(check string) "group 1 read" "7" (read_key k1);
  Alcotest.(check int) "router counted the reads" 2
    (Replica_group.reads_routed_count rg);
  Alcotest.(check int) "reads did not consume the write router count" 2
    (Replica_group.routed_count rg)

(* ------------------------------------------------------------------ *)
(* Speculative execution: reply-cache staging, the speculation ledger,
   model-checked confirm-vs-abort interleavings, and a live cluster
   running optimistically (DESIGN.md section 16). *)

let test_reply_cache_staging () =
  let rc = Reply_cache.create () in
  (* Staged replies are invisible to the dedup path: a retry of a
     speculated-but-unconfirmed request still reads Fresh. *)
  Reply_cache.stage rc (rid 1 1) (Bytes.of_string "spec");
  Alcotest.(check bool) "staged is not cached" true
    (Reply_cache.lookup rc (rid 1 1) = Fresh);
  Alcotest.(check bool) "staged is not executed" false
    (Reply_cache.already_executed rc (rid 1 1));
  Alcotest.(check int) "one staged" 1 (Reply_cache.staged_size rc);
  Alcotest.(check int) "none committed" 0 (Reply_cache.size rc);
  (match Reply_cache.peek rc (rid 1 1) with
   | Some b -> Alcotest.(check string) "peek" "spec" (Bytes.to_string b)
   | None -> Alcotest.fail "peek missed the staged reply");
  Alcotest.(check bool) "peek is seq-exact" true
    (Reply_cache.peek rc (rid 1 2) = None);
  (* Confirm promotes: only now does the reply become client-visible. *)
  (match Reply_cache.confirm rc (rid 1 1) with
   | Some b -> Alcotest.(check string) "confirmed" "spec" (Bytes.to_string b)
   | None -> Alcotest.fail "confirm missed the staged reply");
  (match Reply_cache.lookup rc (rid 1 1) with
   | Cached b -> Alcotest.(check string) "now cached" "spec" (Bytes.to_string b)
   | _ -> Alcotest.fail "confirmed reply not cached");
  Alcotest.(check int) "staging emptied" 0 (Reply_cache.staged_size rc);
  Alcotest.(check int) "one committed" 1 (Reply_cache.size rc);
  (* Aborted speculation leaves no dedup residue: the same request takes
     the ordered path as if never speculated. *)
  Reply_cache.stage rc (rid 2 5) (Bytes.of_string "ghost");
  Reply_cache.unstage rc (rid 2 5);
  Alcotest.(check int) "unstaged" 0 (Reply_cache.staged_size rc);
  Alcotest.(check bool) "no residue: still fresh" true
    (Reply_cache.lookup rc (rid 2 5) = Fresh);
  Alcotest.(check bool) "no residue: not executed" false
    (Reply_cache.already_executed rc (rid 2 5));
  Alcotest.(check int) "committed untouched" 1 (Reply_cache.size rc);
  Alcotest.(check bool) "confirm of nothing falls through" true
    (Reply_cache.confirm rc (rid 2 5) = None);
  (* Clients are sequential: a newer stage overwrites, and a confirm for
     the stale seq must miss rather than promote the wrong reply. *)
  Reply_cache.stage rc (rid 3 1) (Bytes.of_string "a");
  Reply_cache.stage rc (rid 3 2) (Bytes.of_string "b");
  Alcotest.(check int) "one staged per client" 1 (Reply_cache.staged_size rc);
  Alcotest.(check bool) "stale-seq confirm misses" true
    (Reply_cache.confirm rc (rid 3 1) = None);
  (match Reply_cache.confirm rc (rid 3 2) with
   | Some b -> Alcotest.(check string) "newest wins" "b" (Bytes.to_string b)
   | None -> Alcotest.fail "newest staged reply lost")

let test_spec_ledger_semantics () =
  let led = Spec_ledger.create () in
  let admit id key =
    Spec_ledger.admit led id ~key ~lane:0 ~now_ns:0L
  in
  let f1 = Option.get (admit (rid 1 1) "k") in
  let f2 = Option.get (admit (rid 2 1) "k") in
  let f3 = Option.get (admit (rid 3 1) "other") in
  Alcotest.(check bool) "client with an open frame is refused" true
    (admit (rid 1 2) "k" = None);
  Alcotest.(check int) "three unresolved" 3 (Spec_ledger.unresolved led);
  Alcotest.(check bool) "effects pending" true (Spec_ledger.effects_pending led);
  (* Decides matching the predicted (admit) order confirm in turn. *)
  (match Spec_ledger.on_decide led (rid 1 1) ~key:"k" with
   | Confirm f -> Alcotest.(check int) "head confirms" 1 f.f_id.client_id
   | _ -> Alcotest.fail "expected Confirm for the predicted head");
  Spec_ledger.settled led f1;
  (* A decide diverging from the prediction rolls the whole key back,
     newest-first, and leaves the other key's frame alone. *)
  ignore (Option.get (admit (rid 4 1) "k"));
  (match Spec_ledger.on_decide led (rid 4 1) ~key:"k" with
   | Mispredict frames ->
     Alcotest.(check (list int)) "aborts newest-first" [ 4; 2 ]
       (List.map (fun f -> f.Spec_ledger.f_id.client_id) frames);
     List.iter (Spec_ledger.settled led) frames
   | _ -> Alcotest.fail "expected Mispredict on reordered decide");
  ignore f2;
  Alcotest.(check bool) "unspeculated key reports no frame" true
    (Spec_ledger.on_decide led (rid 9 1) ~key:"k" = No_frame);
  Alcotest.(check int) "other key untouched" 1 (Spec_ledger.unresolved led);
  (* abort_all (view change / snapshot / read) drains everything. *)
  let aborted = Spec_ledger.abort_all led in
  Alcotest.(check (list int)) "abort_all returns the rest" [ 3 ]
    (List.map (fun f -> f.Spec_ledger.f_id.client_id) aborted);
  Alcotest.(check int) "none unresolved" 0 (Spec_ledger.unresolved led);
  Alcotest.(check bool) "effects still pending until settled" true
    (Spec_ledger.effects_pending led);
  Spec_ledger.settled led f3;
  Alcotest.(check bool) "all effects settled" false
    (Spec_ledger.effects_pending led)

(* Model-checked confirm path: the decide matches the prediction, the
   executor promotes the staged effect, and the effects gate (the read /
   snapshot quiesce condition) only clears once the effect is settled —
   under every interleaving of scheduler, executor and a reader. *)
let test_mc_spec_confirm () =
  let runs, complete =
    Interleave.explore (fun () ->
        let module A = Interleave.Traced_atomic in
        let led = Spec_ledger.create () in
        let reg = A.make 0 in
        let f1 =
          Option.get (Spec_ledger.admit led (rid 1 1) ~key:"k" ~lane:0 ~now_ns:0L)
        in
        (* The lane FIFO: work items drain in push order, exactly the
           per-lane order the executor rings guarantee. *)
        let lane = Queue.create () in
        Queue.push (`Spec (f1, 101)) lane;
        let scheduler () =
          match Spec_ledger.on_decide led (rid 1 1) ~key:"k" with
          | Confirm f -> Queue.push (`Confirm f) lane
          | _ -> Alcotest.fail "expected Confirm for the predicted order"
        in
        let process = function
          | `Spec (f, v) ->
            let prev = A.get reg in
            A.set reg v;
            Atomic.set f.Spec_ledger.f_undo (Some (fun () -> A.set reg prev))
          | `Confirm f -> Spec_ledger.settled led f
        in
        (* Bounded passes, never a wait: a pass that finds the lane empty
           just yields (unbounded spinning would make the schedule tree
           infinite). [check] drains whatever the executor missed. *)
        let executor () =
          for _ = 1 to 3 do
            match Queue.take_opt lane with
            | None -> ignore (A.get reg)
            | Some item -> process item
          done
        in
        let reader () =
          for _ = 1 to 2 do
            let pending = Spec_ledger.effects_pending led in
            let v = A.get reg in
            if (not pending) && v <> 101 then
              Alcotest.failf "effects-settled read saw %d, not the confirmed 101"
                v
          done
        in
        let check () =
          let rec drain () =
            match Queue.take_opt lane with
            | None -> ()
            | Some item ->
              process item;
              drain ()
          in
          drain ();
          if A.get reg <> 101 then
            Alcotest.failf "final state %d <> 101" (A.get reg);
          if Spec_ledger.effects_pending led then
            Alcotest.fail "effects never settled";
          if Spec_ledger.unresolved led <> 0 then
            Alcotest.fail "frame left unresolved"
        in
        ([ scheduler; executor; reader ], check))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) (Printf.sprintf "explored %d schedules" runs) true
    (runs > 1)

(* Model-checked rollback path: the decide order diverges from the
   prediction, so both frames on the key must abort — undos applied
   newest-first through the lane FIFO — before the ordered re-executions
   land. A reader behind the effects gate must never observe a
   speculative value, and every interleaving must end in the ordered
   result. *)
let test_mc_spec_rollback () =
  let runs, complete =
    Interleave.explore (fun () ->
        let module A = Interleave.Traced_atomic in
        let led = Spec_ledger.create () in
        let reg = A.make 0 in
        let admit id = Spec_ledger.admit led id ~key:"k" ~lane:0 ~now_ns:0L in
        (* Predicted order: client 1 then client 2, both writing "k". *)
        let f1 = Option.get (admit (rid 1 1)) in
        let f2 = Option.get (admit (rid 2 1)) in
        let lane = Queue.create () in
        Queue.push (`Spec (f1, 101)) lane;
        Queue.push (`Spec (f2, 102)) lane;
        let scheduler () =
          (* The decide stream arrives client 2 first: mispredict. *)
          (match Spec_ledger.on_decide led (rid 2 1) ~key:"k" with
           | Mispredict frames ->
             if
               List.map (fun f -> f.Spec_ledger.f_id.client_id) frames
               <> [ 2; 1 ]
             then Alcotest.fail "aborts not newest-first";
             List.iter (fun f -> Queue.push (`Abort f) lane) frames
           | _ -> Alcotest.fail "expected Mispredict on reordered decide");
          Queue.push (`Exec 202) lane;
          (match Spec_ledger.on_decide led (rid 1 1) ~key:"k" with
           | No_frame -> ()
           | _ -> Alcotest.fail "frame survived the rollback");
          Queue.push (`Exec 201) lane
        in
        let process = function
          | `Spec (f, v) ->
            let prev = A.get reg in
            A.set reg v;
            Atomic.set f.Spec_ledger.f_undo (Some (fun () -> A.set reg prev))
          | `Abort f ->
            (match Atomic.get f.Spec_ledger.f_undo with
             | Some undo -> undo ()
             | None ->
               (* The lane FIFO put the speculation before its abort. *)
               Alcotest.fail "abort overtook the speculative execution");
            Spec_ledger.settled led f
          | `Exec v -> A.set reg v
        in
        (* Bounded passes (see the confirm test): an empty pass yields,
           [check] drains the remainder. *)
        let executor () =
          for _ = 1 to 6 do
            match Queue.take_opt lane with
            | None -> ignore (A.get reg)
            | Some item -> process item
          done
        in
        let reader () =
          for _ = 1 to 2 do
            let pending = Spec_ledger.effects_pending led in
            let v = A.get reg in
            if (not pending) && (v = 101 || v = 102) then
              Alcotest.failf "effects-settled read saw speculative value %d" v
          done
        in
        let check () =
          let rec drain () =
            match Queue.take_opt lane with
            | None -> ()
            | Some item ->
              process item;
              drain ()
          in
          drain ();
          if A.get reg <> 201 then
            Alcotest.failf "final state %d <> ordered result 201" (A.get reg);
          if Spec_ledger.effects_pending led then
            Alcotest.fail "effects never settled";
          if Spec_ledger.unresolved led <> 0 then
            Alcotest.fail "frames left unresolved"
        in
        ([ scheduler; executor; reader ], check))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) (Printf.sprintf "explored %d schedules" runs) true
    (runs > 1)

let test_cluster_speculative_kv () =
  (* The live optimistic path end to end: a cluster with speculation on,
     a 4-executor pool and the KV service (which implements
     execute_undo). Replies must be exactly the sequential KV semantics,
     the leader must actually have speculated, and a duplicate of a
     speculated write must replay the cached reply, not re-execute. *)
  let module Kv = Msmr_kv.Kv_service in
  let cfg = { (test_cfg 3) with Config.speculate = true } in
  with_cluster ~executor_threads:4 ~cfg ~service:Kv.make @@ fun cluster ->
  let leader = Replica.Cluster.await_leader cluster in
  let client = Client.create ~cluster ~client_id:1 () in
  let call cmd = Kv.decode_reply (Client.call client (Kv.encode_command cmd)) in
  Alcotest.(check bool) "put" true
    (call (Kv.Put { key = "a"; value = "1"; ephemeral = false }) = Kv.Ok_unit);
  for i = 1 to 30 do
    Alcotest.(check bool)
      (Printf.sprintf "incr %d" i)
      true
      (call (Kv.Incr { key = "a"; by = 1 }) = Kv.Ok_int (1 + i))
  done;
  Alcotest.(check bool) "final value" true
    (call (Kv.Get "a") = Kv.Ok_value (Some "31"));
  Alcotest.(check bool)
    (Printf.sprintf "speculations dispatched (%d)"
       (Replica.spec_dispatched_count leader))
    true
    (Replica.spec_dispatched_count leader > 0);
  Alcotest.(check bool)
    (Printf.sprintf "speculations confirmed (%d)"
       (Replica.spec_confirmed_count leader))
    true
    (Replica.spec_confirmed_count leader > 0);
  (* At-most-once survives speculation: the duplicate replays the cached
     reply (a re-execution would answer 10, not 5). *)
  let raw =
    Client_msg.request_to_bytes
      { Client_msg.id = rid 9 1;
        payload = Kv.encode_command (Kv.Incr { key = "d"; by = 5 }) }
  in
  let box = Msmr_platform.Bounded_queue.create ~capacity:2 in
  let sink b = ignore (Msmr_platform.Bounded_queue.try_put box b) in
  Replica.submit leader ~raw ~reply_to:sink;
  (match Msmr_platform.Bounded_queue.take_timeout box ~timeout_s:5.0 with
   | Some b ->
     Alcotest.(check bool) "first execution" true
       (Kv.decode_reply (Client_msg.reply_of_bytes b).result = Kv.Ok_int 5)
   | None -> Alcotest.fail "no reply to the write");
  Replica.submit leader ~raw ~reply_to:sink;
  (match Msmr_platform.Bounded_queue.take_timeout box ~timeout_s:5.0 with
   | Some b ->
     Alcotest.(check bool) "duplicate replays the cached reply" true
       (Kv.decode_reply (Client_msg.reply_of_bytes b).result = Kv.Ok_int 5)
   | None -> Alcotest.fail "no reply to the duplicate");
  (* Every replica converges on the same sequential history. *)
  let replicas = Replica.Cluster.replicas cluster in
  await ~what:"replicas converging" (fun () ->
      Array.for_all
        (fun r -> Replica.executed_count r = Replica.executed_count leader)
        replicas)

let suite =
  suite
  @ [ Alcotest.test_case "reply cache: staged replies stay invisible" `Quick
        test_reply_cache_staging;
      Alcotest.test_case "spec ledger: admit/confirm/mispredict" `Quick
        test_spec_ledger_semantics;
      Alcotest.test_case "spec ledger: model-checked confirm" `Quick
        test_mc_spec_confirm;
      Alcotest.test_case "spec ledger: model-checked rollback" `Quick
        test_mc_spec_rollback;
      Alcotest.test_case "speculation: live KV cluster" `Quick
        test_cluster_speculative_kv ]

let suite =
  suite
  @ [ Alcotest.test_case "reads: linearizable at the leaseholder" `Quick
        test_cluster_linearizable_read;
      Alcotest.test_case "reads: follower refuses without the lease" `Quick
        test_follower_rejects_linearizable_read;
      Alcotest.test_case "reads: stale reads spread and redirect" `Quick
        test_stale_reads_spread_and_redirect;
      Alcotest.test_case "reads: unsupported without leases" `Quick
        test_reads_unsupported_without_lease;
      Alcotest.test_case "reads: storm leaves the reply cache intact" `Quick
        test_read_storm_keeps_reply_cache;
      Alcotest.test_case "replica group: per-group lease reads" `Quick
        test_replica_group_reads ]
