(* Lock-free spine tests: model-checked interleavings of the ring cores
   (via the Interleave DFS checker), unit tests for the Channel facade,
   Backoff and the batch-drain paths, work-stealing Exec_pool tests, and
   QCheck stress over real threads.

   QCheck iteration counts scale with the MSMR_QCHECK_COUNT environment
   variable (the verify script's stress profile raises it). *)

open Msmr_platform
module Exec_pool = Msmr_runtime.Exec_pool

let stress_count =
  match Sys.getenv_opt "MSMR_QCHECK_COUNT" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 30)
  | None -> 30

(* ------------------------------------------------------------------ *)
(* Model-checked interleavings: the exact shipped ring code, with every
   atomic access a scheduling point. *)

module Spsc = Lf_queue.Spsc_core (Interleave.Traced_atomic)
module Mpmc = Lf_queue.Mpmc_core (Interleave.Traced_atomic)

let show_ints l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

let rec drain_spsc q acc =
  match Spsc.try_pop q with
  | Some v -> drain_spsc q (v :: acc)
  | None -> List.rev acc

let rec drain_mpmc q acc =
  match Mpmc.try_pop q with
  | Some v -> drain_mpmc q (v :: acc)
  | None -> List.rev acc

(* A concurrent SPSC producer/consumer never loses, duplicates or
   reorders: consumer pops + final drain = accepted pushes, in order. *)
let test_mc_spsc_fifo () =
  let runs, complete =
    Interleave.explore (fun () ->
        let q = Spsc.create ~capacity:2 in
        let accepted = ref [] in
        let popped = ref [] in
        let producer () =
          List.iter
            (fun v -> if Spsc.try_push q v then accepted := v :: !accepted)
            [ 1; 2; 3 ]
        in
        let consumer () =
          for _ = 1 to 3 do
            match Spsc.try_pop q with
            | Some v -> popped := v :: !popped
            | None -> ()
          done
        in
        let check () =
          let got = List.rev !popped @ drain_spsc q [] in
          let want = List.rev !accepted in
          if got <> want then
            Alcotest.failf "spsc lost/reordered: accepted %s got %s"
              (show_ints want) (show_ints got)
        in
        ([ producer; consumer ], check))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) "explored schedules" true (runs > 100)

(* Capacity-1 ring under a racing consumer: the bound holds (a push may
   only be accepted after the previous value was popped), order holds. *)
let test_mc_spsc_capacity () =
  let runs, complete =
    Interleave.explore (fun () ->
        let q = Spsc.create ~capacity:1 in
        let accepted = ref 0 in
        let popped = ref [] in
        let producer () =
          List.iter
            (fun v -> if Spsc.try_push q v then incr accepted)
            [ 1; 2; 3 ]
        in
        let consumer () =
          for _ = 1 to 2 do
            match Spsc.try_pop q with
            | Some v -> popped := v :: !popped
            | None -> ()
          done
        in
        let check () =
          let leftover = List.length (drain_spsc q []) in
          (* Never more in flight than the capacity... *)
          if !accepted - List.length !popped - leftover <> 0 then
            Alcotest.fail "spsc lost a value";
          if leftover > 1 then Alcotest.fail "spsc exceeded capacity 1"
        in
        ([ producer; consumer ], check))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) "explored schedules" true (runs > 100)

(* Two producers racing pushes: every accepted value surfaces exactly
   once and each producer's values stay in its program order. *)
let test_mc_mpmc_producers () =
  let subsequence_in_order a b all =
    let idx v =
      let r = ref (-1) in
      List.iteri (fun i x -> if x = v && !r < 0 then r := i) all;
      !r
    in
    idx a < idx b
  in
  let runs, complete =
    (* Scenario sizes are tuned so the full space fits under the
       checker's run budget — CAS-retry branches multiply the base
       interleaving count considerably. *)
    Interleave.explore (fun () ->
        let q = Mpmc.create ~capacity:4 in
        let a_ok = ref 0 and b_ok = ref 0 in
        let producer_a () =
          if Mpmc.try_push q 10 then incr a_ok;
          if Mpmc.try_push q 11 then incr a_ok
        in
        let producer_b () = if Mpmc.try_push q 20 then incr b_ok in
        let check () =
          let all = drain_mpmc q [] in
          if List.length all <> !a_ok + !b_ok then
            Alcotest.failf "mpmc lost values: %s" (show_ints all);
          if List.sort_uniq compare all <> List.sort compare all then
            Alcotest.failf "mpmc duplicated: %s" (show_ints all);
          if !a_ok = 2 && not (subsequence_in_order 10 11 all) then
            Alcotest.failf "producer A reordered: %s" (show_ints all)
        in
        ([ producer_a; producer_b ], check))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) "explored schedules" true (runs > 100)

(* Two consumers racing pops — the shape of the token-ring steal-vs-pop
   race in the executor pool: every value goes to exactly one consumer,
   and each consumer sees its values in queue order. *)
let test_mc_mpmc_consumers_exactly_once () =
  let runs, complete =
    Interleave.explore (fun () ->
        let q = Mpmc.create ~capacity:4 in
        List.iter (fun v -> ignore (Mpmc.try_push q v)) [ 1; 2; 3 ];
        let c1 = ref [] and c2 = ref [] in
        let consumer ~pops acc () =
          for _ = 1 to pops do
            match Mpmc.try_pop q with
            | Some v -> acc := v :: !acc
            | None -> ()
          done
        in
        let check () =
          let l1 = List.rev !c1 and l2 = List.rev !c2 in
          let rec increasing = function
            | a :: (b :: _ as tl) -> a < b && increasing tl
            | _ -> true
          in
          if not (increasing l1 && increasing l2) then
            Alcotest.failf "consumer saw out-of-order: %s / %s" (show_ints l1)
              (show_ints l2);
          let all = List.sort compare (l1 @ l2 @ drain_mpmc q []) in
          if all <> [ 1; 2; 3 ] then
            Alcotest.failf "not exactly-once: %s" (show_ints all)
        in
        ([ consumer ~pops:2 c1; consumer ~pops:1 c2 ], check))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) "explored schedules" true (runs > 100)

(* Full detection under producer races: a capacity-2 ring accepts
   exactly 2 of 4 racing pushes, and the 2 survivors drain intact. *)
let test_mc_mpmc_full () =
  let runs, complete =
    Interleave.explore (fun () ->
        let q = Mpmc.create ~capacity:2 in
        let ok = ref [] in
        let producer v1 v2 () =
          if Mpmc.try_push q v1 then ok := v1 :: !ok;
          if Mpmc.try_push q v2 then ok := v2 :: !ok
        in
        let check () =
          if List.length !ok <> 2 then
            Alcotest.failf "capacity 2 accepted %d" (List.length !ok);
          let got = List.sort compare (drain_mpmc q []) in
          if got <> List.sort compare !ok then
            Alcotest.failf "accepted %s but drained %s"
              (show_ints (List.sort compare !ok))
              (show_ints got)
        in
        ([ producer 10 11; producer 20 21 ], check))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) "explored schedules" true (runs > 100)

(* Push racing pop — covers the pop-of-in-flight-push window: a pop
   either sees a fully published value or None, never a torn slot. *)
let test_mc_mpmc_push_pop_race () =
  let runs, complete =
    Interleave.explore (fun () ->
        let q = Mpmc.create ~capacity:2 in
        let a_ok = ref false in
        let popped = ref [] in
        let check () =
          let accepted = if !a_ok then [ 1 ] else [] in
          let got = List.sort compare (!popped @ drain_mpmc q []) in
          if got <> accepted then
            Alcotest.failf "accepted %s, surfaced %s" (show_ints accepted)
              (show_ints got)
        in
        ( [
            (fun () -> a_ok := Mpmc.try_push q 1);
            (fun () ->
              for _ = 1 to 2 do
                match Mpmc.try_pop q with
                | Some v -> popped := v :: !popped
                | None -> ()
              done);
          ],
          check ))
  in
  Alcotest.(check bool) "state space covered" true complete;
  Alcotest.(check bool) "explored schedules" true (runs > 100)

(* ------------------------------------------------------------------ *)
(* Channel facade: blocking semantics on the ring path. *)

let ch kind capacity = Channel.create ~lockfree:true ~kind ~capacity

let test_ch_fifo () =
  let q = ch Channel.Mpmc 8 in
  List.iter (Channel.put q) [ 1; 2; 3 ];
  Alcotest.(check int) "len" 3 (Channel.length q);
  Alcotest.(check int) "t1" 1 (Channel.take q);
  Alcotest.(check int) "t2" 2 (Channel.take q);
  Alcotest.(check int) "t3" 3 (Channel.take q);
  Alcotest.(check (option int)) "empty" None (Channel.try_take q)

let test_ch_spsc_exact_capacity () =
  (* SPSC enforces the requested bound even though the ring rounds its
     slot array to a power of two. *)
  let q = ch Channel.Spsc 3 in
  Alcotest.(check int) "capacity" 3 (Channel.capacity q);
  Alcotest.(check bool) "p1" true (Channel.try_put q 1);
  Alcotest.(check bool) "p2" true (Channel.try_put q 2);
  Alcotest.(check bool) "p3" true (Channel.try_put q 3);
  Alcotest.(check bool) "full" false (Channel.try_put q 4);
  Alcotest.(check bool) "is_full" true (Channel.is_full q);
  ignore (Channel.take q);
  Alcotest.(check bool) "p4" true (Channel.try_put q 4)

let test_ch_mpmc_rounded_capacity () =
  let q = ch Channel.Mpmc 3 in
  Alcotest.(check int) "rounded" 4 (Channel.capacity q);
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "p%d" i) true (Channel.try_put q i)
  done;
  Alcotest.(check bool) "full" false (Channel.try_put q 5)

let test_ch_close_drains () =
  let q = ch Channel.Mpmc 8 in
  Channel.put q 1;
  Channel.put q 2;
  Channel.close q;
  Alcotest.(check bool) "closed" true (Channel.is_closed q);
  Alcotest.check_raises "put after close" Channel.Closed (fun () ->
      Channel.put q 3);
  Alcotest.(check int) "drain 1" 1 (Channel.take q);
  Alcotest.(check int) "drain 2" 2 (Channel.take q);
  Alcotest.check_raises "then raises" Channel.Closed (fun () ->
      ignore (Channel.take q))

let test_ch_closed_is_bq_closed () =
  (* Worker.spawn catches Bounded_queue.Closed for clean shutdown; the
     Channel exception must be the same exception, physically. *)
  Alcotest.(check bool) "same exception" true
    (Channel.Closed = Bounded_queue.Closed)

let test_ch_close_wakes_consumer () =
  let q : int Channel.t = ch Channel.Mpmc 4 in
  let witnessed = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        match Channel.take q with
        | _ -> ()
        | exception Channel.Closed -> Atomic.set witnessed true)
      ()
  in
  (* Let the consumer spin through its poll budget and park. *)
  Mclock.sleep_s 0.03;
  Channel.close q;
  Thread.join t;
  Alcotest.(check bool) "woken with Closed" true (Atomic.get witnessed)

let test_ch_blocking_put_resumes () =
  let q = ch Channel.Spsc 1 in
  Channel.put q 1;
  let second_done = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        Channel.put q 2;
        Atomic.set second_done true)
      ()
  in
  Mclock.sleep_s 0.03;
  Alcotest.(check bool) "still blocked on full ring" false
    (Atomic.get second_done);
  Alcotest.(check int) "t1" 1 (Channel.take q);
  Thread.join t;
  Alcotest.(check int) "t2" 2 (Channel.take q)

let test_ch_take_batch_into () =
  let q = ch Channel.Mpmc 16 in
  List.iter (Channel.put q) [ 1; 2; 3; 4; 5 ];
  let buf = Array.make 3 None in
  let n = Channel.take_batch_into q ~buf in
  Alcotest.(check int) "burst bounded by buf" 3 n;
  Alcotest.(check (list int)) "prefix" [ 1; 2; 3 ]
    (List.filter_map Fun.id (Array.to_list buf));
  let buf2 = Array.make 8 None in
  let n2 = Channel.take_batch_into q ~buf:buf2 in
  Alcotest.(check int) "rest" 2 n2;
  Alcotest.(check (list int)) "tail reset to None" [ 4; 5 ]
    (List.filter_map Fun.id (Array.to_list buf2));
  Alcotest.(check int) "drained" 0 (Channel.length q)

let test_ch_drain_into () =
  let q = ch Channel.Mpmc 16 in
  let buf = Array.make 4 None in
  Alcotest.(check int) "empty drains nothing" 0 (Channel.drain_into q ~buf);
  List.iter (Channel.put q) [ 7; 8 ];
  Alcotest.(check int) "drains available" 2 (Channel.drain_into q ~buf);
  Alcotest.(check (list int)) "values" [ 7; 8 ]
    (List.filter_map Fun.id (Array.to_list buf));
  Channel.close q;
  Alcotest.(check int) "closed drain never raises" 0
    (Channel.drain_into q ~buf)

let test_ch_spin_park_accounting () =
  Waitstats.reset ();
  let q : int Channel.t = ch Channel.Mpmc 4 in
  let t = Thread.create (fun () -> ignore (Channel.take q)) () in
  (* The consumer must burn its spin budget and park before the value
     arrives. *)
  Mclock.sleep_s 0.05;
  Channel.put q 42;
  Thread.join t;
  Alcotest.(check bool) "spins counted" true (Waitstats.spin_total () > 0);
  Alcotest.(check bool) "parks counted" true (Waitstats.park_total () > 0)

let test_ch_concurrent_sum () =
  let q = ch Channel.Mpmc 8 in
  let n_producers = 3 and per = 200 in
  let sum = Atomic.make 0 in
  let consumers =
    List.init 2 (fun _ ->
        Thread.create
          (fun () ->
            try
              while true do
                ignore (Atomic.fetch_and_add sum (Channel.take q))
              done
            with Channel.Closed -> ())
          ())
  in
  let producers =
    List.init n_producers (fun p ->
        Thread.create
          (fun () ->
            for i = 1 to per do
              Channel.put q ((p * per) + i)
            done)
          ())
  in
  List.iter Thread.join producers;
  Channel.close q;
  List.iter Thread.join consumers;
  let expected = ref 0 in
  for p = 0 to n_producers - 1 do
    for i = 1 to per do
      expected := !expected + (p * per) + i
    done
  done;
  Alcotest.(check int) "sum preserved" !expected (Atomic.get sum)

(* ------------------------------------------------------------------ *)
(* Backoff and the mutex-path batch drains. *)

let test_backoff_schedule () =
  let bo =
    Backoff.create ~yield_rounds:2 ~min_sleep_s:1e-6 ~max_sleep_s:4e-6 ()
  in
  Alcotest.(check (float 0.)) "yield phase" 0. (Backoff.current_sleep_s bo);
  Backoff.once bo;
  Backoff.once bo;
  Alcotest.(check (float 1e-12)) "first sleep" 1e-6
    (Backoff.current_sleep_s bo);
  Backoff.once bo;
  Alcotest.(check (float 1e-12)) "doubles" 2e-6 (Backoff.current_sleep_s bo);
  Backoff.once bo;
  Backoff.once bo;
  Backoff.once bo;
  Alcotest.(check (float 1e-12)) "capped" 4e-6 (Backoff.current_sleep_s bo);
  Backoff.reset bo;
  Alcotest.(check (float 0.)) "reset to yields" 0.
    (Backoff.current_sleep_s bo)

let test_bq_take_batch_into () =
  let q = Bounded_queue.create ~capacity:16 in
  List.iter (Bounded_queue.put q) [ 1; 2; 3; 4; 5 ];
  let buf = Array.make 3 None in
  Alcotest.(check int) "burst" 3 (Bounded_queue.take_batch_into q ~buf);
  Alcotest.(check (list int)) "prefix" [ 1; 2; 3 ]
    (List.filter_map Fun.id (Array.to_list buf));
  let buf2 = Array.make 8 None in
  Alcotest.(check int) "rest" 2 (Bounded_queue.take_batch_into q ~buf:buf2);
  Alcotest.(check (list int)) "values + None tail" [ 4; 5 ]
    (List.filter_map Fun.id (Array.to_list buf2));
  Bounded_queue.put q 9;
  Bounded_queue.close q;
  Alcotest.(check int) "close drains" 1
    (Bounded_queue.take_batch_into q ~buf:buf2);
  Alcotest.check_raises "then raises" Bounded_queue.Closed (fun () ->
      ignore (Bounded_queue.take_batch_into q ~buf:buf2))

let test_bq_drain_into () =
  let q = Bounded_queue.create ~capacity:16 in
  let buf = Array.make 4 None in
  Alcotest.(check int) "empty" 0 (Bounded_queue.drain_into q ~buf);
  List.iter (Bounded_queue.put q) [ 1; 2 ];
  Alcotest.(check int) "available" 2 (Bounded_queue.drain_into q ~buf);
  Bounded_queue.close q;
  Alcotest.(check int) "closed never raises" 0
    (Bounded_queue.drain_into q ~buf)

(* ------------------------------------------------------------------ *)
(* Work-stealing executor pool. *)

let run_pool ?(slow = false) ~lockfree ~steal ~n_exec ~sends check =
  let pool = Exec_pool.create ~lockfree ~steal ~n_exec () in
  let mu = Mutex.create () in
  let seen : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let exec (key, seq) =
    (* [slow] keeps the executor behind the dispatcher so work piles up
       (the sleep also yields the runtime lock to the other threads). *)
    if slow then Mclock.sleep_s 2e-5;
    Mutex.lock mu;
    (match Hashtbl.find_opt seen key with
    | Some l -> l := seq :: !l
    | None -> Hashtbl.add seen key (ref [ seq ]));
    Mutex.unlock mu
  in
  let threads =
    List.init n_exec (fun i ->
        Thread.create
          (fun () ->
            let st =
              Thread_state.create ~name:(Printf.sprintf "t-exec-%d" i)
            in
            Exec_pool.executor_loop pool ~idx:i ~exec ~st;
            Thread_state.unregister st)
          ())
  in
  sends pool;
  let st = Thread_state.create ~name:"t-sched" in
  Exec_pool.quiesce pool st;
  Thread_state.unregister st;
  check pool seen;
  Exec_pool.close pool;
  List.iter Thread.join threads

let check_per_key_order ?(per_key = 0) _pool seen =
  Hashtbl.iter
    (fun key l ->
      let l = List.rev !l in
      List.iteri
        (fun i s ->
          if i <> s then
            Alcotest.failf "key %d executed out of order (%d at %d)" key s i)
        l;
      if per_key > 0 then
        Alcotest.(check int)
          (Printf.sprintf "key %d complete" key)
          per_key (List.length l))
    seen

let send_keys pool ~n_keys ~per_key =
  for seq = 0 to per_key - 1 do
    for key = 0 to n_keys - 1 do
      let lane = Hashtbl.hash key mod Exec_pool.lanes pool in
      Exec_pool.send pool ~lane (key, seq)
    done
  done

let test_pool_shard_order () =
  run_pool ~lockfree:true ~steal:false ~n_exec:3
    ~sends:(send_keys ~n_keys:8 ~per_key:100)
    (fun pool seen ->
      Alcotest.(check bool) "sharded" false (Exec_pool.stealing pool);
      Alcotest.(check int) "lane per executor" 3 (Exec_pool.lanes pool);
      check_per_key_order ~per_key:100 pool seen)

let test_pool_steal_order () =
  run_pool ~lockfree:true ~steal:true ~n_exec:4
    ~sends:(send_keys ~n_keys:16 ~per_key:100)
    (fun pool seen ->
      Alcotest.(check bool) "stealing" true (Exec_pool.stealing pool);
      Alcotest.(check int) "8 lanes per executor" 32 (Exec_pool.lanes pool);
      check_per_key_order ~per_key:100 pool seen;
      Alcotest.(check int) "all dispatched" 1600 (Exec_pool.dispatched pool))

let test_pool_steal_spreads_hot_shard () =
  (* Every request lands on a lane homed on executor 0 (lane ≡ 0 mod
     n_exec); the only way executors 1..3 ever run anything is by
     stealing tokens. *)
  run_pool ~slow:true ~lockfree:true ~steal:true ~n_exec:4
    ~sends:(fun pool ->
      let n_exec = Exec_pool.n_exec pool in
      for seq = 0 to 99 do
        for hot = 0 to 7 do
          Exec_pool.send pool ~lane:(hot * n_exec) (hot, seq)
        done
      done)
    (fun pool seen ->
      check_per_key_order ~per_key:100 pool seen;
      Alcotest.(check bool)
        (Printf.sprintf "steals happened (%d)" (Exec_pool.steals pool))
        true
        (Exec_pool.steals pool > 0))

let test_pool_mutex_path_degrades_to_shard () =
  run_pool ~lockfree:false ~steal:true ~n_exec:2
    ~sends:(send_keys ~n_keys:4 ~per_key:50)
    (fun pool seen ->
      Alcotest.(check bool) "no stealing on the mutex path" false
        (Exec_pool.stealing pool);
      Alcotest.(check int) "no steal counters" 0 (Exec_pool.steals pool);
      check_per_key_order ~per_key:50 pool seen)

let test_pool_quiesce_single_exec () =
  run_pool ~lockfree:true ~steal:true ~n_exec:1
    ~sends:(send_keys ~n_keys:2 ~per_key:20)
    (fun pool seen ->
      (* steal && n_exec = 1 degrades: nobody to steal from. *)
      Alcotest.(check bool) "degraded" false (Exec_pool.stealing pool);
      check_per_key_order ~per_key:20 pool seen)

(* ------------------------------------------------------------------ *)
(* QCheck stress over real threads. *)

let prop_mpmc_channel_exactly_once =
  QCheck.Test.make ~name:"channel mpmc: exactly-once, per-producer order"
    ~count:stress_count
    QCheck.(
      triple (int_range 1 3) (int_range 0 60) (int_range 1 8))
    (fun (n_producers, per, capacity) ->
      let q = Channel.create ~lockfree:true ~kind:Channel.Mpmc ~capacity in
      let out = Array.init 2 (fun _ -> ref []) in
      let consumers =
        Array.to_list
          (Array.map
             (fun acc ->
               Thread.create
                 (fun () ->
                   try
                     while true do
                       acc := Channel.take q :: !acc
                     done
                   with Channel.Closed -> ())
                 ())
             out)
      in
      let producers =
        List.init n_producers (fun p ->
            Thread.create
              (fun () ->
                for seq = 0 to per - 1 do
                  Channel.put q (p, seq)
                done)
              ())
      in
      List.iter Thread.join producers;
      Channel.close q;
      List.iter Thread.join consumers;
      let per_consumer_ordered =
        Array.for_all
          (fun acc ->
            let l = List.rev !acc in
            List.for_all
              (fun p ->
                let seqs =
                  List.filter_map
                    (fun (p', s) -> if p' = p then Some s else None)
                    l
                in
                let rec increasing = function
                  | a :: (b :: _ as tl) -> a < b && increasing tl
                  | _ -> true
                in
                increasing seqs)
              (List.init n_producers Fun.id))
          out
      in
      let all =
        List.sort compare (List.concat_map (fun acc -> !acc) (Array.to_list out))
      in
      let expected =
        List.sort compare
          (List.concat_map
             (fun p -> List.init per (fun s -> (p, s)))
             (List.init n_producers Fun.id))
      in
      per_consumer_ordered && all = expected)

let prop_spsc_channel_fifo =
  QCheck.Test.make ~name:"channel spsc: exact fifo across threads"
    ~count:stress_count
    QCheck.(pair (int_range 0 200) (int_range 1 8))
    (fun (n, capacity) ->
      let q = Channel.create ~lockfree:true ~kind:Channel.Spsc ~capacity in
      let producer =
        Thread.create
          (fun () ->
            for i = 0 to n - 1 do
              Channel.put q i
            done;
            Channel.close q)
          ()
      in
      let got = ref [] in
      (try
         while true do
           got := Channel.take q :: !got
         done
       with Channel.Closed -> ());
      Thread.join producer;
      List.rev !got = List.init n Fun.id)

let prop_steal_pool_per_key_order =
  QCheck.Test.make ~name:"exec pool: per-key order under stealing"
    ~count:(max 5 (stress_count / 3))
    QCheck.(
      triple (int_range 2 4) (int_range 1 12) (int_range 1 60))
    (fun (n_exec, n_keys, per_key) ->
      let ok = ref true in
      run_pool ~lockfree:true ~steal:true ~n_exec
        ~sends:(send_keys ~n_keys ~per_key)
        (fun _pool seen ->
          Hashtbl.iter
            (fun _key l ->
              let l = List.rev !l in
              if l <> List.init (List.length l) Fun.id then ok := false)
            seen;
          let total = Hashtbl.fold (fun _ l a -> a + List.length !l) seen 0 in
          if total <> n_keys * per_key then ok := false);
      !ok)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mpmc_channel_exactly_once;
      prop_spsc_channel_fifo;
      prop_steal_pool_per_key_order;
    ]

let suite =
  [
    Alcotest.test_case "mc: spsc fifo/no-loss" `Quick test_mc_spsc_fifo;
    Alcotest.test_case "mc: spsc capacity 1" `Quick test_mc_spsc_capacity;
    Alcotest.test_case "mc: mpmc producer races" `Quick test_mc_mpmc_producers;
    Alcotest.test_case "mc: mpmc exactly-once (steal-vs-pop)" `Quick
      test_mc_mpmc_consumers_exactly_once;
    Alcotest.test_case "mc: mpmc full detection" `Quick test_mc_mpmc_full;
    Alcotest.test_case "mc: mpmc push/pop race" `Quick
      test_mc_mpmc_push_pop_race;
    Alcotest.test_case "channel: fifo" `Quick test_ch_fifo;
    Alcotest.test_case "channel: spsc exact capacity" `Quick
      test_ch_spsc_exact_capacity;
    Alcotest.test_case "channel: mpmc rounded capacity" `Quick
      test_ch_mpmc_rounded_capacity;
    Alcotest.test_case "channel: close drains then raises" `Quick
      test_ch_close_drains;
    Alcotest.test_case "channel: Closed = Bounded_queue.Closed" `Quick
      test_ch_closed_is_bq_closed;
    Alcotest.test_case "channel: close wakes parked consumer" `Quick
      test_ch_close_wakes_consumer;
    Alcotest.test_case "channel: blocking put resumes" `Quick
      test_ch_blocking_put_resumes;
    Alcotest.test_case "channel: take_batch_into" `Quick
      test_ch_take_batch_into;
    Alcotest.test_case "channel: drain_into" `Quick test_ch_drain_into;
    Alcotest.test_case "channel: spin/park accounting" `Quick
      test_ch_spin_park_accounting;
    Alcotest.test_case "channel: concurrent sum" `Quick test_ch_concurrent_sum;
    Alcotest.test_case "backoff: schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "bqueue: take_batch_into" `Quick
      test_bq_take_batch_into;
    Alcotest.test_case "bqueue: drain_into" `Quick test_bq_drain_into;
    Alcotest.test_case "pool: shard per-key order" `Quick
      test_pool_shard_order;
    Alcotest.test_case "pool: steal per-key order" `Quick
      test_pool_steal_order;
    Alcotest.test_case "pool: steals spread a hot shard" `Quick
      test_pool_steal_spreads_hot_shard;
    Alcotest.test_case "pool: mutex path degrades to shard" `Quick
      test_pool_mutex_path_degrades_to_shard;
    Alcotest.test_case "pool: steal with one executor degrades" `Quick
      test_pool_quiesce_single_exec;
  ]
  @ qsuite
