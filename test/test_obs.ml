(* Tests for msmr_obs: metrics registry snapshots, histogram edge cases
   through the registry, trace recording and Chrome trace_event export. *)

open Msmr_obs

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let test_snapshot_determinism () =
  (* Two registries filled in different orders snapshot identically. *)
  let fill r names =
    List.iter
      (fun (name, labels, v) ->
         Metrics.set_gauge ~registry:r ~labels name v)
      names;
    Metrics.add (Metrics.counter ~registry:r "events_total") 7
  in
  let series =
    [ ("b_gauge", [ ("x", "1") ], 2.0);
      ("a_gauge", [], 1.0);
      ("b_gauge", [ ("x", "0") ], 3.0) ]
  in
  let r1 = Metrics.create () and r2 = Metrics.create () in
  fill r1 series;
  fill r2 (List.rev series);
  let s1 = Metrics.snapshot ~registry:r1 ()
  and s2 = Metrics.snapshot ~registry:r2 () in
  Alcotest.(check int) "size" 4 (List.length s1);
  Alcotest.(check string) "same snapshot" (Metrics.to_text s1)
    (Metrics.to_text s2);
  (* Sorted by (name, labels): a_gauge, b_gauge{x=0}, b_gauge{x=1}. *)
  Alcotest.(check (list string)) "order"
    [ "a_gauge"; "b_gauge"; "b_gauge"; "events_total" ]
    (List.map (fun (s : Metrics.sample) -> s.name) s1)

let test_label_order_same_series () =
  let r = Metrics.create () in
  let c1 =
    Metrics.counter ~registry:r ~labels:[ ("a", "1"); ("b", "2") ] "c_total"
  in
  Metrics.incr c1;
  (* Same labels in the other order: same series (replace semantics on
     re-registration, so the snapshot holds exactly one sample). *)
  let c2 =
    Metrics.counter ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "c_total"
  in
  Metrics.incr c2;
  Alcotest.(check int) "one series" 1
    (List.length (Metrics.snapshot ~registry:r ()))

let test_remove () =
  let r = Metrics.create () in
  Metrics.set_gauge ~registry:r "g" 1.0;
  Metrics.remove ~registry:r "g";
  Alcotest.(check int) "removed" 0 (List.length (Metrics.snapshot ~registry:r ()));
  (* Removing an absent series is a no-op. *)
  Metrics.remove ~registry:r "never_there"

let test_histogram_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "lat_s" in
  (* Empty: all percentiles 0. *)
  (match Metrics.snapshot ~registry:r () with
   | [ { value = Metrics.Histogram_v { count; mean; p50; p99; _ }; _ } ] ->
     Alcotest.(check int) "empty count" 0 count;
     Alcotest.(check (float 0.)) "empty mean" 0. mean;
     Alcotest.(check (float 0.)) "empty p50" 0. p50;
     Alcotest.(check (float 0.)) "empty p99" 0. p99
   | _ -> Alcotest.fail "expected one histogram sample");
  (* Single sample: every percentile lands in its bucket (~5% wide). *)
  Msmr_platform.Histogram.record h 0.01;
  (match Metrics.snapshot ~registry:r () with
   | [ { value = Metrics.Histogram_v { count; p50; p99; _ }; _ } ] ->
     Alcotest.(check int) "count" 1 count;
     Alcotest.(check bool) "p50 near sample" true (p50 > 0.008 && p50 < 0.013);
     Alcotest.(check bool) "p99 = p50 for 1 sample" true (p99 = p50)
   | _ -> Alcotest.fail "expected one histogram sample");
  (* Out-of-range p is clamped, not an exception. *)
  Alcotest.(check bool) "clamp high" true
    (Msmr_platform.Histogram.percentile h 2.0 > 0.);
  Alcotest.(check (float 0.)) "clamp low on empty" 0.
    (Msmr_platform.Histogram.percentile (Msmr_platform.Histogram.create ()) (-1.))

let test_text_and_json_encoders () =
  let r = Metrics.create () in
  Metrics.set_gauge ~registry:r ~labels:[ ("replica", "0") ] "depth" 3.0;
  let s = Metrics.snapshot ~registry:r () in
  Alcotest.(check string) "text line" "depth{replica=\"0\"} 3\n"
    (Metrics.to_text s);
  let j = Metrics.to_json s in
  match Json.member "metrics" j with
  | Some (Json.List [ m ]) ->
    Alcotest.(check bool) "name" true
      (Json.member "name" m = Some (Json.String "depth"))
  | _ -> Alcotest.fail "expected one metric in JSON"

(* ------------------------------------------------------------------ *)
(* Trace recording and export. *)

(* A controllable clock: sim-style injected time source. *)
let manual_clock () =
  let now = ref 0L in
  ((fun () -> !now), fun t -> now := t)

let test_trace_events_roundtrip () =
  let clock, set = manual_clock () in
  let t = Trace.create ~ring_capacity:16 ~clock () in
  let trk = Trace.track t ~pid:1 ~pname:"replica-1" ~name:"Protocol" () in
  set 100L;
  Trace.begin_span trk ~cat:"ReplicationCore" "busy";
  set 300L;
  Trace.end_span trk;
  Trace.instant trk ~cat:"ReplicationCore" "decide";
  Trace.counter trk ~name:"window" 5.0;
  match Trace.events trk with
  | [ { ph = Trace.Span d; name = "busy"; ts_ns = 100L; _ };
      { ph = Trace.Instant; name = "decide"; ts_ns = 300L; _ };
      { ph = Trace.Counter 5.0; name = "window"; _ } ] ->
    Alcotest.(check int64) "dur" 200L d
  | evs -> Alcotest.failf "unexpected events (%d)" (List.length evs)

let test_trace_ring_overflow () =
  let clock, set = manual_clock () in
  let t = Trace.create ~ring_capacity:8 ~clock () in
  let trk = Trace.track t ~name:"x" () in
  for i = 1 to 20 do
    set (Int64.of_int i);
    Trace.instant trk "e"
  done;
  Alcotest.(check int) "retained = capacity" 8
    (List.length (Trace.events trk));
  Alcotest.(check int) "dropped" 12 (Trace.dropped trk);
  (* The oldest retained event is the 13th. *)
  (match Trace.events trk with
   | { ts_ns; _ } :: _ -> Alcotest.(check int64) "oldest" 13L ts_ns
   | [] -> Alcotest.fail "no events");
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events trk));
  Alcotest.(check int) "dropped reset" 0 (Trace.dropped trk)

let test_export_wellformed () =
  let clock, set = manual_clock () in
  let t = Trace.create ~clock () in
  let mk pid name cat =
    let trk = Trace.track t ~pid ~pname:(Printf.sprintf "replica-%d" pid) ~name () in
    set 1000L;
    Trace.begin_span trk ~cat "busy";
    set 4000L;
    Trace.end_span trk;
    trk
  in
  let _cio = mk 0 "ClientIO-0" "ClientIO" in
  let _proto = mk 0 "Protocol" "ReplicationCore" in
  let _sm = mk 1 "Replica" "ServiceManager" in
  (* Export, then parse the emitted string back: the exporter must
     produce JSON our own parser (and hence any JSON parser) accepts. *)
  let s = Json.to_string (Trace_export.to_json t) in
  let j = Json.of_string s in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  (* 2 process_name (one per pid) + 3 thread_name + 3 spans. *)
  Alcotest.(check int) "event count" 8 (List.length events);
  let required = [ "ph"; "pid"; "tid"; "name" ] in
  List.iter
    (fun e ->
       List.iter
         (fun k ->
            if Json.member k e = None then
              Alcotest.failf "event missing key %s" k)
         required)
    events;
  let cats =
    List.filter_map
      (fun e ->
         match (Json.member "ph" e, Json.member "cat" e) with
         | Some (Json.String "X"), Some (Json.String c) -> Some c
         | _ -> None)
      events
  in
  Alcotest.(check (list string)) "span cats"
    [ "ClientIO"; "ReplicationCore"; "ServiceManager" ]
    (List.sort compare cats);
  (* Chrome timestamps are microseconds: 1000 ns -> 1 us, dur 3 us. *)
  match
    List.find_opt
      (fun e -> Json.member "ph" e = Some (Json.String "X"))
      events
  with
  | Some e ->
    Alcotest.(check bool) "ts in us" true
      (Json.member "ts" e = Some (Json.Float 1.0)
       || Json.member "ts" e = Some (Json.Int 1))
  | None -> Alcotest.fail "no span event"

let test_span_totals () =
  let clock, set = manual_clock () in
  let t = Trace.create ~clock () in
  let trk = Trace.track t ~pid:0 ~name:"Batcher" () in
  Trace.complete trk ~cat:"ReplicationCore" ~name:"busy" ~ts_ns:0L
    ~dur_ns:100L ();
  Trace.complete trk ~cat:"ReplicationCore" ~name:"busy" ~ts_ns:200L
    ~dur_ns:50L ();
  Trace.complete trk ~cat:"ReplicationCore" ~name:"waiting" ~ts_ns:100L
    ~dur_ns:100L ();
  set 0L;
  Alcotest.(check (list (pair (triple int string string) int64)))
    "summed per (pid, track, span)"
    [ ((0, "Batcher", "busy"), 150L); ((0, "Batcher", "waiting"), 100L) ]
    (Trace_export.span_totals t)

let test_timestamp_monotonicity () =
  (* Per-track timestamps must be non-decreasing under both clock
     styles: a monotone injected (simulated) clock and the live clock. *)
  let check_monotone label t trk record =
    for _ = 1 to 100 do
      record ()
    done;
    let rec go = function
      | a :: (b :: _ as rest) ->
        if Int64.compare a.Trace.ts_ns b.Trace.ts_ns > 0 then
          Alcotest.failf "%s: timestamps decreased" label;
        go rest
      | _ -> ()
    in
    go (Trace.events trk);
    ignore t
  in
  let clock, set = manual_clock () in
  let sim = Trace.create ~clock () in
  let sim_trk = Trace.track sim ~name:"sim" () in
  let i = ref 0L in
  check_monotone "sim" sim sim_trk (fun () ->
      i := Int64.add !i 7L;
      set !i;
      Trace.instant sim_trk "e");
  let live = Trace.create_live () in
  let live_trk = Trace.track live ~name:"live" () in
  check_monotone "live" live live_trk (fun () -> Trace.instant live_trk "e")

let test_json_parser () =
  (* of_string accepts what to_string emits, including escapes and
     numbers; malformed input raises. *)
  let cases =
    [ Json.Null; Json.Bool true; Json.Int (-42); Json.Float 1.5;
      Json.String "a\"b\\c\nd";
      Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Null) ] ];
      Json.Obj [ ("x", Json.List []); ("y", Json.Obj []) ] ]
  in
  List.iter
    (fun j ->
       if not (Json.equal j (Json.of_string (Json.to_string j))) then
         Alcotest.failf "roundtrip failed for %s" (Json.to_string j))
    cases;
  List.iter
    (fun s ->
       match Json.of_string s with
       | _ -> Alcotest.failf "accepted malformed %S" s
       | exception Json.Parse_error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2" ]

let suite =
  [ Alcotest.test_case "metrics: snapshot determinism" `Quick
      test_snapshot_determinism;
    Alcotest.test_case "metrics: label order" `Quick
      test_label_order_same_series;
    Alcotest.test_case "metrics: remove" `Quick test_remove;
    Alcotest.test_case "metrics: histogram edges" `Quick test_histogram_edges;
    Alcotest.test_case "metrics: encoders" `Quick test_text_and_json_encoders;
    Alcotest.test_case "trace: events roundtrip" `Quick
      test_trace_events_roundtrip;
    Alcotest.test_case "trace: ring overflow" `Quick test_trace_ring_overflow;
    Alcotest.test_case "trace: export well-formed" `Quick
      test_export_wellformed;
    Alcotest.test_case "trace: span totals" `Quick test_span_totals;
    Alcotest.test_case "trace: timestamp monotonicity" `Quick
      test_timestamp_monotonicity;
    Alcotest.test_case "json: parser" `Quick test_json_parser ]
