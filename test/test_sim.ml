(* Tests for msmr_sim: the DES engine, CPU/lock/queue/NIC substrate, and
   the JPaxos architecture model. *)

open Msmr_sim

let test_engine_delay_ordering () =
  let eng = Engine.create () in
  let trace = ref [] in
  Engine.spawn eng (fun () ->
      Engine.delay eng 0.3;
      trace := ("a", Engine.now eng) :: !trace);
  Engine.spawn eng (fun () ->
      Engine.delay eng 0.1;
      trace := ("b", Engine.now eng) :: !trace;
      Engine.delay eng 0.1;
      trace := ("c", Engine.now eng) :: !trace);
  Engine.run eng ~until:1.0;
  Alcotest.(check (list string)) "order" [ "b"; "c"; "a" ]
    (List.rev_map fst !trace);
  Alcotest.(check bool) "times" true
    (List.for_all2
       (fun (_, t) t' -> abs_float (t -. t') < 1e-9)
       (List.rev !trace) [ 0.1; 0.2; 0.3 ])

let test_engine_same_time_fifo () =
  let eng = Engine.create () in
  let trace = ref [] in
  for i = 1 to 5 do
    Engine.schedule_at eng 0.5 (fun () -> trace := i :: !trace)
  done;
  Engine.run eng ~until:1.0;
  Alcotest.(check (list int)) "schedule order" [ 1; 2; 3; 4; 5 ]
    (List.rev !trace)

let test_engine_suspend_resume () =
  let eng = Engine.create () in
  let resumer = ref None in
  let got = ref 0 in
  Engine.spawn eng (fun () ->
      let v = Engine.suspend eng (fun r -> resumer := Some r) in
      got := v);
  Engine.schedule_at eng 0.2 (fun () -> (Option.get !resumer) 42);
  Engine.run eng ~until:1.0;
  Alcotest.(check int) "resumed with value" 42 !got

let test_engine_suspend_timeout () =
  let eng = Engine.create () in
  let r1 = ref (Engine.Value 0) and r2 = ref (Engine.Value 0) in
  Engine.spawn eng (fun () ->
      (* Never resumed: times out. *)
      r1 := Engine.suspend_timeout eng ~timeout:0.1 (fun _ -> ()));
  Engine.spawn eng (fun () ->
      r2 :=
        Engine.suspend_timeout eng ~timeout:1.0 (fun resume ->
            Engine.schedule_at eng 0.05 (fun () -> resume 7)));
  Engine.run eng ~until:2.0;
  Alcotest.(check bool) "timed out" true (!r1 = Engine.Timed_out);
  Alcotest.(check bool) "value wins" true (!r2 = Engine.Value 7)

let test_engine_run_until () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.schedule_at eng 5.0 (fun () -> fired := true);
  Engine.run eng ~until:1.0;
  Alcotest.(check bool) "future event pending" false !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 1.0 (Engine.now eng);
  Engine.run eng ~until:10.0;
  Alcotest.(check bool) "fires later" true !fired

let test_cpu_serializes_on_one_core () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:1 ~switch_cost:0. () in
  let done_at = Array.make 2 0. in
  for i = 0 to 1 do
    Engine.spawn eng (fun () ->
        let st = Sstats.make_thread eng ~name:(Printf.sprintf "t%d" i) in
        Cpu.work cpu st 0.1;
        done_at.(i) <- Engine.now eng)
  done;
  Engine.run eng ~until:1.0;
  (* 2 x 0.1s of work on one core takes 0.2s of simulated time. *)
  Alcotest.(check (float 1e-6)) "second finishes at 0.2" 0.2
    (Float.max done_at.(0) done_at.(1));
  Alcotest.(check (float 1e-6)) "consumed" 0.2 (Cpu.consumed cpu)

let test_cpu_parallel_on_two_cores () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:2 ~switch_cost:0. () in
  let done_at = Array.make 2 0. in
  for i = 0 to 1 do
    Engine.spawn eng (fun () ->
        let st = Sstats.make_thread eng ~name:(Printf.sprintf "t%d" i) in
        Cpu.work cpu st 0.1;
        done_at.(i) <- Engine.now eng)
  done;
  Engine.run eng ~until:1.0;
  Alcotest.(check (float 1e-6)) "parallel" 0.1
    (Float.max done_at.(0) done_at.(1))

let test_cpu_switch_cost_charged () =
  let eng = Engine.create () in
  (* Large quantum: no preemption, so exactly one context switch is
     charged (to the thread that had to wait for the core). *)
  let cpu = Cpu.create eng ~cores:1 ~quantum:1.0 ~switch_cost:0.01 () in
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"first" in
      Cpu.work cpu st 0.1);
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"second" in
      (* Queued behind the first: pays the context-switch cost. *)
      Cpu.work cpu st 0.1);
  Engine.run eng ~until:1.0;
  Alcotest.(check (float 1e-6)) "0.1 + (0.1 + switch)" 0.21 (Cpu.consumed cpu)

let test_slock_mutual_exclusion () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:4 ~switch_cost:0. () in
  let lock = Slock.create eng () in
  let inside = ref 0 and max_inside = ref 0 in
  for i = 0 to 3 do
    Engine.spawn eng (fun () ->
        let st = Sstats.make_thread eng ~name:(Printf.sprintf "w%d" i) in
        Slock.acquire lock st;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Cpu.work cpu st 0.05;
        decr inside;
        Slock.release lock)
  done;
  Engine.run eng ~until:1.0;
  Alcotest.(check int) "one holder at a time" 1 !max_inside;
  Alcotest.(check int) "acquisitions" 4 (Slock.acquisitions lock);
  Alcotest.(check int) "contended" 3 (Slock.contended_acquisitions lock)

let test_slock_blocked_accounting () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:2 ~switch_cost:0. () in
  let lock = Slock.create eng () in
  let st2_ref = ref None in
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"holder" in
      Slock.acquire lock st;
      Cpu.work cpu st 0.2;
      Slock.release lock);
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"waiter" in
      st2_ref := Some st;
      Slock.acquire lock st;
      Slock.release lock);
  Engine.run eng ~until:1.0;
  let totals = Sstats.totals (Option.get !st2_ref) in
  Alcotest.(check bool) "blocked ~0.2s" true
    (abs_float (totals.Sstats.blocked -. 0.2) < 0.01)

let test_squeue_fifo_and_capacity () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:2 ~switch_cost:0. () in
  let q = Squeue.create eng ~cpu ~capacity:2 ~name:"q" () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"producer" in
      for i = 1 to 4 do
        Squeue.put q st i
      done);
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"consumer" in
      Engine.delay eng 0.1;
      for _ = 1 to 4 do
        got := Squeue.take q st :: !got
      done);
  Engine.run eng ~until:1.0;
  Alcotest.(check (list int)) "fifo through bounded queue" [ 1; 2; 3; 4 ]
    (List.rev !got)

let test_squeue_take_timeout () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:1 ~switch_cost:0. () in
  let q : int Squeue.t = Squeue.create eng ~cpu ~capacity:4 ~name:"q" () in
  let first = ref (Some 99) and second = ref None in
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"taker" in
      first := Squeue.take_timeout q st ~timeout:0.05;
      second := Squeue.take_timeout q st ~timeout:1.0);
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"putter" in
      Engine.delay eng 0.2;
      Squeue.put q st 5);
  Engine.run eng ~until:2.0;
  Alcotest.(check bool) "first timed out" true (!first = None);
  Alcotest.(check bool) "second arrived" true (!second = Some 5)

let test_mailbox () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      let st = Sstats.make_thread eng ~name:"consumer" in
      for _ = 1 to 3 do
        got := Mailbox.take mb st :: !got
      done);
  Engine.schedule_at eng 0.1 (fun () -> Mailbox.push mb "x");
  Engine.schedule_at eng 0.2 (fun () ->
      Mailbox.push mb "y";
      Mailbox.push mb "z");
  Engine.run eng ~until:1.0;
  Alcotest.(check (list string)) "delivered in order" [ "x"; "y"; "z" ]
    (List.rev !got)

let test_nic_packet_rate () =
  let eng = Engine.create () in
  (* 1000 pkts/s, tiny packets: 100 sends take ~0.1 s of TX service. *)
  let a = Nic.create eng ~pkt_rate:1000. ~bandwidth:1e9 ~propagation:0. ~name:"a" () in
  let b = Nic.create eng ~pkt_rate:1e9 ~bandwidth:1e9 ~propagation:0. ~name:"b" () in
  let last_arrival = ref 0. in
  for _ = 1 to 100 do
    Nic.send a ~dst:b ~size:64 (fun () -> last_arrival := Engine.now eng)
  done;
  Engine.run eng ~until:10.;
  Alcotest.(check bool) "rate limited (~0.1s)" true
    (!last_arrival >= 0.099 && !last_arrival < 0.12);
  Alcotest.(check int) "tx packets" 100 (Nic.tx_packets a);
  Alcotest.(check int) "rx packets" 100 (Nic.rx_packets b)

let test_nic_mtu_split () =
  let eng = Engine.create () in
  let a = Nic.create eng ~mtu:1500 ~name:"a" () in
  let b = Nic.create eng ~name:"b" () in
  Nic.send a ~dst:b ~size:4000 (fun () -> ());
  Engine.run eng ~until:1.;
  Alcotest.(check int) "3 packets for 4000B" 3 (Nic.tx_packets a)

let test_nic_idle_rtt () =
  let eng = Engine.create () in
  let a = Nic.create eng ~name:"a" () in
  let b = Nic.create eng ~name:"b" () in
  let rtt = ref 0. in
  Nic.rtt_probe a ~dst:b (fun r -> rtt := r);
  Engine.run eng ~until:1.;
  (* Paper: ~0.06 ms idle. *)
  Alcotest.(check bool) "idle rtt ~0.06ms" true (!rtt > 40e-6 && !rtt < 80e-6)

(* ------------------------------------------------------------------ *)
(* JPaxos model *)

let small_params ?(cores = 2) () =
  let p = Params.default ~n:3 ~cores () in
  { p with n_clients = 60; warmup = 0.1; duration = 0.3 }

let test_jpaxos_model_runs () =
  let r = Jpaxos_model.run (small_params ()) in
  Alcotest.(check bool) "some throughput" true (r.throughput > 1000.);
  Alcotest.(check bool) "latency positive" true (r.client_latency > 0.);
  Alcotest.(check int) "three replicas" 3 (Array.length r.replicas);
  Alcotest.(check bool) "leader busiest" true
    (r.replicas.(0).cpu_util_pct > r.replicas.(1).cpu_util_pct);
  Alcotest.(check bool) "batches formed" true (r.avg_batch_reqs >= 1.);
  let threads = List.map fst r.replicas.(0).threads in
  Alcotest.(check bool) "paper thread names" true
    (List.mem "Batcher" threads && List.mem "Protocol" threads
     && List.mem "Replica" threads && List.mem "ClientIO-0" threads
     && List.mem "ReplicaIOSnd-1" threads)

let test_jpaxos_model_deterministic () =
  let r1 = Jpaxos_model.run (small_params ()) in
  let r2 = Jpaxos_model.run (small_params ()) in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same event count" r1.events r2.events

(* Autotune in the model. *)

let test_jpaxos_autotune_off_path_identical () =
  (* auto_tune = false must be byte-for-byte the static path: varying a
     tuning-only parameter must not perturb the event stream, and the
     reported tuned finals are just the static knobs. *)
  let p = small_params () in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run { p with tune_epoch = 0.123 } in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same events" r1.events r2.events;
  Alcotest.(check int) "static bsz reported" p.bsz r1.tuned_bsz_final;
  Alcotest.(check int) "static wnd reported" p.wnd r1.tuned_wnd_final

let autotune_params () =
  let p = Params.default ~n:3 ~cores:4 () in
  { p with n_clients = 400; warmup = 0.1; duration = 0.4;
    auto_tune = true; tune_epoch = 0.005 }

let test_jpaxos_autotune_deterministic () =
  let r1 = Jpaxos_model.run (autotune_params ()) in
  let r2 = Jpaxos_model.run (autotune_params ()) in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same events" r1.events r2.events;
  Alcotest.(check int) "same tuned bsz" r1.tuned_bsz_final r2.tuned_bsz_final;
  Alcotest.(check int) "same tuned wnd" r1.tuned_wnd_final r2.tuned_wnd_final

let test_jpaxos_autotune_adapts () =
  let p = autotune_params () in
  let r = Jpaxos_model.run p in
  Alcotest.(check bool) "controller moved a knob" true
    (r.tuned_bsz_final <> p.bsz || r.tuned_wnd_final <> p.wnd);
  Alcotest.(check bool) "bsz within bounds" true
    (r.tuned_bsz_final >= 256 && r.tuned_bsz_final <= 65536);
  Alcotest.(check bool) "wnd within bounds" true
    (r.tuned_wnd_final >= 1 && r.tuned_wnd_final <= 64);
  (* adapting from the static default must not cost throughput *)
  let rs = Jpaxos_model.run { p with auto_tune = false } in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.0f >= 0.9x static %.0f" r.throughput
       rs.throughput)
    true
    (r.throughput >= 0.9 *. rs.throughput)

let test_jpaxos_model_scales () =
  let r1 = Jpaxos_model.run (small_params ~cores:1 ()) in
  let r2 = Jpaxos_model.run (small_params ~cores:2 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "2 cores (%.0f) beat 1 core (%.0f)" r2.throughput
       r1.throughput)
    true
    (r2.throughput > r1.throughput *. 1.3)

let test_jpaxos_nic_binds_at_many_cores () =
  let p = Params.default ~n:3 ~cores:24 () in
  let p = { p with n_clients = 600; warmup = 0.2; duration = 0.5 } in
  let r = Jpaxos_model.run p in
  (* The leader's packet rate must sit at the kernel limit. *)
  Alcotest.(check bool)
    (Printf.sprintf "tx %.0f pps ~ 150K" r.leader_tx_pps)
    true
    (r.leader_tx_pps > 140_000. && r.leader_tx_pps <= 151_000.);
  Alcotest.(check bool) "blocked time small" true
    (r.replicas.(0).blocked_pct < 20.)

let test_jpaxos_window_respected () =
  let p = { (small_params ~cores:24 ()) with wnd = 3; n_clients = 300 } in
  let r = Jpaxos_model.run p in
  Alcotest.(check bool)
    (Printf.sprintf "avg window %.2f <= 3" r.avg_window)
    true (r.avg_window <= 3.01)

let test_jpaxos_rtt_leader_inflated () =
  let p = Params.default ~n:3 ~cores:24 () in
  let p = { p with warmup = 0.2; duration = 0.5; wnd = 35 } in
  let r = Jpaxos_model.run p in
  Alcotest.(check bool) "idle rtt small" true (r.rtt_idle < 0.1e-3);
  Alcotest.(check bool)
    (Printf.sprintf "leader rtt %.3fms >> idle" (r.rtt_leader *. 1e3))
    true
    (r.rtt_leader > 5. *. r.rtt_idle)

(* Parallel ServiceManager (executor pool) in the model. *)

(* Golden pre-executor numbers for [small_params ()]: exec_threads = 1
   must take the exact serial ServiceManager path, so throughput stays
   within tolerance of the value measured before the executor pool was
   introduced (33_500 req/s). *)
let test_jpaxos_exec1_matches_serial_baseline () =
  let p = { (small_params ()) with exec_threads = 1 } in
  let r = Jpaxos_model.run p in
  let lo = 33_500. *. 0.95 and hi = 33_500. *. 1.05 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f within 5%% of 33500" r.throughput)
    true
    (r.throughput >= lo && r.throughput <= hi)

let exec_heavy exec_threads =
  (* Execution-bound workload: 50 us/request keeps the leader far below
     the NIC packet ceiling, so executor scaling is visible. *)
  let p = Params.default ~n:3 ~cores:16 () in
  { p with
    n_clients = 600; warmup = 0.2; duration = 0.5;
    costs = { p.costs with exec_per_req = 50e-6 };
    exec_threads }

let test_jpaxos_executors_scale () =
  let r1 = Jpaxos_model.run (exec_heavy 1) in
  let r4 = Jpaxos_model.run (exec_heavy 4) in
  Alcotest.(check bool)
    (Printf.sprintf "4 executors (%.0f) >= 2x serial (%.0f)" r4.throughput
       r1.throughput)
    true
    (r4.throughput >= 2. *. r1.throughput);
  let threads = List.map fst r4.replicas.(0).threads in
  Alcotest.(check bool) "executor threads reported" true
    (List.mem "Executor-0" threads && List.mem "Executor-3" threads)

let test_jpaxos_executors_conflicts_serialise () =
  (* conflict_ratio 1.0: every request quiesces the pool and runs on the
     scheduler — the pool buys nothing over serial execution. *)
  let r1 = Jpaxos_model.run (exec_heavy 1) in
  let rc = Jpaxos_model.run { (exec_heavy 4) with conflict_ratio = 1.0 } in
  Alcotest.(check bool)
    (Printf.sprintf "all-conflicting (%.0f) ~ serial (%.0f)" rc.throughput
       r1.throughput)
    true
    (rc.throughput <= r1.throughput *. 1.1)

let test_jpaxos_executors_deterministic () =
  let p = { (small_params ()) with exec_threads = 4; conflict_ratio = 0.05 } in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same event count" r1.events r2.events

(* Work-stealing executor pool in the model. *)

let steal_params ~steal ~skew =
  (* Execution-bound, with a client population small enough that the
     cold clients cannot saturate executors 1..3 on their own — the
     fixed-route convoy on executor 0 then shows up as lost throughput
     (see bench007 for the same setup swept over skews). *)
  let p = Params.default ~n:3 ~cores:16 () in
  { p with
    n_clients = 150; warmup = 0.1; duration = 0.3;
    costs = { p.costs with exec_per_req = 50e-6 };
    exec_threads = 4; steal; skew }

let test_jpaxos_steal_deterministic () =
  let p = steal_params ~steal:true ~skew:0.9 in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same event count" r1.events r2.events;
  Alcotest.(check int) "same steal count" r1.steals r2.steals

let test_jpaxos_steal_recovers_convoy () =
  let fixed = Jpaxos_model.run (steal_params ~steal:false ~skew:0.9) in
  let stolen = Jpaxos_model.run (steal_params ~steal:true ~skew:0.9) in
  Alcotest.(check int) "fixed route never steals" 0 fixed.steals;
  Alcotest.(check bool)
    (Printf.sprintf "steals happened (%d)" stolen.steals)
    true (stolen.steals > 0);
  Alcotest.(check bool)
    (Printf.sprintf "stealing (%.0f) >= 1.3x fixed (%.0f) at skew 0.9"
       stolen.throughput fixed.throughput)
    true
    (stolen.throughput >= 1.3 *. fixed.throughput)

let test_jpaxos_steal_uniform_parity () =
  (* Uniform load saturates all executors either way: the lane/token
     pool must not cost throughput when there is nothing to steal. *)
  let fixed = Jpaxos_model.run (steal_params ~steal:false ~skew:0.0) in
  let stolen = Jpaxos_model.run (steal_params ~steal:true ~skew:0.0) in
  Alcotest.(check bool)
    (Printf.sprintf "lanes (%.0f) within 10%% of fixed (%.0f)"
       stolen.throughput fixed.throughput)
    true
    (stolen.throughput >= 0.9 *. fixed.throughput
    && stolen.throughput <= 1.1 *. fixed.throughput)

(* Durable-mode model: Sdisk device + StableStorage process. *)

let test_sdisk_groups_and_serializes () =
  let eng = Engine.create () in
  let d = Sdisk.create eng ~fsync_latency:5e-3 in
  let t1 = ref 0. and t2 = ref 0. in
  Sdisk.append d 3;
  Sdisk.fsync d (fun () -> t1 := Engine.now eng);
  Alcotest.(check bool) "buffer drained at issue" false (Sdisk.has_pending d);
  Sdisk.append d 4;
  Sdisk.fsync d (fun () -> t2 := Engine.now eng);
  Engine.run eng ~until:1.0;
  Alcotest.(check (float 1e-9)) "first sync completes" 5e-3 !t1;
  (* The second fsync was issued while the first was in flight: it
     queues behind the device. *)
  Alcotest.(check (float 1e-9)) "second serializes" 10e-3 !t2;
  Alcotest.(check int) "syncs" 2 (Sdisk.syncs d);
  Alcotest.(check int) "records" 7 (Sdisk.records_synced d);
  Alcotest.(check (float 1e-9)) "group avg" 3.5 (Sdisk.avg_group d)

let durable_params pol =
  let p = Params.default ~n:3 ~cores:8 () in
  { p with n_clients = 100; warmup = 0.4; duration = 0.8; sync_policy = pol }

let test_jpaxos_durable_group_beats_serial () =
  let none = Jpaxos_model.run (durable_params Params.Sync_none) in
  let ser = Jpaxos_model.run (durable_params Params.Sync_serial) in
  let grp = Jpaxos_model.run (durable_params Params.Sync_group) in
  Alcotest.(check int) "no device without stable storage" 0 none.wal_syncs;
  Alcotest.(check bool) "serial pays one sync per record" true
    (ser.wal_syncs > 0 && ser.wal_group_avg <= 1.001);
  Alcotest.(check bool)
    (Printf.sprintf "group commit batches (%.1f records/sync)"
       grp.wal_group_avg)
    true (grp.wal_group_avg >= 2.);
  (* The acceptance bar of the durability pipeline. *)
  Alcotest.(check bool)
    (Printf.sprintf "group (%.0f) >= 3x serial (%.0f)" grp.throughput
       ser.throughput)
    true
    (grp.throughput >= 3. *. ser.throughput);
  Alcotest.(check bool) "durability still costs something" true
    (none.throughput > grp.throughput)

let test_jpaxos_durable_deterministic () =
  let p = { (small_params ()) with sync_policy = Params.Sync_group } in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same event count" r1.events r2.events;
  Alcotest.(check int) "same sync count" r1.wal_syncs r2.wal_syncs

(* Fault injection (Sfault) in the model. *)

let chaos_params ?(duration = 0.6) faults =
  let p = Params.default ~n:3 ~cores:2 () in
  { p with n_clients = 60; warmup = 0.1; duration; faults; chaos_seed = 7 }

let test_chaos_faultfree_fields_inert () =
  (* faults = [] must leave every chaos-only result field at its inert
     value — the fault-free path reports nothing it did not measure. *)
  let r = Jpaxos_model.run (small_params ()) in
  Alcotest.(check int) "no view changes" 0 r.view_changes;
  Alcotest.(check (float 0.)) "no unavailability" 0. r.unavailable_s;
  Alcotest.(check (float 0.)) "no recovery" 0. r.recovery_s;
  Alcotest.(check bool) "safety trivially ok" true r.safety_ok;
  Alcotest.(check int) "no timeline" 0 (Array.length r.timeline)

let test_chaos_leader_crash_recovers () =
  let r =
    Jpaxos_model.run
      (chaos_params ~duration:1.0
         [ Sfault.Crash { node = 0; at = 0.4; restart_at = Some 0.7 } ])
  in
  Alcotest.(check bool) "view moved" true (r.view_changes >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "recovery measured (%.3fs)" r.recovery_s)
    true
    (r.recovery_s > 0. && r.recovery_s < 1.0);
  Alcotest.(check bool) "outage visible" true (r.unavailable_s > 0.05);
  Alcotest.(check bool) "linearizable" true r.safety_ok;
  Alcotest.(check bool) "clients completed requests" true (r.completed > 1000);
  (* The trajectory must show the outage and the recovery: a zero bucket
     during the fault window and full-rate buckets at the tail. *)
  let bucket_at t =
    let found = ref (-1) in
    Array.iter
      (fun (t0, c) -> if Float.abs (t0 -. t) < 1e-9 then found := c)
      r.timeline;
    !found
  in
  Alcotest.(check int) "dead during outage" 0 (bucket_at 0.45);
  Alcotest.(check bool) "recovered at tail" true (bucket_at 1.0 > 1000)

let test_chaos_crash_deterministic () =
  (* The acceptance golden: two invocations of the same seeded chaos run
     are bit-identical, down to the engine event count. *)
  let p =
    chaos_params ~duration:1.0
      [ Sfault.Crash { node = 0; at = 0.4; restart_at = Some 0.7 } ]
  in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "same completed" r1.completed r2.completed;
  Alcotest.(check int) "same view changes" r1.view_changes r2.view_changes;
  Alcotest.(check (float 0.)) "same recovery" r1.recovery_s r2.recovery_s;
  Alcotest.(check (float 0.)) "same unavailability" r1.unavailable_s
    r2.unavailable_s;
  Alcotest.(check int) "same client retries" r1.client_retries
    r2.client_retries;
  Alcotest.(check int) "same event count" r1.events r2.events

let test_chaos_partition_heals () =
  (* Isolate the leader; the majority side elects a new one, then the
     partition heals and the old leader rejoins. *)
  let r =
    Jpaxos_model.run
      (chaos_params ~duration:0.8
         [ Sfault.Partition
             { group_a = [ 0 ]; group_b = [ 1; 2 ]; at = 0.3; heal_at = 0.55;
               symmetric = true } ])
  in
  Alcotest.(check bool) "majority elected a new leader" true
    (r.view_changes >= 1);
  Alcotest.(check bool) "outage bounded by failover" true
    (r.unavailable_s > 0.02);
  Alcotest.(check bool) "linearizable across the partition" true r.safety_ok;
  Alcotest.(check bool) "progress resumed" true (r.completed > 1000)

let test_chaos_catchup_under_loss () =
  (* Starve follower 2 of most leader traffic (Accept/Decide loss) for a
     window; after it lifts, retransmission + catchup must reconverge the
     executed logs. This is the sim-side catchup-under-loss golden. *)
  let p =
    chaos_params ~duration:0.8
      [ Sfault.Link
          { l_src = 0; l_dst = 2; drop = 0.9; dup = 0.; delay_s = 0.;
            jitter_s = 0.; from_t = 0.2; until_t = 0.4 } ]
  in
  let r = Jpaxos_model.run p in
  Alcotest.(check bool) "linearizable under loss" true r.safety_ok;
  Alcotest.(check bool) "cluster kept committing" true (r.completed > 1000);
  Alcotest.(check bool)
    (Printf.sprintf "follower reconverged (executed [%d, %d])" r.executed_min
       r.executed_max)
    true
    (r.executed_min > 0 && r.executed_max - r.executed_min <= 2000);
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "deterministic under loss" r.events r2.events;
  Alcotest.(check int) "same convergence" r.executed_min r2.executed_min

let test_chaos_random_soak () =
  let p =
    { (chaos_params ~duration:1.0
         (Sfault.random_schedule ~seed:42 ~n:3 ~t0:0.2 ~t1:1.0))
      with chaos_seed = 42 }
  in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check bool) "soak linearizable" true r1.safety_ok;
  Alcotest.(check bool) "soak made progress" true (r1.completed > 1000);
  Alcotest.(check bool)
    (Printf.sprintf "soak converged (executed [%d, %d])" r1.executed_min
       r1.executed_max)
    true
    (r1.executed_max - r1.executed_min <= 2000);
  Alcotest.(check int) "soak bit-identical: completed" r1.completed
    r2.completed;
  Alcotest.(check int) "soak bit-identical: views" r1.view_changes
    r2.view_changes;
  Alcotest.(check (float 0.)) "soak bit-identical: recovery" r1.recovery_s
    r2.recovery_s;
  Alcotest.(check int) "soak bit-identical: events" r1.events r2.events

let test_chaos_fsync_stall_durable () =
  (* A stalled device on the leader under Sync_group: throughput dips
     but durability-gated progress resumes once the stall lifts, and the
     run stays deterministic. *)
  let p =
    { (chaos_params ~duration:0.8
         [ Sfault.Fsync_stall { node = 0; at = 0.3; until_t = 0.5 } ])
      with sync_policy = Params.Sync_group; n_clients = 60 }
  in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check bool) "still linearizable" true r1.safety_ok;
  Alcotest.(check bool) "progress despite the stall" true (r1.completed > 500);
  Alcotest.(check int) "deterministic" r1.events r2.events

(* Online reconfiguration in the model. *)

let test_reconfig_fields_inert () =
  (* Static membership (the default) must leave the reconfig result
     fields at their inert values -- the golden-pinned fault-free path
     reports nothing it did not do. *)
  let r = Jpaxos_model.run (small_params ()) in
  Alcotest.(check int) "no reconfigs applied" 0 r.reconfigs_applied;
  Alcotest.(check int) "epoch never moved" 0 r.final_epoch

let reconfig_params ?(duration = 1.2) ?(faults = []) reconfig_at =
  let p = Params.default ~n:5 ~cores:2 () in
  { p with
    n_clients = 60;
    warmup = 0.1;
    duration;
    chaos_seed = 7;
    members0 = [ 0; 1; 2 ];
    reconfig_at;
    faults }

let test_reconfig_model_grow_shrink () =
  (* 3 -> 5 -> 3 under load: the grow leg needs add-learner + promote
     per joiner (4 epochs), the shrink leg removes the two surplus
     members (2 more), so a completed schedule lands on epoch 6. *)
  let r =
    Jpaxos_model.run
      (reconfig_params
         [ (0.3, [ 0; 1; 2; 3; 4 ]); (0.7, [ 0; 1; 2 ]) ])
  in
  Alcotest.(check bool) "linearizable across reconfig" true r.safety_ok;
  Alcotest.(check int) "schedule completed (epoch 6)" 6 r.final_epoch;
  Alcotest.(check bool) "members adopted the epochs" true
    (r.reconfigs_applied >= 6);
  Alcotest.(check bool) "cluster kept committing" true (r.completed > 1000)

let test_reconfig_chaos_golden () =
  (* Crash the joiner mid state transfer, restart it, and let the
     schedule finish; the acceptance golden is that two invocations of
     the same seeded run are bit-identical. *)
  let p =
    reconfig_params ~duration:1.4
      ~faults:[ Sfault.Crash { node = 3; at = 0.4; restart_at = Some 0.6 } ]
      [ (0.3, [ 0; 1; 2; 3 ]) ]
  in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check bool) "safe across crash-during-transfer" true
    r1.safety_ok;
  Alcotest.(check bool) "membership change completed" true
    (r1.final_epoch >= 2);
  Alcotest.(check int) "golden: same completed" r1.completed r2.completed;
  Alcotest.(check int) "golden: same reconfigs" r1.reconfigs_applied
    r2.reconfigs_applied;
  Alcotest.(check int) "golden: same final epoch" r1.final_epoch
    r2.final_epoch;
  Alcotest.(check int) "golden: same events" r1.events r2.events

(* Compartmentalized multi-group Paxos in the model. *)

let test_multigroup_single_group_unchanged () =
  (* groups = 1 must dispatch to the exact pre-multi-group simulation
     path: the serial-baseline golden still holds, the per-group split
     degenerates to the total, and no Global barrier ever runs. *)
  let r = Jpaxos_model.run { (small_params ()) with groups = 1 } in
  let lo = 33_500. *. 0.95 and hi = 33_500. *. 1.05 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f within 5%% of 33500" r.throughput)
    true
    (r.throughput >= lo && r.throughput <= hi);
  Alcotest.(check int) "one group reported" 1
    (Array.length r.group_throughputs);
  Alcotest.(check (float 0.)) "split equals total" r.throughput
    r.group_throughputs.(0);
  Alcotest.(check int) "no globals on the single-group path" 0
    r.globals_executed

let test_multigroup_deterministic () =
  let p = { (small_params ()) with groups = 4 } in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same completed" r1.completed r2.completed;
  Alcotest.(check int) "same event count" r1.events r2.events;
  Array.iteri
    (fun g t ->
       Alcotest.(check (float 0.))
         (Printf.sprintf "group %d split identical" g)
         t r2.group_throughputs.(g))
    r1.group_throughputs

let test_multigroup_scales_past_single_leader () =
  (* The tentpole: one group is NIC-bound at its single leader; four
     groups spread the leader role over the nodes' NICs. The committed
     bench (bench/BENCH_006.json) gates the full-length ratio. *)
  let mg groups =
    let p = Params.default ~n:3 ~cores:24 () in
    Jpaxos_model.run { p with groups; warmup = 0.1; duration = 0.3 }
  in
  let r1 = mg 1 and r4 = mg 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 groups (%.0f) >= 2x one group (%.0f)" r4.throughput
       r1.throughput)
    true
    (r4.throughput >= 2. *. r1.throughput);
  Alcotest.(check int) "four splits" 4 (Array.length r4.group_throughputs);
  let sum = Array.fold_left ( +. ) 0. r4.group_throughputs in
  Alcotest.(check bool) "splits sum to the total" true
    (Float.abs (sum -. r4.throughput) <= 0.01 *. r4.throughput);
  Alcotest.(check bool) "every group made progress" true
    (Array.for_all (fun t -> t > 1000.) r4.group_throughputs)

let test_multigroup_global_barrier () =
  (* A Global slice must actually cross the barrier (quiesce every
     group, execute through group 0) without hurting safety. *)
  let p = { (small_params ()) with groups = 4; conflict_ratio = 0.05 } in
  let r = Jpaxos_model.run p in
  Alcotest.(check bool)
    (Printf.sprintf "globals executed (%d)" r.globals_executed)
    true (r.globals_executed > 0);
  Alcotest.(check bool) "linearizable with barriers" true r.safety_ok;
  Alcotest.(check bool) "throughput survives the barrier" true
    (r.throughput > 1000.);
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "barrier path deterministic" r.events r2.events;
  Alcotest.(check int) "same globals" r.globals_executed r2.globals_executed

let test_multigroup_chaos_one_group_crash_isolated () =
  (* Crash node 0 — the leader of group 0 (g mod n = 0) but a follower
     of group 1 (led by node 1). Group 1 must keep its leader and carry
     most of the run's throughput while group 0 fails over. *)
  let p =
    { (chaos_params ~duration:1.0
         [ Sfault.Crash { node = 0; at = 0.4; restart_at = Some 0.7 } ])
      with groups = 2 }
  in
  let r = Jpaxos_model.run p in
  Alcotest.(check bool) "group 0 failed over" true (r.view_changes >= 1);
  Alcotest.(check bool) "linearizable in every group" true r.safety_ok;
  Alcotest.(check bool)
    (Printf.sprintf "unaffected group carried on (g0 %.0f, g1 %.0f)"
       r.group_throughputs.(0) r.group_throughputs.(1))
    true
    (r.group_throughputs.(1) > 1.5 *. r.group_throughputs.(0));
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "chaos multi-group deterministic" r.events r2.events

(* Read-heavy fast path: leases + local reads in the model. *)

let read_params ?(stale = false) ratio =
  { (small_params ()) with
    read_ratio = ratio; lease = true; stale_reads = stale;
    clock_skew = 0.002; lease_duration = 0.5 }

let test_reads_lease_off_identity () =
  (* lease = false must leave the event stream byte-for-byte the
     lease-free one even with read_ratio > 0: reads take the ordered
     path like any write (the ordered-read baseline), no lease process
     runs, and no read-only counters move. *)
  let base = Jpaxos_model.run (small_params ()) in
  let r = Jpaxos_model.run { (small_params ()) with read_ratio = 0.95 } in
  Alcotest.(check (float 0.)) "same throughput" base.throughput r.throughput;
  Alcotest.(check int) "same event count" base.events r.events;
  Alcotest.(check int) "no fast-path reads" 0 r.reads_completed;
  Alcotest.(check int) "no rejects" 0 r.read_rejects;
  Alcotest.(check int) "no stale answers" 0 r.stale_answers

let test_reads_lease_off_identity_multigroup () =
  let mg p = Jpaxos_model.run { p with groups = 2 } in
  let base = mg (small_params ()) in
  let r = mg { (small_params ()) with read_ratio = 0.95 } in
  Alcotest.(check (float 0.)) "same throughput" base.throughput r.throughput;
  Alcotest.(check int) "same event count" base.events r.events;
  Alcotest.(check int) "no fast-path reads" 0 r.reads_completed

let test_reads_deterministic () =
  let p = read_params ~stale:true 0.5 in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check (float 0.)) "same throughput" r1.throughput r2.throughput;
  Alcotest.(check int) "same event count" r1.events r2.events;
  Alcotest.(check int) "same reads" r1.reads_completed r2.reads_completed;
  Alcotest.(check int) "same rejects" r1.read_rejects r2.read_rejects

let test_reads_linearizable_at_leaseholder () =
  (* With stale_reads off every read goes to the leaseholder, which
     serves it from local executed state once the lease is held. *)
  let r = Jpaxos_model.run (read_params 0.5) in
  Alcotest.(check bool)
    (Printf.sprintf "fast-path reads served (%d)" r.reads_completed)
    true (r.reads_completed > 1000);
  Alcotest.(check bool) "read safety holds" true r.safety_ok;
  Alcotest.(check int) "no stale answers" 0 r.stale_answers

let test_reads_stale_speedup () =
  (* Bounded-staleness reads spread over all three NICs; at 95/5 the
     fast path must clearly beat the ordered-read baseline (the full
     sweep and the 5x gate live in bench008). *)
  let base = Jpaxos_model.run { (small_params ()) with read_ratio = 0.95 } in
  let r = Jpaxos_model.run (read_params ~stale:true 0.95) in
  Alcotest.(check bool)
    (Printf.sprintf "stale reads (%.0f) >= 2x ordered baseline (%.0f)"
       r.throughput base.throughput)
    true
    (r.throughput >= 2. *. base.throughput);
  Alcotest.(check bool) "read safety holds" true r.safety_ok;
  Alcotest.(check int) "no stale answers" 0 r.stale_answers

let test_reads_multigroup () =
  (* Per-group leases: reads route through the Router to their group's
     decision queue and are served against that group's lease. *)
  let p = { (read_params ~stale:true 0.5) with groups = 2 } in
  let r1 = Jpaxos_model.run p in
  Alcotest.(check bool)
    (Printf.sprintf "multi-group reads served (%d)" r1.reads_completed)
    true (r1.reads_completed > 1000);
  Alcotest.(check bool) "read safety holds" true r1.safety_ok;
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "deterministic" r1.events r2.events;
  Alcotest.(check int) "same reads" r1.reads_completed r2.reads_completed

let test_chaos_reads_partition_golden () =
  (* The lease-safety chaos golden: partition the leaseholder (node 0)
     away from the majority while stale reads keep arriving at every
     node. Once its lease expires the old leaseholder must refuse
     reads rather than answer from a stale frontier — zero stale
     answers, nonzero rejects — and the majority side elects a new
     leader. Two seeded runs must be bit-identical. *)
  let p =
    { (chaos_params ~duration:1.5
         [ Sfault.Partition
             { group_a = [ 0 ]; group_b = [ 1; 2 ]; at = 0.3; heal_at = 1.2;
               symmetric = true } ])
      with
      read_ratio = 0.5; lease = true; stale_reads = true;
      clock_skew = 0.002; lease_duration = 0.5 }
  in
  let r1 = Jpaxos_model.run p in
  Alcotest.(check bool) "read safety across the partition" true r1.safety_ok;
  Alcotest.(check int) "zero stale answers" 0 r1.stale_answers;
  Alcotest.(check bool)
    (Printf.sprintf "expired/unfresh replicas refused reads (%d)"
       r1.read_rejects)
    true (r1.read_rejects > 0);
  Alcotest.(check bool) "majority elected a new leader" true
    (r1.view_changes >= 1);
  Alcotest.(check bool) "reads still completed" true (r1.reads_completed > 0);
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "golden: same events" r1.events r2.events;
  Alcotest.(check int) "golden: same completed" r1.completed r2.completed;
  Alcotest.(check int) "golden: same reads" r1.reads_completed
    r2.reads_completed;
  Alcotest.(check int) "golden: same rejects" r1.read_rejects r2.read_rejects

(* Early scheduling + optimistic speculative execution in the model. *)

let spec_params ?(threads = 4) ?(mis = 0.0) ?(groups = 1) () =
  { (small_params ~cores:8 ()) with
    exec_threads = threads; steal = groups = 1; groups;
    speculate = true; mispredict_ratio = mis }

let test_spec_off_counters_inert () =
  (* speculate = false must leave the event stream byte-for-byte the
     ordered one — even with a mispredict ratio configured — and report
     no speculation activity. (The full off-path identity against the
     seed is pinned by the throughput goldens above.) *)
  let base = { (spec_params ()) with speculate = false } in
  let r0 = Jpaxos_model.run base in
  let r = Jpaxos_model.run { base with mispredict_ratio = 0.5 } in
  Alcotest.(check (float 0.)) "same throughput" r0.throughput r.throughput;
  Alcotest.(check int) "same event count" r0.events r.events;
  Alcotest.(check int) "nothing dispatched" 0 r.spec_dispatched;
  Alcotest.(check int) "nothing confirmed" 0 r.spec_confirmed;
  Alcotest.(check int) "nothing aborted" 0 r.spec_aborted

let test_spec_collapses_commit_exec_gap () =
  (* The tentpole: with speculation on, the optimistic result is already
     staged when the decide arrives, so decide->reply collapses to a
     confirm. (The full sweep and the 2x gate live in bench009.) *)
  let off = Jpaxos_model.run { (spec_params ()) with speculate = false } in
  let on = Jpaxos_model.run (spec_params ()) in
  Alcotest.(check bool)
    (Printf.sprintf "speculations dispatched (%d)" on.spec_dispatched)
    true (on.spec_dispatched > 1000);
  Alcotest.(check bool)
    (Printf.sprintf "speculations confirmed (%d)" on.spec_confirmed)
    true (on.spec_confirmed > 1000);
  Alcotest.(check int) "happy path never aborts" 0 on.spec_aborted;
  Alcotest.(check bool)
    (Printf.sprintf "commit->execute gap shrank (%.1fus -> %.1fus)"
       (1e6 *. off.commit_exec_latency)
       (1e6 *. on.commit_exec_latency))
    true
    (on.commit_exec_latency < off.commit_exec_latency
     && off.commit_exec_latency > 0.);
  Alcotest.(check bool) "throughput not hurt" true
    (on.throughput >= 0.95 *. off.throughput);
  Alcotest.(check bool) "safety holds" true on.safety_ok

let test_spec_deterministic () =
  let p = spec_params ~mis:0.1 () in
  let r1 = Jpaxos_model.run p in
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "same event count" r1.events r2.events;
  Alcotest.(check int) "same completed" r1.completed r2.completed;
  Alcotest.(check int) "same dispatched" r1.spec_dispatched r2.spec_dispatched;
  Alcotest.(check int) "same confirmed" r1.spec_confirmed r2.spec_confirmed;
  Alcotest.(check int) "same aborted" r1.spec_aborted r2.spec_aborted;
  Alcotest.(check (float 0.)) "same commit->execute latency"
    r1.commit_exec_latency r2.commit_exec_latency

let test_spec_forced_mispredict_rolls_back () =
  (* The deterministic mispredict pattern exercises the rollback path on
     an otherwise happy run: frames abort and re-execute ordered, and
     the linearizability verdict still holds. *)
  let r = Jpaxos_model.run (spec_params ~mis:0.2 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "rollbacks happened (%d)" r.spec_aborted)
    true (r.spec_aborted > 100);
  Alcotest.(check bool) "confirms still dominate" true
    (r.spec_confirmed > r.spec_aborted);
  Alcotest.(check bool) "safety holds through rollbacks" true r.safety_ok;
  Alcotest.(check bool) "clients kept completing" true (r.completed > 1000)

let test_spec_multigroup () =
  (* Per-group speculation on the multi-group path: each group's leader
     speculates on its own decide stream. *)
  let p = spec_params ~groups:2 () in
  let r1 = Jpaxos_model.run p in
  Alcotest.(check bool)
    (Printf.sprintf "multi-group speculations confirmed (%d)"
       r1.spec_confirmed)
    true (r1.spec_confirmed > 1000);
  Alcotest.(check bool) "safety holds" true r1.safety_ok;
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "deterministic" r1.events r2.events;
  Alcotest.(check int) "same confirmed" r1.spec_confirmed r2.spec_confirmed

let test_chaos_spec_crash_golden () =
  (* The rollback chaos golden: crash the leader mid-speculation (with a
     forced-mispredict pattern on top). Every open frame must abort —
     never surviving into the new view — the linearizability verdict
     must hold, and two seeded runs must be bit-identical. *)
  let p =
    { (chaos_params ~duration:1.0
         [ Sfault.Crash { node = 0; at = 0.4; restart_at = Some 0.7 } ])
      with
      cores = 8; exec_threads = 4; steal = true; speculate = true;
      mispredict_ratio = 0.1 }
  in
  let r1 = Jpaxos_model.run p in
  Alcotest.(check bool)
    (Printf.sprintf "frames aborted through the crash (%d)" r1.spec_aborted)
    true (r1.spec_aborted > 0);
  Alcotest.(check bool) "view moved" true (r1.view_changes >= 1);
  Alcotest.(check bool) "linearizable through speculation + crash" true
    r1.safety_ok;
  Alcotest.(check bool) "clients completed requests" true (r1.completed > 1000);
  let r2 = Jpaxos_model.run p in
  Alcotest.(check int) "golden: same events" r1.events r2.events;
  Alcotest.(check int) "golden: same completed" r1.completed r2.completed;
  Alcotest.(check int) "golden: same dispatched" r1.spec_dispatched
    r2.spec_dispatched;
  Alcotest.(check int) "golden: same confirmed" r1.spec_confirmed
    r2.spec_confirmed;
  Alcotest.(check int) "golden: same aborted" r1.spec_aborted r2.spec_aborted

let suite =
  [
    Alcotest.test_case "engine: delay ordering" `Quick test_engine_delay_ordering;
    Alcotest.test_case "engine: same-time FIFO" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "engine: suspend/resume" `Quick test_engine_suspend_resume;
    Alcotest.test_case "engine: suspend timeout" `Quick test_engine_suspend_timeout;
    Alcotest.test_case "engine: run until" `Quick test_engine_run_until;
    Alcotest.test_case "cpu: one core serializes" `Quick test_cpu_serializes_on_one_core;
    Alcotest.test_case "cpu: two cores parallel" `Quick test_cpu_parallel_on_two_cores;
    Alcotest.test_case "cpu: switch cost" `Quick test_cpu_switch_cost_charged;
    Alcotest.test_case "slock: mutual exclusion" `Quick test_slock_mutual_exclusion;
    Alcotest.test_case "slock: blocked accounting" `Quick test_slock_blocked_accounting;
    Alcotest.test_case "squeue: fifo/capacity" `Quick test_squeue_fifo_and_capacity;
    Alcotest.test_case "squeue: take_timeout" `Quick test_squeue_take_timeout;
    Alcotest.test_case "mailbox: basics" `Quick test_mailbox;
    Alcotest.test_case "nic: packet rate" `Quick test_nic_packet_rate;
    Alcotest.test_case "nic: mtu split" `Quick test_nic_mtu_split;
    Alcotest.test_case "nic: idle rtt" `Quick test_nic_idle_rtt;
    Alcotest.test_case "jpaxos model: runs" `Quick test_jpaxos_model_runs;
    Alcotest.test_case "jpaxos model: deterministic" `Quick test_jpaxos_model_deterministic;
    Alcotest.test_case "jpaxos model: autotune off-path identical" `Quick
      test_jpaxos_autotune_off_path_identical;
    Alcotest.test_case "jpaxos model: autotune deterministic" `Quick
      test_jpaxos_autotune_deterministic;
    Alcotest.test_case "jpaxos model: autotune adapts" `Quick
      test_jpaxos_autotune_adapts;
    Alcotest.test_case "jpaxos model: scales with cores" `Quick test_jpaxos_model_scales;
    Alcotest.test_case "jpaxos model: NIC binds at many cores" `Slow
      test_jpaxos_nic_binds_at_many_cores;
    Alcotest.test_case "jpaxos model: window respected" `Quick test_jpaxos_window_respected;
    Alcotest.test_case "jpaxos model: leader RTT inflated" `Slow
      test_jpaxos_rtt_leader_inflated;
    Alcotest.test_case "jpaxos model: exec_threads=1 matches serial baseline"
      `Quick test_jpaxos_exec1_matches_serial_baseline;
    Alcotest.test_case "jpaxos model: executors scale low-conflict workload"
      `Slow test_jpaxos_executors_scale;
    Alcotest.test_case "jpaxos model: all-conflicting degenerates to serial"
      `Slow test_jpaxos_executors_conflicts_serialise;
    Alcotest.test_case "jpaxos model: steal path deterministic" `Quick
      test_jpaxos_steal_deterministic;
    Alcotest.test_case "jpaxos model: stealing recovers the zipfian convoy"
      `Quick test_jpaxos_steal_recovers_convoy;
    Alcotest.test_case "jpaxos model: stealing neutral on uniform load" `Quick
      test_jpaxos_steal_uniform_parity;
    Alcotest.test_case "jpaxos model: deterministic with executors" `Quick
      test_jpaxos_executors_deterministic;
    Alcotest.test_case "sdisk: group accounting and serialization" `Quick
      test_sdisk_groups_and_serializes;
    Alcotest.test_case "jpaxos model: group commit beats serial fsync" `Quick
      test_jpaxos_durable_group_beats_serial;
    Alcotest.test_case "jpaxos model: deterministic durable mode" `Quick
      test_jpaxos_durable_deterministic;
    Alcotest.test_case "chaos: fault-free fields inert" `Quick
      test_chaos_faultfree_fields_inert;
    Alcotest.test_case "chaos: leader crash recovers" `Slow
      test_chaos_leader_crash_recovers;
    Alcotest.test_case "chaos: crash run bit-identical" `Slow
      test_chaos_crash_deterministic;
    Alcotest.test_case "chaos: partition heals" `Slow test_chaos_partition_heals;
    Alcotest.test_case "chaos: catchup under loss" `Slow
      test_chaos_catchup_under_loss;
    Alcotest.test_case "chaos: seeded random soak" `Slow test_chaos_random_soak;
    Alcotest.test_case "chaos: fsync stall (durable)" `Quick
      test_chaos_fsync_stall_durable;
    Alcotest.test_case "multigroup: groups=1 path unchanged" `Quick
      test_multigroup_single_group_unchanged;
    Alcotest.test_case "multigroup: deterministic" `Quick
      test_multigroup_deterministic;
    Alcotest.test_case "multigroup: scales past the single leader" `Slow
      test_multigroup_scales_past_single_leader;
    Alcotest.test_case "multigroup: cross-group Global barrier" `Quick
      test_multigroup_global_barrier;
    Alcotest.test_case "multigroup: crash in one group isolated" `Slow
      test_multigroup_chaos_one_group_crash_isolated;
    Alcotest.test_case "reads: lease-off path identical" `Quick
      test_reads_lease_off_identity;
    Alcotest.test_case "reads: lease-off multi-group path identical" `Quick
      test_reads_lease_off_identity_multigroup;
    Alcotest.test_case "reads: deterministic" `Quick test_reads_deterministic;
    Alcotest.test_case "reads: linearizable at the leaseholder" `Quick
      test_reads_linearizable_at_leaseholder;
    Alcotest.test_case "reads: stale reads beat the ordered baseline" `Quick
      test_reads_stale_speedup;
    Alcotest.test_case "reads: multi-group per-group leases" `Quick
      test_reads_multigroup;
    Alcotest.test_case "chaos: partitioned leaseholder refuses reads" `Slow
      test_chaos_reads_partition_golden;
    Alcotest.test_case "speculation: off-path counters inert" `Quick
      test_spec_off_counters_inert;
    Alcotest.test_case "speculation: collapses the commit->execute gap" `Quick
      test_spec_collapses_commit_exec_gap;
    Alcotest.test_case "speculation: deterministic" `Quick
      test_spec_deterministic;
    Alcotest.test_case "speculation: forced mispredicts roll back" `Quick
      test_spec_forced_mispredict_rolls_back;
    Alcotest.test_case "speculation: multi-group per-group frames" `Quick
      test_spec_multigroup;
    Alcotest.test_case "chaos: leader crash mid-speculation golden" `Slow
      test_chaos_spec_crash_golden;
    Alcotest.test_case "reconfig: fields inert on the static path" `Quick
      test_reconfig_fields_inert;
    Alcotest.test_case "reconfig: grow/shrink under load" `Slow
      test_reconfig_model_grow_shrink;
    Alcotest.test_case "reconfig: crash-during-transfer golden" `Slow
      test_reconfig_chaos_golden;
  ]
