(* Tests for msmr_wire: codec primitives, framing, client messages. *)

open Msmr_wire

let test_codec_roundtrip_ints () =
  let w = Codec.W.create () in
  Codec.W.u8 w 0xab;
  Codec.W.i32 w (-123456);
  Codec.W.i64 w 0x1122334455667788L;
  Codec.W.int_as_i64 w max_int;
  Codec.W.bool w true;
  Codec.W.bool w false;
  let r = Codec.R.of_bytes (Codec.W.contents w) in
  Alcotest.(check int) "u8" 0xab (Codec.R.u8 r);
  Alcotest.(check int) "i32" (-123456) (Codec.R.i32 r);
  Alcotest.(check int64) "i64" 0x1122334455667788L (Codec.R.i64 r);
  Alcotest.(check int) "int64->int" max_int (Codec.R.int_from_i64 r);
  Alcotest.(check bool) "true" true (Codec.R.bool r);
  Alcotest.(check bool) "false" false (Codec.R.bool r);
  Codec.R.expect_end r

let test_codec_strings () =
  let w = Codec.W.create () in
  Codec.W.string w "";
  Codec.W.string w "hello";
  Codec.W.bytes w (Bytes.of_string "\x00\xff\x01");
  let r = Codec.R.of_bytes (Codec.W.contents w) in
  Alcotest.(check string) "empty" "" (Codec.R.string r);
  Alcotest.(check string) "hello" "hello" (Codec.R.string r);
  Alcotest.(check string) "binary" "\x00\xff\x01"
    (Bytes.to_string (Codec.R.bytes r));
  Codec.R.expect_end r

let test_codec_underflow () =
  let r = Codec.R.of_string "\x01" in
  Alcotest.check_raises "i32 underflows" Codec.Underflow (fun () ->
      ignore (Codec.R.i32 r))

let test_codec_trailing () =
  let r = Codec.R.of_string "\x01\x02" in
  ignore (Codec.R.u8 r);
  Alcotest.check_raises "trailing" (Codec.Malformed "1 trailing bytes")
    (fun () -> Codec.R.expect_end r)

let test_codec_bad_bool () =
  let r = Codec.R.of_string "\x07" in
  Alcotest.check_raises "bad bool" (Codec.Malformed "bool byte 7") (fun () ->
      ignore (Codec.R.bool r))

let test_codec_i32_range () =
  let w = Codec.W.create () in
  Alcotest.check_raises "too big" (Invalid_argument "Codec.W.i32: out of range")
    (fun () -> Codec.W.i32 w (0x7fffffff + 1));
  Codec.W.i32 w 0x7fffffff;
  Codec.W.i32 w (-0x80000000);
  let r = Codec.R.of_bytes (Codec.W.contents w) in
  Alcotest.(check int) "max" 0x7fffffff (Codec.R.i32 r);
  Alcotest.(check int) "min" (-0x80000000) (Codec.R.i32 r)

let prop_codec_string_roundtrip =
  QCheck.Test.make ~name:"codec string round-trip" ~count:300
    QCheck.(list string)
    (fun ss ->
       let w = Codec.W.create () in
       List.iter (Codec.W.string w) ss;
       let r = Codec.R.of_bytes (Codec.W.contents w) in
       let back = List.map (fun _ -> Codec.R.string r) ss in
       Codec.R.expect_end r;
       back = ss)

let mk_req client_id seq payload =
  { Client_msg.id = { client_id; seq }; payload = Bytes.of_string payload }

let test_request_roundtrip () =
  let r = mk_req 42 1001 "some payload" in
  let r' = Client_msg.request_of_bytes (Client_msg.request_to_bytes r) in
  Alcotest.(check bool) "equal" true (Client_msg.equal_request r r')

let test_request_wire_size () =
  let r = mk_req 1 2 "abcd" in
  Alcotest.(check int) "16 + payload" 20 (Client_msg.request_wire_size r);
  Alcotest.(check int) "encoding matches"
    (Client_msg.request_wire_size r)
    (Bytes.length (Client_msg.request_to_bytes r))

let test_reply_roundtrip () =
  let rep =
    { Client_msg.id = { client_id = 7; seq = 9 }; result = Bytes.of_string "ok" }
  in
  let rep' = Client_msg.reply_of_bytes (Client_msg.reply_to_bytes rep) in
  Alcotest.(check int) "client" 7 rep'.Client_msg.id.client_id;
  Alcotest.(check int) "seq" 9 rep'.Client_msg.id.seq;
  Alcotest.(check string) "result" "ok" (Bytes.to_string rep'.Client_msg.result)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"client request codec round-trip" ~count:300
    QCheck.(triple small_nat small_nat string)
    (fun (cid, seq, payload) ->
       let r = mk_req cid seq payload in
       Client_msg.equal_request r
         (Client_msg.request_of_bytes (Client_msg.request_to_bytes r)))

let test_frame_roundtrip () =
  let rd, wr = Unix.pipe () in
  (* The large frame exceeds the pipe buffer, so write from a thread. *)
  let writer =
    Thread.create
      (fun () ->
         Frame.write wr (Bytes.of_string "alpha");
         Frame.write wr (Bytes.of_string "");
         Frame.write wr (Bytes.of_string (String.make 70_000 'x')))
      ()
  in
  (match Frame.read rd with
   | Some b -> Alcotest.(check string) "first" "alpha" (Bytes.to_string b)
   | None -> Alcotest.fail "eof");
  (match Frame.read rd with
   | Some b -> Alcotest.(check int) "empty" 0 (Bytes.length b)
   | None -> Alcotest.fail "eof");
  (match Frame.read rd with
   | Some b -> Alcotest.(check int) "large" 70_000 (Bytes.length b)
   | None -> Alcotest.fail "eof");
  Thread.join writer;
  Unix.close wr;
  Alcotest.(check bool) "clean eof" true (Frame.read rd = None);
  Unix.close rd

let test_frame_eof_mid_frame () =
  let rd, wr = Unix.pipe () in
  (* A 4-byte header announcing 10 bytes, then only 3. *)
  let partial = Bytes.create 7 in
  Bytes.set_int32_be partial 0 10l;
  ignore (Unix.write wr partial 0 7);
  Unix.close wr;
  Alcotest.check_raises "mid-frame eof" End_of_file (fun () ->
      ignore (Frame.read rd));
  Unix.close rd

let test_frame_oversized () =
  let rd, wr = Unix.pipe () in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Frame.max_frame + 1));
  ignore (Unix.write wr hdr 0 4);
  (try
     ignore (Frame.read rd);
     Alcotest.fail "expected Oversized"
   with Frame.Oversized n ->
     Alcotest.(check int) "announced" (Frame.max_frame + 1) n);
  Unix.close wr;
  Unix.close rd

let test_codec_to_bytes_and_blit () =
  let w = Codec.W.create () in
  Codec.W.string w "abc";
  let copy = Bytes.create 16 in
  Bytes.fill copy 0 16 '.';
  Codec.W.blit_into w copy 2;
  Alcotest.(check string) "blitted at offset" "..\x00\x00\x00\x03abc"
    (Bytes.sub_string copy 0 9);
  Alcotest.check_raises "blit range checked"
    (Invalid_argument "Codec.W.blit_into: destination range out of bounds")
    (fun () -> Codec.W.blit_into w copy 10);
  let b = Codec.W.to_bytes w in
  Alcotest.(check string) "to_bytes" "\x00\x00\x00\x03abc" (Bytes.to_string b);
  (* The writer stays usable after [to_bytes] (buffer may be handed off). *)
  Codec.W.reset w;
  Codec.W.u8 w 7;
  Alcotest.(check string) "reusable" "\x07" (Bytes.to_string (Codec.W.to_bytes w))

let test_codec_writer_pool () =
  let b1 =
    Codec.W.with_pool (fun w ->
        Codec.W.string w "pooled";
        Codec.W.to_bytes w)
  in
  Alcotest.(check string) "first use" "\x00\x00\x00\x06pooled"
    (Bytes.to_string b1);
  (* A reused writer starts empty: no residue from the previous user. *)
  let b2 = Codec.W.with_pool (fun w -> Codec.W.to_bytes w) in
  Alcotest.(check int) "reused writer empty" 0 (Bytes.length b2)

let test_frame_write_many () =
  let rd, wr = Unix.pipe () in
  let payloads =
    [ Bytes.of_string "alpha"; Bytes.empty; Bytes.of_string "bb" ]
  in
  let writer = Thread.create (fun () -> Frame.write_many wr payloads) () in
  let got = List.map (fun _ -> Option.get (Frame.read rd)) payloads in
  Thread.join writer;
  Alcotest.(check (list string)) "frames preserved"
    (List.map Bytes.to_string payloads)
    (List.map Bytes.to_string got);
  Unix.close wr;
  Unix.close rd

(* Read fast-path frames. *)

let mk_read ?(staleness_ns = Client_msg.linearizable) cid seq payload =
  { Client_msg.id = { client_id = cid; seq }; staleness_ns;
    payload = Bytes.of_string payload }

let test_read_roundtrip () =
  let r = mk_read 42 1001 "key" in
  let b = Client_msg.read_to_bytes r in
  Alcotest.(check int) "wire size matches" (Client_msg.read_wire_size r)
    (Bytes.length b);
  Alcotest.(check bool) "equal" true
    (Client_msg.equal_read r (Client_msg.read_of_bytes b));
  let stale = mk_read ~staleness_ns:5_000_000 3 4 "" in
  Alcotest.(check bool) "stale bound survives" true
    (Client_msg.equal_read stale
       (Client_msg.read_of_bytes (Client_msg.read_to_bytes stale)))

let test_read_magic_discriminates () =
  (* [Replica.submit] peeks one i32 to route a frame: reads are marked
     negative, writes always start with a non-negative client id. *)
  let read = Client_msg.read_to_bytes (mk_read 42 1 "k") in
  let write = Client_msg.request_to_bytes (mk_req 42 1 "k") in
  Alcotest.(check bool) "read frame marked" true
    (Client_msg.is_read_raw read);
  Alcotest.(check bool) "write frame unmarked" false
    (Client_msg.is_read_raw write);
  (* A read frame must not decode as a write request. *)
  Alcotest.(check bool) "encodings disjoint" true
    (try
       ignore (Client_msg.request_of_bytes read);
       false
     with Codec.Malformed _ | Codec.Underflow -> true)

let test_read_reply_roundtrip () =
  let rid = { Client_msg.client_id = 7; seq = 9 } in
  let statuses =
    [ Client_msg.Read_ok (Bytes.of_string "value");
      Client_msg.Read_ok Bytes.empty;
      Client_msg.Not_leaseholder 2;
      Client_msg.Not_leaseholder (-1);
      Client_msg.Too_stale 0;
      Client_msg.Read_unsupported ]
  in
  List.iter
    (fun status ->
       let rep = { Client_msg.rid; status } in
       let b = Client_msg.read_reply_to_bytes rep in
       Alcotest.(check bool) "reply frame marked" true
         (Bytes.get_int32_be b 0 = Int32.of_int Client_msg.read_reply_magic);
       Alcotest.(check bool) "round-trips" true
         (Client_msg.equal_read_reply rep (Client_msg.read_reply_of_bytes b)))
    statuses

let prop_read_roundtrip =
  QCheck.Test.make ~name:"client read codec round-trip" ~count:300
    QCheck.(quad small_nat small_nat (int_range (-1) 1_000_000) string)
    (fun (cid, seq, bound, payload) ->
       let r = mk_read ~staleness_ns:bound cid seq payload in
       Client_msg.equal_read r
         (Client_msg.read_of_bytes (Client_msg.read_to_bytes r)))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_codec_string_roundtrip; prop_request_roundtrip; prop_read_roundtrip ]

let suite =
  [
    Alcotest.test_case "codec: int round-trip" `Quick test_codec_roundtrip_ints;
    Alcotest.test_case "codec: strings" `Quick test_codec_strings;
    Alcotest.test_case "codec: underflow" `Quick test_codec_underflow;
    Alcotest.test_case "codec: trailing bytes" `Quick test_codec_trailing;
    Alcotest.test_case "codec: bad bool" `Quick test_codec_bad_bool;
    Alcotest.test_case "codec: i32 range" `Quick test_codec_i32_range;
    Alcotest.test_case "client: request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "client: request wire size" `Quick test_request_wire_size;
    Alcotest.test_case "client: reply round-trip" `Quick test_reply_roundtrip;
    Alcotest.test_case "frame: round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: eof mid-frame" `Quick test_frame_eof_mid_frame;
    Alcotest.test_case "frame: oversized" `Quick test_frame_oversized;
    Alcotest.test_case "codec: to_bytes/blit_into" `Quick
      test_codec_to_bytes_and_blit;
    Alcotest.test_case "codec: writer pool" `Quick test_codec_writer_pool;
    Alcotest.test_case "frame: write_many" `Quick test_frame_write_many;
    Alcotest.test_case "client: read round-trip" `Quick test_read_roundtrip;
    Alcotest.test_case "client: read magic discriminates" `Quick
      test_read_magic_discriminates;
    Alcotest.test_case "client: read reply round-trip" `Quick
      test_read_reply_roundtrip;
  ]
  @ qsuite
