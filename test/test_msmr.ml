let () =
  Alcotest.run "msmr"
    [
      ("platform", Test_platform.suite);
      ("lockfree", Test_lockfree.suite);
      ("wire", Test_wire.suite);
      ("consensus", Test_consensus.suite);
      ("runtime", Test_runtime.suite);
      ("tcp", Test_tcp.suite);
      ("sim", Test_sim.suite);
      ("baseline", Test_baseline.suite);
      ("kv", Test_kv.suite);
      ("storage", Test_storage.suite);
      ("obs", Test_obs.suite);
    ]
