module Codec = Msmr_wire.Codec
module Cmap = Msmr_platform.Concurrent_map

type command =
  | Acquire of string
  | Release of string
  | Holder of string
  | Expire_session of int

type reply =
  | Granted
  | Busy of int
  | Released
  | Not_holder
  | Holder_is of int option
  | Expired of int
  | Error of string

let encode_command cmd =
  Codec.W.with_pool @@ fun w ->
  (match cmd with
   | Acquire name ->
     Codec.W.u8 w 1;
     Codec.W.string w name
   | Release name ->
     Codec.W.u8 w 2;
     Codec.W.string w name
   | Holder name ->
     Codec.W.u8 w 3;
     Codec.W.string w name
   | Expire_session s ->
     Codec.W.u8 w 4;
     Codec.W.int_as_i64 w s);
  Codec.W.to_bytes w

let decode_command b =
  let r = Codec.R.of_bytes b in
  let cmd =
    match Codec.R.u8 r with
    | 1 -> Acquire (Codec.R.string r)
    | 2 -> Release (Codec.R.string r)
    | 3 -> Holder (Codec.R.string r)
    | 4 -> Expire_session (Codec.R.int_from_i64 r)
    | n -> raise (Codec.Malformed (Printf.sprintf "lock command tag %d" n))
  in
  Codec.R.expect_end r;
  cmd

let encode_reply rep =
  Codec.W.with_pool @@ fun w ->
  (match rep with
   | Granted -> Codec.W.u8 w 1
   | Busy holder ->
     Codec.W.u8 w 2;
     Codec.W.int_as_i64 w holder
   | Released -> Codec.W.u8 w 3
   | Not_holder -> Codec.W.u8 w 4
   | Holder_is None -> Codec.W.u8 w 5
   | Holder_is (Some s) ->
     Codec.W.u8 w 6;
     Codec.W.int_as_i64 w s
   | Expired n ->
     Codec.W.u8 w 7;
     Codec.W.int_as_i64 w n
   | Error msg ->
     Codec.W.u8 w 8;
     Codec.W.string w msg);
  Codec.W.to_bytes w

let decode_reply b =
  let r = Codec.R.of_bytes b in
  let rep =
    match Codec.R.u8 r with
    | 1 -> Granted
    | 2 -> Busy (Codec.R.int_from_i64 r)
    | 3 -> Released
    | 4 -> Not_holder
    | 5 -> Holder_is None
    | 6 -> Holder_is (Some (Codec.R.int_from_i64 r))
    | 7 -> Expired (Codec.R.int_from_i64 r)
    | 8 -> Error (Codec.R.string r)
    | n -> raise (Codec.Malformed (Printf.sprintf "lock reply tag %d" n))
  in
  Codec.R.expect_end r;
  rep

(* Single-lock commands conflict only on the lock's name; session expiry
   scans every lock and is Global. *)
let conflict_of_command = function
  | Acquire name | Release name | Holder name ->
    Msmr_runtime.Service.Keys [ name ]
  | Expire_session _ -> Msmr_runtime.Service.Global

let make () =
  (* Sharded map so [apply] may run concurrently for different lock names
     under the parallel ServiceManager. Commands on the same name are
     serialised by executor routing, so the find-then-set sequences below
     are race-free without a per-name CAS. *)
  let locks : (string, int) Cmap.t = Cmap.create ~shards:16 () in
  let apply ~session cmd =
    match cmd with
    | Acquire name -> (
        match Cmap.find_opt locks name with
        | None ->
          Cmap.set locks name session;
          Granted
        | Some holder when holder = session -> Granted (* re-entrant *)
        | Some holder -> Busy holder)
    | Release name -> (
        match Cmap.find_opt locks name with
        | Some holder when holder = session ->
          Cmap.remove locks name;
          Released
        | Some _ | None -> Not_holder)
    | Holder name -> Holder_is (Cmap.find_opt locks name)
    | Expire_session s ->
      let doomed =
        Cmap.fold
          (fun name holder acc -> if holder = s then name :: acc else acc)
          locks []
      in
      List.iter (Cmap.remove locks) doomed;
      Expired (List.length doomed)
  in
  (* Speculative apply: capture the prior binding of the touched name so
     a mispredicted Acquire/Release rolls back to exactly the state it
     observed. Holder is read-only; Expire_session reinserts the expired
     holders. *)
  let apply_undo ~session cmd =
    let save name =
      let prior = Cmap.find_opt locks name in
      fun () ->
        match prior with
        | Some holder -> Cmap.set locks name holder
        | None -> Cmap.remove locks name
    in
    match cmd with
    | Acquire name | Release name ->
      let undo = save name in
      (apply ~session cmd, undo)
    | Holder _ -> (apply ~session cmd, fun () -> ())
    | Expire_session s ->
      let doomed =
        Cmap.fold
          (fun name holder acc ->
             if holder = s then (name, holder) :: acc else acc)
          locks []
      in
      let undo () =
        List.iter (fun (name, holder) -> Cmap.set locks name holder) doomed
      in
      (apply ~session cmd, undo)
  in
  let snapshot () =
    let w = Codec.W.create () in
    let bindings =
      List.sort compare (Cmap.fold (fun k v acc -> (k, v) :: acc) locks [])
    in
    Codec.W.i32 w (List.length bindings);
    List.iter
      (fun (name, holder) ->
         Codec.W.string w name;
         Codec.W.int_as_i64 w holder)
      bindings;
    Codec.W.contents w
  in
  let restore b =
    let r = Codec.R.of_bytes b in
    Cmap.clear locks;
    let count = Codec.R.i32 r in
    for _ = 1 to count do
      let name = Codec.R.string r in
      let holder = Codec.R.int_from_i64 r in
      Cmap.set locks name holder
    done
  in
  { Msmr_runtime.Service.execute =
      (fun req ->
         let reply =
           match decode_command req.payload with
           | cmd -> apply ~session:req.id.client_id cmd
           | exception (Codec.Underflow | Codec.Malformed _) ->
             Error "malformed command"
         in
         encode_reply reply);
    snapshot;
    restore;
    conflict_keys =
      (fun req ->
         match decode_command req.payload with
         | cmd -> conflict_of_command cmd
         | exception (Codec.Underflow | Codec.Malformed _) ->
           Msmr_runtime.Service.Keys []);
    execute_undo =
      Some
        (fun req ->
           match decode_command req.payload with
           | cmd ->
             let reply, undo = apply_undo ~session:req.id.client_id cmd in
             (encode_reply reply, undo)
           | exception (Codec.Underflow | Codec.Malformed _) ->
             (encode_reply (Error "malformed command"), fun () -> ())) }
