module Codec = Msmr_wire.Codec
module Cmap = Msmr_platform.Concurrent_map

type command =
  | Put of { key : string; value : string; ephemeral : bool }
  | Get of string
  | Delete of string
  | Incr of { key : string; by : int }
  | Expire_session of int
  | List_keys of string

type reply =
  | Ok_unit
  | Ok_value of string option
  | Ok_int of int
  | Ok_keys of string list
  | Error of string

let encode_command cmd =
  Codec.W.with_pool @@ fun w ->
  (match cmd with
   | Put { key; value; ephemeral } ->
     Codec.W.u8 w 1;
     Codec.W.string w key;
     Codec.W.string w value;
     Codec.W.bool w ephemeral
   | Get key ->
     Codec.W.u8 w 2;
     Codec.W.string w key
   | Delete key ->
     Codec.W.u8 w 3;
     Codec.W.string w key
   | Incr { key; by } ->
     Codec.W.u8 w 4;
     Codec.W.string w key;
     Codec.W.int_as_i64 w by
   | Expire_session s ->
     Codec.W.u8 w 5;
     Codec.W.int_as_i64 w s
   | List_keys prefix ->
     Codec.W.u8 w 6;
     Codec.W.string w prefix);
  Codec.W.to_bytes w

let decode_command b =
  let r = Codec.R.of_bytes b in
  let cmd =
    match Codec.R.u8 r with
    | 1 ->
      let key = Codec.R.string r in
      let value = Codec.R.string r in
      let ephemeral = Codec.R.bool r in
      Put { key; value; ephemeral }
    | 2 -> Get (Codec.R.string r)
    | 3 -> Delete (Codec.R.string r)
    | 4 ->
      let key = Codec.R.string r in
      let by = Codec.R.int_from_i64 r in
      Incr { key; by }
    | 5 -> Expire_session (Codec.R.int_from_i64 r)
    | 6 -> List_keys (Codec.R.string r)
    | n -> raise (Codec.Malformed (Printf.sprintf "kv command tag %d" n))
  in
  Codec.R.expect_end r;
  cmd

let encode_reply rep =
  Codec.W.with_pool @@ fun w ->
  (match rep with
   | Ok_unit -> Codec.W.u8 w 1
   | Ok_value None -> Codec.W.u8 w 2
   | Ok_value (Some v) ->
     Codec.W.u8 w 3;
     Codec.W.string w v
   | Ok_int n ->
     Codec.W.u8 w 4;
     Codec.W.int_as_i64 w n
   | Ok_keys keys ->
     Codec.W.u8 w 5;
     Codec.W.i32 w (List.length keys);
     List.iter (Codec.W.string w) keys
   | Error msg ->
     Codec.W.u8 w 6;
     Codec.W.string w msg);
  Codec.W.to_bytes w

let decode_reply b =
  let r = Codec.R.of_bytes b in
  let rep =
    match Codec.R.u8 r with
    | 1 -> Ok_unit
    | 2 -> Ok_value None
    | 3 -> Ok_value (Some (Codec.R.string r))
    | 4 -> Ok_int (Codec.R.int_from_i64 r)
    | 5 ->
      let count = Codec.R.i32 r in
      if count < 0 then raise (Codec.Malformed "negative key count");
      Ok_keys (List.init count (fun _ -> Codec.R.string r))
    | 6 -> Error (Codec.R.string r)
    | n -> raise (Codec.Malformed (Printf.sprintf "kv reply tag %d" n))
  in
  Codec.R.expect_end r;
  rep

(* The conflict class of a command: per-key commands conflict only on
   their key, whole-store commands (session expiry, prefix scans) are
   Global and get serialised by the executor barrier. A malformed payload
   touches nothing (it only produces an error reply). *)
let conflict_of_command = function
  | Put { key; _ } | Get key | Delete key | Incr { key; _ } ->
    Msmr_runtime.Service.Keys [ key ]
  | Expire_session _ | List_keys _ -> Msmr_runtime.Service.Global

module Store = struct
  type entry = {
    value : string;
    owner : int option;   (* session id for ephemeral keys *)
  }

  (* Sharded map, not a plain Hashtbl: with the parallel ServiceManager,
     [apply] runs concurrently from several executor threads for commands
     on different keys. Commands on the same key are serialised by the
     executor routing, and Global commands (plus snapshot/restore) only
     run with the executors quiescent. *)
  type t = {
    table : (string, entry) Cmap.t;
  }

  let create () = { table = Cmap.create ~shards:16 () }

  let apply t ~session cmd =
    match cmd with
    | Put { key; value; ephemeral } ->
      Cmap.set t.table key
        { value; owner = (if ephemeral then Some session else None) };
      Ok_unit
    | Get key ->
      Ok_value (Option.map (fun e -> e.value) (Cmap.find_opt t.table key))
    | Delete key ->
      Cmap.remove t.table key;
      Ok_unit
    | Incr { key; by } ->
      let current =
        match Cmap.find_opt t.table key with
        | Some e -> (try int_of_string e.value with Failure _ -> 0)
        | None -> 0
      in
      let next = current + by in
      Cmap.set t.table key { value = string_of_int next; owner = None };
      Ok_int next
    | Expire_session s ->
      let doomed =
        Cmap.fold
          (fun k e acc -> if e.owner = Some s then k :: acc else acc)
          t.table []
      in
      List.iter (Cmap.remove t.table) doomed;
      Ok_int (List.length doomed)
    | List_keys prefix ->
      let keys =
        Cmap.fold
          (fun k _ acc ->
             if String.starts_with ~prefix k then k :: acc else acc)
          t.table []
      in
      Ok_keys (List.sort compare keys)

  let snapshot t =
    let w = Codec.W.create () in
    (* Deterministic order so snapshots are comparable across replicas. *)
    let bindings =
      List.sort compare (Cmap.fold (fun k e acc -> (k, e) :: acc) t.table [])
    in
    Codec.W.i32 w (List.length bindings);
    List.iter
      (fun (k, (e : entry)) ->
         Codec.W.string w k;
         Codec.W.string w e.value;
         match e.owner with
         | None -> Codec.W.bool w false
         | Some s ->
           Codec.W.bool w true;
           Codec.W.int_as_i64 w s)
      bindings;
    Codec.W.contents w

  let restore t b =
    let r = Codec.R.of_bytes b in
    let count = Codec.R.i32 r in
    Cmap.clear t.table;
    for _ = 1 to count do
      let k = Codec.R.string r in
      let value = Codec.R.string r in
      let owner = if Codec.R.bool r then Some (Codec.R.int_from_i64 r) else None in
      Cmap.set t.table k { value; owner }
    done

  let size t = Cmap.length t.table

  (* Speculative apply: same result as [apply], plus a closure restoring
     the bindings the command displaced. Undoing a suffix of same-key
     applies in reverse order walks the key back binding by binding, so
     state ends exactly where it started. Read-only commands hand back a
     no-op. *)
  let apply_undo t ~session cmd =
    let save key =
      let prior = Cmap.find_opt t.table key in
      fun () ->
        match prior with
        | Some e -> Cmap.set t.table key e
        | None -> Cmap.remove t.table key
    in
    match cmd with
    | Put { key; _ } | Delete key | Incr { key; _ } ->
      let undo = save key in
      (apply t ~session cmd, undo)
    | Expire_session s ->
      let doomed =
        Cmap.fold
          (fun k e acc -> if e.owner = Some s then (k, e) :: acc else acc)
          t.table []
      in
      let undo () = List.iter (fun (k, e) -> Cmap.set t.table k e) doomed in
      (apply t ~session cmd, undo)
    | Get _ | List_keys _ -> (apply t ~session cmd, fun () -> ())
end

let make () =
  let store = Store.create () in
  { Msmr_runtime.Service.execute =
      (fun req ->
         let reply =
           match decode_command req.payload with
           | cmd -> Store.apply store ~session:req.id.client_id cmd
           | exception (Codec.Underflow | Codec.Malformed _) ->
             Error "malformed command"
         in
         encode_reply reply);
    snapshot = (fun () -> Store.snapshot store);
    restore = (fun b -> Store.restore store b);
    conflict_keys =
      (fun req ->
         match decode_command req.payload with
         | cmd -> conflict_of_command cmd
         | exception (Codec.Underflow | Codec.Malformed _) ->
           (* Touches no state; conflicts with nothing. *)
           Msmr_runtime.Service.Keys []);
    execute_undo =
      Some
        (fun req ->
           match decode_command req.payload with
           | cmd ->
             let reply, undo =
               Store.apply_undo store ~session:req.id.client_id cmd
             in
             (encode_reply reply, undo)
           | exception (Codec.Underflow | Codec.Malformed _) ->
             (encode_reply (Error "malformed command"), fun () -> ())) }
