(** Client-facing request and reply messages.

    A request is uniquely identified by [(client_id, seq)]; clients number
    their requests sequentially, which the reply cache uses to guarantee
    at-most-once execution (Section III-B). *)

type request_id = {
  client_id : int;
  seq : int;
}

val compare_request_id : request_id -> request_id -> int
val pp_request_id : Format.formatter -> request_id -> unit

type request = {
  id : request_id;
  payload : bytes;
}

type reply = {
  id : request_id;
  result : bytes;
}

val request_wire_size : request -> int
(** Encoded size in bytes, used by the batching policy (the paper's BSZ
    limit is expressed in bytes of batch payload). *)

val encode_request : Codec.W.t -> request -> unit
val decode_request : Codec.R.t -> request
val encode_reply : Codec.W.t -> reply -> unit
val decode_reply : Codec.R.t -> reply

val request_to_bytes : request -> bytes
val request_of_bytes : bytes -> request
(** @raise Codec.Underflow or {!Codec.Malformed} on bad input. *)

val reply_to_bytes : reply -> bytes
val reply_of_bytes : bytes -> reply

val equal_request : request -> request -> bool
val pp_request : Format.formatter -> request -> unit

(** {1 Read fast path}

    Lease-based reads bypass the Batcher/Paxos spine entirely (DESIGN.md
    section 15).  Write requests start with [client_id : i32 >= 0], so read
    frames are marked with a negative first word: {!read_magic} for
    requests, {!read_reply_magic} for replies.  [Replica.submit] peeks that
    one word to route read frames; the write encoding is untouched. *)

val read_magic : int
(** First-i32 marker of an encoded read request ([-2]). *)

val read_reply_magic : int
(** First-i32 marker of an encoded read reply ([-4]). *)

type read = {
  id : request_id;
  staleness_ns : int;
      (** Client-supplied staleness bound in nanoseconds. Negative
          ({!linearizable}) demands a linearizable read at the leaseholder;
          [>= 0] permits a bounded-staleness read at any replica. *)
  payload : bytes;
}

val linearizable : int
(** Sentinel [staleness_ns] ([-1]) selecting the linearizable leaseholder
    path. *)

type read_status =
  | Read_ok of bytes  (** Result from the executed state machine. *)
  | Not_leaseholder of int
      (** Serving replica holds no valid lease; payload is a hint: the node
          id it believes leads (or [-1] when unknown). *)
  | Too_stale of int
      (** Follower's apply frontier is older than the requested bound;
          payload is a leader hint as in [Not_leaseholder]. *)
  | Read_unsupported
      (** Cluster runs with [lease_enabled = false]; fail fast, do not
          redirect. *)

type read_reply = {
  rid : request_id;
  status : read_status;
}

val is_read_raw : bytes -> bool
(** [true] iff the raw frame is an encoded read request (first i32 is
    {!read_magic}).  Write frames always start with a non-negative
    client id. *)

val read_wire_size : read -> int

val encode_read : Codec.W.t -> read -> unit
val decode_read : Codec.R.t -> read
val encode_read_reply : Codec.W.t -> read_reply -> unit
val decode_read_reply : Codec.R.t -> read_reply
val read_to_bytes : read -> bytes
val read_of_bytes : bytes -> read
val read_reply_to_bytes : read_reply -> bytes
val read_reply_of_bytes : bytes -> read_reply
val equal_read : read -> read -> bool
val equal_read_reply : read_reply -> read_reply -> bool
val pp_read : Format.formatter -> read -> unit
