(** Length-prefixed framing over file descriptors.

    Both the ClientIO and ReplicaIO TCP transports carry frames: a 4-byte
    big-endian payload length followed by the payload. [read] handles
    short reads; [write] handles short writes. *)

exception Oversized of int
(** Raised when a peer announces a frame larger than [max_frame]. *)

val max_frame : int
(** Upper bound on accepted frame payloads (16 MiB) — guards against
    malformed peers allocating unbounded memory. *)

val write : Unix.file_descr -> bytes -> unit
(** Write one frame. @raise Unix.Unix_error on I/O failure. *)

val write_many : Unix.file_descr -> bytes list -> unit
(** Write several frames with a single [write(2)] (one coalesced buffer).
    Equivalent to [List.iter (write fd)] but cheaper; the ClientIO reply
    drain uses it to flush a whole pass at once.
    @raise Unix.Unix_error on I/O failure. *)

val read : Unix.file_descr -> bytes option
(** Read one frame; [None] on clean EOF at a frame boundary.
    @raise End_of_file on EOF mid-frame,
    @raise Oversized on an over-long announced length. *)
