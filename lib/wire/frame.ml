exception Oversized of int

let max_frame = 16 * 1024 * 1024

let write_all fd buf ofs len =
  let rec go ofs len =
    if len > 0 then begin
      let n = Unix.write fd buf ofs len in
      go (ofs + n) (len - n)
    end
  in
  go ofs len

(* Returns false on EOF before the first byte, raises End_of_file on EOF
   mid-buffer. *)
let read_exactly fd buf len =
  let rec go ofs =
    if ofs >= len then true
    else
      match Unix.read fd buf ofs (len - ofs) with
      | 0 -> if ofs = 0 then false else raise End_of_file
      | n -> go (ofs + n)
  in
  go 0

let write fd payload =
  let len = Bytes.length payload in
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_be frame 0 (Int32.of_int len);
  Bytes.blit payload 0 frame 4 len;
  write_all fd frame 0 (4 + len)

let write_many fd payloads =
  match payloads with
  | [] -> ()
  | [ p ] -> write fd p
  | _ ->
    (* One buffer, one write(2): frames of a drain pass share the
       syscall instead of paying one each. *)
    let total =
      List.fold_left (fun acc p -> acc + 4 + Bytes.length p) 0 payloads
    in
    let buf = Bytes.create total in
    let pos = ref 0 in
    List.iter
      (fun p ->
         let len = Bytes.length p in
         Bytes.set_int32_be buf !pos (Int32.of_int len);
         Bytes.blit p 0 buf (!pos + 4) len;
         pos := !pos + 4 + len)
      payloads;
    write_all fd buf 0 total

let read fd =
  let hdr = Bytes.create 4 in
  if not (read_exactly fd hdr 4) then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then raise (Oversized len);
    let payload = Bytes.create len in
    if len > 0 && not (read_exactly fd payload len) then raise End_of_file;
    Some payload
  end
