type request_id = {
  client_id : int;
  seq : int;
}

let compare_request_id a b =
  match compare a.client_id b.client_id with
  | 0 -> compare a.seq b.seq
  | c -> c

let pp_request_id ppf id = Format.fprintf ppf "%d.%d" id.client_id id.seq

type request = {
  id : request_id;
  payload : bytes;
}

type reply = {
  id : request_id;
  result : bytes;
}

(* client_id:4 + seq:8 + len:4 + payload *)
let request_wire_size r = 16 + Bytes.length r.payload

let encode_request w (r : request) =
  Codec.W.i32 w r.id.client_id;
  Codec.W.int_as_i64 w r.id.seq;
  Codec.W.bytes w r.payload

let decode_request rd : request =
  let client_id = Codec.R.i32 rd in
  let seq = Codec.R.int_from_i64 rd in
  let payload = Codec.R.bytes rd in
  { id = { client_id; seq }; payload }

let encode_reply w (r : reply) =
  Codec.W.i32 w r.id.client_id;
  Codec.W.int_as_i64 w r.id.seq;
  Codec.W.bytes w r.result

let decode_reply rd : reply =
  let client_id = Codec.R.i32 rd in
  let seq = Codec.R.int_from_i64 rd in
  let result = Codec.R.bytes rd in
  { id = { client_id; seq }; result }

let request_to_bytes r =
  Codec.W.with_pool (fun w ->
      encode_request w r;
      Codec.W.to_bytes w)

let request_of_bytes b =
  let rd = Codec.R.of_bytes b in
  let r = decode_request rd in
  Codec.R.expect_end rd;
  r

let reply_to_bytes r =
  Codec.W.with_pool (fun w ->
      encode_reply w r;
      Codec.W.to_bytes w)

let reply_of_bytes b =
  let rd = Codec.R.of_bytes b in
  let r = decode_reply rd in
  Codec.R.expect_end rd;
  r

let equal_request (a : request) (b : request) =
  compare_request_id a.id b.id = 0 && Bytes.equal a.payload b.payload

let pp_request ppf (r : request) =
  Format.fprintf ppf "req(%a, %dB)" pp_request_id r.id (Bytes.length r.payload)

(* --- Read fast path (lease-based reads, DESIGN.md section 15) ----------

   Write requests start with [client_id : i32 >= 0], so a negative first
   word unambiguously marks the frame as something else.  Reads use -2 and
   read replies -4; this lets Replica.submit / Replica_group.submit peek a
   single i32 and route read frames around the Batcher/Paxos spine without
   touching the write encoding at all. *)

let read_magic = -2
let read_reply_magic = -4

type read = {
  id : request_id;
  staleness_ns : int;
  payload : bytes;
}

let linearizable = -1

type read_status =
  | Read_ok of bytes
  | Not_leaseholder of int
  | Too_stale of int
  | Read_unsupported

type read_reply = {
  rid : request_id;
  status : read_status;
}

let is_read_raw b = Bytes.length b >= 4 && Int32.to_int (Bytes.get_int32_be b 0) = read_magic

(* magic:4 + client_id:4 + seq:8 + staleness:8 + len:4 + payload *)
let read_wire_size r = 28 + Bytes.length r.payload

let encode_read w (r : read) =
  Codec.W.i32 w read_magic;
  Codec.W.i32 w r.id.client_id;
  Codec.W.int_as_i64 w r.id.seq;
  Codec.W.int_as_i64 w r.staleness_ns;
  Codec.W.bytes w r.payload

let decode_read rd : read =
  let magic = Codec.R.i32 rd in
  if magic <> read_magic then
    raise (Codec.Malformed (Printf.sprintf "read magic %d" magic));
  let client_id = Codec.R.i32 rd in
  let seq = Codec.R.int_from_i64 rd in
  let staleness_ns = Codec.R.int_from_i64 rd in
  let payload = Codec.R.bytes rd in
  { id = { client_id; seq }; staleness_ns; payload }

let encode_read_reply w (r : read_reply) =
  Codec.W.i32 w read_reply_magic;
  Codec.W.i32 w r.rid.client_id;
  Codec.W.int_as_i64 w r.rid.seq;
  (match r.status with
  | Read_ok result ->
      Codec.W.u8 w 0;
      Codec.W.bytes w result
  | Not_leaseholder hint ->
      Codec.W.u8 w 1;
      Codec.W.int_as_i64 w hint
  | Too_stale hint ->
      Codec.W.u8 w 2;
      Codec.W.int_as_i64 w hint
  | Read_unsupported -> Codec.W.u8 w 3)

let decode_read_reply rd : read_reply =
  let magic = Codec.R.i32 rd in
  if magic <> read_reply_magic then
    raise (Codec.Malformed (Printf.sprintf "read reply magic %d" magic));
  let client_id = Codec.R.i32 rd in
  let seq = Codec.R.int_from_i64 rd in
  let status =
    match Codec.R.u8 rd with
    | 0 -> Read_ok (Codec.R.bytes rd)
    | 1 -> Not_leaseholder (Codec.R.int_from_i64 rd)
    | 2 -> Too_stale (Codec.R.int_from_i64 rd)
    | 3 -> Read_unsupported
    | k -> raise (Codec.Malformed (Printf.sprintf "read status %d" k))
  in
  { rid = { client_id; seq }; status }

let read_to_bytes r =
  Codec.W.with_pool (fun w ->
      encode_read w r;
      Codec.W.to_bytes w)

let read_of_bytes b =
  let rd = Codec.R.of_bytes b in
  let r = decode_read rd in
  Codec.R.expect_end rd;
  r

let read_reply_to_bytes r =
  Codec.W.with_pool (fun w ->
      encode_read_reply w r;
      Codec.W.to_bytes w)

let read_reply_of_bytes b =
  let rd = Codec.R.of_bytes b in
  let r = decode_read_reply rd in
  Codec.R.expect_end rd;
  r

let equal_read (a : read) (b : read) =
  compare_request_id a.id b.id = 0
  && a.staleness_ns = b.staleness_ns
  && Bytes.equal a.payload b.payload

let equal_read_reply (a : read_reply) (b : read_reply) =
  compare_request_id a.rid b.rid = 0
  &&
  match (a.status, b.status) with
  | Read_ok x, Read_ok y -> Bytes.equal x y
  | Not_leaseholder x, Not_leaseholder y | Too_stale x, Too_stale y -> x = y
  | Read_unsupported, Read_unsupported -> true
  | (Read_ok _ | Not_leaseholder _ | Too_stale _ | Read_unsupported), _ -> false

let pp_read ppf (r : read) =
  Format.fprintf ppf "read(%a, stale<=%dns, %dB)" pp_request_id r.id
    r.staleness_ns (Bytes.length r.payload)
