type request_id = {
  client_id : int;
  seq : int;
}

let compare_request_id a b =
  match compare a.client_id b.client_id with
  | 0 -> compare a.seq b.seq
  | c -> c

let pp_request_id ppf id = Format.fprintf ppf "%d.%d" id.client_id id.seq

type request = {
  id : request_id;
  payload : bytes;
}

type reply = {
  id : request_id;
  result : bytes;
}

(* client_id:4 + seq:8 + len:4 + payload *)
let request_wire_size r = 16 + Bytes.length r.payload

let encode_request w (r : request) =
  Codec.W.i32 w r.id.client_id;
  Codec.W.int_as_i64 w r.id.seq;
  Codec.W.bytes w r.payload

let decode_request rd : request =
  let client_id = Codec.R.i32 rd in
  let seq = Codec.R.int_from_i64 rd in
  let payload = Codec.R.bytes rd in
  { id = { client_id; seq }; payload }

let encode_reply w (r : reply) =
  Codec.W.i32 w r.id.client_id;
  Codec.W.int_as_i64 w r.id.seq;
  Codec.W.bytes w r.result

let decode_reply rd : reply =
  let client_id = Codec.R.i32 rd in
  let seq = Codec.R.int_from_i64 rd in
  let result = Codec.R.bytes rd in
  { id = { client_id; seq }; result }

let request_to_bytes r =
  Codec.W.with_pool (fun w ->
      encode_request w r;
      Codec.W.to_bytes w)

let request_of_bytes b =
  let rd = Codec.R.of_bytes b in
  let r = decode_request rd in
  Codec.R.expect_end rd;
  r

let reply_to_bytes r =
  Codec.W.with_pool (fun w ->
      encode_reply w r;
      Codec.W.to_bytes w)

let reply_of_bytes b =
  let rd = Codec.R.of_bytes b in
  let r = decode_reply rd in
  Codec.R.expect_end rd;
  r

let equal_request (a : request) (b : request) =
  compare_request_id a.id b.id = 0 && Bytes.equal a.payload b.payload

let pp_request ppf (r : request) =
  Format.fprintf ppf "req(%a, %dB)" pp_request_id r.id (Bytes.length r.payload)
