(** Binary encoding primitives.

    All multi-byte integers are big-endian. Strings and byte blobs are
    length-prefixed with a 32-bit length. The replica-to-replica and
    client-to-replica codecs ({!Client_msg}, [Msmr_consensus.Msg]) are
    built on these primitives. *)

exception Underflow
(** Raised when decoding runs past the end of the input. *)

exception Malformed of string
(** Raised on structurally invalid input (bad tag, negative length...). *)

module W : sig
  (** Growable write buffer. *)

  type t

  val create : ?initial:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  (** Lower 8 bits of the argument. *)

  val i32 : t -> int -> unit
  (** Two's-complement 32 bits; @raise Invalid_argument when out of
      range. *)

  val i64 : t -> int64 -> unit
  val int_as_i64 : t -> int -> unit
  val bool : t -> bool -> unit
  val bytes : t -> bytes -> unit
  (** Length-prefixed blob. *)

  val string : t -> string -> unit
  val raw : t -> bytes -> unit
  (** Append without a length prefix. *)

  val contents : t -> bytes
  (** Copy of everything written so far. *)

  val to_bytes : t -> bytes
  (** Contents as an exactly-sized blob. When the internal buffer is
      exactly full it is transferred without copying (the writer detaches
      from it and becomes empty); otherwise this is one exact-size copy —
      never the double buffering of [create () ... contents]. *)

  val blit_into : t -> bytes -> int -> unit
  (** [blit_into t dst pos] copies the contents into [dst] at [pos]
      without any intermediate allocation.
      @raise Invalid_argument if the destination range is out of
      bounds. *)

  val reset : t -> unit

  val with_pool : (t -> 'a) -> 'a
  (** [with_pool f] runs [f] with a writer drawn from a global lock-free
      pool (reset, ready to use) and returns it afterwards, so per-message
      encoders reuse buffers instead of allocating a writer each time.
      Thread-safe. The writer must not escape [f]; take the encoded bytes
      out with {!to_bytes}. Oversized writers (> 4 KiB buffer) are dropped
      rather than pooled. *)
end

module R : sig
  (** Read cursor over a byte blob. *)

  type t

  val of_bytes : bytes -> t
  val of_string : string -> t
  val remaining : t -> int
  val u8 : t -> int
  val i32 : t -> int
  val i64 : t -> int64
  val int_from_i64 : t -> int
  val bool : t -> bool
  val bytes : t -> bytes
  val string : t -> string
  val expect_end : t -> unit
  (** @raise Malformed if input remains. *)
end
