exception Underflow
exception Malformed of string

module W = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int;
  }

  let create ?(initial = 256) () = { buf = Bytes.create (max 16 initial); len = 0 }

  let length t = t.len

  let ensure t n =
    let need = t.len + n in
    let cap = Bytes.length t.buf in
    if need > cap then begin
      let ncap = ref (cap * 2) in
      while !ncap < need do ncap := !ncap * 2 done;
      let nb = Bytes.create !ncap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xff));
    t.len <- t.len + 1

  let i32 t v =
    if v > 0x7fffffff || v < -0x80000000 then
      invalid_arg "Codec.W.i32: out of range";
    ensure t 4;
    Bytes.set_int32_be t.buf t.len (Int32.of_int v);
    t.len <- t.len + 4

  let i64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len v;
    t.len <- t.len + 8

  let int_as_i64 t v = i64 t (Int64.of_int v)
  let bool t v = u8 t (if v then 1 else 0)

  let raw t b =
    let n = Bytes.length b in
    ensure t n;
    Bytes.blit b 0 t.buf t.len n;
    t.len <- t.len + n

  let bytes t b =
    i32 t (Bytes.length b);
    raw t b

  let string t s = bytes t (Bytes.unsafe_of_string s)
  let contents t = Bytes.sub t.buf 0 t.len
  let reset t = t.len <- 0

  let to_bytes t =
    if t.len = Bytes.length t.buf then begin
      (* Exactly full: hand over the internal buffer without copying and
         detach the writer from it. *)
      let b = t.buf in
      t.buf <- Bytes.create 16;
      t.len <- 0;
      b
    end
    else Bytes.sub t.buf 0 t.len

  let blit_into t dst pos =
    if pos < 0 || pos + t.len > Bytes.length dst then
      invalid_arg "Codec.W.blit_into: destination range out of bounds";
    Bytes.blit t.buf 0 dst pos t.len

  (* Writer pool: a lock-free Treiber stack of idle writers, so hot paths
     (one encode per message) reuse buffers instead of allocating a fresh
     writer per message. Writers that grew past [pool_max_buf] are dropped
     on release so a single jumbo snapshot cannot pin memory forever. *)
  let pool_max_buf = 4096
  let pool : t list Atomic.t = Atomic.make []

  let rec pool_acquire () =
    match Atomic.get pool with
    | [] -> create ()
    | w :: rest as old ->
      if Atomic.compare_and_set pool old rest then begin
        reset w;
        w
      end
      else pool_acquire ()

  let rec pool_release w =
    if Bytes.length w.buf <= pool_max_buf then begin
      let old = Atomic.get pool in
      if not (Atomic.compare_and_set pool old (w :: old)) then pool_release w
    end

  let with_pool f =
    let w = pool_acquire () in
    let r = f w in
    (* On exception the writer is simply not returned to the pool. *)
    pool_release w;
    r
end

module R = struct
  type t = {
    buf : Bytes.t;
    mutable pos : int;
  }

  let of_bytes b = { buf = b; pos = 0 }
  let of_string s = of_bytes (Bytes.unsafe_of_string s)
  let remaining t = Bytes.length t.buf - t.pos

  let need t n = if remaining t < n then raise Underflow

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.unsafe_get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let i32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    need t 8;
    let v = Bytes.get_int64_be t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let int_from_i64 t =
    let v = i64 t in
    let i = Int64.to_int v in
    if Int64.of_int i <> v then raise (Malformed "i64 exceeds native int");
    i

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Malformed (Printf.sprintf "bool byte %d" n))

  let bytes t =
    let n = i32 t in
    if n < 0 then raise (Malformed "negative length");
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let string t = Bytes.unsafe_to_string (bytes t)

  let expect_end t =
    if remaining t <> 0 then
      raise (Malformed (Printf.sprintf "%d trailing bytes" (remaining t)))
end
