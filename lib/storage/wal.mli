(** Segmented write-ahead log.

    Records are opaque byte blobs framed as
    [len:4][crc32(payload):4][payload] and appended to numbered segment
    files ([wal-000042.log]); a new segment starts once the current one
    exceeds [segment_bytes]. Recovery replays every record in order and
    stops at the first torn or corrupt record, truncating the log there
    (the standard crash-consistency contract: a prefix survives).

    Writers choose a {!sync_policy}:
    - [Sync_every_write]: fsync before {!append} returns — the classic
      acceptor durability requirement, and the bottleneck the paper
      deliberately avoids in its experiments. {!append_many} applies it
      {e once per batch}: one fsync covers every record appended since
      the last sync (group commit).
    - [Sync_periodic]: a caller (e.g. a Syncer thread) calls {!sync} on
      its own schedule; a crash may lose a suffix;
    - [No_sync]: rely on the OS cache entirely.

    Appends return the record's LSN — the 1-based count of records
    appended through this handle — so callers can gate work on the
    durable watermark {!synced} reaching it.

    Metrics (labels [{dir="..."}], removed on {!close}):
    [msmr_wal_sync_total] fsyncs performed, [msmr_wal_group_size]
    records covered per fsync, [msmr_wal_last_sync_ns] wall-clock of the
    last {!sync} tick (updated even when there was nothing to flush, so
    an idle Syncer is visible).

    Thread-safe: appends are serialised internally. *)

type sync_policy =
  | Sync_every_write
  | Sync_periodic
  | No_sync

type t

val openw : ?segment_bytes:int -> dir:string -> sync:sync_policy -> unit -> t
(** Open for appending, creating [dir] if needed. New records go after
    everything {!replay} would return. Default segment size 64 MiB. *)

val append : t -> bytes -> int
(** Append one record; returns its LSN. Under [Sync_every_write] the
    record is durable on return. *)

val append_many : t -> bytes list -> int
(** Append a batch with one frame write per record but the sync policy
    applied once at the end; returns the LSN of the last record (or the
    current LSN for an empty batch). Under [Sync_every_write] this is
    the group-commit path: the whole batch becomes durable under a
    single fsync. *)

val sync : t -> int
(** Flush to stable storage if any record since the last sync needs it;
    returns the durable LSN watermark. *)

val close : t -> unit

val appended : t -> int
(** Records appended through this handle (= the last LSN handed out). *)

val synced : t -> int
(** Durable LSN watermark: every record with LSN <= [synced t] has been
    covered by an fsync issued through this handle. *)

val replay : dir:string -> (bytes -> unit) -> int
(** Feed every intact record, in order, to the callback; returns the
    count. Corrupt/torn suffixes are truncated on disk so a subsequent
    {!openw} appends at a clean boundary. A missing directory replays
    nothing. *)

val reset : dir:string -> unit
(** Delete all segments (used after a snapshot makes the prefix
    obsolete — callers typically rewrite a checkpoint first). *)
