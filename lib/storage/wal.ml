let log_src = Logs.Src.create "msmr.wal" ~doc:"Write-ahead log"

module Log_ = (val Logs.src_log log_src : Logs.LOG)
module Metrics = Msmr_obs.Metrics

type sync_policy =
  | Sync_every_write
  | Sync_periodic
  | No_sync

type t = {
  dir : string;
  segment_bytes : int;
  sync_policy : sync_policy;
  lock : Mutex.t;
  labels : Metrics.labels;
  m_syncs : Metrics.counter;
  m_group : Msmr_platform.Histogram.t;
  mutable fd : Unix.file_descr;
  mutable seg_index : int;
  mutable seg_size : int;
  mutable records : int;
  mutable synced : int;
  mutable closed : bool;
}

let segment_name dir index = Filename.concat dir (Printf.sprintf "wal-%06d.log" index)

let list_segments dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun name ->
        if String.length name = 14
           && String.starts_with ~prefix:"wal-" name
           && String.ends_with ~suffix:".log" name
        then int_of_string_opt (String.sub name 4 6)
        else None)
    |> List.sort compare

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

(* Scan one segment; returns the clean length and feeds records to [f]. *)
let scan_segment path f =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let file_len = (Unix.fstat fd).Unix.st_size in
  let hdr = Bytes.create 8 in
  let read_exactly buf len =
    let rec go ofs =
      if ofs >= len then true
      else
        match Unix.read fd buf ofs (len - ofs) with
        | 0 -> false
        | n -> go (ofs + n)
    in
    go 0
  in
  let rec go pos count =
    if pos + 8 > file_len then (pos, count)
    else if not (read_exactly hdr 8) then (pos, count)
    else begin
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      let crc = Bytes.get_int32_be hdr 4 in
      if len < 0 || pos + 8 + len > file_len then (pos, count)
      else begin
        let payload = Bytes.create len in
        if not (read_exactly payload len) then (pos, count)
        else if Crc32.digest_bytes payload <> crc then (pos, count)
        else begin
          f payload;
          go (pos + 8 + len) (count + 1)
        end
      end
    end
  in
  let clean, count = go 0 0 in
  (clean, count, file_len)

let replay ~dir f =
  match list_segments dir with
  | [] -> 0
  | segments ->
    let total = ref 0 in
    let rec go = function
      | [] -> ()
      | index :: rest ->
        let path = segment_name dir index in
        let clean, count, file_len = scan_segment path f in
        total := !total + count;
        if clean < file_len then begin
          (* Torn suffix: truncate here and drop any later segments. *)
          Log_.warn (fun m ->
              m "wal: truncating %s at %d (file %d) and dropping %d later segment(s)"
                path clean file_len (List.length rest));
          Unix.truncate path clean;
          List.iter (fun i -> Sys.remove (segment_name dir i)) rest
        end
        else go rest
    in
    go segments;
    !total

let open_segment dir index =
  Unix.openfile (segment_name dir index)
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let openw ?(segment_bytes = 64 * 1024 * 1024) ~dir ~sync () =
  ensure_dir dir;
  let seg_index =
    match List.rev (list_segments dir) with [] -> 0 | last :: _ -> last
  in
  let fd = open_segment dir seg_index in
  let seg_size = (Unix.fstat fd).Unix.st_size in
  let labels = [ ("dir", dir) ] in
  { dir; segment_bytes; sync_policy = sync; lock = Mutex.create ();
    labels;
    m_syncs = Metrics.counter ~labels "msmr_wal_sync_total";
    m_group = Metrics.histogram ~labels "msmr_wal_group_size";
    fd; seg_index; seg_size; records = 0; synced = 0; closed = false }

let rotate t =
  Unix.close t.fd;
  t.seg_index <- t.seg_index + 1;
  t.fd <- open_segment t.dir t.seg_index;
  t.seg_size <- 0

let write_all fd buf len =
  let rec go ofs =
    if ofs < len then go (ofs + Unix.write fd buf ofs (len - ofs))
  in
  go 0

(* Lock held. One fsync covers every record appended since the last
   sync — [records - synced] is the group size. The last-sync gauge is
   refreshed even when there is nothing to flush, so an idle Syncer
   stays distinguishable from a dead one. *)
let sync_locked t =
  if t.records > t.synced then begin
    Unix.fsync t.fd;
    Metrics.incr t.m_syncs;
    Msmr_platform.Histogram.record t.m_group (float_of_int (t.records - t.synced));
    t.synced <- t.records
  end;
  Metrics.set_gauge ~labels:t.labels "msmr_wal_last_sync_ns"
    (Int64.to_float (Msmr_platform.Mclock.now_ns ()));
  t.synced

(* Lock held. Frames [payload] and appends it; returns the record's
   LSN (1-based count of records appended through this handle). *)
let append_locked t payload =
  let len = Bytes.length payload in
  let frame = Bytes.create (8 + len) in
  Bytes.set_int32_be frame 0 (Int32.of_int len);
  Bytes.set_int32_be frame 4 (Crc32.digest_bytes payload);
  Bytes.blit payload 0 frame 8 len;
  if t.seg_size > 0 && t.seg_size + 8 + len > t.segment_bytes then rotate t;
  write_all t.fd frame (8 + len);
  t.seg_size <- t.seg_size + 8 + len;
  t.records <- t.records + 1;
  t.records

let append t payload =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.closed then invalid_arg "Wal.append: closed";
  let lsn = append_locked t payload in
  (match t.sync_policy with
   | Sync_every_write -> ignore (sync_locked t)
   | Sync_periodic | No_sync -> ());
  lsn

let append_many t payloads =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.closed then invalid_arg "Wal.append_many: closed";
  let lsn = List.fold_left (fun _ p -> append_locked t p) t.records payloads in
  (* Group commit: the sync policy is applied once for the whole batch,
     so under [Sync_every_write] a single fsync makes every record in
     [payloads] durable together. *)
  (match t.sync_policy with
   | Sync_every_write -> ignore (sync_locked t)
   | Sync_periodic | No_sync -> ());
  lsn

let sync t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.closed then t.synced else sync_locked t

let close t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    Unix.close t.fd;
    Metrics.remove ~labels:t.labels "msmr_wal_sync_total";
    Metrics.remove ~labels:t.labels "msmr_wal_group_size";
    Metrics.remove ~labels:t.labels "msmr_wal_last_sync_ns"
  end

let appended t = t.records
let synced t = t.synced

let reset ~dir =
  List.iter (fun i -> Sys.remove (segment_name dir i)) (list_segments dir)
