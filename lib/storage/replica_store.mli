(** Durable consensus state for one replica.

    Combines a {!Wal} of protocol events with an atomically-replaced
    checkpoint file holding the latest service snapshot. The acceptor
    invariants it protects across a crash:

    - the promised view never regresses ([log_view] before acting in a
      higher view);
    - an accepted (iid, view, value) survives if the corresponding
      [Accepted]/[Prepare_ok] message survived (with
      [Wal.Sync_every_write]; weaker policies trade this for speed, as
      the paper's evaluation configuration does);
    - decided entries and snapshots let recovery rebuild the executed
      prefix.

    A snapshot checkpoint makes all earlier WAL records obsolete: the
    WAL is reset right after the checkpoint is persisted. *)

type event =
  | View of Msmr_consensus.Types.view
  | Accepted of {
      iid : Msmr_consensus.Types.iid;
      view : Msmr_consensus.Types.view;
      value : Msmr_consensus.Value.t;
    }
  | Decided of { iid : Msmr_consensus.Types.iid; view : Msmr_consensus.Types.view }

type t

val openw : ?sync:Wal.sync_policy -> ?gid:int -> dir:string -> unit -> t
(** Default policy: [Sync_periodic] (call {!sync} from a Syncer).

    [gid] selects a per-group namespace for multi-group Paxos: the
    store lives in [dir/g<gid>] with its own WAL, checkpoint and LSN
    sequence, so one node's groups share a configured directory without
    interleaving their logs. Omitted, the store uses [dir] itself — the
    single-group layout, unchanged. *)

val log_event : t -> event -> int
(** Append one event; returns the store-level LSN assigned to it.
    Store LSNs count events logged through this handle and stay
    monotone across the WAL swap a {!checkpoint} performs. *)

val log_batch : ?st:Msmr_platform.Thread_state.t -> t -> event list -> int
(** Append a batch of events through one {!Wal.append_many} — under
    [Sync_every_write] the whole batch becomes durable under a single
    fsync (group commit). Returns the LSN of the last event (the
    current LSN for an empty batch). With [st], store-lock contention
    is accounted as [Blocked]. *)

val sync : ?st:Msmr_platform.Thread_state.t -> t -> int
(** Flush the WAL; returns the durable LSN watermark (= {!lsn} on
    return). With [st], store-lock contention is accounted as
    [Blocked]. *)

val lsn : t -> int
(** Last LSN handed out. *)

val durable_lsn : t -> int
(** Every event with LSN <= [durable_lsn t] is on stable storage (or
    superseded by an fsynced checkpoint). Under [Sync_every_write] this
    trails {!lsn} only inside an in-flight append. *)

val close : t -> unit

val checkpoint :
  ?configs:(Msmr_consensus.Types.iid * Msmr_consensus.Membership.t) list ->
  t ->
  next_iid:Msmr_consensus.Types.iid ->
  state:bytes ->
  unit
(** Persist a service snapshot covering instances below [next_iid]
    (atomic: write-temp + rename + fsync) and reset the WAL. [configs]
    (newest first, default none) records the membership history adopted
    so far, so recovery re-fences under the right epoch even though the
    ordering [Reconfig] instances live below the snapshot. *)

type recovered = {
  r_view : Msmr_consensus.Types.view;
  r_accepted :
    (Msmr_consensus.Types.iid
     * Msmr_consensus.Types.view
     * Msmr_consensus.Value.t)
      list;  (** newest acceptance per instance, undecided ones *)
  r_decided :
    (Msmr_consensus.Types.iid
     * Msmr_consensus.Types.view
     * Msmr_consensus.Value.t)
      list;  (** in instance order *)
  r_snapshot : (Msmr_consensus.Types.iid * bytes) option;
  r_configs :
    (Msmr_consensus.Types.iid * Msmr_consensus.Membership.t) list;
      (** membership history from the checkpoint, newest first; [[]] for
          pre-reconfiguration checkpoints (boot membership applies) *)
}

val recover : ?gid:int -> dir:string -> unit -> recovered
(** Read the checkpoint and replay the WAL. An empty or missing
    directory yields a pristine state. [gid] reads the per-group
    namespace [dir/g<gid>] (see {!openw}). *)
