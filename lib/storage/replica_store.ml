module Codec = Msmr_wire.Codec
open Msmr_consensus

type event =
  | View of Types.view
  | Accepted of { iid : Types.iid; view : Types.view; value : Value.t }
  | Decided of { iid : Types.iid; view : Types.view }

let encode_event ev =
  let w = Codec.W.create () in
  (match ev with
   | View v ->
     Codec.W.u8 w 1;
     Codec.W.int_as_i64 w v
   | Accepted { iid; view; value } ->
     Codec.W.u8 w 2;
     Codec.W.int_as_i64 w iid;
     Codec.W.int_as_i64 w view;
     Value.encode w value
   | Decided { iid; view } ->
     Codec.W.u8 w 3;
     Codec.W.int_as_i64 w iid;
     Codec.W.int_as_i64 w view);
  Codec.W.contents w

let decode_event b =
  let r = Codec.R.of_bytes b in
  let ev =
    match Codec.R.u8 r with
    | 1 -> View (Codec.R.int_from_i64 r)
    | 2 ->
      let iid = Codec.R.int_from_i64 r in
      let view = Codec.R.int_from_i64 r in
      let value = Value.decode r in
      Accepted { iid; view; value }
    | 3 ->
      let iid = Codec.R.int_from_i64 r in
      let view = Codec.R.int_from_i64 r in
      Decided { iid; view }
    | n -> raise (Codec.Malformed (Printf.sprintf "wal event tag %d" n))
  in
  Codec.R.expect_end r;
  ev

type t = {
  dir : string;
  sync_policy : Wal.sync_policy;
  mutable wal : Wal.t;
  lock : Mutex.t;
  (* Store-level LSN: events logged through this handle. Unlike the
     WAL's per-handle record count it is monotone across the WAL swap a
     checkpoint performs, so callers can gate on it for the lifetime of
     the store. *)
  mutable lsn : int;
  mutable durable_lsn : int;
}

let checkpoint_path dir = Filename.concat dir "checkpoint"

(* Multi-group Paxos: each group's consensus state lives in its own
   subdirectory — its own WAL, checkpoint and LSN namespace — so one
   node participating in several groups shares one configured directory
   without the groups' logs interleaving. [gid = None] is the classic
   single-group layout, bit-identical to before groups existed. *)
let group_dir ?gid dir =
  match gid with
  | None -> dir
  | Some g ->
    if g < 0 then invalid_arg "Replica_store: gid < 0";
    Filename.concat dir (Printf.sprintf "g%d" g)

let openw ?(sync = Wal.Sync_periodic) ?gid ~dir () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let dir = group_dir ?gid dir in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  { dir; sync_policy = sync; wal = Wal.openw ~dir ~sync ();
    lock = Mutex.create (); lsn = 0; durable_lsn = 0 }

(* The store lock orders appends/syncs against the WAL swap done by
   [checkpoint]. The StableStorage and Syncer threads contend on it, so
   the paths they use ([log_batch], [sync]) account acquisition time as
   [Blocked], per the paper's profiling methodology. *)
let lock_acct ?st t =
  match st with
  | None -> Mutex.lock t.lock
  | Some st ->
    if Mutex.try_lock t.lock then ()
    else
      Msmr_platform.Thread_state.enter st Msmr_platform.Thread_state.Blocked
        (fun () -> Mutex.lock t.lock)

let log_event t ev =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  ignore (Wal.append t.wal (encode_event ev));
  t.lsn <- t.lsn + 1;
  (match t.sync_policy with
   | Wal.Sync_every_write -> t.durable_lsn <- t.lsn
   | Wal.Sync_periodic | Wal.No_sync -> ());
  t.lsn

let log_batch ?st t evs =
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  (match evs with
   | [] -> ()
   | evs ->
     (* One [Wal.append_many]: under [Sync_every_write] the whole batch
        shares a single fsync (group commit). *)
     ignore (Wal.append_many t.wal (List.map encode_event evs));
     t.lsn <- t.lsn + List.length evs;
     match t.sync_policy with
     | Wal.Sync_every_write -> t.durable_lsn <- t.lsn
     | Wal.Sync_periodic | Wal.No_sync -> ());
  t.lsn

let sync ?st t =
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  ignore (Wal.sync t.wal);
  t.durable_lsn <- t.lsn;
  t.durable_lsn

let lsn t = t.lsn
let durable_lsn t = t.durable_lsn

let close t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  Wal.close t.wal

let checkpoint ?(configs = []) t ~next_iid ~state =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let tmp = checkpoint_path t.dir ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let w = Codec.W.create ~initial:(Bytes.length state + 16) () in
  Codec.W.int_as_i64 w next_iid;
  Codec.W.bytes w state;
  (* Membership history (newest first), appended after the snapshot so
     pre-reconfiguration checkpoints (no trailing section) still read. *)
  if configs <> [] then Membership.encode_configs w configs;
  let payload = Codec.W.contents w in
  let frame = Bytes.create (8 + Bytes.length payload) in
  Bytes.set_int32_be frame 0 (Int32.of_int (Bytes.length payload));
  Bytes.set_int32_be frame 4 (Crc32.digest_bytes payload);
  Bytes.blit payload 0 frame 8 (Bytes.length payload);
  let rec write_all ofs =
    if ofs < Bytes.length frame then
      write_all (ofs + Unix.write fd frame ofs (Bytes.length frame - ofs))
  in
  write_all 0;
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp (checkpoint_path t.dir);
  (* All WAL records now describe instances the snapshot covers (the
     runtime checkpoints only decided-and-executed prefixes; later
     accepted-but-undecided entries are re-learnt via catch-up). The
     fsynced checkpoint supersedes the log, so everything logged so far
     counts as durable. *)
  Wal.close t.wal;
  Wal.reset ~dir:t.dir;
  t.wal <- Wal.openw ~dir:t.dir ~sync:t.sync_policy ();
  t.durable_lsn <- t.lsn

let read_checkpoint dir =
  let path = checkpoint_path dir in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let len = in_channel_length ic in
    if len < 8 then None
    else begin
      let frame = really_input_string ic len |> Bytes.of_string in
      let plen = Int32.to_int (Bytes.get_int32_be frame 0) in
      let crc = Bytes.get_int32_be frame 4 in
      if plen < 0 || 8 + plen > len then None
      else begin
        let payload = Bytes.sub frame 8 plen in
        if Crc32.digest_bytes payload <> crc then None
        else begin
          let r = Codec.R.of_bytes payload in
          let next_iid = Codec.R.int_from_i64 r in
          let state = Codec.R.bytes r in
          let configs =
            if Codec.R.remaining r = 0 then []
            else
              match Membership.decode_configs r with
              | cs -> cs
              | exception (Codec.Underflow | Codec.Malformed _) -> []
          in
          Some (next_iid, state, configs)
        end
      end
    end
  end

type recovered = {
  r_view : Types.view;
  r_accepted : (Types.iid * Types.view * Value.t) list;
  r_decided : (Types.iid * Types.view * Value.t) list;
  r_snapshot : (Types.iid * bytes) option;
  r_configs : (Types.iid * Membership.t) list;
}

let recover ?gid ~dir () =
  let dir = group_dir ?gid dir in
  let ckpt = read_checkpoint dir in
  let snapshot = Option.map (fun (next, state, _) -> (next, state)) ckpt in
  let configs = match ckpt with Some (_, _, cs) -> cs | None -> [] in
  let low = match snapshot with Some (next, _) -> next | None -> 0 in
  let view = ref 0 in
  let accepted : (Types.iid, Types.view * Value.t) Hashtbl.t = Hashtbl.create 256 in
  let decided : (Types.iid, Types.view) Hashtbl.t = Hashtbl.create 256 in
  let count =
    Wal.replay ~dir (fun record ->
        match decode_event record with
        | View v -> if v > !view then view := v
        | Accepted { iid; view = v; value } ->
          if iid >= low then begin
            match Hashtbl.find_opt accepted iid with
            | Some (v0, _) when v0 >= v -> ()
            | Some _ | None -> Hashtbl.replace accepted iid (v, value)
          end
        | Decided { iid; view = v } ->
          if iid >= low then Hashtbl.replace decided iid v
        | exception (Codec.Underflow | Codec.Malformed _) ->
          (* CRC passed but the payload is from a future/unknown format:
             ignore the record. *)
          ())
  in
  ignore count;
  let r_decided =
    Hashtbl.fold
      (fun iid v acc ->
         match Hashtbl.find_opt accepted iid with
         | Some (_, value) -> (iid, v, value) :: acc
         | None -> acc)
      decided []
    |> List.sort compare
  in
  let r_accepted =
    Hashtbl.fold
      (fun iid (v, value) acc ->
         if Hashtbl.mem decided iid then acc else (iid, v, value) :: acc)
      accepted []
    |> List.sort compare
  in
  { r_view = !view; r_accepted; r_decided; r_snapshot = snapshot;
    r_configs = configs }
