module Codec = Msmr_wire.Codec

type t =
  | Noop
  | Batch of Batch.t
  | Reconfig of Membership.t

let encode w = function
  | Noop -> Codec.W.u8 w 0
  | Batch b ->
    Codec.W.u8 w 1;
    Batch.encode w b
  | Reconfig m ->
    Codec.W.u8 w 2;
    Membership.encode w m

let decode r =
  match Codec.R.u8 r with
  | 0 -> Noop
  | 1 -> Batch (Batch.decode r)
  | 2 -> Reconfig (Membership.decode r)
  | n -> raise (Codec.Malformed (Printf.sprintf "value tag %d" n))

let equal a b =
  match (a, b) with
  | Noop, Noop -> true
  | Batch x, Batch y -> Batch.equal x y
  | Reconfig x, Reconfig y -> Membership.equal x y
  | Noop, _ | Batch _, _ | Reconfig _, _ -> false

let pp ppf = function
  | Noop -> Format.pp_print_string ppf "noop"
  | Batch b -> Batch.pp ppf b
  | Reconfig m -> Format.fprintf ppf "reconfig %a" Membership.pp m

let size_bytes = function
  | Noop -> 0
  | Batch b -> Batch.size_bytes b
  | Reconfig m -> Membership.size_bytes m
