module Codec = Msmr_wire.Codec

type log_entry = {
  e_iid : Types.iid;
  e_view : Types.view;
  e_value : Value.t;
  e_decided : bool;
}

type t =
  | Prepare of { view : Types.view; from_iid : Types.iid }
  | Prepare_ok of {
      view : Types.view;
      first_undecided : Types.iid;
      entries : log_entry list;
    }
  | Accept of { view : Types.view; iid : Types.iid; value : Value.t }
  | Accepted of { view : Types.view; iid : Types.iid }
  | Decide of { view : Types.view; iid : Types.iid }
  | Catchup_query of { from_iid : Types.iid; to_iid : Types.iid }
  | Catchup_reply of {
      entries : log_entry list;
      snapshot : (Types.iid * bytes) option;
    }
  | Heartbeat of { view : Types.view; first_undecided : Types.iid }
  | Lease_ping of { view : Types.view; t0_ns : int }
  | Lease_grant of { view : Types.view; t0_ns : int }

let tag = function
  | Prepare _ -> "prepare"
  | Prepare_ok _ -> "prepare_ok"
  | Accept _ -> "accept"
  | Accepted _ -> "accepted"
  | Decide _ -> "decide"
  | Catchup_query _ -> "catchup_query"
  | Catchup_reply _ -> "catchup_reply"
  | Heartbeat _ -> "heartbeat"
  | Lease_ping _ -> "lease_ping"
  | Lease_grant _ -> "lease_grant"

let encode_entry w e =
  Codec.W.int_as_i64 w e.e_iid;
  Codec.W.int_as_i64 w e.e_view;
  Codec.W.bool w e.e_decided;
  Value.encode w e.e_value

let decode_entry r =
  let e_iid = Codec.R.int_from_i64 r in
  let e_view = Codec.R.int_from_i64 r in
  let e_decided = Codec.R.bool r in
  let e_value = Value.decode r in
  { e_iid; e_view; e_value; e_decided }

let encode_entries w entries =
  Codec.W.i32 w (List.length entries);
  List.iter (encode_entry w) entries

let decode_entries r =
  let count = Codec.R.i32 r in
  if count < 0 then raise (Codec.Malformed "negative entry count");
  List.init count (fun _ -> decode_entry r)

let encode_to w = function
  | Prepare { view; from_iid } ->
    Codec.W.u8 w 1;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w from_iid
  | Prepare_ok { view; first_undecided; entries } ->
    Codec.W.u8 w 2;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w first_undecided;
    encode_entries w entries
  | Accept { view; iid; value } ->
    Codec.W.u8 w 3;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w iid;
    Value.encode w value
  | Accepted { view; iid } ->
    Codec.W.u8 w 4;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w iid
  | Decide { view; iid } ->
    Codec.W.u8 w 5;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w iid
  | Catchup_query { from_iid; to_iid } ->
    Codec.W.u8 w 6;
    Codec.W.int_as_i64 w from_iid;
    Codec.W.int_as_i64 w to_iid
  | Catchup_reply { entries; snapshot } ->
    Codec.W.u8 w 7;
    encode_entries w entries;
    (match snapshot with
     | None -> Codec.W.bool w false
     | Some (next_iid, state) ->
       Codec.W.bool w true;
       Codec.W.int_as_i64 w next_iid;
       Codec.W.bytes w state)
  | Heartbeat { view; first_undecided } ->
    Codec.W.u8 w 8;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w first_undecided
  | Lease_ping { view; t0_ns } ->
    Codec.W.u8 w 9;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w t0_ns
  | Lease_grant { view; t0_ns } ->
    Codec.W.u8 w 10;
    Codec.W.int_as_i64 w view;
    Codec.W.int_as_i64 w t0_ns

let encode t =
  Codec.W.with_pool (fun w ->
      encode_to w t;
      Codec.W.to_bytes w)

let decode b =
  let r = Codec.R.of_bytes b in
  let msg =
    match Codec.R.u8 r with
    | 1 ->
      let view = Codec.R.int_from_i64 r in
      let from_iid = Codec.R.int_from_i64 r in
      Prepare { view; from_iid }
    | 2 ->
      let view = Codec.R.int_from_i64 r in
      let first_undecided = Codec.R.int_from_i64 r in
      let entries = decode_entries r in
      Prepare_ok { view; first_undecided; entries }
    | 3 ->
      let view = Codec.R.int_from_i64 r in
      let iid = Codec.R.int_from_i64 r in
      let value = Value.decode r in
      Accept { view; iid; value }
    | 4 ->
      let view = Codec.R.int_from_i64 r in
      let iid = Codec.R.int_from_i64 r in
      Accepted { view; iid }
    | 5 ->
      let view = Codec.R.int_from_i64 r in
      let iid = Codec.R.int_from_i64 r in
      Decide { view; iid }
    | 6 ->
      let from_iid = Codec.R.int_from_i64 r in
      let to_iid = Codec.R.int_from_i64 r in
      Catchup_query { from_iid; to_iid }
    | 7 ->
      let entries = decode_entries r in
      let snapshot =
        if Codec.R.bool r then begin
          let next_iid = Codec.R.int_from_i64 r in
          let state = Codec.R.bytes r in
          Some (next_iid, state)
        end
        else None
      in
      Catchup_reply { entries; snapshot }
    | 8 ->
      let view = Codec.R.int_from_i64 r in
      let first_undecided = Codec.R.int_from_i64 r in
      Heartbeat { view; first_undecided }
    | 9 ->
      let view = Codec.R.int_from_i64 r in
      let t0_ns = Codec.R.int_from_i64 r in
      Lease_ping { view; t0_ns }
    | 10 ->
      let view = Codec.R.int_from_i64 r in
      let t0_ns = Codec.R.int_from_i64 r in
      Lease_grant { view; t0_ns }
    | n -> raise (Codec.Malformed (Printf.sprintf "message tag %d" n))
  in
  Codec.R.expect_end r;
  msg

let equal_entry a b =
  a.e_iid = b.e_iid && a.e_view = b.e_view && a.e_decided = b.e_decided
  && Value.equal a.e_value b.e_value

let equal a b =
  match (a, b) with
  | Prepare x, Prepare y -> x.view = y.view && x.from_iid = y.from_iid
  | Prepare_ok x, Prepare_ok y ->
    x.view = y.view
    && x.first_undecided = y.first_undecided
    && List.length x.entries = List.length y.entries
    && List.for_all2 equal_entry x.entries y.entries
  | Accept x, Accept y ->
    x.view = y.view && x.iid = y.iid && Value.equal x.value y.value
  | Accepted x, Accepted y -> x.view = y.view && x.iid = y.iid
  | Decide x, Decide y -> x.view = y.view && x.iid = y.iid
  | Catchup_query x, Catchup_query y ->
    x.from_iid = y.from_iid && x.to_iid = y.to_iid
  | Catchup_reply x, Catchup_reply y ->
    List.length x.entries = List.length y.entries
    && List.for_all2 equal_entry x.entries y.entries
    && (match (x.snapshot, y.snapshot) with
        | None, None -> true
        | Some (i, s), Some (j, t) -> i = j && Bytes.equal s t
        | None, Some _ | Some _, None -> false)
  | Heartbeat x, Heartbeat y ->
    x.view = y.view && x.first_undecided = y.first_undecided
  | Lease_ping x, Lease_ping y -> x.view = y.view && x.t0_ns = y.t0_ns
  | Lease_grant x, Lease_grant y -> x.view = y.view && x.t0_ns = y.t0_ns
  | ( ( Prepare _ | Prepare_ok _ | Accept _ | Accepted _ | Decide _
      | Catchup_query _ | Catchup_reply _ | Heartbeat _ | Lease_ping _
      | Lease_grant _ ),
      _ ) ->
    false

let pp ppf t =
  match t with
  | Prepare { view; from_iid } ->
    Format.fprintf ppf "Prepare(v=%d, from=%d)" view from_iid
  | Prepare_ok { view; first_undecided; entries } ->
    Format.fprintf ppf "PrepareOk(v=%d, fu=%d, %d entries)" view
      first_undecided (List.length entries)
  | Accept { view; iid; value } ->
    Format.fprintf ppf "Accept(v=%d, i=%d, %a)" view iid Value.pp value
  | Accepted { view; iid } -> Format.fprintf ppf "Accepted(v=%d, i=%d)" view iid
  | Decide { view; iid } -> Format.fprintf ppf "Decide(v=%d, i=%d)" view iid
  | Catchup_query { from_iid; to_iid } ->
    Format.fprintf ppf "CatchupQuery(%d..%d)" from_iid to_iid
  | Catchup_reply { entries; snapshot } ->
    Format.fprintf ppf "CatchupReply(%d entries%s)" (List.length entries)
      (match snapshot with None -> "" | Some _ -> ", snapshot")
  | Heartbeat { view; first_undecided } ->
    Format.fprintf ppf "Heartbeat(v=%d, fu=%d)" view first_undecided
  | Lease_ping { view; t0_ns } ->
    Format.fprintf ppf "LeasePing(v=%d, t0=%d)" view t0_ns
  | Lease_grant { view; t0_ns } ->
    Format.fprintf ppf "LeaseGrant(v=%d, t0=%d)" view t0_ns

let wire_size t = Bytes.length (encode t)
