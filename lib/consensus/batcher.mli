(** Batching policy (pure).

    The Batcher thread (Section V-C1) turns the stream of client requests
    into batches bounded by BSZ bytes ([max_batch_bytes]) or by a delay
    cap: an underfull batch is flushed once its oldest request has waited
    [max_batch_delay_s]. This module is the policy only; the thread around
    it lives in the runtime ([Msmr_runtime.Replication_core]) and the
    simulator models its cost separately. *)

type t

val create : ?tuned_bsz:int Atomic.t -> Config.t -> src:Types.node_id -> t
(** [tuned_bsz] makes BSZ dynamic: the limit is re-read from the atomic
    on every {!add} / flush, so an {!Autotune} controller on another
    thread can retune it without locks. Without it the limit is the
    static [cfg.max_batch_bytes] — the exact pre-autotune behaviour. *)

val bsz_limit : t -> int
(** The size limit currently in force ([tuned_bsz] if dynamic). *)

val pending_requests : t -> int
(** O(1): an explicit count is maintained alongside the open list. *)

val pending_bytes : t -> int

type seal_stats = {
  seals_size : int;    (** batches sealed because the size limit was hit *)
  seals_delay : int;   (** batches flushed on the delay cap (or forced) *)
  sealed_bytes : int;  (** total payload bytes across all sealed batches *)
  limit_bytes : int;   (** sum of the BSZ limit in force at each seal —
                           [sealed_bytes /. limit_bytes] is the mean
                           batch fill ratio *)
}

val seal_stats : t -> seal_stats
(** Monotone counters since [create]; callers diff snapshots for
    per-epoch figures. Written only by the owning Batcher thread; a
    cross-thread reader sees benignly-stale word-consistent values. *)

val add :
  t -> Msmr_wire.Client_msg.request -> now_ns:int64 -> Batch.t option
(** Append a request to the open batch. Returns a completed batch when the
    size limit is reached: either the open batch (with the new request
    folded in when it fits exactly) or the previously open batch when the
    new request would overflow it (the request then starts the next
    batch). A single request larger than BSZ forms its own batch. *)

val flush_due : t -> now_ns:int64 -> Batch.t option
(** Flush the open batch if its oldest request has waited at least
    [max_batch_delay_s]. *)

val force_flush : t -> Batch.t option
(** Flush whatever is pending (used on shutdown and by tests). *)

val deadline_ns : t -> int64 option
(** When {!flush_due} will next have something to do, if anything is
    pending. *)
