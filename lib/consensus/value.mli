(** Values decided by consensus instances: a batch of client requests,
    a no-op (used by a new leader to fill gaps left by its
    predecessor), or a membership reconfiguration that takes effect a
    fixed number of instances after its decide point. *)

type t =
  | Noop
  | Batch of Batch.t
  | Reconfig of Membership.t

val encode : Msmr_wire.Codec.W.t -> t -> unit
val decode : Msmr_wire.Codec.R.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val size_bytes : t -> int
(** Payload bytes carried ([0] for [Noop]). *)
