(** Leader failure detector (pure policy).

    Mirrors Section V-C3: the leader sends heartbeats to peers it has not
    talked to recently; followers suspect the leader after a period of
    silence. The per-peer timestamps are plain [int] nanosecond values
    updated directly by the ReplicaIO threads without notifying the
    detector thread — safe because timestamps only increase, so a missed
    update merely delays the corresponding event, never inverts it (the
    paper makes exactly this argument). *)

type t

val create : Config.t -> me:Types.node_id -> now_ns:int64 -> t

val note_recv : t -> from:Types.node_id -> now_ns:int64 -> unit
(** Any protocol message from [from] counts as a liveness proof. Callable
    from any thread (single word store). *)

val note_send : t -> dest:Types.node_id -> now_ns:int64 -> unit
(** Any message sent to [dest] postpones the need for a heartbeat. *)

val set_view : t -> view:Types.view -> now_ns:int64 -> unit
(** View change: reset the leader's liveness grace period. *)

val set_membership : t -> Membership.t -> now_ns:int64 -> unit
(** Membership epoch change: re-arm the peer set. Heartbeats are sent
    only to current members, freshly added members start with a full
    grace period, and a detector whose own node has been removed goes
    silent entirely (never heartbeats, never suspects). *)

type verdict =
  | Heartbeat_to of Types.node_id list
      (** Leader side: peers that have not heard from us for a full
          heartbeat interval. *)
  | Suspect of Types.node_id
      (** Follower side: the current leader has been silent too long. *)

val poll : t -> now_ns:int64 -> verdict list
(** Evaluate the policy. After a [Suspect] verdict, the detector arms a
    fresh timeout so it does not re-suspect on every poll. *)

val next_wake_ns : t -> now_ns:int64 -> int64
(** Earliest time at which {!poll} could have something new to say. *)
