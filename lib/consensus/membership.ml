(* Membership epochs over a fixed universe of node ids [0, cfg.n).

   The consensus layer keeps the node-id universe (and hence the
   [leader_of_view] mapping) static; membership is a subset of that
   universe that changes in consensus-ordered epochs.  Voters count
   toward quorums and may lead views; learners receive the full
   protocol stream (Accept/Decide/Catchup) but their votes are masked
   and they never activate a view.  Nodes outside [voters @ learners]
   are fenced: they are not messaged, their votes are ignored, and a
   removed node deactivates itself when the removal executes. *)

module Codec = Msmr_wire.Codec

type t = {
  epoch : int;
  voters : int list;    (* sorted ascending, non-empty *)
  learners : int list;  (* sorted ascending, disjoint from voters *)
}

let make ~epoch ~voters ~learners =
  let voters = List.sort_uniq compare voters in
  let learners =
    List.filter (fun p -> not (List.mem p voters))
      (List.sort_uniq compare learners)
  in
  { epoch; voters; learners }

(* Epoch 0 is the boot-time membership: [cfg.members0], or the whole
   universe when that is empty (the static default). *)
let initial (cfg : Config.t) =
  let voters =
    if cfg.members0 = [] then List.init cfg.n Fun.id else cfg.members0
  in
  make ~epoch:0 ~voters ~learners:[]

let is_voter t p = List.mem p t.voters
let is_learner t p = List.mem p t.learners
let is_member t p = is_voter t p || is_learner t p
let members t = List.sort_uniq compare (t.voters @ t.learners)
let n_voters t = List.length t.voters
let quorum t = n_voters t / 2 + 1
let voter_mask t = List.fold_left (fun m p -> m lor (1 lsl p)) 0 t.voters

(* State transitions; each bumps the epoch by exactly one so replicas
   can reject duplicates/replays by epoch comparison. *)
let add_learner t p =
  if is_member t p then None
  else Some { epoch = t.epoch + 1; voters = t.voters;
              learners = List.sort_uniq compare (p :: t.learners) }

let promote t p =
  if not (is_learner t p) then None
  else Some { epoch = t.epoch + 1;
              voters = List.sort_uniq compare (p :: t.voters);
              learners = List.filter (fun q -> q <> p) t.learners }

let remove t p =
  if not (is_member t p) then None
  else if is_voter t p && n_voters t <= 1 then None
  else Some { epoch = t.epoch + 1;
              voters = List.filter (fun q -> q <> p) t.voters;
              learners = List.filter (fun q -> q <> p) t.learners }

let equal a b =
  a.epoch = b.epoch && a.voters = b.voters && a.learners = b.learners

let pp ppf t =
  Format.fprintf ppf "e%d{v=[%s];l=[%s]}" t.epoch
    (String.concat "," (List.map string_of_int t.voters))
    (String.concat "," (List.map string_of_int t.learners))

let encode w t =
  Codec.W.i32 w t.epoch;
  Codec.W.u8 w (List.length t.voters);
  List.iter (Codec.W.u8 w) t.voters;
  Codec.W.u8 w (List.length t.learners);
  List.iter (Codec.W.u8 w) t.learners

let decode r =
  let epoch = Codec.R.i32 r in
  let nv = Codec.R.u8 r in
  let voters = List.init nv (fun _ -> Codec.R.u8 r) in
  let nl = Codec.R.u8 r in
  let learners = List.init nl (fun _ -> Codec.R.u8 r) in
  make ~epoch ~voters ~learners

let size_bytes t = 6 + List.length t.voters + List.length t.learners

(* Config history as carried inside snapshots: newest-first list of
   (start_iid, membership). *)
let encode_configs w configs =
  Codec.W.u8 w (List.length configs);
  List.iter
    (fun (start_iid, m) ->
      Codec.W.int_as_i64 w start_iid;
      encode w m)
    configs

let decode_configs r =
  let k = Codec.R.u8 r in
  List.init k (fun _ ->
      let start_iid = Codec.R.int_from_i64 r in
      let m = decode r in
      (start_iid, m))
