(* Online AIMD controller for BSZ (batch bytes) and WND (pipeline
   window). Pure policy: the driver owns the clock and the epoch
   cadence, this module only folds one epoch's signals into the next
   epoch's tuned values. See the .mli for the rule.

   The controller steers on *structural* signals (how batches seal,
   window occupancy, queue depth, commit latency) rather than on the
   measured throughput. Per-epoch throughput readings are unusable as a
   control signal at this granularity: closed-loop clients complete in
   convoys — hundreds of replies in one epoch, near-zero for the next
   dozen — so any epoch-scale "did throughput rise after that move?"
   comparison blames probes for phantom regressions (or credits them
   with phantom wins) depending on where the convoy boundary fell.
   The structural signals are stable epoch over epoch and point at the
   same optimum; DESIGN.md §11 records the measured evidence. *)

type params = {
  bsz_min : int;
  bsz_max : int;
  wnd_min : int;
  wnd_max : int;
  latency_bound_s : float;
  queue_high : int;
  bsz_grow : float;
  bsz_shrink : float;
  wnd_step : int;
  backoff : float;
}

let default_params =
  {
    bsz_min = 256;
    bsz_max = 65536;
    wnd_min = 1;
    wnd_max = 64;
    latency_bound_s = 0.05;
    queue_high = 512;
    bsz_grow = 1.25;
    bsz_shrink = 0.8;
    wnd_step = 3;
    backoff = 0.7;
  }

let params_of_config (cfg : Config.t) =
  {
    default_params with
    bsz_min = cfg.Config.bsz_min;
    bsz_max = cfg.Config.bsz_max;
    wnd_min = cfg.Config.wnd_min;
    wnd_max = cfg.Config.wnd_max;
  }

type signals = {
  s_window_in_use : int;
  s_proposal_queue : int;
  s_log_queue : int;
  s_seals_size : int;
  s_seals_delay : int;
  s_batch_fill : float;
  s_throughput : float;
  s_commit_latency_s : float;
}

(* Epochs WND stays frozen after a multiplicative backoff, so the
   congestion that triggered it can drain before growth resumes. *)
let cooldown_epochs = 3

(* Minimum size-sealed batches per epoch for BSZ to keep growing — see
   the pipeline-starvation comment in [tick]. *)
let min_seals = 4

type t = {
  p : params;
  mutable bsz : int;
  mutable wnd : int;
  mutable cool_wnd : int;
  mutable ticks : int;
}

let clamp lo hi v = max lo (min hi v)

let create ?(params = default_params) ~bsz0 ~wnd0 () =
  let p = params in
  {
    p;
    bsz = clamp p.bsz_min p.bsz_max bsz0;
    wnd = clamp p.wnd_min p.wnd_max wnd0;
    cool_wnd = 0;
    ticks = 0;
  }

let of_config (cfg : Config.t) =
  create ~params:(params_of_config cfg) ~bsz0:cfg.Config.max_batch_bytes
    ~wnd0:cfg.Config.window ()

let bsz t = t.bsz
let wnd t = t.wnd
let ticks t = t.ticks

let tick t (s : signals) =
  t.ticks <- t.ticks + 1;
  if t.cool_wnd > 0 then t.cool_wnd <- t.cool_wnd - 1;
  let p = t.p in
  let congested =
    (s.s_commit_latency_s > 0. && s.s_commit_latency_s > p.latency_bound_s)
    || s.s_log_queue >= p.queue_high
  in
  if congested then begin
    (* AIMD safety valve: pipelining depth is the congestion lever —
       both commit latency and durability backlog scale with the number
       of in-flight instances. *)
    let w = max p.wnd_min (int_of_float (float_of_int t.wnd *. p.backoff)) in
    if w < t.wnd then begin
      t.wnd <- w;
      t.cool_wnd <- cooldown_epochs
    end
  end
  else begin
    let sealed_any = s.s_seals_size + s.s_seals_delay > 0 in
    let size_limited =
      (* most batches hit the size limit — the bottleneck shape BSZ can
         fix. No fill-ratio guard here: fill is *low* exactly when
         requests pack badly against the limit (e.g. 1024-byte requests
         against BSZ 1300 seal singleton batches at fill 0.79), and that
         is where growing BSZ helps the most. *)
      sealed_any && s.s_seals_size > s.s_seals_delay
    in
    let saturated =
      (* the window is (nearly) exhausted or proposals queue behind it:
         more pipelining depth would admit more work *)
      s.s_window_in_use >= t.wnd - 1 || s.s_proposal_queue >= 2
    in
    (* BSZ and WND trade off: a bigger batch amortises more cost only
       while enough batches are still in flight to keep the pipeline
       busy. Growing BSZ past the epoch's offered load folds the whole
       client population into one batch at a time — the window drains,
       clients lock-step, and throughput degenerates to one RTT per
       batch. Seals-per-epoch is the alias-free way to see this (the
       instantaneous window sample reads 0 between lock-step bursts
       regardless of BSZ): batches sealing on size but fewer than
       [min_seals] times an epoch mean one batch swallows the epoch's
       demand, so growth stops; at most one seal an epoch means BSZ has
       overshot and shrinks back. The band between is hysteresis. *)
    let seals = s.s_seals_size + s.s_seals_delay in
    if size_limited && seals >= min_seals && t.bsz < p.bsz_max then
      t.bsz <-
        min p.bsz_max
          (max (t.bsz + 1) (int_of_float (float_of_int t.bsz *. p.bsz_grow)))
    else if size_limited && seals <= 1 && t.bsz > p.bsz_min then
      t.bsz <- max p.bsz_min (int_of_float (float_of_int t.bsz *. p.bsz_shrink))
    else if
      (* demand shrink: everything flushes on the delay cap well
         underfull — BSZ is far above the offered load, so close batches
         earlier; throughput is unaffected (batches were delay-bound
         anyway) and latency drops *)
      sealed_any
      && s.s_seals_delay > s.s_seals_size
      && s.s_batch_fill > 0. && s.s_batch_fill < 0.5
      && t.bsz > p.bsz_min
    then
      t.bsz <- max p.bsz_min (int_of_float (float_of_int t.bsz *. p.bsz_shrink));
    if
      saturated && t.cool_wnd = 0 && t.wnd < p.wnd_max
      && s.s_commit_latency_s <= p.latency_bound_s
    then t.wnd <- min p.wnd_max (t.wnd + p.wnd_step)
  end

let pp fmt t =
  Format.fprintf fmt "autotune{bsz=%d wnd=%d ticks=%d}" t.bsz t.wnd t.ticks
