(** MultiPaxos protocol engine (pure, deterministic).

    This is the logic executed by the Protocol thread (Section V-C2). It
    is written as a Moore-style state machine: every entry point feeds one
    event in and returns the list of {!action}s the caller must carry out
    (send messages, schedule/cancel retransmissions, hand decided batches
    to the service, ...). The engine performs no I/O, spawns no threads
    and never reads the clock, which makes it:

    - directly testable (the property tests drive whole clusters of
      engines through random message schedules and check agreement), and
    - shared verbatim between the live runtime and the discrete-event
      simulator.

    Protocol shape (matching JPaxos): Phase 1 ([Prepare]/[Prepare_ok])
    once per view change; Phase 2 ([Accept]/[Accepted]) per instance with
    [Accepted] sent only to the leader, which then broadcasts a small
    [Decide] carrying the deciding view. Batching and pipelining (WND) are
    built in; catch-up transfers decided entries or a service snapshot. *)

type rtx_key =
  | Rtx_prepare of Types.view
  | Rtx_accept of Types.view * Types.iid

val pp_rtx_key : Format.formatter -> rtx_key -> unit

type action =
  | Send of { dest : Types.node_id list; msg : Msg.t }
  | Execute of { iid : Types.iid; value : Value.t }
      (** Emitted in strict instance order, exactly once per instance. *)
  | Schedule_rtx of { key : rtx_key; dest : Types.node_id list; msg : Msg.t }
  | Cancel_rtx of rtx_key
  | View_changed of {
      view : Types.view;
      leader : Types.node_id;
      i_am_leader : bool;
    }
  | Install_snapshot of { next_iid : Types.iid; state : bytes }
      (** Received through catch-up; the service must restore this state,
          which covers every instance below [next_iid]. *)
  | Membership_changed of {
      membership : Membership.t;
      effective_iid : Types.iid;
    }
      (** A consensus-ordered reconfiguration was adopted: [membership]
          governs every instance from [effective_iid] on. The runtime
          must re-arm the failure detector's peer set, invalidate
          leases, and fence itself if it is no longer a member
          (DESIGN.md section 17). *)

val pp_action : Format.formatter -> action -> unit

type stats = {
  mutable decided : int;          (** instances decided locally *)
  mutable noops_decided : int;
  mutable view_changes : int;
  mutable catchup_queries_sent : int;
  mutable msgs_in : int;
  mutable msgs_out : int;
}

type t

val create : ?view0:Types.view -> Config.t -> me:Types.node_id -> t
(** [view0] (default 0) is the view the engine starts in. Multi-group
    deployments pass [view0 = gid] so group [gid]'s initial leader is
    [Types.leader_of_view ~n view0 = gid mod n] — leadership spreads
    round-robin over the replicas (see
    {!Config.initial_leader_of_group}). *)

val bootstrap : t -> action list
(** Start the engine. The leader of the initial view ([view0 mod n];
    node 0 in the default single-group layout) becomes active
    immediately — on a fresh group nothing can have been accepted in an
    earlier view, so Phase 1 is unnecessary. Every node reports the
    initial [View_changed]. *)

val recover :
  ?configs:(Types.iid * Membership.t) list ->
  Config.t ->
  me:Types.node_id ->
  view:Types.view ->
  accepted:(Types.iid * Types.view * Value.t) list ->
  decided:(Types.iid * Types.view * Value.t) list ->
  snapshot:(Types.iid * bytes) option ->
  t * action list
(** Rebuild an engine from durable state (see
    [Msmr_storage.Replica_store]). The node re-enters [view] as a
    follower — even if it used to lead it, it must run Phase 1 again
    before proposing. The returned actions replay the executed prefix:
    [Install_snapshot] (if any) followed by [Execute] for contiguous
    decided instances; the caller feeds them to the service before
    processing new traffic. [?configs] (newest first) restores the
    membership history from a checkpoint; reconfigs decided in the
    replayed WAL suffix are re-adopted on top. Use instead of
    {!bootstrap}. *)

(** {1 Introspection} *)

val me : t -> Types.node_id
val view : t -> Types.view
val leader : t -> Types.node_id
val is_leader : t -> bool
(** True when this node leads the current view {e and} has finished
    Phase 1. *)

val can_propose : t -> bool
(** Leader, Phase 1 complete, and fewer than WND instances in flight. *)

val log : t -> Log.t
val stats : t -> stats
val window_in_use : t -> int

val membership : t -> Membership.t
(** The newest adopted membership epoch. *)

val membership_at : t -> Types.iid -> Membership.t
(** The membership governing instance [iid]. *)

val configs : t -> (Types.iid * Membership.t) list
(** Membership history, newest first, as persisted in checkpoints and
    carried inside catch-up snapshots. *)

val reconfig_in_flight : t -> bool
(** A [Value.Reconfig] this node opened has not executed yet; ordinary
    proposals are queued behind it. *)

val reconfig_alpha : t -> int
(** The decide-to-effect lag α: a Reconfig decided at instance d
    governs instances from d + α. *)

val window : t -> int
(** WND currently in force ([cfg.window] unless retuned). *)

val set_window : t -> int -> unit
(** Retune WND online (clamped to >= 1). Must be called from the thread
    that owns the engine (the Protocol thread) — the engine is
    single-threaded state, and the {!Autotune} controller runs on that
    same thread's tick, so no synchronisation is needed. Shrinking below
    the current in-flight count stops new proposals until enough
    instances decide; nothing in flight is cancelled. *)

(** {1 Events} *)

val propose : t -> Batch.t -> action list
(** Open a new instance for [batch]. Call only when {!can_propose}; if
    the window is full the batch is silently queued internally and
    proposed as instances complete. *)

val propose_reconfig : t -> Membership.t -> action list
(** Order a membership change ([Membership.add_learner], [promote] or
    [remove] of the current {!membership}) through the log. Returns []
    when it cannot be opened right now (not the active leader, window
    full, another reconfig in flight, stale epoch) — callers retry.
    Takes effect {!reconfig_alpha} instances after its decide point. *)

val receive : t -> from:Types.node_id -> Msg.t -> action list
(** Handle a protocol message from a peer. Malformed or stale messages
    are dropped (returning any catch-up actions they trigger). *)

val suspect_leader : t -> action list
(** Failure-detector verdict: the current leader is unresponsive. The
    node advances to the next view it leads and starts Phase 1. No-op if
    this node already leads the current view. *)

val tick_catchup : t -> action list
(** Periodic housekeeping: if this replica knows of decided instances it
    has not decided locally, ask the leader for them (rate-limited to one
    outstanding query). *)

val note_snapshot : t -> next_iid:Types.iid -> state:bytes -> action list
(** The service took a snapshot covering every instance below [next_iid].
    The engine retains it for catch-up replies and truncates the log,
    keeping [log_retain] decided entries below the snapshot point. *)
