type t = {
  cfg : Config.t;
  me : Types.node_id;
  (* Timestamps in ns, stored as [int] so that concurrent single-word
     stores from ReplicaIO threads are atomic (no tearing). *)
  last_recv : int array;
  last_send : int array;
  mutable view : Types.view;
  mutable suspect_armed_ns : int;  (* leader silence measured from here *)
  mutable membership : Membership.t;
      (* current epoch's member set: heartbeats go only to members, and
         a detector whose own node is not a member stays silent *)
}

let ns64 i64 = Int64.to_int i64

let create cfg ~me ~now_ns =
  let now = ns64 now_ns in
  { cfg; me;
    last_recv = Array.make cfg.n now;
    last_send = Array.make cfg.n now;
    view = 0;
    suspect_armed_ns = now;
    membership = Membership.initial cfg }

let note_recv t ~from ~now_ns =
  if from >= 0 && from < t.cfg.n then t.last_recv.(from) <- ns64 now_ns

let note_send t ~dest ~now_ns =
  if dest >= 0 && dest < t.cfg.n then t.last_send.(dest) <- ns64 now_ns

let set_view t ~view ~now_ns =
  t.view <- view;
  t.suspect_armed_ns <- ns64 now_ns

(* Re-arm the peer set on a membership change: removed nodes stop being
   heartbeaten (and stop suspecting anyone), joiners get a fresh grace
   period so they are not instantly suspected from stale timestamps. *)
let set_membership t m ~now_ns =
  let now = ns64 now_ns in
  List.iter
    (fun p ->
      if not (Membership.is_member t.membership p) then begin
        t.last_recv.(p) <- now;
        t.last_send.(p) <- now
      end)
    (Membership.members m);
  t.membership <- m;
  t.suspect_armed_ns <- now

type verdict =
  | Heartbeat_to of Types.node_id list
  | Suspect of Types.node_id

let leader t = Types.leader_of_view ~n:t.cfg.n t.view

let interval_ns t = Int64.to_int (Msmr_platform.Mclock.ns_of_s t.cfg.fd_interval_s)
let timeout_ns t = Int64.to_int (Msmr_platform.Mclock.ns_of_s t.cfg.fd_timeout_s)

let poll t ~now_ns =
  let now = ns64 now_ns in
  if not (Membership.is_member t.membership t.me) then
    (* Fenced: a removed node neither heartbeats nor elects. *)
    []
  else if leader t = t.me then begin
    let stale = ref [] in
    for p = t.cfg.n - 1 downto 0 do
      if
        p <> t.me
        && Membership.is_member t.membership p
        && now - t.last_send.(p) >= interval_ns t
      then stale := p :: !stale
    done;
    match !stale with [] -> [] | peers -> [ Heartbeat_to peers ]
  end
  else begin
    let ldr = leader t in
    let last_alive = max t.last_recv.(ldr) t.suspect_armed_ns in
    if now - last_alive >= timeout_ns t then begin
      (* Re-arm so the verdict fires once per timeout period. *)
      t.suspect_armed_ns <- now;
      [ Suspect ldr ]
    end
    else []
  end

let next_wake_ns t ~now_ns =
  let now = ns64 now_ns in
  let at =
    if leader t = t.me then begin
      let earliest = ref max_int in
      for p = 0 to t.cfg.n - 1 do
        if p <> t.me then
          earliest := min !earliest (t.last_send.(p) + interval_ns t)
      done;
      if !earliest = max_int then now + interval_ns t else !earliest
    end
    else begin
      let ldr = leader t in
      let last_alive = max t.last_recv.(ldr) t.suspect_armed_ns in
      last_alive + timeout_ns t
    end
  in
  Int64.of_int (max at now)
