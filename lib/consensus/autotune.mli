(** Online feedback controller for BSZ and WND (pure policy).

    The paper hand-picks its two headline knobs — BSZ (batch bytes) and
    WND (pipeline window) — per deployment (Section VI: WND = 10,
    BSZ = 1300 for the 24-core cluster). This controller tunes them
    online instead, from signals every driver already has: window
    occupancy, queue depths, how batches seal (on size vs on the delay
    cap) and how full they are, and the commit throughput/latency of the
    previous epoch.

    The rule is AIMD on structural signals:

    - {b grow BSZ} (multiplicatively, ~25%/epoch) while batches
      predominantly seal on size — the batcher is size-limited, so a
      bigger batch amortises more per-batch and per-instance cost;
    - {b grow WND} (additively) while the window is saturated (occupancy
      at the limit, or proposals queuing behind it) and commit latency
      stays under the bound;
    - {b back off WND multiplicatively} when commit latency exceeds the
      bound or the durability LogQueue backs up — pipelining depth is
      the congestion lever — then cool that dimension for a few epochs
      so the congestion can drain;
    - {b shrink BSZ toward demand} when batches persistently flush
      underfull on the delay cap — a lower seal threshold closes batches
      earlier and cuts latency without costing throughput.

    The measured throughput is deliberately {e not} a steering input:
    closed-loop clients complete in convoys, so per-epoch throughput
    readings swing by an order of magnitude and any epoch-scale
    before/after comparison attributes phantom regressions to whichever
    knob moved last (DESIGN.md §11 shows the measured trajectories). The
    structural signals above are stable epoch over epoch and identify
    the same optimum.

    The module is pure state-machine policy: no clock, no threads, no
    I/O. Drivers decide the epoch cadence and feed {!tick}; identical
    signal sequences produce identical trajectories (the simulator's
    determinism tests rely on this). Cross-thread publication of the
    tuned values is the driver's job — the live runtime copies
    {!bsz}/{!wnd} into [Atomic]s after each tick, honouring the no-lock
    rule of the ReplicationCore. *)

type params = {
  bsz_min : int;
  bsz_max : int;
  wnd_min : int;
  wnd_max : int;
  latency_bound_s : float;
      (** commit-latency budget; WND never grows above it and backs off
          multiplicatively beyond it *)
  queue_high : int;
      (** LogQueue backlog treated as congestion (durable mode) *)
  bsz_grow : float;    (** multiplicative BSZ growth factor (> 1) *)
  bsz_shrink : float;  (** BSZ demand-shrink factor (< 1) *)
  wnd_step : int;      (** additive WND growth per epoch *)
  backoff : float;     (** multiplicative decrease factor (< 1) *)
}

val default_params : params
(** bounds 256..65536 bytes / 1..64 instances, 50 ms latency bound,
    LogQueue high mark 512, grow ×1.25 / +3, shrink ×0.8, backoff ×0.7. *)

val params_of_config : Config.t -> params
(** {!default_params} with the bounds taken from the config
    ([bsz_min]/[bsz_max]/[wnd_min]/[wnd_max]). *)

type signals = {
  s_window_in_use : int;   (** {!Paxos.window_in_use} at the tick *)
  s_proposal_queue : int;  (** ProposalQueue depth at the tick *)
  s_log_queue : int;       (** StableStorage LogQueue depth; 0 if none *)
  s_seals_size : int;      (** batches sealed on the size limit this epoch *)
  s_seals_delay : int;     (** batches flushed on the delay cap this epoch *)
  s_batch_fill : float;
      (** mean sealed-bytes ÷ BSZ over this epoch's batches (can exceed
          1 for oversized singletons); 0 when no batch sealed *)
  s_throughput : float;
      (** requests committed per second this epoch — reported for
          observability and logging, not a steering input (see above) *)
  s_commit_latency_s : float;
      (** mean propose→decide latency this epoch; 0 when nothing decided *)
}

type t

val create : ?params:params -> bsz0:int -> wnd0:int -> unit -> t
(** Start from [bsz0]/[wnd0] (clamped into the bounds). *)

val of_config : Config.t -> t
(** [create] seeded from [cfg.max_batch_bytes]/[cfg.window] with
    {!params_of_config}. *)

val bsz : t -> int
val wnd : t -> int
val ticks : t -> int
(** Epochs observed so far. *)

val tick : t -> signals -> unit
(** Close one epoch: update the tuned BSZ/WND from [signals]. *)

val pp : Format.formatter -> t -> unit
