module Codec = Msmr_wire.Codec

type rtx_key =
  | Rtx_prepare of Types.view
  | Rtx_accept of Types.view * Types.iid

let pp_rtx_key ppf = function
  | Rtx_prepare v -> Format.fprintf ppf "rtx-prepare(v=%d)" v
  | Rtx_accept (v, i) -> Format.fprintf ppf "rtx-accept(v=%d,i=%d)" v i

type action =
  | Send of { dest : Types.node_id list; msg : Msg.t }
  | Execute of { iid : Types.iid; value : Value.t }
  | Schedule_rtx of { key : rtx_key; dest : Types.node_id list; msg : Msg.t }
  | Cancel_rtx of rtx_key
  | View_changed of {
      view : Types.view;
      leader : Types.node_id;
      i_am_leader : bool;
    }
  | Install_snapshot of { next_iid : Types.iid; state : bytes }
  | Membership_changed of {
      membership : Membership.t;
      effective_iid : Types.iid;
    }

let pp_action ppf = function
  | Send { dest; msg } ->
    Format.fprintf ppf "send[%s] %a"
      (String.concat "," (List.map string_of_int dest))
      Msg.pp msg
  | Execute { iid; value } ->
    Format.fprintf ppf "execute(%d, %a)" iid Value.pp value
  | Schedule_rtx { key; _ } -> Format.fprintf ppf "schedule %a" pp_rtx_key key
  | Cancel_rtx key -> Format.fprintf ppf "cancel %a" pp_rtx_key key
  | View_changed { view; leader; i_am_leader } ->
    Format.fprintf ppf "view_changed(v=%d, leader=%d%s)" view leader
      (if i_am_leader then ", me" else "")
  | Install_snapshot { next_iid; _ } ->
    Format.fprintf ppf "install_snapshot(next=%d)" next_iid
  | Membership_changed { membership; effective_iid } ->
    Format.fprintf ppf "membership_changed(%a, effective=%d)" Membership.pp
      membership effective_iid

type stats = {
  mutable decided : int;
  mutable noops_decided : int;
  mutable view_changes : int;
  mutable catchup_queries_sent : int;
  mutable msgs_in : int;
  mutable msgs_out : int;
}

type preparing = {
  p_view : Types.view;
  oks : (Types.node_id, Msg.log_entry list * Types.iid) Hashtbl.t;
}

type t = {
  cfg : Config.t;
  me : Types.node_id;
  mutable window : int; (* WND in force: cfg.window unless retuned online *)
  log : Log.t;
  mutable view : Types.view;
  mutable active : bool;             (* I lead [view] and Phase 1 is done *)
  mutable preparing : preparing option;
  mutable pending : Batch.t list;    (* proposals deferred by a full window,
                                        newest first *)
  mutable decided_hint : Types.iid;  (* 1 + highest instance known decided
                                        somewhere in the group *)
  mutable catchup_outstanding : int; (* ticks to wait before re-querying *)
  mutable snapshot : (Types.iid * bytes) option;
  live_rtx : (rtx_key, unit) Hashtbl.t;
      (* retransmissions scheduled and not yet cancelled; all are
         view-specific, so they are flushed when the view changes *)
  mutable configs : (Types.iid * Membership.t) list;
      (* membership history, newest first; each entry (s, m) means [m]
         governs instances iid >= s until a newer entry's start. The
         boot entry is (0, Membership.initial cfg) and the list is
         pruned once older configs govern only decided instances. *)
  mutable mchanges : (Membership.t * Types.iid) list;
      (* adopted-but-unreported config changes, oldest first; drained
         into Membership_changed actions at the public entry points *)
  mutable reconfig_pending : bool;
      (* a Value.Reconfig we opened is in flight; block further
         proposals until it executes so reconfigs serialize *)
  stats : stats;
}

let create ?(view0 = 0) cfg ~me =
  (match Config.validate cfg with
   | Ok () -> ()
   | Error e -> invalid_arg ("Paxos.create: " ^ e));
  if me < 0 || me >= cfg.n then invalid_arg "Paxos.create: bad node id";
  if view0 < 0 then invalid_arg "Paxos.create: view0 must be >= 0";
  { cfg; me; window = cfg.window; log = Log.create (); view = view0;
    active = false; preparing = None;
    pending = []; decided_hint = 0; catchup_outstanding = 0; snapshot = None;
    live_rtx = Hashtbl.create 64;
    configs = [ (0, Membership.initial cfg) ];
    mchanges = [];
    reconfig_pending = false;
    stats =
      { decided = 0; noops_decided = 0; view_changes = 0;
        catchup_queries_sent = 0; msgs_in = 0; msgs_out = 0 } }

let me t = t.me
let view t = t.view
let leader t = Types.leader_of_view ~n:t.cfg.n t.view
let is_leader t = t.active && leader t = t.me
let log t = t.log
let stats t = t.stats
let window_in_use t = Log.in_flight t.log
let window t = t.window
let set_window t w = t.window <- max 1 w

(* ------------------------------------------------------------------ *)
(* Membership epochs (DESIGN.md section 17)                            *)

let newest_membership t = snd (List.hd t.configs)
let configs t = t.configs

(* The membership governing instance [iid]: the newest config whose
   start is <= iid (the boot entry starts at 0, so one always exists). *)
let membership_at t iid =
  let rec go = function
    | (s, m) :: _ when iid >= s -> m
    | _ :: rest -> go rest
    | [] -> snd (List.hd t.configs)
  in
  go t.configs

(* A decided Reconfig at instance d takes effect at d + alpha. The
   window invariant (a leader opens instance i only when everything
   below i - window + 1 .. is within its window of first_undecided)
   guarantees whoever opens instance d + alpha has already decided —
   and hence executed — instance d, so every replica switches at the
   same instance. Alpha is computed from the *static* config (never the
   retuned window, which could diverge across replicas): under
   auto-tuning the window is bounded by wnd_max, so that bound is the
   lag. *)
let alpha t =
  let w = if t.cfg.auto_tune then t.cfg.wnd_max else t.cfg.window in
  max w (max t.cfg.reconfig_alpha 1)

(* Drop configs that no longer govern any undecided instance. *)
let prune_configs t =
  let fu = Log.first_undecided t.log in
  let rec keep = function
    | ((s, _) as c) :: rest when s > fu -> c :: keep rest
    | c :: _ -> [ c ]
    | [] -> []
  in
  t.configs <- keep t.configs

(* Adopt a Reconfig as it *executes* (executions are strictly ordered,
   so epochs chain deterministically even when decides arrive out of
   log order). A node that is no longer a voter deactivates: it stops
   proposing, heartbeating and serving; see suspect_leader for the
   matching election fence. *)
let adopt_reconfig t ~decided_at m =
  t.reconfig_pending <- false;
  let cur = newest_membership t in
  if m.Membership.epoch = cur.Membership.epoch + 1 then begin
    let eff = decided_at + alpha t in
    t.configs <- (eff, m) :: t.configs;
    t.mchanges <- t.mchanges @ [ (m, eff) ];
    if t.active && not (Membership.is_voter m t.me) then t.active <- false
  end

let drain_mchanges t =
  let l = t.mchanges in
  t.mchanges <- [];
  List.map
    (fun (m, eff) -> Membership_changed { membership = m; effective_iid = eff })
    l

(* Tack adopted config changes onto an action list; the static path
   ([] changes) returns [acts] untouched. *)
let with_mchanges t acts =
  match t.mchanges with [] -> acts | _ -> acts @ drain_mchanges t

let others t =
  match t.configs with
  | [ (_, m) ] when Membership.n_voters m = t.cfg.n ->
    List.filter (fun p -> p <> t.me) (List.init t.cfg.n Fun.id)
  | configs ->
    let ms = List.concat_map (fun (_, m) -> Membership.members m) configs in
    List.filter (fun p -> p <> t.me) (List.sort_uniq compare ms)

let send t dest msg =
  t.stats.msgs_out <- t.stats.msgs_out + List.length dest;
  Send { dest; msg }

let schedule_rtx t key dest msg =
  Hashtbl.replace t.live_rtx key ();
  Schedule_rtx { key; dest; msg }

let cancel_rtx t key =
  Hashtbl.remove t.live_rtx key;
  Cancel_rtx key

(* View-specific retransmissions become junk when the view changes:
   receivers would ignore them, but the retransmitter would replay them
   forever. Cancel them all. *)
let cancel_all_rtx t =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) t.live_rtx [] in
  List.map (cancel_rtx t) keys

(* Drain contiguous decided instances into Execute actions. Reconfigs
   are adopted here, at their execution point, so the epoch chain is
   applied in strict log order on every replica. *)
let drain_executions t =
  let rec go acc =
    match Log.next_to_execute t.log with
    | None -> List.rev acc
    | Some (iid, value) ->
      Log.mark_executed t.log iid;
      (match value with
       | Value.Reconfig m -> adopt_reconfig t ~decided_at:iid m
       | Value.Noop | Value.Batch _ -> ());
      go (Execute { iid; value } :: acc)
  in
  go []

let self_ack_bit t = 1 lsl t.me

let popcount bits =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go bits 0

let decide_locally t iid view value =
  if Log.decide t.log iid view value then begin
    t.stats.decided <- t.stats.decided + 1;
    (match value with
     | Value.Noop -> t.stats.noops_decided <- t.stats.noops_decided + 1
     | Value.Batch _ | Value.Reconfig _ -> ());
    if iid + 1 > t.decided_hint then t.decided_hint <- iid + 1;
    (match t.configs with _ :: _ :: _ -> prune_configs t | _ -> ());
    true
  end
  else false

(* Propose [value] for [iid] in the current view: accept locally, count
   our own vote, broadcast Accept and schedule its retransmission. The
   quorum is the voter majority of the membership governing [iid]; our
   own vote counts only if we are a voter there. *)
let open_instance t iid value =
  (match value with
   | Value.Reconfig _ -> t.reconfig_pending <- true
   | Value.Noop | Value.Batch _ -> ());
  Log.accept t.log iid t.view value;
  let e = Log.get_or_create t.log iid in
  e.acks <- self_ack_bit t;
  let msg = Msg.Accept { view = t.view; iid; value } in
  let m = membership_at t iid in
  let self_votes = if Membership.is_voter m t.me then 1 else 0 in
  if Membership.quorum m <= self_votes then begin
    (* Singleton voter set: our own vote is a majority. Learners (if
       any) still get the stream so they can follow the log. *)
    ignore (decide_locally t iid t.view value);
    let learner_feed =
      match others t with
      | [] -> []
      | dests ->
        [ send t dests msg; send t dests (Msg.Decide { view = t.view; iid }) ]
    in
    learner_feed @ drain_executions t
  end
  else
    [ send t (others t) msg;
      schedule_rtx t (Rtx_accept (t.view, iid)) (others t) msg ]

let can_propose t =
  t.active && t.preparing = None && (not t.reconfig_pending)
  && Log.in_flight t.log < t.window
  && t.pending = []

(* Propose deferred batches while the window allows. *)
let flush_pending t =
  let rec go acc =
    if
      t.active && (not t.reconfig_pending)
      && Log.in_flight t.log < t.window
      && t.pending <> []
    then begin
      match List.rev t.pending with
      | [] -> acc
      | oldest :: rest_rev ->
        t.pending <- List.rev rest_rev;
        go (acc @ open_instance t (Log.next_unused t.log) (Value.Batch oldest))
    end
    else acc
  in
  go []

let propose t batch =
  let acts =
    if
      t.active && t.preparing = None && (not t.reconfig_pending)
      && Log.in_flight t.log < t.window
      && t.pending = []
    then open_instance t (Log.next_unused t.log) (Value.Batch batch)
    else begin
      t.pending <- batch :: t.pending;
      flush_pending t
    end
  in
  with_mchanges t acts

(* Adopt view [v] as a follower, cancelling everything specific to the
   previous view. Returns the actions to emit. *)
let enter_view t v =
  t.view <- v;
  t.active <- false;
  t.preparing <- None;
  t.reconfig_pending <- false;
  t.stats.view_changes <- t.stats.view_changes + 1;
  cancel_all_rtx t
  @ [ View_changed
        { view = v;
          leader = Types.leader_of_view ~n:t.cfg.n v;
          i_am_leader = false } ]

(* ------------------------------------------------------------------ *)
(* Phase 1                                                             *)

(* Phase 1 must gather a *joint* quorum: a voter majority of every
   membership that still governs some undecided instance (the config in
   force at first_undecided plus every newer one). With a single static
   config this degenerates to the classic majority of n. Learner and
   stranger replies are stored but never counted. *)
let prepare_quorum_met t (prep : preparing) =
  let fu = Log.first_undecided t.log in
  let rec relevant = function
    | [] -> []
    | (s, m) :: rest -> if s > fu then m :: relevant rest else [ m ]
  in
  List.for_all
    (fun m ->
      let votes =
        Hashtbl.fold
          (fun node _ acc ->
            if Membership.is_voter m node then acc + 1 else acc)
          prep.oks 0
        + (if Membership.is_voter m t.me then 1 else 0)
      in
      votes >= Membership.quorum m)
    (relevant t.configs)

let rec start_prepare t v =
  let cancels = cancel_all_rtx t in
  t.view <- v;
  t.active <- false;
  t.reconfig_pending <- false;
  t.stats.view_changes <- t.stats.view_changes + 1;
  let prep = { p_view = v; oks = Hashtbl.create 8 } in
  t.preparing <- Some prep;
  let from_iid = Log.first_undecided t.log in
  let msg = Msg.Prepare { view = v; from_iid } in
  let view_changed =
    View_changed { view = v; leader = t.me; i_am_leader = false }
  in
  if prepare_quorum_met t prep then
    (* Our own log alone is a joint quorum (singleton voter set). *)
    cancels @ (view_changed :: finish_prepare t)
  else
    cancels
    @ [ view_changed;
        send t (others t) msg;
        schedule_rtx t (Rtx_prepare v) (others t) msg ]

and finish_prepare t =
  let prep = Option.get t.preparing in
  let v = prep.p_view in
  t.preparing <- None;
  t.active <- true;
  (* Merge: first adopt every decision reported by the quorum, then
     re-propose, in view [v], the highest-view accepted value for every
     retained undecided instance (Noop where nothing was accepted). *)
  let decided_entries = ref [] in
  let best : (Types.iid, Types.view * Value.t) Hashtbl.t = Hashtbl.create 64 in
  let hi = ref (Log.next_unused t.log) in
  Hashtbl.iter
    (fun _node (entries, _fu) ->
       List.iter
         (fun (e : Msg.log_entry) ->
            if e.e_iid + 1 > !hi then hi := e.e_iid + 1;
            if e.e_decided then decided_entries := e :: !decided_entries
            else
              match Hashtbl.find_opt best e.e_iid with
              | Some (bv, _) when bv >= e.e_view -> ()
              | Some _ | None ->
                Hashtbl.replace best e.e_iid (e.e_view, e.e_value))
         entries)
    prep.oks;
  List.iter
    (fun (e : Msg.log_entry) ->
       ignore (decide_locally t e.e_iid e.e_view e.e_value))
    !decided_entries;
  let exec0 = drain_executions t in
  (* Re-propose everything undecided in [first_undecided, hi). *)
  let reproposals = ref [] in
  for iid = Log.first_undecided t.log to !hi - 1 do
    if not (Log.is_decided t.log iid) then begin
      let own =
        match Log.get t.log iid with
        | Some { accepted_view; value = Some value; _ } when accepted_view >= 0 ->
          Some (accepted_view, value)
        | Some _ | None -> None
      in
      let merged =
        match (own, Hashtbl.find_opt best iid) with
        | Some (ov, oval), Some (bv, bval) ->
          if ov >= bv then Some (ov, oval) else Some (bv, bval)
        | Some x, None -> Some x
        | None, Some x -> Some x
        | None, None -> None
      in
      let value = match merged with Some (_, v) -> v | None -> Value.Noop in
      reproposals := List.rev_append (open_instance t iid value) !reproposals
    end
  done;
  let became =
    View_changed { view = v; leader = t.me; i_am_leader = true }
  in
  (cancel_rtx t (Rtx_prepare v) :: became :: exec0)
  @ List.rev !reproposals
  @ flush_pending t

let suspect_leader t =
  if
    (* Epoch fence: only a voter of the newest membership may run for
       leadership. Learners (joiners still catching up) and removed
       nodes never activate a view, so a stale or half-caught-up node
       can never become leader. *)
    not (Membership.is_voter (newest_membership t) t.me)
  then []
  else if is_leader t then []
  else if
    (* Already racing for leadership of a view we proposed. *)
    match t.preparing with Some p -> p.p_view >= t.view | None -> false
  then []
  else begin
    let v = Types.next_view_led_by ~n:t.cfg.n ~after:t.view t.me in
    with_mchanges t (start_prepare t v)
  end

(* ------------------------------------------------------------------ *)
(* Catch-up                                                            *)

let catchup_reply_max_entries = 200

(* Snapshots travel with the membership history so a joiner that
   installs one also learns the epoch chain it skipped over. The
   service-state bytes are wrapped engine-side (and unwrapped in
   handle_catchup_reply), keeping the Msg wire format untouched. *)
let wrap_snapshot t state =
  let w = Codec.W.create () in
  Membership.encode_configs w t.configs;
  Codec.W.bytes w state;
  Codec.W.to_bytes w

let unwrap_snapshot b =
  let r = Codec.R.of_bytes b in
  let configs = Membership.decode_configs r in
  let state = Codec.R.bytes r in
  (configs, state)

let make_catchup_reply t ~from_iid ~to_iid =
  let lo = max from_iid (Log.low_mark t.log) in
  let to_iid = min to_iid (lo + catchup_reply_max_entries) in
  let entries = Log.decided_range t.log ~from_iid:lo ~to_iid in
  let snapshot =
    match t.snapshot with
    | Some (next_iid, state) when from_iid < Log.low_mark t.log
                                  && next_iid > from_iid ->
      Some (next_iid, wrap_snapshot t state)
    | Some _ | None -> None
  in
  Msg.Catchup_reply { entries; snapshot }

let tick_catchup t =
  if t.catchup_outstanding > 0 then begin
    t.catchup_outstanding <- t.catchup_outstanding - 1;
    []
  end
  else begin
    let fu = Log.first_undecided t.log in
    if t.decided_hint > fu && not (is_leader t) then begin
      t.stats.catchup_queries_sent <- t.stats.catchup_queries_sent + 1;
      (* Allow a few ticks for the reply before asking again. *)
      t.catchup_outstanding <- 3;
      let target = leader t in
      let target = if target = t.me then (t.me + 1) mod t.cfg.n else target in
      (* Query a current member: the universe-based fallback above can
         point at a node outside the membership (e.g. a removed one). *)
      let target =
        let m = newest_membership t in
        if Membership.is_member m target then target
        else
          match List.filter (fun p -> p <> t.me) (Membership.members m) with
          | p :: _ -> p
          | [] -> target
      in
      [ send t [ target ]
          (Msg.Catchup_query { from_iid = fu; to_iid = t.decided_hint }) ]
    end
    else []
  end

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)

let handle_prepare t ~from ~view:v ~from_iid =
  if v < t.view then []
  else begin
    let pre = if v > t.view || t.active then enter_view t v else [] in
    t.view <- v;
    let reply =
      Msg.Prepare_ok
        { view = v;
          first_undecided = Log.first_undecided t.log;
          entries = Log.entries_from t.log from_iid }
    in
    pre @ [ send t [ from ] reply ]
  end

let handle_prepare_ok t ~from ~view:v ~first_undecided ~entries =
  match t.preparing with
  | Some prep when prep.p_view = v ->
    if not (Hashtbl.mem prep.oks from) then
      Hashtbl.replace prep.oks from (entries, first_undecided);
    if prepare_quorum_met t prep then finish_prepare t else []
  | Some _ | None -> []

let handle_accept t ~from ~view:v ~iid ~value =
  if v < t.view then []
  else begin
    let pre = if v > t.view then enter_view t v else [] in
    if iid > t.decided_hint then t.decided_hint <- iid;
    if iid < Log.low_mark t.log then pre
    else begin
      if not (Log.is_decided t.log iid) then Log.accept t.log iid v value;
      pre @ [ send t [ from ] (Msg.Accepted { view = v; iid }) ]
    end
  end

let handle_accepted t ~from ~view:v ~iid =
  if not (t.active && v = t.view) then []
  else
    match Log.get t.log iid with
    | Some e when (not e.decided) && e.accepted_view = v ->
      e.acks <- e.acks lor (1 lsl from);
      let m = membership_at t iid in
      if
        popcount (e.acks land Membership.voter_mask m) >= Membership.quorum m
      then begin
        let value = Option.get e.value in
        ignore (decide_locally t iid v value);
        let decide_msg = Msg.Decide { view = v; iid } in
        (* Drain before flushing: executing a Reconfig clears the
           proposal barrier, and the batches queued behind it must
           resume now, not at the next event. *)
        let cancel = cancel_rtx t (Rtx_accept (v, iid)) in
        let execs = drain_executions t in
        let flushed = flush_pending t in
        (cancel :: send t (others t) decide_msg :: execs) @ flushed
      end
      else []
    | Some _ | None -> []

let handle_decide t ~from ~view:v_chosen ~iid =
  if iid + 1 > t.decided_hint then t.decided_hint <- iid + 1;
  if Log.is_decided t.log iid then []
  else
    match Log.get t.log iid with
    | Some { accepted_view; value = Some value; _ }
      when accepted_view = v_chosen ->
      ignore (decide_locally t iid v_chosen value);
      let execs = drain_executions t in
      execs @ flush_pending t
    | Some _ | None ->
      (* We never accepted the chosen value: fetch it. *)
      if t.catchup_outstanding > 0 then []
      else begin
        t.catchup_outstanding <- 3;
        t.stats.catchup_queries_sent <- t.stats.catchup_queries_sent + 1;
        [ send t [ from ]
            (Msg.Catchup_query
               { from_iid = Log.first_undecided t.log; to_iid = iid + 1 }) ]
      end

let handle_catchup_reply t ~entries ~snapshot =
  t.catchup_outstanding <- 0;
  let snap_actions =
    match snapshot with
    | Some (next_iid, wrapped) when next_iid > Log.first_unexecuted t.log ->
      let configs, state = unwrap_snapshot wrapped in
      (match configs with
       | (eff, m_new) :: _
         when m_new.Membership.epoch
              > (newest_membership t).Membership.epoch ->
         (* Adopt the sender's (strictly newer) epoch chain wholesale:
            the instances that would have walked us there are below the
            snapshot point. *)
         t.configs <- configs;
         t.mchanges <- t.mchanges @ [ (m_new, eff) ];
         if t.active && not (Membership.is_voter m_new t.me) then
           t.active <- false
       | _ -> ());
      Log.fast_forward t.log next_iid;
      [ Install_snapshot { next_iid; state } ]
    | Some _ | None -> []
  in
  List.iter
    (fun (e : Msg.log_entry) ->
       if e.e_decided then
         ignore (decide_locally t e.e_iid e.e_view e.e_value))
    entries;
  let execs = drain_executions t in
  snap_actions @ execs @ flush_pending t

let receive t ~from msg =
  t.stats.msgs_in <- t.stats.msgs_in + 1;
  with_mchanges t
  @@
  match msg with
  | Msg.Prepare { view; from_iid } -> handle_prepare t ~from ~view ~from_iid
  | Msg.Prepare_ok { view; first_undecided; entries } ->
    handle_prepare_ok t ~from ~view ~first_undecided ~entries
  | Msg.Accept { view; iid; value } -> handle_accept t ~from ~view ~iid ~value
  | Msg.Accepted { view; iid } -> handle_accepted t ~from ~view ~iid
  | Msg.Decide { view; iid } -> handle_decide t ~from ~view ~iid
  | Msg.Catchup_query { from_iid; to_iid } ->
    [ send t [ from ] (make_catchup_reply t ~from_iid ~to_iid) ]
  | Msg.Catchup_reply { entries; snapshot } ->
    handle_catchup_reply t ~entries ~snapshot
  | Msg.Heartbeat { view; first_undecided } ->
    if first_undecided > t.decided_hint then t.decided_hint <- first_undecided;
    if view > t.view then enter_view t view else []
  (* Lease traffic is handled entirely by the runtime's Lease manager
     (before the engine sees peer messages); the clock-free engine
     ignores it so a stray delivery is harmless. *)
  | Msg.Lease_ping _ | Msg.Lease_grant _ -> []

(* Activating the initial view's leader without Phase 1 is safe on a
   fresh group: nothing can have been accepted in an earlier view (with
   [view0 = 0] there is no earlier view; a multi-group [view0 = gid]
   starts the whole group at that view). *)
let bootstrap t =
  let view = t.view in
  let leader = Types.leader_of_view ~n:t.cfg.n view in
  if t.me = leader && Membership.is_voter (newest_membership t) t.me then begin
    t.active <- true;
    [ View_changed { view; leader; i_am_leader = true } ]
  end
  else [ View_changed { view; leader; i_am_leader = false } ]

let recover ?configs:(configs0 = []) cfg ~me ~view ~accepted ~decided ~snapshot
    =
  let t = create cfg ~me in
  (match configs0 with [] -> () | l -> t.configs <- l);
  t.view <- view;
  t.active <- false;
  (match snapshot with
   | Some (next_iid, state) ->
     t.snapshot <- Some (next_iid, state);
     Log.fast_forward t.log next_iid
   | None -> ());
  List.iter (fun (iid, v, value) -> Log.accept t.log iid v value) accepted;
  List.iter (fun (iid, v, value) -> ignore (decide_locally t iid v value)) decided;
  let replays =
    (match snapshot with
     | Some (next_iid, state) -> [ Install_snapshot { next_iid; state } ]
     | None -> [])
    @ drain_executions t
  in
  let view_changed =
    View_changed
      { view; leader = Types.leader_of_view ~n:cfg.Config.n view;
        i_am_leader = false }
  in
  (* If this node used to lead, it must re-run Phase 1 before proposing;
     start immediately rather than waiting for someone to suspect the
     silent old view. *)
  let restart =
    if
      Types.leader_of_view ~n:cfg.Config.n view = me
      && Membership.is_voter (newest_membership t) me
    then start_prepare t (Types.next_view_led_by ~n:cfg.Config.n ~after:view me)
    else []
  in
  (t, with_mchanges t ((view_changed :: replays) @ restart))

(* Order a membership change through the log. Only the active leader —
   itself a voter of the newest epoch — may open one; [m] must be the
   next epoch (as built by Membership.add_learner/promote/remove from
   the current membership). Returns [] when the change cannot be opened
   right now (not leader, window full, a reconfig already in flight, or
   a stale epoch) — callers retry. *)
let propose_reconfig t m =
  let cur = newest_membership t in
  if
    t.active && t.preparing = None
    && (not t.reconfig_pending)
    && Log.in_flight t.log < t.window
    && m.Membership.epoch = cur.Membership.epoch + 1
    && Membership.is_voter cur t.me
  then
    with_mchanges t
      (* A singleton voter set decides (and executes) the Reconfig
         inside [open_instance]; batches queued behind the barrier must
         resume immediately, hence the trailing flush. *)
      (let opened = open_instance t (Log.next_unused t.log) (Value.Reconfig m) in
       opened @ flush_pending t)
  else []

let membership t = newest_membership t
let reconfig_in_flight t = t.reconfig_pending
let reconfig_alpha t = alpha t

let note_snapshot t ~next_iid ~state =
  (match t.snapshot with
   | Some (existing, _) when existing >= next_iid -> ()
   | Some _ | None ->
     t.snapshot <- Some (next_iid, state);
     Log.truncate_below t.log (max 0 (next_iid - t.cfg.log_retain)));
  []
