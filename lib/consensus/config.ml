type t = {
  n : int;
  groups : int;
  window : int;
  max_batch_bytes : int;
  max_batch_delay_s : float;
  retransmit_interval_s : float;
  fd_interval_s : float;
  fd_timeout_s : float;
  catchup_interval_s : float;
  snapshot_every : int;
  log_retain : int;
  auto_tune : bool;
  bsz_min : int;
  bsz_max : int;
  wnd_min : int;
  wnd_max : int;
  tune_epoch_s : float;
  lockfree : bool;
  steal : bool;
  lease_enabled : bool;
  lease_duration_s : float;
  clock_skew_bound_s : float;
  speculate : bool;
  members0 : int list;
  reconfig_alpha : int;
}

let default ~n =
  {
    n;
    groups = 1;
    window = 10;
    max_batch_bytes = 1300;
    max_batch_delay_s = 0.05;
    retransmit_interval_s = 0.1;
    fd_interval_s = 0.1;
    fd_timeout_s = 0.5;
    catchup_interval_s = 0.05;
    snapshot_every = 10_000;
    log_retain = 1_000;
    auto_tune = false;
    bsz_min = 256;
    bsz_max = 65536;
    wnd_min = 1;
    wnd_max = 64;
    tune_epoch_s = 0.01;
    lockfree = true;
    steal = true;
    lease_enabled = false;
    lease_duration_s = 2.0;
    clock_skew_bound_s = 0.1;
    speculate = false;
    members0 = [];
    reconfig_alpha = 0;
  }

let validate t =
  if t.n < 1 then Error "n must be >= 1"
  else if t.groups < 1 then Error "groups must be >= 1"
  else if t.window < 1 then Error "window must be >= 1"
  else if t.max_batch_bytes < 1 then Error "max_batch_bytes must be >= 1"
  else if t.max_batch_delay_s <= 0. then Error "max_batch_delay_s must be > 0"
  else if t.retransmit_interval_s <= 0. then
    Error "retransmit_interval_s must be > 0"
  else if t.fd_interval_s <= 0. then Error "fd_interval_s must be > 0"
  else if t.fd_timeout_s <= t.fd_interval_s then
    Error "fd_timeout_s must exceed fd_interval_s"
  else if t.catchup_interval_s <= 0. then Error "catchup_interval_s must be > 0"
  else if t.snapshot_every < 0 then Error "snapshot_every must be >= 0"
  else if t.log_retain < 0 then Error "log_retain must be >= 0"
  else if t.auto_tune && t.bsz_min < 1 then
    Error "bsz_min must be >= 1 when auto_tune is on"
  else if t.auto_tune && not (t.bsz_min <= t.max_batch_bytes) then
    Error "bsz_min must be <= max_batch_bytes when auto_tune is on"
  else if t.auto_tune && not (t.max_batch_bytes <= t.bsz_max) then
    Error "max_batch_bytes must be <= bsz_max when auto_tune is on"
  else if t.auto_tune && t.wnd_min < 1 then
    Error "wnd_min must be >= 1 when auto_tune is on"
  else if t.auto_tune && not (t.wnd_min <= t.window) then
    Error "wnd_min must be <= window when auto_tune is on"
  else if t.auto_tune && not (t.window <= t.wnd_max) then
    Error "window must be <= wnd_max when auto_tune is on"
  else if t.auto_tune && t.tune_epoch_s <= 0. then
    Error "tune_epoch_s must be > 0 when auto_tune is on"
  else if t.lease_enabled && t.lease_duration_s <= 0. then
    Error "lease_duration_s must be > 0 when lease_enabled"
  else if t.lease_enabled && t.clock_skew_bound_s < 0. then
    Error "clock_skew_bound_s must be >= 0 when lease_enabled"
  else if t.lease_enabled && not (t.clock_skew_bound_s < t.lease_duration_s)
  then Error "clock_skew_bound_s must be < lease_duration_s when lease_enabled"
  else if t.lease_enabled && not (t.lease_duration_s > 3. *. t.fd_interval_s)
  then
    Error
      "lease_duration_s must exceed 3 * fd_interval_s when lease_enabled \
       (renewals ride the failure-detector tick)"
  else if t.reconfig_alpha < 0 then Error "reconfig_alpha must be >= 0"
  else if
    t.members0 <> []
    && not
         (List.sort_uniq compare t.members0 = t.members0
         && List.for_all (fun p -> p >= 0 && p < t.n) t.members0)
  then Error "members0 must be sorted, unique node ids within [0, n)"
  else if
    t.members0 <> []
    && not
         (List.init t.groups (fun gid -> gid mod t.n)
         |> List.for_all (fun ldr -> List.mem ldr t.members0))
  then
    Error
      "members0 must contain every group's initial leader (gid mod n), \
       so bootstrap can activate"
  else Ok ()

let f t = (t.n - 1) / 2

(* Spread group leadership round-robin over the replicas so no single
   node's Protocol thread (or NIC) orders every group's traffic. *)
let initial_leader_of_group t ~gid = gid mod t.n
