module Client_msg = Msmr_wire.Client_msg
module Mclock = Msmr_platform.Mclock

type seal_stats = {
  seals_size : int;
  seals_delay : int;
  sealed_bytes : int;
  limit_bytes : int;
}

type t = {
  cfg : Config.t;
  src : Types.node_id;
  tuned_bsz : int Atomic.t option;
  mutable next_num : int;
  mutable open_reqs : Client_msg.request list;  (* newest first *)
  mutable open_count : int;                     (* = length open_reqs *)
  mutable open_bytes : int;
  mutable oldest_ns : int64;                    (* arrival of oldest request *)
  (* Monotone seal accounting, read cross-thread by the autotune
     controller (plain word reads: benign staleness, no tearing). *)
  mutable seals_size : int;
  mutable seals_delay : int;
  mutable sealed_bytes : int;
  mutable limit_bytes : int;
}

let create ?tuned_bsz cfg ~src =
  {
    cfg;
    src;
    tuned_bsz;
    next_num = 0;
    open_reqs = [];
    open_count = 0;
    open_bytes = 0;
    oldest_ns = 0L;
    seals_size = 0;
    seals_delay = 0;
    sealed_bytes = 0;
    limit_bytes = 0;
  }

let bsz_limit t =
  match t.tuned_bsz with
  | None -> t.cfg.max_batch_bytes
  | Some a -> Atomic.get a

let pending_requests t = t.open_count
let pending_bytes t = t.open_bytes

let seal_stats t =
  {
    seals_size = t.seals_size;
    seals_delay = t.seals_delay;
    sealed_bytes = t.sealed_bytes;
    limit_bytes = t.limit_bytes;
  }

let seal t ~limit ~on_size =
  if on_size then t.seals_size <- t.seals_size + 1
  else t.seals_delay <- t.seals_delay + 1;
  t.sealed_bytes <- t.sealed_bytes + t.open_bytes;
  t.limit_bytes <- t.limit_bytes + limit;
  let batch =
    { Batch.bid = { src = t.src; num = t.next_num };
      requests = List.rev t.open_reqs }
  in
  t.next_num <- t.next_num + 1;
  t.open_reqs <- [];
  t.open_count <- 0;
  t.open_bytes <- 0;
  batch

let add t req ~now_ns =
  let limit = bsz_limit t in
  let sz = Client_msg.request_wire_size req in
  if t.open_reqs = [] then begin
    t.oldest_ns <- now_ns;
    t.open_reqs <- [ req ];
    t.open_count <- 1;
    t.open_bytes <- sz;
    if sz >= limit then Some (seal t ~limit ~on_size:true) else None
  end
  else if t.open_bytes + sz > limit then begin
    (* The new request does not fit: seal what we have, start afresh. *)
    let sealed = seal t ~limit ~on_size:true in
    t.oldest_ns <- now_ns;
    t.open_reqs <- [ req ];
    t.open_count <- 1;
    t.open_bytes <- sz;
    Some sealed
  end
  else begin
    t.open_reqs <- req :: t.open_reqs;
    t.open_count <- t.open_count + 1;
    t.open_bytes <- t.open_bytes + sz;
    if t.open_bytes >= limit then Some (seal t ~limit ~on_size:true) else None
  end

let deadline_ns t =
  if t.open_reqs = [] then None
  else Some (Int64.add t.oldest_ns (Mclock.ns_of_s t.cfg.max_batch_delay_s))

let flush_due t ~now_ns =
  match deadline_ns t with
  | Some d when Int64.compare now_ns d >= 0 ->
      Some (seal t ~limit:(bsz_limit t) ~on_size:false)
  | Some _ | None -> None

let force_flush t =
  if t.open_reqs = [] then None
  else Some (seal t ~limit:(bsz_limit t) ~on_size:false)
