type t = {
  cfg : Config.t;
  me : int;
  mutable view : int;
  (* Holder side: the in-flight renewal round and the lease it earned. *)
  mutable round_t0 : int;       (* t0 of the current round; -1 = none *)
  mutable grants : int list;    (* nodes whose grant named [round_t0] *)
  mutable last_ping_ns : int;   (* when the last round was started *)
  mutable held_until : int;     (* expiry on our clock; 0 = not held *)
  mutable renewal_count : int;
  (* Grantor side: at most one exclusive promise. *)
  mutable granted_to : int;     (* -1 = no promise ever made *)
  mutable promised_until : int;
}

let duration_ns cfg = int_of_float (cfg.Config.lease_duration_s *. 1e9)
let skew_ns cfg = int_of_float (cfg.Config.clock_skew_bound_s *. 1e9)

(* Renew at a third of the duration: two full rounds can be lost before
   the lease lapses. *)
let renew_every_ns cfg = duration_ns cfg / 3

let create cfg ~me ~view =
  {
    cfg;
    me;
    view;
    round_t0 = -1;
    grants = [];
    last_ping_ns = min_int;
    held_until = 0;
    renewal_count = 0;
    granted_to = -1;
    promised_until = 0;
  }

let set_view t ~view =
  if view <> t.view then begin
    t.view <- view;
    t.round_t0 <- -1;
    t.grants <- [];
    t.last_ping_ns <- min_int;
    t.held_until <- 0
  end

(* [last_ping_ns = min_int] means "never pinged" and must be tested
   explicitly: [now_ns - min_int] overflows to a negative number. *)
let ping_due t ~now_ns =
  t.last_ping_ns = min_int || now_ns - t.last_ping_ns >= renew_every_ns t.cfg

let make_ping t ~now_ns =
  t.round_t0 <- now_ns;
  t.grants <- [ t.me ];
  t.last_ping_ns <- now_ns;
  (* A singleton group is its own quorum: the lease is held the moment
     the round starts. *)
  if (t.cfg.Config.n / 2) + 1 <= 1 then begin
    t.held_until <-
      max t.held_until (now_ns + duration_ns t.cfg - skew_ns t.cfg);
    t.renewal_count <- t.renewal_count + 1
  end;
  Msg.Lease_ping { view = t.view; t0_ns = now_ns }

let on_ping t ~from ~view ~t0_ns ~now_ns =
  if view <> t.view then None
  else if from <> Types.leader_of_view ~n:t.cfg.Config.n view then None
  else if from = t.me then None
  else if
    (* Exclusive promise: while one is active, only its beneficiary may
       renew. Otherwise two nodes could hold overlapping leases. *)
    t.granted_to <> -1 && t.granted_to <> from && now_ns < t.promised_until
  then None
  else begin
    t.granted_to <- from;
    t.promised_until <- max t.promised_until (now_ns + duration_ns t.cfg);
    Some (Msg.Lease_grant { view; t0_ns })
  end

let on_grant t ~from ~view ~t0_ns ~quorum =
  if view <> t.view || t0_ns <> t.round_t0 || List.mem from t.grants then false
  else begin
    t.grants <- from :: t.grants;
    if List.length t.grants = quorum then begin
      (* [round_t0] predates every ping of this round, so each granting
         follower promises until at least [round_t0 + duration] on its
         own clock; padding our expiry by the skew bound keeps it inside
         every such promise. *)
      t.held_until <-
        max t.held_until (t.round_t0 + duration_ns t.cfg - skew_ns t.cfg);
      t.renewal_count <- t.renewal_count + 1;
      true
    end
    else false
  end

let held t ~now_ns = now_ns < t.held_until
let held_until_ns t = t.held_until
let promise_until_ns t = t.promised_until

let promise_blocks t ~candidate ~now_ns =
  t.granted_to <> -1 && t.granted_to <> candidate && now_ns < t.promised_until

let renewals t = t.renewal_count
