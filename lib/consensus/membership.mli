(** Membership epochs over the fixed node-id universe [0, cfg.n).

    Views (and [Types.leader_of_view]) stay defined over the whole
    universe; membership restricts which nodes count toward quorums,
    may activate a view, and are messaged at all.  Learners receive
    the protocol stream but do not vote. *)

type t = {
  epoch : int;
  voters : int list;    (** sorted ascending, non-empty *)
  learners : int list;  (** sorted ascending, disjoint from voters *)
}

val make : epoch:int -> voters:int list -> learners:int list -> t

(** Boot-time membership: [cfg.members0], or all of [0, n) when empty. *)
val initial : Config.t -> t

val is_voter : t -> int -> bool
val is_learner : t -> int -> bool
val is_member : t -> int -> bool
val members : t -> int list
val n_voters : t -> int

(** Majority of the voter set. *)
val quorum : t -> int

(** Bitmask with bit [p] set for each voter [p]; AND against an ack
    mask before popcount to ignore learner/stale votes. *)
val voter_mask : t -> int

(** Each transition bumps [epoch] by one; [None] if it does not apply
    (already a member, not a learner, would empty the voter set). *)
val add_learner : t -> int -> t option
val promote : t -> int -> t option
val remove : t -> int -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encode : Msmr_wire.Codec.W.t -> t -> unit
val decode : Msmr_wire.Codec.R.t -> t
val size_bytes : t -> int

val encode_configs : Msmr_wire.Codec.W.t -> (Types.iid * t) list -> unit
val decode_configs : Msmr_wire.Codec.R.t -> (Types.iid * t) list
