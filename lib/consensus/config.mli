(** Static replica-group configuration.

    The two headline tuning knobs of the paper are here: [window] (WND,
    the maximum number of concurrently executing ballots — pipelining)
    and [max_batch_bytes] (BSZ — batching). The paper's baseline settings
    are WND = 10, BSZ = 1300 bytes (Section VI). *)

type t = {
  n : int;                        (** number of replicas (2f + 1) *)
  groups : int;                   (** independent consensus groups the
                                      key space is hash-partitioned
                                      into; 1 = classic single-group
                                      MultiPaxos *)
  window : int;                   (** WND: max concurrent instances *)
  max_batch_bytes : int;          (** BSZ: max payload bytes per batch *)
  max_batch_delay_s : float;      (** flush an underfull batch after this *)
  retransmit_interval_s : float;  (** protocol message retransmission *)
  fd_interval_s : float;          (** heartbeat period of the leader *)
  fd_timeout_s : float;           (** silence before suspecting the leader *)
  catchup_interval_s : float;     (** gap-detection / catch-up period *)
  snapshot_every : int;           (** take a service snapshot every this
                                      many executed instances; 0 = never *)
  log_retain : int;               (** decided entries kept below the last
                                      snapshot point (for cheap catch-up) *)
  auto_tune : bool;               (** adapt BSZ/WND online ({!Autotune});
                                      [window]/[max_batch_bytes] become the
                                      starting point instead of a fixture *)
  bsz_min : int;                  (** static lower bound for tuned BSZ *)
  bsz_max : int;                  (** static upper bound for tuned BSZ *)
  wnd_min : int;                  (** static lower bound for tuned WND *)
  wnd_max : int;                  (** static upper bound for tuned WND *)
  tune_epoch_s : float;           (** controller epoch (tick cadence) *)
  lockfree : bool;                (** stage-spine queues on lock-free rings
                                      ({!Msmr_platform.Channel}); [false]
                                      keeps the mutex+condvar path, whose
                                      behaviour the goldens pin *)
  steal : bool;                   (** executors steal work from siblings
                                      when idle (only meaningful with
                                      [executor_threads > 1]); [false]
                                      keeps static hash-sharding *)
  lease_enabled : bool;           (** quorum-granted leader lease enabling
                                      the local read fast path (DESIGN.md
                                      section 15); [false] leaves the
                                      ordered path byte-for-byte — the
                                      goldens pin it *)
  lease_duration_s : float;       (** lease validity from the grant round's
                                      send timestamp; renewed every
                                      [lease_duration_s / 3] while leading *)
  clock_skew_bound_s : float;     (** assumed bound on pairwise clock drift
                                      over one lease duration; subtracted
                                      from the holder's expiry so a granting
                                      follower's promise always outlives the
                                      holder's own view of the lease *)
  speculate : bool;               (** optimistic speculative execution
                                      (DESIGN.md section 16): the leader
                                      pre-dispatches each fresh request to
                                      its executor lane at ingress and runs
                                      it ahead of commit via the service's
                                      [execute_undo], confirming on decide
                                      or rolling back on a mispredict;
                                      [false] leaves the ordered path
                                      byte-for-byte — the goldens pin it *)
  members0 : int list;            (** boot-time voting membership as a
                                      subset of the node-id universe
                                      [0, n); [[]] (the default) means
                                      all of [0, n) — the static path
                                      the goldens pin. [n] stays the
                                      capacity of the id space; online
                                      reconfiguration (DESIGN.md
                                      section 17) moves the membership
                                      within it *)
  reconfig_alpha : int;           (** a decided [Value.Reconfig] takes
                                      effect at [decide_iid + alpha]
                                      where [alpha = max window
                                      reconfig_alpha]; 0 (the default)
                                      means "the window" — the smallest
                                      sound lag given the pipelining
                                      invariant *)
}

val default : n:int -> t
(** Paper settings: WND = 10, BSZ = 1300, 50 ms batch delay cap,
    retransmission 100 ms, heartbeats 100 ms / timeout 500 ms, catch-up
    50 ms, snapshot every 10_000 instances, retain 1_000 entries.
    Auto-tuning off; bounds 256..65536 bytes, 1..64 instances, 10 ms
    controller epoch. Lock-free spine and work-stealing executors on.
    Leases off (duration 2 s, skew bound 100 ms when enabled).
    Speculation off. *)

val validate : t -> (unit, string) result
(** Check invariants (n >= 1 and odd for the usual f derivation,
    window >= 1, batch size positive, positive periods). *)

val f : t -> int
(** Crash faults tolerated: [(n - 1) / 2]. *)

val initial_leader_of_group : t -> gid:int -> int
(** Round-robin spread of group leadership: group [gid] bootstraps with
    replica [gid mod n] as its leader (its initial view is [gid], and
    [Types.leader_of_view] maps view [gid] to that node). With
    [groups = 1] this is node 0 — the classic single-leader layout. *)
