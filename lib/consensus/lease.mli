(** Quorum-granted leader lease (read fast path, DESIGN.md section 15).

    Pure policy, mirroring {!Paxos}'s Moore-machine discipline: the module
    never reads a clock — every transition takes an explicit [now_ns]
    (monotonic nanoseconds on the local node), so the runtime and the
    deterministic simulator drive the same code.

    Protocol (Raft-style leases over the heartbeat tick):

    - The leader of the current view starts a renewal round every
      [lease_duration_s / 3]: it records its local clock [t0] and sends
      [Lease_ping {view; t0_ns = t0}] to every peer.
    - A follower receiving a ping from its current view's leader promises
      not to help elect {e any other node} for [lease_duration_s] after
      its local receipt time, and echoes [Lease_grant {view; t0_ns}].
      Promises are exclusive: while one is active, pings from a different
      node are ignored.
    - When grants from a quorum (the leader counts itself) name the
      current round's [t0], the lease is held until
      [t0 + lease_duration_s - clock_skew_bound_s] {e on the leader's
      clock}. Because [t0] was taken before any ping was sent, every
      granting follower's promise expires at least [lease_duration_s]
      after [t0] minus at most the skew bound — i.e. after the leader's
      own expiry. The grant quorum intersects every Phase-1 quorum, so no
      new leader can be elected (and hence no conflicting write decided)
      while the holder still believes its lease valid.
    - Enforcement is promise-side and conservative: the runtime drops
      incoming [Prepare]s whose candidate the promise excludes (safe —
      Phase 1 is retransmitted) and skips local [Suspect] verdicts while
      a promise to the current leader is active (safe — the failure
      detector re-arms and re-fires).
    - Any view change conservatively invalidates the holder side; the
      promise side survives, which is exactly what protects an old
      leaseholder from a new leader elected behind its back. *)

type t

val create : Config.t -> me:int -> view:int -> t
(** Fresh lease state for one consensus group. [view] is the engine's
    bootstrap view. *)

val set_view : t -> view:int -> unit
(** View change: drop all holder-side state (any held lease, the
    in-flight renewal round). Grantor-side promises are kept — they
    protect the {e previous} holder until they time out. *)

val ping_due : t -> now_ns:int -> bool
(** Holder side: is it time to start a renewal round?  True every
    [lease_duration_s / 3] (and immediately on a fresh view). Only
    meaningful on the node currently leading. *)

val make_ping : t -> now_ns:int -> Msg.t
(** Start a renewal round anchored at [now_ns]; returns the
    [Lease_ping] to broadcast. Resets the round's grant set to self. *)

val on_ping : t -> from:int -> view:int -> t0_ns:int -> now_ns:int -> Msg.t option
(** Grantor side. [Some grant] extends/installs the promise and must be
    sent back to [from]; [None] means the ping was refused (wrong view,
    sender is not that view's leader, or an exclusive promise to a
    different node is still active). *)

val on_grant : t -> from:int -> view:int -> t0_ns:int -> quorum:int -> bool
(** Holder side: account a grant. Returns [true] when this grant
    completed the quorum for the current round (the lease was acquired or
    renewed — the renewal counter ticks exactly once per round). *)

val held : t -> now_ns:int -> bool
(** Does this node hold a valid lease at [now_ns] (its own clock)? *)

val held_until_ns : t -> int
(** Lease expiry on the local clock; [0] when never held / invalidated. *)

val promise_until_ns : t -> int
(** Expiry of the active grantor-side promise; [0] when none was made. *)

val promise_blocks : t -> candidate:int -> now_ns:int -> bool
(** Does the active promise forbid helping elect [candidate]?  True iff
    a promise to some [l <> candidate] is still unexpired. Drives both
    the Prepare drop and the Suspect deferral. *)

val renewals : t -> int
(** Rounds that reached quorum since creation (acquisitions count). *)
