(** Replica-to-replica protocol messages.

    Wire format: one tag byte followed by the fields, encoded with
    {!Msmr_wire.Codec}. The message set follows MultiPaxos as implemented
    by JPaxos: Phase 1 ([Prepare]/[Prepare_ok]) runs once per view change,
    Phase 2 ([Accept]/[Accepted]) once per instance, with [Accepted] sent
    to the leader only (Section VI-D3) and the leader broadcasting a small
    [Decide]. [Catchup_query]/[Catchup_reply] implement state transfer,
    and [Heartbeat] feeds the failure detector. *)

type log_entry = {
  e_iid : Types.iid;
  e_view : Types.view;        (** view in which the value was accepted *)
  e_value : Value.t;
  e_decided : bool;
}

type t =
  | Prepare of { view : Types.view; from_iid : Types.iid }
  | Prepare_ok of {
      view : Types.view;
      first_undecided : Types.iid;
      entries : log_entry list;  (** accepted/decided entries >= [from_iid] *)
    }
  | Accept of { view : Types.view; iid : Types.iid; value : Value.t }
  | Accepted of { view : Types.view; iid : Types.iid }
  | Decide of { view : Types.view; iid : Types.iid }
      (** [view] is the view in which the value was chosen; a follower
          holding a value accepted in a different view must catch up
          instead of deciding its local value. *)
  | Catchup_query of { from_iid : Types.iid; to_iid : Types.iid }
  | Catchup_reply of {
      entries : log_entry list;           (** decided entries *)
      snapshot : (Types.iid * bytes) option;
          (** [(next_iid, state)] when the requested range was truncated *)
    }
  | Heartbeat of { view : Types.view; first_undecided : Types.iid }
      (** The sender's decided prefix; lets silent followers detect that
          they missed a [Decide] and trigger catch-up. *)
  | Lease_ping of { view : Types.view; t0_ns : int }
      (** Leader's lease renewal probe ({!Lease}, DESIGN.md section 15).
          [t0_ns] is the sender's clock at the moment the ping round was
          started; it is echoed verbatim in [Lease_grant] so the leader
          can anchor the lease at a timestamp taken {e before} any grant
          was sent. Only ever on the wire when [Config.lease_enabled]. *)
  | Lease_grant of { view : Types.view; t0_ns : int }
      (** Follower's promise not to help elect a different leader for
          [lease_duration_s] after its local receipt of the matching ping.
          Echoes the ping's [t0_ns]. *)

val tag : t -> string
(** Short constructor name, for logging and statistics. *)

val encode : t -> bytes
val decode : bytes -> t
(** @raise Msmr_wire.Codec.Underflow or [Malformed] on bad input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val wire_size : t -> int
(** Encoded size in bytes (computed without materialising the encoding
    twice; used by the simulator's packet model and by statistics). *)
