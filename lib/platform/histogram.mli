(** Thread-safe log-bucketed latency histogram.

    Fixed memory, constant-time recording: values are binned into
    logarithmic buckets (~5% relative resolution), suitable for
    micro-to-second latencies. Used by the benchmark harness and load
    generators for percentile reporting. The registry histogram in
    [Msmr_obs.Metrics] uses the same bucketing and summarises with the
    same percentiles, so numbers are comparable across the two. *)

type t

val create : unit -> t

val record : t -> float -> unit
(** Record a (non-negative, seconds) sample. Thread-safe and lock-free. *)

val count : t -> int
(** Number of recorded samples. *)

val mean : t -> float
(** Mean of recorded samples (exact, not bucketed); 0. when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.99] returns the approximate p99 in seconds (upper
    bucket bound); 0. when empty. [p] is clamped to [0, 1]. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s counts into [dst]. *)

val reset : t -> unit
(** Zero all buckets. *)

val pp_summary : Format.formatter -> t -> unit
(** "n=… mean=…ms p50=… p95=… p99=…". *)
