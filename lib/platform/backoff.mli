(** Capped exponential backoff for polling loops.

    Raw [Thread.yield] polling burns a core and thrashes the scheduler
    when the awaited condition is slow; a fixed sleep adds latency when
    it is fast. This waiter starts with a few free yields and then
    doubles a short sleep up to a cap, so a poll loop is cheap on the
    fast path and cheap on the CPU on the slow path.

    One [t] per waiting site, reset whenever the loop makes progress.
    Not thread-safe: a [t] belongs to the (single) polling thread. *)

type t

val create :
  ?yield_rounds:int -> ?min_sleep_s:float -> ?max_sleep_s:float -> unit -> t
(** Defaults: 4 pure yields, then sleeps from 20 µs doubling to 1 ms. *)

val reset : t -> unit
(** Call when the awaited condition made progress. *)

val once : ?st:Thread_state.t -> t -> unit
(** Wait one round (yield or sleep, per the schedule) and advance the
    schedule. With [st], the wait is accounted as [Waiting]. *)

val current_sleep_s : t -> float
(** The sleep the next {!once} would take (0 during the yield phase);
    exposed for tests and for deadline arithmetic in timed waits. *)
