let spins = Atomic.make 0
let parks = Atomic.make 0

let note_spin () = Atomic.incr spins
let note_park () = Atomic.incr parks
let spin_total () = Atomic.get spins
let park_total () = Atomic.get parks

let reset () =
  Atomic.set spins 0;
  Atomic.set parks 0
