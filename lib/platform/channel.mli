(** Stage-spine channel: a {!Bounded_queue}-compatible facade over the
    lock-free rings of {!Lf_queue}.

    Every inter-stage edge of the replica (RequestQueue, ProposalQueue,
    DispatcherQueue, DecisionQueue, SendQueues, LogQueue, executor
    lanes) goes through this type. [create ~lockfree] picks the engine:

    - [lockfree:false] — the original mutex+condvar {!Bounded_queue};
      this path is pinned byte-for-byte by the goldens.
    - [lockfree:true] — an SPSC or MPMC ring. The data path is a few
      atomic operations; blocking is *spin-then-park*: a short bounded
      burst of polls (counted in {!Waitstats} as spins), then a park on
      a fallback condition variable (counted as a park and accounted as
      [Waiting] in {!Thread_state}). Because the data path never takes
      a lock, tracer-attributed [Blocked] time on the spine collapses
      toward zero — the effect bench007 measures.

    Semantics mirror {!Bounded_queue} exactly (same [Closed] exception,
    so {!Worker.spawn}'s shutdown handling applies unchanged), with one
    carve-out: a [put] racing [close] itself may drop the element on the
    ring path. The spine only closes queues at shutdown, where in-flight
    work is discarded anyway.

    [kind] declares the producer/consumer discipline. [Spsc] is a
    contract, not a guard: callers must guarantee a single producer
    thread and a single consumer thread. Use [Mpmc] when in doubt. *)

type 'a t

type kind = Spsc | Mpmc

exception Closed
(** Physically equal to {!Bounded_queue.Closed}. *)

val create : lockfree:bool -> kind:kind -> capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. Note the MPMC ring
    rounds [capacity] up to a power of two (see {!Lf_queue}). *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val is_closed : 'a t -> bool

val put : ?st:Thread_state.t -> 'a t -> 'a -> unit
(** Blocking append. @raise Closed if the channel is closed. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking; [false] when full. @raise Closed if closed. *)

val take : ?st:Thread_state.t -> 'a t -> 'a
(** Blocking removal. @raise Closed once closed and drained. *)

val try_take : 'a t -> 'a option
(** Non-blocking; [None] when empty. Never raises. *)

val take_timeout : ?st:Thread_state.t -> 'a t -> timeout_s:float -> 'a option
(** Like {!take} with a deadline; [None] on timeout.
    @raise Closed once closed and drained. *)

val take_batch : ?st:Thread_state.t -> 'a t -> max:int -> 'a list
(** Blocks for the first element, then drains up to [max] without
    blocking. @raise Closed once closed and drained. *)

val take_batch_into : ?st:Thread_state.t -> 'a t -> buf:'a option array -> int
(** Allocation-light {!take_batch}: fills [buf] from index 0, resets the
    unused tail to [None], returns the count (≥ 1).
    @raise Closed once closed and drained. *)

val drain_into : 'a t -> buf:'a option array -> int
(** Non-blocking {!take_batch_into}: drains whatever is immediately
    available (possibly nothing). Never raises. *)

val close : 'a t -> unit
(** Idempotent. Wakes all parked threads; subsequent [put]s raise
    {!Closed}; [take]s drain the remainder then raise {!Closed}. *)
