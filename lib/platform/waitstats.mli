(** Process-wide wait accounting for the lock-free channels.

    The paper's profiles attribute stall time per thread
    ({!Thread_state}); these counters attribute it per *mechanism*: how
    often a channel consumer had to spin one round, and how often it
    gave up spinning and parked on the fallback condition variable. The
    observability layer exposes them as [msmr_queue_spin_total] and
    [msmr_queue_park_total] (docs/OBSERVABILITY.md); a healthy lock-free
    spine shows a small park count against a large op count.

    Counters are plain atomics — one add per event, no labels — so the
    rings can afford to bump them on their wait paths. *)

val note_spin : unit -> unit
val note_park : unit -> unit
val spin_total : unit -> int
val park_total : unit -> int

val reset : unit -> unit
(** Zero both counters (benchmarks discard warm-up with this). *)
