(** Thread-safe event counters and rate measurement.

    Used by the benchmark harness and by the replica's statistics endpoint
    (requests/s, packets/s, queue-length averages — the quantities of the
    paper's Tables I and III). These are raw accumulators; to expose one
    as a named, labelled series use the registry in [Msmr_obs.Metrics]
    (e.g. register a gauge closing over {!Counter.get}). *)

module Counter : sig
  (** Monotone event counter (a single atomic word). *)

  type t

  val create : unit -> t

  val incr : t -> unit
  (** Add one. Lock-free. *)

  val add : t -> int -> unit
  (** Add [n]. Lock-free. *)

  val get : t -> int
  (** Current total. *)

  val reset : t -> unit
end

module Mean : sig
  (** Streaming mean and standard deviation (Welford). Thread-safe. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val stddev : t -> float
  (** Sample standard deviation; 0. with fewer than two samples. *)

  val reset : t -> unit
end

type t
(** Rate meter: counts events and reports events/second between
    snapshots. *)

val create : unit -> t

val tick : t -> unit
(** Count one event. Lock-free. *)

val tick_n : t -> int -> unit
(** Count [n] events at once (e.g. a batch). Lock-free. *)

val rate : t -> float
(** Events per second since the last [reset] (or creation). *)

val count : t -> int
(** Events since the last [reset] (or creation). *)

val reset : t -> unit
(** Zero the count and restart the rate window. *)
