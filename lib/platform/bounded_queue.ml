exception Closed

type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Bounded_queue.create: capacity <= 0";
  { capacity; items = Queue.create (); lock = Mutex.create ();
    not_empty = Condition.create (); not_full = Condition.create ();
    closed = false }

let capacity t = t.capacity

(* Lock acquisition is accounted as [Blocked], waits on condition
   variables as [Waiting], per the paper's profiling methodology. *)
let lock_acct ?st t =
  match st with
  | None -> Mutex.lock t.lock
  | Some st ->
    if Mutex.try_lock t.lock then ()
    else Thread_state.enter st Thread_state.Blocked (fun () -> Mutex.lock t.lock)

let wait_acct ?st cond lock =
  match st with
  | None -> Condition.wait cond lock
  | Some st ->
    Thread_state.enter st Thread_state.Waiting (fun () -> Condition.wait cond lock)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Queue.length t.items)
let is_empty t = length t = 0
let is_full t = length t >= t.capacity
let is_closed t = with_lock t (fun () -> t.closed)

let put ?st t v =
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.closed then raise Closed;
  while Queue.length t.items >= t.capacity && not t.closed do
    wait_acct ?st t.not_full t.lock
  done;
  if t.closed then raise Closed;
  Queue.push v t.items;
  Condition.signal t.not_empty

let try_put t v =
  with_lock t @@ fun () ->
  if t.closed then raise Closed;
  if Queue.length t.items >= t.capacity then false
  else begin
    Queue.push v t.items;
    Condition.signal t.not_empty;
    true
  end

let take ?st t =
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  while Queue.is_empty t.items && not t.closed do
    wait_acct ?st t.not_empty t.lock
  done;
  if Queue.is_empty t.items then raise Closed;
  let v = Queue.pop t.items in
  Condition.signal t.not_full;
  v

let try_take t =
  with_lock t @@ fun () ->
  if Queue.is_empty t.items then None
  else begin
    let v = Queue.pop t.items in
    Condition.signal t.not_full;
    Some v
  end

let take_timeout ?st t ~timeout_s =
  let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s timeout_s) in
  let bo = Backoff.create ~max_sleep_s:0.0002 () in
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let rec loop () =
    if not (Queue.is_empty t.items) then begin
      let v = Queue.pop t.items in
      Condition.signal t.not_full;
      Some v
    end
    else if t.closed then raise Closed
    else if Int64.compare (Mclock.now_ns ()) deadline >= 0 then None
    else begin
      (* [Condition] has no timed wait; poll while the lock is released,
         with capped exponential backoff so a long wait does not burn a
         core. The cap keeps the deadline overshoot under ~200 µs. *)
      Mutex.unlock t.lock;
      Backoff.once ?st bo;
      Mutex.lock t.lock;
      loop ()
    end
  in
  loop ()

let take_batch ?st t ~max =
  if max <= 0 then invalid_arg "Bounded_queue.take_batch: max <= 0";
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  while Queue.is_empty t.items && not t.closed do
    wait_acct ?st t.not_empty t.lock
  done;
  if Queue.is_empty t.items then raise Closed;
  let rec drain k acc =
    if k = 0 || Queue.is_empty t.items then List.rev acc
    else drain (k - 1) (Queue.pop t.items :: acc)
  in
  let batch = drain max [] in
  Condition.broadcast t.not_full;
  batch

let take_batch_into ?st t ~buf =
  let max = Array.length buf in
  if max <= 0 then invalid_arg "Bounded_queue.take_batch_into: empty buf";
  lock_acct ?st t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  while Queue.is_empty t.items && not t.closed do
    wait_acct ?st t.not_empty t.lock
  done;
  if Queue.is_empty t.items then raise Closed;
  let n = ref 0 in
  while !n < max && not (Queue.is_empty t.items) do
    buf.(!n) <- Some (Queue.pop t.items);
    incr n
  done;
  (* Drop stale elements past the fill so [buf] does not keep values from
     a previous drain alive across iterations. *)
  for i = !n to max - 1 do
    buf.(i) <- None
  done;
  Condition.broadcast t.not_full;
  !n

let drain_into t ~buf =
  let max = Array.length buf in
  if max <= 0 then invalid_arg "Bounded_queue.drain_into: empty buf";
  with_lock t @@ fun () ->
  let n = ref 0 in
  while !n < max && not (Queue.is_empty t.items) do
    buf.(!n) <- Some (Queue.pop t.items);
    incr n
  done;
  for i = !n to max - 1 do
    buf.(i) <- None
  done;
  if !n > 0 then Condition.broadcast t.not_full;
  !n

let close t =
  with_lock t @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full
  end
