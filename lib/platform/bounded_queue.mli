(** Bounded blocking FIFO queue.

    This is the message-queue primitive of the threading architecture
    (Section V of the paper): the RequestQueue, ProposalQueue,
    DispatcherQueue, DecisionQueue and per-sender SendQueues are all
    instances. The bound is what makes back-pressure flow control work
    (Section V-E): a stage that cannot keep up fills its input queue, and
    producers block (or observe fullness with {!try_put}) and stop pulling
    work from upstream.

    All operations are thread-safe. Blocking operations optionally take a
    {!Thread_state.t} handle; while blocked on the internal lock the thread
    is accounted as [Blocked], while waiting for items/space it is
    accounted as [Waiting] — matching the paper's profiling methodology. *)

type 'a t

exception Closed
(** Raised by [put]/[take] on a closed queue (see {!close}). *)

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty queue holding at most [capacity]
    elements. @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current number of queued elements (racy snapshot). *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val put : ?st:Thread_state.t -> 'a t -> 'a -> unit
(** [put q v] appends [v], blocking while the queue is full.
    @raise Closed if the queue is closed. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking [put]; returns [false] if the queue is full.
    @raise Closed if the queue is closed. *)

val take : ?st:Thread_state.t -> 'a t -> 'a
(** [take q] removes the oldest element, blocking while the queue is
    empty. @raise Closed if the queue is closed and drained. *)

val try_take : 'a t -> 'a option
(** Non-blocking [take]; [None] if empty. Never raises, even on a closed
    queue. *)

val take_timeout : ?st:Thread_state.t -> 'a t -> timeout_s:float -> 'a option
(** Like {!take} but gives up after [timeout_s] seconds, returning [None].
    @raise Closed if the queue is closed and drained. *)

val take_batch : ?st:Thread_state.t -> 'a t -> max:int -> 'a list
(** [take_batch q ~max] blocks until at least one element is available,
    then drains up to [max] elements in FIFO order. Used by the Batcher
    thread to amortise locking.
    @raise Closed if the queue is closed and drained. *)

val take_batch_into : ?st:Thread_state.t -> 'a t -> buf:'a option array -> int
(** Allocation-light {!take_batch}: blocks until at least one element is
    available, then drains up to [Array.length buf] elements into
    [buf.(0) .. buf.(n-1)] (as [Some v], remaining slots reset to
    [None]) and returns [n]. The hottest drain edges (sender, stable
    storage, batcher) reuse one scratch buffer instead of building a
    list per drain. @raise Closed if the queue is closed and drained.
    @raise Invalid_argument if [buf] is empty. *)

val drain_into : 'a t -> buf:'a option array -> int
(** Non-blocking {!take_batch_into}: drains whatever is immediately
    available (possibly nothing) into [buf] and returns the count.
    Never raises, even on a closed queue.
    @raise Invalid_argument if [buf] is empty. *)

val close : 'a t -> unit
(** Close the queue: subsequent [put]s raise {!Closed}; [take]s keep
    draining the remaining elements and raise {!Closed} once empty. All
    blocked threads are woken. Idempotent. *)

val is_closed : 'a t -> bool
