exception Closed = Bounded_queue.Closed

type kind = Spsc | Mpmc

type 'a core = S of 'a Lf_queue.Spsc.t | M of 'a Lf_queue.Mpmc.t

type 'a ring = {
  core : 'a core;
  (* The mutex/condvars exist only for parking: the data path never takes
     them. [sleepers]/[space_sleepers] let the fast path skip the lock
     entirely when nobody is parked (the common case). *)
  mu : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  sleepers : int Atomic.t;
  space_sleepers : int Atomic.t;
  closed : bool Atomic.t;
}

type 'a t = Mutex_q of 'a Bounded_queue.t | Ring of 'a ring

(* How many failed polls (each a [Thread.yield]) before parking. With
   systhreads a yield is the only way to make progress anyway; the budget
   just bounds how long we burn the scheduler before paying a futex. *)
let spin_budget = 16

let core_push c x = match c with
  | S q -> Lf_queue.Spsc.try_push q x
  | M q -> Lf_queue.Mpmc.try_push q x

let core_pop c = match c with
  | S q -> Lf_queue.Spsc.try_pop q
  | M q -> Lf_queue.Mpmc.try_pop q

let core_length c = match c with
  | S q -> Lf_queue.Spsc.length q
  | M q -> Lf_queue.Mpmc.length q

let core_capacity c = match c with
  | S q -> Lf_queue.Spsc.capacity q
  | M q -> Lf_queue.Mpmc.capacity q

let create ~lockfree ~kind ~capacity =
  if lockfree then
    let core = match kind with
      | Spsc -> S (Lf_queue.Spsc.create ~capacity)
      | Mpmc -> M (Lf_queue.Mpmc.create ~capacity)
    in
    Ring
      {
        core;
        mu = Mutex.create ();
        nonempty = Condition.create ();
        nonfull = Condition.create ();
        sleepers = Atomic.make 0;
        space_sleepers = Atomic.make 0;
        closed = Atomic.make false;
      }
  else Mutex_q (Bounded_queue.create ~capacity)

let capacity = function
  | Mutex_q q -> Bounded_queue.capacity q
  | Ring r -> core_capacity r.core

let length = function
  | Mutex_q q -> Bounded_queue.length q
  | Ring r -> core_length r.core

let is_empty t = length t = 0
let is_full t = length t >= capacity t

let is_closed = function
  | Mutex_q q -> Bounded_queue.is_closed q
  | Ring r -> Atomic.get r.closed

let wake mu cv =
  Mutex.lock mu;
  Condition.signal cv;
  Mutex.unlock mu

(* A waker must take [mu] before signalling: the parked side re-polls the
   ring while holding [mu] immediately before each [Condition.wait], so
   either the re-poll observes the state change, or the wait is entered
   before the waker can acquire [mu] and the signal lands. Combined with
   incrementing the sleeper count before taking [mu], no wakeup is lost. *)
let wake_consumer r = if Atomic.get r.sleepers > 0 then wake r.mu r.nonempty

let wake_producer r =
  if Atomic.get r.space_sleepers > 0 then wake r.mu r.nonfull

let wait_acct ?st cond mu =
  Waitstats.note_park ();
  match st with
  | None -> Condition.wait cond mu
  | Some st ->
    Thread_state.enter st Thread_state.Waiting (fun () ->
        Condition.wait cond mu)

let put ?st t v =
  match t with
  | Mutex_q q -> Bounded_queue.put ?st q v
  | Ring r ->
    let pushed () =
      if Atomic.get r.closed then raise Closed;
      core_push r.core v
    in
    if pushed () then wake_consumer r
    else begin
      (* Spin a bounded number of rounds, then park on [nonfull]. *)
      let rec spin n =
        if n = 0 then false
        else begin
          Waitstats.note_spin ();
          Thread.yield ();
          pushed () || spin (n - 1)
        end
      in
      if spin spin_budget then wake_consumer r
      else begin
        Atomic.incr r.space_sleepers;
        Mutex.lock r.mu;
        Fun.protect
          ~finally:(fun () ->
            Mutex.unlock r.mu;
            Atomic.decr r.space_sleepers)
          (fun () ->
            while not (pushed ()) do
              wait_acct ?st r.nonfull r.mu
            done);
        wake_consumer r
      end
    end

let try_put t v =
  match t with
  | Mutex_q q -> Bounded_queue.try_put q v
  | Ring r ->
    if Atomic.get r.closed then raise Closed;
    if core_push r.core v then begin
      wake_consumer r;
      true
    end
    else false

(* Read [closed] before the poll: items pushed before close stay
   drainable, and a [None] seen after the flag was already up means the
   channel is done. (A put racing [close] itself may be dropped; the
   spine only closes at shutdown, where in-flight work is discarded
   anyway.) *)
let take ?st t =
  match t with
  | Mutex_q q -> Bounded_queue.take ?st q
  | Ring r ->
    (* [poll] must not signal: the park loop calls it with [r.mu] held,
       and the wake helper takes [r.mu]. The producer-side wake happens
       once, after any lock is released. *)
    let poll () =
      let closed = Atomic.get r.closed in
      match core_pop r.core with
      | Some v -> Some v
      | None -> if closed then raise Closed else None
    in
    let v =
      match poll () with
      | Some v -> v
      | None ->
        let rec spin n =
          if n = 0 then None
          else begin
            Waitstats.note_spin ();
            Thread.yield ();
            match poll () with Some v -> Some v | None -> spin (n - 1)
          end
        in
        (match spin spin_budget with
         | Some v -> v
         | None ->
           Atomic.incr r.sleepers;
           Mutex.lock r.mu;
           Fun.protect
             ~finally:(fun () ->
               Mutex.unlock r.mu;
               Atomic.decr r.sleepers)
             (fun () ->
               let rec loop () =
                 match poll () with
                 | Some v -> v
                 | None ->
                   wait_acct ?st r.nonempty r.mu;
                   loop ()
               in
               loop ()))
    in
    wake_producer r;
    v

let try_take t =
  match t with
  | Mutex_q q -> Bounded_queue.try_take q
  | Ring r ->
    (match core_pop r.core with
     | Some v ->
       wake_producer r;
       Some v
     | None -> None)

let take_timeout ?st t ~timeout_s =
  match t with
  | Mutex_q q -> Bounded_queue.take_timeout ?st q ~timeout_s
  | Ring r ->
    let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s timeout_s) in
    let bo = Backoff.create ~max_sleep_s:0.0002 () in
    let rec loop () =
      let closed = Atomic.get r.closed in
      match core_pop r.core with
      | Some v ->
        wake_producer r;
        Some v
      | None ->
        if closed then raise Closed
        else if Int64.compare (Mclock.now_ns ()) deadline >= 0 then None
        else begin
          Waitstats.note_spin ();
          Backoff.once ?st bo;
          loop ()
        end
    in
    loop ()

let drain_count r ~max =
  (* Pop up to [max]; stop at the first miss. Caller saw at least one
     element, so the first pop normally succeeds. *)
  let rec go k acc =
    if k = 0 then List.rev acc
    else
      match core_pop r.core with
      | None -> List.rev acc
      | Some v -> go (k - 1) (v :: acc)
  in
  go max []

let take_batch ?st t ~max =
  match t with
  | Mutex_q q -> Bounded_queue.take_batch ?st q ~max
  | Ring r ->
    if max <= 0 then invalid_arg "Channel.take_batch: max <= 0";
    let first = take ?st t in
    let rest = drain_count r ~max:(max - 1) in
    if rest <> [] then wake_producer r;
    first :: rest

let take_batch_into ?st t ~buf =
  match t with
  | Mutex_q q -> Bounded_queue.take_batch_into ?st q ~buf
  | Ring r ->
    let max = Array.length buf in
    if max <= 0 then invalid_arg "Channel.take_batch_into: empty buf";
    let first = take ?st t in
    buf.(0) <- Some first;
    let n = ref 1 in
    let continue = ref true in
    while !continue && !n < max do
      match core_pop r.core with
      | None -> continue := false
      | Some v ->
        buf.(!n) <- Some v;
        incr n
    done;
    for i = !n to max - 1 do
      buf.(i) <- None
    done;
    if !n > 1 then wake_producer r;
    !n

let drain_into t ~buf =
  match t with
  | Mutex_q q -> Bounded_queue.drain_into q ~buf
  | Ring r ->
    let max = Array.length buf in
    if max <= 0 then invalid_arg "Channel.drain_into: empty buf";
    let n = ref 0 in
    let continue = ref true in
    while !continue && !n < max do
      match core_pop r.core with
      | None -> continue := false
      | Some v ->
        buf.(!n) <- Some v;
        incr n
    done;
    for i = !n to max - 1 do
      buf.(i) <- None
    done;
    if !n > 0 then wake_producer r;
    !n

let close = function
  | Mutex_q q -> Bounded_queue.close q
  | Ring r ->
    Atomic.set r.closed true;
    Mutex.lock r.mu;
    Condition.broadcast r.nonempty;
    Condition.broadcast r.nonfull;
    Mutex.unlock r.mu
