module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

let ceil_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

module Spsc_core (A : ATOMIC) = struct
  type 'a t = {
    slots : 'a option array;
    mask : int;
    capacity : int;
    head : int A.t; (* next index to pop; owned by the consumer *)
    tail : int A.t; (* next index to push; owned by the producer *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Spsc.create: capacity <= 0";
    let n = ceil_pow2 capacity in
    {
      slots = Array.make n None;
      mask = n - 1;
      capacity;
      head = A.make 0;
      tail = A.make 0;
    }

  let capacity t = t.capacity
  let length t = max 0 (A.get t.tail - A.get t.head)

  (* Publication discipline: the producer writes the slot (plain) and then
     publishes it with the atomic [tail] store; the consumer reads [tail]
     before touching the slot, so the atomic pair orders the plain
     accesses (message-passing idiom of the OCaml memory model). Indices
     grow monotonically and are taken mod a power of two; at 63-bit ints
     they cannot wrap in any realistic run, so there is no ABA. *)

  let try_push t x =
    let tail = A.get t.tail in
    let head = A.get t.head in
    if tail - head >= t.capacity then false
    else begin
      t.slots.(tail land t.mask) <- Some x;
      A.set t.tail (tail + 1);
      true
    end

  let try_pop t =
    let head = A.get t.head in
    let tail = A.get t.tail in
    if tail - head <= 0 then None
    else begin
      let i = head land t.mask in
      let v = t.slots.(i) in
      t.slots.(i) <- None;
      A.set t.head (head + 1);
      v
    end
end

module Mpmc_core (A : ATOMIC) = struct
  (* Vyukov bounded MPMC queue: each cell carries a sequence number that
     encodes whose turn it is. A producer claims ticket [tail] with a CAS
     and owns cell [tail mod n] until it bumps the cell's sequence to
     [tail + 1]; a consumer claims ticket [head], reads the cell, and
     recycles it for the producer one lap ahead by setting the sequence
     to [head + n]. Contenders never spin on a shared lock — a CAS loser
     just rereads and retries. *)
  type 'a t = {
    slots : 'a option array;
    seq : int A.t array;
    mask : int;
    n : int; (* capacity, rounded up to a power of two *)
    head : int A.t;
    tail : int A.t;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Mpmc.create: capacity <= 0";
    (* A one-cell ring cannot work: a pop recycles the cell to
       [head + n] = [head + 1], which is exactly the value a push
       publishes, so a push one lap ahead mistakes a full cell for its
       turn and overwrites the unconsumed element. Two cells keep the
       publish and recycle values one lap apart. *)
    let n = max 2 (ceil_pow2 capacity) in
    {
      slots = Array.make n None;
      seq = Array.init n (fun i -> A.make i);
      mask = n - 1;
      n;
      head = A.make 0;
      tail = A.make 0;
    }

  let capacity t = t.n
  let length t = max 0 (A.get t.tail - A.get t.head)

  let try_push t x =
    let rec loop () =
      let tail = A.get t.tail in
      let i = tail land t.mask in
      let d = A.get t.seq.(i) - tail in
      if d = 0 then
        if A.compare_and_set t.tail tail (tail + 1) then begin
          t.slots.(i) <- Some x;
          A.set t.seq.(i) (tail + 1);
          true
        end
        else loop ()
      else if d < 0 then false (* a full lap behind: queue is full *)
      else loop () (* another producer is mid-claim; reread *)
    in
    loop ()

  let try_pop t =
    let rec loop () =
      let head = A.get t.head in
      let i = head land t.mask in
      let d = A.get t.seq.(i) - (head + 1) in
      if d = 0 then
        if A.compare_and_set t.head head (head + 1) then begin
          let v = t.slots.(i) in
          t.slots.(i) <- None;
          A.set t.seq.(i) (head + t.n);
          v
        end
        else loop ()
      else if d < 0 then None (* cell not yet published: queue is empty *)
      else loop ()
    in
    loop ()
end

module Spsc = Spsc_core (Atomic)
module Mpmc = Mpmc_core (Atomic)
