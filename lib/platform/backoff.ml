type t = {
  yield_rounds : int;
  min_sleep_s : float;
  max_sleep_s : float;
  mutable round : int;
}

let create ?(yield_rounds = 4) ?(min_sleep_s = 2e-5) ?(max_sleep_s = 1e-3) () =
  if yield_rounds < 0 then invalid_arg "Backoff.create: yield_rounds < 0";
  if min_sleep_s <= 0. || max_sleep_s < min_sleep_s then
    invalid_arg "Backoff.create: bad sleep bounds";
  { yield_rounds; min_sleep_s; max_sleep_s; round = 0 }

let reset t = t.round <- 0

let current_sleep_s t =
  if t.round < t.yield_rounds then 0.
  else
    let k = t.round - t.yield_rounds in
    (* 2^k growth, capped. [k] is small (the cap bites within ~7
       doublings for the default bounds), so the shift cannot overflow. *)
    Float.min t.max_sleep_s (t.min_sleep_s *. float_of_int (1 lsl min k 16))

let once ?st t =
  let nap = current_sleep_s t in
  t.round <- t.round + 1;
  let wait () = if nap = 0. then Thread.yield () else Mclock.sleep_s nap in
  match st with
  | None -> wait ()
  | Some st -> Thread_state.enter st Thread_state.Waiting wait
