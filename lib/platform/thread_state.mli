(** Per-thread state accounting for the live runtime.

    The paper profiles every thread of the replica into four states
    (Section VI-B): [busy] (executing), [blocked] (acquiring a lock),
    [waiting] (on a condition variable, i.e. idle waiting for work) and
    [other] (sleeping, in a system call, or runnable but not scheduled).

    This module provides the same accounting for the live runtime: each
    instrumented thread registers a handle and the synchronisation
    primitives ({!Bounded_queue}, {!Delay_queue}, ...) mark state
    transitions through it. Accounting is cheap: one clock read and a
    few stores per transition, all on the owning thread (reads from
    other threads are racy-but-monotone snapshots, which is fine for
    profiling).

    A handle can additionally carry a {!tracer}: a callback invoked on
    every state {e change} with the closed same-state interval. The
    observability layer ([Msmr_obs.Trace]) plugs in here to turn the
    accounting into Chrome-trace thread-state spans without this module
    depending on it. *)

type state =
  | Busy      (** executing application work *)
  | Blocked   (** blocked acquiring a lock *)
  | Waiting   (** waiting on a condition variable for work *)
  | Other     (** sleeping, in a system call, or not scheduled *)

val state_to_string : state -> string
(** ["busy"], ["blocked"], ["waiting"] or ["other"] — the span names of
    the trace taxonomy (docs/OBSERVABILITY.md). *)

type t
(** Accounting handle for one thread. *)

val create : name:string -> t
(** [create ~name] makes a handle starting in {!Busy}. The handle is
    registered in the global registry until {!unregister}. If an
    auto-tracer is installed ({!set_auto_tracer}), the new handle gets
    its tracer attached immediately. *)

val name : t -> string
(** The thread name given at {!create}. *)

val set : t -> state -> unit
(** [set t s] switches the thread to state [s], attributing the elapsed
    time since the last transition to the previous state. Must be called
    from the owning thread. Setting the current state again is a cheap
    no-op for the tracer: consecutive same-state intervals merge. *)

val enter : t -> state -> (unit -> 'a) -> 'a
(** [enter t s f] runs [f ()] in state [s] and restores the previous
    state afterwards (also on exception). *)

type totals = {
  busy_ns : int64;
  blocked_ns : int64;
  waiting_ns : int64;
  other_ns : int64;
}
(** Accumulated nanoseconds per state. *)

val totals : t -> totals
(** Snapshot of accumulated time per state, including the still-open
    current interval, so the four fields always sum to the handle's
    lifetime. *)

val unregister : t -> unit
(** Remove the handle from the global registry (totals remain
    readable). *)

val snapshot_all : unit -> (string * totals) list
(** Name and totals of every registered thread, in registration
    order. *)

val reset_all : unit -> unit
(** Zero the accounting of every registered thread (used to discard the
    warm-up period of a measurement, as the paper does). Also restarts
    any open trace span at the reset point. *)

val pp_report : Format.formatter -> (string * totals) list -> unit
(** Render a percentage breakdown per thread, normalised to the longest
    thread lifetime in the snapshot (mirrors the paper's Figure 8). *)

(** {1 Tracing hooks}

    Hooks are deliberately plain callbacks so that [msmr.platform]
    stays dependency-free; [Msmr_obs] supplies implementations. *)

type tracer = state -> int64 -> int64 -> unit
(** [tracer state t0_ns t1_ns]: the thread spent [[t0_ns, t1_ns)] in
    [state]. Called from the owning thread, on state changes only. *)

val attach_tracer : t -> tracer -> unit
(** Attach a tracer to one handle; the current span restarts now. *)

val detach_tracer : t -> unit

val flush_tracer : t -> unit
(** Emit the currently open same-state interval (without changing
    state) — call at the end of a capture so span totals match
    {!totals}. *)

val set_auto_tracer : (name:string -> tracer option) -> unit
(** Install a factory consulted by every future {!create}: returning
    [Some tr] attaches [tr] to the new handle. Install it {e before}
    spawning the threads to trace (the reference is read without a
    lock). *)

val clear_auto_tracer : unit -> unit
(** Stop auto-attaching tracers to new handles (existing attachments
    are kept). *)
