type state = Busy | Blocked | Waiting | Other

let state_to_string = function
  | Busy -> "busy"
  | Blocked -> "blocked"
  | Waiting -> "waiting"
  | Other -> "other"

type totals = {
  busy_ns : int64;
  blocked_ns : int64;
  waiting_ns : int64;
  other_ns : int64;
}

type tracer = state -> int64 -> int64 -> unit

type t = {
  name : string;
  mutable current : state;
  mutable since : int64;           (* start of the current interval *)
  mutable acc_busy : int64;
  mutable acc_blocked : int64;
  mutable acc_waiting : int64;
  mutable acc_other : int64;
  (* Start of the current same-state run: [since] advances on every
     accounting call, [span_start] only when the state changes. *)
  mutable span_start : int64;
  mutable tracer : tracer option;
}

let registry : t list ref = ref []
let registry_lock = Mutex.create ()

(* Consulted (without a lock: set it before spawning workers) by
   [create], so tracing can be switched on for every future thread
   without touching each call site. *)
let auto_tracer : (name:string -> tracer option) option ref = ref None

let set_auto_tracer f = auto_tracer := Some f
let clear_auto_tracer () = auto_tracer := None

let create ~name =
  let now = Mclock.now_ns () in
  let tracer =
    match !auto_tracer with Some f -> f ~name | None -> None
  in
  let t =
    { name; current = Busy; since = now;
      acc_busy = 0L; acc_blocked = 0L; acc_waiting = 0L; acc_other = 0L;
      span_start = now; tracer }
  in
  Mutex.lock registry_lock;
  registry := t :: !registry;
  Mutex.unlock registry_lock;
  t

let name t = t.name

let attach_tracer t tracer =
  t.span_start <- Mclock.now_ns ();
  t.tracer <- Some tracer

let detach_tracer t = t.tracer <- None

let flush_tracer t =
  match t.tracer with
  | None -> ()
  | Some emit ->
    let now = Mclock.now_ns () in
    if Int64.compare now t.span_start > 0 then emit t.current t.span_start now;
    t.span_start <- now

let account t now =
  let dt = Int64.sub now t.since in
  (match t.current with
   | Busy -> t.acc_busy <- Int64.add t.acc_busy dt
   | Blocked -> t.acc_blocked <- Int64.add t.acc_blocked dt
   | Waiting -> t.acc_waiting <- Int64.add t.acc_waiting dt
   | Other -> t.acc_other <- Int64.add t.acc_other dt);
  t.since <- now

let set t s =
  let now = Mclock.now_ns () in
  account t now;
  if s <> t.current then begin
    (* Consecutive same-state intervals merge into one span, so a
       saturated thread that keeps re-asserting [Busy] emits nothing. *)
    (match t.tracer with
     | Some emit when Int64.compare now t.span_start > 0 ->
       emit t.current t.span_start now
     | Some _ | None -> ());
    t.span_start <- now;
    t.current <- s
  end

let enter t s f =
  let prev = t.current in
  set t s;
  Fun.protect ~finally:(fun () -> set t prev) f

let totals t =
  (* Include the open interval so snapshots always sum to the lifetime. *)
  let dt = Int64.sub (Mclock.now_ns ()) t.since in
  let add c x = if t.current = c then Int64.add x dt else x in
  { busy_ns = add Busy t.acc_busy;
    blocked_ns = add Blocked t.acc_blocked;
    waiting_ns = add Waiting t.acc_waiting;
    other_ns = add Other t.acc_other }

let unregister t =
  Mutex.lock registry_lock;
  registry := List.filter (fun x -> x != t) !registry;
  Mutex.unlock registry_lock

let snapshot_all () =
  Mutex.lock registry_lock;
  let all = List.rev !registry in
  Mutex.unlock registry_lock;
  List.map (fun t -> (t.name, totals t)) all

let reset_all () =
  Mutex.lock registry_lock;
  let all = !registry in
  Mutex.unlock registry_lock;
  let now = Mclock.now_ns () in
  List.iter
    (fun t ->
       t.acc_busy <- 0L; t.acc_blocked <- 0L;
       t.acc_waiting <- 0L; t.acc_other <- 0L;
       t.since <- now;
       t.span_start <- now)
    all

let lifetime (tot : totals) =
  Int64.(add (add tot.busy_ns tot.blocked_ns)
           (add tot.waiting_ns tot.other_ns))

let pp_report ppf snap =
  let max_life =
    List.fold_left (fun m (_, tot) -> max m (lifetime tot)) 1L snap
  in
  let pct x = 100. *. Int64.to_float x /. Int64.to_float max_life in
  Format.fprintf ppf "%-22s %7s %8s %8s %7s@."
    "thread" "busy%" "blocked%" "waiting%" "other%";
  List.iter
    (fun (name, tot) ->
       Format.fprintf ppf "%-22s %7.1f %8.1f %8.1f %7.1f@."
         name (pct tot.busy_ns) (pct tot.blocked_ns)
         (pct tot.waiting_ns) (pct tot.other_ns))
    snap
