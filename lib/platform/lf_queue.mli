(** Lock-free bounded ring cores for the stage spine.

    The paper attributes the multi-core throughput ceiling to contention
    on the inter-stage queues (Section V): with a mutex per queue, every
    handoff pays a lock acquisition and often a futex wake. These cores
    replace that with a handful of atomic loads/stores per operation:

    - {!Spsc_core} — Lamport single-producer single-consumer ring: one
      atomic index per side, plain slot array, publication ordered by
      the index stores.
    - {!Mpmc_core} — Vyukov bounded multi-producer multi-consumer queue:
      a per-cell sequence number arbitrates turns, so contenders CAS on
      a ticket rather than spin on a shared lock.

    Both are *non-blocking* cores: [try_push]/[try_pop] never wait. The
    blocking facade with spin-then-park and close semantics lives in
    {!Channel}. Indices are monotone 63-bit ints (no wraparound, no
    ABA); capacities are rounded up to a power of two — {!Spsc_core}
    still enforces the exact requested bound, {!Mpmc_core} reports and
    uses the rounded one.

    The cores are functors over {!ATOMIC} so the interleaving checker in
    the test suite can instrument every atomic access and enumerate
    schedules (DSCheck-style) against the very code that ships. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

module Spsc_core (A : ATOMIC) : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument if [capacity <= 0]. *)

  val capacity : 'a t -> int
  (** The requested (exact) bound. *)

  val length : 'a t -> int
  (** Racy snapshot. *)

  val try_push : 'a t -> 'a -> bool
  (** [false] when full. Must only ever be called from one thread. *)

  val try_pop : 'a t -> 'a option
  (** [None] when empty. Must only ever be called from one thread. *)
end

module Mpmc_core (A : ATOMIC) : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument if [capacity <= 0]. *)

  val capacity : 'a t -> int
  (** The effective bound: [capacity] rounded up to a power of two, with
      a minimum of [2] (a one-cell ring cannot tell a full cell from its
      own turn — the pop-recycle and push-publish sequence values
      coincide at capacity 1). *)

  val length : 'a t -> int
  (** Racy snapshot. *)

  val try_push : 'a t -> 'a -> bool
  (** [false] when full. Safe from any thread. *)

  val try_pop : 'a t -> 'a option
  (** [None] when empty (or when the head cell's push is still in
      flight, which linearizes the same way). Safe from any thread. *)
end

module Spsc : module type of Spsc_core (Atomic)
module Mpmc : module type of Mpmc_core (Atomic)
