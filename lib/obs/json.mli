(** Minimal JSON values, encoder and parser.

    The observability layer emits JSON (metric snapshots, Chrome
    [trace_event] files) and the test-suite parses it back to check
    well-formedness; both directions live here so [msmr.obs] needs no
    external JSON dependency.

    The encoder is strict JSON (RFC 8259): strings are escaped, floats
    are rendered without [nan]/[infinity] (both map to [0]), and
    integers print without a decimal point. The parser accepts exactly
    what the encoder produces plus ordinary whitespace; it is a
    validation tool, not a general-purpose JSON reader. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Append the encoding of a value to a buffer (no trailing newline). *)

val to_string : t -> string
(** Encode a value to a compact (single-line) JSON string. *)

exception Parse_error of string
(** Raised by {!of_string} with a human-readable position/report. *)

val of_string : string -> t
(** Parse a complete JSON document. Trailing garbage, unterminated
    strings and malformed escapes raise {!Parse_error}. Numbers with a
    fraction or exponent parse as [Float], all others as [Int]. *)

val member : string -> t -> t option
(** [member k (Obj ...)] returns the value bound to key [k], if any;
    [None] on non-objects. *)

val equal : t -> t -> bool
(** Structural equality; object key order is significant (the encoder
    is deterministic, so round-trips compare equal). *)
