(** The span and metric taxonomy of the MSMR architecture.

    One vocabulary shared by the simulator and the live runtime, so a
    Chrome trace of a simulated run and of a live run read the same:

    - {b modules} are the paper's module boundaries (DESIGN.md §1 /
      Figure 3): ClientIO, ReplicaIO, ReplicationCore, ServiceManager —
      used as the [cat] (category) of every span;
    - {b thread names} are the names the runtime and the simulator
      already give their threads ([ClientIO-0], [Batcher], [Protocol],
      [ReplicaIOSnd-1], [Replica], ...), used as trace track names;
    - {b states} are the paper's four profiling states
      (busy/blocked/waiting/other), used as span names on the
      [thread-state] tracks.

    See docs/OBSERVABILITY.md for the full naming scheme. *)

val module_of_thread : string -> string
(** [module_of_thread name] maps a thread name to its module boundary:

    - ["ClientIO-0"], ["r1/ClientIO-2"], ["ClientAcceptor"], ["conn-3"],
      ["Router"] (the multi-group request router) → ["ClientIO"]
    - ["ReplicaIOSnd-1"], ["ReplicaIORcv-0"] → ["ReplicaIO"]
    - ["Batcher"], ["Batcher-2"], ["Protocol"], ["Protocol-g3"],
      ["ProxyLeader-g0"], ["FailureDetector"], ["Retransmitter"],
      ["StableStorage"] → ["ReplicationCore"]
    - ["Replica"], ["Replica-g2"], ["Syncer"], ["Executor-1"]
      → ["ServiceManager"]
    - anything else → ["Other"]

    Multi-group thread names carry a [-g<gid>] suffix; prefix matching
    maps them to the same module as their single-group counterpart.

    A [<replica-id>/] prefix (as produced by the live runtime's thread
    naming, e.g. ["r0/Protocol"]) is stripped before matching. *)

val modules : string list
(** The module boundaries of the architecture, in pipeline order:
    [["ClientIO"; "ReplicationCore"; "ReplicaIO"; "ServiceManager";
    "Other"]]. *)
