(** Chrome [trace_event] JSON export of a {!Trace.t}.

    The output is the "JSON Object Format" of the Trace Event
    specification: [{"traceEvents": [...], "displayTimeUnit": "ms"}].
    Load it in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}: each replica appears as a process (from the track's
    [pid]/[pname]), each thread as a named row, thread-state spans as
    colored blocks, counters as area charts.

    Timestamps are converted from the tracer's nanoseconds to the
    microseconds the format requires; simulated traces therefore open
    with the virtual-time axis starting near the warm-up boundary. *)

val to_json : Trace.t -> Json.t
(** Encode all retained events plus [process_name]/[thread_name]
    metadata records. Events are emitted in timestamp order. *)

val write_file : Trace.t -> string -> unit
(** [write_file t path] writes {!to_json} to [path]. *)

val span_totals : Trace.t -> ((int * string * string) * int64) list
(** Total span duration (ns) grouped by [(pid, track name, span name)],
    sorted — e.g. per-thread busy/blocked/waiting/other totals when the
    tracks carry thread-state spans. Used to cross-check the trace
    against the accounting in {!Msmr_sim.Sstats} /
    {!Msmr_platform.Thread_state}. *)

val total_dropped : Trace.t -> int
(** Events lost to ring wrap-around, summed over all tracks: when
    non-zero, {!span_totals} undercounts and the capture window should
    shrink (or the ring grow). *)
