module Counter_impl = Msmr_platform.Rate_meter.Counter
module Histogram = Msmr_platform.Histogram

type labels = (string * string) list

type counter = Counter_impl.t

type instrument =
  | I_counter of counter
  | I_gauge_fn of (unit -> float)
  | I_gauge_cell of float ref
  | I_histogram of Histogram.t

type t = {
  lock : Mutex.t;
  series : (string * labels, instrument) Hashtbl.t;
}

let create () = { lock = Mutex.create (); series = Hashtbl.create 64 }

let default = create ()

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let register reg ~name ~labels instr =
  Mutex.lock reg.lock;
  Hashtbl.replace reg.series (name, norm_labels labels) instr;
  Mutex.unlock reg.lock

let find reg ~name ~labels =
  Mutex.lock reg.lock;
  let r = Hashtbl.find_opt reg.series (name, norm_labels labels) in
  Mutex.unlock reg.lock;
  r

let counter ?(registry = default) ?(labels = []) name =
  match find registry ~name ~labels with
  | Some (I_counter c) -> c
  | Some _ | None ->
    let c = Counter_impl.create () in
    register registry ~name ~labels (I_counter c);
    c

let incr = Counter_impl.incr
let add = Counter_impl.add
let counter_value = Counter_impl.get

let gauge ?(registry = default) ?(labels = []) name fn =
  register registry ~name ~labels (I_gauge_fn fn)

let set_gauge ?(registry = default) ?(labels = []) name v =
  match find registry ~name ~labels with
  | Some (I_gauge_cell cell) -> cell := v
  | Some _ | None -> register registry ~name ~labels (I_gauge_cell (ref v))

let histogram ?(registry = default) ?(labels = []) name =
  match find registry ~name ~labels with
  | Some (I_histogram h) -> h
  | Some _ | None ->
    let h = Histogram.create () in
    register registry ~name ~labels (I_histogram h);
    h

let register_histogram ?(registry = default) ?(labels = []) name h =
  register registry ~name ~labels (I_histogram h)

let remove ?(registry = default) ?(labels = []) name =
  Mutex.lock registry.lock;
  Hashtbl.remove registry.series (name, norm_labels labels);
  Mutex.unlock registry.lock

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      mean : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

type sample = {
  name : string;
  labels : labels;
  value : value;
}

let read_instrument = function
  | I_counter c -> Counter_v (Counter_impl.get c)
  | I_gauge_fn fn -> Gauge_v (fn ())
  | I_gauge_cell cell -> Gauge_v !cell
  | I_histogram h ->
    Histogram_v
      { count = Histogram.count h;
        mean = Histogram.mean h;
        p50 = Histogram.percentile h 0.50;
        p95 = Histogram.percentile h 0.95;
        p99 = Histogram.percentile h 0.99 }

let snapshot ?(registry = default) () =
  (* Collect the series under the lock, read the instruments outside it
     (gauge callbacks may themselves take unrelated locks). *)
  Mutex.lock registry.lock;
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.series []
  in
  Mutex.unlock registry.lock;
  entries
  |> List.map (fun ((name, labels), instr) ->
      { name; labels; value = read_instrument instr })
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let labels_to_text labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let to_text samples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
       let series = s.name ^ labels_to_text s.labels in
       match s.value with
       | Counter_v n -> Buffer.add_string buf (Printf.sprintf "%s %d\n" series n)
       | Gauge_v v -> Buffer.add_string buf (Printf.sprintf "%s %g\n" series v)
       | Histogram_v h ->
         let line suffix v =
           Buffer.add_string buf
             (Printf.sprintf "%s_%s%s %g\n" s.name suffix
                (labels_to_text s.labels) v)
         in
         line "count" (float_of_int h.count);
         line "mean" h.mean;
         line "p50" h.p50;
         line "p95" h.p95;
         line "p99" h.p99)
    samples;
  Buffer.contents buf

let to_json samples =
  Json.Obj
    [ ( "metrics",
        Json.List
          (List.map
             (fun s ->
                let labels =
                  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.labels)
                in
                let typ, value =
                  match s.value with
                  | Counter_v n -> ("counter", Json.Int n)
                  | Gauge_v v -> ("gauge", Json.Float v)
                  | Histogram_v h ->
                    ( "histogram",
                      Json.Obj
                        [ ("count", Json.Int h.count);
                          ("mean", Json.Float h.mean);
                          ("p50", Json.Float h.p50);
                          ("p95", Json.Float h.p95);
                          ("p99", Json.Float h.p99) ] )
                in
                Json.Obj
                  [ ("name", Json.String s.name);
                    ("labels", labels);
                    ("type", Json.String typ);
                    ("value", value) ])
             samples) ) ]

let write_file ?registry path =
  let json = to_json (snapshot ?registry ()) in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (Json.to_string json);
  output_char oc '\n'
