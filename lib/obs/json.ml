type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then "0"
  else begin
    (* Shortest representation that still round-trips typical metric
       values; %.12g never prints "nan"/"inf" for finite inputs. *)
    let s = Printf.sprintf "%.12g" f in
    (* "1." is not valid JSON; "1" is. *)
    if String.length s > 0 && s.[String.length s - 1] = '.' then
      String.sub s 0 (String.length s - 1)
    else s
  end

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
         if i > 0 then Buffer.add_char buf ',';
         escape_to buf k;
         Buffer.add_char buf ':';
         to_buffer buf x)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st lit v =
  if
    st.pos + String.length lit <= String.length st.s
    && String.sub st.s st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    v
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1
       | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1
       | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1
       | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1
       | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1
       | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1
       | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1
       | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1
       | Some 'u' ->
         if st.pos + 5 > String.length st.s then fail st "bad \\u escape";
         let hex = String.sub st.s (st.pos + 1) 4 in
         let code =
           try int_of_string ("0x" ^ hex)
           with Failure _ -> fail st "bad \\u escape"
         in
         (* Only BMP code points below 0x80 are reproduced exactly; the
            encoder never emits higher ones. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
         st.pos <- st.pos + 5
       | _ -> fail st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  let text = String.sub st.s start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st "malformed number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member k v =
  match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

let equal (a : t) (b : t) = a = b
