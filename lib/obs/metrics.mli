(** Metrics registry: named, labelled counters, gauges and histograms
    with deterministic snapshots and text/JSON encoders.

    One registry serves both the live runtime and the simulator, so the
    same metric name means the same thing in either mode (the
    [mode="live"|"sim"] label tells them apart). The naming scheme is
    documented in docs/OBSERVABILITY.md: [msmr_<module>_<quantity>]
    with [_total] for monotone counters, plus [{label="value",...}]
    dimensions such as [replica], [queue], [mode].

    {2 Concurrency}

    Instruments are lock-free on the hot path: counters are a single
    atomic add ({!Msmr_platform.Rate_meter.Counter}), histograms are
    the lock-free {!Msmr_platform.Histogram}, gauges are either a
    mutable cell written by one owner or a callback sampled at snapshot
    time. The registry mutex is taken only on registration, removal and
    snapshot — never when an instrument records. *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry: the runtime's replicas, ClientIO pools
    and the simulator all register here, and [--metrics FILE] dumps
    it. *)

type labels = (string * string) list
(** Label dimensions, e.g. [[("replica", "0"); ("queue", "request")]].
    Stored sorted by key; two label lists that differ only in order
    identify the same series. *)

(** {1 Instruments}

    Registering a (name, labels) pair that already exists {e replaces}
    the previous instrument — re-creating a replica re-registers its
    series rather than erroring. *)

type counter

val counter : ?registry:t -> ?labels:labels -> string -> counter
(** A monotone event counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?registry:t -> ?labels:labels -> string -> (unit -> float) -> unit
(** A gauge sampled at snapshot time by calling the closure — the usual
    form for queue lengths and window occupancy, which already live in
    the replica's state. The closure must be safe to call from the
    snapshotting thread. *)

val set_gauge : ?registry:t -> ?labels:labels -> string -> float -> unit
(** A gauge holding the value it was last set to (registers the series
    on first use). Used for end-of-run results, e.g. the simulator's
    measured throughput. *)

val histogram :
  ?registry:t -> ?labels:labels -> string -> Msmr_platform.Histogram.t
(** A latency histogram (log-bucketed, lock-free). Record seconds with
    {!Msmr_platform.Histogram.record}. *)

val register_histogram :
  ?registry:t -> ?labels:labels -> string -> Msmr_platform.Histogram.t -> unit
(** Expose an existing histogram (e.g. a benchmark's) in the
    registry. *)

val remove : ?registry:t -> ?labels:labels -> string -> unit
(** Drop a series; no-op if absent. Replicas remove their series on
    [stop]. *)

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      mean : float;     (** seconds *)
      p50 : float;
      p95 : float;
      p99 : float;
    }

type sample = {
  name : string;
  labels : labels;
  value : value;
}

val snapshot : ?registry:t -> unit -> sample list
(** A point-in-time reading of every series, sorted by (name, labels) —
    deterministic: two registries holding the same series in any
    insertion order snapshot identically. *)

val to_text : sample list -> string
(** One ["name{k="v",...} value"] line per series (Prometheus-style
    exposition; histograms expand to [_count]/[_mean]/[_p50]/[_p95]/
    [_p99] lines). *)

val to_json : sample list -> Json.t
(** [{"metrics": [{"name":..., "labels":{...}, "type":...,
    "value":...}, ...]}]. *)

val write_file : ?registry:t -> string -> unit
(** Snapshot the registry and write the JSON encoding to a file. *)
