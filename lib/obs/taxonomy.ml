let modules =
  [ "ClientIO"; "ReplicationCore"; "ReplicaIO"; "ServiceManager"; "Other" ]

let strip_prefix name =
  match String.index_opt name '/' with
  | Some i when i < String.length name - 1 ->
    String.sub name (i + 1) (String.length name - i - 1)
  | Some _ | None -> name

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let module_of_thread name =
  let name = strip_prefix name in
  if has_prefix ~prefix:"ClientIO" name
     || has_prefix ~prefix:"ClientAcceptor" name
     || has_prefix ~prefix:"conn-" name
     || has_prefix ~prefix:"Router" name
  then "ClientIO"
  else if has_prefix ~prefix:"ReplicaIO" name then "ReplicaIO"
  else if has_prefix ~prefix:"Batcher" name
          || has_prefix ~prefix:"Protocol" name
          || has_prefix ~prefix:"ProxyLeader" name
          || has_prefix ~prefix:"FailureDetector" name
          || name = "Retransmitter"
          || name = "StableStorage"
  then "ReplicationCore"
  else if has_prefix ~prefix:"Replica" name || name = "Syncer"
          || has_prefix ~prefix:"Executor" name
  then "ServiceManager"
  else "Other"
