type phase =
  | Span of int64
  | Instant
  | Counter of float

type event = {
  ph : phase;
  cat : string;
  name : string;
  ts_ns : int64;
  args : (string * Json.t) list;
}

let dummy_event =
  { ph = Instant; cat = ""; name = ""; ts_ns = 0L; args = [] }

type track = {
  t_name : string;
  pid : int;
  pname : string;
  tid : int;
  ring : event array;
  mask : int;
  mutable pushed : int;            (* monotone; slot = pushed land mask *)
  mutable cleared : int;           (* value of [pushed] at the last clear *)
  mutable stack : (string * string * int64) list;  (* open spans *)
  clock : unit -> int64;
}

type t = {
  clock : unit -> int64;
  ring_capacity : int;
  lock : Mutex.t;                  (* guards track registration only *)
  mutable all : track list;        (* reverse registration order *)
  mutable next_tid : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(ring_capacity = 131072) ~clock () =
  if ring_capacity <= 0 then invalid_arg "Trace.create: ring_capacity <= 0";
  { clock;
    ring_capacity = pow2_at_least ring_capacity 1;
    lock = Mutex.create ();
    all = [];
    next_tid = 0 }

let create_live ?ring_capacity () =
  create ?ring_capacity ~clock:Msmr_platform.Mclock.now_ns ()

let now_ns t = t.clock ()

let track t ?(pid = 0) ?pname ~name () =
  Mutex.lock t.lock;
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let tr =
    { t_name = name;
      pid;
      pname = (match pname with Some p -> p | None -> Printf.sprintf "process-%d" pid);
      tid;
      ring = Array.make t.ring_capacity dummy_event;
      mask = t.ring_capacity - 1;
      pushed = 0;
      cleared = 0;
      stack = [];
      clock = t.clock }
  in
  t.all <- tr :: t.all;
  Mutex.unlock t.lock;
  tr

let track_name (tr : track) = tr.t_name
let track_pid (tr : track) = tr.pid
let track_tid (tr : track) = tr.tid

let push (tr : track) ev =
  tr.ring.(tr.pushed land tr.mask) <- ev;
  tr.pushed <- tr.pushed + 1

let complete (tr : track) ?(cat = "span") ~name ~ts_ns ~dur_ns () =
  push tr { ph = Span dur_ns; cat; name; ts_ns; args = [] }

let begin_span (tr : track) ?(cat = "span") name =
  tr.stack <- (cat, name, tr.clock ()) :: tr.stack

let end_span (tr : track) =
  match tr.stack with
  | [] -> ()
  | (cat, name, t0) :: rest ->
    tr.stack <- rest;
    let t1 = tr.clock () in
    complete tr ~cat ~name ~ts_ns:t0 ~dur_ns:(Int64.sub t1 t0) ()

let instant (tr : track) ?(cat = "event") ?(args = []) name =
  push tr { ph = Instant; cat; name; ts_ns = tr.clock (); args }

let counter (tr : track) ~name v =
  push tr { ph = Counter v; cat = "counter"; name; ts_ns = tr.clock (); args = [] }

let events (tr : track) =
  let cap = Array.length tr.ring in
  let n = tr.pushed - tr.cleared in
  let retained = min n cap in
  let first = tr.pushed - retained in
  List.init retained (fun i -> tr.ring.((first + i) land tr.mask))

let dropped (tr : track) =
  let cap = Array.length tr.ring in
  max 0 (tr.pushed - tr.cleared - cap)

let tracks t =
  Mutex.lock t.lock;
  let all = List.rev t.all in
  Mutex.unlock t.lock;
  all

let clear t =
  List.iter (fun tr -> tr.cleared <- tr.pushed) (tracks t)
