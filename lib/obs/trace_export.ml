let us_of_ns ns = Int64.to_float ns /. 1e3

let meta_events tracks =
  (* One process_name record per pid, one thread_name per track. *)
  let seen_pids = Hashtbl.create 8 in
  List.concat_map
    (fun tr ->
       let pid = Trace.track_pid tr in
       let thread_meta =
         Json.Obj
           [ ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int pid);
             ("tid", Json.Int (Trace.track_tid tr));
             ("args", Json.Obj [ ("name", Json.String (Trace.track_name tr)) ]) ]
       in
       if Hashtbl.mem seen_pids pid then [ thread_meta ]
       else begin
         Hashtbl.add seen_pids pid ();
         [ Json.Obj
             [ ("name", Json.String "process_name");
               ("ph", Json.String "M");
               ("pid", Json.Int pid);
               ("tid", Json.Int 0);
               ("args",
                Json.Obj
                  [ ("name",
                     Json.String
                       (Printf.sprintf "replica-%d" pid)) ]) ];
           thread_meta ]
       end)
    tracks

let event_to_json ~pid ~tid (ev : Trace.event) =
  let common =
    [ ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Float (us_of_ns ev.ts_ns)) ]
  in
  match ev.ph with
  | Trace.Span dur ->
    Json.Obj
      (common
       @ [ ("ph", Json.String "X"); ("dur", Json.Float (us_of_ns dur)) ]
       @ if ev.args = [] then [] else [ ("args", Json.Obj ev.args) ])
  | Trace.Instant ->
    Json.Obj
      (common
       @ [ ("ph", Json.String "i"); ("s", Json.String "t") ]
       @ if ev.args = [] then [] else [ ("args", Json.Obj ev.args) ])
  | Trace.Counter v ->
    Json.Obj
      (common
       @ [ ("ph", Json.String "C");
           ("args", Json.Obj [ ("value", Json.Float v) ]) ])

let to_json t =
  let tracks = Trace.tracks t in
  let events =
    List.concat_map
      (fun tr ->
         let pid = Trace.track_pid tr and tid = Trace.track_tid tr in
         List.map (fun ev -> (ev.Trace.ts_ns, event_to_json ~pid ~tid ev))
           (Trace.events tr))
      tracks
  in
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Int64.compare a b) events
  in
  Json.Obj
    [ ("traceEvents",
       Json.List (meta_events tracks @ List.map snd sorted));
      ("displayTimeUnit", Json.String "ms") ]

let write_file t path =
  let json = to_json t in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  let buf = Buffer.create (1 lsl 20) in
  Json.to_buffer buf json;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

let span_totals t =
  let table = Hashtbl.create 64 in
  List.iter
    (fun tr ->
       let key name = (Trace.track_pid tr, Trace.track_name tr, name) in
       List.iter
         (fun (ev : Trace.event) ->
            match ev.ph with
            | Trace.Span dur ->
              let k = key ev.name in
              let prev =
                match Hashtbl.find_opt table k with Some d -> d | None -> 0L
              in
              Hashtbl.replace table k (Int64.add prev dur)
            | Trace.Instant | Trace.Counter _ -> ())
         (Trace.events tr))
    (Trace.tracks t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort compare

let total_dropped t =
  List.fold_left (fun acc tr -> acc + Trace.dropped tr) 0 (Trace.tracks t)
