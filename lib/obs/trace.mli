(** Structured tracing: spans, instant events and counter series,
    ring-buffered per track, exportable as a Chrome [trace_event] file.

    {2 Model}

    A {!t} (tracer) owns a clock and a set of {!track}s. A track is one
    timeline — in practice one thread of one replica — identified by a
    [(pid, tid)] pair the way Chrome's trace viewer expects: [pid]
    groups tracks into processes (we use the replica id), [tid] orders
    tracks inside a process.

    Three event kinds can be recorded on a track:

    - {b spans} — named intervals ([ph:"X"] complete events): either
      recorded directly with {!complete}, or bracketed with
      {!begin_span}/{!end_span};
    - {b instants} — point events ({!instant}), e.g. a consensus
      instance deciding;
    - {b counters} — sampled numeric series ({!counter}), e.g. queue
      lengths, rendered by Chrome as a stacked area chart.

    {2 Concurrency and cost (the no-lock rule)}

    Each track is a single-writer ring buffer: only the owning thread
    may record events on it, mirroring how the paper's architecture
    gives every thread private state (Section V). Recording is a few
    stores and one array write — no locks, no system calls; the only
    lock in this module guards track {e creation}, which happens once
    per thread at startup. When the ring wraps, the oldest events are
    overwritten and {!dropped} counts them: a full trace of a bounded
    window beats a partial trace of everything.

    {2 Clocks}

    The clock is injected at {!create}: the live runtime passes a
    monotonic wall clock ({!create_live}), the simulator passes its
    virtual clock — so simulated traces are stamped in {e simulated}
    time and paper figures become inspectable timelines. Timestamps are
    nanoseconds as [int64]; the exporter converts to the microseconds
    Chrome expects. *)

type t
(** A tracer: clock + tracks. *)

type track
(** One timeline (thread) inside a tracer. Single-writer. *)

val create : ?ring_capacity:int -> clock:(unit -> int64) -> unit -> t
(** [create ~clock ()] makes a tracer whose timestamps come from
    [clock] (nanoseconds). [ring_capacity] (default [131072]) bounds
    the number of events retained {e per track}; it is rounded up to a
    power of two. *)

val create_live : ?ring_capacity:int -> unit -> t
(** A tracer stamped from {!Msmr_platform.Mclock.now_ns} — for the live
    runtime. *)

val now_ns : t -> int64
(** Read the tracer's clock. *)

val track : t -> ?pid:int -> ?pname:string -> name:string -> unit -> track
(** [track t ~pid ~pname ~name ()] registers a new timeline. [pid]
    (default 0) is the process group — use the replica id; [pname]
    names the group in the viewer (e.g. ["replica-0"]); [name] labels
    the track (the thread name). Thread-safe; call once per thread. *)

val track_name : track -> string
val track_pid : track -> int

val track_tid : track -> int
(** Unique per tracer, assigned in registration order. *)

(** {1 Recording} *)

val complete :
  track -> ?cat:string -> name:string -> ts_ns:int64 -> dur_ns:int64 ->
  unit -> unit
(** Record a finished span with explicit bounds. [cat] (default
    ["span"]) is the Chrome category — use
    {!Taxonomy.module_of_thread} for thread-state spans. *)

val begin_span : track -> ?cat:string -> string -> unit
(** Open a span now; spans nest (a per-track stack). *)

val end_span : track -> unit
(** Close the innermost open span, recording it as a complete event.
    No-op if no span is open. *)

val instant : track -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** Record a point event at the current clock reading. *)

val counter : track -> name:string -> float -> unit
(** Record a sample of a numeric series at the current clock
    reading. *)

(** {1 Reading back} *)

type phase =
  | Span of int64  (** duration, ns *)
  | Instant
  | Counter of float

type event = {
  ph : phase;
  cat : string;
  name : string;
  ts_ns : int64;
  args : (string * Json.t) list;
}

val events : track -> event list
(** Retained events, oldest first. Call after the owning thread has
    stopped recording (reads are not synchronised with writes). *)

val dropped : track -> int
(** Events lost to ring wrap-around since the last {!clear}. *)

val tracks : t -> track list
(** All registered tracks, in registration order. *)

val clear : t -> unit
(** Drop all retained events and dropped-counts (e.g. at the end of a
    warm-up period) while keeping the tracks registered. *)
