(** Simulated stable-storage device: buffered appends plus an fsync
    with a fixed per-sync latency.

    Appends are free (a buffered write is negligible next to the CPU
    costs already modelled); durability is paid at {!fsync}, and fsyncs
    on one device serialise — a second fsync issued while the first is
    in flight starts only when the device is free again. The counters
    give the serial-vs-group-commit sweeps their group-size numbers. *)

type t

val create : Engine.t -> fsync_latency:float -> t

val append : t -> int -> unit
(** Buffer [n] more records; they become durable at the next fsync. *)

val has_pending : t -> bool

val stall : t -> until:float -> unit
(** Fault injection: no fsync issued before [until] can start (and so
    none completes before [until + latency]) — a seized device. Appends
    still buffer; stalls only extend ([Float.max] with any earlier
    stall). *)

val fsync : t -> (unit -> unit) -> unit
(** Make everything buffered durable; the continuation runs when the
    device completes (after queueing behind any in-flight fsync). One
    fsync covers all records appended before it was issued — the group
    in group commit. *)

val syncs : t -> int
val records_synced : t -> int

val avg_group : t -> float
(** Mean records per fsync ([0.] before the first). *)

val reset_counters : t -> unit
(** Zero {!syncs}/{!records_synced} (measurement-window boundary). *)
