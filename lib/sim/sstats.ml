type state = Busy | Blocked | Waiting | Other

type tracer = state -> float -> float -> unit

type thread = {
  eng : Engine.t;
  tname : string;
  mutable st : state;
  mutable since : float;
  mutable t_busy : float;
  mutable t_blocked : float;
  mutable t_waiting : float;
  mutable t_other : float;
  (* Start of the current same-state run (merged trace span). *)
  mutable span_start : float;
  mutable tracer : tracer option;
}

let make_thread eng ~name =
  let now = Engine.now eng in
  { eng; tname = name; st = Other; since = now;
    t_busy = 0.; t_blocked = 0.; t_waiting = 0.; t_other = 0.;
    span_start = now; tracer = None }

let name t = t.tname
let state t = t.st

let attach_tracer t tracer =
  t.span_start <- Engine.now t.eng;
  t.tracer <- Some tracer

let flush_tracer t =
  match t.tracer with
  | None -> ()
  | Some emit ->
    let now = Engine.now t.eng in
    if now > t.span_start then emit t.st t.span_start now;
    t.span_start <- now

let account t =
  let now = Engine.now t.eng in
  let dt = now -. t.since in
  (match t.st with
   | Busy -> t.t_busy <- t.t_busy +. dt
   | Blocked -> t.t_blocked <- t.t_blocked +. dt
   | Waiting -> t.t_waiting <- t.t_waiting +. dt
   | Other -> t.t_other <- t.t_other +. dt);
  t.since <- now

let set t s =
  account t;
  if s <> t.st then begin
    (match t.tracer with
     | Some emit when t.since > t.span_start ->
       (* [account] just advanced [since] to the current time. *)
       emit t.st t.span_start t.since
     | Some _ | None -> ());
    t.span_start <- t.since;
    t.st <- s
  end

type totals = {
  busy : float;
  blocked : float;
  waiting : float;
  other : float;
}

let totals t =
  let dt = Engine.now t.eng -. t.since in
  let add c x = if t.st = c then x +. dt else x in
  { busy = add Busy t.t_busy;
    blocked = add Blocked t.t_blocked;
    waiting = add Waiting t.t_waiting;
    other = add Other t.t_other }

let reset t =
  t.t_busy <- 0.; t.t_blocked <- 0.; t.t_waiting <- 0.; t.t_other <- 0.;
  t.since <- Engine.now t.eng;
  t.span_start <- t.since

let pp_profile ppf rows =
  let life (x : totals) = x.busy +. x.blocked +. x.waiting +. x.other in
  let max_life = List.fold_left (fun m (_, x) -> Float.max m (life x)) 1e-9 rows in
  let pct v = 100. *. v /. max_life in
  Format.fprintf ppf "%-18s %7s %8s %8s %7s@."
    "thread" "busy%" "blocked%" "waiting%" "other%";
  List.iter
    (fun (name, x) ->
       Format.fprintf ppf "%-18s %7.1f %8.1f %8.1f %7.1f@."
         name (pct x.busy) (pct x.blocked) (pct x.waiting) (pct x.other))
    rows

module Gauge = struct
  type t = {
    eng : Engine.t;
    mutable last : float;        (* time of last update *)
    mutable start : float;
    mutable integral : float;
    mutable current : float;
  }

  let create eng =
    let now = Engine.now eng in
    { eng; last = now; start = now; integral = 0.; current = 0. }

  let update t v =
    let now = Engine.now t.eng in
    t.integral <- t.integral +. (t.current *. (now -. t.last));
    t.last <- now;
    t.current <- v

  let avg t =
    let now = Engine.now t.eng in
    let integral = t.integral +. (t.current *. (now -. t.last)) in
    let span = now -. t.start in
    if span <= 0. then t.current else integral /. span

  let reset t =
    let now = Engine.now t.eng in
    t.last <- now;
    t.start <- now;
    t.integral <- 0.
end
