(** Deterministic fault injection for the simulator.

    A fault schedule is a plain list of {!event}s carried in
    {!Params.t}; {!Jpaxos_model} installs them on the engine at startup,
    so every chaos run is a pure function of the parameters (schedule +
    [chaos_seed]) — same seed, byte-for-byte the same event stream.

    Message chaos (drop / duplicate / delay / reorder) is applied at the
    NIC boundary: the sender-side flush consults {!deliveries} for every
    wire segment, after the CPU serialisation costs and send-queue
    behaviour have already been paid. That placement mirrors where a
    real network loses frames (below the application, above nothing the
    replica can observe), so the replica code under test is exactly the
    code that runs fault-free. *)

type link_chaos = {
  l_src : int;       (** source node, [-1] = any *)
  l_dst : int;       (** destination node, [-1] = any *)
  drop : float;      (** per-segment drop probability *)
  dup : float;       (** per-segment duplication probability *)
  delay_s : float;   (** fixed extra delivery delay *)
  jitter_s : float;
      (** uniform extra delay in [0, jitter_s); independent per segment,
          so delayed copies can overtake — netem-style reordering *)
  from_t : float;    (** rule active for [from_t <= now < until_t] *)
  until_t : float;
}

type event =
  | Crash of { node : int; at : float; restart_at : float option }
      (** Fail-stop at [at]: the node stops sending, receiving and
          executing; volatile state (queues, retransmission timers) is
          lost. With [restart_at] it comes back, recovering the engine
          from its log — the simulator's WAL stand-in. *)
  | Partition of {
      group_a : int list;
      group_b : int list;
      at : float;
      heal_at : float;
      symmetric : bool;
          (** [false] = asymmetric: only [group_a]→[group_b] traffic is
              blocked; replies still flow *)
    }
  | Link of link_chaos  (** standing per-link message chaos rule *)
  | Fsync_stall of { node : int; at : float; until_t : float }
      (** The node's disk accepts no fsync completion before [until_t]
          (a seized device / write-back flush storm). *)

type net
(** Runtime chaos state: the seeded PRNG, the partition matrix and the
    standing link rules. One per simulation run. *)

val make_net : seed:int -> n:int -> event list -> net
(** Extract the {!Link} rules; crash/partition/stall events are the
    model's job to schedule ({!set_blocked} flips the matrix). *)

val set_blocked : net -> src:int -> dst:int -> bool -> unit

val set_partition :
  net -> group_a:int list -> group_b:int list -> symmetric:bool -> bool -> unit
(** Apply ([true]) or heal ([false]) a partition between the groups. *)

val deliveries : net -> src:int -> now:float -> dst:int -> float list
(** Fates of one wire segment from [src] to [dst] at time [now]: [[]]
    means dropped (or partitioned away); otherwise one extra-delay value
    per copy to deliver ([0.] = undisturbed, two entries = duplicated).
    Consumes PRNG draws in call order, which the engine makes
    deterministic. *)

val random_schedule : seed:int -> n:int -> t0:float -> t1:float -> event list
(** A seeded soak mix over the window [[t0, t1]]: a lossy/jittery link
    rule, one crash + restart, and one partition window — all healed
    well before [t1] so a run can converge. Deterministic in [seed]. *)
