type t = {
  eng : Engine.t;
  name : string;
  mutable held : bool;
  waiters : (unit -> unit) Queue.t;
  mutable acqs : int;
  mutable contended : int;
  mutable on_contended : (t -> Sstats.thread -> unit) option;
}

let create eng ?(name = "lock") () =
  { eng; name; held = false; waiters = Queue.create (); acqs = 0;
    contended = 0; on_contended = None }

let name t = t.name

let set_on_contended t f = t.on_contended <- Some f

let acquire t st =
  t.acqs <- t.acqs + 1;
  if not t.held then t.held <- true
  else begin
    t.contended <- t.contended + 1;
    (match t.on_contended with Some f -> f t st | None -> ());
    Sstats.set st Sstats.Blocked;
    Engine.suspend t.eng (fun resume -> Queue.push resume t.waiters);
    (* The releaser handed us the lock: [held] stays true. *)
    Sstats.set st Sstats.Busy
  end

let release t =
  match Queue.pop t.waiters with
  | resume -> resume ()
  | exception Queue.Empty -> t.held <- false

let with_lock t st f =
  acquire t st;
  Fun.protect ~finally:(fun () -> release t) f

let contenders t = Queue.length t.waiters
let acquisitions t = t.acqs
let contended_acquisitions t = t.contended
