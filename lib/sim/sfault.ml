type link_chaos = {
  l_src : int;
  l_dst : int;
  drop : float;
  dup : float;
  delay_s : float;
  jitter_s : float;
  from_t : float;
  until_t : float;
}

type event =
  | Crash of { node : int; at : float; restart_at : float option }
  | Partition of {
      group_a : int list;
      group_b : int list;
      at : float;
      heal_at : float;
      symmetric : bool;
    }
  | Link of link_chaos
  | Fsync_stall of { node : int; at : float; until_t : float }

type net = {
  rng : Random.State.t;
  blocked : bool array array;   (* blocked.(src).(dst) *)
  rules : link_chaos list;
}

let make_net ~seed ~n events =
  { rng = Random.State.make [| seed; 0x5fa; 0x17 |];
    blocked = Array.make_matrix n n false;
    rules =
      List.filter_map (function Link r -> Some r | _ -> None) events }

let set_blocked t ~src ~dst v = t.blocked.(src).(dst) <- v

let set_partition t ~group_a ~group_b ~symmetric v =
  List.iter
    (fun a ->
       List.iter
         (fun b ->
            set_blocked t ~src:a ~dst:b v;
            if symmetric then set_blocked t ~src:b ~dst:a v)
         group_b)
    group_a

let deliveries t ~src ~now ~dst =
  if t.blocked.(src).(dst) then []
  else begin
    (* Draw in rule order even when an earlier rule already dropped the
       segment: the PRNG consumption pattern must not depend on the
       outcome, or two schedules differing in one rule would desync every
       later draw. *)
    let dropped = ref false and duped = ref false and extra = ref 0. in
    List.iter
      (fun r ->
         if (r.l_src < 0 || r.l_src = src)
            && (r.l_dst < 0 || r.l_dst = dst)
            && now >= r.from_t && now < r.until_t
         then begin
           if r.drop > 0. && Random.State.float t.rng 1.0 < r.drop then
             dropped := true;
           if r.dup > 0. && Random.State.float t.rng 1.0 < r.dup then
             duped := true;
           if r.delay_s > 0. then extra := !extra +. r.delay_s;
           if r.jitter_s > 0. then
             extra := !extra +. Random.State.float t.rng r.jitter_s
         end)
      t.rules;
    if !dropped then []
    else if !duped then [ !extra; !extra +. 2e-5 ]
    else [ !extra ]
  end

let random_schedule ~seed ~n ~t0 ~t1 =
  if n < 2 then invalid_arg "Sfault.random_schedule: n < 2";
  let rng = Random.State.make [| seed; 0xc4a05 |] in
  let span = t1 -. t0 in
  (* Everything heals by [t0 + 0.7 span]: the tail is for convergence. *)
  let heal_by = t0 +. (0.7 *. span) in
  let lossy =
    Link
      { l_src = Random.State.int rng n;
        l_dst = -1;
        drop = 0.05 +. Random.State.float rng 0.10;
        dup = 0.02;
        delay_s = 0.;
        jitter_s = 0.002;
        from_t = t0;
        until_t = t0 +. (0.45 *. span) }
  in
  let victim = Random.State.int rng n in
  let crash_at = t0 +. ((0.10 +. Random.State.float rng 0.15) *. span) in
  let restart_at =
    Float.min (heal_by -. 0.05 *. span)
      (crash_at +. ((0.10 +. Random.State.float rng 0.10) *. span))
  in
  let crash = Crash { node = victim; at = crash_at; restart_at = Some restart_at } in
  let isolated = Random.State.int rng n in
  let others = List.filter (fun i -> i <> isolated) (List.init n Fun.id) in
  let part_at = t0 +. ((0.45 +. Random.State.float rng 0.10) *. span) in
  let part =
    Partition
      { group_a = [ isolated ];
        group_b = others;
        at = part_at;
        heal_at = Float.min heal_by (part_at +. (0.15 *. span));
        symmetric = true }
  in
  [ lossy; crash; part ]
