type 'a t = {
  eng : Engine.t;
  cpu : Cpu.t;
  qname : string;
  cap : int;
  op_cost : float;
  items : 'a Queue.t;
  lock : Slock.t;
  mutable not_empty : (unit -> unit) Queue.t;
  mutable not_full : (unit -> unit) Queue.t;
  gauge : Sstats.Gauge.t;
  mutable on_length : (int -> unit) option;
}

let create eng ~cpu ~capacity ?(op_cost = 250e-9) ~name () =
  if capacity <= 0 then invalid_arg "Squeue.create: capacity <= 0";
  { eng; cpu; qname = name; cap = capacity; op_cost;
    items = Queue.create ();
    lock = Slock.create eng ~name:(name ^ ".lock") ();
    not_empty = Queue.create ();
    not_full = Queue.create ();
    gauge = Sstats.Gauge.create eng;
    on_length = None }

let name t = t.qname
let length t = Queue.length t.items
let capacity t = t.cap

let set_on_length t f = t.on_length <- Some f
let set_on_contended t f = Slock.set_on_contended t.lock f

let signal waiters =
  match Queue.pop waiters with
  | resume -> resume ()
  | exception Queue.Empty -> ()

(* The critical section is a few hundred nanoseconds of memory traffic;
   modelling it as schedulable CPU work would let the core scheduler
   preempt a lock holder and manufacture convoys that real sub-µs
   sections do not exhibit. A plain delay keeps the cost and the
   contention window without the artefact. *)
let locked t st f =
  Slock.acquire t.lock st;
  Engine.delay t.eng t.op_cost;
  let r = f () in
  Slock.release t.lock;
  r

let push_locked t v =
  Queue.push v t.items;
  let len = Queue.length t.items in
  Sstats.Gauge.update t.gauge (float_of_int len);
  (match t.on_length with Some f -> f len | None -> ());
  signal t.not_empty

let pop_locked t =
  let v = Queue.pop t.items in
  let len = Queue.length t.items in
  Sstats.Gauge.update t.gauge (float_of_int len);
  (match t.on_length with Some f -> f len | None -> ());
  signal t.not_full;
  v

let rec put t st v =
  let done_ =
    locked t st (fun () ->
        if Queue.length t.items < t.cap then begin
          push_locked t v;
          true
        end
        else false)
  in
  if not done_ then begin
    Sstats.set st Sstats.Waiting;
    Engine.suspend t.eng (fun resume -> Queue.push resume t.not_full);
    Sstats.set st Sstats.Busy;
    put t st v
  end

let try_put t st v =
  locked t st (fun () ->
      if Queue.length t.items < t.cap then begin
        push_locked t v;
        true
      end
      else false)

let rec take t st =
  let got =
    locked t st (fun () ->
        if Queue.is_empty t.items then None else Some (pop_locked t))
  in
  match got with
  | Some v -> v
  | None ->
    Sstats.set st Sstats.Waiting;
    Engine.suspend t.eng (fun resume -> Queue.push resume t.not_empty);
    Sstats.set st Sstats.Busy;
    take t st

let try_take t st =
  locked t st (fun () ->
      if Queue.is_empty t.items then None else Some (pop_locked t))

let rec take_timeout t st ~timeout =
  if timeout <= 0. then try_take t st
  else begin
    let t0 = Engine.now t.eng in
    let got =
      locked t st (fun () ->
          if Queue.is_empty t.items then None else Some (pop_locked t))
    in
    match got with
    | Some v -> Some v
    | None ->
      Sstats.set st Sstats.Waiting;
      let r =
        Engine.suspend_timeout t.eng ~timeout (fun resume ->
            Queue.push (fun () -> resume ()) t.not_empty)
      in
      Sstats.set st Sstats.Busy;
      (match r with
       | Engine.Timed_out -> try_take t st
       | Engine.Value () ->
         take_timeout t st ~timeout:(timeout -. (Engine.now t.eng -. t0)))
  end

let avg_length t = Sstats.Gauge.avg t.gauge
let reset_stats t = Sstats.Gauge.reset t.gauge
