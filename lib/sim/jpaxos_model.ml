open Msmr_consensus
module Client_msg = Msmr_wire.Client_msg

(* Approximate wire sizes without running the codec on every message —
   header bytes per constructor, payload bytes from the value. *)
let approx_size (m : Msg.t) =
  match m with
  | Msg.Accept { value; _ } -> 34 + Value.size_bytes value
  | Msg.Prepare _ | Msg.Accepted _ | Msg.Decide _ | Msg.Heartbeat _
  | Msg.Lease_ping _ | Msg.Lease_grant _ -> 20
  | Msg.Prepare_ok { entries; _ } | Msg.Catchup_reply { entries; _ } ->
    List.fold_left (fun acc (e : Msg.log_entry) ->
        acc + 18 + Value.size_bytes e.e_value) 24 entries
  | Msg.Catchup_query _ -> 24

(* How many WAL records the live runtime would log for an incoming
   message / an action list: mirrors [Replica.protocol_loop]'s persist
   points (promise on Prepare, acceptance on Accept, the leader's
   self-accept on Schedule_rtx, Decided on Execute, catch-up learns). *)
let records_for_msg = function
  | Msg.Accept _ | Msg.Prepare _ -> 1
  | Msg.Catchup_reply { entries; _ } ->
    2 * List.length (List.filter (fun (e : Msg.log_entry) -> e.e_decided) entries)
  | _ -> 0

let records_for_actions actions =
  List.fold_left
    (fun acc a ->
       match a with
       | Paxos.View_changed _ | Paxos.Execute _ -> acc + 1
       | Paxos.Schedule_rtx { key = Paxos.Rtx_accept _; msg = Msg.Accept _; _ }
         -> acc + 1
       | _ -> acc)
    0 actions

(* Durability-dependent messages (same set as the live runtime's gate). *)
let durability_gated = function
  | Msg.Prepare_ok _ | Msg.Accepted _ | Msg.Accept _ -> true
  | _ -> false

(* TCP-like segment coalescing at the sender: consecutive queued messages
   share Ethernet frames (this is what lets a Decide piggyback on the next
   Accept and keeps the leader within its packet budget — Section VI-D3). *)
let segment_payload = 1448

type cio_ev =
  | Req of Client_msg.request
  | Rep of Client_msg.request_id
  | Rd of Client_msg.request_id
      (* read fast path: one packet in, a DecisionQueue ride, one packet
         back — no Batcher/Protocol/replication. Replies reuse [Rep];
         the result travels in per-client slots (one outstanding op). *)

type disp_ev =
  | PMsg of Types.node_id * Msg.t
  | Poke
  | Suspect_ev  (* chaos: local failure-detector verdict *)
  | Tick        (* chaos: periodic catch-up check *)
  | Reconfig_cmd of Membership.t
      (* reconfig driver: ask this node (believed leader) to order the
         given next-epoch membership through its log *)

(* Multi-group Router input: ordered writes and fast-path reads share
   the Router hop, which partitions both to their group by conflict key
   (client id) — reads then ride the group's DecisionQueue. *)
type route_ev =
  | Route_req of Client_msg.request
  | Route_read of Client_msg.request_id

(* StableStorage pipeline events ([Params.Sync_group]), mirroring the
   live runtime's log queue: the Protocol process enqueues record counts
   and durability-gated sends; the StableStorage process drains a burst,
   pays one device fsync for all its records (group commit), then
   forwards the gated sends. FIFO order makes release order = log
   order. *)
type ss_ev =
  | Sl_log of int                     (* records to append *)
  | Sl_rel of Types.node_id * Msg.t   (* send awaiting durability *)

type decision_ev =
  | Dec of { d_iid : Types.iid; d_value : Value.t; d_t : float }
      (* [d_t] stamps the decide instant so the speculative path can
         report the decide->reply gap it collapses *)
  | Dread of { r_id : Client_msg.request_id }
      (* a fast-path read riding the DecisionQueue: its FIFO position
         behind every already-decided instance IS the apply-frontier
         wait that makes leaseholder reads linearizable (the same trick
         the live runtime plays) *)
  | Dspec of { s_req : Client_msg.request }
      (* early scheduling ([Params.speculate]): the leader's ClientIO
         pushes each fresh request here at ingress, ahead of the whole
         Batcher/Protocol/replication ride, so the ServiceManager can
         pre-dispatch and execute it optimistically against predicted
         (arrival) order *)

(* Work items on the parallel-ServiceManager executor paths: an ordered
   execution (decided; carries the decide instant for the commit->execute
   gap measurement) or an optimistic one ([Params.speculate]). *)
type exec_item =
  | E_exec of Client_msg.request * float
  | E_spec of Client_msg.request

type replica_report = {
  cpu_util_pct : float;
  blocked_pct : float;
  threads : (string * Sstats.totals) list;
}

type result = {
  throughput : float;
  client_latency : float;
  instance_latency : float;
  avg_batch_reqs : float;
  avg_batch_bytes : float;
  avg_window : float;
  avg_request_queue : float;
  avg_proposal_queue : float;
  avg_dispatcher_queue : float;
  replicas : replica_report array;
  leader_tx_pps : float;
  leader_rx_pps : float;
  leader_tx_mbps : float;
  leader_rx_mbps : float;
  rtt_leader : float;
  rtt_followers : float;
  rtt_idle : float;
  wal_syncs : int;
  wal_group_avg : float;
  tuned_bsz_final : int;
  tuned_wnd_final : int;
  view_changes : int;
  unavailable_s : float;
  recovery_s : float;
  completed : int;
  safety_ok : bool;
  executed_min : int;
  executed_max : int;
  client_retries : int;
  reads_completed : int;
  read_rejects : int;
  stale_answers : int;
  timeline : (float * int) array;
  events : int;
  group_throughputs : float array;
  globals_executed : int;
  steals : int;
  spec_dispatched : int;
  spec_confirmed : int;
  spec_aborted : int;
  commit_exec_latency : float;
  reconfigs_applied : int;
  final_epoch : int;
  trace : Msmr_obs.Trace.t option;
}

type node = {
  id : int;
  cpu : Cpu.t;
  nic : Nic.t;
  mutable engine : Paxos.t;   (* swapped on chaos restart (recovery) *)
  dispatcher_q : disp_ev Squeue.t;
  proposal_q : Batch.t Squeue.t;
  request_qs : Client_msg.request Squeue.t array;   (* one per Batcher *)
  decision_q : decision_ev Squeue.t;
  send_qs : Msg.t Squeue.t array;
  rcv_mbs : (Types.node_id * Msg.t) Mailbox.t array;  (* per peer *)
  cio_mbs : cio_ev Mailbox.t array;                   (* per ClientIO thread *)
  disk : Sdisk.t option;              (* Some iff sync_policy <> Sync_none *)
  ss_q : ss_ev Squeue.t option;       (* Some iff sync_policy = Sync_group *)
  mutable threads : Sstats.thread list;               (* registration order *)
}

type client = {
  cid : int;
  mutable next_seq : int;
  mutable sent_at : float;
}

let run_single ?(trace = false) (p : Params.t) =
  let eng = Engine.create () in
  (* The tracer is stamped from the engine's virtual clock, so trace
     timelines are in *simulated* time — the paper's figures become
     inspectable Chrome timelines. *)
  let tracer =
    if trace then
      Some
        (Msmr_obs.Trace.create
           ~clock:(fun () -> Int64.of_float (Engine.now eng *. 1e9))
           ())
    else None
  in
  let ns_of s = Int64.of_float (s *. 1e9) in
  let state_name : Sstats.state -> string = function
    | Sstats.Busy -> "busy"
    | Sstats.Blocked -> "blocked"
    | Sstats.Waiting -> "waiting"
    | Sstats.Other -> "other"
  in
  (* Thread -> track, for hooks (lock contention) that only know the
     blocked thread. Physical equality: threads are unique records. *)
  let track_of : (Sstats.thread * Msmr_obs.Trace.track) list ref = ref [] in
  let c = p.costs in
  let speed = p.profile.cpu_speed in
  let cost x = x /. speed in
  (* Kernel network-stack contention grows with ClientIO threads beyond
     8 (Figure 9 / Section VI-C). *)
  let net_slowdown =
    1.0
    +. (p.net_contention_per_io_thread
        *. float_of_int (max 0 (p.client_io_threads - 8)))
  in
  let pkt_rate =
    p.profile.pkt_rate /. net_slowdown *. (if p.rss then 2.0 else 1.0)
  in
  (* Chaos gate: with [faults = []] and [reconfig_at = []] none of the
     fault-injection state below is consulted and the event stream is
     byte-for-byte the fault-free one (pinned by the determinism
     goldens). A reconfig schedule needs the same machinery faults do —
     failure detector (whose tick drives the joiner's catch-up),
     retransmissions and the safety checker — so it rides the gate. *)
  let chaos = p.faults <> [] || p.reconfig_at <> [] in
  let cfg =
    { (Config.default ~n:p.n) with
      window = p.wnd;
      max_batch_bytes = p.bsz;
      max_batch_delay_s = 0.005;
      snapshot_every = 0;
      members0 = p.members0 }
  in
  let cfg =
    if chaos then
      { cfg with
        fd_interval_s = p.chaos_fd_interval;
        fd_timeout_s = p.chaos_fd_timeout;
        retransmit_interval_s = p.chaos_rtx_interval }
    else cfg
  in
  (* Read fast-path gate, same discipline as the chaos gate: with
     [lease = false] none of the lease/read state below is consulted and
     the event stream is byte-for-byte the seed one (golden-pinned).
     [read_ratio > 0.] with [lease = false] runs reads down the ordered
     path — a read then costs exactly a write, which IS the ordered-read
     baseline bench008 measures the fast path against. *)
  let reads_on = p.lease && p.read_ratio > 0. in
  (* Speculation gate ([Params.speculate]), same discipline again: with
     [speculate = false] (or a serial ServiceManager) none of the frame
     state below is consulted and the event stream is byte-for-byte the
     ordered one (golden-pinned). *)
  let spec_on = p.speculate && p.exec_threads > 1 in
  let cfg =
    if p.lease then
      { cfg with
        Config.lease_enabled = true;
        lease_duration_s = p.lease_duration;
        clock_skew_bound_s = p.clock_skew }
    else cfg
  in
  (* Per-node drifting clocks: node [i] reads [t*(1+drift_i)+offset_i],
     deterministic (Knuth hash, no RNG) and bounded — offset and the
     drift accumulated over the whole run each stay within
     [clock_skew/2], so no node's clock error exceeds [clock_skew].
     This is the adversary the lease's [clock_skew_bound_s] padding is
     up against. *)
  let horizon = p.warmup +. p.duration in
  let clock_u i salt =
    float_of_int (((i * 2654435761) + (salt * 40503)) land 1023) /. 1023.
  in
  let clock_offset =
    Array.init p.n (fun i -> p.clock_skew /. 2. *. clock_u i 1)
  in
  let clock_drift =
    Array.init p.n (fun i ->
        if horizon <= 0. then 0.
        else p.clock_skew /. 2. *. clock_u i 2 /. horizon)
  in
  let node_clock i =
    let t = Engine.now eng in
    (t *. (1. +. clock_drift.(i))) +. clock_offset.(i)
  in
  let clock_ns i = int_of_float (node_clock i *. 1e9) in
  (* Lease state per node — the same pure {!Lease} policy the live
     runtime drives, here ticked in simulated time on drifted clocks. *)
  let leases = Array.init p.n (fun i -> Lease.create cfg ~me:i ~view:0) in
  let lease_quorum = (p.n / 2) + 1 in
  (* The simulated service keyed by client id: each node's executed
     version of every client's register (a write = "set my register to
     my seq"), plus the node-local apply recency that backs the
     bounded-staleness freshness proof. *)
  let n_cl = max 1 p.n_clients in
  let ver = Array.init p.n (fun _ -> Array.make n_cl 0) in
  let last_apply_c = Array.make p.n 0. in
  let note_exec node (id : Client_msg.request_id) =
    if reads_on || spec_on then begin
      ver.(node.id).(id.client_id) <- id.seq;
      last_apply_c.(node.id) <- node_clock node.id
    end
  in
  (* Speculation frames — the sim's {!Msmr_runtime.Spec_ledger}. Clients
     are closed-loop (one outstanding op), so at most one open frame per
     client: [sf_seq] is the speculated seq (-1 = no frame), [sf_done]
     whether the optimistic execution finished (register written,
     [sf_undo] holds the value to restore on rollback), [sf_wait] the
     decide instant when the decide arrived first and is waiting on the
     in-flight execution to promote it (-1. = none). *)
  let sf_seq = Array.init p.n (fun _ -> Array.make n_cl (-1)) in
  let sf_done = Array.init p.n (fun _ -> Array.make n_cl false) in
  let sf_wait = Array.init p.n (fun _ -> Array.make n_cl (-1.)) in
  let sf_undo = Array.init p.n (fun _ -> Array.make n_cl 0) in
  let spec_dispatched = ref 0 in
  let spec_confirmed = ref 0 in
  let spec_aborted = ref 0 in
  (* Decide->reply gap, measured on every parallel-SM completion (pure
     refs: recording it never perturbs the event stream). *)
  let ce_sum = ref 0. and ce_n = ref 0 in
  (* Roll one client's open frame back: restore the register the
     optimistic execution clobbered, drop the staged reply. *)
  let spec_abort_frame nid cid =
    if spec_on && sf_seq.(nid).(cid) >= 0 then begin
      if sf_done.(nid).(cid) then ver.(nid).(cid) <- sf_undo.(nid).(cid);
      sf_seq.(nid).(cid) <- -1;
      sf_done.(nid).(cid) <- false;
      sf_wait.(nid).(cid) <- -1.;
      incr spec_aborted
    end
  in
  let spec_abort_all nid =
    if spec_on then
      for cid = 0 to n_cl - 1 do
        spec_abort_frame nid cid
      done
  in
  (* Barrier-side abort: frames whose decide already arrived ([sf_wait])
     are committed work in flight — the quiescence barrier waits for
     them to promote; only undecided speculation rolls back. *)
  let spec_abort_undecided nid =
    if spec_on then
      for cid = 0 to n_cl - 1 do
        if sf_wait.(nid).(cid) < 0. then spec_abort_frame nid cid
      done
  in
  (* Forced-mispredict interleave (floor counter, no RNG), consumed once
     per confirm-eligible frame. *)
  let mis_total = ref 0 in
  let force_mispredict () =
    incr mis_total;
    p.mispredict_ratio > 0.
    && int_of_float (float_of_int !mis_total *. p.mispredict_ratio)
       > int_of_float (float_of_int (!mis_total - 1) *. p.mispredict_ratio)
  in
  (* Per-client read plumbing (clients are sequential: one outstanding
     op each, so plain slots carry the reply payload) and the
     linearizability bookkeeping the extended [safety_ok] checks:
     [ack_hist] remembers when each write ack landed, newest first. *)
  let read_result = Array.make n_cl (-1) in
  let read_serve_t = Array.make n_cl 0. in
  let read_floor = Array.make n_cl 0 in
  let last_write_acked = Array.make n_cl 0 in
  let ack_hist : (int * float) list array = Array.make n_cl [] in
  let note_acked cid seq =
    last_write_acked.(cid) <- seq;
    let l = (seq, Engine.now eng) :: ack_hist.(cid) in
    ack_hist.(cid) <-
      (if List.length l > 64 then List.filteri (fun i _ -> i < 64) l else l)
  in
  (* Highest write seq of [cid] acked at or before [cutoff]. Truncated
     history can only lower the floor — the check errs permissive,
     never flags a correct read. *)
  let acked_floor cid cutoff =
    let rec go = function
      | (s, t) :: _ when t <= cutoff -> s
      | _ :: rest -> go rest
      | [] -> 0
    in
    go ack_hist.(cid)
  in
  let reads_completed = ref 0 in
  let read_rejects = ref 0 in
  let stale_answers = ref 0 in
  (* Client-side verdict on one finished read: a linearizable read must
     return at least the client's last write acked before the read was
     issued; a bounded-staleness read at least the last write acked
     [staleness_bound] before the moment the replica served it. *)
  let check_read cid =
    let q = read_result.(cid) in
    if q >= 0 then begin
      let floor =
        if p.stale_reads then
          acked_floor cid (read_serve_t.(cid) -. p.staleness_bound)
        else read_floor.(cid)
      in
      if q < floor then incr stale_answers
    end
  in
  (* Deterministic read/write interleave: op [k] is a read iff the
     scaled floor counter crosses — exactly [read_ratio] of each
     client's ops in the long run, no RNG. *)
  let is_read_op k =
    reads_on
    && int_of_float (float_of_int k *. p.read_ratio)
       > int_of_float (float_of_int (k - 1) *. p.read_ratio)
  in
  (* ---------------- nodes ---------------- *)
  let mk_node id =
    let cpu =
      Cpu.create eng ~cores:p.cores ~switch_cost:(cost c.switch_cost) ()
    in
    let nic =
      Nic.create eng ~pkt_rate ~bandwidth:p.profile.bandwidth
        ~name:(Printf.sprintf "nic-%d" id) ()
    in
    { id; cpu; nic;
      engine = Paxos.create cfg ~me:id;
      dispatcher_q = Squeue.create eng ~cpu ~capacity:100_000 ~name:"DispatcherQueue" ();
      proposal_q = Squeue.create eng ~cpu ~capacity:20 ~name:"ProposalQueue" ();
      request_qs =
        Array.init p.n_batchers (fun _ ->
            Squeue.create eng ~cpu ~capacity:1000 ~name:"RequestQueue" ());
      decision_q = Squeue.create eng ~cpu ~capacity:4096 ~name:"DecisionQueue" ();
      send_qs = Array.init p.n (fun _ -> Squeue.create eng ~cpu ~capacity:100_000 ~name:"SendQueue" ());
      rcv_mbs = Array.init p.n (fun _ -> Mailbox.create eng ());
      cio_mbs = Array.init p.client_io_threads (fun _ -> Mailbox.create eng ());
      disk =
        (if p.sync_policy = Params.Sync_none then None
         else Some (Sdisk.create eng ~fsync_latency:p.fsync_latency));
      ss_q =
        (if p.sync_policy = Params.Sync_group then
           Some (Squeue.create eng ~cpu ~capacity:8192 ~name:"LogQueue" ())
         else None);
      threads = [] }
  in
  let nodes = Array.init p.n mk_node in
  let leader = nodes.(0) in
  (* ---------------- fault injection state (chaos only) ---------------- *)
  let net = Sfault.make_net ~seed:p.chaos_seed ~n:p.n p.faults in
  let up = Array.make p.n true in
  let crash_time = Array.make p.n 0. in
  let awaiting_recovery = Array.make p.n false in
  let recovery_times = ref [] in
  let rtx_tbls : (Paxos.rtx_key, Types.node_id list * Msg.t) Hashtbl.t array =
    Array.init p.n (fun _ -> Hashtbl.create 64)
  in
  let fds = Array.init p.n (fun id -> Failure_detector.create cfg ~me:id ~now_ns:0L) in
  let leader_hint = ref 0 in
  let views_seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Membership-change bookkeeping: epochs adopted anywhere, and the
     total count of adoptions across nodes (both deterministic). *)
  let epochs_seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let reconfigs_applied = ref 0 in
  let vc_t0 = Array.make p.n None in
  let client_retries = ref 0 in
  let awaiting_seq = Array.make (max 1 p.n_clients) 0 in
  let last_commit = ref 0. and max_gap = ref 0. in
  (* Per-node at-most-once frontier + executed-request log — the
     simulator's reply cache: the frontier suppresses re-execution of a
     retried request, the log is the cross-node linearizability check. *)
  let exec_frontier : (int, int) Hashtbl.t array =
    Array.init p.n (fun _ -> Hashtbl.create 1024)
  in
  let exec_logs : (int * int) list array = Array.make p.n [] in
  let timeline =
    Array.make
      (if chaos then 1 + int_of_float (ceil (p.duration /. p.chaos_bucket))
       else 0)
      0
  in
  let ns_now () = Int64.of_float (Engine.now eng *. 1e9) in
  (* Wire-level delivery with chaos applied at the NIC boundary.
     Callback-safe: [Nic.send] and [Mailbox.push] never suspend, so this
     can run from [schedule_at] callbacks (retransmission, restart). *)
  let chaos_deliver src_node dst msg size =
    if up.(src_node.id) then
      List.iter
        (fun extra ->
           let send () =
             Nic.send src_node.nic ~dst:nodes.(dst).nic ~size (fun () ->
                 if up.(dst) then
                   Mailbox.push nodes.(dst).rcv_mbs.(src_node.id)
                     (src_node.id, msg))
           in
           if extra <= 0. then send ()
           else Engine.schedule_at eng (Engine.now eng +. extra) send)
        (Sfault.deliveries net ~src:src_node.id ~now:(Engine.now eng) ~dst)
  in
  let rec rtx_fire id key () =
    match Hashtbl.find_opt rtx_tbls.(id) key with
    | Some (dests, msg) when up.(id) ->
      List.iter
        (fun d -> if d <> id then chaos_deliver nodes.(id) d msg (approx_size msg))
        dests;
      Engine.schedule_at eng
        (Engine.now eng +. p.chaos_rtx_interval)
        (rtx_fire id key)
    | _ -> ()
  in
  let arm_rtx id key dests msg =
    Hashtbl.replace rtx_tbls.(id) key (dests, msg);
    Engine.schedule_at eng
      (Engine.now eng +. p.chaos_rtx_interval)
      (rtx_fire id key)
  in
  (* At-most-once admission, in decide order, per node. *)
  let chaos_admit node (id : Client_msg.request_id) =
    let tbl = exec_frontier.(node.id) in
    match Hashtbl.find_opt tbl id.client_id with
    | Some s when id.seq <= s -> false
    | _ ->
      Hashtbl.replace tbl id.client_id id.seq;
      exec_logs.(node.id) <- (id.client_id, id.seq) :: exec_logs.(node.id);
      true
  in
  let chaos_executed node (id : Client_msg.request_id) =
    match Hashtbl.find_opt exec_frontier.(node.id) id.client_id with
    | Some s -> id.seq <= s
    | None -> false
  in
  let do_crash id =
    if up.(id) then begin
      up.(id) <- false;
      crash_time.(id) <- Engine.now eng;
      (* Volatile state lost: pending retransmissions die with the
         process. Queued events drain harmlessly — the recovered engine
         treats them as stale. Open speculation frames die too (the
         staged replies were never client-visible). *)
      Hashtbl.reset rtx_tbls.(id);
      spec_abort_all id
    end
  in
  let do_restart id =
    if not up.(id) then begin
      let old_log = Paxos.log nodes.(id).engine in
      let entries = Log.entries_from old_log (Log.low_mark old_log) in
      let decided, accepted =
        List.partition (fun (e : Msg.log_entry) -> e.e_decided) entries
      in
      let conv =
        List.map (fun (e : Msg.log_entry) -> (e.e_iid, e.e_view, e.e_value))
      in
      let engine, replays =
        Paxos.recover cfg ~me:id
          ~view:(Paxos.view nodes.(id).engine)
          ~accepted:(conv accepted) ~decided:(conv decided) ~snapshot:None
      in
      nodes.(id).engine <- engine;
      up.(id) <- true;
      awaiting_recovery.(id) <- true;
      fds.(id) <- Failure_detector.create cfg ~me:id ~now_ns:(ns_now ());
      Failure_detector.set_view fds.(id) ~view:(Paxos.view engine)
        ~now_ns:(ns_now ());
      (* Lease state is volatile: a crashed holder comes back with
         nothing — it must re-earn a quorum of grants before serving
         reads again, and its apply recency restarts stale. *)
      if p.lease then
        leases.(id) <- Lease.create cfg ~me:id ~view:(Paxos.view engine);
      (* Service state is rebuilt from the recovered log (the WAL
         stand-in): frontier and executed-prefix log come back from the
         replayed Executes; no replies are re-sent. *)
      Hashtbl.reset exec_frontier.(id);
      exec_logs.(id) <- [];
      List.iter
        (fun action ->
           match action with
           | Paxos.Execute { value; _ } -> (
               match value with
               | Value.Noop | Value.Reconfig _ -> ()
               | Value.Batch b ->
                 List.iter
                   (fun (r : Client_msg.request) ->
                      ignore (chaos_admit nodes.(id) r.id))
                   b.requests)
           | Paxos.Send { dest; msg } ->
             List.iter
               (fun d ->
                  if d <> id then
                    chaos_deliver nodes.(id) d msg (approx_size msg))
               dest
           | Paxos.Schedule_rtx { key; dest; msg } -> arm_rtx id key dest msg
           | Paxos.Cancel_rtx key -> Hashtbl.remove rtx_tbls.(id) key
           | Paxos.View_changed { view; i_am_leader; _ } ->
             if view > 0 then Hashtbl.replace views_seen view ();
             if i_am_leader then leader_hint := id
           | Paxos.Membership_changed { membership; _ } ->
             (* Replayed adoption: re-arm the fresh failure detector's
                peer set (counters are not re-bumped — the adoption was
                already counted before the crash). *)
             Failure_detector.set_membership fds.(id) membership
               ~now_ns:(ns_now ())
           | Paxos.Install_snapshot _ -> ())
        replays
    end
  in
  if chaos then
    List.iter
      (function
        | Sfault.Crash { node = id; at; restart_at } ->
          Engine.schedule_at eng at (fun () -> do_crash id);
          (match restart_at with
           | Some rt -> Engine.schedule_at eng rt (fun () -> do_restart id)
           | None -> ())
        | Sfault.Partition { group_a; group_b; at; heal_at; symmetric } ->
          Engine.schedule_at eng at (fun () ->
              Sfault.set_partition net ~group_a ~group_b ~symmetric true);
          Engine.schedule_at eng heal_at (fun () ->
              Sfault.set_partition net ~group_a ~group_b ~symmetric false)
        | Sfault.Link _ -> ()   (* standing rule, consulted per segment *)
        | Sfault.Fsync_stall { node = id; at; until_t } ->
          Engine.schedule_at eng at (fun () ->
              match nodes.(id).disk with
              | Some d -> Sdisk.stall d ~until:until_t
              | None -> ()))
      p.faults;
  (* Autotune mirror: the leader's batcher policies read their BSZ limit
     through this cell and the controller process below retunes it (and
     the engine window) every [tune_epoch] of simulated time. With
     [auto_tune = false] the cell does not exist, no controller process
     is spawned and every policy takes the static-config path — the
     event stream is byte-for-byte the old one (golden-pinned). *)
  let tuned_bsz = if p.auto_tune then Some (Atomic.make p.bsz) else None in
  let batcher_policies =
    (* Only the leader batches client traffic, so only its policies are
       tuned; distinct [src] spaces keep batch ids unique (as before). *)
    Array.init p.n (fun id ->
        Array.init p.n_batchers (fun bidx ->
            Batcher.create
              ?tuned_bsz:(if id = leader.id then tuned_bsz else None)
              cfg ~src:(id + (bidx * 64))))
  in
  (* Signals for the controller, accumulated off the measurement path:
     completed requests (throughput) and leader propose→decide latency.
     Only touched under [auto_tune]. *)
  let tune_completed = ref 0 in
  let tune_lat_sum = ref 0. and tune_lat_n = ref 0 in
  (* Two idle nodes for the Table II "other <-> other" probe. *)
  let idle_a = Nic.create eng ~pkt_rate:p.profile.pkt_rate
      ~bandwidth:p.profile.bandwidth ~name:"idle-a" () in
  let idle_b = Nic.create eng ~pkt_rate:p.profile.pkt_rate
      ~bandwidth:p.profile.bandwidth ~name:"idle-b" () in
  (* Register a simulated thread for profiling; under tracing, also give
     it a track and bridge Sstats state changes to merged spans
     (cat = the owning module, name = the state). Returns the track so
     protocol/batcher can add instant events on their own timeline. *)
  let register node st =
    node.threads <- node.threads @ [ st ];
    match tracer with
    | None -> None
    | Some t ->
      let tname = Sstats.name st in
      let trk =
        Msmr_obs.Trace.track t ~pid:node.id
          ~pname:(Printf.sprintf "replica-%d" node.id) ~name:tname ()
      in
      let cat = Msmr_obs.Taxonomy.module_of_thread tname in
      track_of := (st, trk) :: !track_of;
      Sstats.attach_tracer st (fun state t0 t1 ->
          let ts = ns_of t0 in
          Msmr_obs.Trace.complete trk ~cat ~name:(state_name state)
            ~ts_ns:ts ~dur_ns:(Int64.sub (ns_of t1) ts) ());
      Some trk
  in
  (* Lock-contention hook: an instant on the blocked thread's track. *)
  let on_contended lock st =
    match List.assq_opt st !track_of with
    | Some trk -> Msmr_obs.Trace.instant trk ~cat:"lock" (Slock.name lock)
    | None -> ()
  in
  if Option.is_some tracer then
    Array.iter
      (fun node ->
         Squeue.set_on_contended node.dispatcher_q on_contended;
         Squeue.set_on_contended node.proposal_q on_contended)
      nodes;
  (* Queue-depth counter series live on one dedicated leader track.
     ProposalQueue is low-volume (capacity 20), so it is sampled per
     operation; the high-volume queues are sampled by the 1 ms sampler
     below to bound trace size. *)
  let queues_trk =
    Option.map
      (fun t ->
         let trk =
           Msmr_obs.Trace.track t ~pid:leader.id ~pname:"replica-0"
             ~name:"queues" ()
         in
         Squeue.set_on_length leader.proposal_q (fun len ->
             Msmr_obs.Trace.counter trk ~name:"ProposalQueue"
               (float_of_int len));
         trk)
      tracer
  in
  (* ---------------- measurement state ---------------- *)
  let measuring = ref false in
  let ce_record d_t =
    if !measuring then begin
      ce_sum := !ce_sum +. (Engine.now eng -. d_t);
      incr ce_n
    end
  in
  let completed = ref 0 in
  let lat_sum = ref 0. and lat_n = ref 0 in
  let inst_sum = ref 0. and inst_n = ref 0 in
  let batch_reqs = ref 0 and batch_bytes = ref 0 and batches = ref 0 in
  let window_gauge = Sstats.Gauge.create eng in
  let rtt_leader = ref [] and rtt_follow = ref [] and rtt_idle = ref [] in
  (* ---------------- clients ---------------- *)
  let payload = Bytes.make (max 0 (p.request_size - 16)) 'x' in
  let clients =
    Array.init p.n_clients (fun i ->
        { cid = i; next_seq = 0; sent_at = 0. })
  in
  let client_resume : (unit -> unit) option array =
    Array.make p.n_clients None
  in
  (* Reply delivery: ServiceManager -> owning ClientIO thread. *)
  let cio_of_client cid = cid mod p.client_io_threads in
  (* Promote a finished speculation whose decide has arrived: the staged
     effect becomes the ordered execution and the staged reply ships —
     no re-execution, the commit->execute gap collapses to the confirm
     hop. *)
  let spec_resolve node (id : Client_msg.request_id) d_t =
    note_exec node id;
    if (not chaos && node == leader) || (chaos && Paxos.is_leader node.engine)
    then begin
      Mailbox.push node.cio_mbs.(cio_of_client id.client_id) (Rep id);
      ce_record d_t
    end;
    sf_seq.(node.id).(id.client_id) <- -1;
    sf_done.(node.id).(id.client_id) <- false;
    sf_wait.(node.id).(id.client_id) <- -1.;
    incr spec_confirmed
  in
  (* Client process: closed loop; the request is one packet into the
     leader's RX (client machines themselves are never the bottleneck:
     1800 clients spread over 6 machines). *)
  let client_proc cl () =
    (* Stagger start so the initial burst is not one giant event spike. *)
    Engine.delay eng (1e-6 *. float_of_int cl.cid);
    let do_write () =
      let req =
        { Client_msg.id = { client_id = cl.cid; seq = cl.next_seq }; payload }
      in
      cl.sent_at <- Engine.now eng;
      Engine.suspend eng (fun resume ->
          client_resume.(cl.cid) <- Some resume;
          Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
              Nic.rx_inject leader.nic ~size:p.request_size (fun () ->
                  Mailbox.push leader.cio_mbs.(cio_of_client cl.cid) (Req req))));
      if reads_on then note_acked cl.cid cl.next_seq
    in
    (* Fast-path read: linearizable reads aim at the leaseholder;
       bounded-staleness reads spread over the whole cluster (each NIC
       serves its share — this is where read throughput stops being
       capped by one leader). A rejection (lease not yet held, follower
       not provably fresh) retries after a deterministic pause, falling
       back to the leaseholder, who can always serve. *)
    let do_read () =
      let id = { Client_msg.client_id = cl.cid; seq = cl.next_seq } in
      cl.sent_at <- Engine.now eng;
      read_floor.(cl.cid) <- last_write_acked.(cl.cid);
      let rec attempt tgt =
        read_result.(cl.cid) <- -1;
        Engine.suspend eng (fun resume ->
            client_resume.(cl.cid) <- Some resume;
            Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
                Nic.rx_inject tgt.nic ~size:p.request_size (fun () ->
                    Mailbox.push tgt.cio_mbs.(cio_of_client cl.cid) (Rd id))));
        if read_result.(cl.cid) < 0 then begin
          if !measuring then incr read_rejects;
          Engine.delay eng (p.lease_duration /. 8.);
          attempt leader
        end
      in
      (* Home replica for this client's stale reads. [cid / n] decorrelates
         it from the cio-thread choice ([cid mod client_io_threads]): with
         [cid mod n] and n = client_io_threads every read landing on node k
         would come from clients homed on cio thread k, convoying one
         ClientIO thread per node. *)
      attempt
        (if p.stale_reads then nodes.(cl.cid / p.n mod p.n) else leader);
      check_read cl.cid
    in
    let rec loop () =
      cl.next_seq <- cl.next_seq + 1;
      let is_read = is_read_op cl.next_seq in
      if is_read then do_read () else do_write ();
      if p.auto_tune then incr tune_completed;
      if !measuring then begin
        incr completed;
        if is_read then incr reads_completed;
        lat_sum := !lat_sum +. (Engine.now eng -. cl.sent_at);
        incr lat_n
      end;
      loop ()
    in
    loop ()
  in
  (* Chaos client: open-loop on failures — retransmits the same request
     (to whichever node it currently believes leads) after
     [chaos_client_timeout] without a reply; the at-most-once frontier on
     the replicas makes the retries idempotent. Completions also feed the
     throughput-trajectory timeline. *)
  let client_proc_chaos cl () =
    Engine.delay eng (1e-6 *. float_of_int cl.cid);
    let do_write_chaos () =
      let req =
        { Client_msg.id = { client_id = cl.cid; seq = cl.next_seq }; payload }
      in
      cl.sent_at <- Engine.now eng;
      let rec attempt () =
        let target = nodes.(!leader_hint) in
        match
          Engine.suspend_timeout eng ~timeout:p.chaos_client_timeout
            (fun resume ->
               client_resume.(cl.cid) <- Some resume;
               Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
                   if up.(target.id) then
                     Nic.rx_inject target.nic ~size:p.request_size (fun () ->
                         if up.(target.id) then
                           Mailbox.push target.cio_mbs.(cio_of_client cl.cid)
                             (Req req))))
        with
        | Engine.Value () -> ()
        | Engine.Timed_out ->
          client_resume.(cl.cid) <- None;
          incr client_retries;
          attempt ()
      in
      attempt ();
      if reads_on then note_acked cl.cid cl.next_seq
    in
    (* Chaos reads steer by the leader hint like chaos writes, so after
       a fault they keep arriving at the OLD leaseholder until a view
       change updates the hint — exactly the window where an expired
       lease must refuse rather than serve stale state. *)
    let do_read_chaos () =
      let id = { Client_msg.client_id = cl.cid; seq = cl.next_seq } in
      cl.sent_at <- Engine.now eng;
      read_floor.(cl.cid) <- last_write_acked.(cl.cid);
      let rec attempt n_try =
        let target =
          if p.stale_reads && n_try = 0 then nodes.(cl.cid / p.n mod p.n)
          else nodes.(!leader_hint)
        in
        read_result.(cl.cid) <- -1;
        match
          Engine.suspend_timeout eng ~timeout:p.chaos_client_timeout
            (fun resume ->
               client_resume.(cl.cid) <- Some resume;
               Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
                   if up.(target.id) then
                     Nic.rx_inject target.nic ~size:p.request_size (fun () ->
                         if up.(target.id) then
                           Mailbox.push target.cio_mbs.(cio_of_client cl.cid)
                             (Rd id))))
        with
        | Engine.Value () ->
          if read_result.(cl.cid) < 0 then begin
            if !measuring then incr read_rejects;
            Engine.delay eng (p.lease_duration /. 8.);
            attempt (n_try + 1)
          end
        | Engine.Timed_out ->
          client_resume.(cl.cid) <- None;
          incr client_retries;
          attempt (n_try + 1)
      in
      attempt 0;
      check_read cl.cid
    in
    let rec loop () =
      cl.next_seq <- cl.next_seq + 1;
      awaiting_seq.(cl.cid) <- cl.next_seq;
      let is_read = is_read_op cl.next_seq in
      if is_read then do_read_chaos () else do_write_chaos ();
      if p.auto_tune then incr tune_completed;
      if !measuring then begin
        incr completed;
        if is_read then incr reads_completed;
        lat_sum := !lat_sum +. (Engine.now eng -. cl.sent_at);
        incr lat_n;
        let b =
          int_of_float ((Engine.now eng -. p.warmup) /. p.chaos_bucket)
        in
        if b >= 0 && b < Array.length timeline then
          timeline.(b) <- timeline.(b) + 1
      end;
      loop ()
    in
    loop ()
  in
  (* ---------------- ClientIO threads (leader only) ---------------- *)
  let cio_proc node idx () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "ClientIO-%d" idx)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let mb = node.cio_mbs.(idx) in
    (* On overload the blocking put stalls this thread on the full
       RequestQueue - the paper's back-pressure: the ClientIO thread
       stops reading new requests. Replies queue up behind it in the
       (unbounded, push-only) mailbox, so no cycle can deadlock, and the
       queue's FIFO waiters keep the threads fair. *)
    let handle = function
      | Rep id ->
        Cpu.work node.cpu st (cost c.client_write);
        (* One packet per reply: distinct client connections do not
           share segments. *)
        Nic.send_to_wire node.nic ~size:p.reply_size (fun () ->
            (* Under chaos a stale reply (earlier seq, re-sent after a
               view change) must not complete the current request. *)
            if (not chaos) || awaiting_seq.(id.client_id) = id.seq then
              match client_resume.(id.client_id) with
              | Some resume ->
                client_resume.(id.client_id) <- None;
                resume ()
              | None -> ())
      | Req req ->
        Cpu.work node.cpu st (cost c.client_read);
        if chaos && chaos_executed node req.id then
          (* Reply-cache hit: a retried request that already executed
             (e.g. decided during a no-leader window) is answered from
             the at-most-once frontier, never re-proposed. *)
          Mailbox.push node.cio_mbs.(idx) (Rep req.id)
        else begin
          (* Early scheduling: the leader pre-dispatches the fresh
             request onto the DecisionQueue at ingress. FIFO puts the
             [Dspec] strictly ahead of its own decide, so the SM always
             opens the frame before the confirm can arrive. *)
          if spec_on
             && ((not chaos && node == leader)
                 || (chaos && Paxos.is_leader node.engine)) then
            Squeue.put node.decision_q st (Dspec { s_req = req });
          Squeue.put node.request_qs.(req.id.client_id mod p.n_batchers) st req
        end
      | Rd id ->
        (* Read fast path: straight onto the DecisionQueue — FIFO
           behind every decided-but-unapplied instance, never through
           Batcher/Protocol (and never through the reply-cache
           frontier: reads are idempotent and own no dedup slot). *)
        Cpu.work node.cpu st (cost c.client_read);
        Squeue.put node.decision_q st (Dread { r_id = id })
    in
    let rec loop () =
      let ev = Mailbox.take mb st in
      if (not chaos) || up.(node.id) then handle ev;
      loop ()
    in
    loop ()
  in
  (* ---------------- Batcher ---------------- *)
  let batcher_proc node bidx () =
    let st =
      Sstats.make_thread eng
        ~name:
          (if p.n_batchers = 1 then "Batcher"
           else Printf.sprintf "Batcher-%d" bidx)
    in
    let trk = register node st in
    let policy = batcher_policies.(node.id).(bidx) in
    let now_ns () = Int64.of_float (Engine.now eng *. 1e9) in
    let seal batch =
      Cpu.work node.cpu st (cost c.batcher_per_batch);
      (match trk with
       | Some trk ->
         Msmr_obs.Trace.instant trk ~cat:"ReplicationCore"
           ~args:
             [ ("reqs", Msmr_obs.Json.Int (Batch.request_count batch));
               ("bytes", Msmr_obs.Json.Int (Batch.size_bytes batch)) ]
           "batch-seal"
       | None -> ());
      if !measuring then begin
        incr batches;
        batch_reqs := !batch_reqs + Batch.request_count batch;
        batch_bytes := !batch_bytes + Batch.size_bytes batch
      end;
      Squeue.put node.proposal_q st batch;
      Squeue.put node.dispatcher_q st Poke
    in
    let rec loop () =
      let timeout =
        match Batcher.deadline_ns policy with
        | None -> 1.0
        | Some d ->
          Float.max 1e-5 ((Int64.to_float d /. 1e9) -. Engine.now eng)
      in
      (match Squeue.take_timeout node.request_qs.(bidx) st ~timeout with
       | Some req ->
         Cpu.work node.cpu st (cost c.batcher_per_req);
         (match Batcher.add policy req ~now_ns:(now_ns ()) with
          | Some batch -> seal batch
          | None -> ())
       | None -> (
           match Batcher.flush_due policy ~now_ns:(now_ns ()) with
           | Some batch -> seal batch
           | None -> ()));
      loop ()
    in
    loop ()
  in
  (* ---------------- Protocol ---------------- *)
  let inst_t0 : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let protocol_proc node () =
    let st = Sstats.make_thread eng ~name:"Protocol" in
    let trk = register node st in
    (* Durable modes. Sync_serial is the naive shape: the Protocol
       process itself blocks on one device fsync per persist — exactly
       what the live pipeline removes. Sync_group hands the records to
       the StableStorage process. Persists run before the actions, as
       the live persist_actions does. *)
    let persist n =
      if n > 0 then
        match p.sync_policy, node.disk, node.ss_q with
        | Params.Sync_serial, Some d, _ ->
          Sdisk.append d n;
          Sstats.set st Sstats.Blocked;
          Engine.suspend eng (fun resume -> Sdisk.fsync d resume);
          Sstats.set st Sstats.Busy
        | Params.Sync_group, _, Some q -> Squeue.put q st (Sl_log n)
        | _ -> ()
    in
    (* Under Sync_group, gated messages ride the log queue behind the
       records they depend on; everything else bypasses. *)
    let send d msg =
      match node.ss_q with
      | Some q when durability_gated msg -> Squeue.put q st (Sl_rel (d, msg))
      | _ -> Squeue.put node.send_qs.(d) st msg
    in
    let apply actions =
      persist (records_for_actions actions);
      List.iter
        (fun action ->
           match action with
           | Paxos.Send { dest; msg } ->
             List.iter
               (fun d -> if d <> node.id then send d msg)
               dest
           | Paxos.Execute { iid; value } ->
             (match trk with
              | Some trk ->
                Msmr_obs.Trace.instant trk ~cat:"ReplicationCore"
                  ~args:[ ("iid", Msmr_obs.Json.Int iid) ] "decide"
              | None -> ());
             if chaos then begin
               if awaiting_recovery.(node.id) then begin
                 awaiting_recovery.(node.id) <- false;
                 recovery_times :=
                   (Engine.now eng -. crash_time.(node.id)) :: !recovery_times
               end;
               (* Commit gaps on whichever node currently leads measure
                  the no-committing-leader window. *)
               if Paxos.is_leader node.engine then begin
                 let nw = Engine.now eng in
                 if !measuring then begin
                   let gap = nw -. !last_commit in
                   if gap > !max_gap then max_gap := gap
                 end;
                 last_commit := nw
               end
             end;
             Squeue.put node.decision_q st
               (Dec { d_iid = iid; d_value = value; d_t = Engine.now eng })
           | Paxos.Schedule_rtx { key; dest; msg } ->
             (match key with
              | Paxos.Rtx_accept (_, iid) when node == leader ->
                Hashtbl.replace inst_t0 iid (Engine.now eng)
              | _ -> ());
             if chaos then arm_rtx node.id key dest msg
           | Paxos.Cancel_rtx key ->
             if chaos then Hashtbl.remove rtx_tbls.(node.id) key;
             (match key with
              | Paxos.Rtx_accept (_, iid) when node == leader ->
                (match Hashtbl.find_opt inst_t0 iid with
                 | Some t0 ->
                   if p.auto_tune then begin
                     tune_lat_sum := !tune_lat_sum +. (Engine.now eng -. t0);
                     incr tune_lat_n
                   end;
                   if !measuring then begin
                     inst_sum := !inst_sum +. (Engine.now eng -. t0);
                     incr inst_n
                   end
                 | None -> ());
                Hashtbl.remove inst_t0 iid
              | _ -> ())
           | Paxos.View_changed { view; i_am_leader; _ } ->
             (* Conservative holder-side invalidation: whatever lease the
                old view's leader held dies with the view; grantor-side
                promises survive inside {!Lease}. Speculation frames die
                with the view too — the predicted order was this
                leader's append order, now void. *)
             if p.lease then Lease.set_view leases.(node.id) ~view;
             spec_abort_all node.id;
             if chaos then begin
               if view > 0 then Hashtbl.replace views_seen view ();
               if i_am_leader then leader_hint := node.id;
               Failure_detector.set_view fds.(node.id) ~view
                 ~now_ns:(ns_now ());
               (match vc_t0.(node.id), trk with
                | Some t0, Some trk ->
                  let ts = ns_of t0 in
                  Msmr_obs.Trace.complete trk ~cat:"ReplicationCore"
                    ~name:"ViewChange" ~ts_ns:ts
                    ~dur_ns:(Int64.sub (ns_of (Engine.now eng)) ts) ()
                | _ -> ());
               vc_t0.(node.id) <- None
             end
           | Paxos.Membership_changed { membership; _ } ->
             (* Epoch adoption: re-arm the failure detector's peer set
                and (conservatively) void any lease state — the old
                epoch's quorum no longer exists. Only reachable under
                chaos (the reconfig driver rides that gate). *)
             incr reconfigs_applied;
             Hashtbl.replace epochs_seen membership.Membership.epoch ();
             Failure_detector.set_membership fds.(node.id) membership
               ~now_ns:(ns_now ());
             if p.lease then
               leases.(node.id) <-
                 Lease.create cfg ~me:node.id
                   ~view:(Paxos.view node.engine)
           | Paxos.Install_snapshot _ -> ())
        actions
    in
    apply (Paxos.bootstrap node.engine);
    let rec loop () =
      (match Squeue.take node.dispatcher_q st with
       | PMsg (from, msg) ->
         if (not chaos) || up.(node.id) then begin
           Cpu.work node.cpu st (cost c.protocol_per_event);
           match msg with
           | Msg.Lease_ping { view; t0_ns } when p.lease ->
             (* Grantor side: promise (or refuse) on the local drifted
                clock; the grant rides the ordinary send queue so it
                shares TCP segments — and chaos drops — with protocol
                traffic. *)
             (match
                Lease.on_ping leases.(node.id) ~from ~view ~t0_ns
                  ~now_ns:(clock_ns node.id)
              with
              | Some grant -> Squeue.put node.send_qs.(from) st grant
              | None -> ())
           | Msg.Lease_grant { view; t0_ns } when p.lease ->
             ignore
               (Lease.on_grant leases.(node.id) ~from ~view ~t0_ns
                  ~quorum:lease_quorum)
           | Msg.Prepare { view; _ }
             when p.lease
                  && Lease.promise_blocks leases.(node.id)
                       ~candidate:(Types.leader_of_view ~n:p.n view)
                       ~now_ns:(clock_ns node.id) ->
             (* Promise-side enforcement: refuse to help elect a
                different leader while the promise stands (safe — Phase 1
                is retransmitted past the promise's expiry). *)
             ()
           | _ ->
             (* Promise/acceptance hits the log before the engine replies
                (mirrors the live handle's persist-before-receive). *)
             persist (records_for_msg msg);
             apply (Paxos.receive node.engine ~from msg)
         end
       | Poke -> ()
       | Suspect_ev ->
         if chaos && up.(node.id) then begin
           if
             p.lease
             && Lease.promise_blocks leases.(node.id) ~candidate:node.id
                  ~now_ns:(clock_ns node.id)
           then ()  (* deferred while promised to the leader; FD re-fires *)
           else begin
             (if vc_t0.(node.id) = None then
                vc_t0.(node.id) <- Some (Engine.now eng));
             apply (Paxos.suspect_leader node.engine)
           end
         end
       | Tick ->
         if chaos && up.(node.id) then
           apply (Paxos.tick_catchup node.engine)
       | Reconfig_cmd m ->
         if chaos && up.(node.id) then begin
           Cpu.work node.cpu st (cost c.protocol_per_event);
           apply (Paxos.propose_reconfig node.engine m)
         end);
      let rec feed () =
        if Paxos.can_propose node.engine then
          match Squeue.try_take node.proposal_q st with
          | Some batch ->
            Cpu.work node.cpu st (cost c.protocol_per_event);
            apply (Paxos.propose node.engine batch);
            feed ()
          | None -> ()
      in
      if (not chaos) || up.(node.id) then feed ();
      loop ()
    in
    loop ()
  in
  (* ---------------- ReplicaIO ---------------- *)
  let sender_proc node peer () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "ReplicaIOSnd-%d" peer)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let q = node.send_qs.(peer) in
    let rec drain_burst acc k =
      if k = 0 then List.rev acc
      else
        match Squeue.try_take q st with
        | Some m -> drain_burst (m :: acc) (k - 1)
        | None -> List.rev acc
    in
    (* Decide messages are tiny and latency-insensitive; the TCP stack
       coalesces them with the next Accept on the same connection instead
       of spending a packet each (Section VI-D3's packet accounting).
       Model: hold a Decide-only burst briefly; it rides with the next
       message, or is flushed alone after 0.5 ms of silence. *)
    let deferred = ref [] in
    let is_decide = function Msg.Decide _ -> true | _ -> false in
    let rec next_burst () =
      match
        if !deferred = [] then Some (Squeue.take q st)
        else Squeue.take_timeout q st ~timeout:0.0005
      with
      | Some first ->
        let burst = !deferred @ (first :: drain_burst [] 31) in
        deferred := [];
        if List.for_all is_decide burst then begin
          deferred := burst;
          next_burst ()
        end
        else burst
      | None ->
        let burst = !deferred in
        deferred := [];
        burst
    in
    let rec loop () =
      let burst = next_burst () in
      (* Serialise each message. *)
      let sized =
        List.map
          (fun m ->
             let size = approx_size m in
             Cpu.work node.cpu st
               (cost (c.io_ser_per_msg +. (c.io_ser_per_byte *. float_of_int size)));
             (m, size))
          burst
      in
      (* Pack into TCP segments. *)
      let flush seg_msgs seg_size =
        if seg_msgs <> [] then begin
          let msgs = List.rev seg_msgs in
          if not chaos then
            Nic.send node.nic ~dst:nodes.(peer).nic ~size:seg_size (fun () ->
                List.iter
                  (fun (m, _) -> Mailbox.push nodes.(peer).rcv_mbs.(node.id) (node.id, m))
                  msgs)
          else if up.(node.id) then begin
            Failure_detector.note_send fds.(node.id) ~dest:peer
              ~now_ns:(ns_now ());
            (* Chaos applies per TCP segment at the NIC boundary: the
               whole segment is dropped / delayed / duplicated, exactly
               like a lost or reordered frame. *)
            List.iter
              (fun extra ->
                 let send () =
                   Nic.send node.nic ~dst:nodes.(peer).nic ~size:seg_size
                     (fun () ->
                        if up.(peer) then
                          List.iter
                            (fun (m, _) ->
                               Mailbox.push nodes.(peer).rcv_mbs.(node.id)
                                 (node.id, m))
                            msgs)
                 in
                 if extra <= 0. then send ()
                 else Engine.schedule_at eng (Engine.now eng +. extra) send)
              (Sfault.deliveries net ~src:node.id ~now:(Engine.now eng)
                 ~dst:peer)
          end
        end
      in
      let seg, size =
        List.fold_left
          (fun (seg, size) (m, s) ->
             if size > 0 && size + s > segment_payload then begin
               flush seg size;
               ([ (m, s) ], s)
             end
             else ((m, s) :: seg, size + s))
          ([], 0) sized
      in
      flush seg size;
      loop ()
    in
    loop ()
  in
  let receiver_proc node peer () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "ReplicaIORcv-%d" peer)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let mb = node.rcv_mbs.(peer) in
    let rec loop () =
      let from, msg = Mailbox.take mb st in
      if chaos then
        Failure_detector.note_recv fds.(node.id) ~from ~now_ns:(ns_now ());
      Cpu.work node.cpu st
        (cost
           (c.io_deser_per_msg
            +. (c.io_deser_per_byte *. float_of_int (approx_size msg))));
      Squeue.put node.dispatcher_q st (PMsg (from, msg));
      loop ()
    in
    loop ()
  in
  (* ---------------- StableStorage (Sync_group) ---------------- *)
  (* Mirror of the live StableStorage thread: drain a burst from the
     log queue, pay one device fsync for every record in it (group
     commit), then forward the gated sends. Burst bound 256 matches the
     live loop. *)
  let ss_proc node () =
    let st = Sstats.make_thread eng ~name:"StableStorage" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let q = Option.get node.ss_q in
    let d = Option.get node.disk in
    let rec drain acc k =
      if k = 0 then List.rev acc
      else
        match Squeue.try_take q st with
        | Some ev -> drain (ev :: acc) (k - 1)
        | None -> List.rev acc
    in
    let rec loop () =
      let first = Squeue.take q st in
      let burst = first :: drain [] 255 in
      List.iter (function Sl_log n -> Sdisk.append d n | Sl_rel _ -> ()) burst;
      (* A release whose record was covered by an earlier burst's fsync
         needs no new sync — only flush when something is pending. *)
      if Sdisk.has_pending d then begin
        Sstats.set st Sstats.Blocked;
        Engine.suspend eng (fun resume -> Sdisk.fsync d resume);
        Sstats.set st Sstats.Busy
      end;
      List.iter
        (function
          | Sl_rel (dest, msg) -> Squeue.put node.send_qs.(dest) st msg
          | Sl_log _ -> ())
        burst;
      loop ()
    in
    loop ()
  in
  (* ---------------- FailureDetector (chaos only) ---------------- *)
  (* Mirrors the live FailureDetector thread: polls the pure policy on a
     half-interval cadence; leader verdicts become Heartbeats through the
     ordinary send queues (so they share segments and chaos like any
     protocol message), follower verdicts become Suspect_ev dispatcher
     events. A Tick per poll drives [Paxos.tick_catchup]. *)
  let fd_proc node () =
    let st = Sstats.make_thread eng ~name:"FailureDetector" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let rec loop () =
      Engine.delay eng (p.chaos_fd_interval /. 2.);
      if up.(node.id) then begin
        List.iter
          (fun verdict ->
             match verdict with
             | Failure_detector.Heartbeat_to peers ->
               if Paxos.is_leader node.engine then begin
                 let msg =
                   Msg.Heartbeat
                     { view = Paxos.view node.engine;
                       first_undecided =
                         Log.first_undecided (Paxos.log node.engine) }
                 in
                 List.iter
                   (fun pr -> Squeue.put node.send_qs.(pr) st msg)
                   peers
               end
             | Failure_detector.Suspect _ ->
               Squeue.put node.dispatcher_q st Suspect_ev)
          (Failure_detector.poll fds.(node.id) ~now_ns:(ns_now ()));
        Squeue.put node.dispatcher_q st Tick
      end;
      loop ()
    in
    loop ()
  in
  (* ---------------- ServiceManager (Replica thread) ---------------- *)
  (* Work-stealing model shared state: total successful token steals
     across all nodes' executor pools, over the whole run (warm-up
     included: at saturation every executor stays busy and steals
     happen only while load ramps or shifts, so the ramp is where the
     redistribution lives). *)
  let sm_steals = ref 0 in
  (* Deterministic "hot client" classification for [p.skew]: a Knuth
     multiplicative hash spreads client ids evenly, so the hot set is
     ≈ skew * n_clients without any RNG. Hot clients model a zipfian
     conflict-key distribution: under fixed routing they all convoy on
     executor 0. *)
  let is_hot cid =
    p.skew > 0.
    && (cid * 2654435761) land 1023 < int_of_float (p.skew *. 1024.)
  in
  (* Serve one fast-path read from local executed state. The read sat in
     the DecisionQueue FIFO behind every instance decided before it
     arrived — by the time the SM pops it, the apply frontier covers the
     lease-covered commit point, which is the linearizable wait. The
     leaseholder always answers (its lease proves no newer write can
     have been decided elsewhere); a follower answers only a
     bounded-staleness read it can prove fresh by apply recency. Anyone
     else replies a reject (same packet cost) and the client retries
     toward the leaseholder. *)
  let sm_read node st (r_id : Client_msg.request_id) =
    Cpu.work node.cpu st (cost c.exec_per_req);
    if (not chaos) || up.(node.id) then begin
      (* A read must never observe an unconfirmed optimistic effect on
         its key: roll the reader's open frame back first (the register
         service keys by client id, so only the reader's own frame could
         be visible). *)
      spec_abort_frame node.id r_id.client_id;
      let serve =
        Lease.held leases.(node.id) ~now_ns:(clock_ns node.id)
        || (p.stale_reads
            && node_clock node.id -. last_apply_c.(node.id)
               <= p.staleness_bound)
      in
      if serve then begin
        read_result.(r_id.client_id) <- ver.(node.id).(r_id.client_id);
        read_serve_t.(r_id.client_id) <- Engine.now eng
      end;
      Mailbox.push node.cio_mbs.(cio_of_client r_id.client_id) (Rep r_id)
    end
  in
  (* exec_threads = 1: the paper's serial ServiceManager, unchanged. *)
  let sm_proc node () =
    let st = Sstats.make_thread eng ~name:"Replica" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let rec loop () =
      (match Squeue.take node.decision_q st with
       | Dread { r_id } -> sm_read node st r_id
       | Dspec _ -> ()   (* serial SM never speculates ([spec_on] false) *)
       | Dec d -> (
           match d.d_value with
           | Value.Noop | Value.Reconfig _ -> ()
           | Value.Batch batch ->
             List.iter
               (fun (req : Client_msg.request) ->
                  if not chaos then begin
                    Cpu.work node.cpu st (cost c.exec_per_req);
                    note_exec node req.id;
                    if node == leader then
                      Mailbox.push node.cio_mbs.(cio_of_client req.id.client_id)
                        (Rep req.id)
                  end
                  else if up.(node.id) && chaos_admit node req.id then begin
                    Cpu.work node.cpu st (cost c.exec_per_req);
                    note_exec node req.id;
                    if Paxos.is_leader node.engine then
                      Mailbox.push node.cio_mbs.(cio_of_client req.id.client_id)
                        (Rep req.id)
                  end)
               batch.requests));
      loop ()
    in
    loop ()
  in
  (* exec_threads > 1: the Replica thread becomes a scheduler over a pool
     of Executor threads (the live runtime's conflict-aware ServiceManager).
     Requests route by client id — the stand-in for the conflict key, so
     one client's commands keep their decide order on one executor — and
     a deterministic fraction [conflict_ratio] of requests is classified
     Global: each quiesces the pool and executes on the scheduler. *)
  let sm_parallel node () =
    let st = Sstats.make_thread eng ~name:"Replica" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let exec_mbs : exec_item Mailbox.t array =
      Array.init p.exec_threads (fun _ -> Mailbox.create eng ())
    in
    let pending = ref 0 in
    let barrier_waiter : (unit -> unit) option ref = ref None in
    let executor_proc idx () =
      let est =
        Sstats.make_thread eng ~name:(Printf.sprintf "Executor-%d" idx)
      in
      let (_ : Msmr_obs.Trace.track option) = register node est in
      let rec loop () =
        (match Mailbox.take exec_mbs.(idx) est with
         | E_exec (req, d_t) ->
           Cpu.work node.cpu est (cost c.exec_per_req);
           note_exec node req.id;
           if (not chaos && node == leader)
              || (chaos && Paxos.is_leader node.engine) then begin
             Mailbox.push node.cio_mbs.(cio_of_client req.id.client_id)
               (Rep req.id);
             ce_record d_t
           end
         | E_spec req ->
           (* Optimistic execution against predicted (ingress) order.
              The frame may have been aborted while this item sat in the
              mailbox — then the work is wasted but nothing is written. *)
           let cid = req.id.client_id in
           Cpu.work node.cpu est (cost c.exec_per_req);
           if sf_seq.(node.id).(cid) = req.id.seq
              && not sf_done.(node.id).(cid) then begin
             sf_undo.(node.id).(cid) <- ver.(node.id).(cid);
             ver.(node.id).(cid) <- req.id.seq;
             sf_done.(node.id).(cid) <- true;
             let w = sf_wait.(node.id).(cid) in
             if w >= 0. then spec_resolve node req.id w
           end);
        decr pending;
        (if !pending = 0 then
           match !barrier_waiter with
           | Some resume ->
             barrier_waiter := None;
             resume ()
           | None -> ());
        loop ()
      in
      loop ()
    in
    for i = 0 to p.exec_threads - 1 do
      Engine.spawn eng
        ~name:(Printf.sprintf "exec-%d-%d" node.id i)
        (executor_proc i)
    done;
    let quiesce () =
      if !pending > 0 then begin
        Sstats.set st Sstats.Waiting;
        Engine.suspend eng (fun resume -> barrier_waiter := Some resume);
        Sstats.set st Sstats.Busy
      end
    in
    (* floor-crossing pattern: request k is Global iff
       floor(k * ratio) > floor((k-1) * ratio) — deterministic, evenly
       spread, exactly ratio * total requests in the long run. *)
    let total = ref 0 in
    let classify_global () =
      incr total;
      p.conflict_ratio > 0.
      && int_of_float (float_of_int !total *. p.conflict_ratio)
         > int_of_float (float_of_int (!total - 1) *. p.conflict_ratio)
    in
    let route cid = if is_hot cid then 0 else cid mod p.exec_threads in
    let dispatch d_t (req : Client_msg.request) =
      if chaos && not (up.(node.id) && chaos_admit node req.id) then ()
      else if classify_global () then begin
        (* Undecided speculation rolls back before the barrier; frames
           whose decide already arrived are committed work in flight and
           the quiescence wait lets them promote first. *)
        spec_abort_undecided node.id;
        quiesce ();
        Cpu.work node.cpu st (cost c.exec_per_req);
        note_exec node req.id;
        if (not chaos && node == leader)
           || (chaos && Paxos.is_leader node.engine) then begin
          Mailbox.push node.cio_mbs.(cio_of_client req.id.client_id)
            (Rep req.id);
          ce_record d_t
        end
      end
      else begin
        let cid = req.id.client_id in
        if spec_on && sf_seq.(node.id).(cid) = req.id.seq
           && not (force_mispredict ()) then begin
          (* Prediction held: confirm. Either the optimistic execution
             already finished (promote now) or it is still in flight
             (leave the decide instant; the executor promotes). *)
          Cpu.work node.cpu st (cost c.dispatch_per_req);
          if sf_done.(node.id).(cid) then spec_resolve node req.id d_t
          else sf_wait.(node.id).(cid) <- d_t
        end
        else begin
          spec_abort_frame node.id cid;
          Cpu.work node.cpu st (cost c.dispatch_per_req);
          incr pending;
          (* Fixed routing: hot clients convoy on executor 0 — the
             baseline the stealing pool ([sm_lanes]) is measured against.
             skew = 0 leaves this byte-for-byte the original path. The
             ordered re-execution shares the speculation's route, so
             mailbox FIFO keeps rollback before re-execution. *)
          Mailbox.push exec_mbs.(route cid) (E_exec (req, d_t))
        end
      end
    in
    let spec_admit (req : Client_msg.request) =
      let cid = req.id.client_id in
      if ((not chaos) || (up.(node.id) && not (chaos_executed node req.id)))
         && sf_seq.(node.id).(cid) < 0 then begin
        incr spec_dispatched;
        sf_seq.(node.id).(cid) <- req.id.seq;
        Cpu.work node.cpu st (cost c.dispatch_per_req);
        incr pending;
        Mailbox.push exec_mbs.(route cid) (E_spec req)
      end
    in
    let rec loop () =
      (match Squeue.take node.decision_q st with
       | Dread { r_id } -> sm_read node st r_id
       | Dspec { s_req } -> spec_admit s_req
       | Dec d -> (
           match d.d_value with
           | Value.Noop | Value.Reconfig _ -> ()
           | Value.Batch batch -> List.iter (dispatch d.d_t) batch.requests));
      loop ()
    in
    loop ()
  in
  (* exec_threads > 1 && steal: the sim mirror of the live runtime's
     work-stealing Exec_pool. Requests route to n_lanes = 8*exec_threads
     FIFO lanes by conflict key (client id); a lane with pending work is
     represented by a unique token sitting in exactly one executor's
     token queue, so per-lane decide order is preserved no matter which
     executor ends up draining the lane. An executor whose token queue
     runs dry scans the others in ring order and steals half the
     victim's tokens; hot lanes (see [is_hot]) are all homed on executor
     0, so stealing is what spreads a skewed load. Deterministic: plain
     queues, ring-order victim scan, no RNG. *)
  let sm_lanes node () =
    let st = Sstats.make_thread eng ~name:"Replica" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let n_lanes = 8 * p.exec_threads in
    let lanes : exec_item Queue.t array =
      Array.init n_lanes (fun _ -> Queue.create ())
    in
    (* Requests routed to the lane and not yet executed. The token for a
       lane exists (in some token queue, or held by a draining executor)
       iff lane_pending > 0 — the invariant that makes a token's right
       to drain its lane exclusive. *)
    let lane_pending = Array.make n_lanes 0 in
    let token_qs : int Queue.t array =
      Array.init p.exec_threads (fun _ -> Queue.create ())
    in
    let idle : (unit -> unit) option array =
      Array.make p.exec_threads None
    in
    let wake_all () =
      for i = 0 to p.exec_threads - 1 do
        match idle.(i) with
        | Some resume ->
          idle.(i) <- None;
          resume ()
        | None -> ()
      done
    in
    let pending = ref 0 in
    let barrier_waiter : (unit -> unit) option ref = ref None in
    let drain_budget = 64 in
    let executor_proc idx () =
      let est =
        Sstats.make_thread eng ~name:(Printf.sprintf "Executor-%d" idx)
      in
      let (_ : Msmr_obs.Trace.track option) = register node est in
      let my = token_qs.(idx) in
      (* Ring-order victim scan; a hit moves ceil(half) of the victim's
         tokens — steal-half amortises the scan like the live pool. *)
      let steal () =
        let stolen = ref false in
        let v = ref ((idx + 1) mod p.exec_threads) in
        while (not !stolen) && !v <> idx do
          let vq = token_qs.(!v) in
          let k = Queue.length vq in
          if k > 0 then begin
            for _ = 1 to (k + 1) / 2 do
              Queue.push (Queue.pop vq) my
            done;
            incr sm_steals;
            stolen := true
          end
          else v := (!v + 1) mod p.exec_threads
        done;
        !stolen
      in
      let rec loop () =
        if Queue.is_empty my && not (steal ()) then begin
          Sstats.set est Sstats.Waiting;
          Engine.suspend eng (fun resume -> idle.(idx) <- Some resume);
          Sstats.set est Sstats.Busy
        end
        else begin
          let lane = Queue.pop my in
          let q = lanes.(lane) in
          let budget = min drain_budget (Queue.length q) in
          for _ = 1 to budget do
            (match Queue.pop q with
             | E_exec (req, d_t) ->
               Cpu.work node.cpu est (cost c.exec_per_req);
               note_exec node req.id;
               if (not chaos && node == leader)
                  || (chaos && Paxos.is_leader node.engine) then begin
                 Mailbox.push node.cio_mbs.(cio_of_client req.id.client_id)
                   (Rep req.id);
                 ce_record d_t
               end
             | E_spec req ->
               (* Optimistic execution in lane order (= per-key predicted
                  order); a frame aborted while queued executes as a
                  no-op. *)
               let cid = req.id.client_id in
               Cpu.work node.cpu est (cost c.exec_per_req);
               if sf_seq.(node.id).(cid) = req.id.seq
                  && not sf_done.(node.id).(cid) then begin
                 sf_undo.(node.id).(cid) <- ver.(node.id).(cid);
                 ver.(node.id).(cid) <- req.id.seq;
                 sf_done.(node.id).(cid) <- true;
                 let w = sf_wait.(node.id).(cid) in
                 if w >= 0. then spec_resolve node req.id w
               end);
            decr pending;
            if !pending = 0 then
              match !barrier_waiter with
              | Some resume ->
                barrier_waiter := None;
                resume ()
              | None -> ()
          done;
          (* Subtract only now: while the token is held, the scheduler
             sees lane_pending > 0 and mints no duplicate — same
             "decrement after exec" rule as the live pool. *)
          lane_pending.(lane) <- lane_pending.(lane) - budget;
          if lane_pending.(lane) > 0 then begin
            Queue.push lane my;
            (* The re-queued token (and any others we hold) is fair
               game again: let parked peers retry their steal scan. *)
            wake_all ()
          end
        end;
        loop ()
      in
      loop ()
    in
    for i = 0 to p.exec_threads - 1 do
      Engine.spawn eng
        ~name:(Printf.sprintf "exec-%d-%d" node.id i)
        (executor_proc i)
    done;
    let quiesce () =
      if !pending > 0 then begin
        Sstats.set st Sstats.Waiting;
        Engine.suspend eng (fun resume -> barrier_waiter := Some resume);
        Sstats.set st Sstats.Busy
      end
    in
    let total = ref 0 in
    let classify_global () =
      incr total;
      p.conflict_ratio > 0.
      && int_of_float (float_of_int !total *. p.conflict_ratio)
         > int_of_float (float_of_int (!total - 1) *. p.conflict_ratio)
    in
    (* Hot lanes are exactly the multiples of exec_threads below
       8*exec_threads: all homed on executor 0. *)
    let lane_of cid =
      if is_hot cid then p.exec_threads * (cid mod 8) else cid mod n_lanes
    in
    let push_lane lane item =
      Queue.push item lanes.(lane);
      lane_pending.(lane) <- lane_pending.(lane) + 1;
      if lane_pending.(lane) = 1 then begin
        (* 0 -> 1: mint the lane's token on its home executor and wake
           the pool so an idle peer can steal it. *)
        Queue.push lane token_qs.(lane mod p.exec_threads);
        wake_all ()
      end
    in
    let dispatch d_t (req : Client_msg.request) =
      if chaos && not (up.(node.id) && chaos_admit node req.id) then ()
      else if classify_global () then begin
        spec_abort_undecided node.id;
        quiesce ();
        Cpu.work node.cpu st (cost c.exec_per_req);
        note_exec node req.id;
        if (not chaos && node == leader)
           || (chaos && Paxos.is_leader node.engine) then begin
          Mailbox.push node.cio_mbs.(cio_of_client req.id.client_id)
            (Rep req.id);
          ce_record d_t
        end
      end
      else begin
        let cid = req.id.client_id in
        if spec_on && sf_seq.(node.id).(cid) = req.id.seq
           && not (force_mispredict ()) then begin
          Cpu.work node.cpu st (cost c.dispatch_per_req);
          if sf_done.(node.id).(cid) then spec_resolve node req.id d_t
          else sf_wait.(node.id).(cid) <- d_t
        end
        else begin
          (* Lane FIFO keeps the rollback (the aborted [E_spec] becomes
             a no-op) strictly before this ordered re-execution. *)
          spec_abort_frame node.id cid;
          Cpu.work node.cpu st (cost c.dispatch_per_req);
          incr pending;
          push_lane (lane_of cid) (E_exec (req, d_t))
        end
      end
    in
    let spec_admit (req : Client_msg.request) =
      let cid = req.id.client_id in
      if ((not chaos) || (up.(node.id) && not (chaos_executed node req.id)))
         && sf_seq.(node.id).(cid) < 0 then begin
        incr spec_dispatched;
        sf_seq.(node.id).(cid) <- req.id.seq;
        Cpu.work node.cpu st (cost c.dispatch_per_req);
        incr pending;
        push_lane (lane_of cid) (E_spec req)
      end
    in
    let rec loop () =
      (match Squeue.take node.decision_q st with
       | Dread { r_id } -> sm_read node st r_id
       | Dspec { s_req } -> spec_admit s_req
       | Dec d -> (
           match d.d_value with
           | Value.Noop | Value.Reconfig _ -> ()
           | Value.Batch batch -> List.iter (dispatch d.d_t) batch.requests));
      loop ()
    in
    loop ()
  in
  (* Lease renewal driver: polls [ping_due] on the local drifted clock
     and, while this node leads, broadcasts the renewal ping down the
     ordinary send queues (so pings share TCP segments — and chaos
     drops — with protocol traffic; grants come back through the
     Protocol thread). One process per node: leadership moves under
     chaos. *)
  let lease_proc node () =
    let st = Sstats.make_thread eng ~name:"Lease" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let rec loop () =
      let leading =
        if chaos then up.(node.id) && Paxos.is_leader node.engine
        else node == leader
      in
      if leading && Lease.ping_due leases.(node.id) ~now_ns:(clock_ns node.id)
      then begin
        Cpu.work node.cpu st (cost c.protocol_per_event);
        let ping = Lease.make_ping leases.(node.id) ~now_ns:(clock_ns node.id) in
        for d = 0 to p.n - 1 do
          if d <> node.id then Squeue.put node.send_qs.(d) st ping
        done
      end;
      Engine.delay eng (p.lease_duration /. 12.);
      loop ()
    in
    loop ()
  in
  (* ---------------- reconfig driver ---------------- *)
  (* The sim's stand-in for an operator driving Cluster.join /
     decommission: walk the voter set to each scheduled target one
     consensus-ordered step at a time — add missing nodes as learners,
     promote a learner once its log has caught up to within a few
     windows of the leader's, then remove surplus members. Every step
     is submitted to whichever node currently claims leadership (so the
     driver survives crashes and view changes mid-reconfig) and simply
     retried on a fixed cadence until the target epoch is adopted. *)
  let reconfig_driver () =
    let st = Sstats.make_thread eng ~name:"ReconfigDriver" in
    let caught_up q ld_engine =
      Log.first_undecided (Paxos.log ld_engine)
      - Log.first_undecided (Paxos.log nodes.(q).engine)
      <= 4 * cfg.Config.window
    in
    List.iter
      (fun (at, target) ->
        let target = List.sort_uniq compare target in
        Sstats.set st Sstats.Waiting;
        let wait = at -. Engine.now eng in
        if wait > 0. then Engine.delay eng wait;
        let rec step () =
          Sstats.set st Sstats.Busy;
          let ld = !leader_hint in
          let engine = nodes.(ld).engine in
          let m = Paxos.membership engine in
          if m.Membership.voters = target && m.Membership.learners = []
          then ()
          else begin
            (if
               up.(ld)
               && Paxos.is_leader engine
               && not (Paxos.reconfig_in_flight engine)
             then
               let next =
                 match
                   List.filter
                     (fun q -> not (Membership.is_member m q))
                     target
                 with
                 | q :: _ -> Membership.add_learner m q
                 | [] -> (
                   match List.filter (Membership.is_learner m) target with
                   | q :: _ ->
                     if caught_up q engine then Membership.promote m q
                     else None
                   | [] -> (
                     match
                       List.filter
                         (fun q -> not (List.mem q target))
                         (Membership.members m)
                     with
                     | q :: _ -> Membership.remove m q
                     | [] -> None))
               in
               match next with
               | Some m' ->
                 Squeue.put nodes.(ld).dispatcher_q st (Reconfig_cmd m')
               | None -> ());
            Sstats.set st Sstats.Waiting;
            Engine.delay eng 0.02;
            step ()
          end
        in
        step ())
      p.reconfig_at;
    Sstats.set st Sstats.Other
  in
  if p.reconfig_at <> [] then
    Engine.spawn eng ~name:"reconfig-driver" reconfig_driver;
  (* ---------------- spawn everything ---------------- *)
  Array.iter
    (fun node ->
       (* Under chaos every node runs ClientIO: after a view change the
          new leader has to serve redirected clients. With the read fast
          path on, every node runs it too — bounded-staleness reads land
          on followers. *)
       if node == leader || chaos || reads_on then begin
         for i = 0 to p.client_io_threads - 1 do
           Engine.spawn eng ~name:(Printf.sprintf "cio-%d" i) (cio_proc node i)
         done
       end;
       for b = 0 to p.n_batchers - 1 do
         Engine.spawn eng ~name:"batcher" (batcher_proc node b)
       done;
       Engine.spawn eng ~name:"protocol" (protocol_proc node);
       if node.ss_q <> None then Engine.spawn eng ~name:"ss" (ss_proc node);
       if chaos then Engine.spawn eng ~name:"fd" (fd_proc node);
       if p.lease then Engine.spawn eng ~name:"lease" (lease_proc node);
       Engine.spawn eng ~name:"sm"
         (if p.exec_threads > 1 then
            if p.steal then sm_lanes node else sm_parallel node
          else sm_proc node);
       for peer = 0 to p.n - 1 do
         if peer <> node.id then begin
           Engine.spawn eng ~name:"snd" (sender_proc node peer);
           Engine.spawn eng ~name:"rcv" (receiver_proc node peer)
         end
       done)
    nodes;
  Array.iter
    (fun cl ->
       Engine.spawn eng ~name:"client"
         (if chaos then client_proc_chaos cl else client_proc cl))
    clients;
  (* Autotune controller process (leader, simulated time). The policy is
     the same pure Autotune module the live Protocol thread ticks; the
     epoch cadence is the engine clock, so the tuned trajectory is a
     deterministic function of the parameters. *)
  let final_bsz = ref p.bsz and final_wnd = ref p.wnd in
  if p.auto_tune then
    Engine.spawn eng ~name:"autotune" (fun () ->
        let at =
          Autotune.create
            ~params:Autotune.{ default_params with
                               latency_bound_s = 0.05;
                               queue_high = 512 }
            ~bsz0:p.bsz ~wnd0:p.wnd ()
        in
        let last_completed = ref !tune_completed in
        let last_seals =
          ref Batcher.{ seals_size = 0; seals_delay = 0; sealed_bytes = 0;
                        limit_bytes = 0 }
        in
        let rec loop () =
          Engine.delay eng p.tune_epoch;
          let seals =
            Array.fold_left
              (fun acc b ->
                 let s = Batcher.seal_stats b in
                 Batcher.{
                   seals_size = acc.seals_size + s.seals_size;
                   seals_delay = acc.seals_delay + s.seals_delay;
                   sealed_bytes = acc.sealed_bytes + s.sealed_bytes;
                   limit_bytes = acc.limit_bytes + s.limit_bytes })
              Batcher.{ seals_size = 0; seals_delay = 0; sealed_bytes = 0;
                        limit_bytes = 0 }
              batcher_policies.(leader.id)
          in
          let prev = !last_seals in
          let d_bytes = seals.Batcher.sealed_bytes - prev.Batcher.sealed_bytes in
          let d_limit = seals.Batcher.limit_bytes - prev.Batcher.limit_bytes in
          let now_completed = !tune_completed in
          let signals =
            Autotune.{
              s_window_in_use = Paxos.window_in_use leader.engine;
              s_proposal_queue = Squeue.length leader.proposal_q;
              s_log_queue =
                (match leader.ss_q with
                 | Some q -> Squeue.length q
                 | None -> 0);
              s_seals_size =
                seals.Batcher.seals_size - prev.Batcher.seals_size;
              s_seals_delay =
                seals.Batcher.seals_delay - prev.Batcher.seals_delay;
              s_batch_fill =
                (if d_limit = 0 then 0.
                 else float_of_int d_bytes /. float_of_int d_limit);
              s_throughput =
                float_of_int (now_completed - !last_completed)
                /. p.tune_epoch;
              s_commit_latency_s =
                (if !tune_lat_n = 0 then 0.
                 else !tune_lat_sum /. float_of_int !tune_lat_n);
            }
          in
          Autotune.tick at signals;
          (match tuned_bsz with
           | Some a -> Atomic.set a (Autotune.bsz at)
           | None -> ());
          Paxos.set_window leader.engine (Autotune.wnd at);
          final_bsz := Autotune.bsz at;
          final_wnd := Autotune.wnd at;
          last_completed := now_completed;
          last_seals := seals;
          tune_lat_sum := 0.;
          tune_lat_n := 0;
          loop ()
        in
        loop ());
  (* Sampler: window occupancy each millisecond; RTT probes each 20 ms. *)
  Engine.spawn eng ~name:"sampler" (fun () ->
      let rec loop () =
        Engine.delay eng 0.001;
        Sstats.Gauge.update window_gauge
          (float_of_int (Paxos.window_in_use leader.engine));
        (match queues_trk with
         | Some trk ->
           let open Msmr_obs.Trace in
           counter trk ~name:"window"
             (float_of_int (Paxos.window_in_use leader.engine));
           counter trk ~name:"DispatcherQueue"
             (float_of_int (Squeue.length leader.dispatcher_q));
           counter trk ~name:"DecisionQueue"
             (float_of_int (Squeue.length leader.decision_q));
           counter trk ~name:"RequestQueue"
             (Array.fold_left
                (fun acc q -> acc +. float_of_int (Squeue.length q))
                0. leader.request_qs)
         | None -> ());
        loop ()
      in
      loop ());
  Engine.spawn eng ~name:"prober" (fun () ->
      let rec loop () =
        Engine.delay eng 0.02;
        if !measuring && p.n >= 2 then begin
          Nic.rtt_probe leader.nic ~dst:nodes.(1).nic (fun rtt ->
              rtt_leader := rtt :: !rtt_leader);
          if p.n >= 3 then
            Nic.rtt_probe nodes.(1).nic ~dst:nodes.(2).nic (fun rtt ->
                rtt_follow := rtt :: !rtt_follow);
          Nic.rtt_probe idle_a ~dst:idle_b (fun rtt ->
              rtt_idle := rtt :: !rtt_idle)
        end;
        loop ()
      in
      loop ());
  (* ---------------- run: warm-up, reset, measure ---------------- *)
  Engine.run eng ~until:p.warmup;
  measuring := true;
  completed := 0;
  lat_sum := 0.; lat_n := 0;
  inst_sum := 0.; inst_n := 0;
  batch_reqs := 0; batch_bytes := 0; batches := 0;
  reads_completed := 0; read_rejects := 0;
  if chaos then begin last_commit := p.warmup; max_gap := 0. end;
  Sstats.Gauge.reset window_gauge;
  Array.iter
    (fun node ->
       List.iter Sstats.reset node.threads;
       Cpu.reset_consumed node.cpu;
       Nic.reset_counters node.nic;
       Array.iter Squeue.reset_stats node.request_qs;
       Squeue.reset_stats node.proposal_q;
       Squeue.reset_stats node.dispatcher_q;
       Squeue.reset_stats node.decision_q;
       (match node.ss_q with Some q -> Squeue.reset_stats q | None -> ());
       (match node.disk with Some d -> Sdisk.reset_counters d | None -> ()))
    nodes;
  (* Drop warm-up events: [Sstats.reset] already restarted the open
     spans, so the retained trace covers exactly the measured window and
     its span totals match the Sstats integrals. *)
  (match tracer with Some t -> Msmr_obs.Trace.clear t | None -> ());
  Engine.run eng ~until:(p.warmup +. p.duration);
  (* Close the still-open state spans so they appear in the export. *)
  Array.iter
    (fun node -> List.iter Sstats.flush_tracer node.threads)
    nodes;
  (* ---------------- collect ---------------- *)
  let dur = p.duration in
  let mean = function [] -> 0. | l ->
    List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  let report node =
    let threads = List.map (fun st -> (Sstats.name st, Sstats.totals st)) node.threads in
    let blocked =
      List.fold_left (fun acc (_, (x : Sstats.totals)) -> acc +. x.blocked) 0. threads
    in
    { cpu_util_pct = 100. *. Cpu.consumed node.cpu /. dur;
      blocked_pct = 100. *. blocked /. dur;
      threads }
  in
  let throughput = float_of_int !completed /. dur in
  let client_latency =
    if !lat_n = 0 then 0. else !lat_sum /. float_of_int !lat_n
  in
  (* Publish the headline results to the shared registry, so
     [--metrics FILE] dumps the same series names in live and sim mode. *)
  let m_labels =
    [ ("mode", "sim");
      ("n", string_of_int p.n);
      ("cores", string_of_int p.cores);
      ("wnd", string_of_int p.wnd);
      ("bsz", string_of_int p.bsz) ]
  in
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_throughput_rps"
    throughput;
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_client_latency_s"
    client_latency;
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_leader_cpu_pct"
    (100. *. Cpu.consumed leader.cpu /. dur);
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_events"
    (float_of_int (Engine.events_processed eng));
  (* Linearizability check over the executed-request logs: no node
     executed a request twice, and every pair of nodes agrees on the
     common prefix of the execution order. *)
  let safety_ok, executed_min, executed_max =
    if not chaos then (true, 0, 0)
    else begin
      let arrs = Array.map (fun l -> Array.of_list (List.rev l)) exec_logs in
      let ok = ref true in
      Array.iter
        (fun a ->
           let seen = Hashtbl.create (Array.length a) in
           Array.iter
             (fun r ->
                if Hashtbl.mem seen r then ok := false
                else Hashtbl.add seen r ())
             a)
        arrs;
      for i = 1 to p.n - 1 do
        let a = arrs.(0) and b = arrs.(i) in
        let m = min (Array.length a) (Array.length b) in
        for j = 0 to m - 1 do
          if a.(j) <> b.(j) then ok := false
        done
      done;
      let mn =
        Array.fold_left (fun acc a -> min acc (Array.length a)) max_int arrs
      in
      let mx =
        Array.fold_left (fun acc a -> max acc (Array.length a)) 0 arrs
      in
      (!ok, (if mn = max_int then 0 else mn), mx)
    end
  in
  let wal_syncs, wal_group_avg =
    match leader.disk with
    | Some d ->
      (* Mirror the live WAL series so durable-mode sweeps dump the
         same names from both backends. *)
      Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_wal_sync_total"
        (float_of_int (Sdisk.syncs d));
      Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_wal_group_size"
        (Sdisk.avg_group d);
      (Sdisk.syncs d, Sdisk.avg_group d)
    | None -> (0, 0.)
  in
  { throughput;
    client_latency;
    instance_latency = (if !inst_n = 0 then 0. else !inst_sum /. float_of_int !inst_n);
    avg_batch_reqs =
      (if !batches = 0 then 0. else float_of_int !batch_reqs /. float_of_int !batches);
    avg_batch_bytes =
      (if !batches = 0 then 0. else float_of_int !batch_bytes /. float_of_int !batches);
    avg_window = Sstats.Gauge.avg window_gauge;
    avg_request_queue =
      Array.fold_left (fun acc q -> acc +. Squeue.avg_length q) 0.
        leader.request_qs;
    avg_proposal_queue = Squeue.avg_length leader.proposal_q;
    avg_dispatcher_queue = Squeue.avg_length leader.dispatcher_q;
    replicas = Array.map report nodes;
    leader_tx_pps = float_of_int (Nic.tx_packets leader.nic) /. dur;
    leader_rx_pps = float_of_int (Nic.rx_packets leader.nic) /. dur;
    leader_tx_mbps = float_of_int (Nic.tx_bytes leader.nic) /. dur /. 1e6;
    leader_rx_mbps = float_of_int (Nic.rx_bytes leader.nic) /. dur /. 1e6;
    rtt_leader = mean !rtt_leader;
    rtt_followers = mean !rtt_follow;
    rtt_idle = mean !rtt_idle;
    wal_syncs;
    wal_group_avg;
    tuned_bsz_final = !final_bsz;
    tuned_wnd_final = !final_wnd;
    view_changes = Hashtbl.length views_seen;
    unavailable_s =
      (if chaos then
         Float.max !max_gap (p.warmup +. p.duration -. !last_commit)
       else 0.);
    recovery_s = List.fold_left Float.max 0. !recovery_times;
    completed = !completed;
    (* Reads are checked always (chaos or not): a fast-path answer that
       travels back in time w.r.t. the client's own acked writes is a
       safety violation wherever it happens. *)
    safety_ok = safety_ok && !stale_answers = 0;
    executed_min;
    executed_max;
    client_retries = !client_retries;
    reads_completed = !reads_completed;
    read_rejects = !read_rejects;
    stale_answers = !stale_answers;
    timeline =
      Array.mapi
        (fun i n -> (p.warmup +. (float_of_int i *. p.chaos_bucket), n))
        timeline;
    events = Engine.events_processed eng;
    group_throughputs = [| throughput |];
    globals_executed = 0;
    steals = !sm_steals;
    spec_dispatched = !spec_dispatched;
    spec_confirmed = !spec_confirmed;
    spec_aborted = !spec_aborted;
    commit_exec_latency =
      (if !ce_n = 0 then 0. else !ce_sum /. float_of_int !ce_n);
    reconfigs_applied = !reconfigs_applied;
    final_epoch =
      Array.fold_left
        (fun acc nd -> max acc (Paxos.membership nd.engine).Membership.epoch)
        0 nodes;
    trace = tracer }

(* ================================================================== *)
(* Multi-group Paxos (compartmentalized ordering path).                *)
(*                                                                     *)
(* [p.groups] independent consensus groups run side by side: each has  *)
(* its own Paxos engine, log, Batcher and decide stream on every node, *)
(* all sharing the node's physical CPU and NIC. Group [g] bootstraps   *)
(* with node [g mod n] as its leader (its Paxos starts in view [g]),   *)
(* so leadership -- and the leader's NIC load, the single-group        *)
(* throughput ceiling -- spreads round-robin over the cluster. The     *)
(* ordering pipeline is itself compartmentalized: ClientIO feeds a     *)
(* Router process that hash-partitions requests to groups; each        *)
(* group's Protocol hands multi-destination fan-outs to a ProxyLeader  *)
(* process that serialises them into the shared per-peer send queues   *)
(* (ack counting stays inside the pure engine). Cross-group Global     *)
(* commands, classified deterministically on group 0's decide stream,  *)
(* barrier every group on the executing node through a quiescence      *)
(* gate before running serially.                                       *)
(*                                                                     *)
(* The [groups <= 1] path never reaches this function: [run] keeps     *)
(* the single-group model byte-for-byte identical (golden-pinned).     *)
(* Chaos support is crash-only; [auto_tune] and [n_batchers] > 1 are   *)
(* single-group features and are ignored here.                         *)
(* ================================================================== *)

type gnode = {
  mg_id : int;
  mg_cpu : Cpu.t;
  mg_nic : Nic.t;
  mg_engines : Paxos.t array;                       (* per group; swapped on restart *)
  mg_disp_qs : disp_ev Squeue.t array;              (* per group *)
  mg_prop_qs : Batch.t Squeue.t array;              (* per group *)
  mg_req_qs : Client_msg.request Squeue.t array;    (* per group (one Batcher each) *)
  mg_dec_qs : decision_ev Squeue.t array;           (* per group *)
  mg_proxy_qs : (Types.node_id list * Msg.t) Squeue.t array;  (* per group *)
  mg_router_q : route_ev Squeue.t;
  mg_send_qs : (int * Msg.t) Squeue.t array;        (* per peer; (gid, msg) *)
  mg_rcv_mbs : (int * Types.node_id * Msg.t) Mailbox.t array; (* per peer *)
  mg_cio_mbs : cio_ev Mailbox.t array;
  mg_disk : Sdisk.t option;
  mg_ss_q : (int * ss_ev) Squeue.t option;
  mutable mg_threads : Sstats.thread list;
}

let run_multi ?(trace = false) (p : Params.t) =
  let g_count = p.groups in
  List.iter
    (function
      | Sfault.Crash _ -> ()
      | _ ->
        invalid_arg "Jpaxos_model.run: groups > 1 supports Crash faults only")
    p.faults;
  let eng = Engine.create () in
  let tracer =
    if trace then
      Some
        (Msmr_obs.Trace.create
           ~clock:(fun () -> Int64.of_float (Engine.now eng *. 1e9))
           ())
    else None
  in
  let ns_of s = Int64.of_float (s *. 1e9) in
  let state_name : Sstats.state -> string = function
    | Sstats.Busy -> "busy"
    | Sstats.Blocked -> "blocked"
    | Sstats.Waiting -> "waiting"
    | Sstats.Other -> "other"
  in
  let c = p.costs in
  let speed = p.profile.cpu_speed in
  let cost x = x /. speed in
  let net_slowdown =
    1.0
    +. (p.net_contention_per_io_thread
        *. float_of_int (max 0 (p.client_io_threads - 8)))
  in
  let pkt_rate =
    p.profile.pkt_rate /. net_slowdown *. (if p.rss then 2.0 else 1.0)
  in
  let chaos = p.faults <> [] in
  let cfg =
    { (Config.default ~n:p.n) with
      groups = g_count;
      window = p.wnd;
      max_batch_bytes = p.bsz;
      max_batch_delay_s = 0.005;
      snapshot_every = 0 }
  in
  let cfg =
    if chaos then
      { cfg with
        fd_interval_s = p.chaos_fd_interval;
        fd_timeout_s = p.chaos_fd_timeout;
        retransmit_interval_s = p.chaos_rtx_interval }
    else cfg
  in
  (* Read fast-path gate + lease config, same discipline as run_single:
     [lease = false] leaves the multi-group event stream byte-for-byte
     the lease-free one (golden-pinned). *)
  let reads_on = p.lease && p.read_ratio > 0. in
  (* Speculation gate, same golden-pin discipline. The per-group SMs are
     serial, so the multi-group mirror speculates inline on each group's
     SM thread: the optimistic execution runs off the Router's early
     [Dspec] (during the consensus window), and the decide then promotes
     the staged effect for the cost of a confirm. *)
  let spec_on = p.speculate in
  let cfg =
    if p.lease then
      { cfg with
        Config.lease_enabled = true;
        lease_duration_s = p.lease_duration;
        clock_skew_bound_s = p.clock_skew }
    else cfg
  in
  (* The Router's partition function: in the live runtime the conflict
     key hashes to a group; the simulated workload's stand-in for the
     key is the client id (one client = one key), so the hash is a mod. *)
  let group_of_client cid = cid mod g_count in
  let home_of_group g = Config.initial_leader_of_group cfg ~gid:g in
  (* Per-node drifting clocks (same model as run_single). *)
  let horizon = p.warmup +. p.duration in
  let clock_u i salt =
    float_of_int (((i * 2654435761) + (salt * 40503)) land 1023) /. 1023.
  in
  let clock_offset =
    Array.init p.n (fun i -> p.clock_skew /. 2. *. clock_u i 1)
  in
  let clock_drift =
    Array.init p.n (fun i ->
        if horizon <= 0. then 0.
        else p.clock_skew /. 2. *. clock_u i 2 /. horizon)
  in
  let node_clock i =
    let t = Engine.now eng in
    (t *. (1. +. clock_drift.(i))) +. clock_offset.(i)
  in
  let clock_ns i = int_of_float (node_clock i *. 1e9) in
  (* One lease per (node, group): each group's leader holds its own
     lease, so read capacity scales with groups x replicas. Group [g]
     bootstraps in view [g]. *)
  let leases_mg =
    Array.init p.n (fun i ->
        Array.init g_count (fun g -> Lease.create cfg ~me:i ~view:g))
  in
  let lease_quorum = (p.n / 2) + 1 in
  (* Executed registers (client ids are globally unique, so one array
     per node) and per-(node, group) apply recency. *)
  let n_cl = max 1 p.n_clients in
  let ver = Array.init p.n (fun _ -> Array.make n_cl 0) in
  let last_apply_mg = Array.init p.n (fun _ -> Array.make g_count 0.) in
  let note_exec_mg node g (id : Client_msg.request_id) =
    if reads_on || spec_on then begin
      ver.(node.mg_id).(id.client_id) <- id.seq;
      last_apply_mg.(node.mg_id).(g) <- node_clock node.mg_id
    end
  in
  (* Speculation frames (see run_single): at most one per closed-loop
     client. No confirm-wait slot here — the optimistic execution is
     inline on the SM thread, so a frame is always complete ([sf_done])
     by the time its decide can look at it. *)
  let sf_seq = Array.init p.n (fun _ -> Array.make n_cl (-1)) in
  let sf_done = Array.init p.n (fun _ -> Array.make n_cl false) in
  let sf_undo = Array.init p.n (fun _ -> Array.make n_cl 0) in
  let spec_dispatched = ref 0 in
  let spec_confirmed = ref 0 in
  let spec_aborted = ref 0 in
  let ce_sum = ref 0. and ce_n = ref 0 in
  let spec_abort_frame nid cid =
    if spec_on && sf_seq.(nid).(cid) >= 0 then begin
      if sf_done.(nid).(cid) then ver.(nid).(cid) <- sf_undo.(nid).(cid);
      sf_seq.(nid).(cid) <- -1;
      sf_done.(nid).(cid) <- false;
      incr spec_aborted
    end
  in
  let spec_abort_group nid g =
    if spec_on then
      for cid = 0 to n_cl - 1 do
        if group_of_client cid = g then spec_abort_frame nid cid
      done
  in
  let spec_abort_all nid =
    if spec_on then
      for cid = 0 to n_cl - 1 do
        spec_abort_frame nid cid
      done
  in
  let mis_total = ref 0 in
  let force_mispredict () =
    incr mis_total;
    p.mispredict_ratio > 0.
    && int_of_float (float_of_int !mis_total *. p.mispredict_ratio)
       > int_of_float (float_of_int (!mis_total - 1) *. p.mispredict_ratio)
  in
  let read_result = Array.make n_cl (-1) in
  let read_serve_t = Array.make n_cl 0. in
  let read_floor = Array.make n_cl 0 in
  let last_write_acked = Array.make n_cl 0 in
  let ack_hist : (int * float) list array = Array.make n_cl [] in
  let note_acked cid seq =
    last_write_acked.(cid) <- seq;
    let l = (seq, Engine.now eng) :: ack_hist.(cid) in
    ack_hist.(cid) <-
      (if List.length l > 64 then List.filteri (fun i _ -> i < 64) l else l)
  in
  let acked_floor cid cutoff =
    let rec go = function
      | (s, t) :: _ when t <= cutoff -> s
      | _ :: rest -> go rest
      | [] -> 0
    in
    go ack_hist.(cid)
  in
  let reads_completed = ref 0 in
  let read_rejects = ref 0 in
  let stale_answers = ref 0 in
  let check_read cid =
    let q = read_result.(cid) in
    if q >= 0 then begin
      let floor =
        if p.stale_reads then
          acked_floor cid (read_serve_t.(cid) -. p.staleness_bound)
        else read_floor.(cid)
      in
      if q < floor then incr stale_answers
    end
  in
  let is_read_op k =
    reads_on
    && int_of_float (float_of_int k *. p.read_ratio)
       > int_of_float (float_of_int (k - 1) *. p.read_ratio)
  in
  (* ---------------- nodes ---------------- *)
  let mk_node id =
    let cpu =
      Cpu.create eng ~cores:p.cores ~switch_cost:(cost c.switch_cost) ()
    in
    let nic =
      Nic.create eng ~pkt_rate ~bandwidth:p.profile.bandwidth
        ~name:(Printf.sprintf "nic-%d" id) ()
    in
    { mg_id = id; mg_cpu = cpu; mg_nic = nic;
      mg_engines =
        Array.init g_count (fun g -> Paxos.create ~view0:g cfg ~me:id);
      mg_disp_qs =
        Array.init g_count (fun _ ->
            Squeue.create eng ~cpu ~capacity:100_000 ~name:"DispatcherQueue" ());
      mg_prop_qs =
        Array.init g_count (fun _ ->
            Squeue.create eng ~cpu ~capacity:20 ~name:"ProposalQueue" ());
      mg_req_qs =
        Array.init g_count (fun _ ->
            Squeue.create eng ~cpu ~capacity:1000 ~name:"RequestQueue" ());
      mg_dec_qs =
        Array.init g_count (fun _ ->
            Squeue.create eng ~cpu ~capacity:4096 ~name:"DecisionQueue" ());
      mg_proxy_qs =
        Array.init g_count (fun _ ->
            Squeue.create eng ~cpu ~capacity:4096 ~name:"ProxyQueue" ());
      mg_router_q = Squeue.create eng ~cpu ~capacity:2000 ~name:"RouterQueue" ();
      mg_send_qs =
        Array.init p.n (fun _ ->
            Squeue.create eng ~cpu ~capacity:100_000 ~name:"SendQueue" ());
      mg_rcv_mbs = Array.init p.n (fun _ -> Mailbox.create eng ());
      mg_cio_mbs =
        Array.init p.client_io_threads (fun _ -> Mailbox.create eng ());
      mg_disk =
        (if p.sync_policy = Params.Sync_none then None
         else Some (Sdisk.create eng ~fsync_latency:p.fsync_latency));
      mg_ss_q =
        (if p.sync_policy = Params.Sync_group then
           Some (Squeue.create eng ~cpu ~capacity:8192 ~name:"LogQueue" ())
         else None);
      mg_threads = [] }
  in
  let nodes = Array.init p.n mk_node in
  let register node st =
    node.mg_threads <- node.mg_threads @ [ st ];
    match tracer with
    | None -> None
    | Some t ->
      let tname = Sstats.name st in
      let trk =
        Msmr_obs.Trace.track t ~pid:node.mg_id
          ~pname:(Printf.sprintf "replica-%d" node.mg_id) ~name:tname ()
      in
      let cat = Msmr_obs.Taxonomy.module_of_thread tname in
      Sstats.attach_tracer st (fun state t0 t1 ->
          let ts = ns_of t0 in
          Msmr_obs.Trace.complete trk ~cat ~name:(state_name state)
            ~ts_ns:ts ~dur_ns:(Int64.sub (ns_of t1) ts) ());
      Some trk
  in
  (* ---------------- fault injection state (crash-only chaos) -------- *)
  let net = Sfault.make_net ~seed:p.chaos_seed ~n:p.n p.faults in
  let up = Array.make p.n true in
  let crash_time = Array.make p.n 0. in
  let awaiting_recovery = Array.make p.n false in
  let recovery_times = ref [] in
  let rtx_tbls :
    (Paxos.rtx_key, Types.node_id list * Msg.t) Hashtbl.t array array =
    Array.init p.n (fun _ -> Array.init g_count (fun _ -> Hashtbl.create 64))
  in
  let leader_hint_g = Array.init g_count home_of_group in
  let views_seen_g : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let client_retries = ref 0 in
  let awaiting_seq = Array.make (max 1 p.n_clients) 0 in
  let last_commit_g = Array.make g_count 0. in
  let max_gap_g = Array.make g_count 0. in
  (* At-most-once frontier per node (client ids are globally unique) and
     per-(node, group) executed-request logs for the per-group
     linearizability check. *)
  let frontier : (int, int) Hashtbl.t array =
    Array.init p.n (fun _ -> Hashtbl.create 1024)
  in
  let exec_logs_mg : (int * int) list array array =
    Array.init p.n (fun _ -> Array.make g_count [])
  in
  let timeline =
    Array.make
      (if chaos then 1 + int_of_float (ceil (p.duration /. p.chaos_bucket))
       else 0)
      0
  in
  let chaos_admit_mg node g (id : Client_msg.request_id) =
    let tbl = frontier.(node.mg_id) in
    match Hashtbl.find_opt tbl id.client_id with
    | Some s when id.seq <= s -> false
    | _ ->
      Hashtbl.replace tbl id.client_id id.seq;
      exec_logs_mg.(node.mg_id).(g) <-
        (id.client_id, id.seq) :: exec_logs_mg.(node.mg_id).(g);
      true
  in
  let chaos_executed_mg node (id : Client_msg.request_id) =
    match Hashtbl.find_opt frontier.(node.mg_id) id.client_id with
    | Some s -> id.seq <= s
    | None -> false
  in
  let chaos_deliver_mg node g dst msg size =
    if up.(node.mg_id) then
      List.iter
        (fun extra ->
           let send () =
             Nic.send node.mg_nic ~dst:nodes.(dst).mg_nic ~size (fun () ->
                 if up.(dst) then
                   Mailbox.push nodes.(dst).mg_rcv_mbs.(node.mg_id)
                     (g, node.mg_id, msg))
           in
           if extra <= 0. then send ()
           else Engine.schedule_at eng (Engine.now eng +. extra) send)
        (Sfault.deliveries net ~src:node.mg_id ~now:(Engine.now eng) ~dst)
  in
  let rec rtx_fire id g key () =
    match Hashtbl.find_opt rtx_tbls.(id).(g) key with
    | Some (dests, msg) when up.(id) ->
      List.iter
        (fun d ->
           if d <> id then chaos_deliver_mg nodes.(id) g d msg (approx_size msg))
        dests;
      Engine.schedule_at eng
        (Engine.now eng +. p.chaos_rtx_interval)
        (rtx_fire id g key)
    | _ -> ()
  in
  let arm_rtx id g key dests msg =
    Hashtbl.replace rtx_tbls.(id).(g) key (dests, msg);
    Engine.schedule_at eng
      (Engine.now eng +. p.chaos_rtx_interval)
      (rtx_fire id g key)
  in
  let do_crash id =
    if up.(id) then begin
      up.(id) <- false;
      crash_time.(id) <- Engine.now eng;
      Array.iter Hashtbl.reset rtx_tbls.(id);
      spec_abort_all id
    end
  in
  let do_restart id =
    if not up.(id) then begin
      up.(id) <- true;
      awaiting_recovery.(id) <- true;
      Hashtbl.reset frontier.(id);
      Array.fill exec_logs_mg.(id) 0 g_count [];
      for g = 0 to g_count - 1 do
        let old = nodes.(id).mg_engines.(g) in
        let old_log = Paxos.log old in
        let entries = Log.entries_from old_log (Log.low_mark old_log) in
        let decided, accepted =
          List.partition (fun (e : Msg.log_entry) -> e.e_decided) entries
        in
        let conv =
          List.map (fun (e : Msg.log_entry) -> (e.e_iid, e.e_view, e.e_value))
        in
        let engine, replays =
          Paxos.recover cfg ~me:id ~view:(Paxos.view old)
            ~accepted:(conv accepted) ~decided:(conv decided) ~snapshot:None
        in
        nodes.(id).mg_engines.(g) <- engine;
        if p.lease then
          leases_mg.(id).(g) <-
            Lease.create cfg ~me:id ~view:(Paxos.view engine);
        List.iter
          (fun action ->
             match action with
             | Paxos.Execute { value; _ } -> (
                 match value with
                 | Value.Noop | Value.Reconfig _ -> ()
                 | Value.Batch b ->
                   List.iter
                     (fun (r : Client_msg.request) ->
                        ignore (chaos_admit_mg nodes.(id) g r.id))
                     b.requests)
             | Paxos.Send { dest; msg } ->
               List.iter
                 (fun d ->
                    if d <> id then
                      chaos_deliver_mg nodes.(id) g d msg (approx_size msg))
                 dest
             | Paxos.Schedule_rtx { key; dest; msg } -> arm_rtx id g key dest msg
             | Paxos.Cancel_rtx key -> Hashtbl.remove rtx_tbls.(id).(g) key
             | Paxos.View_changed { view; i_am_leader; _ } ->
               if view <> g then Hashtbl.replace views_seen_g (g, view) ();
               if i_am_leader then leader_hint_g.(g) <- id
             (* Multi-group chaos is crash-only; membership is static
                here (reconfig is a run_single feature). *)
             | Paxos.Membership_changed _ -> ()
             | Paxos.Install_snapshot _ -> ())
          replays
      done
    end
  in
  if chaos then
    List.iter
      (function
        | Sfault.Crash { node = id; at; restart_at } ->
          Engine.schedule_at eng at (fun () -> do_crash id);
          (match restart_at with
           | Some rt -> Engine.schedule_at eng rt (fun () -> do_restart id)
           | None -> ())
        | _ -> ())
      p.faults;
  (* ---------------- measurement state ---------------- *)
  let measuring = ref false in
  let ce_record d_t =
    if !measuring then begin
      ce_sum := !ce_sum +. (Engine.now eng -. d_t);
      incr ce_n
    end
  in
  let completed = ref 0 in
  let completed_g = Array.make g_count 0 in
  let lat_sum = ref 0. and lat_n = ref 0 in
  let inst_sum = ref 0. and inst_n = ref 0 in
  let batch_reqs = ref 0 and batch_bytes = ref 0 and batches = ref 0 in
  let window_gauge = Sstats.Gauge.create eng in
  let router_routed = Array.make p.n 0 in
  let router_reads = Array.make p.n 0 in
  let proxy_fanout = Array.make g_count 0 in
  let globals_executed = ref 0 in
  (* ---------------- clients ---------------- *)
  let payload = Bytes.make (max 0 (p.request_size - 16)) 'x' in
  let clients =
    Array.init p.n_clients (fun i -> { cid = i; next_seq = 0; sent_at = 0. })
  in
  let client_resume : (unit -> unit) option array =
    Array.make p.n_clients None
  in
  let cio_of_client cid = cid mod p.client_io_threads in
  let client_proc_mg cl () =
    let g = group_of_client cl.cid in
    let target = nodes.(home_of_group g) in
    Engine.delay eng (1e-6 *. float_of_int cl.cid);
    let do_write () =
      let req =
        { Client_msg.id = { client_id = cl.cid; seq = cl.next_seq }; payload }
      in
      cl.sent_at <- Engine.now eng;
      Engine.suspend eng (fun resume ->
          client_resume.(cl.cid) <- Some resume;
          Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
              Nic.rx_inject target.mg_nic ~size:p.request_size (fun () ->
                  Mailbox.push target.mg_cio_mbs.(cio_of_client cl.cid)
                    (Req req))));
      if reads_on then note_acked cl.cid cl.next_seq
    in
    (* Linearizable reads aim at the group's leaseholder;
       bounded-staleness reads spread over all replicas (the Router on
       any node partitions them home). Rejections fall back to the
       leaseholder after a deterministic pause. *)
    let do_read () =
      let id = { Client_msg.client_id = cl.cid; seq = cl.next_seq } in
      cl.sent_at <- Engine.now eng;
      read_floor.(cl.cid) <- last_write_acked.(cl.cid);
      let rec attempt tgt =
        read_result.(cl.cid) <- -1;
        Engine.suspend eng (fun resume ->
            client_resume.(cl.cid) <- Some resume;
            Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
                Nic.rx_inject tgt.mg_nic ~size:p.request_size (fun () ->
                    Mailbox.push tgt.mg_cio_mbs.(cio_of_client cl.cid)
                      (Rd id))));
        if read_result.(cl.cid) < 0 then begin
          if !measuring then incr read_rejects;
          Engine.delay eng (p.lease_duration /. 8.);
          attempt target
        end
      in
      (* [cid / n] decorrelates the read home from the cio-thread choice;
         see the single-group client for why [cid mod n] convoys. *)
      attempt (if p.stale_reads then nodes.(cl.cid / p.n mod p.n) else target);
      check_read cl.cid
    in
    let rec loop () =
      cl.next_seq <- cl.next_seq + 1;
      let is_read = is_read_op cl.next_seq in
      if is_read then do_read () else do_write ();
      if !measuring then begin
        incr completed;
        completed_g.(g) <- completed_g.(g) + 1;
        if is_read then incr reads_completed;
        lat_sum := !lat_sum +. (Engine.now eng -. cl.sent_at);
        incr lat_n
      end;
      loop ()
    in
    loop ()
  in
  let client_proc_chaos_mg cl () =
    let g = group_of_client cl.cid in
    Engine.delay eng (1e-6 *. float_of_int cl.cid);
    let do_write_chaos () =
      let req =
        { Client_msg.id = { client_id = cl.cid; seq = cl.next_seq }; payload }
      in
      cl.sent_at <- Engine.now eng;
      let rec attempt () =
        let target = nodes.(leader_hint_g.(g)) in
        match
          Engine.suspend_timeout eng ~timeout:p.chaos_client_timeout
            (fun resume ->
               client_resume.(cl.cid) <- Some resume;
               Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
                   if up.(target.mg_id) then
                     Nic.rx_inject target.mg_nic ~size:p.request_size
                       (fun () ->
                          if up.(target.mg_id) then
                            Mailbox.push
                              target.mg_cio_mbs.(cio_of_client cl.cid)
                              (Req req))))
        with
        | Engine.Value () -> ()
        | Engine.Timed_out ->
          client_resume.(cl.cid) <- None;
          incr client_retries;
          attempt ()
      in
      attempt ();
      if reads_on then note_acked cl.cid cl.next_seq
    in
    let do_read_chaos () =
      let id = { Client_msg.client_id = cl.cid; seq = cl.next_seq } in
      cl.sent_at <- Engine.now eng;
      read_floor.(cl.cid) <- last_write_acked.(cl.cid);
      let rec attempt n_try =
        let target =
          if p.stale_reads && n_try = 0 then nodes.(cl.cid / p.n mod p.n)
          else nodes.(leader_hint_g.(g))
        in
        read_result.(cl.cid) <- -1;
        match
          Engine.suspend_timeout eng ~timeout:p.chaos_client_timeout
            (fun resume ->
               client_resume.(cl.cid) <- Some resume;
               Engine.schedule_at eng (Engine.now eng +. 30e-6) (fun () ->
                   if up.(target.mg_id) then
                     Nic.rx_inject target.mg_nic ~size:p.request_size
                       (fun () ->
                          if up.(target.mg_id) then
                            Mailbox.push
                              target.mg_cio_mbs.(cio_of_client cl.cid)
                              (Rd id))))
        with
        | Engine.Value () ->
          if read_result.(cl.cid) < 0 then begin
            if !measuring then incr read_rejects;
            Engine.delay eng (p.lease_duration /. 8.);
            attempt (n_try + 1)
          end
        | Engine.Timed_out ->
          client_resume.(cl.cid) <- None;
          incr client_retries;
          attempt (n_try + 1)
      in
      attempt 0;
      check_read cl.cid
    in
    let rec loop () =
      cl.next_seq <- cl.next_seq + 1;
      awaiting_seq.(cl.cid) <- cl.next_seq;
      let is_read = is_read_op cl.next_seq in
      if is_read then do_read_chaos () else do_write_chaos ();
      if !measuring then begin
        incr completed;
        completed_g.(g) <- completed_g.(g) + 1;
        if is_read then incr reads_completed;
        lat_sum := !lat_sum +. (Engine.now eng -. cl.sent_at);
        incr lat_n;
        let b =
          int_of_float ((Engine.now eng -. p.warmup) /. p.chaos_bucket)
        in
        if b >= 0 && b < Array.length timeline then
          timeline.(b) <- timeline.(b) + 1
      end;
      loop ()
    in
    loop ()
  in
  (* ---------------- ClientIO (every node may lead some group) ------- *)
  let cio_proc node idx () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "ClientIO-%d" idx)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let mb = node.mg_cio_mbs.(idx) in
    let handle = function
      | Rep id ->
        Cpu.work node.mg_cpu st (cost c.client_write);
        Nic.send_to_wire node.mg_nic ~size:p.reply_size (fun () ->
            if (not chaos) || awaiting_seq.(id.client_id) = id.seq then
              match client_resume.(id.client_id) with
              | Some resume ->
                client_resume.(id.client_id) <- None;
                resume ()
              | None -> ())
      | Req req ->
        Cpu.work node.mg_cpu st (cost c.client_read);
        if chaos && chaos_executed_mg node req.id then
          Mailbox.push node.mg_cio_mbs.(idx) (Rep req.id)
        else Squeue.put node.mg_router_q st (Route_req req)
      | Rd id ->
        Cpu.work node.mg_cpu st (cost c.client_read);
        Squeue.put node.mg_router_q st (Route_read id)
    in
    let rec loop () =
      let ev = Mailbox.take mb st in
      if (not chaos) || up.(node.mg_id) then handle ev;
      loop ()
    in
    loop ()
  in
  (* ---------------- Router ---------------- *)
  let router_proc node () =
    let st = Sstats.make_thread eng ~name:"Router" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let rec loop () =
      (match Squeue.take node.mg_router_q st with
       | Route_req req ->
         Cpu.work node.mg_cpu st (cost c.dispatch_per_req);
         let g = group_of_client req.Client_msg.id.client_id in
         router_routed.(node.mg_id) <- router_routed.(node.mg_id) + 1;
         (* Early scheduling: on the group's leader the Router drops a
            [Dspec] onto the group's DecisionQueue before forwarding to
            the Batcher — FIFO keeps it ahead of its own decide. *)
         if spec_on
            && ((not chaos && node.mg_id = home_of_group g)
                || (chaos && Paxos.is_leader node.mg_engines.(g))) then
           Squeue.put node.mg_dec_qs.(g) st (Dspec { s_req = req });
         Squeue.put node.mg_req_qs.(g) st req
       | Route_read id ->
         (* Reads partition by the same conflict key but skip the
            Batcher/Protocol leg entirely: straight to the group's
            DecisionQueue, FIFO behind its decided instances. *)
         Cpu.work node.mg_cpu st (cost c.dispatch_per_req);
         let g = group_of_client id.Client_msg.client_id in
         router_reads.(node.mg_id) <- router_reads.(node.mg_id) + 1;
         Squeue.put node.mg_dec_qs.(g) st (Dread { r_id = id }));
      loop ()
    in
    loop ()
  in
  (* ---------------- Batcher (one per group) ---------------- *)
  let batcher_policies =
    Array.init p.n (fun id ->
        Array.init g_count (fun g -> Batcher.create cfg ~src:(id + (g * 64))))
  in
  let batcher_proc node g () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "Batcher-g%d" g)
    in
    let trk = register node st in
    let policy = batcher_policies.(node.mg_id).(g) in
    let now_ns () = Int64.of_float (Engine.now eng *. 1e9) in
    let seal batch =
      Cpu.work node.mg_cpu st (cost c.batcher_per_batch);
      (match trk with
       | Some trk ->
         Msmr_obs.Trace.instant trk ~cat:"ReplicationCore"
           ~args:
             [ ("reqs", Msmr_obs.Json.Int (Batch.request_count batch));
               ("bytes", Msmr_obs.Json.Int (Batch.size_bytes batch)) ]
           "batch-seal"
       | None -> ());
      if !measuring then begin
        incr batches;
        batch_reqs := !batch_reqs + Batch.request_count batch;
        batch_bytes := !batch_bytes + Batch.size_bytes batch
      end;
      Squeue.put node.mg_prop_qs.(g) st batch;
      Squeue.put node.mg_disp_qs.(g) st Poke
    in
    let rec loop () =
      let timeout =
        match Batcher.deadline_ns policy with
        | None -> 1.0
        | Some d ->
          Float.max 1e-5 ((Int64.to_float d /. 1e9) -. Engine.now eng)
      in
      (match Squeue.take_timeout node.mg_req_qs.(g) st ~timeout with
       | Some req ->
         Cpu.work node.mg_cpu st (cost c.batcher_per_req);
         (match Batcher.add policy req ~now_ns:(now_ns ()) with
          | Some batch -> seal batch
          | None -> ())
       | None -> (
           match Batcher.flush_due policy ~now_ns:(now_ns ()) with
           | Some batch -> seal batch
           | None -> ()));
      loop ()
    in
    loop ()
  in
  (* ---------------- Protocol (one per group) ---------------- *)
  let inst_t0s : (int, float) Hashtbl.t array =
    Array.init g_count (fun _ -> Hashtbl.create 1024)
  in
  let protocol_proc node g () =
    let st = Sstats.make_thread eng ~name:(Printf.sprintf "Protocol-g%d" g) in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let engine () = node.mg_engines.(g) in
    let persist nrec =
      if nrec > 0 then
        match p.sync_policy, node.mg_disk, node.mg_ss_q with
        | Params.Sync_serial, Some d, _ ->
          Sdisk.append d nrec;
          Sstats.set st Sstats.Blocked;
          Engine.suspend eng (fun resume -> Sdisk.fsync d resume);
          Sstats.set st Sstats.Busy
        | Params.Sync_group, _, Some q -> Squeue.put q st (g, Sl_log nrec)
        | _ -> ()
    in
    let send_direct d msg =
      match node.mg_ss_q with
      | Some q when durability_gated msg -> Squeue.put q st (g, Sl_rel (d, msg))
      | _ -> Squeue.put node.mg_send_qs.(d) st (g, msg)
    in
    let apply actions =
      persist (records_for_actions actions);
      List.iter
        (fun action ->
           match action with
           | Paxos.Send { dest; msg } -> (
               match List.filter (fun d -> d <> node.mg_id) dest with
               | [] -> ()
               | [ d ] -> send_direct d msg
               | dests ->
                 (* Multi-destination fan-out is the ProxyLeader's job:
                    the Protocol stage stays a pure ordering loop. *)
                 Squeue.put node.mg_proxy_qs.(g) st (dests, msg))
           | Paxos.Execute { iid = _; value } ->
             if chaos then begin
               if awaiting_recovery.(node.mg_id) then begin
                 awaiting_recovery.(node.mg_id) <- false;
                 recovery_times :=
                   (Engine.now eng -. crash_time.(node.mg_id))
                   :: !recovery_times
               end;
               if Paxos.is_leader (engine ()) then begin
                 let nw = Engine.now eng in
                 if !measuring then begin
                   let gap = nw -. last_commit_g.(g) in
                   if gap > max_gap_g.(g) then max_gap_g.(g) <- gap
                 end;
                 last_commit_g.(g) <- nw
               end
             end;
             Squeue.put node.mg_dec_qs.(g) st
               (Dec { d_iid = 0; d_value = value; d_t = Engine.now eng })
           | Paxos.Schedule_rtx { key; dest; msg } ->
             (match key with
              | Paxos.Rtx_accept (_, iid) when node.mg_id = home_of_group g ->
                Hashtbl.replace inst_t0s.(g) iid (Engine.now eng)
              | _ -> ());
             if chaos then arm_rtx node.mg_id g key dest msg
           | Paxos.Cancel_rtx key ->
             if chaos then Hashtbl.remove rtx_tbls.(node.mg_id).(g) key;
             (match key with
              | Paxos.Rtx_accept (_, iid) when node.mg_id = home_of_group g ->
                (match Hashtbl.find_opt inst_t0s.(g) iid with
                 | Some t0 ->
                   if !measuring then begin
                     inst_sum := !inst_sum +. (Engine.now eng -. t0);
                     incr inst_n
                   end
                 | None -> ());
                Hashtbl.remove inst_t0s.(g) iid
              | _ -> ())
           | Paxos.View_changed { view; i_am_leader; _ } ->
             if p.lease then Lease.set_view leases_mg.(node.mg_id).(g) ~view;
             (* The group's predicted order died with its leader: roll
                back this group's open frames on this node. *)
             spec_abort_group node.mg_id g;
             if chaos then begin
               if view <> g then Hashtbl.replace views_seen_g (g, view) ();
               if i_am_leader then leader_hint_g.(g) <- node.mg_id
             end
           (* Multi-group membership is static (reconfig is a
              run_single feature). *)
           | Paxos.Membership_changed _ -> ()
           | Paxos.Install_snapshot _ -> ())
        actions
    in
    apply (Paxos.bootstrap (engine ()));
    let rec loop () =
      (match Squeue.take node.mg_disp_qs.(g) st with
       | PMsg (from, msg) ->
         if (not chaos) || up.(node.mg_id) then begin
           Cpu.work node.mg_cpu st (cost c.protocol_per_event);
           match msg with
           | Msg.Lease_ping { view; t0_ns } when p.lease ->
             (match
                Lease.on_ping leases_mg.(node.mg_id).(g) ~from ~view ~t0_ns
                  ~now_ns:(clock_ns node.mg_id)
              with
              | Some grant -> Squeue.put node.mg_send_qs.(from) st (g, grant)
              | None -> ())
           | Msg.Lease_grant { view; t0_ns } when p.lease ->
             ignore
               (Lease.on_grant leases_mg.(node.mg_id).(g) ~from ~view ~t0_ns
                  ~quorum:lease_quorum)
           | Msg.Prepare { view; _ }
             when p.lease
                  && Lease.promise_blocks leases_mg.(node.mg_id).(g)
                       ~candidate:(Types.leader_of_view ~n:p.n view)
                       ~now_ns:(clock_ns node.mg_id) ->
             ()
           | _ ->
             persist (records_for_msg msg);
             apply (Paxos.receive (engine ()) ~from msg)
         end
       | Poke -> ()
       | Suspect_ev ->
         if chaos && up.(node.mg_id) then
           if
             p.lease
             && Lease.promise_blocks leases_mg.(node.mg_id).(g)
                  ~candidate:node.mg_id ~now_ns:(clock_ns node.mg_id)
           then ()  (* deferred while promised; the FD re-fires *)
           else apply (Paxos.suspect_leader (engine ()))
       | Tick ->
         if chaos && up.(node.mg_id) then
           apply (Paxos.tick_catchup (engine ()))
       | Reconfig_cmd _ ->
         (* Multi-group membership is static; the driver never targets
            this model. *)
         ());
      let rec feed () =
        if Paxos.can_propose (engine ()) then
          match Squeue.try_take node.mg_prop_qs.(g) st with
          | Some batch ->
            Cpu.work node.mg_cpu st (cost c.protocol_per_event);
            apply (Paxos.propose (engine ()) batch);
            feed ()
          | None -> ()
      in
      if (not chaos) || up.(node.mg_id) then feed ();
      loop ()
    in
    loop ()
  in
  (* ---------------- ProxyLeader (one per group) ---------------- *)
  let proxy_proc node g () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "ProxyLeader-g%d" g)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let rec loop () =
      let dests, msg = Squeue.take node.mg_proxy_qs.(g) st in
      List.iter
        (fun d ->
           (* One queue hop per destination: the fan-out work the
              single-group Protocol thread pays inline. *)
           Cpu.work node.mg_cpu st (cost c.dispatch_per_req);
           if !measuring then proxy_fanout.(g) <- proxy_fanout.(g) + 1;
           match node.mg_ss_q with
           | Some q when durability_gated msg ->
             Squeue.put q st (g, Sl_rel (d, msg))
           | _ -> Squeue.put node.mg_send_qs.(d) st (g, msg))
        dests;
      loop ()
    in
    loop ()
  in
  (* ---------------- ReplicaIO (shared; frames carry the group id) --- *)
  let sender_proc node peer () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "ReplicaIOSnd-%d" peer)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let q = node.mg_send_qs.(peer) in
    let rec drain_burst acc k =
      if k = 0 then List.rev acc
      else
        match Squeue.try_take q st with
        | Some m -> drain_burst (m :: acc) (k - 1)
        | None -> List.rev acc
    in
    let deferred = ref [] in
    let is_decide = function _, Msg.Decide _ -> true | _ -> false in
    let rec next_burst () =
      match
        if !deferred = [] then Some (Squeue.take q st)
        else Squeue.take_timeout q st ~timeout:0.0005
      with
      | Some first ->
        let burst = !deferred @ (first :: drain_burst [] 31) in
        deferred := [];
        if List.for_all is_decide burst then begin
          deferred := burst;
          next_burst ()
        end
        else burst
      | None ->
        let burst = !deferred in
        deferred := [];
        burst
    in
    let rec loop () =
      let burst = next_burst () in
      let sized =
        List.map
          (fun (g, m) ->
             let size = approx_size m in
             Cpu.work node.mg_cpu st
               (cost
                  (c.io_ser_per_msg +. (c.io_ser_per_byte *. float_of_int size)));
             (g, m, size))
          burst
      in
      let flush seg_msgs seg_size =
        if seg_msgs <> [] then begin
          let msgs = List.rev seg_msgs in
          if not chaos then
            Nic.send node.mg_nic ~dst:nodes.(peer).mg_nic ~size:seg_size
              (fun () ->
                 List.iter
                   (fun (g, m, _) ->
                      Mailbox.push nodes.(peer).mg_rcv_mbs.(node.mg_id)
                        (g, node.mg_id, m))
                   msgs)
          else if up.(node.mg_id) then
            List.iter
              (fun extra ->
                 let send () =
                   Nic.send node.mg_nic ~dst:nodes.(peer).mg_nic ~size:seg_size
                     (fun () ->
                        if up.(peer) then
                          List.iter
                            (fun (g, m, _) ->
                               Mailbox.push nodes.(peer).mg_rcv_mbs.(node.mg_id)
                                 (g, node.mg_id, m))
                            msgs)
                 in
                 if extra <= 0. then send ()
                 else Engine.schedule_at eng (Engine.now eng +. extra) send)
              (Sfault.deliveries net ~src:node.mg_id ~now:(Engine.now eng)
                 ~dst:peer)
        end
      in
      let seg, size =
        List.fold_left
          (fun (seg, size) (g, m, s) ->
             if size > 0 && size + s > segment_payload then begin
               flush seg size;
               ([ (g, m, s) ], s)
             end
             else ((g, m, s) :: seg, size + s))
          ([], 0) sized
      in
      flush seg size;
      loop ()
    in
    loop ()
  in
  let receiver_proc node peer () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "ReplicaIORcv-%d" peer)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let mb = node.mg_rcv_mbs.(peer) in
    let rec loop () =
      let g, from, msg = Mailbox.take mb st in
      Cpu.work node.mg_cpu st
        (cost
           (c.io_deser_per_msg
            +. (c.io_deser_per_byte *. float_of_int (approx_size msg))));
      Squeue.put node.mg_disp_qs.(g) st (PMsg (from, msg));
      loop ()
    in
    loop ()
  in
  (* ---------------- StableStorage (per node, streams keyed by gid) -- *)
  let ss_proc node () =
    let st = Sstats.make_thread eng ~name:"StableStorage" in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let q = Option.get node.mg_ss_q in
    let d = Option.get node.mg_disk in
    let rec drain acc k =
      if k = 0 then List.rev acc
      else
        match Squeue.try_take q st with
        | Some ev -> drain (ev :: acc) (k - 1)
        | None -> List.rev acc
    in
    let rec loop () =
      let first = Squeue.take q st in
      let burst = first :: drain [] 255 in
      List.iter
        (function _, Sl_log n -> Sdisk.append d n | _, Sl_rel _ -> ())
        burst;
      if Sdisk.has_pending d then begin
        Sstats.set st Sstats.Blocked;
        Engine.suspend eng (fun resume -> Sdisk.fsync d resume);
        Sstats.set st Sstats.Busy
      end;
      List.iter
        (function
          | g, Sl_rel (dest, msg) -> Squeue.put node.mg_send_qs.(dest) st (g, msg)
          | _, Sl_log _ -> ())
        burst;
      loop ()
    in
    loop ()
  in
  (* ---------------- FailureDetector (crash-only chaos) -------------- *)
  (* Deterministic direct-check detector: under a crash-only schedule
     there is no message loss, so leader silence is equivalent to the
     leader being down past the timeout. This keeps the multi-group
     chaos path free of per-group heartbeat traffic. *)
  let fd_proc node g () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "FailureDetector-g%d" g)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let rec loop () =
      Engine.delay eng (p.chaos_fd_interval /. 2.);
      if up.(node.mg_id) then begin
        let engine = node.mg_engines.(g) in
        let ldr = Paxos.leader engine in
        if ldr <> node.mg_id && (not up.(ldr))
           && Engine.now eng -. crash_time.(ldr) > p.chaos_fd_timeout then
          Squeue.put node.mg_disp_qs.(g) st Suspect_ev;
        Squeue.put node.mg_disp_qs.(g) st Tick
      end;
      loop ()
    in
    loop ()
  in
  (* ---------------- ServiceManager (per group + cross-group gate) --- *)
  let sm_active = Array.make p.n 0 in
  let sm_barrier = Array.make p.n false in
  let sm_barrier_waiter : (unit -> unit) option array = Array.make p.n None in
  let sm_blocked : (unit -> unit) list ref array =
    Array.init p.n (fun _ -> ref [])
  in
  let globals_total = Array.make p.n 0 in
  (* Same floor-crossing pattern as the single-group parallel SM:
     deterministic, evenly spread, ratio * total in the long run.
     Classified on group 0's decide stream — the group that sequences
     cross-group commands. *)
  let classify_global id =
    globals_total.(id) <- globals_total.(id) + 1;
    let k = globals_total.(id) in
    p.conflict_ratio > 0.
    && int_of_float (float_of_int k *. p.conflict_ratio)
       > int_of_float (float_of_int (k - 1) *. p.conflict_ratio)
  in
  let sm_proc node g () =
    let st = Sstats.make_thread eng ~name:(Printf.sprintf "Replica-g%d" g) in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let id = node.mg_id in
    let leads () =
      if chaos then Paxos.is_leader node.mg_engines.(g)
      else id = home_of_group g
    in
    let reply (req_id : Client_msg.request_id) =
      if leads () then
        Mailbox.push node.mg_cio_mbs.(cio_of_client req_id.client_id)
          (Rep req_id)
    in
    let rec wait_barrier () =
      if sm_barrier.(id) then begin
        Sstats.set st Sstats.Waiting;
        Engine.suspend eng (fun resume ->
            sm_blocked.(id) := resume :: !(sm_blocked.(id)));
        Sstats.set st Sstats.Busy;
        wait_barrier ()
      end
    in
    let release_if_quiet () =
      if sm_active.(id) = 0 then
        match sm_barrier_waiter.(id) with
        | Some resume ->
          sm_barrier_waiter.(id) <- None;
          resume ()
        | None -> ()
    in
    let exec_one d_t (req : Client_msg.request) =
      if chaos && not (up.(id) && chaos_admit_mg node g req.id) then ()
      else begin
        wait_barrier ();
        if g = 0 && classify_global id then begin
          (* Cross-group Global command: roll back open speculation
             (all of it — a Global conflicts with everything), close the
             gate, quiesce every group's in-flight execution on this
             node, run serially. *)
          spec_abort_all id;
          sm_barrier.(id) <- true;
          if sm_active.(id) > 0 then begin
            Sstats.set st Sstats.Waiting;
            Engine.suspend eng (fun resume ->
                sm_barrier_waiter.(id) <- Some resume);
            Sstats.set st Sstats.Busy
          end;
          Cpu.work node.mg_cpu st (cost c.exec_per_req);
          note_exec_mg node g req.id;
          incr globals_executed;
          reply req.id;
          if leads () then ce_record d_t;
          sm_barrier.(id) <- false;
          let blocked = !(sm_blocked.(id)) in
          sm_blocked.(id) := [];
          List.iter (fun r -> r ()) blocked
        end
        else begin
          let cid = req.id.client_id in
          if spec_on && sf_seq.(id).(cid) = req.id.seq
             && sf_done.(id).(cid) && not (force_mispredict ()) then begin
            (* Prediction held: the optimistic execution already ran
               during the consensus window — promote it for the cost of
               a confirm. *)
            sm_active.(id) <- sm_active.(id) + 1;
            Cpu.work node.mg_cpu st (cost c.dispatch_per_req);
            note_exec_mg node g req.id;
            sf_seq.(id).(cid) <- -1;
            sf_done.(id).(cid) <- false;
            incr spec_confirmed;
            reply req.id;
            if leads () then ce_record d_t;
            sm_active.(id) <- sm_active.(id) - 1;
            release_if_quiet ()
          end
          else begin
            spec_abort_frame id cid;
            sm_active.(id) <- sm_active.(id) + 1;
            Cpu.work node.mg_cpu st (cost c.exec_per_req);
            note_exec_mg node g req.id;
            reply req.id;
            if leads () then ce_record d_t;
            sm_active.(id) <- sm_active.(id) - 1;
            release_if_quiet ()
          end
        end
      end
    in
    (* Optimistic inline execution off the Router's early dispatch: runs
       while the decide is still in flight. Skipped when a frame is
       already open, the request already executed, or a Global holds the
       barrier. *)
    let spec_exec (req : Client_msg.request) =
      let cid = req.id.client_id in
      if ((not chaos) || (up.(id) && not (chaos_executed_mg node req.id)))
         && sf_seq.(id).(cid) < 0
         && not sm_barrier.(id) then begin
        incr spec_dispatched;
        sf_seq.(id).(cid) <- req.id.seq;
        sm_active.(id) <- sm_active.(id) + 1;
        Cpu.work node.mg_cpu st (cost c.exec_per_req);
        (* The frame can be aborted while the execution pays its CPU
           cost (view change, crash) — then write nothing. *)
        if sf_seq.(id).(cid) = req.id.seq then begin
          sf_undo.(id).(cid) <- ver.(id).(cid);
          ver.(id).(cid) <- req.id.seq;
          sf_done.(id).(cid) <- true
        end;
        sm_active.(id) <- sm_active.(id) - 1;
        release_if_quiet ()
      end
    in
    (* Fast-path read against this group's lease and apply recency
       (same serve rule as run_single's [sm_read]). *)
    let serve_read (r_id : Client_msg.request_id) =
      Cpu.work node.mg_cpu st (cost c.exec_per_req);
      if (not chaos) || up.(id) then begin
        (* Reads never observe unconfirmed optimistic effects: roll the
           reader's own frame back (its register is the only one a read
           of this key could see). *)
        spec_abort_frame id r_id.client_id;
        let serve =
          Lease.held leases_mg.(id).(g) ~now_ns:(clock_ns id)
          || (p.stale_reads
              && node_clock id -. last_apply_mg.(id).(g) <= p.staleness_bound)
        in
        if serve then begin
          read_result.(r_id.client_id) <- ver.(id).(r_id.client_id);
          read_serve_t.(r_id.client_id) <- Engine.now eng
        end;
        Mailbox.push node.mg_cio_mbs.(cio_of_client r_id.client_id)
          (Rep r_id)
      end
    in
    let rec loop () =
      (match Squeue.take node.mg_dec_qs.(g) st with
       | Dread { r_id } -> serve_read r_id
       | Dspec { s_req } -> spec_exec s_req
       | Dec d -> (
           match d.d_value with
           | Value.Noop | Value.Reconfig _ -> ()
           | Value.Batch batch -> List.iter (exec_one d.d_t) batch.requests));
      loop ()
    in
    loop ()
  in
  (* Lease renewal driver, one per (node, group): while this node leads
     the group, broadcast renewal pings down the shared send queues. *)
  let lease_proc node g () =
    let st =
      Sstats.make_thread eng ~name:(Printf.sprintf "Lease-g%d" g)
    in
    let (_ : Msmr_obs.Trace.track option) = register node st in
    let rec loop () =
      let leading =
        if chaos then
          up.(node.mg_id) && Paxos.is_leader node.mg_engines.(g)
        else node.mg_id = home_of_group g
      in
      if leading
         && Lease.ping_due leases_mg.(node.mg_id).(g)
              ~now_ns:(clock_ns node.mg_id)
      then begin
        Cpu.work node.mg_cpu st (cost c.protocol_per_event);
        let ping =
          Lease.make_ping leases_mg.(node.mg_id).(g)
            ~now_ns:(clock_ns node.mg_id)
        in
        for d = 0 to p.n - 1 do
          if d <> node.mg_id then Squeue.put node.mg_send_qs.(d) st (g, ping)
        done
      end;
      Engine.delay eng (p.lease_duration /. 12.);
      loop ()
    in
    loop ()
  in
  (* ---------------- spawn everything ---------------- *)
  Array.iter
    (fun node ->
       for i = 0 to p.client_io_threads - 1 do
         Engine.spawn eng
           ~name:(Printf.sprintf "cio-%d-%d" node.mg_id i)
           (cio_proc node i)
       done;
       Engine.spawn eng ~name:"router" (router_proc node);
       if node.mg_ss_q <> None then Engine.spawn eng ~name:"ss" (ss_proc node);
       for g = 0 to g_count - 1 do
         Engine.spawn eng ~name:"batcher" (batcher_proc node g);
         Engine.spawn eng ~name:"protocol" (protocol_proc node g);
         Engine.spawn eng ~name:"proxy" (proxy_proc node g);
         Engine.spawn eng ~name:"sm" (sm_proc node g);
         if chaos then Engine.spawn eng ~name:"fd" (fd_proc node g);
         if p.lease then Engine.spawn eng ~name:"lease" (lease_proc node g)
       done;
       for peer = 0 to p.n - 1 do
         if peer <> node.mg_id then begin
           Engine.spawn eng ~name:"snd" (sender_proc node peer);
           Engine.spawn eng ~name:"rcv" (receiver_proc node peer)
         end
       done)
    nodes;
  Array.iter
    (fun cl ->
       Engine.spawn eng ~name:"client"
         (if chaos then client_proc_chaos_mg cl else client_proc_mg cl))
    clients;
  (* Sampler: aggregate in-flight instances across the group leaders. *)
  Engine.spawn eng ~name:"sampler" (fun () ->
      let rec loop () =
        Engine.delay eng 0.001;
        let w = ref 0 in
        for g = 0 to g_count - 1 do
          w :=
            !w
            + Paxos.window_in_use nodes.(home_of_group g).mg_engines.(g)
        done;
        Sstats.Gauge.update window_gauge (float_of_int !w);
        loop ()
      in
      loop ());
  (* ---------------- run: warm-up, reset, measure ---------------- *)
  Engine.run eng ~until:p.warmup;
  measuring := true;
  completed := 0;
  Array.fill completed_g 0 g_count 0;
  lat_sum := 0.; lat_n := 0;
  inst_sum := 0.; inst_n := 0;
  batch_reqs := 0; batch_bytes := 0; batches := 0;
  reads_completed := 0; read_rejects := 0;
  Array.fill router_routed 0 p.n 0;
  Array.fill router_reads 0 p.n 0;
  Array.fill proxy_fanout 0 g_count 0;
  globals_executed := 0;
  if chaos then begin
    Array.fill last_commit_g 0 g_count p.warmup;
    Array.fill max_gap_g 0 g_count 0.
  end;
  Sstats.Gauge.reset window_gauge;
  Array.iter
    (fun node ->
       List.iter Sstats.reset node.mg_threads;
       Cpu.reset_consumed node.mg_cpu;
       Nic.reset_counters node.mg_nic;
       Array.iter Squeue.reset_stats node.mg_req_qs;
       Array.iter Squeue.reset_stats node.mg_prop_qs;
       Array.iter Squeue.reset_stats node.mg_disp_qs;
       Array.iter Squeue.reset_stats node.mg_dec_qs;
       Array.iter Squeue.reset_stats node.mg_proxy_qs;
       Squeue.reset_stats node.mg_router_q;
       (match node.mg_ss_q with Some q -> Squeue.reset_stats q | None -> ());
       (match node.mg_disk with Some d -> Sdisk.reset_counters d | None -> ()))
    nodes;
  (match tracer with Some t -> Msmr_obs.Trace.clear t | None -> ());
  Engine.run eng ~until:(p.warmup +. p.duration);
  Array.iter
    (fun node -> List.iter Sstats.flush_tracer node.mg_threads)
    nodes;
  (* ---------------- collect ---------------- *)
  let dur = p.duration in
  let report node =
    let threads =
      List.map (fun st -> (Sstats.name st, Sstats.totals st)) node.mg_threads
    in
    let blocked =
      List.fold_left
        (fun acc (_, (x : Sstats.totals)) -> acc +. x.blocked)
        0. threads
    in
    { cpu_util_pct = 100. *. Cpu.consumed node.mg_cpu /. dur;
      blocked_pct = 100. *. blocked /. dur;
      threads }
  in
  let throughput = float_of_int !completed /. dur in
  let client_latency =
    if !lat_n = 0 then 0. else !lat_sum /. float_of_int !lat_n
  in
  let m_labels =
    [ ("mode", "sim");
      ("n", string_of_int p.n);
      ("groups", string_of_int g_count);
      ("cores", string_of_int p.cores);
      ("wnd", string_of_int p.wnd);
      ("bsz", string_of_int p.bsz) ]
  in
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_throughput_rps"
    throughput;
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_client_latency_s"
    client_latency;
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_leader_cpu_pct"
    (100. *. Cpu.consumed nodes.(0).mg_cpu /. dur);
  Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_run_events"
    (float_of_int (Engine.events_processed eng));
  Array.iteri
    (fun i cnt ->
       Msmr_obs.Metrics.set_gauge
         ~labels:(("replica", string_of_int i) :: m_labels)
         "msmr_replica_router_routed_total" (float_of_int cnt))
    router_routed;
  if reads_on then
    Array.iteri
      (fun i cnt ->
         Msmr_obs.Metrics.set_gauge
           ~labels:(("replica", string_of_int i) :: m_labels)
           "msmr_replica_router_reads_total" (float_of_int cnt))
      router_reads;
  for g = 0 to g_count - 1 do
    let g_labels = ("group", string_of_int g) :: m_labels in
    Msmr_obs.Metrics.set_gauge ~labels:g_labels
      "msmr_replica_proxy_fanout_total"
      (float_of_int proxy_fanout.(g));
    (* Store-level commit watermark of the group's log, per group id —
       the per-group LSN namespace made visible. *)
    Msmr_obs.Metrics.set_gauge ~labels:g_labels
      "msmr_replica_group_commit_lsn"
      (float_of_int
         (Paxos.stats nodes.(home_of_group g).mg_engines.(g)).decided)
  done;
  (* Per-group linearizability: no node executed a request twice, and
     every pair of nodes agrees on the common prefix of each group's
     execution order. *)
  let safety_ok, executed_min, executed_max =
    if not chaos then (true, 0, 0)
    else begin
      let ok = ref true in
      for g = 0 to g_count - 1 do
        let arrs =
          Array.init p.n (fun i ->
              Array.of_list (List.rev exec_logs_mg.(i).(g)))
        in
        Array.iter
          (fun a ->
             let seen = Hashtbl.create (Array.length a) in
             Array.iter
               (fun r ->
                  if Hashtbl.mem seen r then ok := false
                  else Hashtbl.add seen r ())
               a)
          arrs;
        for i = 1 to p.n - 1 do
          let a = arrs.(0) and b = arrs.(i) in
          let m = min (Array.length a) (Array.length b) in
          for j = 0 to m - 1 do
            if a.(j) <> b.(j) then ok := false
          done
        done
      done;
      let tot i =
        Array.fold_left (fun acc l -> acc + List.length l) 0 exec_logs_mg.(i)
      in
      let mn = ref max_int and mx = ref 0 in
      for i = 0 to p.n - 1 do
        let t = tot i in
        if t < !mn then mn := t;
        if t > !mx then mx := t
      done;
      (!ok, (if !mn = max_int then 0 else !mn), !mx)
    end
  in
  let wal_syncs, wal_group_avg =
    match nodes.(0).mg_disk with
    | Some d ->
      Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_wal_sync_total"
        (float_of_int (Sdisk.syncs d));
      Msmr_obs.Metrics.set_gauge ~labels:m_labels "msmr_wal_group_size"
        (Sdisk.avg_group d);
      (Sdisk.syncs d, Sdisk.avg_group d)
    | None -> (0, 0.)
  in
  let sum_over_homes f =
    let acc = ref 0. in
    for g = 0 to g_count - 1 do
      acc := !acc +. f nodes.(home_of_group g) g
    done;
    !acc
  in
  { throughput;
    client_latency;
    instance_latency =
      (if !inst_n = 0 then 0. else !inst_sum /. float_of_int !inst_n);
    avg_batch_reqs =
      (if !batches = 0 then 0.
       else float_of_int !batch_reqs /. float_of_int !batches);
    avg_batch_bytes =
      (if !batches = 0 then 0.
       else float_of_int !batch_bytes /. float_of_int !batches);
    avg_window = Sstats.Gauge.avg window_gauge;
    avg_request_queue =
      sum_over_homes (fun node g -> Squeue.avg_length node.mg_req_qs.(g));
    avg_proposal_queue =
      sum_over_homes (fun node g -> Squeue.avg_length node.mg_prop_qs.(g));
    avg_dispatcher_queue =
      sum_over_homes (fun node g -> Squeue.avg_length node.mg_disp_qs.(g));
    replicas = Array.map report nodes;
    leader_tx_pps = float_of_int (Nic.tx_packets nodes.(0).mg_nic) /. dur;
    leader_rx_pps = float_of_int (Nic.rx_packets nodes.(0).mg_nic) /. dur;
    leader_tx_mbps = float_of_int (Nic.tx_bytes nodes.(0).mg_nic) /. dur /. 1e6;
    leader_rx_mbps = float_of_int (Nic.rx_bytes nodes.(0).mg_nic) /. dur /. 1e6;
    rtt_leader = 0.;
    rtt_followers = 0.;
    rtt_idle = 0.;
    wal_syncs;
    wal_group_avg;
    tuned_bsz_final = p.bsz;
    tuned_wnd_final = p.wnd;
    view_changes = Hashtbl.length views_seen_g;
    unavailable_s =
      (if chaos then begin
         let worst = ref 0. in
         for g = 0 to g_count - 1 do
           let tail = p.warmup +. p.duration -. last_commit_g.(g) in
           worst := Float.max !worst (Float.max max_gap_g.(g) tail)
         done;
         !worst
       end
       else 0.);
    recovery_s = List.fold_left Float.max 0. !recovery_times;
    completed = !completed;
    safety_ok = safety_ok && !stale_answers = 0;
    executed_min;
    executed_max;
    client_retries = !client_retries;
    reads_completed = !reads_completed;
    read_rejects = !read_rejects;
    stale_answers = !stale_answers;
    timeline =
      Array.mapi
        (fun i n -> (p.warmup +. (float_of_int i *. p.chaos_bucket), n))
        timeline;
    events = Engine.events_processed eng;
    group_throughputs =
      Array.map (fun cg -> float_of_int cg /. dur) completed_g;
    globals_executed = !globals_executed;
    steals = 0;
    spec_dispatched = !spec_dispatched;
    spec_confirmed = !spec_confirmed;
    spec_aborted = !spec_aborted;
    commit_exec_latency =
      (if !ce_n = 0 then 0. else !ce_sum /. float_of_int !ce_n);
    (* Online reconfiguration is a single-group (run_single) feature:
       the multi-group model keeps static membership. *)
    reconfigs_applied = 0;
    final_epoch = 0;
    trace = tracer }

(* [groups <= 1] takes the original single-group path untouched — the
   determinism goldens pin its event stream byte-for-byte. *)
let run ?trace (p : Params.t) =
  if p.groups <= 1 then run_single ?trace p else run_multi ?trace p
