(** Simulated-thread state accounting and time-weighted gauges.

    The simulator's analogue of {!Msmr_platform.Thread_state}: every
    simulated thread tracks busy / blocked / waiting / other integrals in
    simulated time — these are *exact*, unlike the sampled figures of a
    real profiler, but measure the same four states as the paper. *)

type state = Busy | Blocked | Waiting | Other

type thread

val make_thread : Engine.t -> name:string -> thread
(** Starts in [Other] (not yet scheduled). *)

val name : thread -> string
(** The name given at {!make_thread} (the paper's thread names:
    [ClientIO-0], [Batcher], [Protocol], ...). *)

val set : thread -> state -> unit
(** Switch state, attributing the elapsed simulated time to the
    previous state. Re-asserting the current state only advances the
    accounting; it emits no trace span. *)

val state : thread -> state
(** The state last {!set}. *)

(** {1 Tracing hook}

    The observability layer ([Msmr_obs.Trace]) attaches here to turn
    the exact simulated-time accounting into Chrome-trace spans; this
    module stays independent of it. *)

type tracer = state -> float -> float -> unit
(** [tracer state t0 t1]: the thread spent simulated interval
    [[t0, t1)] (seconds) in [state]. Called on state changes only —
    consecutive same-state intervals arrive merged as one call. *)

val attach_tracer : thread -> tracer -> unit
(** Attach a tracer; the open interval restarts at the current
    simulated time. *)

val flush_tracer : thread -> unit
(** Emit the open interval without changing state — call when the
    measured window ends, so emitted spans sum exactly to
    {!totals}. *)

type totals = {
  busy : float;
  blocked : float;
  waiting : float;
  other : float;
}

val totals : thread -> totals
(** Includes the currently open interval. *)

val reset : thread -> unit
(** Zero the integrals (discard warm-up). *)

val pp_profile : Format.formatter -> (string * totals) list -> unit
(** Percentage breakdown normalised to the longest lifetime (the paper's
    Figure 8 / Figure 14 rendering). *)

module Gauge : sig
  (** Time-weighted average of a sampled quantity (queue lengths, window
      occupancy — Table I). *)

  type t

  val create : Engine.t -> t
  val update : t -> float -> unit
  (** Record that the quantity has had value [v] since the last update. *)

  val avg : t -> float
  val reset : t -> unit
end
