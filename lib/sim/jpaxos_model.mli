(** Simulated JPaxos replica group: the paper's threading architecture
    (Figure 3) running the {e real} {!Msmr_consensus.Paxos} engine on the
    simulated substrate (cores, locks, queues, NICs).

    Per replica the model spawns the same threads as the live runtime —
    [ClientIO-0..k], [Batcher], [Protocol], [Replica] (ServiceManager)
    and one [ReplicaIOSnd-p]/[ReplicaIORcv-p] pair per peer — and drives
    them with a closed-loop client population attached to the leader
    (node 0), as in the paper's evaluation setup.

    One call to {!run} is one experiment run; it returns every quantity
    the paper's figures and tables report. *)

type replica_report = {
  cpu_util_pct : float;
      (** total CPU consumed, % of one core (100% = 1 core busy) *)
  blocked_pct : float;
      (** sum of thread blocked time, % of the run duration *)
  threads : (string * Sstats.totals) list;   (** per-thread profile *)
}

type result = {
  throughput : float;            (** client requests completed / second *)
  client_latency : float;        (** mean client round-trip (s) *)
  instance_latency : float;      (** mean leader propose→decide (s) *)
  avg_batch_reqs : float;
  avg_batch_bytes : float;
  avg_window : float;            (** mean parallel ballots in execution *)
  avg_request_queue : float;
  avg_proposal_queue : float;
  avg_dispatcher_queue : float;
  replicas : replica_report array;   (** index 0 = leader *)
  leader_tx_pps : float;
  leader_rx_pps : float;
  leader_tx_mbps : float;        (** MB/s out *)
  leader_rx_mbps : float;
  rtt_leader : float;            (** probe RTT leader <-> follower (s) *)
  rtt_followers : float;         (** probe RTT follower <-> follower (s) *)
  rtt_idle : float;              (** probe RTT between two idle nodes (s) *)
  wal_syncs : int;
      (** leader device fsyncs in the measured window ([0] when
          [sync_policy = Sync_none]) *)
  wal_group_avg : float;
      (** mean records made durable per leader fsync — the group-commit
          batching factor ([1.0] under [Sync_serial] by construction) *)
  tuned_bsz_final : int;
      (** BSZ in force at the end of the run: the {!Msmr_consensus.Autotune}
          controller's last published value under [auto_tune], the static
          [bsz] otherwise *)
  tuned_wnd_final : int;         (** likewise for WND *)
  view_changes : int;
      (** distinct views (> 0) any node installed — [0] on a fault-free
          run, where node 0 leads view 0 throughout *)
  unavailable_s : float;
      (** widest window of the measured interval with no committing
          leader (max commit gap on the acting leader, including the
          tail); [0.] when [faults = []] *)
  recovery_s : float;
      (** worst crash→first-post-recovery-commit time over all restarts
          in the schedule; [0.] if nothing crashed (or never recovered) *)
  completed : int;               (** client requests completed (measured) *)
  safety_ok : bool;
      (** safety check: no node executed a request twice, all
          executed-request logs agree on their common prefix, and no
          fast-path read travelled back in time w.r.t. the issuing
          client's acked writes ([stale_answers = 0]); [true] when
          [faults = []] and no reads ran *)
  executed_min : int;            (** executed-log length, laggiest node *)
  executed_max : int;            (** executed-log length, most advanced *)
  client_retries : int;          (** chaos-client request retransmissions *)
  reads_completed : int;
      (** fast-path reads completed (measured); [0] unless
          [lease && read_ratio > 0.] *)
  read_rejects : int;
      (** read attempts refused by a replica (no lease / freshness not
          provable) and retried toward the leaseholder (measured) *)
  stale_answers : int;
      (** read-safety violations: linearizable reads older than the
          client's last acked write at issue, bounded-staleness reads
          older than the bound allows at serve time. Counted over the
          whole run (warm-up included); any nonzero forces
          [safety_ok = false] *)
  timeline : (float * int) array;
      (** completions per [chaos_bucket]-wide bucket (bucket start time,
          count) — the throughput trajectory through the fault schedule;
          [[||]] when [faults = []] *)
  events : int;                  (** simulation events processed *)
  group_throughputs : float array;
      (** per-group requests completed / second; [[| throughput |]] when
          [groups = 1] (the single-group path reports itself as one
          group) *)
  globals_executed : int;
      (** cross-group Global commands executed through the quiescence
          barrier (multi-group runs with [conflict_ratio > 0.]);
          [0] on the single-group path, whose Global accounting lives in
          the parallel-ServiceManager model *)
  steals : int;
      (** successful token steals in the work-stealing executor pool
          over the whole run, warm-up included ([Params.steal] with
          [exec_threads > 1] — at saturation no executor idles, so
          steals concentrate in the ramp); [0] on the fixed-route and
          serial paths, and on multi-group runs (which model the
          fixed-route pool) *)
  spec_dispatched : int;
      (** speculation frames the leader pre-dispatched ahead of commit,
          whole run ([Params.speculate]); [0] with speculation off *)
  spec_confirmed : int;
      (** speculations whose predicted order matched the decide stream —
          the staged result was promoted without re-execution *)
  spec_aborted : int;
      (** speculations rolled back (forced mispredict, view change /
          crash, linearizable read, Global barrier) *)
  commit_exec_latency : float;
      (** mean decide→reply latency (s) over measured completions — the
          commit→execute gap the speculative path collapses. Measured on
          every parallel-ServiceManager path, speculation on or off;
          [0.] when unmeasured (serial path, or no completions) *)
  reconfigs_applied : int;
      (** [Membership_changed] adoptions summed over all nodes, whole run
          ([Params.reconfig_at] on the single-group path); [0] with a
          static membership and on multi-group runs *)
  final_epoch : int;
      (** highest membership epoch any node had adopted by the end of the
          run; [0] with a static membership *)
  trace : Msmr_obs.Trace.t option;
      (** present iff [run ~trace:true]; stamped in simulated time and
          covering exactly the measured window — export with
          {!Msmr_obs.Trace_export.write_file} *)
}

val run : ?trace:bool -> Params.t -> result
(** Deterministic: same parameters, same result. [trace] (default
    [false]) records per-thread state spans (cat = module, name = the
    state), decide / batch-seal instants, lock-contention instants and
    queue-depth counters for the measured window; headline results are
    also published to {!Msmr_obs.Metrics.default} with [mode="sim"]
    labels.

    With [Params.groups <= 1] this is the classic single-group model,
    byte-for-byte the pre-multi-group path (golden-pinned). With
    [groups > 1] it runs the compartmentalized multi-group model:
    [groups] independent Paxos instances per node (group [g] led by node
    [g mod n]), a Router stage hash-partitioning client requests to
    groups, a per-group ProxyLeader stage fanning out multi-destination
    sends, per-group logs multiplexed over shared per-peer links, and a
    cross-group quiescence barrier for Global commands (classified on
    group 0's decide stream at [conflict_ratio]). Multi-group runs
    support crash-only fault schedules; [auto_tune] and [n_batchers]
    are ignored (static tuning, one Batcher per group). *)
