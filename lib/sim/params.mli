(** Simulation parameters: cluster profiles, CPU cost model, workload.

    The cost model is calibrated (see DESIGN.md §5) so the simulated
    JPaxos leader matches the paper's anchor points: ≈15 K requests/s on
    one `parapluie` core, NIC-bound ≈100-120 K requests/s at 8+ cores,
    with the per-thread busy shares of Figure 8. *)

type profile = {
  profile_name : string;
  max_cores : int;
  cpu_speed : float;
      (** single-thread speed relative to parapluie (costs divide by it) *)
  pkt_rate : float;      (** NIC packets/s per direction (kernel limit) *)
  bandwidth : float;     (** bytes/s *)
}

val parapluie : profile
(** 24-core AMD Opteron 6164 HE cluster, 1 GbE. *)

val edel : profile
(** 8-core Intel Xeon E5520 cluster, 1 GbE. *)

type costs = {
  client_read : float;   (** ClientIO: read + deserialise + cache check *)
  client_write : float;  (** ClientIO: serialise + write reply *)
  batcher_per_req : float;
  batcher_per_batch : float;
  protocol_per_event : float;
  exec_per_req : float;  (** ServiceManager: execute + reply cache update *)
  io_ser_per_msg : float;
  io_ser_per_byte : float;
  io_deser_per_msg : float;
  io_deser_per_byte : float;
  switch_cost : float;   (** context switch *)
  dispatch_per_req : float;
      (** parallel ServiceManager: scheduler cost to classify + route one
          request to an executor (paid only when [exec_threads > 1]) *)
}

val default_costs : costs

type sync_policy =
  | Sync_none
      (** no stable storage — the paper's evaluation configuration, and
          the exact pre-durability simulation path *)
  | Sync_serial
      (** [Wal.Sync_every_write] without the pipeline: the Protocol
          thread blocks on one device fsync per persisted event — the
          serial-bottleneck shape the durability pipeline removes *)
  | Sync_group
      (** the StableStorage pipeline: a per-node StableStorage process
          drains a log queue in bursts, pays one device fsync per burst
          (group commit), then releases the gated sends *)

type t = {
  profile : profile;
  costs : costs;
  n : int;                  (** replicas *)
  groups : int;
      (** independent consensus groups (compartmentalized multi-group
          Paxos). [1] (the default) is the classic single-group model,
          simulated on the exact pre-multi-group path (golden-pinned).
          With [groups > 1] each group runs its own Paxos engine,
          Batcher, ProxyLeader and log on every node; group [g] is led
          by node [g mod n], spreading leader work (and leader NIC
          load) round-robin over the cluster. Clients are partitioned
          over groups by key hash (modelled as [cid mod groups]). *)
  cores : int;              (** cores per node *)
  client_io_threads : int;
  wnd : int;                (** max parallel ballots (WND) *)
  bsz : int;                (** max batch bytes (BSZ) *)
  n_clients : int;
  request_size : int;       (** wire size of one request (paper: 128 B) *)
  reply_size : int;
  warmup : float;           (** simulated seconds discarded *)
  duration : float;         (** simulated seconds measured *)
  net_contention_per_io_thread : float;
      (** kernel network-stack slowdown per ClientIO thread beyond 8 —
          the effect behind Figure 9's degradation *)
  n_batchers : int;
      (** extension (paper §VI-B): parallel Batcher threads, each with
          its own request queue *)
  rss : bool;
      (** extension (paper footnote 5): Receive Side Scaling spreads NIC
          interrupts over cores, doubling the kernel packet budget *)
  exec_threads : int;
      (** extension (CBASE-style parallel ServiceManager): executor
          threads the scheduler fans decided requests out to. [1] (the
          default) is the paper's serial ServiceManager, simulated on the
          exact pre-executor path. *)
  steal : bool;
      (** extension (lock-free runtime): work-stealing executor pool.
          Requests route to per-conflict-key lanes (8 per executor);
          each lane is owned by a token held by exactly one executor at
          a time, and an executor whose token queue runs dry steals
          half the victim's tokens. [false] (the default, also used
          when [exec_threads <= 1]) keeps the exact fixed-route
          [sm_parallel] path (golden-pinned). Deterministic: victims
          are scanned in ring order, no RNG. *)
  speculate : bool;
      (** extension (DESIGN.md section 16): early scheduling +
          optimistic speculative execution. The leader pre-dispatches
          each fresh request into its executor lane at ingress and
          executes it optimistically against the predicted (log-append)
          order; the decide then confirms the staged result or rolls it
          back and re-executes ordered. [false] (the default) is
          byte-for-byte the ordered path (golden-pinned). *)
  mispredict_ratio : float;
      (** fraction of speculations whose prediction is forced wrong
          (deterministic floor-counter pattern, no RNG) — models
          reproposal / reordering windows that the single-leader happy
          path never exhibits, making rollback falsifiable. [0.0] (the
          default) mispredicts only on real reorderings (view changes,
          chaos). Applies only when [speculate = true]. *)
  skew : float;
      (** fraction of clients classified "hot" (deterministic hash, no
          RNG): hot clients all route to executor 0's lanes, modelling
          a zipfian-like conflict-key skew that convoys a fixed-route
          pool. [0.0] (the default) is byte-for-byte the uniform path.
          Applies only when [exec_threads > 1]. *)
  conflict_ratio : float;
      (** fraction of decided requests classified Global (conflicting
          with everything): each forces a quiescence barrier before
          executing serially on the scheduler. [0.0] = fully parallel
          workload; [1.0] = serial. Deterministic pattern, no RNG. *)
  sync_policy : sync_policy;
      (** durable-mode model; [Sync_none] (the default) leaves the
          simulation byte-for-byte the pre-durability path *)
  fsync_latency : float;
      (** seconds one device fsync takes (default 5 ms — a commodity
          magnetic disk of the paper's era); fsyncs on one node's device
          serialise *)
  auto_tune : bool;
      (** run the {!Msmr_consensus.Autotune} controller on the leader in
          simulated time: [wnd]/[bsz] become the starting point and the
          controller retunes them every [tune_epoch]. [false] (the
          default) is byte-for-byte the static path. Runs stay fully
          deterministic either way. *)
  tune_epoch : float;  (** controller epoch in simulated seconds *)
  read_ratio : float;
      (** fraction of each client's operations that are reads (the
          read-heavy fast path, DESIGN.md §15). [0.0] (the default) is
          byte-for-byte the all-write path (golden-pinned). Reads are
          interleaved deterministically (floor-counter pattern, no RNG).
          With [lease = false] reads take the ordered path like any
          write — the "ordered-read baseline" bench008 compares
          against. *)
  lease : bool;
      (** leader-lease read fast path: group leaders run quorum-granted
          lease renewal rounds ({!Msmr_consensus.Lease} driven in
          simulated time on per-node drifted clocks) and serve reads
          from local executed state, bypassing Batcher/Protocol/
          replication; non-holders reject and the client retries toward
          the leader hint. [false] (the default) leaves the event
          stream byte-for-byte the lease-free one (golden-pinned). *)
  stale_reads : bool;
      (** with [lease]: reads carry a staleness bound
          ([staleness_bound]) and spread over {e all} replicas; a
          follower answers from local state when it can prove freshness
          (caught-up decide stream within the bound), else rejects.
          [false] sends every read to the leaseholder
          (linearizable). *)
  clock_skew : float;
      (** bound on per-node clock error (seconds): node [i] reads time
          [t*(1+drift_i) + offset_i] with the deterministic per-node
          drift and offset kept within this bound — the clock model the
          lease's [clock_skew_bound_s] padding is up against. [0.0] =
          perfect clocks. *)
  lease_duration : float;
      (** lease length in simulated seconds (renewed every third);
          becomes [Config.lease_duration_s] for the sim's lease
          policy *)
  staleness_bound : float;
      (** client-supplied bound for [stale_reads] (seconds) *)
  faults : Sfault.event list;
      (** fault-injection schedule. [[]] (the default) disables the whole
          chaos machinery and is byte-for-byte the fault-free simulation
          path (golden-pinned). Non-empty runs stay fully deterministic:
          the schedule plus [chaos_seed] fix every drop, delay and
          duplication. *)
  members0 : int list;
      (** boot-time voting membership over the node-id universe [0, n)
          ([Config.members0]); [[]] (the default) means all nodes.
          Non-member nodes still run as processes — they are the spare
          capacity [reconfig_at] can grow into. *)
  reconfig_at : (float * int list) list;
      (** membership-change schedule: at each simulated time, drive the
          cluster's voter set to the given target (adding nodes as
          learners, promoting them once caught up, then removing the
          rest), one consensus-ordered step at a time through the
          current leader. [[]] (the default) disables the reconfig
          driver; like [faults], a non-empty schedule enables the chaos
          machinery (failure detector, retransmissions, safety
          checking) and stays fully deterministic. *)
  chaos_seed : int;  (** seeds the per-run chaos PRNG ({!Sfault.make_net}) *)
  chaos_fd_interval : float;
      (** failure-detector heartbeat interval under chaos (overrides
          [Config.fd_interval_s]; the fault-free path runs no detector) *)
  chaos_fd_timeout : float;   (** leader-silence suspicion timeout *)
  chaos_rtx_interval : float; (** retransmission interval under chaos *)
  chaos_client_timeout : float;
      (** chaos clients retransmit the same request (to the node they
          believe leads) after this long without a reply *)
  chaos_bucket : float;
      (** width of the completion-timeline buckets in the result (the
          throughput trajectory through a fault) *)
}

val default : ?profile:profile -> n:int -> cores:int -> unit -> t
(** Paper defaults: WND 10, BSZ 1300, 1800 clients, 128 B requests, 8 B
    replies, ClientIO threads auto-chosen by {!auto_io_threads}. *)

val auto_io_threads : cores:int -> int
(** The paper tunes ClientIO threads per core count (3-6 optimal); this
    picks a sensible value: [max 1 (min 5 (cores - 1))]. *)
