type t = {
  eng : Engine.t;
  latency : float;
  mutable busy_until : float;
  mutable stall_until : float;
  mutable pending : int;
  mutable syncs : int;
  mutable records_synced : int;
}

let create eng ~fsync_latency =
  { eng; latency = fsync_latency; busy_until = 0.; stall_until = 0.;
    pending = 0; syncs = 0; records_synced = 0 }

let stall t ~until = t.stall_until <- Float.max t.stall_until until

let append t n = t.pending <- t.pending + n

let has_pending t = t.pending > 0

let fsync t k =
  (* One device: concurrent fsyncs serialise behind [busy_until]. *)
  let start =
    Float.max t.stall_until (Float.max (Engine.now t.eng) t.busy_until)
  in
  let fin = start +. t.latency in
  t.busy_until <- fin;
  t.syncs <- t.syncs + 1;
  t.records_synced <- t.records_synced + t.pending;
  t.pending <- 0;
  Engine.schedule_at t.eng fin k

let syncs t = t.syncs
let records_synced t = t.records_synced

let avg_group t =
  if t.syncs = 0 then 0. else float_of_int t.records_synced /. float_of_int t.syncs

let reset_counters t =
  t.syncs <- 0;
  t.records_synced <- 0
