(** Simulated mutex with FIFO hand-off and blocked-time accounting.

    Waiting for the lock puts the simulated thread in the [Blocked]
    state — the quantity the paper plots as "total blocked time". The
    holder typically burns CPU ({!Cpu.work}) inside the critical
    section, which is what makes contention visible. *)

type t

val create : Engine.t -> ?name:string -> unit -> t

val name : t -> string

val acquire : t -> Sstats.thread -> unit
val release : t -> unit

val set_on_contended : t -> (t -> Sstats.thread -> unit) -> unit
(** [set_on_contended t f] installs a hook called as [f t st] each time
    an {!acquire} finds the lock held — the observability layer uses it
    to emit contention instants on the blocked thread's trace track. *)

val with_lock : t -> Sstats.thread -> (unit -> 'a) -> 'a

val contenders : t -> int
(** Threads currently blocked on the lock. *)

val acquisitions : t -> int
val contended_acquisitions : t -> int
