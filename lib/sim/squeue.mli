(** Simulated bounded blocking queue.

    Models the runtime's {!Msmr_platform.Bounded_queue} including its
    internal lock: [put]/[take] acquire a per-queue {!Slock} and burn
    [op_cost] CPU inside the critical section, so threads hammering the
    same queue from different cores show genuine blocked time (this is
    where the Batcher's ~15% blocked share in the paper's Figure 8 comes
    from). Waiting for data/space is accounted as [Waiting].

    The queue keeps a time-weighted length {!Sstats.Gauge} for Table I. *)

type 'a t

val create :
  Engine.t ->
  cpu:Cpu.t ->
  capacity:int ->
  ?op_cost:float ->
  name:string ->
  unit ->
  'a t
(** [op_cost] defaults to 250 ns per operation. *)

val name : 'a t -> string
val length : 'a t -> int
val capacity : 'a t -> int

val put : 'a t -> Sstats.thread -> 'a -> unit
(** Blocks (state [Waiting]) while full. *)

val try_put : 'a t -> Sstats.thread -> 'a -> bool

val take : 'a t -> Sstats.thread -> 'a
(** Blocks (state [Waiting]) while empty. *)

val try_take : 'a t -> Sstats.thread -> 'a option

val take_timeout : 'a t -> Sstats.thread -> timeout:float -> 'a option

val avg_length : 'a t -> float
val reset_stats : 'a t -> unit

val set_on_length : 'a t -> (int -> unit) -> unit
(** [set_on_length t f] installs a hook called with the new queue
    length after every push and pop — the observability layer uses it
    to record queue-depth counter series in the trace. *)

val set_on_contended : 'a t -> (Slock.t -> Sstats.thread -> unit) -> unit
(** Forward of {!Slock.set_on_contended} for the queue's internal
    lock. *)
