type profile = {
  profile_name : string;
  max_cores : int;
  cpu_speed : float;
  pkt_rate : float;
  bandwidth : float;
}

let parapluie =
  { profile_name = "parapluie"; max_cores = 24; cpu_speed = 1.0;
    pkt_rate = 150e3; bandwidth = 114e6 }

let edel =
  (* Slightly slower single-thread throughput in the paper's results
     (~11.4 K vs ~15.4 K requests/s on one core). *)
  { profile_name = "edel"; max_cores = 8; cpu_speed = 0.75;
    pkt_rate = 150e3; bandwidth = 114e6 }

type costs = {
  client_read : float;
  client_write : float;
  batcher_per_req : float;
  batcher_per_batch : float;
  protocol_per_event : float;
  exec_per_req : float;
  io_ser_per_msg : float;
  io_ser_per_byte : float;
  io_deser_per_msg : float;
  io_deser_per_byte : float;
  switch_cost : float;
  dispatch_per_req : float;
}

let default_costs =
  { client_read = 18e-6;
    client_write = 8e-6;
    batcher_per_req = 5e-6;
    batcher_per_batch = 8e-6;
    protocol_per_event = 7e-6;
    exec_per_req = 6e-6;
    io_ser_per_msg = 4e-6;
    io_ser_per_byte = 4e-9;
    io_deser_per_msg = 5e-6;
    io_deser_per_byte = 4e-9;
    switch_cost = 2e-6;
    dispatch_per_req = 1e-6 }

type sync_policy =
  | Sync_none
  | Sync_serial
  | Sync_group

type t = {
  profile : profile;
  costs : costs;
  n : int;
  groups : int;
  cores : int;
  client_io_threads : int;
  wnd : int;
  bsz : int;
  n_clients : int;
  request_size : int;
  reply_size : int;
  warmup : float;
  duration : float;
  net_contention_per_io_thread : float;
  n_batchers : int;
  rss : bool;
  exec_threads : int;
  steal : bool;
  speculate : bool;
  mispredict_ratio : float;
  skew : float;
  conflict_ratio : float;
  sync_policy : sync_policy;
  fsync_latency : float;
  auto_tune : bool;
  tune_epoch : float;
  read_ratio : float;
  lease : bool;
  stale_reads : bool;
  clock_skew : float;
  lease_duration : float;
  staleness_bound : float;
  faults : Sfault.event list;
  members0 : int list;
  reconfig_at : (float * int list) list;
  chaos_seed : int;
  chaos_fd_interval : float;
  chaos_fd_timeout : float;
  chaos_rtx_interval : float;
  chaos_client_timeout : float;
  chaos_bucket : float;
}

let auto_io_threads ~cores = max 1 (min 5 (cores - 1))

let default ?(profile = parapluie) ~n ~cores () =
  { profile;
    costs = default_costs;
    n;
    groups = 1;
    cores;
    client_io_threads = auto_io_threads ~cores;
    wnd = 10;
    bsz = 1300;
    n_clients = 1800;
    request_size = 128;
    reply_size = 8;
    warmup = 0.5;
    duration = 2.0;
    net_contention_per_io_thread = 0.016;
    n_batchers = 1;
    rss = false;
    exec_threads = 1;
    steal = false;
    speculate = false;
    mispredict_ratio = 0.0;
    skew = 0.0;
    conflict_ratio = 0.0;
    sync_policy = Sync_none;
    fsync_latency = 5e-3;
    auto_tune = false;
    tune_epoch = 0.01;
    read_ratio = 0.0;
    lease = false;
    stale_reads = false;
    clock_skew = 0.0;
    lease_duration = 0.5;
    staleness_bound = 0.1;
    faults = [];
    members0 = [];
    reconfig_at = [];
    chaos_seed = 1;
    chaos_fd_interval = 0.02;
    chaos_fd_timeout = 0.1;
    chaos_rtx_interval = 0.05;
    chaos_client_timeout = 0.25;
    chaos_bucket = 0.05 }
