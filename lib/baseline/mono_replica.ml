module Bq = Msmr_platform.Bounded_queue
module Worker = Msmr_platform.Worker
module Thread_state = Msmr_platform.Thread_state
module Mclock = Msmr_platform.Mclock
module Client_msg = Msmr_wire.Client_msg
module Transport = Msmr_runtime.Transport
module Reply_cache = Msmr_runtime.Reply_cache
open Msmr_consensus

type event =
  | Client_req of { raw : bytes; reply_to : bytes -> unit }
  | Peer_msg of { from : Types.node_id; msg : Msg.t }
  | Suspect

type rtx_entry = {
  r_dest : Types.node_id list;
  r_msg : Msg.t;
  r_cancelled : bool Atomic.t;
}

type t = {
  cfg : Config.t;
  me : Types.node_id;
  service : Msmr_runtime.Service.t;
  events : event Bq.t;                 (* THE queue: everything funnels here *)
  send_qs : Msg.t Bq.t array;
  rtx_dq : rtx_entry Msmr_platform.Delay_queue.t;
  links : (Types.node_id * Transport.link) list;
  fd : Failure_detector.t;
  view_now : int Atomic.t;
  am_leader : bool Atomic.t;
  executed : Msmr_platform.Rate_meter.Counter.t;
  running : bool Atomic.t;
  mutable threads : Worker.t list;
}

let me t = t.me
let is_leader t = Atomic.get t.am_leader
let executed_count t = Msmr_platform.Rate_meter.Counter.get t.executed

let submit t ~raw ~reply_to =
  try Bq.put t.events (Client_req { raw; reply_to }) with Bq.Closed -> ()

(* The single event loop: protocol + batching + execution + replies. *)
let event_loop t st =
  let engine = Paxos.create t.cfg ~me:t.me in
  let batcher = Batcher.create t.cfg ~src:t.me in
  let reply_cache = Reply_cache.create () in
  let rtx_map : (Paxos.rtx_key, rtx_entry) Hashtbl.t = Hashtbl.create 256 in
  (* client_id -> reply sink *)
  let routes : (int, bytes -> unit) Hashtbl.t = Hashtbl.create 256 in
  let send dest msg =
    List.iter
      (fun d ->
         if d <> t.me then
           match Bq.try_put t.send_qs.(d) msg with
           | true | false -> ()
           | exception Bq.Closed -> ())
      dest
  in
  let execute_value value =
    match value with
    | Value.Noop | Value.Reconfig _ -> ()
    | Value.Batch batch ->
      List.iter
        (fun (req : Client_msg.request) ->
           if not (Reply_cache.already_executed reply_cache req.id) then begin
             let result = t.service.execute req in
             Reply_cache.store reply_cache req.id result;
             Msmr_platform.Rate_meter.Counter.incr t.executed;
             match Hashtbl.find_opt routes req.id.client_id with
             | Some sink ->
               sink (Client_msg.reply_to_bytes { id = req.id; result })
             | None -> ()
           end)
        batch.Batch.requests
  in
  let apply actions =
    List.iter
      (fun action ->
         match action with
         | Paxos.Send { dest; msg } -> send dest msg
         | Paxos.Execute { value; _ } -> execute_value value
         | Paxos.Schedule_rtx { key; dest; msg } ->
           let entry =
             { r_dest = dest; r_msg = msg; r_cancelled = Atomic.make false }
           in
           Hashtbl.replace rtx_map key entry;
           let at_ns =
             Int64.add (Mclock.now_ns ())
               (Mclock.ns_of_s t.cfg.retransmit_interval_s)
           in
           (try
              ignore (Msmr_platform.Delay_queue.schedule t.rtx_dq ~at_ns entry)
            with Msmr_platform.Delay_queue.Closed -> ())
         | Paxos.Cancel_rtx key -> (
             match Hashtbl.find_opt rtx_map key with
             | Some entry ->
               Atomic.set entry.r_cancelled true;
               Hashtbl.remove rtx_map key
             | None -> ())
         | Paxos.View_changed { view; i_am_leader; _ } ->
           Atomic.set t.view_now view;
           Atomic.set t.am_leader i_am_leader;
           Failure_detector.set_view t.fd ~view ~now_ns:(Mclock.now_ns ())
         | Paxos.Install_snapshot { state; _ } -> t.service.restore state
         | Paxos.Membership_changed _ -> ())
      actions
  in
  apply (Paxos.bootstrap engine);
  let handle = function
    | Client_req { raw; reply_to } -> (
        match Client_msg.request_of_bytes raw with
        | req -> (
            match Reply_cache.lookup reply_cache req.id with
            | Reply_cache.Cached result ->
              reply_to (Client_msg.reply_to_bytes { id = req.id; result })
            | Reply_cache.Stale -> ()
            | Reply_cache.Fresh ->
              Hashtbl.replace routes req.id.client_id reply_to;
              (match Batcher.add batcher req ~now_ns:(Mclock.now_ns ()) with
               | Some batch -> apply (Paxos.propose engine batch)
               | None -> ()))
        | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _)
          ->
          ())
    | Peer_msg { from; msg } -> apply (Paxos.receive engine ~from msg)
    | Suspect -> apply (Paxos.suspect_leader engine)
  in
  let last_catchup = ref (Mclock.now_ns ()) in
  while Atomic.get t.running do
    let timeout_s =
      match Batcher.deadline_ns batcher with
      | None -> 0.001
      | Some d ->
        Float.max 0.0001
          (Float.min 0.001 (Mclock.s_of_ns (Int64.sub d (Mclock.now_ns ()))))
    in
    (match Bq.take_timeout ~st t.events ~timeout_s with
     | Some ev -> handle ev
     | None -> ()
     | exception Bq.Closed -> Atomic.set t.running false);
    (match Batcher.flush_due batcher ~now_ns:(Mclock.now_ns ()) with
     | Some batch -> apply (Paxos.propose engine batch)
     | None -> ());
    let now = Mclock.now_ns () in
    if
      Int64.sub now !last_catchup >= Mclock.ns_of_s t.cfg.catchup_interval_s
    then begin
      last_catchup := now;
      apply (Paxos.tick_catchup engine)
    end
  done

let sender_loop t peer (link : Transport.link) st =
  let continue = ref true in
  while !continue do
    match Bq.take ~st t.send_qs.(peer) with
    | msg ->
      link.send_bytes (Msg.encode msg);
      Failure_detector.note_send t.fd ~dest:peer ~now_ns:(Mclock.now_ns ())
    | exception Bq.Closed -> continue := false
  done

let receiver_loop t peer (link : Transport.link) st =
  let continue = ref true in
  while !continue do
    match
      Thread_state.enter st Thread_state.Other (fun () -> link.recv_bytes ())
    with
    | None -> continue := false
    | Some raw -> (
        match Msg.decode raw with
        | msg ->
          Failure_detector.note_recv t.fd ~from:peer ~now_ns:(Mclock.now_ns ());
          (try Bq.put ~st t.events (Peer_msg { from = peer; msg })
           with Bq.Closed -> continue := false)
        | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _)
          ->
          ())
  done

let fd_loop t st =
  while Atomic.get t.running do
    let now = Mclock.now_ns () in
    List.iter
      (fun verdict ->
         match verdict with
         | Failure_detector.Heartbeat_to peers ->
           if Atomic.get t.am_leader then begin
             let msg =
               Msg.Heartbeat
                 { view = Atomic.get t.view_now; first_undecided = 0 }
             in
             List.iter (fun p -> ignore (Bq.try_put t.send_qs.(p) msg)) peers
           end
         | Failure_detector.Suspect _ -> (
             try Bq.put t.events Suspect with Bq.Closed -> ()))
      (Failure_detector.poll t.fd ~now_ns:now);
    Thread_state.enter st Thread_state.Other (fun () -> Mclock.sleep_s 0.01)
  done

let retransmitter_loop t st =
  let continue = ref true in
  while !continue do
    match Msmr_platform.Delay_queue.take ~st t.rtx_dq with
    | entry ->
      if not (Atomic.get entry.r_cancelled) then begin
        List.iter
          (fun d ->
             if d <> t.me then ignore (Bq.try_put t.send_qs.(d) entry.r_msg))
          entry.r_dest;
        let at_ns =
          Int64.add (Mclock.now_ns ())
            (Mclock.ns_of_s t.cfg.retransmit_interval_s)
        in
        try ignore (Msmr_platform.Delay_queue.schedule t.rtx_dq ~at_ns entry)
        with Msmr_platform.Delay_queue.Closed -> continue := false
      end
    | exception Msmr_platform.Delay_queue.Closed -> continue := false
  done

let create ~cfg ~me ~links ~service () =
  let t =
    { cfg; me; service;
      events = Bq.create ~capacity:8192;
      send_qs = Array.init cfg.Config.n (fun _ -> Bq.create ~capacity:4096);
      rtx_dq = Msmr_platform.Delay_queue.create ();
      links;
      fd = Failure_detector.create cfg ~me ~now_ns:(Mclock.now_ns ());
      view_now = Atomic.make 0;
      am_leader = Atomic.make false;
      executed = Msmr_platform.Rate_meter.Counter.create ();
      running = Atomic.make true;
      threads = [] }
  in
  let spawn name f =
    Worker.spawn ~name:(Printf.sprintf "mono-r%d/%s" me name) (fun st ->
        f t st)
  in
  let io =
    List.concat_map
      (fun (peer, link) ->
         [ Worker.spawn ~name:(Printf.sprintf "mono-r%d/Snd-%d" me peer)
             (fun st -> sender_loop t peer link st);
           Worker.spawn ~name:(Printf.sprintf "mono-r%d/Rcv-%d" me peer)
             (fun st -> receiver_loop t peer link st) ])
      links
  in
  t.threads <-
    [ spawn "EventLoop" event_loop;
      spawn "FailureDetector" fd_loop;
      spawn "Retransmitter" retransmitter_loop ]
    @ io;
  t

let stop t =
  if Atomic.exchange t.running false then begin
    Bq.close t.events;
    Array.iter Bq.close t.send_qs;
    Msmr_platform.Delay_queue.close t.rtx_dq;
    List.iter (fun (_, (l : Transport.link)) -> l.close ()) t.links;
    Worker.join_all t.threads
  end

module Cluster = struct
  type replica = t

  type t = {
    hub : Transport.Hub.t;
    replicas : replica array;
  }

  let create ~cfg ~service () =
    let n = cfg.Config.n in
    let hub = Transport.Hub.create ~n () in
    let replicas =
      Array.init n (fun me ->
          let links =
            List.filter_map
              (fun peer ->
                 if peer = me then None
                 else Some (peer, Transport.Hub.link hub ~me ~peer))
              (List.init n Fun.id)
          in
          create ~cfg ~me ~links ~service:(service ()) ())
    in
    { hub; replicas }

  let replicas t = t.replicas

  let await_leader ?(timeout_s = 5.0) t =
    let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s timeout_s) in
    let rec go () =
      match Array.find_opt is_leader t.replicas with
      | Some r -> r
      | None ->
        if Int64.compare (Mclock.now_ns ()) deadline > 0 then
          failwith "Mono_replica.Cluster.await_leader: timeout"
        else begin
          Mclock.sleep_s 0.005;
          go ()
        end
    in
    go ()

  let stop t =
    Array.iter stop t.replicas;
    Transport.Hub.close t.hub
end
