(** Multi-group Paxos: an in-process sharded cluster.

    Compartmentalized multi-group deployment (ROADMAP open item 1 /
    DESIGN.md §13): [groups] independent consensus groups, each an
    n-replica {!Replica.Cluster} with its own Paxos instance, log,
    Batcher and decide stream, with group [g] led by node [g mod n] —
    leadership (and the leader's fan-out bandwidth, the single-group
    ceiling) spreads round-robin over the node ids.

    {!submit} is the router stage: it classifies each request through
    the conflict classifier and hands it to the group that
    {!Router.target_of_conflict} names. [Global] requests are serialised
    against {e every} group through a quiescence gate: the router stops
    admitting new requests, waits until every group's in-flight
    requests have replied, runs the global through group 0's log, and
    reopens the gate when its reply arrives.

    The barrier quiesces at the routing/reply level — a reply proves the
    request executed on its group's leader, so when the gate closes the
    leaders' service states are mutually consistent up to the admitted
    prefix. Followers may still be applying their decide streams; the
    same relaxation the per-group catch-up already tolerates. The
    simulator's multi-group model implements the node-local equivalent
    (a barrier across the per-group Replica threads of each node).

    Online membership change (DESIGN.md §17) is a single-group feature:
    each inner {!Replica.Cluster} supports [join]/[decommission], but
    this module does not coordinate an epoch walk across groups —
    [Config.validate] requires [members0] to contain every group's
    initial leader, and a multi-group deployment is expected to keep
    its membership static (reconfigure per group, or drain and
    redeploy). *)

type t

val create :
  ?client_io_threads:int ->
  ?executor_threads:int ->
  ?proxy_leaders:int ->
  ?conflict:(Msmr_wire.Client_msg.request -> Service.conflict) ->
  ?durability:(gid:int -> node:int -> Replica.durability) ->
  groups:int ->
  cfg:Msmr_consensus.Config.t ->
  service:(gid:int -> Service.t) ->
  unit ->
  t
(** Build [groups] clusters of [cfg.n] replicas each (the [groups] field
    of [cfg] is overridden). [service ~gid] must yield a fresh service
    instance per call; state is {e partitioned}, not replicated, across
    groups — a group's instances only ever see that group's requests.

    [conflict] is the router's classifier; it must agree with the
    classification the services themselves report (same keys → same
    group, see {!Router}). Default: the classifier of a throwaway
    [service ~gid:0] instance.

    [durability] maps (group, node) to a storage mode — give each group
    its own directory or use {!Msmr_storage.Replica_store}'s [?gid]
    namespace. Default: all ephemeral. *)

val groups : t -> int

val cluster : t -> gid:int -> Replica.Cluster.t
(** Group [gid]'s underlying cluster (for tests and fault injection). *)

val await_leaders : ?timeout_s:float -> t -> unit
(** Wait until every group has an active leader. @raise Failure on
    timeout. *)

val submit : t -> raw:bytes -> reply_to:Client_io.sink -> unit
(** Route one serialised client request ({!Msmr_wire.Client_msg}) to its
    group's current leader; [Global] requests take the quiescence
    barrier described above. Blocks while the gate is closed.

    Read frames take the lease fast path: classified by the same
    [conflict] function, linearizable reads go to their group's acting
    leader (the leaseholder), bounded-staleness reads round-robin over
    the group's replicas, and neither touches the Global gate (reads
    mutate nothing and a group's keys are only written through its own
    log). *)

val routed_count : t -> int
(** Requests routed so far (behind [msmr_replica_router_routed_total]). *)

val globals_count : t -> int
(** Requests that took the cross-group barrier. *)

val reads_routed_count : t -> int
(** Read frames routed by the fast path (behind
    [msmr_replica_router_reads_total]). *)

val stop : t -> unit
(** Stop every group's cluster. Idempotent. *)
