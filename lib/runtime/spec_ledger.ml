module Client_msg = Msmr_wire.Client_msg

type frame = {
  f_id : Client_msg.request_id;
  f_key : string;
  f_lane : int;
  f_dispatch_ns : int64;
  (* Written by the executor that runs the speculative execution, read by
     the (possibly different) executor that later applies the abort. The
     lane FIFO orders the two accesses; the Atomic makes the hand-off
     safe under work stealing without relying on the ring's fences. *)
  f_undo : (unit -> unit) option Atomic.t;
}

type t = {
  (* Unresolved frames by client id — scheduler-thread only. Clients are
     sequential, so one unresolved frame per client suffices. *)
  frames : (int, frame) Hashtbl.t;
  (* Unresolved frames per conflict key in admit (= lane FIFO = predicted
     decide) order — scheduler-thread only. *)
  by_key : (string, frame Queue.t) Hashtbl.t;
  (* Frames whose speculative effects may be applied but are not yet
     confirmed-or-undone. Incremented at admit (scheduler), decremented
     by the executor after the confirm or the undo has been applied —
     only then is the service state clean for readers. *)
  effects : int Atomic.t;
}

type verdict =
  | Confirm of frame
  | Mispredict of frame list
  | No_frame

let create () =
  { frames = Hashtbl.create 256;
    by_key = Hashtbl.create 256;
    effects = Atomic.make 0 }

let unresolved t = Hashtbl.length t.frames
let effects_pending t = Atomic.get t.effects > 0

let admit t (id : Client_msg.request_id) ~key ~lane ~now_ns =
  if Hashtbl.mem t.frames id.client_id then None
  else begin
    let frame =
      { f_id = id; f_key = key; f_lane = lane; f_dispatch_ns = now_ns;
        f_undo = Atomic.make None }
    in
    Hashtbl.replace t.frames id.client_id frame;
    let q =
      match Hashtbl.find_opt t.by_key key with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.by_key key q;
        q
    in
    Queue.push frame q;
    Atomic.incr t.effects;
    Some frame
  end

(* Remove every unresolved frame on [key], newest first — the order their
   undos must apply in (each undo restores the state its execution
   observed, so a suffix unwinds LIFO). *)
let drop_key t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> []
  | Some q ->
    let frames = Queue.fold (fun acc f -> f :: acc) [] q in
    Queue.clear q;
    Hashtbl.remove t.by_key key;
    List.iter (fun f -> Hashtbl.remove t.frames f.f_id.client_id) frames;
    frames

let on_decide t (id : Client_msg.request_id) ~key =
  match Hashtbl.find_opt t.by_key key with
  | None -> No_frame
  | Some q when Queue.is_empty q -> No_frame
  | Some q ->
    let head = Queue.peek q in
    if head.f_id.client_id = id.client_id && head.f_id.seq = id.seq then begin
      ignore (Queue.pop q);
      if Queue.is_empty q then Hashtbl.remove t.by_key key;
      Hashtbl.remove t.frames id.client_id;
      Confirm head
    end
    else
      (* Predicted order diverged from decide order on this key: every
         frame speculated on it ran against a now-wrong prefix. *)
      Mispredict (drop_key t key)

let abort_all t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.by_key [] in
  List.concat_map (fun k -> drop_key t k) keys

let settled t frame =
  ignore frame;
  Atomic.decr t.effects
