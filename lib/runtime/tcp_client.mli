(** TCP client library for a replicated service.

    The deployment-side counterpart of {!Client}: a closed-loop caller
    that talks to a cluster's {!Client_server} ports over framed TCP,
    retransmits on timeout and rotates through the replica addresses
    when the current one stops answering (leader change, crash). The
    cluster's reply cache makes retried requests at-most-once.

    Not thread-safe: one [t] per caller thread (clients are sequential
    by construction — one outstanding request each). *)

type t

val create :
  ?timeout_s:float ->
  addrs:Unix.sockaddr list ->
  client_id:int ->
  unit ->
  t
(** [addrs] are the client-facing addresses of the replicas, tried in
    order. No connection is made until the first {!call}. [timeout_s]
    (default 1.0) is the per-attempt reply timeout. *)

val call : t -> bytes -> bytes
(** Execute one request; blocks until a reply arrives, reconnecting and
    retrying as needed. @raise Failure when every address refuses
    connections. *)

val retries : t -> int
(** Timed-out or connection-broken attempts that were retransmitted. *)

val update_addrs : t -> Unix.sockaddr list -> unit
(** Membership changed: replace the endpoint set (in node-id order, like
    [create]'s [addrs]). The live connection is kept when the current
    target's address is unchanged at the same index; otherwise the
    client disconnects and re-targets from the head of the new list,
    letting the ordinary redirect hints steer it to the leader. *)

val redirects : t -> int
(** Target rotations (failed connects and failed attempts) — how often
    this client had to look for another replica. *)

exception Reads_unsupported
(** The cluster runs with [lease_enabled = false]. *)

val read : t -> bytes -> bytes
(** Linearizable read on the lease fast path (no consensus round). The
    payload must be a non-mutating command. Follows [Not_leaseholder]
    redirects — [addrs] must be in node-id order for the hints to steer
    correctly — and retries with the capped jittered backoff of the
    reconnect path across lease renewals.
    @raise Reads_unsupported when leases are disabled. *)

val read_stale : t -> staleness_s:float -> bytes -> bytes
(** Bounded-staleness read: any replica whose state is provably within
    [staleness_s] may answer; [Too_stale] answers bounce the client
    (counted in {!read_redirects}).
    @raise Reads_unsupported when leases are disabled. *)

val read_redirects : t -> int
(** [Not_leaseholder] / [Too_stale] bounces taken by the read calls. *)

val close : t -> unit
