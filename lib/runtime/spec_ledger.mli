(** Speculation ledger: spec / confirm / abort bookkeeping for the
    optimistic execution path (DESIGN.md section 16).

    One ledger per replica, owned by the executor scheduler thread: every
    structural operation ({!admit}, {!on_decide}, {!abort_all}) happens
    there, so the tables need no locks. The only cross-thread edge is
    {!settled} / {!effects_pending}: executors announce when a frame's
    speculative effects have been confirmed-or-undone, and the read /
    snapshot paths use that to know when the service state is clean.

    The prediction being tracked is leader log-append order: a frame is
    admitted when the leader pre-dispatches a fresh request at ingress,
    and {!on_decide} checks the decide stream against the per-key FIFO of
    admitted frames. A match at the head confirms; anything else is a
    mispredict and rolls the whole key back (undos apply newest-first —
    each undo restores exactly the state its execution observed). *)

type frame = {
  f_id : Msmr_wire.Client_msg.request_id;
  f_key : string;          (** the single conflict key speculated on *)
  f_lane : int;            (** executor lane the frame was dispatched to *)
  f_dispatch_ns : int64;   (** admit time — spec lead = confirm − this *)
  f_undo : (unit -> unit) option Atomic.t;
      (** rollback closure, set by the executor that ran the speculative
          execution; [None] until then *)
}

type t

type verdict =
  | Confirm of frame
      (** decide order matched the prediction: promote the frame *)
  | Mispredict of frame list
      (** decide order diverged on this key: abort these frames,
          newest-first (the order their undos must run in), then execute
          the decided request on the ordered path *)
  | No_frame  (** nothing speculated on this key *)

val create : unit -> t

val admit :
  t ->
  Msmr_wire.Client_msg.request_id ->
  key:string ->
  lane:int ->
  now_ns:int64 ->
  frame option
(** Open a frame for a pre-dispatched request. [None] if the client
    already has an unresolved frame (e.g. a retry raced the decide) —
    the caller must then skip speculation for this request. *)

val on_decide :
  t -> Msmr_wire.Client_msg.request_id -> key:string -> verdict
(** Match one decided single-key request against the prediction. *)

val abort_all : t -> frame list
(** Drop every unresolved frame (view change, Global command, snapshot,
    linearizable read): per key the frames come back newest-first, ready
    to be pushed as aborts into their lanes. *)

val unresolved : t -> int
(** Unresolved frames (scheduler view). *)

val effects_pending : t -> bool
(** True while any frame's speculative effects may still be applied to
    the service state (i.e. some frame has not been {!settled}) — the
    gate the read / snapshot paths quiesce behind. *)

val settled : t -> frame -> unit
(** Executor-side: the frame's effects are resolved — its confirm was
    applied, or its undo ran (or it was skipped entirely). Must be
    called exactly once per admitted frame. *)
