module Counter = Msmr_platform.Rate_meter.Counter
module Client_msg = Msmr_wire.Client_msg

type t = {
  n_groups : int;
  clusters : Replica.Cluster.t array;
  conflict : Client_msg.request -> Service.conflict;
  (* Cross-group quiescence gate. [inflight.(g)] counts requests routed
     to group [g] whose reply has not yet been delivered; a Global
     request closes the gate, waits for every counter to reach zero,
     executes through group 0, and reopens on its own reply. All
     transitions happen under [gate]. *)
  gate : Mutex.t;
  gate_cv : Condition.t;
  mutable gate_closed : bool;
  inflight : int array;
  routed : Counter.t;
  globals : Counter.t;
  reads_routed : Counter.t;
  stale_rr : int Atomic.t;   (* round-robin cursor for stale-read spread *)
  mutable running : bool;
}

let groups t = t.n_groups
let cluster t ~gid = t.clusters.(gid)
let routed_count t = Counter.get t.routed
let globals_count t = Counter.get t.globals
let reads_routed_count t = Counter.get t.reads_routed

let m_labels = [ ("mode", "live") ]
let m_group_labels g = ("group", string_of_int g) :: m_labels

let create ?client_io_threads ?executor_threads ?proxy_leaders ?conflict
    ?durability ~groups ~cfg ~service () =
  if groups < 1 then invalid_arg "Replica_group.create: groups < 1";
  let cfg = { cfg with Msmr_consensus.Config.groups } in
  let conflict =
    match conflict with
    | Some f -> f
    | None -> (service ~gid:0).Service.conflict_keys
  in
  let clusters =
    Array.init groups (fun gid ->
        let durability =
          match durability with
          | Some f -> Some (fun node -> f ~gid ~node)
          | None -> None
        in
        Replica.Cluster.create ?client_io_threads ?executor_threads
          ?proxy_leaders ~gid ?durability ~cfg
          ~service:(fun () -> service ~gid)
          ())
  in
  let t =
    { n_groups = groups;
      clusters;
      conflict;
      gate = Mutex.create ();
      gate_cv = Condition.create ();
      gate_closed = false;
      inflight = Array.make groups 0;
      routed = Counter.create ();
      globals = Counter.create ();
      reads_routed = Counter.create ();
      stale_rr = Atomic.make 0;
      running = true }
  in
  Msmr_obs.Metrics.gauge ~labels:m_labels "msmr_replica_router_routed_total"
    (fun () -> float_of_int (Counter.get t.routed));
  Msmr_obs.Metrics.gauge ~labels:m_labels "msmr_replica_router_reads_total"
    (fun () -> float_of_int (Counter.get t.reads_routed));
  for g = 0 to groups - 1 do
    (* The group's log-ordering watermark: instances decided by its
       acting leader — the live counterpart of the simulator's per-group
       commit LSN. *)
    Msmr_obs.Metrics.gauge ~labels:(m_group_labels g)
      "msmr_replica_group_commit_lsn" (fun () ->
        float_of_int
          (Replica.decided_count (Replica.Cluster.leader t.clusters.(g))))
  done;
  t

let await_leaders ?timeout_s t =
  Array.iter
    (fun c -> ignore (Replica.Cluster.await_leader ?timeout_s c))
    t.clusters

let leader_of t g = Replica.Cluster.leader t.clusters.(g)

(* Reply-side bookkeeping: the wrapped sink retires the in-flight slot
   before delivering, and wakes a parked Global when its group drains. *)
let retire t g =
  Mutex.lock t.gate;
  t.inflight.(g) <- t.inflight.(g) - 1;
  if t.inflight.(g) = 0 then Condition.broadcast t.gate_cv;
  Mutex.unlock t.gate

let submit_to_group t g ~conflict ~raw ~reply_to =
  Mutex.lock t.gate;
  while t.gate_closed do
    Condition.wait t.gate_cv t.gate
  done;
  t.inflight.(g) <- t.inflight.(g) + 1;
  Mutex.unlock t.gate;
  let reply_to bytes =
    retire t g;
    reply_to bytes
  in
  Replica.submit ~conflict (leader_of t g) ~raw ~reply_to

let submit_global t ~raw ~reply_to =
  Mutex.lock t.gate;
  (* Concurrent Globals serialise on the gate itself. *)
  while t.gate_closed do
    Condition.wait t.gate_cv t.gate
  done;
  t.gate_closed <- true;
  while Array.exists (fun c -> c > 0) t.inflight do
    Condition.wait t.gate_cv t.gate
  done;
  Mutex.unlock t.gate;
  Counter.incr t.globals;
  let reply_to bytes =
    Mutex.lock t.gate;
    t.gate_closed <- false;
    Condition.broadcast t.gate_cv;
    Mutex.unlock t.gate;
    reply_to bytes
  in
  Replica.submit ~conflict:Service.Global (leader_of t 0) ~raw ~reply_to

(* Read fast path: per-group routing by the same conflict classifier as
   writes, so each group's leaseholder serves its own keyspace and read
   throughput scales with groups x replicas. Reads bypass the Global
   quiescence gate — they mutate nothing, and a key owned by group [g]
   is only ever written through group [g]'s log. Linearizable reads go
   to the group's acting leader (the leaseholder); bounded-staleness
   reads are spread round-robin over the group's replicas. Global-keyed
   reads target group 0, where Global commands execute. *)
let submit_read t (read : Client_msg.read) ~raw ~reply_to =
  Counter.incr t.reads_routed;
  let g =
    match
      Router.target_of_conflict ~groups:t.n_groups
        ~fallback:read.id.client_id
        (t.conflict { Client_msg.id = read.id; payload = read.payload })
    with
    | Router.Group g -> g
    | Router.Global -> 0
  in
  let target =
    if read.staleness_ns < 0 then leader_of t g
    else begin
      let replicas = Replica.Cluster.replicas t.clusters.(g) in
      let k = Atomic.fetch_and_add t.stale_rr 1 in
      replicas.(k mod Array.length replicas)
    end
  in
  Replica.submit target ~raw ~reply_to

let submit t ~raw ~reply_to =
  if Client_msg.is_read_raw raw then
    submit_read t (Client_msg.read_of_bytes raw) ~raw ~reply_to
  else begin
    let req = Client_msg.request_of_bytes raw in
    Counter.incr t.routed;
    (* Classify once: the class picks the group here and is threaded
       through [Replica.submit] so the replica's spine reuses it. *)
    let conflict = t.conflict req in
    match
      Router.target_of_conflict ~groups:t.n_groups ~fallback:req.id.client_id
        conflict
    with
    | Router.Group g -> submit_to_group t g ~conflict ~raw ~reply_to
    | Router.Global -> submit_global t ~raw ~reply_to
  end

let stop t =
  if t.running then begin
    t.running <- false;
    Msmr_obs.Metrics.remove ~labels:m_labels
      "msmr_replica_router_routed_total";
    Msmr_obs.Metrics.remove ~labels:m_labels
      "msmr_replica_router_reads_total";
    for g = 0 to t.n_groups - 1 do
      Msmr_obs.Metrics.remove ~labels:(m_group_labels g)
        "msmr_replica_group_commit_lsn"
    done;
    (* Unblock anything parked on the gate before tearing the groups
       down. *)
    Mutex.lock t.gate;
    t.gate_closed <- false;
    Array.fill t.inflight 0 t.n_groups 0;
    Condition.broadcast t.gate_cv;
    Mutex.unlock t.gate;
    Array.iter Replica.Cluster.stop t.clusters
  end
