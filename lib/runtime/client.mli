(** Closed-loop client, as used in the paper's evaluation: each client
    sends one request, waits for the reply, then sends the next.

    Requests are numbered sequentially; on timeout the same request is
    retransmitted (possibly to another replica after a leader change) and
    the reply cache guarantees at-most-once execution. *)

type t

val create :
  ?timeout_s:float ->
  cluster:Replica.Cluster.t ->
  client_id:int ->
  unit ->
  t
(** [timeout_s] (default 1.0) is the per-attempt reply timeout before the
    request is resent, rotating to the next replica. *)

val call : t -> bytes -> bytes
(** Execute one request on the replicated service and return its reply.
    Blocks; retries internally until the cluster answers. *)

val calls_made : t -> int

val retries : t -> int
(** Timed-out attempts that were retransmitted. *)

val redirects : t -> int
(** Times a timeout moved this client to a different replica (leader
    changes as seen from the client side). *)

exception Reads_unsupported
(** The cluster runs with [lease_enabled = false]; reads cannot be served
    and are not retried. *)

val read : t -> bytes -> bytes
(** Linearizable read on the lease fast path: served by the leaseholder
    from its executed state machine, no consensus round. The payload must
    be a non-mutating command of the service. Redirects on
    [Not_leaseholder] (following the replica's leader hint) and retries
    with capped jittered backoff across lease renewals and view changes.
    @raise Reads_unsupported when leases are disabled. *)

val read_stale : t -> staleness_s:float -> bytes -> bytes
(** Bounded-staleness read served by any replica whose state is provably
    no older than [staleness_s]; replicas that cannot prove freshness
    answer [Too_stale] and the client bounces (counted in
    {!read_redirects}). First attempt is spread over the whole cluster,
    not aimed at the leader.
    @raise Reads_unsupported when leases are disabled. *)

val read_redirects : t -> int
(** [Not_leaseholder] / [Too_stale] bounces the read fast path took. *)
