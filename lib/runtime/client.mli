(** Closed-loop client, as used in the paper's evaluation: each client
    sends one request, waits for the reply, then sends the next.

    Requests are numbered sequentially; on timeout the same request is
    retransmitted (possibly to another replica after a leader change) and
    the reply cache guarantees at-most-once execution. *)

type t

val create :
  ?timeout_s:float ->
  cluster:Replica.Cluster.t ->
  client_id:int ->
  unit ->
  t
(** [timeout_s] (default 1.0) is the per-attempt reply timeout before the
    request is resent, rotating to the next replica. *)

val call : t -> bytes -> bytes
(** Execute one request on the replicated service and return its reply.
    Blocks; retries internally until the cluster answers. *)

val calls_made : t -> int

val retries : t -> int
(** Timed-out attempts that were retransmitted. *)

val redirects : t -> int
(** Times a timeout moved this client to a different replica (leader
    changes as seen from the client side). *)
