(** TCP front-end for client connections.

    Accepts client sockets and bridges them to {!Replica.submit}: each
    connection gets a reader thread that feeds request frames to the
    ClientIO pool; replies are written back framed (a per-connection
    mutex serialises concurrent reply writers). This is the deployment
    path used by [bin/msmr_replica]; in-process tests and examples talk
    to {!Replica.submit} directly. *)

type t

val start : Replica.t -> port:int -> t
(** Listen on [0.0.0.0:port]. *)

val start_group : Replica_group.t -> port:int -> t
(** Multi-group front-end: like {!start}, but accepted requests go
    through the {!Replica_group} router stage, which partitions them
    over the consensus groups (and serialises [Global] ones through the
    cross-group barrier) instead of feeding a single replica. *)

val port : t -> int
val connections : t -> int

val stop : t -> unit
(** Close the listener and all client connections. *)
