(** Reply cache: at-most-once execution.

    Queried by every ClientIO thread when a request arrives and updated by
    the ServiceManager thread after execution (Section V-D). Backed by the
    sharded {!Msmr_platform.Concurrent_map} — the paper found a
    coarse-locked table collapses under this access pattern and switched
    to [ConcurrentHashMap].

    Clients number requests sequentially, so it suffices to remember the
    newest executed request per client.

    {2 Staged (speculative) replies}

    The speculative execution path (DESIGN.md section 16) executes ahead
    of commit, so its replies exist before the request is durably
    ordered. {!stage} parks such a reply invisibly: {!lookup} and
    {!already_executed} never see staged entries, so a client retry of a
    speculated-but-unconfirmed request still reads [Fresh] and takes the
    ordered path. {!confirm} promotes a staged reply into the committed
    cache (the point it becomes client-visible); {!unstage} drops it on
    abort, leaving no dedup-state residue. *)

type t

type lookup =
  | Fresh            (** never seen: execute it *)
  | Cached of bytes  (** the newest executed request: resend this reply *)
  | Stale            (** older than the newest executed: drop silently *)

val create : ?shards:int -> unit -> t

val lookup : t -> Msmr_wire.Client_msg.request_id -> lookup

val store : t -> Msmr_wire.Client_msg.request_id -> bytes -> unit
(** Record the reply for a client's newest executed request (monotone:
    ignores regressions in [seq]). *)

val already_executed : t -> Msmr_wire.Client_msg.request_id -> bool
(** [Cached _ | Stale]. Used by the ServiceManager to skip duplicates that
    slipped into batches. Consults committed replies only — staged
    speculative replies do not count as executed. *)

val stage : t -> Msmr_wire.Client_msg.request_id -> bytes -> unit
(** Park the reply of a speculative execution. Invisible to {!lookup} /
    {!already_executed} until {!confirm}. At most one staged entry per
    client (clients are sequential); a newer [stage] overwrites. *)

val peek : t -> Msmr_wire.Client_msg.request_id -> bytes option
(** The staged reply for exactly this request id, if any — without
    promoting it. *)

val confirm : t -> Msmr_wire.Client_msg.request_id -> bytes option
(** Promote the staged reply for this request id into the committed cache
    and return it; [None] if nothing (or a different seq) is staged —
    the caller falls back to ordered re-execution. *)

val unstage : t -> Msmr_wire.Client_msg.request_id -> unit
(** Drop the staged reply for this request id (speculation aborted).
    No-op if nothing matching is staged. *)

val staged_size : t -> int
(** Staged entries currently parked (0 when no speculation in flight). *)

val size : t -> int
