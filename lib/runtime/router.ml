type target =
  | Group of int
  | Global

let group_of_key ~groups key =
  if groups < 1 then invalid_arg "Router.group_of_key: groups < 1";
  Hashtbl.hash key mod groups

let group_of_client ~groups cid =
  if groups < 1 then invalid_arg "Router.group_of_client: groups < 1";
  ((cid mod groups) + groups) mod groups

let target_of_conflict ~groups ~fallback = function
  | Service.Global -> Global
  | Service.Keys [] -> Group (group_of_client ~groups fallback)
  | Service.Keys (k :: ks) ->
    let g = group_of_key ~groups k in
    if List.for_all (fun k' -> group_of_key ~groups k' = g) ks then Group g
    else Global

let target_of_request ~groups (service : Service.t)
    (req : Msmr_wire.Client_msg.request) =
  target_of_conflict ~groups ~fallback:req.id.client_id
    (service.conflict_keys req)
