(** Replica-to-replica byte transport.

    A {!link} is one direction-agnostic connection to a peer, carrying
    framed byte blobs. The ReplicaIO threads (one reader + one sender per
    peer, Section V-B) are written against this interface, so the same
    runtime runs over an in-process {!Hub} (tests, examples, fault
    injection) or real TCP sockets ({!Tcp}). *)

type link = {
  send_bytes : bytes -> unit;
      (** Blocking write of one frame. May block when the peer is slow —
          this is why only the dedicated sender thread calls it. Silently
          drops the frame when the connection is down (the retransmitter
          recovers). *)
  send_many : bytes list -> unit;
      (** Blocking write of a run of frames, coalesced into one syscall
          where the transport supports it ({!Tcp} uses
          [Frame.write_many]); same drop semantics as {!send_bytes}.
          The sender thread drains its queue in bounded bursts through
          this. *)
  recv_bytes : unit -> bytes option;
      (** Blocking read of one frame; [None] when the link is closed. *)
  close : unit -> unit;
}

module Hub : sig
  (** In-process network between [n] replicas with fault injection. *)

  type t

  val create : ?capacity:int -> n:int -> unit -> t
  (** [capacity] bounds each directed byte queue (default 4096 frames). *)

  val link : t -> me:int -> peer:int -> link
  (** The link endpoint at [me] towards [peer]. Each ordered pair has one
      queue; calling [link] twice returns endpoints backed by the same
      queues. *)

  val set_drop_rate : t -> src:int -> dst:int -> float -> unit
  (** Probability of silently dropping each frame from [src] to [dst]
      (deterministic PRNG seeded per pair). *)

  val cut : t -> int -> unit
  (** Disconnect a node: all its incoming and outgoing frames are dropped
      until {!heal}. Models a crashed or partitioned replica. *)

  val heal : t -> int -> unit

  val sever : t -> src:int -> dst:int -> unit
  (** Cut one directed link: frames from [src] to [dst] are dropped until
      {!heal_link}; every other pair is unaffected. Two [sever] calls
      make the cut symmetric. *)

  val heal_link : t -> src:int -> dst:int -> unit

  val renew : t -> int -> unit
  (** Prepare the hub for an in-process restart of [node]: replace its
      inbound queues (closed when the previous incarnation shut down)
      with fresh ones so peers' sends flow again. Call before creating
      the replacement replica. *)

  val close : t -> unit

  val frames_sent : t -> int
  (** Total frames accepted into the hub (dropped ones included). *)
end

module Tcp : sig
  val connect_link : Unix.sockaddr -> link
  (** Client side of a replica connection; raises [Unix.Unix_error] on
      failure. *)

  val link_of_fd : Unix.file_descr -> link
  (** Wrap an accepted socket. *)
end
