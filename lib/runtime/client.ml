module Mclock = Msmr_platform.Mclock
module Client_msg = Msmr_wire.Client_msg

type t = {
  cluster : Replica.Cluster.t;
  client_id : int;
  timeout_s : float;
  mutable seq : int;
  mutable target : int;          (* replica index we currently talk to *)
  mutable calls : int;
  mutable retry_count : int;
  mutable redirect_count : int;  (* times [rotate_target] moved us *)
  rng : Random.State.t;          (* per-client jitter, deterministic *)
  lock : Mutex.t;
  cond : Condition.t;
  (* Reply slot for the in-flight request. *)
  mutable waiting_for : int;     (* seq, or -1 *)
  mutable reply : bytes option;
}

let create ?(timeout_s = 1.0) ~cluster ~client_id () =
  let replicas = Replica.Cluster.replicas cluster in
  let target =
    (* Start at the current leader if known. *)
    let rec find i =
      if i >= Array.length replicas then 0
      else if Replica.is_leader replicas.(i) then i
      else find (i + 1)
    in
    find 0
  in
  { cluster; client_id; timeout_s; seq = 0; target; calls = 0; retry_count = 0;
    redirect_count = 0;
    rng = Random.State.make [| client_id; 0x636c69 |];
    lock = Mutex.create (); cond = Condition.create (); waiting_for = -1;
    reply = None }

let calls_made t = t.calls
let retries t = t.retry_count
let redirects t = t.redirect_count

let deliver t raw =
  match Client_msg.reply_of_bytes raw with
  | reply ->
    Mutex.lock t.lock;
    if reply.id.seq = t.waiting_for then begin
      t.reply <- Some reply.result;
      Condition.signal t.cond
    end;
    Mutex.unlock t.lock
  | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _) -> ()

let rotate_target t =
  let replicas = Replica.Cluster.replicas t.cluster in
  (* The current target did not answer: never pick it again this round,
     even if it still believes it is the leader (it may be partitioned).
     Prefer another replica claiming leadership; else round-robin. *)
  let n = Array.length replicas in
  let rec find i =
    if i >= n then (t.target + 1) mod n
    else if i <> t.target && Replica.is_leader replicas.(i) then i
    else find (i + 1)
  in
  let next = find 0 in
  if next <> t.target then t.redirect_count <- t.redirect_count + 1;
  t.target <- next

let call t payload =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let req = { Client_msg.id = { client_id = t.client_id; seq }; payload } in
  let raw = Client_msg.request_to_bytes req in
  Mutex.lock t.lock;
  t.waiting_for <- seq;
  t.reply <- None;
  Mutex.unlock t.lock;
  let replicas = Replica.Cluster.replicas t.cluster in
  let rec attempt () =
    let rec submit_retrying () =
      match Replica.submit replicas.(t.target) ~raw ~reply_to:(deliver t) with
      | () -> ()
      | exception _ ->
        (* Target crashed mid-submit (stopped replica / closed queue):
           treat it like a refused connection — rotate and retry after a
           short jittered pause, the same way a TCP client would. *)
        t.retry_count <- t.retry_count + 1;
        rotate_target t;
        Mclock.sleep_s (0.001 +. Random.State.float t.rng 0.001);
        submit_retrying ()
    in
    submit_retrying ();
    let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s t.timeout_s) in
    (* Polling wait keeps the client simple; clients are test/bench
       drivers, not a hot path of the replica itself. The poll interval
       backs off exponentially (0.1 ms -> 2 ms cap, jittered) so a
       cluster mid-recovery is not hammered by the whole client
       population in lockstep; it resets on each fresh attempt to keep
       fast replies fast. *)
    let rec wait pause =
      Mutex.lock t.lock;
      let r = t.reply in
      Mutex.unlock t.lock;
      match r with
      | Some result -> result
      | None ->
        if Int64.compare (Mclock.now_ns ()) deadline >= 0 then begin
          t.retry_count <- t.retry_count + 1;
          rotate_target t;
          attempt ()
        end
        else begin
          Mclock.sleep_s (pause +. Random.State.float t.rng (pause /. 2.));
          wait (Float.min 0.002 (pause *. 2.))
        end
    in
    wait 0.0001
  in
  let result = attempt () in
  Mutex.lock t.lock;
  t.waiting_for <- -1;
  Mutex.unlock t.lock;
  t.calls <- t.calls + 1;
  result
