module Mclock = Msmr_platform.Mclock
module Client_msg = Msmr_wire.Client_msg

type t = {
  cluster : Replica.Cluster.t;
  client_id : int;
  timeout_s : float;
  mutable seq : int;
  mutable target : int;          (* replica index we currently talk to *)
  mutable calls : int;
  mutable retry_count : int;
  mutable redirect_count : int;  (* times [rotate_target] moved us *)
  mutable read_redirect_count : int;
      (* Not_leaseholder / Too_stale bounces of the read fast path *)
  rng : Random.State.t;          (* per-client jitter, deterministic *)
  lock : Mutex.t;
  cond : Condition.t;
  (* Reply slot for the in-flight request. *)
  mutable waiting_for : int;     (* seq, or -1 *)
  mutable reply : bytes option;
  (* Reply slot for the in-flight read (reads use their own frames). *)
  mutable read_waiting : int;    (* seq, or -1 *)
  mutable read_reply : Client_msg.read_reply option;
}

let create ?(timeout_s = 1.0) ~cluster ~client_id () =
  let replicas = Replica.Cluster.replicas cluster in
  let target =
    (* Start at the current leader if known. *)
    let rec find i =
      if i >= Array.length replicas then 0
      else if Replica.is_leader replicas.(i) then i
      else find (i + 1)
    in
    find 0
  in
  { cluster; client_id; timeout_s; seq = 0; target; calls = 0; retry_count = 0;
    redirect_count = 0; read_redirect_count = 0;
    rng = Random.State.make [| client_id; 0x636c69 |];
    lock = Mutex.create (); cond = Condition.create (); waiting_for = -1;
    reply = None; read_waiting = -1; read_reply = None }

let calls_made t = t.calls
let retries t = t.retry_count
let redirects t = t.redirect_count
let read_redirects t = t.read_redirect_count

let deliver t raw =
  match Client_msg.reply_of_bytes raw with
  | reply ->
    Mutex.lock t.lock;
    if reply.id.seq = t.waiting_for then begin
      t.reply <- Some reply.result;
      Condition.signal t.cond
    end;
    Mutex.unlock t.lock
  | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _) -> ()

let rotate_target t =
  let replicas = Replica.Cluster.replicas t.cluster in
  (* The current target did not answer: never pick it again this round,
     even if it still believes it is the leader (it may be partitioned).
     Prefer another replica claiming leadership; else round-robin over
     the current membership — a decommissioned replica still runs but is
     epoch-fenced and will never answer. *)
  let n = Array.length replicas in
  let member i = Replica.is_member replicas.(i) in
  let rec next_member k =
    (* Degenerate fallback: plain round-robin if nobody reports
       membership (e.g. every replica stopped). *)
    if k > n then (t.target + 1) mod n
    else begin
      let i = (t.target + k) mod n in
      if member i then i else next_member (k + 1)
    end
  in
  let rec find i =
    if i >= n then next_member 1
    else if i <> t.target && Replica.is_leader replicas.(i) && member i then i
    else find (i + 1)
  in
  let next = find 0 in
  if next <> t.target then t.redirect_count <- t.redirect_count + 1;
  t.target <- next

let call t payload =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let req = { Client_msg.id = { client_id = t.client_id; seq }; payload } in
  let raw = Client_msg.request_to_bytes req in
  Mutex.lock t.lock;
  t.waiting_for <- seq;
  t.reply <- None;
  Mutex.unlock t.lock;
  let replicas = Replica.Cluster.replicas t.cluster in
  let rec attempt () =
    let rec submit_retrying () =
      match Replica.submit replicas.(t.target) ~raw ~reply_to:(deliver t) with
      | () -> ()
      | exception _ ->
        (* Target crashed mid-submit (stopped replica / closed queue):
           treat it like a refused connection — rotate and retry after a
           short jittered pause, the same way a TCP client would. *)
        t.retry_count <- t.retry_count + 1;
        rotate_target t;
        Mclock.sleep_s (0.001 +. Random.State.float t.rng 0.001);
        submit_retrying ()
    in
    submit_retrying ();
    let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s t.timeout_s) in
    (* Polling wait keeps the client simple; clients are test/bench
       drivers, not a hot path of the replica itself. The poll interval
       backs off exponentially (0.1 ms -> 2 ms cap, jittered) so a
       cluster mid-recovery is not hammered by the whole client
       population in lockstep; it resets on each fresh attempt to keep
       fast replies fast. *)
    let rec wait pause =
      Mutex.lock t.lock;
      let r = t.reply in
      Mutex.unlock t.lock;
      match r with
      | Some result -> result
      | None ->
        if Int64.compare (Mclock.now_ns ()) deadline >= 0 then begin
          t.retry_count <- t.retry_count + 1;
          rotate_target t;
          attempt ()
        end
        else begin
          Mclock.sleep_s (pause +. Random.State.float t.rng (pause /. 2.));
          wait (Float.min 0.002 (pause *. 2.))
        end
    in
    wait 0.0001
  in
  let result = attempt () in
  Mutex.lock t.lock;
  t.waiting_for <- -1;
  Mutex.unlock t.lock;
  t.calls <- t.calls + 1;
  result

(* --- Read fast path ------------------------------------------------- *)

exception Reads_unsupported

let read_deliver t raw =
  if
    Bytes.length raw >= 4
    && Int32.to_int (Bytes.get_int32_be raw 0) = Client_msg.read_reply_magic
  then
    match Client_msg.read_reply_of_bytes raw with
    | rr ->
      Mutex.lock t.lock;
      if rr.rid.seq = t.read_waiting then begin
        t.read_reply <- Some rr;
        Condition.signal t.cond
      end;
      Mutex.unlock t.lock
    | exception (Msmr_wire.Codec.Underflow | Msmr_wire.Codec.Malformed _) ->
      ()

(* One read, with redirect-on-[Not_leaseholder] / [Too_stale] and
   retry-on-lease-expiry: a replica mid-renewal (or mid-view-change)
   answers [Not_leaseholder] pointing at the node it believes leads;
   bounce there after a capped, jittered exponential pause — the same
   backoff shape as the write path's retries. *)
let do_read t ~staleness_ns payload =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let rd =
    { Client_msg.id = { client_id = t.client_id; seq }; staleness_ns;
      payload }
  in
  let raw = Client_msg.read_to_bytes rd in
  Mutex.lock t.lock;
  t.read_waiting <- seq;
  t.read_reply <- None;
  Mutex.unlock t.lock;
  let replicas = Replica.Cluster.replicas t.cluster in
  let n = Array.length replicas in
  let backoff pause =
    Mclock.sleep_s (pause +. Random.State.float t.rng (pause /. 2.));
    Float.min 0.05 (pause *. 2.)
  in
  (* Stale reads may be served anywhere: spread the first attempt over
     the whole cluster instead of converging on the leader. *)
  let read_target = ref
      (if staleness_ns >= 0 then t.client_id mod n else t.target)
  in
  let retarget hint =
    t.read_redirect_count <- t.read_redirect_count + 1;
    if hint >= 0 && hint < n && hint <> !read_target then read_target := hint
    else read_target := (!read_target + 1) mod n
  in
  let rec attempt pause =
    Mutex.lock t.lock;
    t.read_reply <- None;
    Mutex.unlock t.lock;
    (match
       Replica.submit replicas.(!read_target) ~raw
         ~reply_to:(read_deliver t)
     with
     | () -> ()
     | exception _ ->
       (* Stopped replica: treat like a refused connection. *)
       t.retry_count <- t.retry_count + 1);
    let deadline = Int64.add (Mclock.now_ns ()) (Mclock.ns_of_s t.timeout_s) in
    let rec wait poll =
      Mutex.lock t.lock;
      let r = t.read_reply in
      Mutex.unlock t.lock;
      match r with
      | Some { Client_msg.status = Client_msg.Read_ok result; _ } -> result
      | Some { Client_msg.status = Client_msg.Read_unsupported; _ } ->
        raise Reads_unsupported
      | Some
          { Client_msg.status =
              Client_msg.Not_leaseholder hint | Client_msg.Too_stale hint;
            _ } ->
        retarget hint;
        attempt (backoff pause)
      | None ->
        if Int64.compare (Mclock.now_ns ()) deadline >= 0 then begin
          t.retry_count <- t.retry_count + 1;
          retarget (-1);
          attempt (backoff pause)
        end
        else begin
          Mclock.sleep_s (poll +. Random.State.float t.rng (poll /. 2.));
          wait (Float.min 0.002 (poll *. 2.))
        end
    in
    wait 0.0001
  in
  let result = attempt 0.001 in
  Mutex.lock t.lock;
  t.read_waiting <- -1;
  Mutex.unlock t.lock;
  t.calls <- t.calls + 1;
  result

let read t payload = do_read t ~staleness_ns:Client_msg.linearizable payload

let read_stale t ~staleness_s payload =
  if staleness_s < 0. then invalid_arg "Client.read_stale: staleness_s < 0";
  do_read t ~staleness_ns:(int_of_float (staleness_s *. 1e9)) payload
